GO ?= go

.PHONY: build test race verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full gate: vet + build + race-enabled tests + a live smoke test of the
# napel-serve HTTP service. See scripts/verify.sh.
verify:
	./scripts/verify.sh

# Perf-trajectory benchmark: replayable napel-loadgen run against a live
# napel-serve, SLO-gated, writing BENCH_<pr>.json at the repo root.
# Tune via BENCH_PR / BENCH_SEED / BENCH_REQUESTS (see scripts/bench.sh).
bench:
	./scripts/bench.sh

clean:
	$(GO) clean ./...
