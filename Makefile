GO ?= go

.PHONY: build test race verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full gate: vet + build + race-enabled tests + a live smoke test of the
# napel-serve HTTP service. See scripts/verify.sh.
verify:
	./scripts/verify.sh

clean:
	$(GO) clean ./...
