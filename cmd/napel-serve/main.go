// Command napel-serve exposes trained NAPEL predictors over HTTP so
// profiles collected anywhere (see 'napel export-profile') can be turned
// into performance and energy estimates without a simulator in the loop:
//
//	napel train -out model.json
//	napel-serve -model model.json -addr :9090
//	curl -d @req.json http://localhost:9090/v1/predict
//
// Endpoints: POST /v1/predict (single or batched), POST /v1/suitability
// (host-vs-NMC offload verdict), GET /v1/models, POST /v1/models/reload,
// GET /healthz (liveness), GET /readyz (readiness: 200 only while a
// model is installed and the server is not draining), GET /metrics
// (Prometheus text format).
//
// -chaos-seed/-chaos-spec install a deterministic fault-injection plan
// (see internal/resilience/faultpoint) for resilience testing; -lazy
// starts the server before any model loads, serving 503 from /readyz
// until -follow installs one.
//
// SIGINT/SIGTERM starts a graceful drain: new requests get 503 while
// in-flight ones finish under -drain-timeout.
//
// With -follow, the server polls its model sources and hot-installs any
// content change — point -model at a napel-traind store's
// current-model.json and promotions go live without a restart:
//
//	napel-serve -model ./models/current-model.json -follow 2s
//
// -join announces the replica to a napel-gate (POST /v1/fleet/join,
// re-announced every -join-interval) so a fleet can grow without
// restarting the gate; -advertise overrides the URL the gate probes
// when -addr alone is not reachable from the gate's host:
//
//	napel-serve -model model.json -addr :9191 -join http://gatehost:9090
//
// -model-store replaces the shared filesystem with napel-traind's store
// HTTP API: the server pulls the promoted lineage over the wire,
// sha256-verifies every blob against its content address, and (with
// -follow) polls the store so fleet replicas on other machines track
// promotions too:
//
//	napel-serve -model-store http://traind:8080 -follow 2s -lazy
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"napel/internal/obs"
	"napel/internal/resilience/faultpoint"
	"napel/internal/serve"
)

// modelFlags accumulates repeated -model flags: either "name=path" or a
// bare "path" registered under the default model name.
type modelFlags map[string]string

func (m modelFlags) String() string {
	parts := make([]string, 0, len(m))
	for name, path := range m {
		parts = append(parts, name+"="+path)
	}
	return strings.Join(parts, ",")
}

func (m modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		name, path = serve.DefaultModelName, v
	}
	if name == "" || path == "" {
		return fmt.Errorf("want [name=]path, got %q", v)
	}
	if _, dup := m[name]; dup {
		return fmt.Errorf("model %q given twice", name)
	}
	m[name] = path
	return nil
}

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	models := modelFlags{}
	flag.Var(models, "model", "predictor file from 'napel train', [name=]path (repeatable)")
	stores := modelFlags{}
	flag.Var(stores, "model-store", "napel-traind base URL to pull the promoted model from, [name=]url (repeatable)")
	cacheEntries := flag.Int("cache-entries", 0, "response cache capacity (0 = default 4096)")
	maxBatch := flag.Int("max-batch", 0, "max items per batched predict (0 = default 256)")
	maxBody := flag.Int64("max-body-bytes", 0, "max request body bytes (0 = default 8 MiB)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent requests before 429 (0 = default 64)")
	workers := flag.Int("workers", 0, "batch fan-out worker pool size (0 = default)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "in-flight drain deadline on shutdown")
	follow := flag.Duration("follow", 0, "poll model files at this interval and hot-install changes (0 disables; point -model at a napel-traind store's current-model.json)")
	lazy := flag.Bool("lazy", false, "start before any model loads; /readyz turns 200 once -follow installs one")
	join := flag.String("join", "", "napel-gate base URL to announce this replica to (POST /v1/fleet/join, repeated every -join-interval)")
	advertise := flag.String("advertise", "", "base URL the gate should reach this replica at (default derived from -addr with host 127.0.0.1)")
	joinInterval := flag.Duration("join-interval", 2*time.Second, "re-announce period while -join is set")
	queueWait := flag.Duration("queue-wait", 0, "how long a request may wait for a concurrency slot before 429 (0 = reject immediately)")
	predictBudget := flag.Duration("predict-budget", 0, "per-request deadline budget for predict/suitability (0 = none)")
	degradedEntries := flag.Int("degraded-entries", 0, "last-good answer cache capacity for degraded serving (0 = default 1024, negative disables)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed of the deterministic fault-injection plan")
	chaosSpec := flag.String("chaos-spec", "", "fault-injection plan, e.g. 'serve.predict:0.1' (empty = chaos off)")
	quiet := flag.Bool("quiet", false, "disable the access log")
	traceOut := flag.String("trace-out", "", "append every completed span as one JSON line to this file (the /debug/traces ring is always on)")
	tracePush := flag.String("trace-push", "", "push completed spans in bounded batches to this napel-obsd base URL (empty = off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("napel-serve"))
		return
	}

	if len(models) == 0 && len(stores) == 0 {
		fmt.Fprintln(os.Stderr, "napel-serve: at least one -model or -model-store is required (train one with 'napel train')")
		flag.Usage()
		os.Exit(2)
	}
	for name := range stores {
		if _, dup := models[name]; dup {
			fmt.Fprintf(os.Stderr, "napel-serve: model %q given as both -model and -model-store\n", name)
			os.Exit(2)
		}
	}

	if *chaosSpec != "" {
		if err := faultpoint.Enable(*chaosSeed, *chaosSpec); err != nil {
			fmt.Fprintf(os.Stderr, "napel-serve: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "napel-serve: chaos plan active (seed %d): %s\n", *chaosSeed, *chaosSpec)
	}

	sources := make(map[string]serve.ModelSource, len(stores))
	for name, url := range stores {
		sources[name] = &serve.StoreSource{URL: strings.TrimSuffix(url, "/")}
	}
	cfg := serve.Config{
		ModelPaths:      models,
		ModelSources:    sources,
		CacheEntries:    *cacheEntries,
		MaxBatch:        *maxBatch,
		MaxBodyBytes:    *maxBody,
		MaxInFlight:     *maxInFlight,
		Workers:         *workers,
		DrainTimeout:    *drain,
		FollowInterval:  *follow,
		LazyLoad:        *lazy,
		QueueWait:       *queueWait,
		PredictBudget:   *predictBudget,
		DegradedEntries: *degradedEntries,
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "napel-serve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.TraceSink = f
	}
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "napel-serve: %v\n", err)
		os.Exit(1)
	}
	for _, m := range s.Registry().List() {
		fmt.Fprintf(os.Stderr, "napel-serve: model %s version %s (%s)\n", m.Name, m.Version, m.Path)
	}
	if *tracePush != "" {
		p := obs.NewPusher(obs.PushConfig{URL: *tracePush, Process: "napel-serve"})
		defer p.Close()
		p.Register(s.Obs())
		s.Tracer().SetPusher(p)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *join != "" {
		adv := *advertise
		if adv == "" {
			host := *addr
			if strings.HasPrefix(host, ":") {
				host = "127.0.0.1" + host
			}
			adv = "http://" + host
		}
		go announce(ctx, strings.TrimSuffix(*join, "/"), adv, *joinInterval)
	}
	fmt.Fprintf(os.Stderr, "napel-serve: listening on %s\n", *addr)
	if err := s.Run(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "napel-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "napel-serve: drained in-flight requests, exiting")
}

// announce keeps this replica registered with a napel-gate: one POST
// /v1/fleet/join per interval, forever. Re-announcing is idempotent at
// the gate and doubles as the recovery path — after an eviction (or a
// gate restart that lost the roster) the next announce re-registers
// the replica and the gate's prober readmits it. Only transitions are
// logged, not every round.
func announce(ctx context.Context, gate, advertise string, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	body, _ := json.Marshal(map[string]string{"url": advertise})
	client := &http.Client{Timeout: 5 * time.Second}
	joined := false
	first := true
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			gate+"/v1/fleet/join", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "napel-serve: join: %v\n", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		switch {
		case ok && (!joined || first):
			fmt.Fprintf(os.Stderr, "napel-serve: announced %s to gate %s\n", advertise, gate)
		case !ok && (joined || first):
			if err != nil {
				fmt.Fprintf(os.Stderr, "napel-serve: gate %s unreachable: %v (retrying every %s)\n", gate, err, interval)
			} else {
				fmt.Fprintf(os.Stderr, "napel-serve: gate %s refused join: HTTP %d (retrying every %s)\n", gate, resp.StatusCode, interval)
			}
		}
		joined, first = ok, false
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
