// Command napel-worker is the remote execution half of distributed DoE
// collection: it polls a napel-traind coordinator for (kernel, input)
// unit leases, executes each unit with the in-process reference
// pipeline (profile → trace recording → one simulation per training
// architecture), and reports the payload back under a content hash,
// heartbeating while it works:
//
//	napel-traind -store ./models -addr :9091
//	napel-worker -coordinator http://trainhost:9091
//	napel-worker -coordinator http://trainhost:9091   # more = faster
//
// Workers are stateless and disposable: a killed worker's leases expire
// at the coordinator and requeue onto the survivors, and the assembled
// dataset is byte-identical to a single-machine run no matter how many
// workers served it or how many died. Add workers for throughput, kill
// them freely.
//
// -addr serves GET /metrics and /healthz for scraping; -chaos-spec
// installs a deterministic fault plan (collectd.lease, collectd.complete,
// collectd.payload) for protocol-resilience drills.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"napel/internal/collectd"
	"napel/internal/obs"
	"napel/internal/resilience/faultpoint"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL, e.g. http://trainhost:9091 (required)")
	id := flag.String("id", "", "worker id reported in leases (default host-pid)")
	tags := flag.String("tags", "", "comma-separated capability tags advertised at lease time (e.g. 'hmc,x86'); the coordinator only assigns units whose required tags are all present")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle wait between lease polls")
	reconnectMax := flag.Duration("reconnect-max", 5*time.Second, "cap on the jittered backoff between polls while the coordinator is unreachable")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request protocol timeout")
	seed := flag.Uint64("seed", 1, "retry-jitter seed")
	addr := flag.String("addr", "", "optional listen address for /metrics and /healthz")
	tracePush := flag.String("trace-push", "", "push completed spans in bounded batches to this napel-obsd base URL (empty = off)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed of the deterministic fault-injection plan")
	chaosSpec := flag.String("chaos-spec", "", "fault-injection plan, e.g. 'collectd.complete:0.2' (empty = chaos off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("napel-worker"))
		return
	}
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "napel-worker: -coordinator is required")
		flag.Usage()
		os.Exit(2)
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	logger := log.New(os.Stderr, "napel-worker: ", log.LstdFlags)
	if *chaosSpec != "" {
		if err := faultpoint.Enable(*chaosSeed, *chaosSpec); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("chaos plan active (seed %d): %s", *chaosSeed, *chaosSpec)
	}

	reg := obs.NewRegistry()
	// The worker's tracer records one "worker.unit" span per executed
	// lease; its identity rides every protocol call so the coordinator's
	// handler spans join the same trace.
	tracer := obs.NewTracer(0, nil)
	w, err := collectd.NewWorker(collectd.WorkerConfig{
		Coordinator:    *coordinator,
		ID:             *id,
		Tags:           splitTags(*tags),
		PollInterval:   *poll,
		ReconnectMax:   *reconnectMax,
		RequestTimeout: *reqTimeout,
		Seed:           *seed,
		Registry:       reg,
		Tracer:         tracer,
		Logf:           logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	if *tracePush != "" {
		p := obs.NewPusher(obs.PushConfig{URL: *tracePush, Process: "napel-worker"})
		defer p.Close()
		p.Register(reg)
		tracer.SetPusher(p)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		logger.Printf("received %s, finishing current unit and exiting (send again to force)", sig)
		cancel()
		sig = <-sigCh
		logger.Printf("received second %s, forcing exit", sig)
		os.Exit(130)
	}()

	if *addr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(rw, `{"status":"ok","worker":%q}`+"\n", *id)
		})
		mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", obs.ContentType)
			reg.WriteText(rw)
		})
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("serving metrics on %s", ln.Addr())
		go http.Serve(ln, mux)
	}

	logger.Printf("worker %s starting against %s", *id, *coordinator)
	w.Run(ctx)
	logger.Printf("worker %s stopped", *id)
}

// splitTags parses the -tags flag: comma-separated, blanks dropped.
func splitTags(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}
