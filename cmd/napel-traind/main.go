// Command napel-traind is the training-side daemon of the NAPEL model
// lifecycle: it accepts training jobs over HTTP, drives the DoE
// collection + random-forest pipeline with crash-safe checkpoints,
// stores every trained model in a content-addressed store with full
// lineage, and promotes a candidate into serving only when it beats the
// incumbent on a held-out fold (the canary gate):
//
//	napel-traind -store ./models -addr :9091
//	curl -d '{"kernels":["atax","mvt"]}' http://localhost:9091/v1/jobs
//	napel-serve -model ./models/current-model.json -follow 2s
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id}, POST
// /v1/jobs/{id}/cancel, GET /v1/store, POST /v1/store/rollback, GET
// /healthz, GET /metrics (Prometheus text format).
//
// A SIGINT/SIGTERM checkpoints running jobs and exits; a killed daemon
// (even SIGKILL) resumes interrupted jobs from their last checkpoint on
// the next start, re-executing only unfinished (kernel, input) units.
// A second SIGINT forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"napel/internal/collectd"
	"napel/internal/lifecycle"
	"napel/internal/obs"
	"napel/internal/resilience/faultpoint"
)

func main() {
	addr := flag.String("addr", ":9091", "listen address for the admin API")
	storeDir := flag.String("store", "", "model store directory (required)")
	jobsDir := flag.String("jobs", "", "job state directory (default <store>/jobs)")
	concurrency := flag.Int("concurrency", 1, "training jobs run at once")
	gateTolerance := flag.Float64("gate-tolerance", 0, "promote when candidate holdout error <= incumbent error x tolerance (0 = default 1.05)")
	holdoutFrac := flag.Float64("holdout-frac", 0, "held-out fraction for the canary gate (0 = default 0.25)")
	checkpointEvery := flag.Duration("checkpoint-every", 2*time.Second, "min interval between collection checkpoints (0 = every unit)")
	maxRetries := flag.Int("max-retries", 0, "retries per job after a transient failure (0 = default 2, negative disables)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "heartbeat budget for distributed collection leases (0 disables the worker coordinator)")
	collectJournal := flag.String("collect-journal", "", "append-only journal making distributed-collection state crash-durable: completed units are replayed from it after a restart instead of re-executed (empty = off)")
	workerExpiry := flag.Duration("worker-expiry", 0, "deregister workers silent for this long (0 = 4x lease-ttl)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "job checkpoint + HTTP drain deadline on shutdown")
	traceOut := flag.String("trace-out", "", "append every completed span as one JSON line to this file (the /debug/traces ring is always on)")
	tracePush := flag.String("trace-push", "", "push completed spans in bounded batches to this napel-obsd base URL (empty = off)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed of the deterministic fault-injection plan")
	chaosSpec := flag.String("chaos-spec", "", "fault-injection plan, e.g. 'atomicfile.write:0.1:partial' (empty = chaos off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("napel-traind"))
		return
	}

	logger := log.New(os.Stderr, "napel-traind: ", log.LstdFlags)
	if *chaosSpec != "" {
		if err := faultpoint.Enable(*chaosSeed, *chaosSpec); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("chaos plan active (seed %d): %s", *chaosSeed, *chaosSpec)
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "napel-traind: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	if *jobsDir == "" {
		*jobsDir = filepath.Join(*storeDir, "jobs")
	}

	store, err := lifecycle.OpenStore(*storeDir)
	if err != nil {
		logger.Fatal(err)
	}
	mcfg := lifecycle.ManagerConfig{
		Store:           store,
		JobsDir:         *jobsDir,
		Concurrency:     *concurrency,
		GateTolerance:   *gateTolerance,
		HoldoutFrac:     *holdoutFrac,
		CheckpointEvery: *checkpointEvery,
		MaxRetries:      *maxRetries,
		Logf:            logger.Printf,
	}
	if *leaseTTL > 0 {
		ccfg := collectd.Config{
			LeaseTTL:     *leaseTTL,
			WorkerExpiry: *workerExpiry,
			Logf:         logger.Printf,
		}
		if *collectJournal != "" {
			j, err := collectd.OpenJournal(*collectJournal, logger.Printf)
			if err != nil {
				logger.Fatal(err)
			}
			defer j.Close()
			ccfg.Journal = j
		}
		mcfg.Coordinator = collectd.NewCoordinator(ccfg)
	} else if *collectJournal != "" {
		logger.Fatal("-collect-journal requires the worker coordinator (-lease-ttl > 0)")
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatal(err)
		}
		defer f.Close()
		mcfg.TraceSink = f
	}
	mgr, err := lifecycle.NewManager(mcfg)
	if err != nil {
		logger.Fatal(err)
	}
	if *tracePush != "" {
		p := obs.NewPusher(obs.PushConfig{URL: *tracePush, Process: "napel-traind"})
		defer p.Close()
		p.Register(mgr.Obs())
		mgr.Tracer().SetPusher(p)
	}

	// First signal: graceful stop (running jobs checkpoint and stay
	// resumable). Second signal: force exit with a non-zero status.
	ctx, cancel := context.WithCancel(context.Background())
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		logger.Printf("received %s, checkpointing and shutting down (send again to force exit)", sig)
		cancel()
		sig = <-sigCh
		logger.Printf("received second %s, forcing exit", sig)
		os.Exit(130)
	}()

	srv := &http.Server{Addr: *addr, Handler: lifecycle.NewAPIHandler(mgr)}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("store %s, jobs %s, serving admin API on %s", *storeDir, *jobsDir, ln.Addr())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mgr.Run(ctx)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("http: %v", err)
			cancel()
		}
	}()

	<-ctx.Done()
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *drain)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	wg.Wait()
	logger.Printf("jobs checkpointed, exiting")
}
