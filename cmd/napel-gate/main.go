// Command napel-gate fronts a fleet of napel-serve replicas: it
// consistent-hashes every request on (model version, feature-vector
// hash) so each replica's response cache sees a disjoint slice of the
// keyspace, turning N small LRUs into one large one. Batched predicts
// are split per shard, fanned out, and reassembled in request order;
// single predicts are hedged against a slow primary and failed over
// along the ring when a replica misbehaves, with a circuit breaker per
// replica.
//
//	napel-serve -model model.json -addr :9191 &
//	napel-serve -model model.json -addr :9192 &
//	napel-gate -addr :9090 -replicas http://127.0.0.1:9191,http://127.0.0.1:9192
//	curl -d @req.json http://localhost:9090/v1/predict
//
// Endpoints: POST /v1/predict and POST /v1/suitability (same wire
// contract as napel-serve — responses are byte-identical to a direct
// replica hit), GET /v1/fleet (replica status, membership states,
// breaker states, ring shares, epoch), POST /v1/fleet/join (runtime
// replica admission — napel-serve -join announces here), POST
// /v1/fleet/reload (rolling hot-install of the promoted model, one
// replica at a time, gated on each replica's /readyz), GET /healthz,
// GET /readyz, GET /metrics.
//
// Membership is self-healing: -evict-after consecutive failed /readyz
// probes evict a replica from the ring (a replica reporting
// ready:false is evicted immediately), and a later passing probe
// readmits it. Every change advances the ring epoch reported by
// /readyz and the napel_fleet_ring_epoch gauge. -replicas may be
// empty: a gate can start with no fleet and grow one from joins.
//
// -chaos-seed/-chaos-spec install a deterministic fault-injection plan
// (point 'fleet.forward' tears gate->replica calls) for resilience
// testing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"napel/internal/fleet"
	"napel/internal/obs"
	"napel/internal/resilience/faultpoint"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated napel-serve base URLs seeding the fleet (empty = replicas self-announce via POST /v1/fleet/join)")
	evictAfter := flag.Int("evict-after", 0, "consecutive failed /readyz probes that evict a replica from the ring (0 = default 3)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 128)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge a single predict to the next replica after this wait (0 = default 30ms, negative disables)")
	healthInterval := flag.Duration("health-interval", 0, "replica /readyz probe period (0 = default 500ms)")
	budget := flag.Duration("budget", 0, "per-request deadline budget, split across failover attempts (0 = none)")
	maxBatch := flag.Int("max-batch", 0, "max items per batched predict (0 = default 256)")
	maxBody := flag.Int64("max-body-bytes", 0, "max request body bytes (0 = default 8 MiB)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures that trip a replica breaker (0 = default 3)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long a tripped replica is bypassed (0 = default 2s)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "in-flight drain deadline on shutdown")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed of the deterministic fault-injection plan")
	chaosSpec := flag.String("chaos-spec", "", "fault-injection plan, e.g. 'fleet.forward:0.1' (empty = chaos off)")
	traceOut := flag.String("trace-out", "", "append every completed span as one JSON line to this file")
	tracePush := flag.String("trace-push", "", "push completed spans in bounded batches to this napel-obsd base URL (empty = off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("napel-gate"))
		return
	}

	logger := log.New(os.Stderr, "napel-gate: ", log.LstdFlags)
	var urls []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, r)
		}
	}

	if *chaosSpec != "" {
		if err := faultpoint.Enable(*chaosSeed, *chaosSpec); err != nil {
			fmt.Fprintf(os.Stderr, "napel-gate: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "napel-gate: chaos plan active (seed %d): %s\n", *chaosSeed, *chaosSpec)
	}

	cfg := fleet.Config{
		Replicas:         urls,
		EvictThreshold:   *evictAfter,
		Logf:             logger.Printf,
		VNodes:           *vnodes,
		HedgeAfter:       *hedgeAfter,
		HealthInterval:   *healthInterval,
		Budget:           *budget,
		MaxBatch:         *maxBatch,
		MaxBodyBytes:     *maxBody,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		DrainTimeout:     *drain,
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "napel-gate: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.TraceSink = f
	}
	g, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "napel-gate: %v\n", err)
		os.Exit(1)
	}
	if *tracePush != "" {
		p := obs.NewPusher(obs.PushConfig{URL: *tracePush, Process: "napel-gate"})
		defer p.Close()
		p.Register(g.Obs())
		g.Tracer().SetPusher(p)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if len(urls) == 0 {
		fmt.Fprintf(os.Stderr, "napel-gate: no seed replicas; waiting for POST /v1/fleet/join, listening on %s\n", *addr)
	} else {
		fmt.Fprintf(os.Stderr, "napel-gate: fronting %d replicas, listening on %s\n", len(urls), *addr)
	}
	if err := g.Run(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "napel-gate: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "napel-gate: drained in-flight requests, exiting")
}
