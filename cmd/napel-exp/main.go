// Command napel-exp regenerates the tables and figures of the paper's
// evaluation section. With no arguments it runs the full suite; pass
// experiment names (table2 table3 table4 table5 fig4 fig5 fig6 fig7,
// plus the extra "ablation" study) to run a subset.
//
// The full suite at default settings takes on the order of ten minutes;
// -quick runs a reduced configuration (four applications, scaled inputs)
// in well under a minute.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"napel/internal/exp"
	"napel/internal/obs"
	"napel/internal/resilience/faultpoint"
)

func main() {
	quick := flag.Bool("quick", false, "reduced settings: 4 apps, scaled inputs, small budgets")
	seed := flag.Uint64("seed", 42, "random seed for the whole pipeline")
	scale := flag.Int("scale", 0, "override DoE input scale factor (1 = Table 2 levels verbatim)")
	simBudget := flag.Uint64("sim-budget", 0, "override instructions per NMC simulation")
	profBudget := flag.Uint64("profile-budget", 0, "override instructions per profiling pass")
	workers := flag.Int("workers", 0, "parallel collection/evaluation workers (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "also run the full suite and write a machine-readable report to this path")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed of the deterministic fault-injection plan")
	chaosSpec := flag.String("chaos-spec", "", "fault-injection plan, e.g. 'engine.unit:0.1' (empty = chaos off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("napel-exp"))
		return
	}
	if *chaosSpec != "" {
		if err := faultpoint.Enable(*chaosSeed, *chaosSpec); err != nil {
			fmt.Fprintf(os.Stderr, "napel-exp: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "napel-exp: chaos plan active (seed %d): %s\n", *chaosSeed, *chaosSpec)
	}

	s := exp.Default()
	if *quick {
		s = exp.Quick()
	}
	s.Seed = *seed
	if *scale > 0 {
		s.Opts.ScaleFactor = *scale
	}
	if *simBudget > 0 {
		s.Opts.SimBudget = *simBudget
	}
	if *profBudget > 0 {
		s.Opts.ProfileBudget = *profBudget
	}
	s.Opts.Workers = *workers

	names := flag.Args()
	if len(names) == 0 {
		names = []string{"table1", "table2", "table3", "table4", "table5", "fig4", "fig5", "fig6", "fig7"}
	}

	ctx := exp.NewContext(s)
	// SIGINT cancels in-flight collection/evaluation at the next unit
	// boundary instead of leaving the terminal without a report line.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx.Ctx = sigCtx
	w := os.Stdout
	if *jsonOut != "" {
		rep, err := ctx.RunReport(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "napel-exp: report: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "napel-exp: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "napel-exp: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(w, "wrote JSON report to %s\n", *jsonOut)
		return
	}
	for i, name := range names {
		if i > 0 {
			fmt.Fprintln(w)
		}
		t0 := time.Now()
		var err error
		switch strings.ToLower(name) {
		case "table1":
			exp.Table1(w)
		case "table2":
			exp.Table2(w)
		case "table3":
			exp.Table3(w)
		case "table5":
			exp.Table5(w)
		case "table4":
			_, err = ctx.Table4(w)
		case "fig4":
			_, err = ctx.Fig4(w)
		case "fig5":
			_, err = ctx.Fig5(w)
		case "fig6":
			_, err = ctx.Fig6(w)
		case "fig7":
			_, err = ctx.Fig7(w)
		case "ablation":
			_, err = ctx.Ablation(w)
		case "importance":
			_, err = ctx.Importance(w)
		case "generalization":
			_, err = ctx.Generalization(w)
		case "sensitivity":
			_, err = ctx.Sensitivity(w)
		case "scratchpad":
			_, err = ctx.Scratchpad(w)
		default:
			err = fmt.Errorf("unknown experiment %q (want table1|table2|table3|table4|table5|fig4|fig5|fig6|fig7|ablation|importance|generalization|sensitivity|scratchpad)", name)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "napel-exp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s completed in %.1fs]\n", name, time.Since(t0).Seconds())
	}
}
