package main

import (
	"testing"
)

func TestParamListParsing(t *testing.T) {
	p := paramList{}
	if err := p.Set("dim=128"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("threads=8"); err != nil {
		t.Fatal(err)
	}
	if p["dim"] != 128 || p["threads"] != 8 {
		t.Fatalf("parsed %v", p)
	}
	if err := p.Set("noequals"); err == nil {
		t.Error("missing '=' accepted")
	}
	if err := p.Set("dim=abc"); err == nil {
		t.Error("non-numeric value accepted")
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestKernelFlagsResolve(t *testing.T) {
	kf := newKernelFlags("test", 1000)
	k, in, err := kf.resolve([]string{"-kernel", "atax", "-p", "dim=256", "-scale", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "atax" {
		t.Fatalf("kernel %s", k.Name())
	}
	if in["dim"] != 128 { // 256 scaled by 2
		t.Fatalf("dim = %d, want 128", in["dim"])
	}
	if in["threads"] != 32 { // test default preserved
		t.Fatalf("threads = %d", in["threads"])
	}
}

func TestKernelFlagsErrors(t *testing.T) {
	kf := newKernelFlags("test", 0)
	if _, _, err := kf.resolve([]string{}); err == nil {
		t.Error("missing -kernel accepted")
	}
	kf = newKernelFlags("test", 0)
	if _, _, err := kf.resolve([]string{"-kernel", "bogus"}); err == nil {
		t.Error("unknown kernel accepted")
	}
	kf = newKernelFlags("test", 0)
	if _, _, err := kf.resolve([]string{"-kernel", "atax", "-p", "bogusparam=1"}); err == nil {
		t.Error("unknown parameter accepted")
	}
}
