package main

import (
	"errors"
	"strings"
	"testing"

	"napel/internal/napel"
	"napel/internal/workload"
)

func TestParamListParsing(t *testing.T) {
	p := paramList{}
	if err := p.Set("dim=128"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("threads=8"); err != nil {
		t.Fatal(err)
	}
	if p["dim"] != 128 || p["threads"] != 8 {
		t.Fatalf("parsed %v", p)
	}
	if err := p.Set("noequals"); err == nil {
		t.Error("missing '=' accepted")
	}
	if err := p.Set("dim=abc"); err == nil {
		t.Error("non-numeric value accepted")
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestKernelFlagsResolve(t *testing.T) {
	kf := newKernelFlags("test", 1000)
	k, in, err := kf.resolve([]string{"-kernel", "atax", "-p", "dim=256", "-scale", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "atax" {
		t.Fatalf("kernel %s", k.Name())
	}
	if in["dim"] != 128 { // 256 scaled by 2
		t.Fatalf("dim = %d, want 128", in["dim"])
	}
	if in["threads"] != 32 { // test default preserved
		t.Fatalf("threads = %d", in["threads"])
	}
}

func TestKernelFlagsErrors(t *testing.T) {
	kf := newKernelFlags("test", 0)
	if _, _, err := kf.resolve([]string{}); err == nil {
		t.Error("missing -kernel accepted")
	}
	kf = newKernelFlags("test", 0)
	if _, _, err := kf.resolve([]string{"-kernel", "bogus"}); err == nil {
		t.Error("unknown kernel accepted")
	}
	kf = newKernelFlags("test", 0)
	if _, _, err := kf.resolve([]string{"-kernel", "atax", "-p", "bogusparam=1"}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

// TestReportQuarantinedDedupes is the regression test for the summary
// over-count: duplicate quarantine entries for the same unit key (a
// unit that failed, retried, and failed again) are reported — and
// counted in the exit message — once.
func TestReportQuarantinedDedupes(t *testing.T) {
	in := workload.Input{"dim": 8, "threads": 2}
	other := workload.Input{"dim": 16, "threads": 2}
	td := &napel.TrainingData{Quarantined: []napel.QuarantinedUnit{
		{App: "atax", Input: in, Error: "attempt 1"},
		{App: "atax", Input: in, Error: "attempt 2"},
		{App: "atax", Input: other, Error: "boom"},
		{App: "atax", Input: in, Error: "attempt 3"},
	}}
	err := reportQuarantined(td)
	var ec *exitCodeError
	if !errors.As(err, &ec) {
		t.Fatalf("err = %v, want *exitCodeError", err)
	}
	if ec.code != 3 {
		t.Fatalf("exit code %d, want 3", ec.code)
	}
	if want := "2 unit(s) quarantined"; !strings.Contains(ec.msg, want) {
		t.Fatalf("message %q does not count 2 distinct units", ec.msg)
	}
	if err := reportQuarantined(&napel.TrainingData{}); err != nil {
		t.Fatalf("empty quarantine list produced %v", err)
	}
}
