package main

import (
	"encoding/json"
	"os"

	"napel/internal/napel"
	"napel/internal/serve"
)

// runExportProfile characterizes a kernel and writes the exact request
// JSON that napel-serve consumes on POST /v1/predict, so a profile
// gathered on one machine can be predicted on a server elsewhere:
//
//	napel export-profile -kernel atax -out req.json
//	curl -d @req.json http://host:9090/v1/predict
func runExportProfile(args []string) error {
	kf := newKernelFlags("export-profile", 500_000)
	out := kf.fs.String("out", "-", "output path ('-' for stdout)")
	modelName := kf.fs.String("model-name", "", "model to request (empty = server default)")
	pes := kf.fs.Int("pes", 0, "request this PE count (0 = server baseline)")
	freq := kf.fs.Float64("freq", 0, "request this PE frequency in GHz (0 = baseline)")
	lines := kf.fs.Int("cache-lines", 0, "request this L1 line count (0 = baseline)")
	k, in, err := kf.resolve(args)
	if err != nil {
		return err
	}
	prof, err := napel.ProfileKernel(k, in, *kf.budget)
	if err != nil {
		return err
	}
	req := serve.PredictRequest{
		Model:   *modelName,
		Profile: serve.NewWireProfile(prof),
		Arch:    serve.WireArch{PEs: *pes, FreqGHz: *freq, L1Lines: *lines},
		Threads: in.Threads(),
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(req)
}
