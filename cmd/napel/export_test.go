package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"napel/internal/napel"
	"napel/internal/nmcsim"
	"napel/internal/serve"
	"napel/internal/workload"
)

// TestExportProfileRoundTrip pins the wire contract between the CLI and
// napel-serve: the emitted JSON decodes into a PredictRequest whose
// profile features, hit curve and architecture reproduce the in-process
// characterization exactly.
func TestExportProfileRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "req.json")
	err := runExportProfile([]string{
		"-kernel", "atax", "-scale", "16", "-max-iters", "1",
		"-budget", "30000", "-pes", "32", "-model-name", "prod", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var req serve.PredictRequest
	if err := json.Unmarshal(data, &req); err != nil {
		t.Fatal(err)
	}
	if req.Model != "prod" || req.Arch.PEs != 32 {
		t.Fatalf("request metadata lost: %+v", req)
	}

	// Re-run the same deterministic characterization directly.
	k, err := workload.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	in := workload.Scale(k, workload.TestInput(k), 16, 1)
	prof, err := napel.ProfileKernel(k, in, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if req.Threads != in.Threads() {
		t.Fatalf("threads %d, want %d", req.Threads, in.Threads())
	}
	if req.Profile.TotalInstrs != prof.TotalInstrs() {
		t.Fatalf("total instrs %g, want %g", req.Profile.TotalInstrs, prof.TotalInstrs())
	}

	want := serve.NewWireProfile(prof)
	if len(req.Profile.Features) != len(want.Features) {
		t.Fatalf("%d features, want %d", len(req.Profile.Features), len(want.Features))
	}
	for name, v := range want.Features {
		if got, ok := req.Profile.Features[name]; !ok || got != v {
			t.Fatalf("feature %s = %g, want %g", name, req.Profile.Features[name], v)
		}
	}
	if len(req.Profile.HitCurve) != len(want.HitCurve) {
		t.Fatalf("hit curve length %d, want %d", len(req.Profile.HitCurve), len(want.HitCurve))
	}
	for i, v := range want.HitCurve {
		if req.Profile.HitCurve[i] != v {
			t.Fatalf("hit curve[%d] = %g, want %g", i, req.Profile.HitCurve[i], v)
		}
	}

	// The exported hit curve must assemble into the same architecture
	// features the in-process ArchVector path produces.
	cfg := nmcsim.DefaultConfig()
	cfg.PEs = 32
	fromCurve, err := napel.ArchVectorFromCurve(cfg, req.Profile.HitCurve, req.Threads)
	if err != nil {
		t.Fatal(err)
	}
	direct := napel.ArchVector(cfg, prof, in.Threads())
	if len(fromCurve) != len(direct) {
		t.Fatalf("arch vector length %d, want %d", len(fromCurve), len(direct))
	}
	for i := range direct {
		if fromCurve[i] != direct[i] {
			t.Fatalf("arch feature %d = %g, want %g", i, fromCurve[i], direct[i])
		}
	}
}

func TestExportProfileToStdoutShape(t *testing.T) {
	out := filepath.Join(t.TempDir(), "req.json")
	if err := runExportProfile([]string{
		"-kernel", "atax", "-scale", "32", "-max-iters", "1", "-budget", "20000", "-out", out,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// The emitted document must use the documented wire field names.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	var profile map[string]json.RawMessage
	if err := json.Unmarshal(raw["profile"], &profile); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"features", "hit_curve", "total_instrs"} {
		if _, ok := profile[field]; !ok {
			t.Fatalf("profile field %q missing in %s", field, data)
		}
	}
}
