// Command napel is the command-line front end of the NAPEL framework:
//
//	napel list                       enumerate the bundled kernels
//	napel doe -kernel atax           show the CCD training configurations
//	napel profile -kernel atax       run the PISA characterization
//	napel simulate -kernel atax      run the NMC simulator (Table 3 system)
//	napel host -kernel atax          run the host (POWER9) model
//	napel trace -kernel atax -out t.bin   capture a dynamic trace to a file
//	napel trace -in t.bin                 summarize/profile a captured trace
//	napel compare -kernel bfs        host vs NMC offload verdict for one kernel
//	napel train -out model.json      train on all 12 apps and save the model
//	napel predict -kernel atax       train on the other 11 apps, predict this one
//	napel predict -kernel x -model model.json   predict with a saved model
//	napel export-profile -kernel atax -out req.json   emit a napel-serve request
//
// Kernel inputs default to the Table 2 test configuration; override
// individual parameters with repeated -p name=value flags and scale all
// of them down with -scale.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"napel/internal/napel"
	"napel/internal/obs"
	"napel/internal/pisa"
	"napel/internal/resilience/faultpoint"
	"napel/internal/trace"
	"napel/internal/workload"
)

// exitCodeError carries a distinct process exit status through the
// subcommand error path. Code 3 marks a run that completed but skipped
// quarantined units, so scripts can tell "partial data" from "failed".
type exitCodeError struct {
	code int
	msg  string
}

func (e *exitCodeError) Error() string { return e.msg }

// chaosFlags registers the deterministic fault-injection flags on a
// subcommand's flag set; the returned enable installs the plan after
// parsing (a no-op when -chaos-spec is empty).
func chaosFlags(fs *flag.FlagSet) (enable func() error) {
	seed := fs.Uint64("chaos-seed", 1, "seed of the deterministic fault-injection plan")
	spec := fs.String("chaos-spec", "", "fault-injection plan, e.g. 'engine.unit:0.1' (empty = chaos off)")
	return func() error {
		if *spec == "" {
			return nil
		}
		return faultpoint.Enable(*seed, *spec)
	}
}

// reportQuarantined prints every skipped unit and converts the run's nil
// error into the distinct quarantine exit code. Entries are deduplicated
// by unit key so a unit that failed, retried, and failed again is
// reported — and counted — once, however many times it appears.
func reportQuarantined(td *napel.TrainingData) error {
	if len(td.Quarantined) == 0 {
		return nil
	}
	seen := map[string]bool{}
	units := 0
	for _, q := range td.Quarantined {
		key := napel.UnitKey(q.App, q.Input)
		if seen[key] {
			continue
		}
		seen[key] = true
		units++
		fmt.Fprintf(os.Stderr, "napel: quarantined %s %s: %s\n", q.App, q.Input, q.Error)
	}
	return &exitCodeError{code: 3,
		msg: fmt.Sprintf("%d unit(s) quarantined; collected data excludes them", units)}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = runList()
	case "doe":
		err = runDoE(args)
	case "profile":
		err = runProfile(args)
	case "simulate":
		err = runSimulate(args)
	case "host":
		err = runHost(args)
	case "trace":
		err = runTrace(args)
	case "compare":
		err = runCompare(args)
	case "train":
		err = runTrain(args)
	case "predict":
		err = runPredict(args)
	case "export-profile":
		err = runExportProfile(args)
	case "version", "-version", "--version":
		fmt.Println(obs.VersionLine("napel"))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "napel: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "napel: %v\n", err)
		var ec *exitCodeError
		if errors.As(err, &ec) {
			os.Exit(ec.code)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: napel <list|doe|profile|simulate|host|trace|compare|train|predict|export-profile|version> [flags]")
	fmt.Fprintln(os.Stderr, "run 'napel <command> -h' for command flags")
	fmt.Fprintln(os.Stderr, "'train' and 'doe -collect' parallelize across -workers goroutines (default GOMAXPROCS)")
	fmt.Fprintln(os.Stderr, "and abort cleanly on interrupt, reporting partial timing")
}

// interruptContext returns a context cancelled by the first SIGINT, so a
// long-running collection stops at the next unit boundary and partial
// results can still be reported. A second SIGINT forces immediate exit
// with a non-zero status — signal.NotifyContext alone would swallow it
// while the first cancellation is still unwinding, leaving no way to
// kill a run that is slow to stop. stop deregisters the handler and
// restores default delivery.
func interruptContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "napel: interrupt — stopping at the next unit boundary (interrupt again to force exit)")
		cancel()
		<-ch
		fmt.Fprintln(os.Stderr, "napel: second interrupt, forcing exit")
		os.Exit(130)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() { signal.Stop(ch) })
		cancel()
	}
	return ctx, stop
}

// reportPartial prints what a cancelled collection managed to gather.
func reportPartial(td *napel.TrainingData) {
	var profT, simT float64
	for _, d := range td.ProfileTime {
		profT += d.Seconds()
	}
	for _, d := range td.SimTime {
		simT += d.Seconds()
	}
	fmt.Printf("interrupted: %d samples collected before cancellation (profiling %.1fs, simulation %.1fs)\n",
		len(td.Samples), profT, simT)
}

// kernelFlags holds the common flags of kernel-oriented subcommands.
type kernelFlags struct {
	fs     *flag.FlagSet
	name   *string
	scale  *int
	iters  *int
	budget *uint64
	params paramList
}

type paramList map[string]int

func (p paramList) String() string { return fmt.Sprint(map[string]int(p)) }

func (p paramList) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", v)
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return fmt.Errorf("parameter %s: %v", name, err)
	}
	p[name] = n
	return nil
}

func newKernelFlags(cmd string, defaultBudget uint64) *kernelFlags {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	kf := &kernelFlags{
		fs:     fs,
		name:   fs.String("kernel", "", "kernel name (see 'napel list')"),
		scale:  fs.Int("scale", 1, "divide dimension-like parameters by this factor"),
		iters:  fs.Int("max-iters", 0, "cap iteration-count parameters (0 = no cap)"),
		budget: fs.Uint64("budget", defaultBudget, "instruction budget (0 = unlimited)"),
		params: paramList{},
	}
	fs.Var(kf.params, "p", "override one input parameter, name=value (repeatable)")
	return kf
}

func (kf *kernelFlags) resolve(args []string) (workload.Kernel, workload.Input, error) {
	if err := kf.fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return kf.resolveParsed()
}

// resolveParsed derives the kernel and input after the flag set has
// already been parsed.
func (kf *kernelFlags) resolveParsed() (workload.Kernel, workload.Input, error) {
	if *kf.name == "" {
		return nil, nil, fmt.Errorf("missing -kernel (see 'napel list')")
	}
	k, err := workload.ByName(*kf.name)
	if err != nil {
		return nil, nil, err
	}
	in := workload.TestInput(k)
	for name, v := range kf.params {
		in[name] = v
	}
	in = workload.Scale(k, in, *kf.scale, *kf.iters)
	if err := workload.Validate(k, in); err != nil {
		return nil, nil, err
	}
	return k, in, nil
}

func runList() error {
	fmt.Printf("%-8s %-38s %s\n", "name", "description", "DoE parameters")
	list := func(ks []workload.Kernel) {
		for _, k := range ks {
			names := make([]string, 0, 4)
			for _, p := range k.Params() {
				names = append(names, p.Name)
			}
			fmt.Printf("%-8s %-38s %s\n", k.Name(), k.Description(), strings.Join(names, ", "))
		}
	}
	list(workload.All())
	fmt.Println("extension kernels (beyond the paper's Table 2):")
	list(workload.Extensions())
	return nil
}

func runDoE(args []string) error {
	kf := newKernelFlags("doe", 400_000)
	collect := kf.fs.Bool("collect", false, "run the DoE collection (profile + simulate every configuration)")
	workers := kf.fs.Int("workers", 0, "parallel collection workers (0 = GOMAXPROCS)")
	unitRetries := kf.fs.Int("unit-retries", 0, "re-execute a failed collection unit up to this many times")
	quarantine := kf.fs.Bool("quarantine", false, "skip units that exhaust their retries instead of aborting (exit code 3 when any skipped)")
	enableChaos := chaosFlags(kf.fs)
	k, _, err := kf.resolve(args)
	if err != nil {
		return err
	}
	if err := enableChaos(); err != nil {
		return err
	}
	inputs := napel.CCDInputs(k)
	fmt.Printf("%s: %d CCD training configurations\n", k.Name(), len(inputs))
	for i, in := range inputs {
		fmt.Printf("%3d  %s\n", i+1, in)
	}
	if !*collect {
		return nil
	}

	opts := napel.DefaultOptions()
	opts.ScaleFactor = *kf.scale
	if *kf.iters > 0 {
		opts.MaxIters = *kf.iters
	}
	opts.SimBudget = *kf.budget
	opts.Workers = *workers
	opts.UnitRetries = *unitRetries
	opts.QuarantineFailures = *quarantine
	ctx, stop := interruptContext()
	defer stop()
	fmt.Printf("collecting with %d workers...\n", effectiveWorkers(*workers))
	td, err := napel.CollectContext(ctx, []workload.Kernel{k}, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) && td != nil {
			reportPartial(td)
		}
		return err
	}
	for _, r := range td.Summary() {
		fmt.Printf("  %-6s %3d rows (%2d DoE confs), IPC [%.2f, %.2f], EPI [%.3g, %.3g] pJ\n",
			r.App, r.Rows, r.DoEConfigs, r.MinIPC, r.MaxIPC, r.MinEPI*1e12, r.MaxEPI*1e12)
	}
	fmt.Printf("profiling %.1fs, simulation %.1fs\n",
		td.ProfileTime[k.Name()].Seconds(), td.SimTime[k.Name()].Seconds())
	return reportQuarantined(td)
}

// effectiveWorkers mirrors Options' worker resolution for display.
func effectiveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

func runProfile(args []string) error {
	kf := newKernelFlags("profile", 1_000_000)
	full := kf.fs.Bool("features", false, "print the full 395-feature vector")
	jsonOut := kf.fs.String("json", "", "write the profile as JSON to this path ('-' for stdout)")
	k, in, err := kf.resolve(args)
	if err != nil {
		return err
	}
	prof, err := napel.ProfileKernel(k, in, *kf.budget)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		return prof.WriteJSON(out)
	}
	fmt.Printf("kernel %s, input %s\n", k.Name(), in)
	fmt.Printf("profiled instructions  %d (coverage %.4f, extrapolated total %.4g)\n",
		prof.SimInstrs(), prof.Coverage(), prof.TotalInstrs())
	fmt.Printf("memory footprint       %.4g bytes\n", prof.FootprintBytes())
	fmt.Printf("memory instruction mix %.1f%%\n", prof.MemFraction()*100)
	fmt.Printf("est. hit fraction at Table 3 L1 (2 lines): %.3f\n", prof.EstHitFraction(2))
	if *full {
		names := pisa.FeatureNames()
		vec := prof.Vector()
		for i, n := range names {
			fmt.Printf("%-28s %.6g\n", n, vec[i])
		}
	}
	return nil
}

func runSimulate(args []string) error {
	kf := newKernelFlags("simulate", 1_000_000)
	pes := kf.fs.Int("pes", 0, "override PE count")
	freq := kf.fs.Float64("freq", 0, "override PE frequency, GHz")
	lines := kf.fs.Int("cache-lines", 0, "override L1 line count")
	k, in, err := kf.resolve(args)
	if err != nil {
		return err
	}
	cfg := napel.DefaultOptions().RefArch
	if *pes > 0 {
		cfg.PEs = *pes
	}
	if *freq > 0 {
		cfg.FreqGHz = *freq
	}
	if *lines > 0 {
		cfg.L1.Lines = *lines
		if cfg.L1.Assoc > *lines {
			cfg.L1.Assoc = *lines
		}
	}
	res, err := napel.SimulateKernel(k, in, cfg, *kf.budget)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %s, input %s\n", k.Name(), in)
	fmt.Printf("NMC: %d PEs @ %.2f GHz, L1 %d x %dB\n", cfg.PEs, cfg.FreqGHz, cfg.L1.Lines, cfg.L1.LineSize)
	fmt.Printf("simulated instrs  %d (coverage %.4g, I_offload %.4g)\n", res.SimInstrs, res.Coverage, res.TotalInstrs)
	fmt.Printf("IPC (aggregate)   %.3f\n", res.IPC)
	fmt.Printf("exec time         %.4g s\n", res.TimeSec)
	fmt.Printf("energy            %.4g J (EPI %.4g pJ)\n", res.EnergyJ, res.EPI*1e12)
	fmt.Printf("  breakdown       PE %.3g | cache %.3g | DRAM %.3g | link %.3g | static %.3g J\n",
		res.Energy.PEJ, res.Energy.CacheJ, res.Energy.DRAMJ, res.Energy.LinkJ, res.Energy.StaticJ)
	fmt.Printf("EDP               %.4g J*s\n", res.EDP)
	fmt.Printf("L1 hit rate       %.3f\n", res.L1.HitRate())
	fmt.Printf("DRAM              %d activates, %d reads, %d writes, %d coalesced row hits\n",
		res.DRAM.Activations, res.DRAM.Reads, res.DRAM.Writes, res.DRAM.RowHits)
	return nil
}

func runHost(args []string) error {
	kf := newKernelFlags("host", 2_000_000)
	k, in, err := kf.resolve(args)
	if err != nil {
		return err
	}
	res, err := napel.HostRun(k, in, napel.DefaultOptions().Host, *kf.budget)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %s, input %s\n", k.Name(), in)
	fmt.Printf("simulated instrs  %d (coverage %.4g)\n", res.SimInstrs, res.Coverage)
	fmt.Printf("exec time         %.4g s (thread speedup %.1fx)\n", res.TimeSec, res.Speedup)
	fmt.Printf("energy            %.4g J\n", res.EnergyJ)
	fmt.Printf("  breakdown       core %.3g | caches %.3g | DRAM %.3g | static %.3g J\n",
		res.Energy.CoreJ, res.Energy.CacheJ, res.Energy.DRAMJ, res.Energy.StaticJ)
	fmt.Printf("EDP               %.4g J*s\n", res.EDP)
	fmt.Printf("caches            L1 %.3f / L2 %.3f / L3 %.3f hit\n",
		res.L1.HitRate(), res.L2.HitRate(), res.L3.HitRate())
	fmt.Printf("off-chip traffic  %.4g bytes, shared-write fraction %.3f\n", res.DRAMBytes, res.SharedWriteFrac)
	return nil
}

// runTrace captures a kernel's dynamic trace to a file (-out) or
// summarizes and profiles a previously captured file (-in).
func runTrace(args []string) error {
	kf := newKernelFlags("trace", 500_000)
	out := kf.fs.String("out", "", "write the captured trace to this path")
	in := kf.fs.String("in", "", "read and summarize a trace file instead of capturing")
	if err := kf.fs.Parse(args); err != nil {
		return err
	}
	if *in != "" {
		return summarizeTrace(*in)
	}
	k, input, err := kf.resolveParsed()
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing -out path (or use -in to inspect a file)")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	count, cov, err := trace.WriteTrace(f, *kf.budget, func(tr *trace.Tracer) {
		k.Trace(input, 0, 1, tr)
	})
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("captured %d instructions of %s at %s (coverage %.4g) to %s\n",
		count, k.Name(), input, cov, *out)
	return nil
}

// summarizeTrace replays a trace file through the PISA profiler and
// prints the headline characterization.
func summarizeTrace(path string) error {
	if path == "" {
		return fmt.Errorf("missing -in path")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fr, err := trace.OpenTrace(f)
	if err != nil {
		return err
	}
	prof := pisa.NewProfiler()
	n, err := fr.Replay(prof)
	if err != nil {
		return err
	}
	prof.SetCoverage(fr.Coverage)
	p := prof.Profile()
	fmt.Printf("trace file %s\n", path)
	fmt.Printf("records            %d (coverage %.4g, extrapolated total %.4g)\n", n, fr.Coverage, p.TotalInstrs())
	fmt.Printf("memory fraction    %.1f%%\n", p.MemFraction()*100)
	fmt.Printf("memory footprint   %.4g bytes\n", p.FootprintBytes())
	fmt.Printf("est. hit fraction at Table 3 L1 (2 lines): %.3f\n", p.EstHitFraction(2))
	return nil
}

// runCompare runs the one-kernel version of the Section 3.4 use case:
// host execution vs NMC offload, judged by energy-delay product, with an
// optional NAPEL model providing the simulation-free estimate alongside
// the simulator's ground truth.
func runCompare(args []string) error {
	kf := newKernelFlags("compare", 1_500_000)
	modelPath := kf.fs.String("model", "", "optional predictor from 'napel train' for the NAPEL estimate")
	k, in, err := kf.resolve(args)
	if err != nil {
		return err
	}
	opts := napel.DefaultOptions()

	host, err := napel.HostRun(k, in, opts.Host, *kf.budget)
	if err != nil {
		return err
	}
	nmc, err := napel.SimulateKernel(k, in, opts.RefArch, *kf.budget)
	if err != nil {
		return err
	}

	fmt.Printf("kernel %s, input %s\n\n", k.Name(), in)
	fmt.Printf("%-14s %14s %14s %14s\n", "", "time (s)", "energy (J)", "EDP (J*s)")
	fmt.Printf("%-14s %14.4g %14.4g %14.4g\n", "host (POWER9)", host.TimeSec, host.EnergyJ, host.EDP)
	fmt.Printf("%-14s %14.4g %14.4g %14.4g\n", "NMC (Table 3)", nmc.TimeSec, nmc.EnergyJ, nmc.EDP)
	reduction := 0.0
	if nmc.EDP > 0 {
		reduction = host.EDP / nmc.EDP
	}
	verdict := "keep on the host"
	if reduction > 1 {
		verdict = "offload to NMC"
	}
	fmt.Printf("\nEDP reduction %.2fx -> %s\n", reduction, verdict)

	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		pred, err := napel.LoadPredictor(f)
		f.Close()
		if err != nil {
			return err
		}
		prof, err := napel.ProfileKernel(k, in, *kf.budget/4)
		if err != nil {
			return err
		}
		est := pred.Predict(prof, opts.RefArch, in.Threads())
		predReduction := 0.0
		if est.EDP > 0 {
			predReduction = host.EDP / est.EDP
		}
		fmt.Printf("NAPEL estimate (no simulation): EDP %.4g J*s, reduction %.2fx\n", est.EDP, predReduction)
		if (predReduction > 1) == (reduction > 1) {
			fmt.Println("NAPEL agrees with the simulator's verdict")
		} else {
			fmt.Println("NAPEL disagrees with the simulator's verdict")
		}
	}
	return nil
}

// runTrain collects DoE data for the selected applications (all twelve
// by default), trains the two models and writes the predictor to -out.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "napel-model.json", "output path for the trained predictor")
	kernels := fs.String("kernels", "", "comma-separated kernel subset to train on (default: all 12 apps)")
	trainScale := fs.Int("train-scale", 1, "scale factor for the DoE training inputs")
	simBudget := fs.Uint64("train-sim-budget", 400_000, "instructions per training simulation")
	profBudget := fs.Uint64("train-profile-budget", 500_000, "instructions per training profile")
	tune := fs.Bool("tune", false, "run the hyper-parameter grid search")
	seed := fs.Uint64("seed", 42, "pipeline seed")
	workers := fs.Int("workers", 0, "parallel collection workers (0 = GOMAXPROCS)")
	resume := fs.String("resume", "", "checkpoint file: collection progress is saved here and an interrupted run restarted with the same flags continues from it")
	traceOut := fs.String("trace-out", "", "write the engine's per-unit spans as JSON lines to this file")
	metricsOut := fs.String("metrics-out", "", "write the engine's metrics (Prometheus text format) to this file after collection ('-' for stderr)")
	unitRetries := fs.Int("unit-retries", 0, "re-execute a failed collection unit up to this many times")
	quarantine := fs.Bool("quarantine", false, "skip units that exhaust their retries instead of aborting (exit code 3 when any skipped)")
	enableChaos := chaosFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := enableChaos(); err != nil {
		return err
	}

	opts := napel.DefaultOptions()
	opts.ScaleFactor = *trainScale
	opts.SimBudget = *simBudget
	opts.ProfileBudget = *profBudget
	opts.Workers = *workers
	opts.UnitRetries = *unitRetries
	opts.QuarantineFailures = *quarantine
	if *metricsOut != "" {
		opts.Metrics = obs.NewRegistry()
		obs.RegisterBuildInfo(opts.Metrics, "napel")
	}

	apps := workload.All()
	if *kernels != "" {
		apps = apps[:0:0]
		for _, name := range strings.Split(*kernels, ",") {
			k, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			apps = append(apps, k)
		}
	}

	// With -resume, completed (kernel, input) units are checkpointed to
	// the named file as collection progresses; a prior checkpoint seeds
	// the run so only unfinished units execute. The final model is
	// bit-identical either way.
	var ck *napel.CollectCheckpoint
	if *resume != "" {
		prior, err := napel.LoadTrainingDataFile(*resume)
		switch {
		case err == nil:
			fmt.Printf("resuming from checkpoint %s (%d samples)\n", *resume, len(prior.Samples))
		case errors.Is(err, os.ErrNotExist):
			prior = nil // first run: the file appears once units complete
		default:
			return fmt.Errorf("reading checkpoint %s: %w", *resume, err)
		}
		lastWrite := time.Now()
		ck = &napel.CollectCheckpoint{
			Prior: prior,
			OnUnit: func(done, total int, snapshot func() *napel.TrainingData) {
				if done < total && time.Since(lastWrite) < time.Second {
					return
				}
				lastWrite = time.Now()
				if err := napel.WriteTrainingDataFile(*resume, snapshot()); err != nil {
					fmt.Fprintf(os.Stderr, "napel: checkpoint write failed: %v\n", err)
				}
			},
		}
	}

	fmt.Printf("collecting DoE training data for %d applications (%d workers)...\n",
		len(apps), effectiveWorkers(*workers))
	ctx, stop := interruptContext()
	defer stop()
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		ctx = obs.WithTracer(ctx, obs.NewTracer(0, f))
	}
	// The exposition dump happens on every exit path, so an interrupted
	// run still reports how far the engine got.
	if opts.Metrics != nil {
		defer func() {
			if werr := writeMetricsFile(*metricsOut, opts.Metrics); werr != nil {
				fmt.Fprintf(os.Stderr, "napel: writing metrics: %v\n", werr)
			}
		}()
	}
	td, err := napel.CollectResumeContext(ctx, apps, opts, ck)
	if err != nil {
		if errors.Is(err, context.Canceled) && td != nil {
			reportPartial(td)
			if *resume != "" && len(td.Samples) > 0 {
				if werr := napel.WriteTrainingDataFile(*resume, td); werr == nil {
					fmt.Printf("checkpoint saved to %s; rerun with the same flags to continue\n", *resume)
				}
			}
		}
		return err
	}
	for _, r := range td.Summary() {
		fmt.Printf("  %-6s %3d rows (%2d DoE confs), IPC [%.2f, %.2f], EPI [%.3g, %.3g] pJ\n",
			r.App, r.Rows, r.DoEConfigs, r.MinIPC, r.MaxIPC, r.MinEPI*1e12, r.MaxEPI*1e12)
	}
	fmt.Printf("training NAPEL on %d samples...\n", len(td.Samples))
	var pred *napel.Predictor
	if *tune {
		pred, err = napel.TrainTuned(td, *seed)
	} else {
		pred, err = napel.Train(td, *seed)
	}
	if err != nil {
		return err
	}
	// Atomic publish: a napel-serve instance (re)loading -out mid-write
	// sees the previous complete model, never a truncated one.
	if err := napel.WritePredictorFile(*out, pred); err != nil {
		return err
	}
	if *resume != "" {
		if err := os.Remove(*resume); err != nil && !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "napel: removing checkpoint %s: %v\n", *resume, err)
		}
	}
	if oobIPC, oobEPI := pred.OOB(); oobIPC >= 0 {
		fmt.Printf("out-of-bag MRE: performance %.1f%%, energy %.1f%% (log-space)\n", oobIPC*100, oobEPI*100)
	}
	fmt.Printf("saved predictor (%v, train time %.1fs) to %s\n", pred.Chosen, pred.TrainTime.Seconds(), *out)
	// The model is published either way; quarantined units only change
	// the exit status so callers can detect the thinner dataset.
	return reportQuarantined(td)
}

// writeMetricsFile dumps a registry's exposition text to path, with "-"
// meaning stderr.
func writeMetricsFile(path string, reg *obs.Registry) error {
	if path == "-" {
		return reg.WriteText(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runPredict(args []string) error {
	kf := newKernelFlags("predict", 150_000)
	modelPath := kf.fs.String("model", "", "load a predictor saved by 'napel train' instead of training")
	trainScale := kf.fs.Int("train-scale", 1, "scale factor for the DoE training inputs")
	simBudget := kf.fs.Uint64("train-sim-budget", 400_000, "instructions per training simulation")
	tune := kf.fs.Bool("tune", false, "run the hyper-parameter grid search")
	k, in, err := kf.resolve(args)
	if err != nil {
		return err
	}

	opts := napel.DefaultOptions()
	opts.ScaleFactor = *trainScale
	opts.SimBudget = *simBudget
	opts.ProfileBudget = 500_000

	var pred *napel.Predictor
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		pred, err = napel.LoadPredictor(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded predictor from %s\n", *modelPath)
	} else {
		// Leave-one-application-out: train on everything except the target.
		var others []workload.Kernel
		for _, other := range workload.All() {
			if other.Name() != k.Name() {
				others = append(others, other)
			}
		}
		fmt.Printf("collecting DoE training data for %d applications...\n", len(others))
		td, err := napel.Collect(others, opts)
		if err != nil {
			return err
		}
		fmt.Printf("training NAPEL on %d samples...\n", len(td.Samples))
		if *tune {
			pred, err = napel.TrainTuned(td, 42)
		} else {
			pred, err = napel.Train(td, 42)
		}
		if err != nil {
			return err
		}
		fmt.Printf("chosen models: %v (train time %.1fs)\n", pred.Chosen, pred.TrainTime.Seconds())
	}

	prof, err := napel.ProfileKernel(k, in, *kf.budget)
	if err != nil {
		return err
	}
	est := pred.Predict(prof, opts.RefArch, in.Threads())
	fmt.Printf("prediction for unseen application %s at %s:\n", k.Name(), in)
	fmt.Printf("  IPC        %.3f\n", est.IPC)
	fmt.Printf("  exec time  %.4g s (I_offload %.4g)\n", est.TimeSec, est.TotalInstrs)
	fmt.Printf("  energy     %.4g J (EPI %.4g pJ)\n", est.EnergyJ, est.EPI*1e12)
	fmt.Printf("  EDP        %.4g J*s\n", est.EDP)
	return nil
}
