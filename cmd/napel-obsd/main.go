// Command napel-obsd is the fleet observability aggregation plane: it
// pull-scrapes /metrics from every process named in -targets and/or a
// -targets-file (one job=URL per line, re-read periodically so fleet
// churn needs no restart) and re-exports the merged series under
// job/instance labels on its own /metrics, accepts span batches pushed by processes started with
// -trace-push, and serves /debug/fleet — cross-process trace trees
// (one loadgen request or one collection unit as a single tree spanning
// loadgen, gate, serve, and traind spans) plus SLO burn rates computed
// from the merged serve series.
//
//	napel-serve -model model.json -addr :9191 -trace-push http://127.0.0.1:9095 &
//	napel-gate  -addr :9090 -replicas http://127.0.0.1:9191 -trace-push http://127.0.0.1:9095 &
//	napel-obsd  -addr :9095 -targets gate=http://127.0.0.1:9090,serve=http://127.0.0.1:9191
//	curl http://localhost:9095/metrics      # napel_fleet_* merged series
//	curl http://localhost:9095/debug/fleet  # trace trees + SLO burn
//
// Endpoints: GET /metrics, GET /debug/fleet, POST /v1/spans,
// GET /healthz, GET /debug/pprof/..., GET /debug/runtime.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"napel/internal/obs"
	"napel/internal/obsd"
)

func main() {
	addr := flag.String("addr", ":9095", "listen address")
	targets := flag.String("targets", "", "comma-separated scrape targets, each job=http://host:port or a bare URL")
	targetsFile := flag.String("targets-file", "", "file of scrape targets, one job=URL per line (# comments), re-read every -targets-reload so fleet churn needs no restart")
	targetsReload := flag.Duration("targets-reload", 0, "re-read period for -targets-file (0 = default 10s)")
	scrapeInterval := flag.Duration("scrape-interval", 0, "time between scrape rounds (0 = default 2s)")
	spanCap := flag.Int("span-cap", 0, "max retained pushed spans, oldest evicted (0 = default 16384)")
	sloAvail := flag.Float64("slo-availability", 0, "availability objective for the burn-rate view (0 = default 0.999)")
	sloLatency := flag.Float64("slo-latency", 0, "latency SLO threshold in seconds; should match a serve histogram bucket bound (0 = default 0.25)")
	sloLatencyObjective := flag.Float64("slo-latency-objective", 0, "fraction of requests that should land under the latency threshold (0 = default 0.99)")
	drain := flag.Duration("drain-timeout", 5*time.Second, "in-flight drain deadline on shutdown")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("napel-obsd"))
		return
	}

	if *targets == "" && *targetsFile == "" {
		fmt.Fprintln(os.Stderr, "napel-obsd: -targets or -targets-file is required")
		flag.Usage()
		os.Exit(2)
	}
	var parsed []obsd.Target
	if *targets != "" {
		var err error
		parsed, err = obsd.ParseTargets(*targets)
		if err != nil {
			fmt.Fprintf(os.Stderr, "napel-obsd: %v\n", err)
			os.Exit(2)
		}
	}

	a, err := obsd.New(obsd.Config{
		Targets:             parsed,
		TargetsFile:         *targetsFile,
		TargetsReload:       *targetsReload,
		ScrapeInterval:      *scrapeInterval,
		SpanCap:             *spanCap,
		SLOAvailability:     *sloAvail,
		SLOLatencySeconds:   *sloLatency,
		SLOLatencyObjective: *sloLatencyObjective,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "napel-obsd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "napel-obsd: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go a.Run(ctx)

	srv := &http.Server{Addr: *addr, Handler: a.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "napel-obsd: scraping %d targets, listening on %s\n", a.TargetCount(), *addr)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "napel-obsd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "napel-obsd: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "napel-obsd: exiting")
}
