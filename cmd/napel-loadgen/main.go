// Command napel-loadgen drives a live napel-serve with replayable mixed
// traffic and gates the result on SLOs, emitting the machine-readable
// BENCH_*.json reports that form the repo's performance trajectory:
//
//	napel train -out model.json
//	napel-serve -model model.json -addr :9090 &
//	napel-loadgen -target http://localhost:9090 -requests 2000 \
//	    -probe-model model.json -slo-p99 250ms -min-rps 50 -out BENCH_6.json
//
// Traffic mixes single POST /v1/predict, batched predict arrays and
// POST /v1/suitability per -mix. Two load shapes:
//
//   - closed-loop (default): -workers concurrent clients issuing
//     requests back to back with optional -think pauses, honoring
//     Retry-After on 429/503 (capped by -max-retry-after) so a
//     backpressuring server is paced, not hammered;
//   - open-loop (-mode open -rps N): a seeded exponential arrival
//     schedule at the target rate, shedding arrivals beyond
//     -max-outstanding instead of queueing.
//
// Bodies are synthesized from -seed: the same seed yields a
// byte-identical request schedule, attested by digests in the report.
// With -probe-model, sampled responses are verified bit-for-bit against
// a local copy of the served model file — a server that is fast but
// wrong fails the run. With -base, variants reuse a real exported
// profile (see 'napel export-profile') and vary only the architecture
// point.
//
// Exit codes: 0 all SLO gates passed; 1 runtime error; 2 usage error;
// 3 SLO violation; 4 interrupted (SIGINT/SIGTERM — a partial report is
// still written, marked "interrupted").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"napel/internal/loadgen"
	"napel/internal/obs"
	"napel/internal/serve"
)

const (
	exitOK          = 0
	exitError       = 1
	exitUsage       = 2
	exitSLO         = 3
	exitInterrupted = 4
)

func main() {
	os.Exit(run())
}

func run() int {
	target := flag.String("target", "", "base URL(s) to drive, comma-separated for round-robin across replicas or a gate (required)")
	scrapeTargets := flag.String("scrape-targets", "", "comma-separated /metrics endpoints to bracket the run (default: the -target list)")
	topology := flag.String("topology", "", "serving-shape stamp for the report, e.g. 'gate+3x serve'")
	mode := flag.String("mode", "closed", "load shape: closed (workers) or open (target rate)")
	workers := flag.Int("workers", 8, "closed-loop concurrent clients")
	think := flag.Duration("think", 0, "closed-loop pause between a worker's requests")
	rps := flag.Float64("rps", 0, "open-loop target arrival rate (requests/sec)")
	maxOutstanding := flag.Int("max-outstanding", 256, "open-loop in-flight bound; arrivals beyond it are shed and counted")
	requests := flag.Uint64("requests", 0, "stop after this many scheduled requests (0 = use -duration)")
	duration := flag.Duration("duration", 0, "stop after this much wall time (0 = use -requests)")
	seed := flag.Uint64("seed", 1, "seed for the replayable request schedule and bodies")
	keyspace := flag.Int("keyspace", 32, "distinct request variants per class (smaller = hotter server cache)")
	batchSize := flag.Int("batch-size", 16, "items per batched predict body")
	mixSpec := flag.String("mix", "", "traffic mix, e.g. predict=60,batch=20,suitability=20 (empty = default)")
	model := flag.String("model", "", "model name to request (empty = server default)")
	basePath := flag.String("base", "", "request file from 'napel export-profile'; variants reuse its profile and vary the architecture point")
	probeModel := flag.String("probe-model", "", "local copy of the served model file; sampled responses are verified against it bit-for-bit")
	probeEvery := flag.Int("probe-every", 8, "probe every Nth successful request per worker")
	maxRetryAfter := flag.Duration("max-retry-after", 2*time.Second, "cap on honored Retry-After hints")
	sloP99 := flag.Duration("slo-p99", 0, "SLO: overall p99 latency bound (0 disables)")
	minRPS := flag.Float64("min-rps", 0, "SLO: minimum achieved throughput in ok requests/sec (0 disables)")
	maxErrorRate := flag.Float64("max-error-rate", -1, "SLO: maximum hard-error fraction of issued requests, backpressure excluded (negative disables)")
	expectDegraded := flag.Bool("expect-degraded", false, "SLO: require at least one degraded answer (chaos-under-load gate)")
	scrape := flag.Bool("scrape", true, "scrape target /metrics before and after, attributing server-side allocs/GC/cache behavior")
	out := flag.String("out", "-", "report file ('-' = stdout)")
	tracePush := flag.String("trace-push", "", "push the client spans in bounded batches to this napel-obsd base URL (empty = off)")
	pr := flag.Int("pr", 0, "PR number stamped into the report (BENCH_<pr>.json trajectory key)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("napel-loadgen"))
		return exitOK
	}
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "napel-loadgen: %v\n", err)
		return exitError
	}
	usage := func(msg string) int {
		fmt.Fprintf(os.Stderr, "napel-loadgen: %s\n", msg)
		flag.Usage()
		return exitUsage
	}
	targets := splitList(*target)
	if len(targets) == 0 {
		return usage("-target is required")
	}
	if *requests == 0 && *duration <= 0 {
		return usage("one of -requests or -duration must bound the run")
	}
	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		return usage(err.Error())
	}

	cfg := loadgen.Config{
		Targets:        targets,
		ScrapeTargets:  splitList(*scrapeTargets),
		Mode:           loadgen.Mode(*mode),
		Workers:        *workers,
		Think:          *think,
		RPS:            *rps,
		MaxOutstanding: *maxOutstanding,
		Requests:       *requests,
		Duration:       *duration,
		Mix:            mix,
		ProbeEvery:     *probeEvery,
		MaxRetryAfter:  *maxRetryAfter,
		ScrapeMetrics:  *scrape,
		Synth: loadgen.SynthConfig{
			Seed:      *seed,
			Keyspace:  *keyspace,
			BatchSize: *batchSize,
			Model:     *model,
		},
		SLO: loadgen.SLOLimits{
			P99:            *sloP99,
			MinRPS:         *minRPS,
			MaxErrorRate:   *maxErrorRate,
			ExpectDegraded: *expectDegraded,
		},
	}
	if *basePath != "" {
		data, err := os.ReadFile(*basePath)
		if err != nil {
			return fail(err)
		}
		base := &serve.PredictRequest{}
		if err := json.Unmarshal(data, base); err != nil {
			return fail(fmt.Errorf("parsing -base %s: %w", *basePath, err))
		}
		cfg.Synth.Base = base
	}
	if *probeModel != "" {
		prober, err := loadgen.NewModelProber(*probeModel)
		if err != nil {
			return fail(fmt.Errorf("loading -probe-model: %w", err))
		}
		cfg.Prober = prober
	}

	if *tracePush != "" {
		// Requests are traceparent-stamped either way; the tracer keeps
		// loadgen's copy of each client span so obsd can root the
		// cross-process tree at the request's origin.
		tracer := obs.NewTracer(0, nil)
		p := obs.NewPusher(obs.PushConfig{URL: *tracePush, Process: "napel-loadgen"})
		defer p.Close()
		tracer.SetPusher(p)
		cfg.Trace = tracer
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	startedAt := time.Now().UTC()

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	rep.PR = *pr
	rep.GitRev = obs.Revision()
	rep.StartedAt = startedAt.Format(time.RFC3339)
	rep.Topology = *topology

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail(err)
	}

	summarize(rep)
	switch {
	case rep.Interrupted:
		fmt.Fprintln(os.Stderr, "napel-loadgen: interrupted; partial report written")
		return exitInterrupted
	case !rep.SLOPass:
		fmt.Fprintln(os.Stderr, "napel-loadgen: SLO violation")
		return exitSLO
	}
	return exitOK
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// summarize prints the human-readable digest to stderr; stdout stays
// reserved for the JSON report.
func summarize(rep *loadgen.Report) {
	fmt.Fprintf(os.Stderr, "napel-loadgen: %s %s seed=%d mix=%s %.1fs\n",
		rep.Mode, rep.Target, rep.Seed, rep.Mix, rep.DurationSeconds)
	fmt.Fprintf(os.Stderr, "  issued %d  ok %d (%.1f req/s)  errors %d  backpressure %d  degraded %d\n",
		rep.Issued, rep.OK, rep.RequestsPerSec, rep.Errors, rep.Backpressure, rep.Degraded)
	for _, ep := range rep.Endpoints {
		if ep.Issued == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-12s p50 %7.2fms  p90 %7.2fms  p99 %7.2fms  p99.9 %7.2fms  (%d ok)\n",
			ep.Endpoint, ep.Latency.P50Ms, ep.Latency.P90Ms, ep.Latency.P99Ms, ep.Latency.P999Ms, ep.OK)
	}
	if rep.Probe.Enabled {
		fmt.Fprintf(os.Stderr, "  probed %d responses, %d mismatches\n", rep.Probe.Checked, rep.Probe.Mismatches)
	}
	if rep.Server != nil {
		fmt.Fprintf(os.Stderr, "  server: %.0f reqs, cache hit %.0f%%, %.0f B + %.1f mallocs per request, %d GC cycles\n",
			rep.Server.RequestsTotal, rep.Server.CacheHitRatio*100,
			rep.Server.AllocBytesPerRequest, rep.Server.MallocsPerRequest, int(rep.Server.GCCycles))
	}
	for _, v := range rep.SLO {
		fmt.Fprintf(os.Stderr, "  slo: %s\n", v)
	}
}
