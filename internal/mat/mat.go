// Package mat implements the small amount of dense linear algebra the
// NAPEL baselines need: matrix/vector arithmetic, Cholesky and
// Gaussian-elimination solvers, and ridge least squares. It is written
// for clarity and determinism rather than BLAS-level performance; the
// systems in this repository only ever solve systems with a few hundred
// unknowns.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a*b. Panics on dimension mismatch.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a·x as a new vector. Panics on dimension mismatch.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// ErrSingular is returned when a solve encounters a (numerically)
// singular system.
var ErrSingular = errors.New("mat: singular matrix")

// SolveGauss solves A·x = b by Gaussian elimination with partial
// pivoting. A and b are not modified.
func SolveGauss(a *Dense, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mat: SolveGauss needs square A and matching b")
	}
	// Augmented working copy.
	w := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			wp, wc := w.Row(p), w.Row(col)
			for j := range wp {
				wp[j], wc[j] = wc[j], wp[j]
			}
			x[p], x[col] = x[col], x[p]
		}
		piv := w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) / piv
			if f == 0 {
				continue
			}
			wr, wc := w.Row(r), w.Row(col)
			for j := col; j < n; j++ {
				wr[j] -= f * wc[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := w.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite A. Returns ErrSingular if A is not SPD.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.Rows
	if a.Cols != n {
		panic("mat: Cholesky needs a square matrix")
	}
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A.
func SolveCholesky(l *Dense, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// RidgeLS solves the ridge least-squares problem
// min ‖X·w − y‖² + λ‖w‖² via the normal equations
// (XᵀX + λI)·w = Xᵀy. λ must be >= 0; λ > 0 guarantees a solution.
func RidgeLS(x *Dense, y []float64, lambda float64) ([]float64, error) {
	if x.Rows != len(y) {
		panic("mat: RidgeLS dimension mismatch")
	}
	p := x.Cols
	xtx := NewDense(p, p)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for i := 0; i < p; i++ {
			if row[i] == 0 {
				continue
			}
			xi := row[i]
			base := xtx.Row(i)
			for j := i; j < p; j++ {
				base[j] += xi * row[j]
			}
		}
	}
	// Mirror the upper triangle and add the ridge.
	for i := 0; i < p; i++ {
		xtx.Data[i*p+i] += lambda
		for j := i + 1; j < p; j++ {
			xtx.Set(j, i, xtx.At(i, j))
		}
	}
	xty := make([]float64, p)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		yr := y[r]
		for j := 0; j < p; j++ {
			xty[j] += row[j] * yr
		}
	}
	if l, err := Cholesky(xtx); err == nil {
		return SolveCholesky(l, xty), nil
	}
	return SolveGauss(xtx, xty)
}
