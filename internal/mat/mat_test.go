package mat

import (
	"math"
	"testing"
	"testing/quick"

	"napel/internal/xrand"
)

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows broken: %+v", m)
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set/At broken")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Fatalf("transpose broken: %+v", tr)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVecAndDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y := MulVec(a, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot broken")
	}
}

func TestSolveGaussKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveGauss(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Fatalf("x = %v, want [0.8 1.4]", x)
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveGauss(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveGaussNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveGauss(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

// TestSolveGaussProperty: A·x == b for random well-conditioned systems.
func TestSolveGaussProperty(t *testing.T) {
	rng := xrand.New(77)
	if err := quick.Check(func(sz uint8) bool {
		n := int(sz%6) + 2
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveGauss(a, b)
		if err != nil {
			return false
		}
		ax := MulVec(a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 5}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L should be [[2,0],[1,2]].
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 || math.Abs(l.At(1, 1)-2) > 1e-12 {
		t.Fatalf("L = %v", l.Data)
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveCholeskyProperty(t *testing.T) {
	rng := xrand.New(88)
	if err := quick.Check(func(sz uint8) bool {
		n := int(sz%5) + 2
		// Build SPD A = M·Mᵀ + n·I.
		m := NewDense(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := Mul(m, m.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := SolveCholesky(l, b)
		ax := MulVec(a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-7 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeLSRecoversLinear(t *testing.T) {
	// y = 3*x0 - 2*x1, plenty of samples, tiny ridge.
	rng := xrand.New(99)
	n := 200
	x := NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = 3*a - 2*b
	}
	w, err := RidgeLS(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-3) > 1e-4 || math.Abs(w[1]+2) > 1e-4 {
		t.Fatalf("w = %v, want [3 -2]", w)
	}
}

func TestRidgeLSShrinks(t *testing.T) {
	// With a huge ridge, weights shrink toward zero.
	x := FromRows([][]float64{{1}, {2}, {3}})
	y := []float64{1, 2, 3}
	small, _ := RidgeLS(x, y, 1e-9)
	big, _ := RidgeLS(x, y, 1e6)
	if math.Abs(big[0]) >= math.Abs(small[0]) {
		t.Fatalf("ridge did not shrink: small=%v big=%v", small, big)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row is not a view")
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := xrand.New(123)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		mk := func() *Dense {
			m := NewDense(n, n)
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
			return m
		}
		a, b, c := mk(), mk(), mk()
		ab_c := Mul(Mul(a, b), c)
		a_bc := Mul(a, Mul(b, c))
		for i := range ab_c.Data {
			if math.Abs(ab_c.Data[i]-a_bc.Data[i]) > 1e-9 {
				t.Fatalf("associativity violated at %d", i)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		r, c := 1+rng.Intn(5), 1+rng.Intn(5)
		m := NewDense(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		tt := m.T().T()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
