package lifecycle

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"napel/internal/resilience/faultpoint"
)

// TestByteIdenticalPromotionUnderInjectedFaults is the robustness
// acceptance scenario: with >10% of atomicfile operations failing (a
// mix of hard errors and torn writes, deterministic under a fixed
// seed), the retry loop must still drive the job to promotion, and the
// promoted model must be byte-identical to a fault-free run of the same
// spec — content addressing makes that a hash comparison.
func TestByteIdenticalPromotionUnderInjectedFaults(t *testing.T) {
	root := t.TempDir()

	spec := quickSpec()
	spec.Workers = 1
	spec.MaxRetries = 10

	// Reference: fault-free run in an isolated store.
	ref := func() *Manifest {
		m := newTestManager(t, filepath.Join(root, "ref"), nil)
		stop := runManager(m)
		defer stop()
		job, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		job = waitTerminal(t, m, job.ID, 2*time.Minute)
		if job.State != StatePromoted {
			t.Fatalf("reference run finished %s: %s", job.State, job.Error)
		}
		mf, err := m.store.GetManifest(job.ManifestID)
		if err != nil {
			t.Fatal(err)
		}
		return mf
	}()

	// Victim: same spec with atomicfile faults injected — hard write
	// errors, torn writes, and rename failures. Checkpoint writes that
	// fail are logged and retried on the next unit; critical-path writes
	// (blob, manifest, pointer flip) fail the attempt and the retry loop
	// re-runs it, resuming collection from the last good checkpoint.
	m := newTestManager(t, filepath.Join(root, "victim"), nil)
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Enable faults after submission but before the workers start, so
	// every pipeline stage runs under the plan.
	if err := faultpoint.Enable(11, "atomicfile.write:0.12:partial,atomicfile.rename:0.1,atomicfile.sync:0.1"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disable()
	stop := runManager(m)
	defer stop()
	job = waitTerminal(t, m, job.ID, 2*time.Minute)
	injected := faultpoint.TotalInjected()
	faultpoint.Disable()
	if injected == 0 {
		t.Fatal("fault plan never fired; the test proved nothing")
	}
	t.Logf("injected %d faults, job took %d attempt(s)", injected, job.Attempt)
	if job.State != StatePromoted {
		t.Fatalf("faulted run finished %s after %d attempt(s): %s", job.State, job.Attempt, job.Error)
	}

	got, err := m.store.GetManifest(job.ManifestID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelHash != ref.ModelHash {
		t.Fatalf("model under faults %s differs from fault-free run %s", got.ModelHash, ref.ModelHash)
	}
	if got.DataHash != ref.DataHash {
		t.Fatalf("data under faults %s differs from fault-free run %s", got.DataHash, ref.DataHash)
	}
	// The promoted pointer resolves to bytes matching their address.
	if _, err := m.store.ReadModel(got.ModelHash); err != nil {
		t.Fatalf("promoted blob failed verification: %v", err)
	}
}

// TestKillBetweenCheckpointAndPromoteResumes kills the daemon in the
// window after collection has fully checkpointed and the manifest is
// stored but before the serving pointer flips — a latency faultpoint at
// traind.promote holds the pipeline in exactly that window until the
// shutdown lands. The restarted daemon must requeue the job, resume
// from the checkpoint, and promote the same content-addressed blob.
func TestKillBetweenCheckpointAndPromoteResumes(t *testing.T) {
	root := t.TempDir()
	spec := quickSpec()
	spec.Workers = 1

	if err := faultpoint.Enable(1, "traind.promote:1:latency=30s"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disable()

	m1 := newTestManager(t, root, nil)
	stop1 := runManager(m1)
	job, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The manifest is written before the gate/promote stage; once it
	// exists the pipeline is at (or heading into) the injected sleep.
	deadline := time.Now().Add(2 * time.Minute)
	var preKill []*Manifest
	for {
		preKill, err = m1.store.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(preKill) > 0 {
			break
		}
		if j, _ := m1.Get(job.ID); j != nil && j.State.Terminal() {
			t.Fatalf("job finished (%s) before the promote window", j.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("manifest never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the pipeline enter the injected sleep
	stop1()                           // the "kill": cancels the sleep, job persists non-terminal
	faultpoint.Disable()

	mid, ok := m1.Get(job.ID)
	if !ok || mid.State.Terminal() {
		t.Fatalf("job state after kill: %+v (ok=%v)", mid, ok)
	}
	if _, err := m1.store.Current(); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("pointer flipped despite the kill: %v", err)
	}

	// Clean restart over the same directories.
	m2 := newTestManager(t, root, nil)
	if got, okGot := m2.Get(job.ID); !okGot || got.State != StateQueued {
		t.Fatalf("restart did not requeue job: %+v (ok=%v)", got, okGot)
	}
	stop2 := runManager(m2)
	defer stop2()
	job2 := waitTerminal(t, m2, job.ID, 2*time.Minute)
	if job2.State != StatePromoted {
		t.Fatalf("resumed job finished %s: %s", job2.State, job2.Error)
	}
	final, err := m2.store.GetManifest(job2.ManifestID)
	if err != nil {
		t.Fatal(err)
	}
	if final.ModelHash != preKill[0].ModelHash {
		t.Fatalf("resumed model %s differs from pre-kill manifest %s",
			final.ModelHash, preKill[0].ModelHash)
	}
	cur, err := m2.store.Current()
	if err != nil || cur.ModelHash != final.ModelHash {
		t.Fatalf("current after resume: %+v, %v", cur, err)
	}
}

// TestCorruptBlobQuarantinedNotServed flips bits in a stored blob and
// verifies the content-address check catches it on every read path —
// the bad bytes move to quarantine/, are reported by Quarantined(), and
// LoadCurrentPredictor refuses to serve them.
func TestCorruptBlobQuarantinedNotServed(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"model":"payload"}`)
	hash, err := store.PutModel(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.PutManifest(&Manifest{ModelHash: hash}); err != nil {
		t.Fatal(err)
	}
	if err := store.Promote("m-000001"); err != nil {
		t.Fatal(err)
	}

	// Corrupt the blob in place, keeping its length.
	blobPath := store.ModelBlobPath(hash)
	if err := os.Chmod(blobPath, 0o644); err != nil {
		t.Fatal(err)
	}
	evil := append([]byte{}, payload...)
	evil[len(evil)/2] ^= 0xff
	if err := os.WriteFile(blobPath, evil, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := store.ReadModel(hash); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("ReadModel on corrupt blob: %v, want ErrCorruptBlob", err)
	}
	if _, err := os.Stat(blobPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt blob still in blobs/: %v", err)
	}
	q, err := store.Quarantined()
	if err != nil || len(q) != 1 || q[0] != hash {
		t.Fatalf("quarantine listing %v, %v; want [%s]", q, err, hash)
	}
	// The serving read path refuses the quarantined model rather than
	// parsing garbage.
	if _, _, err := store.LoadCurrentPredictor(); err == nil {
		t.Fatal("LoadCurrentPredictor served a corrupt blob")
	}
	// Republishing the same clean bytes restores the blob under the same
	// name — quarantine never blocks recovery.
	if _, err := store.PutModel(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadModel(hash); err != nil {
		t.Fatalf("blob unreadable after republish: %v", err)
	}
}

// TestPromoteBreakerOpensOnRepeatedGateFailure: after threshold-many
// consecutive canary rejections the promotion breaker opens, and
// further candidates are rejected without gating (GateIncumbent stays
// empty on the fast path). The breaker state is visible in /metrics.
func TestPromoteBreakerOpensOnRepeatedGateFailure(t *testing.T) {
	m := newTestManager(t, t.TempDir(), func(cfg *ManagerConfig) {
		cfg.PromoteFailureThreshold = 2
		cfg.PromoteCooldown = time.Hour
	})
	stop := runManager(m)
	defer stop()

	good, err := m.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	good = waitTerminal(t, m, good.ID, 2*time.Minute)
	if good.State != StatePromoted {
		t.Fatalf("good job finished %s: %s", good.State, good.Error)
	}

	degraded := quickSpec()
	degraded.Trees = 1
	degraded.MinLeaf = 1
	var last *Job
	for i := 0; i < 3; i++ {
		bad, err := m.Submit(degraded)
		if err != nil {
			t.Fatal(err)
		}
		last = waitTerminal(t, m, bad.ID, 2*time.Minute)
		if last.State != StateRejected {
			t.Fatalf("degraded job %d finished %s, want rejected", i, last.State)
		}
	}
	// Two real rejections opened the breaker; the third was fast-
	// rejected without a gate run, so no incumbent was recorded.
	if m.promoteBreaker.State() == 0 {
		t.Fatal("promotion breaker still closed after repeated rejections")
	}
	if last.GateIncumbent != "" {
		t.Fatalf("third rejection ran the gate (incumbent %s); breaker did not short-circuit", last.GateIncumbent)
	}
	cur, err := m.store.Current()
	if err != nil || cur.ID != good.ManifestID {
		t.Fatalf("incumbent lost under rejection storm: %+v, %v", cur, err)
	}

	var sb strings.Builder
	if err := m.Obs().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`napel_resilience_breaker_state{name="traind.promote"} 1`,
		`napel_resilience_breaker_opens_total{name="traind.promote"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
