package lifecycle

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"napel/internal/resilience/faultpoint"
)

func storeWithBlob(t *testing.T, data []byte) (*Store, *Manifest, string) {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash, err := st.PutModel(data)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{ModelHash: hash}
	if err := st.PutManifest(m); err != nil {
		t.Fatal(err)
	}
	return st, m, hash
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestStoreAPIRoundtrip(t *testing.T) {
	blob := []byte(`{"weights":[1,2,3]}`)
	st, m, hash := storeWithBlob(t, blob)
	srv := httptest.NewServer(NewStoreHandler(st))
	defer srv.Close()

	// No promotion yet: the current-lineage endpoint must say so, not
	// serve a stale or empty manifest.
	if code, _ := get(t, srv.URL+"/v1/store/current"); code != http.StatusNotFound {
		t.Fatalf("current before promotion: HTTP %d, want 404", code)
	}

	if err := st.Promote(m.ID); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, srv.URL+"/v1/store/current")
	if code != http.StatusOK {
		t.Fatalf("current: HTTP %d: %s", code, body)
	}
	var cur Manifest
	if err := json.Unmarshal(body, &cur); err != nil {
		t.Fatal(err)
	}
	if cur.ID != m.ID || cur.ModelHash != hash {
		t.Fatalf("current = %+v, want id %s hash %s", cur, m.ID, hash)
	}

	code, body = get(t, srv.URL+"/v1/store/manifests/"+m.ID)
	if code != http.StatusOK {
		t.Fatalf("manifest: HTTP %d", code)
	}

	code, body = get(t, srv.URL+"/v1/store/blobs/"+hash)
	if code != http.StatusOK {
		t.Fatalf("blob: HTTP %d", code)
	}
	if string(body) != string(blob) {
		t.Fatalf("blob bytes differ: got %q want %q", body, blob)
	}
}

func TestStoreAPIRejectsBadPaths(t *testing.T) {
	st, _, _ := storeWithBlob(t, []byte("x"))
	srv := httptest.NewServer(NewStoreHandler(st))
	defer srv.Close()

	cases := []struct {
		path string
		want int
	}{
		{"/v1/store/blobs/..%2F..%2Fhistory", http.StatusBadRequest},
		{"/v1/store/blobs/sha256-zzzz", http.StatusBadRequest},
		{"/v1/store/blobs/sha256-" + repeat("0", 64), http.StatusNotFound},
		{"/v1/store/manifests/..%2Fhistory", http.StatusBadRequest},
		{"/v1/store/manifests/m-999999", http.StatusNotFound},
	}
	for _, c := range cases {
		if code, _ := get(t, srv.URL+c.path); code != c.want {
			t.Errorf("%s: HTTP %d, want %d", c.path, code, c.want)
		}
	}
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

// TestStoreAPICorruptBlobQuarantined flips bits in a stored blob on
// disk: the read-through verification must refuse to serve it (503, so
// pullers retry after a republish) and move it to quarantine.
func TestStoreAPICorruptBlobQuarantined(t *testing.T) {
	st, m, hash := storeWithBlob(t, []byte(`{"weights":[1,2,3]}`))
	if err := st.Promote(m.ID); err != nil {
		t.Fatal(err)
	}
	path := st.ModelBlobPath(hash)
	if err := os.Chmod(path, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"weights":[1,2,4]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewStoreHandler(st))
	defer srv.Close()

	code, body := get(t, srv.URL+"/v1/store/blobs/"+hash)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("corrupt blob: HTTP %d (%s), want 503", code, body)
	}
	q, err := st.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0] != hash {
		t.Fatalf("quarantined = %v, want [%s]", q, hash)
	}
}

// TestStoreAPITornBlobResponse arms the store.blob partial-write fault:
// the HTTP response is a truncated prefix of the blob delivered as an
// apparently complete body — undetectable without re-hashing, which is
// the puller's job (covered in serve's source tests); here we assert
// the tear actually happens on the wire.
func TestStoreAPITornBlobResponse(t *testing.T) {
	blob := []byte(`{"weights":[1,2,3,4,5,6,7,8]}`)
	st, m, hash := storeWithBlob(t, blob)
	if err := st.Promote(m.ID); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewStoreHandler(st))
	defer srv.Close()

	if err := faultpoint.Enable(1, "store.blob:1:partial"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disable()

	code, body := get(t, srv.URL+"/v1/store/blobs/"+hash)
	if code != http.StatusOK {
		t.Fatalf("torn blob: HTTP %d, want 200 with truncated body", code)
	}
	if len(body) >= len(blob) {
		t.Fatalf("body not truncated: got %d bytes of %d", len(body), len(blob))
	}
	if string(body) != string(blob[:len(body)]) {
		t.Fatalf("torn body is not a prefix of the blob")
	}
}
