package lifecycle

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func apiGet(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func apiPost(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestAPI(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	stop := runManager(m)
	defer stop()
	srv := httptest.NewServer(NewAPIHandler(m))
	defer srv.Close()

	if code := apiGet(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz -> %d", code)
	}

	// Bad submissions: invalid JSON, unknown fields, empty spec.
	if code := apiPost(t, srv.URL+"/v1/jobs", "{", nil); code != http.StatusBadRequest {
		t.Fatalf("invalid JSON -> %d", code)
	}
	if code := apiPost(t, srv.URL+"/v1/jobs", `{"kernels":["atax"],"bogus":1}`, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown field -> %d", code)
	}
	if code := apiPost(t, srv.URL+"/v1/jobs", `{}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty spec -> %d", code)
	}

	// Submit the quick job and drive it to promotion via the API alone.
	specJSON, _ := json.Marshal(quickSpec())
	var job Job
	if code := apiPost(t, srv.URL+"/v1/jobs", string(specJSON), &job); code != http.StatusAccepted {
		t.Fatalf("submit -> %d", code)
	}
	if job.ID == "" || job.State != StateQueued {
		t.Fatalf("submitted job %+v", job)
	}

	if code := apiGet(t, srv.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job -> %d", code)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		var got Job
		if code := apiGet(t, srv.URL+"/v1/jobs/"+job.ID, &got); code != http.StatusOK {
			t.Fatalf("job status -> %d", code)
		}
		if got.State.Terminal() {
			if got.State != StatePromoted {
				t.Fatalf("job finished %s: %s", got.State, got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if code := apiGet(t, srv.URL+"/v1/jobs", &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("list -> %d, %d jobs", code, len(list.Jobs))
	}

	var store struct {
		Current   *Manifest   `json:"current"`
		Manifests []*Manifest `json:"manifests"`
		History   []string    `json:"history"`
		ModelPath string      `json:"model_path"`
	}
	if code := apiGet(t, srv.URL+"/v1/store", &store); code != http.StatusOK {
		t.Fatalf("store -> %d", code)
	}
	if store.Current == nil || len(store.Manifests) != 1 || len(store.History) != 1 || store.ModelPath == "" {
		t.Fatalf("store state %+v", store)
	}

	// Rollback with a single promotion is a conflict.
	if code := apiPost(t, srv.URL+"/v1/store/rollback", "", nil); code != http.StatusConflict {
		t.Fatalf("rollback with one promotion -> %d", code)
	}

	// Canceling the finished job is a conflict; unknown job a 404.
	if code := apiPost(t, srv.URL+"/v1/jobs/"+job.ID+"/cancel", "", nil); code != http.StatusConflict {
		t.Fatalf("cancel finished -> %d", code)
	}
	if code := apiPost(t, srv.URL+"/v1/jobs/nope/cancel", "", nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown -> %d", code)
	}

	// Metrics render in exposition format with the promised series.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"napel_traind_queue_depth",
		"napel_traind_jobs_running",
		"napel_traind_jobs_submitted_total 1",
		fmt.Sprintf("napel_traind_jobs_finished_total{state=%q} 1", StatePromoted),
		"napel_traind_job_duration_seconds_count 1",
		"napel_traind_promotions_total 1",
		"napel_traind_checkpoint_age_seconds",
		"napel_traind_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
