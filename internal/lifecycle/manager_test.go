package lifecycle

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"napel/internal/napel"
)

// quickSpec is a training job small enough for unit tests: one kernel,
// heavily scaled inputs, tiny instruction budgets, two training
// architectures.
func quickSpec() JobSpec {
	return JobSpec{
		Kernels:       []string{"atax"},
		TrainScale:    32,
		MaxIters:      1,
		ProfileBudget: 30_000,
		SimBudget:     30_000,
		TrainArchs:    2,
		Workers:       2,
	}
}

// newTestManager builds a manager over fresh temp directories.
func newTestManager(t *testing.T, root string, mutate func(*ManagerConfig)) *Manager {
	t.Helper()
	store, err := OpenStore(filepath.Join(root, "store"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ManagerConfig{
		Store:        store,
		JobsDir:      filepath.Join(root, "jobs"),
		RetryBackoff: 10 * time.Millisecond,
		Logf:         t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runManager starts Run in the background and returns a stop function
// that cancels it and waits for the workers to drain.
func runManager(m *Manager) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx)
	}()
	return func() {
		cancel()
		<-done
	}
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		job, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if job.State.Terminal() {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	job, _ := m.Get(id)
	t.Fatalf("job %s not terminal after %s (state %s, %d/%d units)",
		id, timeout, job.State, job.UnitsDone, job.UnitsTotal)
	return nil
}

func TestJobLifecyclePromotes(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	stop := runManager(m)
	defer stop()

	if _, err := m.Submit(JobSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := m.Submit(JobSpec{Kernels: []string{"no-such-kernel"}}); err == nil {
		t.Fatal("unknown kernel accepted")
	}

	job, err := m.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	job = waitTerminal(t, m, job.ID, 2*time.Minute)
	if job.State != StatePromoted {
		t.Fatalf("job finished %s (error %q), want promoted", job.State, job.Error)
	}
	if job.ManifestID == "" || job.Metrics == nil || job.Samples == 0 {
		t.Fatalf("promoted job missing results: %+v", job)
	}
	if job.UnitsDone == 0 || job.UnitsDone != job.UnitsTotal {
		t.Fatalf("unit accounting %d/%d", job.UnitsDone, job.UnitsTotal)
	}

	// The store serves the promoted model through the stable pointer and
	// it loads as a valid predictor.
	cur, err := m.store.Current()
	if err != nil || cur.ID != job.ManifestID {
		t.Fatalf("store current %+v, %v; want %s", cur, err, job.ManifestID)
	}
	if cur.JobID != job.ID || cur.Metrics == nil || cur.DataHash == "" {
		t.Fatalf("manifest lineage incomplete: %+v", cur)
	}
	if _, err := napel.LoadPredictorFile(m.store.CurrentModelPath()); err != nil {
		t.Fatalf("promoted model does not load: %v", err)
	}

	// Success removes the checkpoint.
	if _, err := os.Stat(m.checkpointPath(job.ID)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("checkpoint still present after promotion: %v", err)
	}
}

// TestKillAndResume is the acceptance scenario: a daemon dies
// mid-collection, a fresh one over the same directories requeues the
// job, re-executes only unfinished units, and the final predictor is
// byte-identical to an uninterrupted run (same content hash, hence the
// same blob).
func TestKillAndResume(t *testing.T) {
	root := t.TempDir()

	// Reference: the same spec run uninterrupted in an isolated store.
	refJob := func() *Job {
		m := newTestManager(t, filepath.Join(root, "ref"), nil)
		stop := runManager(m)
		defer stop()
		job, err := m.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		job = waitTerminal(t, m, job.ID, 2*time.Minute)
		if job.State != StatePromoted {
			t.Fatalf("reference run finished %s: %s", job.State, job.Error)
		}
		return job
	}()
	refManifest := func() *Manifest {
		s, err := OpenStore(filepath.Join(root, "ref", "store"))
		if err != nil {
			t.Fatal(err)
		}
		mf, err := s.GetManifest(refJob.ManifestID)
		if err != nil {
			t.Fatal(err)
		}
		return mf
	}()

	// First daemon: slow collection down to one worker so the kill lands
	// mid-run, checkpoint after every unit, and stop as soon as the
	// first checkpoint exists.
	victim := filepath.Join(root, "victim")
	spec := quickSpec()
	spec.Workers = 1
	m1 := newTestManager(t, victim, nil)
	stop1 := runManager(m1)
	job, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ckPath := m1.checkpointPath(job.ID)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if j, _ := m1.Get(job.ID); j != nil && j.State.Terminal() {
			t.Fatalf("job finished (%s) before a checkpoint was observed", j.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	stop1() // the "kill": workers unwind, job stays non-terminal on disk

	mid, ok := m1.Get(job.ID)
	if !ok || mid.State.Terminal() {
		t.Fatalf("job state after kill: %+v", mid)
	}

	// Second daemon over the same directories: recovery requeues the job
	// and the checkpoint restores the finished units.
	m2 := newTestManager(t, victim, nil)
	if got, okGot := m2.Get(job.ID); !okGot || got.State != StateQueued {
		t.Fatalf("restart did not requeue job: %+v (ok=%v)", got, okGot)
	}
	stop2 := runManager(m2)
	defer stop2()
	job2 := waitTerminal(t, m2, job.ID, 2*time.Minute)
	if job2.State != StatePromoted {
		t.Fatalf("resumed job finished %s: %s", job2.State, job2.Error)
	}
	if job2.UnitsRestored < 1 {
		t.Fatalf("resumed job restored %d units, want >= 1 (done %d/%d)",
			job2.UnitsRestored, job2.UnitsDone, job2.UnitsTotal)
	}
	if job2.UnitsRestored >= job2.UnitsTotal {
		t.Fatalf("resumed job executed nothing (%d/%d restored)", job2.UnitsRestored, job2.UnitsTotal)
	}

	resumed, err := m2.store.GetManifest(job2.ManifestID)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ModelHash != refManifest.ModelHash {
		t.Fatalf("resumed model hash %s differs from uninterrupted run %s",
			resumed.ModelHash, refManifest.ModelHash)
	}
	if resumed.DataHash != refManifest.DataHash {
		t.Fatalf("resumed data hash %s differs from uninterrupted run %s",
			resumed.DataHash, refManifest.DataHash)
	}
}

// TestCanaryGateRejectsDegraded: once a healthy model serves, a
// degraded candidate (a 1-tree forest) must be stored but never
// promoted, and the incumbent keeps serving.
func TestCanaryGateRejectsDegraded(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	stop := runManager(m)
	defer stop()

	good, err := m.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	good = waitTerminal(t, m, good.ID, 2*time.Minute)
	if good.State != StatePromoted {
		t.Fatalf("good job finished %s: %s", good.State, good.Error)
	}
	servingBefore, err := os.ReadFile(m.store.CurrentModelPath())
	if err != nil {
		t.Fatal(err)
	}

	degradedSpec := quickSpec()
	degradedSpec.Trees = 1
	degradedSpec.MinLeaf = 1
	bad, err := m.Submit(degradedSpec)
	if err != nil {
		t.Fatal(err)
	}
	bad = waitTerminal(t, m, bad.ID, 2*time.Minute)
	if bad.State != StateRejected {
		t.Fatalf("degraded job finished %s (metrics %+v, baseline %g), want rejected",
			bad.State, bad.Metrics, bad.GateBaseline)
	}
	if bad.GateIncumbent != good.ManifestID || bad.GateBaseline <= 0 {
		t.Fatalf("gate bookkeeping: %+v", bad)
	}
	// The rejected model is still stored (for inspection) but not current.
	if bad.ManifestID == "" {
		t.Fatal("rejected candidate was not stored")
	}
	cur, err := m.store.Current()
	if err != nil || cur.ID != good.ManifestID {
		t.Fatalf("incumbent lost: current %+v, %v", cur, err)
	}
	servingAfter, err := os.ReadFile(m.store.CurrentModelPath())
	if err != nil || string(servingAfter) != string(servingBefore) {
		t.Fatalf("serving bytes changed after rejection (err %v)", err)
	}
	hist, _ := m.store.History()
	if len(hist) != 1 {
		t.Fatalf("history %v, want only the good promotion", hist)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// No Run loop: the job stays queued, so Cancel flips it directly.
	m := newTestManager(t, t.TempDir(), nil)
	job, err := m.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Get(job.ID)
	if got.State != StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	if err := m.Cancel(job.ID); err == nil {
		t.Fatal("canceling a terminal job succeeded")
	}
	if err := m.Cancel("j-999999"); err == nil {
		t.Fatal("canceling an unknown job succeeded")
	}

	// A canceled job is not requeued on restart.
	m2, err := NewManager(ManagerConfig{Store: m.store, JobsDir: m.cfg.JobsDir})
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := m2.Get(job.ID)
	if !ok || got2.State != StateCanceled || m2.QueueDepth() != 0 {
		t.Fatalf("restart state %+v queue %d", got2, m2.QueueDepth())
	}
}
