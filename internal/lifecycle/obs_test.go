package lifecycle

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"napel/internal/obs"
)

// TestJobTraceAndStageMetrics runs one job end to end and checks that
// the admin API's observability surface agrees with what happened: a
// "job" trace with collect/train/evaluate/gate child spans at
// /debug/traces, stage histograms with one sample each, and the
// exposition content type.
func TestJobTraceAndStageMetrics(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	stop := runManager(m)
	defer stop()

	job, err := m.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	job = waitTerminal(t, m, job.ID, 2*time.Minute)
	if job.State != StatePromoted {
		t.Fatalf("job finished %s (error %q), want promoted", job.State, job.Error)
	}

	ts := httptest.NewServer(NewAPIHandler(m))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		`napel_build_info{binary="napel-traind"`,
		`napel_traind_job_stage_seconds_count{stage="queue_wait"} 1`,
		`napel_traind_job_stage_seconds_count{stage="collect"} 1`,
		`napel_traind_job_stage_seconds_count{stage="train"} 1`,
		`napel_traind_job_stage_seconds_count{stage="evaluate"} 1`,
		`napel_traind_job_stage_seconds_count{stage="gate"} 1`,
		"# TYPE napel_traind_job_duration_seconds histogram",
		"napel_traind_job_duration_seconds_count 1",
		"napel_traind_checkpoint_write_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	tresp, err := http.Get(ts.URL + "/debug/traces?name=job")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var traces struct {
		Count  int `json:"count"`
		Traces []struct {
			Name  string           `json:"name"`
			Spans []obs.SpanRecord `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if traces.Count != 1 {
		t.Fatalf("want one job trace, got %d", traces.Count)
	}
	tr := traces.Traces[0]
	if tr.Name != "job" {
		t.Fatalf("trace root %q, want job", tr.Name)
	}
	children := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.ParentID != "" {
			children[sp.Name] = true
		}
		if sp.Name == "job" {
			var id string
			for _, a := range sp.Attrs {
				if a.Key == "id" {
					id = a.Value
				}
			}
			if id != job.ID {
				t.Fatalf("job span id %q, want %s", id, job.ID)
			}
		}
	}
	for _, want := range []string{"collect", "train", "evaluate", "gate"} {
		if !children[want] {
			t.Fatalf("job trace missing %q child span; spans: %+v", want, tr.Spans)
		}
	}
}
