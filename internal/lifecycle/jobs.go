package lifecycle

import (
	"fmt"
	"time"

	"napel/internal/ml"
	"napel/internal/ml/rf"
	"napel/internal/napel"
	"napel/internal/workload"
)

// JobState is the lifecycle of one training job. Terminal states are
// promoted, rejected, failed and canceled; anything else survives a
// daemon restart as runnable work.
type JobState string

const (
	StateQueued     JobState = "queued"
	StateCollecting JobState = "collecting"
	StateTraining   JobState = "training"
	StateEvaluating JobState = "evaluating"
	StatePromoted   JobState = "promoted"
	StateRejected   JobState = "rejected"
	StateFailed     JobState = "failed"
	StateCanceled   JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StatePromoted, StateRejected, StateFailed, StateCanceled:
		return true
	}
	return false
}

// JobSpec is what a client submits: which kernels to collect, how the
// DoE pipeline is scaled, and how the forest is trained. Zero-valued
// fields inherit the pipeline defaults (napel.DefaultOptions, the
// default forest), so the minimal useful spec is just a kernel list.
type JobSpec struct {
	Kernels []string `json:"kernels"`
	// Seed drives input scaling, forest randomness and the holdout
	// fold; 0 means the default pipeline seed.
	Seed uint64 `json:"seed,omitempty"`
	// TrainScale overrides Options.ScaleFactor (DoE input downscaling).
	TrainScale int `json:"train_scale,omitempty"`
	MaxIters   int `json:"max_iters,omitempty"`
	// ProfileBudget / SimBudget cap instructions per profiling pass and
	// per NMC simulation.
	ProfileBudget uint64 `json:"profile_budget,omitempty"`
	SimBudget     uint64 `json:"sim_budget,omitempty"`
	// TrainArchs limits collection to the first N default training
	// architectures — the lever that makes smoke-test jobs fast.
	TrainArchs int `json:"train_archs,omitempty"`
	// Workers bounds collection concurrency inside this job.
	Workers int `json:"workers,omitempty"`
	// Tune enables the Section 2.5 grid hyper-parameter search for the
	// final model. Mutually exclusive with explicit forest parameters.
	Tune bool `json:"tune,omitempty"`
	// Trees/MinLeaf/MTry configure a fixed forest (Trees > 0 activates
	// them). Trees: 1 is the classic degraded canary the gate must
	// reject once a healthy incumbent serves.
	Trees   int `json:"trees,omitempty"`
	MinLeaf int `json:"min_leaf,omitempty"`
	MTry    int `json:"mtry,omitempty"`
	// HoldoutFrac is the held-out fraction the canary gate scores on;
	// 0 means the manager default.
	HoldoutFrac float64 `json:"holdout_frac,omitempty"`
	// MaxRetries overrides the manager's per-job retry budget; -1
	// disables retries for this job.
	MaxRetries int `json:"max_retries,omitempty"`
	// Distributed leases this job's collection units to napel-worker
	// processes through the daemon's collectd coordinator instead of
	// executing them in-process. The assembled dataset is byte-identical
	// either way; the job fails permanently if the daemon runs without a
	// coordinator.
	Distributed bool `json:"distributed,omitempty"`
	// Tags restrict this job's distributed units to workers advertising
	// all of them (capability routing, e.g. an architecture family only
	// some workers can simulate). Scheduling metadata only — the
	// assembled dataset is identical with or without tags.
	Tags []string `json:"tags,omitempty"`
	// Active replaces exhaustive DoE collection with the uncertainty-
	// driven loop: train on a seed design, then per round simulate only
	// the candidates the ensemble disagrees on most, stopping at
	// ActiveTargetMRE (when set) or when the pool runs dry. Active jobs
	// do not checkpoint mid-collection — rounds are the unit of progress.
	Active bool `json:"active,omitempty"`
	// ActiveSeedUnits / ActiveRoundUnits / ActiveMaxUnits tune the loop
	// (0 = pool-relative defaults); ActiveTargetMRE > 0 stops it early.
	ActiveSeedUnits  int     `json:"active_seed_units,omitempty"`
	ActiveRoundUnits int     `json:"active_round_units,omitempty"`
	ActiveMaxUnits   int     `json:"active_max_units,omitempty"`
	ActiveTargetMRE  float64 `json:"active_target_mre,omitempty"`
}

// Validate resolves everything the spec references so a bad submission
// fails at the API boundary, not minutes later inside a worker.
func (sp *JobSpec) Validate() error {
	if len(sp.Kernels) == 0 {
		return fmt.Errorf("lifecycle: job spec names no kernels")
	}
	if _, err := sp.kernels(); err != nil {
		return err
	}
	if sp.Tune && sp.Trees > 0 {
		return fmt.Errorf("lifecycle: tune and explicit forest parameters are mutually exclusive")
	}
	if sp.Trees < 0 || sp.MinLeaf < 0 || sp.MTry < 0 {
		return fmt.Errorf("lifecycle: forest parameters must be non-negative")
	}
	if sp.HoldoutFrac < 0 || sp.HoldoutFrac >= 1 {
		return fmt.Errorf("lifecycle: holdout fraction %g out of [0, 1)", sp.HoldoutFrac)
	}
	if sp.ActiveSeedUnits < 0 || sp.ActiveRoundUnits < 0 || sp.ActiveMaxUnits < 0 || sp.ActiveTargetMRE < 0 {
		return fmt.Errorf("lifecycle: active-learning parameters must be non-negative")
	}
	if !sp.Active && (sp.ActiveSeedUnits > 0 || sp.ActiveRoundUnits > 0 || sp.ActiveMaxUnits > 0 || sp.ActiveTargetMRE > 0) {
		return fmt.Errorf("lifecycle: active_* parameters require active: true")
	}
	if len(sp.Tags) > 0 && !sp.Distributed {
		return fmt.Errorf("lifecycle: tags route distributed leases and require distributed: true")
	}
	opts, err := sp.options()
	if err != nil {
		return err
	}
	return opts.Validate()
}

func (sp *JobSpec) kernels() ([]workload.Kernel, error) {
	out := make([]workload.Kernel, 0, len(sp.Kernels))
	for _, name := range sp.Kernels {
		k, err := workload.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("lifecycle: %w", err)
		}
		out = append(out, k)
	}
	return out, nil
}

func (sp *JobSpec) seed() uint64 {
	if sp.Seed != 0 {
		return sp.Seed
	}
	return napel.DefaultOptions().Seed
}

func (sp *JobSpec) options() (napel.Options, error) {
	opts := napel.DefaultOptions()
	opts.Seed = sp.seed()
	if sp.TrainScale > 0 {
		opts.ScaleFactor = sp.TrainScale
	}
	if sp.MaxIters > 0 {
		opts.MaxIters = sp.MaxIters
	}
	if sp.ProfileBudget > 0 {
		opts.ProfileBudget = sp.ProfileBudget
	}
	if sp.SimBudget > 0 {
		opts.SimBudget = sp.SimBudget
	}
	if sp.Workers > 0 {
		opts.Workers = sp.Workers
	}
	if len(sp.Tags) > 0 {
		opts.Tags = sp.Tags
	}
	if sp.TrainArchs < 0 || sp.TrainArchs > len(opts.TrainArchs) {
		return opts, fmt.Errorf("lifecycle: train_archs %d out of [0, %d]", sp.TrainArchs, len(opts.TrainArchs))
	}
	if sp.TrainArchs > 0 {
		opts.TrainArchs = opts.TrainArchs[:sp.TrainArchs]
	}
	return opts, nil
}

// trainer returns the forest configuration used both to fit the final
// model and to score the holdout fold (in tune mode the gate scores the
// default forest; the grid search only shapes the published model).
func (sp *JobSpec) trainer() ml.Trainer {
	if sp.Trees > 0 {
		return ml.LogTrainer{Inner: rf.Trainer{Params: rf.Params{
			Trees: sp.Trees, MinLeaf: sp.MinLeaf, MTry: sp.MTry,
		}}}
	}
	return napel.DefaultRFTrainer()
}

// Job is one tracked training job: the submitted spec plus everything
// the manager learns while running it. The manager persists it as
// job.json after every state change, which is what lets a restarted
// daemon requeue non-terminal jobs.
type Job struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// Error is the last failure message (retried or final).
	Error string `json:"error,omitempty"`
	// Attempt counts pipeline attempts, 1-based once running.
	Attempt    int       `json:"attempt,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// Collection progress: units finished / planned, and how many of
	// the finished ones were restored from a checkpoint instead of
	// re-executed (the resume saving).
	UnitsDone     int `json:"units_done,omitempty"`
	UnitsTotal    int `json:"units_total,omitempty"`
	UnitsRestored int `json:"units_restored,omitempty"`
	// Rounds counts completed active-learning rounds (active jobs only).
	Rounds  int `json:"rounds,omitempty"`
	Samples int `json:"samples,omitempty"`
	// ManifestID is the stored model (set once trained, whether or not
	// it was promoted).
	ManifestID string `json:"manifest_id,omitempty"`
	// Metrics is the candidate's holdout validation; GateBaseline the
	// incumbent error it had to beat (×tolerance), GateIncumbent that
	// incumbent's manifest ID. GateBaseline 0 with a promoted state
	// means there was no incumbent.
	Metrics       *napel.HoldoutMetrics `json:"metrics,omitempty"`
	GateBaseline  float64               `json:"gate_baseline,omitempty"`
	GateIncumbent string                `json:"gate_incumbent,omitempty"`
}

// clone returns a deep-enough copy for handing outside the manager's
// lock (Metrics is the only pointer field).
func (j *Job) clone() *Job {
	c := *j
	if j.Metrics != nil {
		m := *j.Metrics
		c.Metrics = &m
	}
	return &c
}
