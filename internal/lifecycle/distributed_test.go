package lifecycle

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"napel/internal/collectd"
)

// TestDistributedJobMatchesSerialDataHash runs the same spec twice —
// once with in-process collection, once leased to two napel-worker
// loops through the daemon's own API mux — and checks the promoted
// manifests record the same training-data content hash. That is the
// lifecycle-level restatement of the collectd byte-identity oracle.
func TestDistributedJobMatchesSerialDataHash(t *testing.T) {
	serialM := newTestManager(t, t.TempDir(), nil)
	stopSerial := runManager(serialM)
	serialJob, err := serialM.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	serialJob = waitTerminal(t, serialM, serialJob.ID, 2*time.Minute)
	stopSerial()
	if serialJob.State != StatePromoted {
		t.Fatalf("serial job finished %s (error %q)", serialJob.State, serialJob.Error)
	}
	serialCur, err := serialM.store.Current()
	if err != nil {
		t.Fatal(err)
	}

	coord := collectd.NewCoordinator(collectd.Config{LeaseTTL: 2 * time.Second, Logf: t.Logf})
	distM := newTestManager(t, t.TempDir(), func(cfg *ManagerConfig) {
		cfg.Coordinator = coord
	})
	srv := httptest.NewServer(NewAPIHandler(distM))
	t.Cleanup(srv.Close)

	// Cleanups run LIFO: register the wait first so the worker cancels
	// (registered below) fire before it.
	var wg sync.WaitGroup
	t.Cleanup(wg.Wait)
	for i := 0; i < 2; i++ {
		w, err := collectd.NewWorker(collectd.WorkerConfig{
			Coordinator:  srv.URL,
			ID:           fmt.Sprintf("lw%d", i),
			PollInterval: 20 * time.Millisecond,
			Seed:         uint64(i + 1),
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	stopDist := runManager(distM)
	defer stopDist()
	spec := quickSpec()
	spec.Distributed = true
	distJob, err := distM.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	distJob = waitTerminal(t, distM, distJob.ID, 2*time.Minute)
	if distJob.State != StatePromoted {
		t.Fatalf("distributed job finished %s (error %q)", distJob.State, distJob.Error)
	}
	distCur, err := distM.store.Current()
	if err != nil {
		t.Fatal(err)
	}
	if distCur.DataHash != serialCur.DataHash {
		t.Fatalf("distributed data hash %s != serial %s", distCur.DataHash, serialCur.DataHash)
	}
	if distCur.ModelHash != serialCur.ModelHash {
		t.Fatalf("distributed model hash %s != serial %s", distCur.ModelHash, serialCur.ModelHash)
	}
	if s := coord.Stats(); s.Completed == 0 {
		t.Fatalf("coordinator saw no completions: %+v", s)
	}
}

// A distributed job on a daemon without a coordinator must fail
// permanently (no retry loop can fix a missing subsystem).
func TestDistributedJobFailsWithoutCoordinator(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	stop := runManager(m)
	defer stop()

	spec := quickSpec()
	spec.Distributed = true
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	job = waitTerminal(t, m, job.ID, time.Minute)
	if job.State != StateFailed {
		t.Fatalf("job finished %s, want failed", job.State)
	}
	if !strings.Contains(job.Error, "coordinator") {
		t.Fatalf("error %q does not name the missing coordinator", job.Error)
	}
	if job.Attempt != 1 {
		t.Fatalf("permanent failure retried: attempt %d", job.Attempt)
	}
}

// TestActiveJobPromotes drives the uncertainty-sampling loop through
// the manager: the job must promote, record its round count, and
// simulate fewer units than the exhaustive DoE plan would.
func TestActiveJobPromotes(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	stop := runManager(m)
	defer stop()

	spec := quickSpec()
	spec.Active = true
	spec.ActiveSeedUnits = 3
	spec.ActiveRoundUnits = 2
	spec.ActiveMaxUnits = 5
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	job = waitTerminal(t, m, job.ID, 2*time.Minute)
	if job.State != StatePromoted {
		t.Fatalf("active job finished %s (error %q)", job.State, job.Error)
	}
	if job.Rounds == 0 {
		t.Fatalf("active job recorded no rounds: %+v", job)
	}
	if job.UnitsDone == 0 || job.UnitsDone > spec.ActiveMaxUnits {
		t.Fatalf("active job simulated %d units, budget %d", job.UnitsDone, spec.ActiveMaxUnits)
	}
	if job.Metrics == nil || job.Samples == 0 {
		t.Fatalf("promoted active job missing results: %+v", job)
	}
}

// Misconfigured specs are rejected at the API boundary.
func TestDistributedAndActiveSpecValidation(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)

	bad := quickSpec()
	bad.ActiveRoundUnits = 2 // active_* without active: true
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("active_round_units without active accepted")
	}
	neg := quickSpec()
	neg.Active = true
	neg.ActiveTargetMRE = -0.1
	if _, err := m.Submit(neg); err == nil {
		t.Fatal("negative active_target_mre accepted")
	}
}
