package lifecycle

import (
	"sync/atomic"
	"time"

	"napel/internal/obs"
)

// jobBuckets grids job- and stage-scale durations: collection jobs run
// for seconds to hours, not the sub-second latencies obs.DefBuckets
// targets.
var jobBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 900, 3600,
}

// pipelineStages are the label values of napel_traind_job_stage_seconds,
// declared up front so every stage series is visible (at zero) from the
// first scrape.
var pipelineStages = [...]string{"queue_wait", "collect", "train", "evaluate", "gate"}

// traindObs is napel-traind's observability surface on the shared
// internal/obs registry (it replaced the bespoke managerMetrics type and
// its hand-rolled exposition writer). Name changes from the old surface
// are documented in DESIGN.md — the only one is that
// napel_traind_job_duration_seconds is now a full histogram rather than
// a sum/count summary (its _sum and _count series are unchanged).
type traindObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	start  time.Time

	running     *obs.Gauge
	submitted   *obs.Counter
	finished    *obs.CounterVec
	duration    *obs.Histogram
	retries     *obs.Counter
	promotions  *obs.Counter
	rejections  *obs.Counter
	stages      map[string]*obs.Histogram
	ckpWrite    *obs.Histogram
	lastCkpUnix atomic.Int64 // unix nanos of the last checkpoint write; 0 = never
}

func newTraindObs(m *Manager, tracer *obs.Tracer) *traindObs {
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "napel-traind")
	obs.RegisterRuntimeMetrics(reg)
	o := &traindObs{
		reg:    reg,
		tracer: tracer,
		start:  time.Now(),
		stages: make(map[string]*obs.Histogram, len(pipelineStages)),
	}
	reg.GaugeFunc("napel_traind_queue_depth",
		"Jobs waiting for a worker.", func() float64 { return float64(m.QueueDepth()) })
	o.running = reg.Gauge("napel_traind_jobs_running",
		"Jobs currently executing.")
	o.submitted = reg.Counter("napel_traind_jobs_submitted_total",
		"Jobs accepted by Submit.")
	o.finished = reg.CounterVec("napel_traind_jobs_finished_total",
		"Jobs reaching a terminal state, by state.", "state")
	o.duration = reg.Histogram("napel_traind_job_duration_seconds",
		"Wall-clock time of finished jobs.", jobBuckets)
	o.retries = reg.Counter("napel_traind_retries_total",
		"Job attempts re-run after a transient failure.")
	o.promotions = reg.Counter("napel_traind_promotions_total",
		"Models promoted past the canary gate.")
	o.rejections = reg.Counter("napel_traind_rejections_total",
		"Models rejected by the canary gate.")
	stage := reg.HistogramVec("napel_traind_job_stage_seconds",
		"Per-stage pipeline latency: queue wait, collect, train, evaluate, gate.",
		jobBuckets, "stage")
	for _, s := range pipelineStages {
		o.stages[s] = stage.With(s)
	}
	o.ckpWrite = reg.Histogram("napel_traind_checkpoint_write_seconds",
		"Latency of mid-collection checkpoint writes.", nil)
	reg.GaugeFunc("napel_traind_checkpoint_age_seconds",
		"Seconds since the last checkpoint write; -1 before the first.",
		func() float64 {
			ns := o.lastCkpUnix.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
	reg.GaugeFunc("napel_traind_uptime_seconds",
		"Seconds since the manager started.",
		func() float64 { return time.Since(o.start).Seconds() })
	return o
}

func (o *traindObs) finishJob(state JobState) { o.finished.With(string(state)).Inc() }

func (o *traindObs) markCheckpoint(t time.Time) { o.lastCkpUnix.Store(t.UnixNano()) }

// stage observes one pipeline stage's wall clock in both the stage
// histogram and, when a span is live, the trace.
func (o *traindObs) stage(name string, d time.Duration) {
	if h, ok := o.stages[name]; ok {
		h.Observe(d.Seconds())
	}
}
