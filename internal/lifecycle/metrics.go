package lifecycle

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// managerMetrics is napel-traind's observability surface, rendered in
// the Prometheus text exposition format with only the stdlib (the same
// approach as internal/serve's metrics).
type managerMetrics struct {
	start     time.Time
	submitted atomic.Uint64
	running   atomic.Int64
	retries   atomic.Uint64

	promotions atomic.Uint64
	rejections atomic.Uint64

	durSumNs atomic.Uint64
	durCount atomic.Uint64

	mu             sync.Mutex
	finishedByEnd  map[JobState]uint64
	lastCheckpoint time.Time
}

func newManagerMetrics() *managerMetrics {
	return &managerMetrics{start: time.Now(), finishedByEnd: map[JobState]uint64{}}
}

func (mm *managerMetrics) finished(state JobState) {
	mm.mu.Lock()
	mm.finishedByEnd[state]++
	mm.mu.Unlock()
}

func (mm *managerMetrics) observeDuration(d time.Duration) {
	mm.durSumNs.Add(uint64(d.Nanoseconds()))
	mm.durCount.Add(1)
}

func (mm *managerMetrics) markCheckpoint(t time.Time) {
	mm.mu.Lock()
	mm.lastCheckpoint = t
	mm.mu.Unlock()
}

// RenderMetrics writes the exposition text for the manager. queueDepth
// is passed in because the queue belongs to the Manager.
func (m *Manager) RenderMetrics(b *strings.Builder) {
	mm := m.metrics

	fmt.Fprintf(b, "# HELP napel_traind_queue_depth Jobs waiting for a worker.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_queue_depth gauge\n")
	fmt.Fprintf(b, "napel_traind_queue_depth %d\n", m.QueueDepth())

	fmt.Fprintf(b, "# HELP napel_traind_jobs_running Jobs currently executing.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_jobs_running gauge\n")
	fmt.Fprintf(b, "napel_traind_jobs_running %d\n", mm.running.Load())

	fmt.Fprintf(b, "# HELP napel_traind_jobs_submitted_total Jobs accepted by Submit.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_jobs_submitted_total counter\n")
	fmt.Fprintf(b, "napel_traind_jobs_submitted_total %d\n", mm.submitted.Load())

	fmt.Fprintf(b, "# HELP napel_traind_jobs_finished_total Jobs reaching a terminal state, by state.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_jobs_finished_total counter\n")
	mm.mu.Lock()
	states := make([]string, 0, len(mm.finishedByEnd))
	for s := range mm.finishedByEnd {
		states = append(states, string(s))
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(b, "napel_traind_jobs_finished_total{state=%q} %d\n", s, mm.finishedByEnd[JobState(s)])
	}
	last := mm.lastCheckpoint
	mm.mu.Unlock()

	fmt.Fprintf(b, "# HELP napel_traind_job_duration_seconds Wall-clock time of finished jobs.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_job_duration_seconds summary\n")
	fmt.Fprintf(b, "napel_traind_job_duration_seconds_sum %g\n", float64(mm.durSumNs.Load())/1e9)
	fmt.Fprintf(b, "napel_traind_job_duration_seconds_count %d\n", mm.durCount.Load())

	fmt.Fprintf(b, "# HELP napel_traind_retries_total Job attempts re-run after a transient failure.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_retries_total counter\n")
	fmt.Fprintf(b, "napel_traind_retries_total %d\n", mm.retries.Load())

	fmt.Fprintf(b, "# HELP napel_traind_promotions_total Models promoted past the canary gate.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_promotions_total counter\n")
	fmt.Fprintf(b, "napel_traind_promotions_total %d\n", mm.promotions.Load())

	fmt.Fprintf(b, "# HELP napel_traind_rejections_total Models rejected by the canary gate.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_rejections_total counter\n")
	fmt.Fprintf(b, "napel_traind_rejections_total %d\n", mm.rejections.Load())

	fmt.Fprintf(b, "# HELP napel_traind_checkpoint_age_seconds Seconds since the last checkpoint write; -1 before the first.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_checkpoint_age_seconds gauge\n")
	if last.IsZero() {
		fmt.Fprintf(b, "napel_traind_checkpoint_age_seconds -1\n")
	} else {
		fmt.Fprintf(b, "napel_traind_checkpoint_age_seconds %g\n", time.Since(last).Seconds())
	}

	fmt.Fprintf(b, "# HELP napel_traind_uptime_seconds Seconds since the manager started.\n")
	fmt.Fprintf(b, "# TYPE napel_traind_uptime_seconds gauge\n")
	fmt.Fprintf(b, "napel_traind_uptime_seconds %g\n", time.Since(mm.start).Seconds())
}
