package lifecycle

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreBasics(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Current(); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("Current on empty store: %v, want ErrNoCurrent", err)
	}
	if _, err := s.Rollback(); !errors.Is(err, ErrNoRollback) {
		t.Fatalf("Rollback on empty store: %v, want ErrNoRollback", err)
	}

	blobA := []byte(`{"model":"a"}`)
	hashA, err := s.PutModel(blobA)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.PutModel(blobA)
	if err != nil || again != hashA {
		t.Fatalf("re-putting same bytes: hash %s err %v, want %s", again, err, hashA)
	}
	stored, err := os.ReadFile(s.ModelBlobPath(hashA))
	if err != nil || string(stored) != string(blobA) {
		t.Fatalf("blob round-trip: %q err %v", stored, err)
	}

	// A manifest referencing unstored bytes must be refused.
	if err := s.PutManifest(&Manifest{ModelHash: "sha256-beef"}); err == nil {
		t.Fatal("manifest with unstored blob accepted")
	}

	ma := &Manifest{ModelHash: hashA, Kernels: []string{"atax"}}
	if err := s.PutManifest(ma); err != nil {
		t.Fatal(err)
	}
	if ma.ID != "m-000001" || ma.CreatedAt.IsZero() {
		t.Fatalf("first manifest got ID %q CreatedAt %v", ma.ID, ma.CreatedAt)
	}
	if err := s.Promote(ma.ID); err != nil {
		t.Fatal(err)
	}
	cur, err := s.Current()
	if err != nil || cur.ID != ma.ID {
		t.Fatalf("Current = %+v, %v; want %s", cur, err, ma.ID)
	}
	// The serving pointer resolves to the promoted bytes.
	viaLink, err := os.ReadFile(s.CurrentModelPath())
	if err != nil || string(viaLink) != string(blobA) {
		t.Fatalf("current-model.json resolves to %q, err %v", viaLink, err)
	}

	hashB, err := s.PutModel([]byte(`{"model":"b"}`))
	if err != nil {
		t.Fatal(err)
	}
	mb := &Manifest{ModelHash: hashB}
	if err := s.PutManifest(mb); err != nil {
		t.Fatal(err)
	}
	if mb.ID != "m-000002" {
		t.Fatalf("second manifest ID %q", mb.ID)
	}
	if err := s.Promote(mb.ID); err != nil {
		t.Fatal(err)
	}
	hist, err := s.History()
	if err != nil || len(hist) != 2 || hist[0] != ma.ID || hist[1] != mb.ID {
		t.Fatalf("history %v, %v", hist, err)
	}

	back, err := s.Rollback()
	if err != nil || back.ID != ma.ID {
		t.Fatalf("Rollback -> %+v, %v; want %s", back, err, ma.ID)
	}
	cur, err = s.Current()
	if err != nil || cur.ID != ma.ID {
		t.Fatalf("post-rollback Current = %+v, %v", cur, err)
	}
	viaLink, _ = os.ReadFile(s.CurrentModelPath())
	if string(viaLink) != string(blobA) {
		t.Fatalf("post-rollback model bytes %q", viaLink)
	}
	if _, err := s.Rollback(); !errors.Is(err, ErrNoRollback) {
		t.Fatalf("second Rollback: %v, want ErrNoRollback", err)
	}

	all, err := s.List()
	if err != nil || len(all) != 2 {
		t.Fatalf("List -> %d manifests, %v", len(all), err)
	}

	// Reopening an existing store keeps the state.
	s2, err := OpenStore(s.root)
	if err != nil {
		t.Fatal(err)
	}
	cur2, err := s2.Current()
	if err != nil || cur2.ID != ma.ID {
		t.Fatalf("reopened Current = %+v, %v", cur2, err)
	}
	mc := &Manifest{ModelHash: hashB}
	if err := s2.PutManifest(mc); err != nil {
		t.Fatal(err)
	}
	if mc.ID != "m-000003" {
		t.Fatalf("reopened store assigned ID %q, want m-000003", mc.ID)
	}
}
