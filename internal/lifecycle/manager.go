package lifecycle

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"napel/internal/atomicfile"
	"napel/internal/collectd"
	"napel/internal/ml"
	"napel/internal/napel"
	"napel/internal/obs"
	"napel/internal/resilience"
	"napel/internal/resilience/faultpoint"
	"napel/internal/workload"
)

// fpPromote fails a promotion just before the store flips its pointers,
// active only under an installed faultpoint plan.
const fpPromote = "traind.promote"

// ManagerConfig configures the training-job manager.
type ManagerConfig struct {
	Store *Store
	// Coordinator, when non-nil, serves jobs submitted with
	// distributed: true — their collection units are leased to
	// napel-worker processes instead of executing in-process. The
	// coordinator's worker protocol must be mounted on the same API
	// listener (NewAPIHandler does this automatically).
	Coordinator *collectd.Coordinator
	// JobsDir holds one directory per job (job.json + checkpoint.json).
	JobsDir string
	// Concurrency is the number of jobs running at once (default 1 —
	// each job already parallelizes collection internally).
	Concurrency int
	// QueueDepth bounds the submission queue (default 64). Submissions
	// beyond it fail fast instead of piling up.
	QueueDepth int
	// GateTolerance is the canary slack: a candidate is promoted when
	// its holdout error is at most incumbent_error × GateTolerance
	// (default 1.05 — up to 5% worse still promotes, anything beyond is
	// a regression).
	GateTolerance float64
	// HoldoutFrac is the default held-out fraction (default 0.25).
	HoldoutFrac float64
	// CheckpointEvery throttles mid-collection checkpoint writes; 0
	// checkpoints after every completed unit.
	CheckpointEvery time.Duration
	// RetryBackoff is the base delay before re-attempting a failed job;
	// attempt n waits RetryBackoff × 2^(n-1) (default 500ms).
	RetryBackoff time.Duration
	// MaxRetries is the default number of re-attempts after the first
	// failure (default 2). A job spec may override it.
	MaxRetries int
	// PromoteFailureThreshold is how many consecutive gate rejections or
	// promotion failures open the promotion circuit breaker (default 3):
	// while it is open, candidates are rejected without gating, so a
	// stream of bad candidates cannot flap the serving pointer or keep
	// re-scoring against the incumbent.
	PromoteFailureThreshold int
	// PromoteCooldown is how long the promotion breaker stays open
	// before probing with a real gate run again (default 1m).
	PromoteCooldown time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// TraceRing bounds the in-memory span ring served at /debug/traces
	// (default obs.DefaultRingSize).
	TraceRing int
	// TraceSink, when non-nil, additionally receives every completed
	// span as one JSON line (JSONL).
	TraceSink io.Writer
}

func (c *ManagerConfig) fillDefaults() {
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.GateTolerance <= 0 {
		c.GateTolerance = 1.05
	}
	if c.HoldoutFrac <= 0 || c.HoldoutFrac >= 1 {
		c.HoldoutFrac = 0.25
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Millisecond
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.PromoteFailureThreshold <= 0 {
		c.PromoteFailureThreshold = 3
	}
	if c.PromoteCooldown <= 0 {
		c.PromoteCooldown = time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Manager runs training jobs through the collect→train→evaluate→gate
// pipeline with crash-safe checkpoints. Jobs and their checkpoints are
// persisted under JobsDir after every state change, so a manager opened
// over an existing directory requeues whatever a killed predecessor
// left unfinished and resumes collection from the last checkpoint.
type Manager struct {
	cfg   ManagerConfig
	store *Store

	mu     sync.Mutex
	jobs   map[string]*Job
	cancel map[string]context.CancelFunc // running jobs only
	seq    int

	queue chan string
	o     *traindObs

	// promoteBreaker trips after a run of consecutive canary failures;
	// while open, candidates skip the gate and are rejected fast.
	promoteBreaker *resilience.Breaker
}

// errPermanent marks failures that retrying cannot fix.
var errPermanent = errors.New("permanent")

// NewManager builds a manager over an existing (or fresh) jobs
// directory, loading every persisted job: terminal ones for history,
// non-terminal ones back onto the queue in submission order.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	cfg.fillDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("lifecycle: manager requires a model store")
	}
	if cfg.JobsDir == "" {
		return nil, fmt.Errorf("lifecycle: manager requires a jobs directory")
	}
	if err := os.MkdirAll(cfg.JobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("lifecycle: %w", err)
	}
	m := &Manager{
		cfg:    cfg,
		store:  cfg.Store,
		jobs:   map[string]*Job{},
		cancel: map[string]context.CancelFunc{},
	}
	m.o = newTraindObs(m, obs.NewTracer(cfg.TraceRing, cfg.TraceSink))
	m.promoteBreaker = resilience.NewBreaker(resilience.BreakerConfig{
		Name:             "traind.promote",
		FailureThreshold: cfg.PromoteFailureThreshold,
		OpenTimeout:      cfg.PromoteCooldown,
	})
	m.promoteBreaker.Register(m.o.reg)
	m.o.reg.CounterFunc("napel_chaos_injected_total",
		"Faults fired by the installed chaos plan (0 when chaos is off).",
		func() float64 { return float64(faultpoint.TotalInjected()) })
	if cfg.Coordinator != nil {
		cfg.Coordinator.Register(m.o.reg)
	}
	requeue, err := m.recoverJobs()
	if err != nil {
		return nil, err
	}
	// Size the queue so recovered jobs never block construction.
	m.queue = make(chan string, cfg.QueueDepth+len(requeue))
	for _, id := range requeue {
		m.queue <- id
		m.cfg.Logf("lifecycle: requeued job %s after restart", id)
	}
	return m, nil
}

// recoverJobs loads persisted jobs and returns the non-terminal ones to
// requeue, in submission order — the restart half of the kill-and-resume
// contract. A job that died in collecting/training/evaluating goes back
// to queued; its checkpoint file (if any) makes the re-run skip every
// already-collected unit.
func (m *Manager) recoverJobs() ([]string, error) {
	entries, err := os.ReadDir(m.cfg.JobsDir)
	if err != nil {
		return nil, err
	}
	var requeue []string
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "j-") {
			continue
		}
		job, err := loadJobFile(filepath.Join(m.cfg.JobsDir, e.Name(), "job.json"))
		if err != nil {
			m.cfg.Logf("lifecycle: skipping unreadable job %s: %v", e.Name(), err)
			continue
		}
		var n int
		if _, err := fmt.Sscanf(job.ID, "j-%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
		if !job.State.Terminal() {
			job.State = StateQueued
			requeue = append(requeue, job.ID)
		}
		m.jobs[job.ID] = job
	}
	sort.Strings(requeue)
	for _, id := range requeue {
		if err := m.persistLocked(m.jobs[id]); err != nil {
			return nil, err
		}
	}
	return requeue, nil
}

func loadJobFile(path string) (*Job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("lifecycle: job file %s: %w", path, err)
	}
	if j.ID == "" {
		return nil, fmt.Errorf("lifecycle: job file %s has no ID", path)
	}
	return &j, nil
}

func (m *Manager) jobDir(id string) string  { return filepath.Join(m.cfg.JobsDir, id) }
func (m *Manager) jobPath(id string) string { return filepath.Join(m.jobDir(id), "job.json") }
func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.jobDir(id), "checkpoint.json")
}

// Submit validates the spec, assigns the next job ID, persists the job
// and enqueues it. It fails fast when the queue is full.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	job := &Job{
		ID:        fmt.Sprintf("j-%06d", m.seq),
		Spec:      spec,
		State:     StateQueued,
		CreatedAt: time.Now().UTC(),
	}
	if err := os.MkdirAll(m.jobDir(job.ID), 0o755); err != nil {
		m.seq--
		return nil, fmt.Errorf("lifecycle: %w", err)
	}
	if err := m.persistLocked(job); err != nil {
		m.seq--
		return nil, err
	}
	select {
	case m.queue <- job.ID:
	default:
		job.State = StateFailed
		job.Error = "submission queue full"
		m.persistLocked(job)
		m.jobs[job.ID] = job
		return nil, fmt.Errorf("lifecycle: submission queue full (%d pending)", len(m.queue))
	}
	m.jobs[job.ID] = job
	m.o.submitted.Inc()
	return job.clone(), nil
}

// Obs exposes the manager's metrics registry (for embedding callers and
// tests); scraping it is equivalent to GET /metrics on the admin API.
func (m *Manager) Obs() *obs.Registry { return m.o.reg }

// Tracer exposes the manager's span tracer, the backing store of
// /debug/traces on the admin API.
func (m *Manager) Tracer() *obs.Tracer { return m.o.tracer }

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// Jobs returns snapshots of every known job, oldest first.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.clone())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// QueueDepth reports jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Cancel stops a job: a queued job flips straight to canceled, a
// running one has its context canceled and finishes as canceled once
// the pipeline unwinds. Canceling a terminal job is an error.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("lifecycle: no job %s", id)
	}
	if j.State.Terminal() {
		return fmt.Errorf("lifecycle: job %s already %s", id, j.State)
	}
	if cancel, running := m.cancel[id]; running {
		cancel()
		return nil
	}
	j.State = StateCanceled
	j.FinishedAt = time.Now().UTC()
	m.o.finishJob(StateCanceled)
	return m.persistLocked(j)
}

// Run executes queued jobs until ctx is canceled, then drains: running
// jobs observe the cancellation, checkpoint, and stay non-terminal so
// the next Run resumes them. Run returns once every worker has exited.
func (m *Manager) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < m.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case id := <-m.queue:
					m.runJob(ctx, id)
				}
			}
		}()
	}
	wg.Wait()
}

// persistLocked writes the job file atomically; callers hold m.mu.
func (m *Manager) persistLocked(j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFileData(m.jobPath(j.ID), data, 0o644)
}

// setState transitions a job and persists it.
func (m *Manager) setState(j *Job, state JobState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.State = state
	if state.Terminal() {
		j.FinishedAt = time.Now().UTC()
		m.o.finishJob(state)
		if !j.StartedAt.IsZero() {
			m.o.duration.Observe(j.FinishedAt.Sub(j.StartedAt).Seconds())
		}
	}
	if err := m.persistLocked(j); err != nil {
		m.cfg.Logf("lifecycle: persisting job %s: %v", j.ID, err)
	}
}

// runJob drives one job through the pipeline with retries. Shutdown
// (root ctx canceled) leaves the job non-terminal for the next daemon;
// per-job cancellation finishes it as canceled.
func (m *Manager) runJob(ctx context.Context, id string) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok || job.State != StateQueued {
		m.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(obs.WithTracer(ctx, m.o.tracer))
	m.cancel[id] = cancel
	job.StartedAt = time.Now().UTC()
	m.o.stage("queue_wait", job.StartedAt.Sub(job.CreatedAt))
	m.mu.Unlock()
	defer func() {
		cancel()
		m.mu.Lock()
		delete(m.cancel, id)
		m.mu.Unlock()
	}()

	m.o.running.Inc()
	defer m.o.running.Dec()

	maxRetries := m.cfg.MaxRetries
	if job.Spec.MaxRetries != 0 {
		maxRetries = job.Spec.MaxRetries
		if maxRetries < 0 {
			maxRetries = 0
		}
	}

	// The retry loop is resilience.Do: jittered exponential backoff
	// seeded by the job ID (deterministic schedules under test, spread
	// in a fleet), Permanent short-circuiting for spec errors, and
	// context-aware sleeps so cancellation and shutdown cut the backoff.
	var seed uint64
	fmt.Sscanf(id, "j-%d", &seed)
	policy := resilience.Policy{
		MaxAttempts: maxRetries + 1,
		BaseDelay:   m.cfg.RetryBackoff,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        seed + 1,
		OnRetry: func(attempt int, err error, delay time.Duration) {
			m.o.retries.Inc()
			m.cfg.Logf("lifecycle: job %s attempt %d failed (%v), retrying in %s", id, attempt, err, delay)
		},
	}
	err := resilience.Do(jctx, policy, func(actx context.Context) error {
		m.mu.Lock()
		job.Attempt++
		m.mu.Unlock()
		err := m.runPipeline(actx, job)
		if err == nil || actx.Err() != nil {
			return err
		}
		m.mu.Lock()
		job.Error = err.Error()
		m.persistLocked(job)
		m.mu.Unlock()
		if errors.Is(err, errPermanent) {
			return resilience.Permanent(err)
		}
		return err
	})
	switch {
	case err == nil:
	case ctx.Err() != nil:
		// Daemon shutdown: leave the persisted state non-terminal;
		// recover() will requeue and the checkpoint will carry the
		// progress across.
		m.cfg.Logf("lifecycle: job %s interrupted by shutdown in state %s", id, job.State)
		m.mu.Lock()
		m.persistLocked(job)
		m.mu.Unlock()
	case jctx.Err() != nil:
		m.mu.Lock()
		job.Error = "canceled"
		m.mu.Unlock()
		m.setState(job, StateCanceled)
		m.cfg.Logf("lifecycle: job %s canceled", id)
	default:
		m.setState(job, StateFailed)
		m.cfg.Logf("lifecycle: job %s failed after %d attempt(s): %v", id, job.Attempt, err)
	}
}

// runPipeline is one attempt: collect (checkpointed) → train → store →
// evaluate → gate → promote/reject. Each attempt is one trace: a "job"
// root span with one child per pipeline stage, mirrored into the
// napel_traind_job_stage_seconds histogram. Collection runs under the
// collect span's context, so the engine's per-unit spans nest inside it.
func (m *Manager) runPipeline(ctx context.Context, job *Job) (err error) {
	ctx, jobSpan := obs.StartSpan(ctx, "job")
	jobSpan.SetAttr("id", job.ID)
	jobSpan.SetAttrInt("attempt", int64(job.Attempt))
	defer func() {
		jobSpan.SetError(err)
		jobSpan.End()
	}()

	spec := job.Spec
	kernels, err := spec.kernels()
	if err != nil {
		return fmt.Errorf("%w: %v", errPermanent, err)
	}
	opts, err := spec.options()
	if err != nil {
		return fmt.Errorf("%w: %v", errPermanent, err)
	}
	// The collection engine reports onto the manager's registry, so one
	// /metrics scrape covers the job pipeline and the engine inside it.
	opts.Metrics = m.o.reg
	seed := spec.seed()
	frac := spec.HoldoutFrac
	if frac == 0 {
		frac = m.cfg.HoldoutFrac
	}

	// Distributed jobs delegate unit execution to the worker fleet; the
	// engine machinery (and so the assembled bytes) is identical.
	if spec.Distributed {
		if m.cfg.Coordinator == nil {
			return fmt.Errorf("%w: job requests distributed collection but the daemon has no coordinator", errPermanent)
		}
		opts.Executor = m.cfg.Coordinator.Executor()
	}

	// Collect, resuming from the job's checkpoint when one exists.
	// Active jobs run the uncertainty-driven loop instead.
	m.setState(job, StateCollecting)
	t0 := time.Now()
	cctx, cspan := obs.StartSpan(ctx, "collect")
	var td *napel.TrainingData
	if spec.Active {
		td, err = m.collectActive(cctx, job, kernels, opts)
	} else {
		td, err = m.collect(cctx, job, kernels, opts)
	}
	cspan.SetError(err)
	cspan.End()
	m.o.stage("collect", time.Since(t0))
	if err != nil {
		return err
	}

	// Train on the full dataset. TrainTime is wall-clock noise; zeroing
	// it keeps the serialized bytes a pure function of (data, spec), so
	// a resumed job's model is byte-identical to an uninterrupted one
	// and content-addresses to the same blob.
	m.setState(job, StateTraining)
	t0 = time.Now()
	_, tspan := obs.StartSpan(ctx, "train")
	var pred *napel.Predictor
	if spec.Tune {
		pred, err = napel.TrainTuned(td, seed)
	} else {
		pred, err = trainWith(td, spec.trainer(), seed)
	}
	tspan.SetError(err)
	tspan.End()
	m.o.stage("train", time.Since(t0))
	if err != nil {
		return err
	}
	pred.TrainTime = 0

	var modelBuf, dataBuf bytes.Buffer
	if err := pred.Save(&modelBuf); err != nil {
		return err
	}
	if err := napel.SaveTrainingData(&dataBuf, td); err != nil {
		return err
	}
	modelHash, err := m.store.PutModel(modelBuf.Bytes())
	if err != nil {
		return err
	}

	// Evaluate the candidate on the deterministic holdout fold.
	m.setState(job, StateEvaluating)
	t0 = time.Now()
	_, espan := obs.StartSpan(ctx, "evaluate")
	metrics, err := napel.EvaluateHoldout(td, spec.trainer(), frac, seed)
	espan.SetError(err)
	espan.End()
	m.o.stage("evaluate", time.Since(t0))
	if err != nil {
		return fmt.Errorf("%w: %v", errPermanent, err)
	}

	manifest := &Manifest{
		ModelHash: modelHash,
		DataHash:  HashBytes(dataBuf.Bytes()),
		Samples:   len(td.Samples),
		Kernels:   spec.Kernels,
		Params:    spec.trainer().Name(),
		Seed:      seed,
		JobID:     job.ID,
		Build:     buildVersion(),
		Metrics:   &metrics,
	}
	if err := m.store.PutManifest(manifest); err != nil {
		return err
	}

	// A run of consecutive canary failures opens the promotion breaker;
	// while open, candidates are rejected without re-scoring the
	// incumbent, so a stream of bad candidates cannot flap the serving
	// pointer. The next pipeline after the cooldown probes the gate again.
	if berr := m.promoteBreaker.Allow(); berr != nil {
		m.mu.Lock()
		job.Samples = len(td.Samples)
		job.ManifestID = manifest.ID
		job.Metrics = &metrics
		job.Error = ""
		m.mu.Unlock()
		m.removeCheckpoint(job.ID)
		m.setState(job, StateRejected)
		m.o.rejections.Inc()
		m.cfg.Logf("lifecycle: job %s rejected without gating: %v", job.ID, berr)
		return nil
	}

	t0 = time.Now()
	_, gspan := obs.StartSpan(ctx, "gate")
	promote, baseline, incumbentID, err := m.gate(td, metrics, frac, seed)
	gspan.SetAttr("verdict", gateVerdict(promote))
	gspan.SetError(err)
	gspan.End()
	m.o.stage("gate", time.Since(t0))
	if err != nil {
		m.promoteBreaker.RecordFailure()
		return err
	}
	m.mu.Lock()
	job.Samples = len(td.Samples)
	job.ManifestID = manifest.ID
	job.Metrics = &metrics
	job.GateBaseline = baseline
	job.GateIncumbent = incumbentID
	job.Error = ""
	m.mu.Unlock()

	if !promote {
		m.promoteBreaker.RecordFailure()
		m.removeCheckpoint(job.ID)
		m.setState(job, StateRejected)
		m.o.rejections.Inc()
		m.cfg.Logf("lifecycle: job %s rejected by canary gate: candidate %.4f vs incumbent %.4f (tolerance %.2f)",
			job.ID, metrics.Combined(), baseline, m.cfg.GateTolerance)
		return nil
	}
	if err := faultpoint.Inject(ctx, fpPromote); err != nil {
		m.promoteBreaker.RecordFailure()
		return err
	}
	if err := m.store.Promote(manifest.ID); err != nil {
		m.promoteBreaker.RecordFailure()
		return err
	}
	m.promoteBreaker.RecordSuccess()
	m.removeCheckpoint(job.ID)
	m.setState(job, StatePromoted)
	m.o.promotions.Inc()
	m.cfg.Logf("lifecycle: job %s promoted %s (model %s, holdout %.4f)",
		job.ID, manifest.ID, modelHash[:16], metrics.Combined())
	return nil
}

// collect runs the checkpointed collection stage. OnUnit fires under
// the engine's lock after every completed unit; the manager updates
// progress counters every time and rewrites the checkpoint file at most
// once per CheckpointEvery. On cancellation the partial dataset the
// engine hands back is checkpointed before returning, so even progress
// inside the throttle window survives a graceful shutdown (a SIGKILL
// falls back to the last throttled write).
func (m *Manager) collect(ctx context.Context, job *Job, kernels []workload.Kernel, opts napel.Options) (*napel.TrainingData, error) {
	ckPath := m.checkpointPath(job.ID)
	prior, err := napel.LoadTrainingDataFile(ckPath)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// Unreadable or incompatible checkpoint: start over rather
			// than fail the job.
			m.cfg.Logf("lifecycle: job %s: discarding unusable checkpoint: %v", job.ID, err)
			m.removeCheckpoint(job.ID)
		}
		prior = nil
	}

	var (
		lastWrite time.Time
		executed  int
	)
	ck := &napel.CollectCheckpoint{
		Prior: prior,
		OnUnit: func(done, total int, snapshot func() *napel.TrainingData) {
			executed++
			m.mu.Lock()
			job.UnitsDone = done
			job.UnitsTotal = total
			job.UnitsRestored = done - executed
			m.mu.Unlock()
			now := time.Now()
			if done < total && m.cfg.CheckpointEvery > 0 && now.Sub(lastWrite) < m.cfg.CheckpointEvery {
				return
			}
			lastWrite = now
			if err := napel.WriteTrainingDataFile(ckPath, snapshot()); err != nil {
				m.cfg.Logf("lifecycle: job %s: checkpoint write failed: %v", job.ID, err)
			} else {
				m.o.ckpWrite.ObserveSince(now)
				m.o.markCheckpoint(now)
			}
		},
	}

	td, err := napel.CollectResumeContext(ctx, kernels, opts, ck)
	if err != nil {
		if errors.Is(err, context.Canceled) && td != nil && len(td.Samples) > 0 {
			// Graceful stop: persist whatever the throttle window held
			// back so the next attempt resumes from here.
			t0 := time.Now()
			if werr := napel.WriteTrainingDataFile(ckPath, td); werr == nil {
				m.o.ckpWrite.ObserveSince(t0)
				m.o.markCheckpoint(t0)
			}
		}
		if prior != nil && !errors.Is(err, context.Canceled) && strings.Contains(err.Error(), "resume checkpoint") {
			// The checkpoint's feature layout no longer matches this
			// build; drop it and let the retry loop run a clean pass.
			m.removeCheckpoint(job.ID)
		}
		return nil, err
	}
	return td, nil
}

// collectActive runs the active-learning collection loop for jobs
// submitted with active: true. Round reports land on the job record
// (UnitsDone/UnitsTotal track simulated units against the pool, Rounds
// counts completed rounds) and are persisted per round — coarser than
// the per-unit checkpoints of exhaustive collection, but rounds are the
// loop's natural unit of progress and a retried active job re-selects
// the identical sequence anyway (selection is a pure function of the
// seed).
func (m *Manager) collectActive(ctx context.Context, job *Job, kernels []workload.Kernel, opts napel.Options) (*napel.TrainingData, error) {
	spec := job.Spec
	acfg := collectd.ActiveConfig{
		Seed:        spec.seed(),
		SeedUnits:   spec.ActiveSeedUnits,
		RoundUnits:  spec.ActiveRoundUnits,
		MaxUnits:    spec.ActiveMaxUnits,
		TargetMRE:   spec.ActiveTargetMRE,
		HoldoutFrac: spec.HoldoutFrac,
		Trainer:     spec.trainer(),
		Registry:    m.o.reg,
		Logf:        m.cfg.Logf,
		OnRound: func(r collectd.RoundReport) {
			m.mu.Lock()
			job.UnitsDone = r.UnitsSimulated
			job.UnitsTotal = r.UnitsSimulated + r.PoolRemaining
			job.Rounds = r.Round + 1
			m.persistLocked(job)
			m.mu.Unlock()
		},
	}
	td, report, err := collectd.ActiveCollect(ctx, kernels, opts, acfg)
	if err != nil {
		return nil, err
	}
	m.cfg.Logf("lifecycle: job %s active collection simulated %d/%d units over %d rounds (final holdout MRE %.4f)",
		job.ID, report.UnitsSimulated, report.PoolSize, len(report.Rounds), report.FinalMRE)
	return td, nil
}

// gate decides promotion: the candidate's holdout error must be within
// GateTolerance of the incumbent's. The baseline is the error recorded
// in the incumbent's manifest — both numbers then measure a model's
// generalization from its own training distribution. An incumbent
// without recorded metrics (e.g. ingested from outside the daemon) is
// scored live on the candidate's holdout fold instead. No incumbent
// means automatic promotion.
func (m *Manager) gate(td *napel.TrainingData, cand napel.HoldoutMetrics, frac float64, seed uint64) (promote bool, baseline float64, incumbentID string, err error) {
	inc, err := m.store.Current()
	if errors.Is(err, ErrNoCurrent) {
		return true, 0, "", nil
	}
	if err != nil {
		return false, 0, "", err
	}
	if inc.Metrics != nil {
		baseline = inc.Metrics.Combined()
	} else {
		// ReadModel verifies the blob against its content address and
		// quarantines corruption, so a damaged incumbent fails the gate
		// loudly instead of silently scoring garbage.
		data, err := m.store.ReadModel(inc.ModelHash)
		if err != nil {
			return false, 0, inc.ID, err
		}
		pred, err := napel.LoadPredictor(bytes.NewReader(data))
		if err != nil {
			return false, 0, inc.ID, err
		}
		im, err := napel.EvaluatePredictorHoldout(pred, td, frac, seed)
		if err != nil {
			return false, 0, inc.ID, err
		}
		baseline = im.Combined()
	}
	return cand.Combined() <= baseline*m.cfg.GateTolerance, baseline, inc.ID, nil
}

func (m *Manager) removeCheckpoint(id string) {
	if err := os.Remove(m.checkpointPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		m.cfg.Logf("lifecycle: removing checkpoint for %s: %v", id, err)
	}
}

func gateVerdict(promote bool) string {
	if promote {
		return "promote"
	}
	return "reject"
}

// trainWith fits both targets with an explicit trainer — the manager's
// path for spec-pinned forests (napel.Train hardwires the default).
func trainWith(td *napel.TrainingData, trainer ml.Trainer, seed uint64) (*napel.Predictor, error) {
	p := &napel.Predictor{
		Names:  td.Names,
		Chosen: map[napel.Target]string{},
	}
	for _, target := range []napel.Target{napel.TargetIPC, napel.TargetEPI} {
		d := td.Dataset(target)
		model, err := trainer.Train(d, seed)
		if err != nil {
			return nil, fmt.Errorf("lifecycle: training %s model: %w", target, err)
		}
		p.Chosen[target] = trainer.Name()
		if target == napel.TargetEPI {
			p.EPI = model
		} else {
			p.IPC = model
		}
	}
	return p, nil
}
