package lifecycle

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"napel/internal/collectd"
	"napel/internal/obs"
)

// maxSpecBytes bounds a job-submission body.
const maxSpecBytes = 1 << 20

// NewAPIHandler exposes the manager's admin API:
//
//	POST /v1/jobs               submit a JobSpec, returns the Job
//	GET  /v1/jobs               list jobs
//	GET  /v1/jobs/{id}          one job's status
//	POST /v1/jobs/{id}/cancel   cancel a queued or running job
//	GET  /v1/store              store state: current model + manifests
//	POST /v1/store/rollback     re-promote the previous model
//	GET  /v1/store/current      promoted manifest (model distribution)
//	GET  /v1/store/manifests/{id}  one manifest
//	GET  /v1/store/blobs/{hash}    model bytes by content address
//	GET  /healthz               liveness
//
// When the manager runs a collectd coordinator, the worker protocol
// (POST /v1/lease, /v1/heartbeat, /v1/complete; GET /v1/collect) is
// mounted on the same mux, so one listener serves operators and
// napel-worker processes alike.
//	GET  /metrics               Prometheus text exposition
//	GET  /debug/traces          recent job/engine spans, grouped by trace
//	GET  /debug/pprof/...       runtime profiling
//	GET  /debug/runtime         goroutine/GC/heap snapshot
func NewAPIHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"jobs":           len(m.Jobs()),
			"queue_depth":    m.QueueDepth(),
			"uptime_seconds": time.Since(m.o.start).Seconds(),
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		m.o.reg.WriteText(w)
	})

	obs.MountDebug(mux, m.o.tracer)

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(io.LimitReader(r.Body, maxSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding job spec: %v", err))
			return
		}
		job, err := m.Submit(spec)
		if err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "queue full") {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.Jobs()})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, job)
	})

	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			status := http.StatusConflict
			if strings.Contains(err.Error(), "no job") {
				status = http.StatusNotFound
			}
			writeError(w, status, err.Error())
			return
		}
		job, _ := m.Get(id)
		writeJSON(w, http.StatusOK, job)
	})

	mux.HandleFunc("GET /v1/store", func(w http.ResponseWriter, r *http.Request) {
		manifests, err := m.store.List()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		history, err := m.store.History()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp := map[string]any{
			"manifests":  manifests,
			"history":    history,
			"model_path": m.store.CurrentModelPath(),
		}
		current, err := m.store.Current()
		switch {
		case err == nil:
			resp["current"] = current
		case errors.Is(err, ErrNoCurrent):
			resp["current"] = nil
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	// The model-distribution routes replicas pull from (StoreSource).
	RegisterStoreAPI(mux, m.store, m.o.tracer)

	// The worker-facing collection protocol, when a coordinator runs.
	// The manager's tracer is handed over so lease/complete handler
	// spans land in the same ring the store-pull spans do.
	if m.cfg.Coordinator != nil {
		m.cfg.Coordinator.SetTracer(m.o.tracer)
		collectd.RegisterAPI(mux, m.cfg.Coordinator)
	}

	mux.HandleFunc("POST /v1/store/rollback", func(w http.ResponseWriter, r *http.Request) {
		manifest, err := m.store.Rollback()
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNoRollback) {
				status = http.StatusConflict
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"current": manifest})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
