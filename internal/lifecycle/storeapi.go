package lifecycle

import (
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"regexp"

	"napel/internal/obs"
	"napel/internal/resilience/faultpoint"
)

// fpStoreBlob tears a blob response mid-stream under a ModePartial
// chaos rule — the over-the-wire analogue of a torn disk write. The
// puller's sha256 re-verification must reject the truncated bytes and
// keep its last-good generation.
const fpStoreBlob = "store.blob"

// Path parameters are validated against the exact shapes the store
// writes, so the HTTP layer can never be steered at arbitrary files.
var (
	blobHashRe   = regexp.MustCompile(`^sha256-[0-9a-f]{64}$`)
	manifestIDRe = regexp.MustCompile(`^m-[0-9]{1,12}$`)
)

// RegisterStoreAPI mounts the read-only model-distribution API on mux:
//
//	GET /v1/store/current          promoted manifest (404 before first promotion)
//	GET /v1/store/manifests/{id}   one manifest by ID
//	GET /v1/store/blobs/{hash}     model bytes by content address
//
// This is the server half of serve.StoreSource: a replica resolves the
// current lineage to a content address, pulls the named blob, and
// re-hashes what it received. Blobs are read through Store.ReadModel,
// so server-side corruption is quarantined at read time and never
// leaves the machine; what corruption can do is happen in flight —
// hence the client-side check, exercised by the store.blob fault point.
//
// tracer may be nil (spans become no-ops). When set, each pull request
// opens a server span joined — via the traceparent header StoreSource
// injects — to the replica's "store.pull" trace, so one model
// distribution reads as a single cross-process tree in /debug/fleet.
func RegisterStoreAPI(mux *http.ServeMux, s *Store, tracer *obs.Tracer) {
	traced := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			ctx := obs.ExtractHTTP(obs.WithTracer(r.Context(), tracer), r)
			ctx, span := obs.StartSpan(ctx, name)
			defer span.End()
			h(w, r.WithContext(ctx))
		}
	}

	mux.HandleFunc("GET /v1/store/current", traced("store.serve.current", func(w http.ResponseWriter, r *http.Request) {
		m, err := s.Current()
		switch {
		case errors.Is(err, ErrNoCurrent):
			writeError(w, http.StatusNotFound, err.Error())
		case err != nil:
			writeError(w, http.StatusInternalServerError, err.Error())
		default:
			writeJSON(w, http.StatusOK, m)
		}
	}))

	mux.HandleFunc("GET /v1/store/manifests/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !manifestIDRe.MatchString(id) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed manifest id %q", id))
			return
		}
		m, err := s.GetManifest(id)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			writeError(w, http.StatusNotFound, fmt.Sprintf("no manifest %s", id))
		case err != nil:
			writeError(w, http.StatusInternalServerError, err.Error())
		default:
			writeJSON(w, http.StatusOK, m)
		}
	})

	mux.HandleFunc("GET /v1/store/blobs/{hash}", traced("store.serve.blob", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		if !blobHashRe.MatchString(hash) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed blob address %q", hash))
			return
		}
		obs.SpanFromContext(r.Context()).SetAttr("blob", hash)
		data, err := s.ReadModel(hash)
		switch {
		case errors.Is(err, ErrCorruptBlob):
			// The blob just moved to quarantine/; a republish of the same
			// training run restores clean bytes under the same address,
			// so this is retryable.
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		case errors.Is(err, fs.ErrNotExist):
			writeError(w, http.StatusNotFound, fmt.Sprintf("no blob %s", hash))
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Content-Address", hash)
		// No Content-Length on purpose: a torn write under chunked
		// encoding yields a well-formed-looking truncated body, which is
		// the hard case the puller's sha256 check exists for.
		out := faultpoint.WrapWriter(fpStoreBlob, w)
		out.Write(data)
	}))
}

// NewStoreHandler returns a standalone handler serving only the store
// distribution API — for tests, or for exposing distribution on a
// different listener than the admin API.
func NewStoreHandler(s *Store) http.Handler {
	mux := http.NewServeMux()
	RegisterStoreAPI(mux, s, nil)
	return mux
}
