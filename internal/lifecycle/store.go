// Package lifecycle closes NAPEL's train→store→promote loop: a
// checkpointed training-job manager (Manager) drives the collection
// engine and the random-forest trainer, a content-addressed model store
// (Store) gives every trained predictor an immutable identity with full
// lineage, and a canary gate compares each candidate against the
// incumbent on a held-out fold before atomically flipping the pointer
// the serving registry follows. cmd/napel-traind is the daemon front
// end; internal/serve's registry reads the store's current-model
// pointer.
package lifecycle

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"napel/internal/atomicfile"
	"napel/internal/napel"
)

// Store layout under its root directory:
//
//	blobs/sha256-<hex>.json   immutable model bytes, named by content hash
//	manifests/m-<seq>.json    Manifest records (lineage + metrics)
//	current                   symlink -> manifests/m-<seq>.json
//	current-model.json        symlink -> blobs/sha256-<hex>.json
//	history.json              promoted manifest IDs, oldest first
//
// Both "current" pointers are flipped with an atomic symlink rename, so
// a napel-serve registry configured with <root>/current-model.json can
// re-read the path at any moment and always sees one complete model
// generation. Blobs are content-addressed: publishing the same weights
// twice stores one file, and a manifest's ModelHash pins exactly which
// bytes it describes.
type Store struct {
	root string

	// mu serializes writers (manifest sequencing, pointer flips,
	// history). Readers of published files need no lock: blobs are
	// immutable and pointers flip atomically.
	mu sync.Mutex
}

// ErrNoCurrent is returned when no model has been promoted yet.
var ErrNoCurrent = errors.New("lifecycle: no model promoted yet")

// ErrNoRollback is returned when the history holds fewer than two
// promotions.
var ErrNoRollback = errors.New("lifecycle: no earlier promotion to roll back to")

// ErrCorruptBlob is returned when a stored model's bytes no longer
// match their content address; the blob has been moved to quarantine/.
var ErrCorruptBlob = errors.New("lifecycle: model blob corrupt")

// Manifest is the lineage record of one stored model: which bytes
// (ModelHash), from which training data (DataHash), trained how
// (Params, Seed, Kernels), by whom (JobID, Build), and how well it
// validated (Metrics). Manifests are immutable once written; promotion
// state lives in the current pointer and history, not in the manifest.
type Manifest struct {
	ID        string                `json:"id"`
	CreatedAt time.Time             `json:"created_at"`
	ModelHash string                `json:"model_hash"`
	DataHash  string                `json:"data_hash,omitempty"`
	Samples   int                   `json:"samples,omitempty"`
	Kernels   []string              `json:"kernels,omitempty"`
	Params    string                `json:"params,omitempty"`
	Seed      uint64                `json:"seed,omitempty"`
	JobID     string                `json:"job_id,omitempty"`
	Build     string                `json:"build,omitempty"`
	Metrics   *napel.HoldoutMetrics `json:"metrics,omitempty"`
}

// OpenStore opens (creating if needed) a model store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	s := &Store{root: dir}
	for _, sub := range []string{dir, s.blobDir(), s.manifestDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("lifecycle: %w", err)
		}
	}
	return s, nil
}

func (s *Store) blobDir() string     { return filepath.Join(s.root, "blobs") }
func (s *Store) manifestDir() string { return filepath.Join(s.root, "manifests") }
func (s *Store) historyPath() string { return filepath.Join(s.root, "history.json") }

// CurrentModelPath is the stable path serving processes point at: a
// symlink that always resolves to the promoted model's blob. It exists
// only after the first promotion.
func (s *Store) CurrentModelPath() string { return filepath.Join(s.root, "current-model.json") }

func (s *Store) currentManifestPath() string { return filepath.Join(s.root, "current") }

// HashBytes returns the store's content address for a byte string.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256-" + hex.EncodeToString(sum[:])
}

// PutModel stores the serialized predictor under its content hash and
// returns the hash. Storing bytes that already exist is a no-op — the
// dedup that makes a resumed training run (bit-identical output) land
// on the same blob as an uninterrupted one.
func (s *Store) PutModel(data []byte) (string, error) {
	hash := HashBytes(data)
	path := filepath.Join(s.blobDir(), hash+".json")
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	if err := atomicfile.WriteFileData(path, data, 0o444); err != nil {
		return "", err
	}
	return hash, nil
}

// ModelBlobPath returns the on-disk path of a stored model hash.
func (s *Store) ModelBlobPath(hash string) string {
	return filepath.Join(s.blobDir(), hash+".json")
}

func (s *Store) quarantineDir() string { return filepath.Join(s.root, "quarantine") }

// ReadModel reads a stored blob and verifies it against its content
// address — the name IS the checksum, so a flipped bit anywhere in the
// file is detected before the bytes are parsed, let alone served. A
// mismatching blob is moved to quarantine/ (keeping the evidence, and
// letting a re-run of the same training data republish clean bytes
// under the same name) and ErrCorruptBlob is returned.
func (s *Store) ReadModel(hash string) ([]byte, error) {
	data, err := os.ReadFile(s.ModelBlobPath(hash))
	if err != nil {
		return nil, err
	}
	if got := HashBytes(data); got != hash {
		where := "quarantine failed"
		if qpath, qerr := s.quarantineBlob(hash); qerr == nil {
			where = "quarantined at " + qpath
		}
		return nil, fmt.Errorf("%w: %s reads back as %s (%s)", ErrCorruptBlob, hash, got, where)
	}
	return data, nil
}

// quarantineBlob moves a corrupt blob out of blobs/ so it can never be
// promoted or served, returning its new path.
func (s *Store) quarantineBlob(hash string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.quarantineDir(), 0o755); err != nil {
		return "", err
	}
	dst := filepath.Join(s.quarantineDir(), hash+".json")
	if err := os.Rename(s.ModelBlobPath(hash), dst); err != nil {
		return "", err
	}
	return dst, nil
}

// Quarantined lists the content addresses currently in quarantine.
func (s *Store) Quarantined() ([]string, error) {
	entries, err := os.ReadDir(s.quarantineDir())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			out = append(out, strings.TrimSuffix(e.Name(), ".json"))
		}
	}
	sort.Strings(out)
	return out, nil
}

// PutManifest assigns the next manifest ID, stamps CreatedAt if unset,
// and persists the manifest. The blob it references must already be
// stored.
func (s *Store) PutManifest(m *Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.ModelHash == "" {
		return fmt.Errorf("lifecycle: manifest without a model hash")
	}
	if _, err := os.Stat(s.ModelBlobPath(m.ModelHash)); err != nil {
		return fmt.Errorf("lifecycle: manifest references unstored blob %s: %w", m.ModelHash, err)
	}
	seq := 1
	ids, err := s.manifestIDsLocked()
	if err != nil {
		return err
	}
	if n := len(ids); n > 0 {
		fmt.Sscanf(ids[n-1], "m-%d", &seq)
		seq++
	}
	m.ID = fmt.Sprintf("m-%06d", seq)
	if m.CreatedAt.IsZero() {
		m.CreatedAt = time.Now().UTC()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFileData(filepath.Join(s.manifestDir(), m.ID+".json"), data, 0o644)
}

// manifestIDsLocked lists manifest IDs in ascending sequence order.
func (s *Store) manifestIDsLocked() ([]string, error) {
	entries, err := os.ReadDir(s.manifestDir())
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "m-") && strings.HasSuffix(name, ".json") {
			ids = append(ids, strings.TrimSuffix(name, ".json"))
		}
	}
	sort.Strings(ids) // zero-padded sequence numbers sort correctly
	return ids, nil
}

// GetManifest reads one manifest by ID.
func (s *Store) GetManifest(id string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.manifestDir(), id+".json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("lifecycle: manifest %s: %w", id, err)
	}
	return &m, nil
}

// List returns every manifest in ascending ID order.
func (s *Store) List() ([]*Manifest, error) {
	s.mu.Lock()
	ids, err := s.manifestIDsLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([]*Manifest, 0, len(ids))
	for _, id := range ids {
		m, err := s.GetManifest(id)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Current returns the promoted manifest, or ErrNoCurrent.
func (s *Store) Current() (*Manifest, error) {
	target, err := os.Readlink(s.currentManifestPath())
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNoCurrent
		}
		return nil, err
	}
	id := strings.TrimSuffix(filepath.Base(target), ".json")
	return s.GetManifest(id)
}

// Promote makes manifest id the serving model: both current pointers
// (manifest and model blob) flip atomically and the promotion is
// appended to the history. A reader resolving CurrentModelPath mid-
// promotion sees the old complete model or the new one.
func (s *Store) Promote(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoteLocked(id, true)
}

func (s *Store) promoteLocked(id string, appendHistory bool) error {
	m, err := s.GetManifest(id)
	if err != nil {
		return fmt.Errorf("lifecycle: promoting %s: %w", id, err)
	}
	if _, err := os.Stat(s.ModelBlobPath(m.ModelHash)); err != nil {
		return fmt.Errorf("lifecycle: promoting %s: blob missing: %w", id, err)
	}
	// Flip the model pointer first: a serving process follows only this
	// link, and each individual flip is atomic.
	if err := atomicfile.Symlink(filepath.Join("blobs", m.ModelHash+".json"), s.CurrentModelPath()); err != nil {
		return err
	}
	if err := atomicfile.Symlink(filepath.Join("manifests", id+".json"), s.currentManifestPath()); err != nil {
		return err
	}
	if !appendHistory {
		return nil
	}
	hist, err := s.historyLocked()
	if err != nil {
		return err
	}
	hist = append(hist, id)
	return s.writeHistoryLocked(hist)
}

// History returns the promoted manifest IDs, oldest first.
func (s *Store) History() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.historyLocked()
}

func (s *Store) historyLocked() ([]string, error) {
	data, err := os.ReadFile(s.historyPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var hist []string
	if err := json.Unmarshal(data, &hist); err != nil {
		return nil, fmt.Errorf("lifecycle: history: %w", err)
	}
	return hist, nil
}

func (s *Store) writeHistoryLocked(hist []string) error {
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFileData(s.historyPath(), data, 0o644)
}

// Rollback re-promotes the previous entry in the promotion history and
// drops the current one, returning the manifest now serving. With fewer
// than two promotions it fails with ErrNoRollback.
func (s *Store) Rollback() (*Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hist, err := s.historyLocked()
	if err != nil {
		return nil, err
	}
	if len(hist) < 2 {
		return nil, ErrNoRollback
	}
	prev := hist[len(hist)-2]
	if err := s.promoteLocked(prev, false); err != nil {
		return nil, err
	}
	if err := s.writeHistoryLocked(hist[:len(hist)-1]); err != nil {
		return nil, err
	}
	return s.GetManifest(prev)
}

// LoadCurrentPredictor loads the promoted model — the incumbent the
// canary gate scores candidates against — verifying its bytes against
// their content address first.
func (s *Store) LoadCurrentPredictor() (*napel.Predictor, *Manifest, error) {
	m, err := s.Current()
	if err != nil {
		return nil, nil, err
	}
	data, err := s.ReadModel(m.ModelHash)
	if err != nil {
		return nil, nil, err
	}
	p, err := napel.LoadPredictor(bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	return p, m, nil
}

// buildVersion best-efforts the binary's VCS identity for manifest
// lineage (git revision via debug.ReadBuildInfo; "unknown" in tests and
// unstamped builds).
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, dirty string
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "unknown"
}
