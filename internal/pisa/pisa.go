// Package pisa implements the microarchitecture-independent workload
// characterization of NAPEL's first phase. It stands in for the
// LLVM-based PISA analysis tool (Anghel et al., reference [3] of the
// paper): a single streaming pass over a kernel's dynamic instruction
// trace produces an application profile p(k, d) with exactly 395
// features — instruction mix, ideal-machine ILP at several window sizes,
// data and instruction reuse-distance distributions, memory traffic at
// cache-size thresholds, register traffic, strides, branch behaviour and
// memory footprint (Table 1).
//
// All features are hardware-independent: they are properties of the
// dataflow and the address stream, not of any cache or core
// configuration. Reuse distances are exact LRU stack distances computed
// at a fixed 64-byte line granularity.
package pisa

import (
	"math"

	"napel/internal/stats"
	"napel/internal/trace"
)

// LineGranularity is the fixed block size at which data reuse distances
// are measured.
const LineGranularity = 64

// PageGranularity is the block size for page-footprint accounting.
const PageGranularity = 4096

// reuseBuckets is the number of log2 buckets in reuse-distance
// histograms (distances saturate at 2^31 distinct lines).
const reuseBuckets = 32

// strideBuckets is the number of log2 buckets in stride histograms.
const strideBuckets = 32

// instReuseBuckets is the number of log2 buckets for instruction reuse.
const instReuseBuckets = 24

// Profiler consumes a trace and accumulates the raw statistics behind
// the 395-feature application profile.
type Profiler struct {
	counter trace.Counter
	ilp     *ilpTracker

	dataReuse  *reuseTracker
	instReuse  *mtfTracker
	pages      *u64set
	bytesRead  uint64
	bytesWrite uint64

	dataHist  *stats.Histogram // all accesses
	readHist  *stats.Histogram
	writeHist *stats.Histogram
	instHist  *stats.Histogram
	coldData  uint64
	coldInst  uint64

	localLast   map[uint32]uint64 // per-site previous address
	localHist   *stats.Histogram
	localZero   uint64
	localUnit   uint64
	globalLast  uint64
	globalValid bool
	globalHist  *stats.Histogram
	globalZero  uint64
	globalUnit  uint64

	branchSites map[uint32]*branchSite
	branchTaken uint64

	srcOps  uint64
	dstOps  uint64
	regSeen [256]bool

	coverage float64
}

type branchSite struct {
	taken, total uint64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{
		ilp:         newILPTracker(),
		dataReuse:   newReuseTracker(0xda7a),
		instReuse:   newMTFTracker(),
		pages:       newU64Set(1 << 8),
		dataHist:    stats.NewHistogram(reuseBuckets),
		readHist:    stats.NewHistogram(reuseBuckets),
		writeHist:   stats.NewHistogram(reuseBuckets),
		instHist:    stats.NewHistogram(instReuseBuckets),
		localLast:   make(map[uint32]uint64),
		localHist:   stats.NewHistogram(strideBuckets),
		globalHist:  stats.NewHistogram(strideBuckets),
		branchSites: make(map[uint32]*branchSite),
		coverage:    1,
	}
}

// OnInst implements trace.Consumer.
func (p *Profiler) OnInst(i trace.Inst) {
	p.counter.OnInst(i)
	p.ilp.OnInst(i)

	// Instruction reuse distance over static instruction ids.
	if d := p.instReuse.Access(uint64(i.PC)); d == coldDistance {
		p.coldInst++
	} else {
		p.instHist.Add(d)
	}

	// Register traffic.
	if i.Src1 >= 0 {
		p.srcOps++
		p.regSeen[i.Src1] = true
	}
	if i.Src2 >= 0 {
		p.srcOps++
		p.regSeen[i.Src2] = true
	}
	if i.Dst >= 0 {
		p.dstOps++
		p.regSeen[i.Dst] = true
	}

	switch i.Op {
	case trace.OpLoad, trace.OpStore:
		p.onMem(i)
	case trace.OpBranch:
		s := p.branchSites[i.PC]
		if s == nil {
			s = &branchSite{}
			p.branchSites[i.PC] = s
		}
		s.total++
		if i.Taken {
			s.taken++
			p.branchTaken++
		}
	}
}

func (p *Profiler) onMem(i trace.Inst) {
	write := i.Op == trace.OpStore
	line := i.Addr / LineGranularity
	if d := p.dataReuse.Access(line); d == coldDistance {
		p.coldData++
	} else {
		p.dataHist.Add(d)
		if write {
			p.writeHist.Add(d)
		} else {
			p.readHist.Add(d)
		}
	}
	p.pages.add(i.Addr / PageGranularity)
	if write {
		p.bytesWrite += uint64(i.Size)
	} else {
		p.bytesRead += uint64(i.Size)
	}

	// Per-site (local) stride.
	if last, ok := p.localLast[i.PC]; ok {
		p.addStride(p.localHist, &p.localZero, &p.localUnit, last, i.Addr, i.Size)
	}
	p.localLast[i.PC] = i.Addr
	// Global stride.
	if p.globalValid {
		p.addStride(p.globalHist, &p.globalZero, &p.globalUnit, p.globalLast, i.Addr, i.Size)
	}
	p.globalLast = i.Addr
	p.globalValid = true
}

func (p *Profiler) addStride(h *stats.Histogram, zero, unit *uint64, last, cur uint64, size uint8) {
	var delta uint64
	if cur >= last {
		delta = cur - last
	} else {
		delta = last - cur
	}
	switch delta {
	case 0:
		*zero++
	case uint64(size):
		*unit++
	}
	h.Add(delta)
}

// SetCoverage records the traced fraction used to extrapolate totals.
func (p *Profiler) SetCoverage(c float64) {
	if c > 0 && c <= 1 {
		p.coverage = c
	}
}

// Profile freezes the accumulated statistics into an application
// profile. The profiler must not receive further instructions afterward.
func (p *Profiler) Profile() *Profile {
	return &Profile{pr: p}
}

// Finish records the traced fraction and freezes the profile in one
// step — the natural endpoint when the profiler rode a shared trace run
// (e.g. a trace.Fanout sink) whose coverage is known only afterward.
func (p *Profiler) Finish(coverage float64) *Profile {
	p.SetCoverage(coverage)
	return p.Profile()
}

// Profile is the finished application profile p(k, d). Vector yields the
// 395 hardware-independent features NAPEL trains on (see features.go).
type Profile struct {
	pr *Profiler
}

// TotalInstrs returns the instruction count extrapolated to the full
// execution via the recorded coverage.
func (p *Profile) TotalInstrs() float64 {
	return float64(p.pr.counter.Total) / p.pr.coverage
}

// SimInstrs returns the number of instructions actually profiled.
func (p *Profile) SimInstrs() uint64 { return p.pr.counter.Total }

// Coverage returns the traced fraction of the execution.
func (p *Profile) Coverage() float64 { return p.pr.coverage }

// FootprintBytes returns the memory footprint at line granularity.
func (p *Profile) FootprintBytes() float64 {
	return float64(p.pr.dataReuse.Distinct()) * LineGranularity / p.pr.coverage
}

// MemFraction returns the fraction of instructions accessing memory.
func (p *Profile) MemFraction() float64 {
	if p.pr.counter.Total == 0 {
		return 0
	}
	return float64(p.pr.counter.Mem()) / float64(p.pr.counter.Total)
}

// EstHitFraction estimates, from the architecture-independent reuse
// distance CDF, the hit ratio of a fully-associative LRU cache holding
// the given number of 64-byte-granularity lines. This is how NAPEL's
// "cache access fraction" architectural feature (Table 1) is derived
// without running a simulation.
func (p *Profile) EstHitFraction(lines int) float64 {
	total := p.pr.dataHist.Total + p.pr.coldData
	if total == 0 {
		return 0
	}
	// Accesses with stack distance < lines hit; cold misses never do.
	// Bucket i of the histogram covers distances [2^i, 2^(i+1)), so the
	// largest bucket guaranteed to lie fully below `lines` is
	// Log2Bucket(lines)-1 (a slightly conservative floor for non-power
	// capacities).
	bucket := stats.Log2Bucket(uint64(lines)) - 1
	if bucket < 0 {
		return 0
	}
	if bucket >= reuseBuckets {
		bucket = reuseBuckets - 1
	}
	cdf := p.pr.dataHist.CDF()
	hitFrac := cdf[bucket] * float64(p.pr.dataHist.Total) / float64(total)
	return clamp01(hitFrac)
}

// HitFractionCurve tabulates EstHitFraction at power-of-two line counts:
// entry i is the estimated hit fraction of a cache holding 1<<i lines,
// for i in [0, reuseBuckets]. Because EstHitFraction only depends on the
// log2 bucket of the line count (and saturates above 2^reuseBuckets),
// the curve fully determines the hit estimate for *any* capacity —
// index it with stats.Log2Bucket(lines), clamped to the last entry.
// This is the hardware-independent form shipped to remote consumers
// (napel-serve) that hold a profile's feature vector but not the
// profile itself.
func (p *Profile) HitFractionCurve() []float64 {
	curve := make([]float64, reuseBuckets+1)
	for i := range curve {
		curve[i] = p.EstHitFraction(1 << i)
	}
	return curve
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// log2p1 is a monotone, finite transform for count-valued features.
func log2p1(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Log2(1 + x)
}
