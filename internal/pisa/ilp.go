package pisa

import "napel/internal/trace"

// ilpWindows are the instruction-window sizes for which dataflow ILP is
// evaluated, mirroring PISA's ILP-vs-window characterization. 0 means an
// unbounded window (pure dataflow limit).
var ilpWindows = [...]int{4, 8, 16, 32, 64, 128, 256, 0}

// numWindows is len(ilpWindows).
const numWindows = 8

// ilpTracker schedules the instruction stream on an ideal machine
// (unlimited functional units, unit latency) under each window size: an
// instruction may issue one cycle after all of its producers — register
// RAW dependencies and store→load forwarding through memory — and, for a
// finite window W, no earlier than instruction i−W issued (a W-entry
// scheduling window).
type ilpTracker struct {
	count    uint64
	maxCyc   [numWindows]uint64
	regReady [numWindows][256]uint64
	rings    [numWindows][]uint64 // issue cycles of the last W instructions
	ringMask [numWindows]uint64   // len(rings[w])-1; window sizes are powers of two
	memDep   map[uint64]*[numWindows]uint64
}

func newILPTracker() *ilpTracker {
	t := &ilpTracker{memDep: make(map[uint64]*[numWindows]uint64)}
	for w, size := range ilpWindows {
		if size > 0 {
			if size&(size-1) != 0 {
				panic("pisa: ILP window sizes must be powers of two")
			}
			t.rings[w] = make([]uint64, size)
			t.ringMask[w] = uint64(size - 1)
		}
	}
	return t
}

// lineShift aligns memory dependencies to 8-byte words.
const memDepShift = 3

// OnInst schedules one instruction under every window.
func (t *ilpTracker) OnInst(i trace.Inst) {
	var memCell uint64
	var memDeps *[numWindows]uint64
	isLoad := i.Op == trace.OpLoad
	isStore := i.Op == trace.OpStore
	if isLoad || isStore {
		memCell = i.Addr >> memDepShift
		memDeps = t.memDep[memCell]
	}
	var storeCycles [numWindows]uint64
	for w := range ilpWindows {
		dep := uint64(0)
		if i.Src1 >= 0 && t.regReady[w][i.Src1] > dep {
			dep = t.regReady[w][i.Src1]
		}
		if i.Src2 >= 0 && t.regReady[w][i.Src2] > dep {
			dep = t.regReady[w][i.Src2]
		}
		if isLoad && memDeps != nil && memDeps[w] > dep {
			dep = memDeps[w]
		}
		cyc := dep + 1
		if ring := t.rings[w]; ring != nil {
			slot := t.count & t.ringMask[w]
			// Instruction i may issue only after instruction i-W has
			// completed (unit latency: its issue cycle + 1), freeing a
			// window slot.
			if t.count >= uint64(len(ring)) && ring[slot]+1 > cyc {
				cyc = ring[slot] + 1
			}
			ring[slot] = cyc
		}
		if i.Dst >= 0 {
			t.regReady[w][i.Dst] = cyc
		}
		if isStore {
			storeCycles[w] = cyc
		}
		if cyc > t.maxCyc[w] {
			t.maxCyc[w] = cyc
		}
	}
	if isStore {
		if memDeps != nil {
			*memDeps = storeCycles
		} else {
			cp := storeCycles
			t.memDep[memCell] = &cp
		}
	}
	t.count++
}

// ILP returns instructions/critical-path-cycles for window index w.
func (t *ilpTracker) ILP(w int) float64 {
	if t.maxCyc[w] == 0 {
		return 0
	}
	return float64(t.count) / float64(t.maxCyc[w])
}
