package pisa

import "napel/internal/xrand"

// reuseTracker computes exact LRU stack distances (Mattson et al.) in
// O(log F) per access, where F is the footprint in distinct keys. It is
// the workhorse behind the data/instruction reuse-distance features of
// Table 1.
//
// Implementation: every key's most recent access is a node in an
// order-statistic treap ordered by access sequence number. On a reaccess
// the stack distance equals the number of nodes with a larger sequence
// number (distinct keys touched since), after which the key's node moves
// to the top of the recency order. Nodes live in a flat slice and are
// addressed by index, which keeps the structure compact and
// garbage-free; deleted nodes go on a free list and are recycled.
type reuseTracker struct {
	nodes []rnode
	free  []int32
	root  int32
	last  *u64map // key -> treap node index (the node stores the sequence)
	seq   uint64
	rng   *xrand.Rand
}

type rnode struct {
	left, right int32
	size        uint32
	prio        uint32
	key         uint64 // access sequence number
}

const nilNode = int32(-1)

// newReuseTracker returns an empty tracker with a deterministic priority
// stream.
func newReuseTracker(seed uint64) *reuseTracker {
	return &reuseTracker{
		root: nilNode,
		last: newU64Map(1 << 12),
		rng:  xrand.New(seed),
	}
}

// Distinct returns the number of distinct keys seen (the footprint).
func (t *reuseTracker) Distinct() int { return t.last.len() }

// coldDistance marks a first-touch access.
const coldDistance = ^uint64(0)

// Access records an access to key and returns its LRU stack distance:
// 0 for an immediate reuse, coldDistance for a first touch.
func (t *reuseTracker) Access(key uint64) uint64 {
	t.seq++
	dist := coldDistance
	if oldIdx, ok := t.last.get(key); ok {
		dist = t.removeCounting(t.nodes[oldIdx].key)
		t.free = append(t.free, oldIdx)
	}
	idx := t.newNode(t.seq)
	t.root = t.insertMax(t.root, idx)
	t.last.put(key, idx)
	return dist
}

func (t *reuseTracker) newNode(key uint64) int32 {
	var idx int32
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.nodes = append(t.nodes, rnode{})
		idx = int32(len(t.nodes) - 1)
	}
	t.nodes[idx] = rnode{left: nilNode, right: nilNode, size: 1, prio: uint32(t.rng.Uint64()), key: key}
	return idx
}

func (t *reuseTracker) size(n int32) uint32 {
	if n == nilNode {
		return 0
	}
	return t.nodes[n].size
}

func (t *reuseTracker) update(n int32) {
	nd := &t.nodes[n]
	nd.size = 1 + t.size(nd.left) + t.size(nd.right)
}

// removeCounting deletes the node with sequence number key — which must
// be present — and returns the number of nodes with a larger sequence.
// The countGreater and remove walks of the textbook formulation are
// fused into a single iterative descent: every ancestor of the removed
// node loses exactly one descendant, so sizes are adjusted on the way
// down instead of recomputed bottom-up.
func (t *reuseTracker) removeCounting(key uint64) uint64 {
	var cnt uint64
	parent := nilNode
	fromLeft := false
	n := t.root
	for {
		nd := &t.nodes[n]
		if key == nd.key {
			cnt += uint64(t.size(nd.right))
			sub := t.merge(nd.left, nd.right)
			switch {
			case parent == nilNode:
				t.root = sub
			case fromLeft:
				t.nodes[parent].left = sub
			default:
				t.nodes[parent].right = sub
			}
			return cnt
		}
		nd.size--
		parent = n
		if key < nd.key {
			cnt += uint64(t.size(nd.right)) + 1
			n = nd.left
			fromLeft = true
		} else {
			n = nd.right
			fromLeft = false
		}
	}
}

// insertMax inserts node idx, whose key is larger than every key in the
// tree (sequence numbers are monotonic), and returns the new root. Every
// right-spine node that stays above idx gains exactly one descendant, so
// sizes are bumped during the descent — no second fix-up pass.
func (t *reuseTracker) insertMax(root, idx int32) int32 {
	if root == nilNode {
		return idx
	}
	if t.nodes[idx].prio > t.nodes[root].prio {
		// idx becomes the root; the whole old tree is its left subtree.
		t.nodes[idx].left = root
		t.update(idx)
		return idx
	}
	// Descend the right spine until the priority order admits idx.
	n := root
	for {
		nd := &t.nodes[n]
		nd.size++
		r := nd.right
		if r == nilNode {
			nd.right = idx
			return root
		}
		if t.nodes[idx].prio > t.nodes[r].prio {
			t.nodes[idx].left = r
			t.update(idx)
			nd.right = idx
			return root
		}
		n = r
	}
}

// merge joins trees a (all keys smaller) and b (all keys larger).
func (t *reuseTracker) merge(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if t.nodes[a].prio > t.nodes[b].prio {
		t.nodes[a].right = t.merge(t.nodes[a].right, b)
		t.update(a)
		return a
	}
	t.nodes[b].left = t.merge(a, t.nodes[b].left)
	t.update(b)
	return b
}

// mtfTracker computes exact LRU stack distances with a simple
// move-to-front list — O(distinct keys) per access, which beats the
// treap handily for the tiny key sets it is used on (static instruction
// ids: a few dozen per kernel).
type mtfTracker struct {
	order []uint64
}

func newMTFTracker() *mtfTracker { return &mtfTracker{} }

// Distinct returns the number of distinct keys seen.
func (t *mtfTracker) Distinct() int { return len(t.order) }

// Access records an access to key and returns its stack distance
// (coldDistance on first touch).
func (t *mtfTracker) Access(key uint64) uint64 {
	for i, k := range t.order {
		if k == key {
			copy(t.order[1:i+1], t.order[:i])
			t.order[0] = key
			return uint64(i)
		}
	}
	t.order = append(t.order, 0)
	copy(t.order[1:], t.order)
	t.order[0] = key
	return coldDistance
}
