package pisa

// u64map is a linear-probing open-addressing hash map from uint64 keys
// to int32 values, specialized for the profiler's hottest state: the
// line → treap-node index of the reuse tracker and the page set. It is
// 2-4x faster than the built-in map for this access pattern (single
// lookup-or-insert per trace instruction, no deletion) and allocation
// free after growth.
//
// Key 0 is reserved as the empty marker; callers offset their keys by 1
// (addresses and line numbers never overflow by this).
type u64map struct {
	keys []uint64
	vals []int32
	n    int
	mask uint64
}

// newU64Map returns a map pre-sized for about capHint entries.
func newU64Map(capHint int) *u64map {
	size := 16
	for size < capHint*2 {
		size <<= 1
	}
	return &u64map{
		keys: make([]uint64, size),
		vals: make([]int32, size),
		mask: uint64(size - 1),
	}
}

// len returns the number of stored entries.
func (m *u64map) len() int { return m.n }

// hash scrambles the key (fibonacci hashing).
func u64hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// get returns the value for key and whether it was present.
func (m *u64map) get(key uint64) (int32, bool) {
	key++
	i := u64hash(key) & m.mask
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & m.mask
	}
}

// put inserts or updates key.
func (m *u64map) put(key uint64, val int32) {
	if m.n*4 >= len(m.keys)*3 {
		m.grow()
	}
	key++
	i := u64hash(key) & m.mask
	for {
		k := m.keys[i]
		if k == key {
			m.vals[i] = val
			return
		}
		if k == 0 {
			m.keys[i] = key
			m.vals[i] = val
			m.n++
			return
		}
		i = (i + 1) & m.mask
	}
}

// grow doubles the table.
func (m *u64map) grow() {
	oldKeys, oldVals := m.keys, m.vals
	size := len(oldKeys) * 2
	m.keys = make([]uint64, size)
	m.vals = make([]int32, size)
	m.mask = uint64(size - 1)
	m.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			// Reinsert with the stored (already offset) key.
			j := u64hash(k) & m.mask
			for m.keys[j] != 0 {
				j = (j + 1) & m.mask
			}
			m.keys[j] = k
			m.vals[j] = oldVals[i]
			m.n++
		}
	}
}

// u64set is a presence-only variant used for the page footprint.
type u64set struct {
	keys []uint64
	n    int
	mask uint64
}

func newU64Set(capHint int) *u64set {
	size := 16
	for size < capHint*2 {
		size <<= 1
	}
	return &u64set{keys: make([]uint64, size), mask: uint64(size - 1)}
}

func (s *u64set) len() int { return s.n }

// add inserts key, reporting whether it was new.
func (s *u64set) add(key uint64) bool {
	if s.n*4 >= len(s.keys)*3 {
		s.grow()
	}
	key++
	i := u64hash(key) & s.mask
	for {
		k := s.keys[i]
		if k == key {
			return false
		}
		if k == 0 {
			s.keys[i] = key
			s.n++
			return true
		}
		i = (i + 1) & s.mask
	}
}

func (s *u64set) grow() {
	old := s.keys
	size := len(old) * 2
	s.keys = make([]uint64, size)
	s.mask = uint64(size - 1)
	s.n = 0
	for _, k := range old {
		if k != 0 {
			j := u64hash(k) & s.mask
			for s.keys[j] != 0 {
				j = (j + 1) & s.mask
			}
			s.keys[j] = k
			s.n++
		}
	}
}
