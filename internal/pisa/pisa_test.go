package pisa

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"napel/internal/stats"
	"napel/internal/trace"
	"napel/internal/xrand"
)

// naiveStackDistance is the textbook O(n·F) reference: an explicit LRU
// stack of keys.
type naiveStackDistance struct {
	stack []uint64
}

func (n *naiveStackDistance) access(key uint64) uint64 {
	for i, k := range n.stack {
		if k == key {
			n.stack = append(n.stack[:i], n.stack[i+1:]...)
			n.stack = append([]uint64{key}, n.stack...)
			return uint64(i)
		}
	}
	n.stack = append([]uint64{key}, n.stack...)
	return coldDistance
}

func TestReuseTrackerAgainstNaive(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 20; trial++ {
		tr := newReuseTracker(uint64(trial))
		ref := &naiveStackDistance{}
		keyspace := 1 + rng.Intn(200)
		for i := 0; i < 3000; i++ {
			key := uint64(rng.Intn(keyspace))
			got := tr.Access(key)
			want := ref.access(key)
			if got != want {
				t.Fatalf("trial %d access %d key %d: distance %d, want %d", trial, i, key, got, want)
			}
		}
		if tr.Distinct() != len(ref.stack) {
			t.Fatalf("distinct %d, want %d", tr.Distinct(), len(ref.stack))
		}
	}
}

func TestReuseTrackerSequentialPattern(t *testing.T) {
	tr := newReuseTracker(1)
	// First touch of each key is cold.
	for k := uint64(0); k < 100; k++ {
		if d := tr.Access(k); d != coldDistance {
			t.Fatalf("first touch of %d had distance %d", k, d)
		}
	}
	// Re-walking them in the same order gives distance 99 every time.
	for k := uint64(0); k < 100; k++ {
		if d := tr.Access(k); d != 99 {
			t.Fatalf("cyclic reuse of %d gave %d, want 99", k, d)
		}
	}
	// Immediate reuse has distance 0.
	if d := tr.Access(99); d != 0 {
		t.Fatalf("immediate reuse distance %d", d)
	}
}

func TestReuseTrackerProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, span uint8) bool {
		rng := xrand.New(seed)
		tr := newReuseTracker(seed)
		ref := &naiveStackDistance{}
		ks := int(span%50) + 1
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(ks))
			if tr.Access(key) != ref.access(key) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestILPDependentChain(t *testing.T) {
	ilp := newILPTracker()
	// A fully serial chain: every op reads the previous op's output.
	for i := 0; i < 1000; i++ {
		ilp.OnInst(trace.Inst{Op: trace.OpIntALU, Dst: 1, Src1: 1, Src2: trace.NoReg})
	}
	for w := range ilpWindows {
		if got := ilp.ILP(w); math.Abs(got-1) > 0.01 {
			t.Errorf("window %d: serial chain ILP = %v, want 1", ilpWindows[w], got)
		}
	}
}

func TestILPIndependentOps(t *testing.T) {
	ilp := newILPTracker()
	// Fully independent ops round-robin over many registers.
	for i := 0; i < 10000; i++ {
		r := int16(i % 200)
		ilp.OnInst(trace.Inst{Op: trace.OpIntALU, Dst: r, Src1: trace.NoReg, Src2: trace.NoReg})
	}
	// Bounded windows limit ILP to roughly the window size.
	for w, size := range ilpWindows {
		got := ilp.ILP(w)
		if size == 0 {
			if got < 1000 {
				t.Errorf("unbounded ILP = %v, want very large", got)
			}
			continue
		}
		if got > float64(size)+1 {
			t.Errorf("window %d: ILP %v exceeds window", size, got)
		}
		if got < float64(size)/2 {
			t.Errorf("window %d: ILP %v far below window", size, got)
		}
	}
}

func TestILPWindowMonotone(t *testing.T) {
	rng := xrand.New(9)
	ilp := newILPTracker()
	for i := 0; i < 5000; i++ {
		ilp.OnInst(trace.Inst{
			Op:   trace.OpFPALU,
			Dst:  int16(rng.Intn(32)),
			Src1: int16(rng.Intn(32)),
			Src2: int16(rng.Intn(32)),
		})
	}
	for w := 1; w < numWindows; w++ {
		if ilp.ILP(w)+1e-9 < ilp.ILP(w-1) {
			t.Fatalf("ILP decreased with window growth: w%d=%v > w%d=%v",
				ilpWindows[w-1], ilp.ILP(w-1), ilpWindows[w], ilp.ILP(w))
		}
	}
}

func TestILPStoreLoadForwarding(t *testing.T) {
	ilp := newILPTracker()
	// store to X (from a long dependency chain), then a load of X: the
	// load must inherit the chain depth.
	for i := 0; i < 100; i++ {
		ilp.OnInst(trace.Inst{Op: trace.OpIntALU, Dst: 1, Src1: 1, Src2: trace.NoReg})
	}
	ilp.OnInst(trace.Inst{Op: trace.OpStore, Addr: 0x1000, Src1: 1, Dst: trace.NoReg, Src2: trace.NoReg})
	ilp.OnInst(trace.Inst{Op: trace.OpLoad, Addr: 0x1000, Dst: 2, Src1: trace.NoReg, Src2: trace.NoReg})
	w := numWindows - 1 // unbounded
	if got := ilp.ILP(w); got > 1.1 {
		t.Errorf("memory dependence ignored: ILP = %v", got)
	}
}

func TestFeatureVectorSize(t *testing.T) {
	p := NewProfiler()
	// Even an empty profile must produce the full, finite vector.
	vec := p.Profile().Vector()
	if len(vec) != NumFeatures {
		t.Fatalf("empty profile vector has %d entries, want %d", len(vec), NumFeatures)
	}
	names := FeatureNames()
	if len(names) != NumFeatures {
		t.Fatalf("%d feature names, want %d", len(names), NumFeatures)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestFeaturesFinite(t *testing.T) {
	rng := xrand.New(17)
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	for i := 0; i < 20000; i++ {
		switch rng.Intn(5) {
		case 0:
			tr.Load(rng.Intn(30), uint64(rng.Intn(1<<20)), 8, int16(rng.Intn(16)), int16(rng.Intn(16)))
		case 1:
			tr.Store(rng.Intn(30), uint64(rng.Intn(1<<20)), 8, int16(rng.Intn(16)))
		case 2:
			tr.FP(rng.Intn(30), int16(rng.Intn(16)), int16(rng.Intn(16)), int16(rng.Intn(16)))
		case 3:
			tr.Branch(rng.Intn(30), rng.Intn(2) == 0, int16(rng.Intn(16)))
		default:
			tr.Int(rng.Intn(30), int16(rng.Intn(16)), int16(rng.Intn(16)), int16(rng.Intn(16)))
		}
	}
	for i, v := range p.Profile().Vector() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d (%s) is not finite: %v", i, FeatureNames()[i], v)
		}
	}
}

func TestMixFractionsSumToOne(t *testing.T) {
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	tr.Load(0, 0, 8, 1, 2)
	tr.Store(1, 64, 8, 1)
	tr.Int(2, 1, 2, 3)
	tr.FPMul(3, 4, 5, 6)
	prof := p.Profile()
	names := FeatureNames()
	vec := prof.Vector()
	sum := 0.0
	for i, n := range names {
		if len(n) > 4 && n[:4] == "mix_" && n != "mix_mem" && n != "mix_fp" && n != "mix_int" && n != "mix_ctrl" && n != "mix_store_per_mem" {
			sum += vec[i]
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("op-class mix sums to %v", sum)
	}
}

func TestFootprintCounting(t *testing.T) {
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	// 10 distinct lines, each touched twice.
	for rep := 0; rep < 2; rep++ {
		for l := 0; l < 10; l++ {
			tr.Load(0, uint64(l*LineGranularity), 8, 1, 2)
		}
	}
	prof := p.Profile()
	if got := prof.FootprintBytes(); got != 10*LineGranularity {
		t.Fatalf("footprint %v, want %d", got, 10*LineGranularity)
	}
	if got := prof.MemFraction(); got != 1 {
		t.Fatalf("mem fraction %v, want 1", got)
	}
}

func TestEstHitFraction(t *testing.T) {
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	// Cyclic walk over 4 lines: distance 3 for every warm access.
	for i := 0; i < 400; i++ {
		tr.Load(0, uint64((i%4)*LineGranularity), 8, 1, 2)
	}
	prof := p.Profile()
	// A cache holding >= 4 lines captures everything but cold misses.
	if hit := prof.EstHitFraction(8); hit < 0.95 {
		t.Errorf("hit fraction at 8 lines = %v, want ~0.99", hit)
	}
	// A cache holding 2 lines captures nothing (distance 3 >= 2).
	if hit := prof.EstHitFraction(2); hit > 0.05 {
		t.Errorf("hit fraction at 2 lines = %v, want ~0", hit)
	}
	if h := prof.EstHitFraction(1); h < 0 || h > 1 {
		t.Errorf("hit fraction out of range: %v", h)
	}
}

func TestHitFractionCurve(t *testing.T) {
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	rng := xrand.New(9)
	// A mixed pattern: a hot cyclic set plus a cold random tail, so the
	// curve has structure at several capacities.
	for i := 0; i < 5000; i++ {
		line := uint64(i % 7)
		if i%5 == 0 {
			line = 16 + uint64(rng.Intn(4000))
		}
		tr.Load(0, line*LineGranularity, 8, 1, 2)
	}
	prof := p.Profile()
	curve := prof.HitFractionCurve()
	if len(curve) != reuseBuckets+1 {
		t.Fatalf("curve length %d, want %d", len(curve), reuseBuckets+1)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("curve not monotone at %d: %v < %v", i, curve[i], curve[i-1])
		}
	}
	// The curve must reproduce EstHitFraction at arbitrary (also
	// non-power-of-two and out-of-range) line counts via log2 indexing.
	for _, lines := range []int{1, 2, 3, 4, 7, 8, 100, 1 << 12, 1 << 30, 1 << 40} {
		idx := stats.Log2Bucket(uint64(lines))
		if idx >= len(curve) {
			idx = len(curve) - 1
		}
		if got, want := curve[idx], prof.EstHitFraction(lines); got != want {
			t.Fatalf("curve at %d lines = %v, want EstHitFraction = %v", lines, got, want)
		}
	}
}

func TestCoverageExtrapolation(t *testing.T) {
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	for i := 0; i < 1000; i++ {
		tr.Int(0, 1, 2, 3)
	}
	p.SetCoverage(0.25)
	prof := p.Profile()
	if got := prof.TotalInstrs(); got != 4000 {
		t.Fatalf("TotalInstrs = %v, want 4000", got)
	}
	if prof.SimInstrs() != 1000 {
		t.Fatalf("SimInstrs = %d", prof.SimInstrs())
	}
}

func TestBranchFeatures(t *testing.T) {
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	// Site 0: always taken. Site 1: 50/50.
	for i := 0; i < 100; i++ {
		tr.Branch(0, true, 1)
		tr.Branch(1, i%2 == 0, 1)
	}
	names := FeatureNames()
	vec := p.Profile().Vector()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	if got := vec[idx["branch_taken_frac"]]; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("taken fraction %v, want 0.75", got)
	}
	// Average entropy: site0 contributes 0, site1 contributes 1 bit.
	if got := vec[idx["branch_entropy"]]; math.Abs(got-0.5) > 0.01 {
		t.Errorf("entropy %v, want ~0.5", got)
	}
	if got := vec[idx["branch_biased_frac"]]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("biased fraction %v, want 0.5", got)
	}
}

func TestStrideClassification(t *testing.T) {
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	// Site 0: perfect unit stride (8-byte elements).
	for i := 0; i < 100; i++ {
		tr.Load(0, uint64(i*8), 8, 1, 2)
	}
	names := FeatureNames()
	vec := p.Profile().Vector()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	if got := vec[idx["stride_local_unit"]]; got < 0.98 {
		t.Errorf("unit stride fraction %v, want ~1", got)
	}
	if got := vec[idx["stride_sites_log2"]]; got != 1 {
		t.Errorf("site count log2(1+1) = %v, want 1", got)
	}
}

func TestTrafficCurveMonotone(t *testing.T) {
	rng := xrand.New(5)
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	for i := 0; i < 50000; i++ {
		tr.Load(rng.Intn(20), uint64(rng.Intn(1<<22)), 8, 1, 2)
	}
	names := FeatureNames()
	vec := p.Profile().Vector()
	prev := math.Inf(1)
	for i, n := range names {
		if len(n) >= 13 && n[:13] == "traffic_read_" && n[13] >= '0' && n[13] <= '9' {
			if vec[i] > prev+1e-9 {
				t.Fatalf("traffic curve not non-increasing at %s", n)
			}
			prev = vec[i]
		}
	}
}

func TestMTFTrackerAgainstNaive(t *testing.T) {
	rng := xrand.New(31)
	mtf := newMTFTracker()
	ref := &naiveStackDistance{}
	for i := 0; i < 5000; i++ {
		key := uint64(rng.Intn(40))
		if got, want := mtf.Access(key), ref.access(key); got != want {
			t.Fatalf("access %d key %d: %d want %d", i, key, got, want)
		}
	}
	if mtf.Distinct() != len(ref.stack) {
		t.Fatalf("distinct %d want %d", mtf.Distinct(), len(ref.stack))
	}
}

func TestProfileWriteJSON(t *testing.T) {
	p := NewProfiler()
	tr := trace.NewTracer(0, p)
	for i := 0; i < 1000; i++ {
		tr.Load(0, uint64(i)*64, 8, 1, 2)
		tr.FP(1, 3, 1, 2)
	}
	p.SetCoverage(0.5)
	var buf bytes.Buffer
	if err := p.Profile().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back struct {
		SimInstrs   uint64             `json:"sim_instrs"`
		Coverage    float64            `json:"coverage"`
		TotalInstrs float64            `json:"total_instrs"`
		Features    map[string]float64 `json:"features"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.SimInstrs != 2000 || back.Coverage != 0.5 || back.TotalInstrs != 4000 {
		t.Fatalf("summary wrong: %+v", back)
	}
	if len(back.Features) != NumFeatures {
		t.Fatalf("%d features in JSON, want %d", len(back.Features), NumFeatures)
	}
	if back.Features["mix_load"] != 0.5 {
		t.Fatalf("mix_load = %v, want 0.5", back.Features["mix_load"])
	}
}
