package pisa

import (
	"testing"
	"testing/quick"

	"napel/internal/xrand"
)

func TestU64MapAgainstBuiltin(t *testing.T) {
	rng := xrand.New(51)
	m := newU64Map(4)
	ref := map[uint64]int32{}
	for i := 0; i < 50000; i++ {
		key := rng.Uint64() % 5000
		switch rng.Intn(3) {
		case 0, 1:
			val := int32(rng.Intn(1 << 30))
			m.put(key, val)
			ref[key] = val
		default:
			got, ok := m.get(key)
			want, wok := ref[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("get(%d) = %d,%v want %d,%v", key, got, ok, want, wok)
			}
		}
	}
	if m.len() != len(ref) {
		t.Fatalf("len %d want %d", m.len(), len(ref))
	}
}

func TestU64MapZeroAndHugeKeys(t *testing.T) {
	m := newU64Map(2)
	m.put(0, 7)
	if v, ok := m.get(0); !ok || v != 7 {
		t.Fatal("key 0 broken")
	}
	huge := ^uint64(0) - 1
	m.put(huge, 9)
	if v, ok := m.get(huge); !ok || v != 9 {
		t.Fatal("huge key broken")
	}
	if _, ok := m.get(12345); ok {
		t.Fatal("phantom key")
	}
}

func TestU64SetProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		s := newU64Set(2)
		ref := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(200))
			fresh := s.add(key)
			if fresh == ref[key] { // fresh must equal !present
				return false
			}
			ref[key] = true
		}
		return s.len() == len(ref)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
