package pisa

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"napel/internal/stats"
	"napel/internal/trace"
)

// NumFeatures is the size of the application-profile feature vector. The
// paper's profile has 395 features ("Ultimately, the application profile
// p has 395 features"); the blocks below reproduce the same families
// (Table 1) and are counted to match exactly.
const NumFeatures = 395

// trafficCapacities are cache capacities (bytes) at which read/write
// memory traffic is reported as an explicit feature, complementing the
// full per-bucket traffic curves.
var trafficCapacities = [...]int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20}

// featureBuilder accumulates (name, value) pairs.
type featureBuilder struct {
	names  []string
	values []float64
}

func (b *featureBuilder) add(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	b.names = append(b.names, name)
	b.values = append(b.values, v)
}

func (b *featureBuilder) addSeries(prefix string, vs []float64) {
	for i, v := range vs {
		b.add(fmt.Sprintf("%s_%d", prefix, i), v)
	}
}

// Vector returns the 395-entry feature vector.
func (p *Profile) Vector() []float64 {
	_, v := p.build()
	return v
}

// FeatureNames returns the names of the 395 features, index-aligned with
// Vector.
func FeatureNames() []string {
	n, _ := NewProfiler().Profile().build()
	return n
}

// build assembles names and values together so they can never drift.
func (p *Profile) build() ([]string, []float64) {
	pr := p.pr
	b := &featureBuilder{
		names:  make([]string, 0, NumFeatures),
		values: make([]float64, 0, NumFeatures),
	}
	total := float64(pr.counter.Total)
	inv := 0.0
	if total > 0 {
		inv = 1 / total
	}

	// Block 1: instruction mix — 16 features.
	for op := trace.Op(0); op < trace.NumOps; op++ {
		b.add("mix_"+op.String(), float64(pr.counter.ByOp[op])*inv)
	}
	mem := float64(pr.counter.Mem())
	fp := float64(pr.counter.ByOp[trace.OpFPALU] + pr.counter.ByOp[trace.OpFPMul] + pr.counter.ByOp[trace.OpFPDiv])
	intc := float64(pr.counter.ByOp[trace.OpIntALU] + pr.counter.ByOp[trace.OpIntMul] + pr.counter.ByOp[trace.OpIntDiv])
	ctrl := float64(pr.counter.ByOp[trace.OpBranch] + pr.counter.ByOp[trace.OpCall])
	b.add("mix_mem", mem*inv)
	b.add("mix_fp", fp*inv)
	b.add("mix_int", intc*inv)
	b.add("mix_ctrl", ctrl*inv)
	b.add("mix_store_per_mem", ratio(float64(pr.counter.ByOp[trace.OpStore]), mem))

	// Block 2: dataflow ILP at 8 window sizes — 8 features.
	for w, size := range ilpWindows {
		name := fmt.Sprintf("ilp_w%d", size)
		if size == 0 {
			name = "ilp_inf"
		}
		b.add(name, pr.ilp.ILP(w))
	}
	// Block 3: marginal ILP gains between consecutive windows — 7.
	for w := 1; w < numWindows; w++ {
		b.add(fmt.Sprintf("ilp_gain_%d", w), ratio(pr.ilp.ILP(w), pr.ilp.ILP(w-1)))
	}

	// Blocks 4-7: data reuse-distance distributions — 4 × 32 = 128.
	b.addSeries("reuse_data_pdf", pr.dataHist.Fractions())
	b.addSeries("reuse_data_cdf", pr.dataHist.CDF())
	b.addSeries("reuse_read_pdf", pr.readHist.Fractions())
	b.addSeries("reuse_write_pdf", pr.writeHist.Fractions())

	// Blocks 8-9: instruction reuse distributions — 2 × 24 = 48.
	b.addSeries("reuse_inst_pdf", pr.instHist.Fractions())
	b.addSeries("reuse_inst_cdf", pr.instHist.CDF())

	// Blocks 10-11: memory traffic beyond each reuse threshold — the
	// fraction of reads/writes that must reach memory when a cache holds
	// 2^i lines (Table 1 "memory traffic") — 2 × 32 = 64.
	readTraffic := trafficCurve(pr.readHist, pr.coldReads())
	writeTraffic := trafficCurve(pr.writeHist, pr.coldWrites())
	b.addSeries("traffic_read", readTraffic)
	b.addSeries("traffic_write", writeTraffic)

	// Block 12: traffic at named cache capacities — 2 × 8 = 16.
	for _, capBytes := range trafficCapacities {
		bucket := stats.Log2Bucket(uint64(capBytes / LineGranularity))
		if bucket >= reuseBuckets {
			bucket = reuseBuckets - 1
		}
		b.add(fmt.Sprintf("traffic_read_at_%dB", capBytes), readTraffic[bucket])
	}
	for _, capBytes := range trafficCapacities {
		bucket := stats.Log2Bucket(uint64(capBytes / LineGranularity))
		if bucket >= reuseBuckets {
			bucket = reuseBuckets - 1
		}
		b.add(fmt.Sprintf("traffic_write_at_%dB", capBytes), writeTraffic[bucket])
	}

	// Blocks 13-14: stride distributions — 2 × 32 = 64.
	b.addSeries("stride_local_pdf", pr.localHist.Fractions())
	b.addSeries("stride_global_pdf", pr.globalHist.Fractions())

	// Block 15: stride summary — 8.
	b.add("stride_local_zero", ratio(float64(pr.localZero), float64(pr.localHist.Total)))
	b.add("stride_local_unit", ratio(float64(pr.localUnit), float64(pr.localHist.Total)))
	b.add("stride_global_zero", ratio(float64(pr.globalZero), float64(pr.globalHist.Total)))
	b.add("stride_global_unit", ratio(float64(pr.globalUnit), float64(pr.globalHist.Total)))
	b.add("stride_local_meanlog", histMeanBucket(pr.localHist))
	b.add("stride_global_meanlog", histMeanBucket(pr.globalHist))
	b.add("stride_sites_log2", log2p1(float64(len(pr.localLast))))
	b.add("stride_mem_per_site", ratio(mem, float64(len(pr.localLast))))

	// Block 16: register traffic — 8 (Table 1 "register traffic").
	uniqueRegs := 0
	for _, seen := range pr.regSeen {
		if seen {
			uniqueRegs++
		}
	}
	srcs := float64(pr.srcOps)
	dsts := float64(pr.dstOps)
	b.add("reg_srcs_per_inst", srcs*inv)
	b.add("reg_dsts_per_inst", dsts*inv)
	b.add("reg_ops_per_inst", (srcs+dsts)*inv)
	b.add("reg_unique", float64(uniqueRegs))
	b.add("reg_src_per_dst", ratio(srcs, dsts))
	b.add("reg_unique_frac", float64(uniqueRegs)/256)
	b.add("reg_srcs_per_mem", ratio(srcs, mem))
	b.add("reg_dsts_per_fp", ratio(dsts, fp))

	// Block 17: branch behaviour — 8.
	branches := float64(pr.counter.ByOp[trace.OpBranch])
	b.add("branch_frac", branches*inv)
	b.add("branch_taken_frac", ratio(float64(pr.branchTaken), branches))
	b.add("branch_sites_log2", log2p1(float64(len(pr.branchSites))))
	b.add("branch_per_mem", ratio(branches, mem))
	bias, entropy, biased := pr.branchSummary()
	b.add("branch_avg_bias", bias)
	b.add("branch_entropy", entropy)
	b.add("branch_biased_frac", biased)
	b.add("branch_per_site", ratio(branches, float64(len(pr.branchSites))))

	// Block 18: footprint and memory summary — 12 (Table 1 "memory
	// footprint" plus reuse summaries).
	lines := float64(pr.dataReuse.Distinct())
	b.add("footprint_lines_log2", log2p1(lines))
	b.add("footprint_pages_log2", log2p1(float64(pr.pages.len())))
	b.add("footprint_bytes_log2", log2p1(lines*LineGranularity))
	b.add("mem_bytes_per_inst", (float64(pr.bytesRead)+float64(pr.bytesWrite))*inv)
	b.add("mem_read_bytes_frac", ratio(float64(pr.bytesRead), float64(pr.bytesRead)+float64(pr.bytesWrite)))
	b.add("mem_avg_access_size", ratio(float64(pr.bytesRead)+float64(pr.bytesWrite), mem))
	b.add("mem_loads_per_store", ratio(float64(pr.counter.ByOp[trace.OpLoad]), float64(pr.counter.ByOp[trace.OpStore])))
	b.add("mem_per_alu", ratio(mem, intc+fp))
	b.add("reuse_data_cold_frac", ratio(float64(pr.coldData), mem))
	b.add("reuse_inst_cold_frac", float64(pr.coldInst)*inv)
	b.add("reuse_data_meanlog", histMeanBucket(pr.dataHist))
	b.add("reuse_inst_meanlog", histMeanBucket(pr.instHist))

	// Block 19: memory mix detail — 6.
	b.add("mem_read_frac", ratio(float64(pr.counter.ByOp[trace.OpLoad]), mem))
	b.add("mem_write_frac", ratio(float64(pr.counter.ByOp[trace.OpStore]), mem))
	b.add("mem_intensity", mem*inv)
	b.add("fp_per_mem", ratio(fp, mem))
	b.add("int_per_mem", ratio(intc, mem))
	b.add("bytes_per_mem", ratio(float64(pr.bytesRead)+float64(pr.bytesWrite), mem))

	// Block 20: totals — 2.
	b.add("total_inst_log2", log2p1(p.TotalInstrs()))
	b.add("total_mem_log2", log2p1(mem/pr.coverage))

	if len(b.values) != NumFeatures {
		panic(fmt.Sprintf("pisa: feature vector has %d entries, want %d", len(b.values), NumFeatures))
	}
	return b.names, b.values
}

// coldReads estimates first-touch reads (cold misses are not classified
// by type in the tracker; they are apportioned by the read share).
func (pr *Profiler) coldReads() uint64 {
	mem := pr.counter.Mem()
	if mem == 0 {
		return 0
	}
	return pr.coldData * pr.counter.ByOp[trace.OpLoad] / mem
}

func (pr *Profiler) coldWrites() uint64 {
	return pr.coldData - pr.coldReads()
}

// trafficCurve returns, per log2 reuse-distance bucket i, the fraction of
// accesses that travel to memory when a cache retains 2^i lines: cold
// misses plus every access with stack distance ≥ 2^i.
func trafficCurve(h *stats.Histogram, cold uint64) []float64 {
	out := make([]float64, len(h.Counts))
	total := h.Total + cold
	if total == 0 {
		return out
	}
	cdf := h.CDF()
	for i := range out {
		hits := cdf[i] * float64(h.Total)
		out[i] = clamp01((float64(total) - hits) / float64(total))
	}
	return out
}

// histMeanBucket is the mean log2 bucket index of a histogram.
func histMeanBucket(h *stats.Histogram) float64 {
	if h.Total == 0 {
		return 0
	}
	s := 0.0
	for i, c := range h.Counts {
		s += float64(i) * float64(c)
	}
	return s / float64(h.Total)
}

// branchSummary returns the access-weighted average branch bias, the
// average per-site branch entropy (bits) and the fraction of sites with
// bias above 0.9.
func (pr *Profiler) branchSummary() (bias, entropy, biasedFrac float64) {
	if len(pr.branchSites) == 0 {
		return 0, 0, 0
	}
	var totalW float64
	var biasedSites int
	for _, s := range pr.branchSites {
		p := float64(s.taken) / float64(s.total)
		w := float64(s.total)
		bmax := p
		if 1-p > bmax {
			bmax = 1 - p
		}
		bias += bmax * w
		entropy += binaryEntropy(p) * w
		totalW += w
		if bmax > 0.9 {
			biasedSites++
		}
	}
	return bias / totalW, entropy / totalW, float64(biasedSites) / float64(len(pr.branchSites))
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// ratio returns a/b, or 0 when b is 0.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WriteJSON emits the profile as a JSON object of name→value pairs plus
// the trace summary — the interchange format for external analysis or
// plotting tools.
func (p *Profile) WriteJSON(w io.Writer) error {
	names, values := p.build()
	obj := struct {
		SimInstrs   uint64             `json:"sim_instrs"`
		Coverage    float64            `json:"coverage"`
		TotalInstrs float64            `json:"total_instrs"`
		Footprint   float64            `json:"footprint_bytes"`
		Features    map[string]float64 `json:"features"`
	}{
		SimInstrs:   p.SimInstrs(),
		Coverage:    p.Coverage(),
		TotalInstrs: p.TotalInstrs(),
		Footprint:   p.FootprintBytes(),
		Features:    make(map[string]float64, len(names)),
	}
	for i, n := range names {
		obj.Features[n] = values[i]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}
