package ml

import (
	"errors"
	"math"
)

// TuneResult reports one hyper-parameter candidate's cross-validated
// score.
type TuneResult struct {
	Name  string
	Score float64 // mean MRE across folds (lower is better)
}

// Tune performs the paper's hyper-parameter search (Section 2.5): one
// cross-validation pass per candidate configuration, selecting the
// configuration with the lowest mean relative error, then retraining it
// on the full dataset. Candidates that fail to train on some fold are
// skipped.
func Tune(candidates []Trainer, d *Dataset, folds int, seed uint64) (Model, Trainer, []TuneResult, error) {
	if len(candidates) == 0 {
		return nil, nil, nil, errors.New("ml: no tuning candidates")
	}
	if err := d.Validate(); err != nil {
		return nil, nil, nil, err
	}
	cv := KFold(d.NumRows(), folds, seed)
	report := make([]TuneResult, 0, len(candidates))
	bestIdx, bestScore := -1, math.Inf(1)
	for ci, cand := range candidates {
		score, n := 0.0, 0
		failed := false
		for fi, fold := range cv {
			if len(fold.Train) == 0 || len(fold.Test) == 0 {
				continue
			}
			m, err := cand.Train(d.Subset(fold.Train), seed+uint64(fi)*7919)
			if err != nil {
				failed = true
				break
			}
			score += MRE(m, d.Subset(fold.Test))
			n++
		}
		if failed || n == 0 {
			report = append(report, TuneResult{Name: cand.Name(), Score: math.Inf(1)})
			continue
		}
		score /= float64(n)
		report = append(report, TuneResult{Name: cand.Name(), Score: score})
		if score < bestScore {
			bestScore, bestIdx = score, ci
		}
	}
	if bestIdx < 0 {
		return nil, nil, report, errors.New("ml: every tuning candidate failed")
	}
	best := candidates[bestIdx]
	model, err := best.Train(d, seed)
	if err != nil {
		return nil, nil, report, err
	}
	return model, best, report, nil
}
