// Package linreg implements ridge linear regression on standardized
// features — the "linear regression" class of baselines in the paper's
// related work (Joseph et al., HPCA 2006) and the leaf model of the
// model-tree baseline. As Figure 5 argues, purely linear models cannot
// capture the nonlinearity of NMC performance/energy responses; this
// package exists to reproduce that contrast.
package linreg

import (
	"fmt"

	"napel/internal/mat"
	"napel/internal/ml"
)

// Params are the ridge hyper-parameters.
type Params struct {
	Lambda float64 // ridge penalty (default 1.0)
}

func (p Params) withDefaults() Params {
	if p.Lambda <= 0 {
		p.Lambda = 1.0
	}
	return p
}

// String names the configuration.
func (p Params) String() string { return fmt.Sprintf("ridge(lambda=%g)", p.Lambda) }

// Model is a fitted ridge regression.
type Model struct {
	w    []float64 // weights over standardized features
	bias float64
	xstd *ml.Standardizer
}

// Predict implements ml.Model.
func (m *Model) Predict(x []float64) float64 {
	xs := m.xstd.Apply(x)
	out := m.bias
	for j, v := range xs {
		out += m.w[j] * v
	}
	return out
}

// Weights returns the learned weights over standardized features (shared
// storage).
func (m *Model) Weights() []float64 { return m.w }

// Train fits the ridge model on d.
func Train(d *ml.Dataset, p Params, _ uint64) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	xstd := ml.FitStandardizer(d.X)
	X := xstd.ApplyAll(d.X)
	// Centre the target; the bias absorbs its mean.
	yMean := 0.0
	for _, y := range d.Y {
		yMean += y
	}
	yMean /= float64(len(d.Y))
	yc := make([]float64, len(d.Y))
	for i, y := range d.Y {
		yc[i] = y - yMean
	}
	w, err := mat.RidgeLS(mat.FromRows(X), yc, p.Lambda)
	if err != nil {
		return nil, fmt.Errorf("linreg: %w", err)
	}
	return &Model{w: w, bias: yMean, xstd: xstd}, nil
}

// Trainer adapts Params to ml.Trainer.
type Trainer struct {
	Params Params
}

// Train implements ml.Trainer.
func (t Trainer) Train(d *ml.Dataset, seed uint64) (ml.Model, error) {
	return Train(d, t.Params, seed)
}

// Name implements ml.Trainer.
func (t Trainer) Name() string { return t.Params.String() }
