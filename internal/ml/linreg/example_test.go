package linreg_test

import (
	"fmt"

	"napel/internal/ml"
	"napel/internal/ml/linreg"
)

// Example_ridge recovers a linear relationship — and is structurally
// unable to capture a nonlinear one, which is the Figure 5 story.
func Example_ridge() {
	d := &ml.Dataset{}
	for i := -10; i <= 10; i++ {
		x := float64(i)
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 3*x+7)
	}
	m, err := linreg.Train(d, linreg.Params{Lambda: 1e-9}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("linear fit at x=4: %.1f (want 19.0)\n", m.Predict([]float64{4}))
	// Output:
	// linear fit at x=4: 19.0 (want 19.0)
}
