package linreg

import (
	"math"
	"testing"

	"napel/internal/ml"
	"napel/internal/xrand"
)

func TestRecoversLinearFunction(t *testing.T) {
	rng := xrand.New(1)
	n := 200
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d.X[i] = x
		d.Y[i] = 4*x[0] - 3*x[1] + 10
	}
	m, err := Train(d, Params{Lambda: 1e-8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1, 2}
	want := 4.0 - 6.0 + 10.0
	if got := m.Predict(probe); math.Abs(got-want) > 1e-3 {
		t.Fatalf("predict = %v, want %v", got, want)
	}
}

func TestCannotFitNonlinear(t *testing.T) {
	// The motivating contrast of Figure 5: a linear model cannot capture
	// y = x0² even approximately over a symmetric domain.
	rng := xrand.New(2)
	n := 300
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64()}
		d.X[i] = x
		d.Y[i] = x[0] * x[0]
	}
	m, err := Train(d, Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction at x=2 and x=-2 should be ~equal (linear term ~0), both
	// far from the true value of 4.
	p1, p2 := m.Predict([]float64{2}), m.Predict([]float64{-2})
	if math.Abs(p1-4) < 0.5 && math.Abs(p2-4) < 0.5 {
		t.Fatal("linear model implausibly fit a parabola")
	}
}

func TestConstantFeaturesHandled(t *testing.T) {
	d := &ml.Dataset{
		X: [][]float64{{1, 5}, {2, 5}, {3, 5}},
		Y: []float64{2, 4, 6},
	}
	m, err := Train(d, Params{Lambda: 1e-8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{4, 5}); math.Abs(got-8) > 1e-6 {
		t.Fatalf("predict = %v, want 8", got)
	}
}

func TestWeightsExposed(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []float64{1, 2, 3}}
	m, err := Train(d, Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Weights()) != 1 {
		t.Fatal("weights not exposed")
	}
}

func TestTrainerInterface(t *testing.T) {
	tr := Trainer{}
	if tr.Name() == "" {
		t.Fatal("empty name")
	}
	d := &ml.Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	if _, err := tr.Train(d, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(&ml.Dataset{}, 0); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
