package ml

import (
	"fmt"
	"sort"
)

// HoldoutFold returns one deterministic train/test split of n rows: a
// seed-driven permutation (the same hash sort KFold uses) with the first
// frac of rows held out for testing. The split is a pure function of
// (n, frac, seed), which is what lets napel-traind's promotion gate
// score a candidate model and the incumbent on the *same* held-out rows
// and compare the errors apples to apples.
//
// frac is clamped so both sides are non-empty whenever n >= 2; with
// n < 2 the test side is empty and the caller should reject the split.
func HoldoutFold(n int, frac float64, seed uint64) Fold {
	if n <= 0 {
		return Fold{}
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	nTest := int(float64(n)*frac + 0.5)
	if n >= 2 {
		if nTest < 1 {
			nTest = 1
		}
		if nTest > n-1 {
			nTest = n - 1
		}
	} else {
		nTest = 0
	}
	perm := permute(n, seed)
	f := Fold{
		Test:  append([]int(nil), perm[:nTest]...),
		Train: append([]int(nil), perm[nTest:]...),
	}
	sort.Ints(f.Test)
	sort.Ints(f.Train)
	return f
}

// HoldoutMRE trains tr on the training side of HoldoutFold and reports
// the mean relative error (Equation 1 — the paper's MAPE) on the
// held-out side: the validation number a freshly trained model is gated
// on before promotion.
func HoldoutMRE(tr Trainer, d *Dataset, frac float64, seed uint64) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	fold := HoldoutFold(d.NumRows(), frac, seed)
	if len(fold.Test) == 0 || len(fold.Train) == 0 {
		return 0, fmt.Errorf("ml: %d rows are too few for a holdout split", d.NumRows())
	}
	model, err := tr.Train(d.Subset(fold.Train), seed)
	if err != nil {
		return 0, err
	}
	return MRE(model, d.Subset(fold.Test)), nil
}
