package ml

import (
	"errors"
	"math"
)

// LogTrainer wraps another trainer so that it learns log(y) instead of
// y, with predictions mapped back through exp. NAPEL's targets — IPC
// and energy-per-instruction — are positive rates spanning orders of
// magnitude across (application, architecture) points, and the paper's
// accuracy metric is *relative* error (Equation 1); learning in log
// space makes the squared-error objective of the underlying learners
// align with that metric.
type LogTrainer struct {
	Inner Trainer
}

// rangeMargin is how far (multiplicatively) a prediction may leave the
// training-label range before it is clamped. Physical rates like IPC and
// EPI cannot meaningfully exceed the observed response range by orders
// of magnitude, so the clamp suppresses catastrophic extrapolation
// without affecting in-range accuracy.
const rangeMargin = 4.0

// Train implements Trainer.
func (t LogTrainer) Train(d *Dataset, seed uint64) (Model, error) {
	logged := &Dataset{X: d.X, Names: d.Names, Groups: d.Groups, Y: make([]float64, len(d.Y))}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, y := range d.Y {
		if y <= 0 {
			return nil, errors.New("ml: LogTrainer requires positive targets")
		}
		logged.Y[i] = math.Log(y)
		lo = math.Min(lo, logged.Y[i])
		hi = math.Max(hi, logged.Y[i])
	}
	inner, err := t.Inner.Train(logged, seed)
	if err != nil {
		return nil, err
	}
	m := math.Log(rangeMargin)
	return expModel{inner: inner, lo: lo - m, hi: hi + m}, nil
}

// Name implements Trainer.
func (t LogTrainer) Name() string { return "log-" + t.Inner.Name() }

type expModel struct {
	inner  Model
	lo, hi float64 // allowed log-space prediction range
}

// Predict maps the inner model's log-space estimate back to the target
// scale, clamped to the (margin-widened) training-label range.
func (m expModel) Predict(x []float64) float64 {
	v := m.inner.Predict(x)
	if v < m.lo {
		v = m.lo
	}
	if v > m.hi {
		v = m.hi
	}
	return math.Exp(v)
}

// WrapLogModel reconstructs the exp-of-inner model from its serialized
// parts (see UnwrapLogModel).
func WrapLogModel(inner Model, lo, hi float64) Model {
	return expModel{inner: inner, lo: lo, hi: hi}
}

// UnwrapLogModel decomposes a model produced by LogTrainer into its
// inner log-space model and clamp range, for serialization. ok is false
// if m is not a log-target model.
func UnwrapLogModel(m Model) (inner Model, lo, hi float64, ok bool) {
	em, isExp := m.(expModel)
	if !isExp {
		return nil, 0, 0, false
	}
	return em.inner, em.lo, em.hi, true
}
