package ml

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"napel/internal/xrand"
)

func synthDataset(n, p int, f func([]float64) float64, seed uint64) *Dataset {
	rng := xrand.New(seed)
	d := &Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		d.X[i] = row
		d.Y[i] = f(row)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	d := synthDataset(10, 3, func(x []float64) float64 { return x[0] }, 1)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := &Dataset{X: [][]float64{{1}}, Y: []float64{1, 2}}
	if bad.Validate() == nil {
		t.Error("length mismatch accepted")
	}
	empty := &Dataset{}
	if empty.Validate() == nil {
		t.Error("empty dataset accepted")
	}
	ragged := &Dataset{X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}}
	if ragged.Validate() == nil {
		t.Error("ragged rows accepted")
	}
	nan := &Dataset{X: [][]float64{{math.NaN()}}, Y: []float64{1}}
	if nan.Validate() == nil {
		t.Error("NaN feature accepted")
	}
	badGroups := &Dataset{X: [][]float64{{1}}, Y: []float64{1}, Groups: []string{"a", "b"}}
	if badGroups.Validate() == nil {
		t.Error("mismatched groups accepted")
	}
}

func TestSubset(t *testing.T) {
	d := synthDataset(10, 2, func(x []float64) float64 { return x[0] }, 2)
	d.Groups = make([]string, 10)
	for i := range d.Groups {
		d.Groups[i] = string(rune('a' + i%2))
	}
	s := d.Subset([]int{1, 3, 5})
	if s.NumRows() != 3 || s.Y[0] != d.Y[1] || s.Groups[2] != d.Groups[5] {
		t.Fatal("Subset broken")
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10, 5}, {3, 10, 7}, {5, 10, 9}}
	s := FitStandardizer(X)
	out := s.ApplyAll(X)
	// Column 0: mean 3, std sqrt(8/3); column 1 constant -> all zeros.
	for i := range out {
		if out[i][1] != 0 {
			t.Error("constant feature not zeroed")
		}
	}
	var mean0, var0 float64
	for i := range out {
		mean0 += out[i][0]
	}
	mean0 /= 3
	for i := range out {
		d := out[i][0] - mean0
		var0 += d * d
	}
	var0 /= 3
	if math.Abs(mean0) > 1e-12 || math.Abs(var0-1) > 1e-12 {
		t.Fatalf("standardized mean/var = %v/%v", mean0, var0)
	}
}

func TestKFoldPartition(t *testing.T) {
	if err := quick.Check(func(nn, kk, seed uint8) bool {
		n := int(nn)%50 + 4
		k := int(kk)%5 + 2
		folds := KFold(n, k, uint64(seed))
		seen := map[int]int{}
		for _, f := range folds {
			for _, i := range f.Test {
				seen[i]++
			}
			// Train and test are disjoint and cover everything.
			all := map[int]bool{}
			for _, i := range f.Train {
				all[i] = true
			}
			for _, i := range f.Test {
				if all[i] {
					return false // overlap
				}
				all[i] = true
			}
			if len(all) != n {
				return false
			}
		}
		// Every row appears in exactly one test fold.
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFold(20, 4, 7)
	b := KFold(20, 4, 7)
	for i := range a {
		if len(a[i].Test) != len(b[i].Test) {
			t.Fatal("KFold not deterministic")
		}
		for j := range a[i].Test {
			if a[i].Test[j] != b[i].Test[j] {
				t.Fatal("KFold not deterministic")
			}
		}
	}
}

func TestLeaveOneGroupOut(t *testing.T) {
	d := &Dataset{
		X:      [][]float64{{1}, {2}, {3}, {4}},
		Y:      []float64{1, 2, 3, 4},
		Groups: []string{"a", "b", "a", "c"},
	}
	folds := LeaveOneGroupOut(d)
	if len(folds) != 3 {
		t.Fatalf("%d folds, want 3", len(folds))
	}
	fa := folds["a"]
	sort.Ints(fa.Test)
	if len(fa.Test) != 2 || fa.Test[0] != 0 || fa.Test[1] != 2 {
		t.Fatalf("fold a test = %v", fa.Test)
	}
	for _, i := range fa.Train {
		if d.Groups[i] == "a" {
			t.Fatal("train fold contains held-out group")
		}
	}
	names := d.GroupNames()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("GroupNames = %v", names)
	}
}

// meanTrainer always predicts the training mean.
type meanTrainer struct{}

type meanModel float64

func (m meanModel) Predict([]float64) float64 { return float64(m) }

func (meanTrainer) Train(d *Dataset, _ uint64) (Model, error) {
	s := 0.0
	for _, y := range d.Y {
		s += y
	}
	return meanModel(s / float64(len(d.Y))), nil
}

func (meanTrainer) Name() string { return "mean" }

// firstFeatureTrainer predicts the first feature (perfect when y = x0).
type firstFeatureTrainer struct{}

type firstFeatureModel struct{}

func (firstFeatureModel) Predict(x []float64) float64 { return x[0] }

func (firstFeatureTrainer) Train(*Dataset, uint64) (Model, error) {
	return firstFeatureModel{}, nil
}

func (firstFeatureTrainer) Name() string { return "first-feature" }

func TestTunePicksBetterCandidate(t *testing.T) {
	d := synthDataset(60, 2, func(x []float64) float64 { return x[0] + 5 }, 3)
	for i := range d.Y {
		d.Y[i] = d.X[i][0] + 5 // strictly a function of x0
	}
	// Shift so targets are away from zero (stable MRE).
	model, chosen, report, err := Tune([]Trainer{meanTrainer{}, offsetTrainer{}}, d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Name() != "offset" {
		t.Fatalf("chose %s over the exact model (report %v)", chosen.Name(), report)
	}
	if MRE(model, d) > 1e-9 {
		t.Fatal("winning model inaccurate on training data")
	}
}

// offsetTrainer learns y = x0 + c exactly.
type offsetTrainer struct{}

type offsetModel float64

func (m offsetModel) Predict(x []float64) float64 { return x[0] + float64(m) }

func (offsetTrainer) Train(d *Dataset, _ uint64) (Model, error) {
	s := 0.0
	for i := range d.Y {
		s += d.Y[i] - d.X[i][0]
	}
	return offsetModel(s / float64(len(d.Y))), nil
}

func (offsetTrainer) Name() string { return "offset" }

func TestTuneNoCandidates(t *testing.T) {
	d := synthDataset(10, 1, func(x []float64) float64 { return 1 }, 4)
	if _, _, _, err := Tune(nil, d, 3, 1); err == nil {
		t.Fatal("no candidates accepted")
	}
}

func TestLogTrainer(t *testing.T) {
	// Exponential relationship: log-space learner nails it.
	d := synthDataset(50, 1, func(x []float64) float64 { return math.Exp(2 * x[0]) }, 5)
	m, err := LogTrainer{Inner: logLinearTrainer{}}.Train(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mre := MRE(m, d); mre > 0.01 {
		t.Fatalf("log trainer MRE %v", mre)
	}
	// Negative targets are rejected.
	d.Y[0] = -1
	if _, err := (LogTrainer{Inner: logLinearTrainer{}}).Train(d, 1); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestLogTrainerClampsExtrapolation(t *testing.T) {
	d := &Dataset{X: [][]float64{{0}, {1}}, Y: []float64{1, 2}}
	m, err := LogTrainer{Inner: wildTrainer{}}.Train(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The inner model predicts e^1000; the clamp bounds it near the
	// training range [1, 2] times the margin.
	if got := m.Predict([]float64{5}); got > 2*rangeMargin+1e-9 {
		t.Fatalf("clamp failed: %v", got)
	}
}

// logLinearTrainer fits y' = a*x0 + b by least squares (exact for the
// test's single feature).
type logLinearTrainer struct{}

type logLinearModel struct{ a, b float64 }

func (m logLinearModel) Predict(x []float64) float64 { return m.a*x[0] + m.b }

func (logLinearTrainer) Train(d *Dataset, _ uint64) (Model, error) {
	var sx, sy, sxx, sxy float64
	n := float64(len(d.Y))
	for i := range d.Y {
		x := d.X[i][0]
		sx += x
		sy += d.Y[i]
		sxx += x * x
		sxy += x * d.Y[i]
	}
	a := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	return logLinearModel{a: a, b: (sy - a*sx) / n}, nil
}

func (logLinearTrainer) Name() string { return "loglinear" }

type wildTrainer struct{}

type wildModel struct{}

func (wildModel) Predict([]float64) float64 { return 1000 }

func (wildTrainer) Train(*Dataset, uint64) (Model, error) { return wildModel{}, nil }

func (wildTrainer) Name() string { return "wild" }

func TestPredictAllAndMRE(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	preds := PredictAll(firstFeatureModel{}, d.X)
	if preds[0] != 1 || preds[1] != 2 {
		t.Fatal("PredictAll broken")
	}
	if MRE(firstFeatureModel{}, d) != 0 {
		t.Fatal("perfect model has nonzero MRE")
	}
}

// failingTrainer always errors, exercising Tune's skip path.
type failingTrainer struct{}

func (failingTrainer) Train(*Dataset, uint64) (Model, error) {
	return nil, errTrainFail
}

func (failingTrainer) Name() string { return "failing" }

var errTrainFail = errFail{}

type errFail struct{}

func (errFail) Error() string { return "synthetic training failure" }

func TestTuneSkipsFailingCandidates(t *testing.T) {
	d := synthDataset(40, 2, func(x []float64) float64 { return x[0] + 3 }, 9)
	model, chosen, report, err := Tune([]Trainer{failingTrainer{}, offsetTrainer{}}, d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Name() != "offset" {
		t.Fatalf("chose %s", chosen.Name())
	}
	if model == nil {
		t.Fatal("no model")
	}
	// The failing candidate is reported with an infinite score.
	found := false
	for _, r := range report {
		if r.Name == "failing" && r.Score > 1e300 {
			found = true
		}
	}
	if !found {
		t.Fatalf("failing candidate not reported: %v", report)
	}
}

func TestTuneAllCandidatesFail(t *testing.T) {
	d := synthDataset(20, 1, func(x []float64) float64 { return 1 }, 10)
	if _, _, _, err := Tune([]Trainer{failingTrainer{}}, d, 3, 1); err == nil {
		t.Fatal("all-failing grid accepted")
	}
}

func TestLogTrainerNameAndWrap(t *testing.T) {
	lt := LogTrainer{Inner: offsetTrainer{}}
	if lt.Name() != "log-offset" {
		t.Fatalf("Name = %q", lt.Name())
	}
	// Wrap/Unwrap round trip.
	m := WrapLogModel(offsetModel(0), 0, 1)
	inner, lo, hi, ok := UnwrapLogModel(m)
	if !ok || lo != 0 || hi != 1 || inner == nil {
		t.Fatal("Wrap/Unwrap round trip broken")
	}
	// Non-log models unwrap as not-ok.
	if _, _, _, ok := UnwrapLogModel(offsetModel(0)); ok {
		t.Fatal("plain model unwrapped as log model")
	}
	// Predict applies exp within the clamp range: inner returns x0, so
	// exp(0.5) for x=[0.5].
	if got := m.Predict([]float64{0.5}); math.Abs(got-math.Exp(0.5)) > 1e-12 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestNumFeaturesAndEmpty(t *testing.T) {
	d := &Dataset{}
	if d.NumFeatures() != 0 || d.NumRows() != 0 {
		t.Fatal("empty dataset dimensions wrong")
	}
	d2 := synthDataset(3, 5, func(x []float64) float64 { return 0 }, 1)
	if d2.NumFeatures() != 5 {
		t.Fatal("NumFeatures wrong")
	}
}

func TestKFoldClampsK(t *testing.T) {
	// k below 2 clamps to 2; k above n clamps to n.
	if len(KFold(10, 1, 0)) != 2 {
		t.Fatal("k<2 not clamped")
	}
	if len(KFold(3, 99, 0)) != 3 {
		t.Fatal("k>n not clamped")
	}
}

func TestStandardizerShortVector(t *testing.T) {
	s := FitStandardizer([][]float64{{1, 2}, {3, 4}})
	// Applying to a vector wider than the fitted stats zeroes the
	// unknown tail rather than panicking.
	out := s.Apply([]float64{2, 3, 99})
	if len(out) != 3 || out[2] != 0 {
		t.Fatalf("wide apply = %v", out)
	}
	empty := FitStandardizer(nil)
	if len(empty.Apply([]float64{})) != 0 {
		t.Fatal("empty standardizer broken")
	}
}
