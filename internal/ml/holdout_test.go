package ml

import "testing"

// slopeTrainer fits y = a*x0 by least squares — enough structure to
// exercise the holdout plumbing without importing a learner subpackage
// (those import ml and would cycle).
type slopeTrainer struct{}

type slopeModel struct{ a float64 }

func (m slopeModel) Predict(x []float64) float64 { return m.a * x[0] }

func (slopeTrainer) Name() string { return "slope" }

func (slopeTrainer) Train(d *Dataset, seed uint64) (Model, error) {
	var num, den float64
	for i, row := range d.X {
		num += row[0] * d.Y[i]
		den += row[0] * row[0]
	}
	if den == 0 {
		den = 1
	}
	return slopeModel{a: num / den}, nil
}

func TestHoldoutFoldDeterministicAndDisjoint(t *testing.T) {
	a := HoldoutFold(100, 0.25, 7)
	b := HoldoutFold(100, 0.25, 7)
	if len(a.Test) != 25 || len(a.Train) != 75 {
		t.Fatalf("split %d/%d, want 25/75", len(a.Test), len(a.Train))
	}
	for i := range a.Test {
		if a.Test[i] != b.Test[i] {
			t.Fatal("same (n, frac, seed) produced different test sets")
		}
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int(nil), a.Test...), a.Train...) {
		if seen[i] || i < 0 || i >= 100 {
			t.Fatalf("index %d duplicated or out of range", i)
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split covers %d rows, want 100", len(seen))
	}
	c := HoldoutFold(100, 0.25, 8)
	same := true
	for i := range a.Test {
		if a.Test[i] != c.Test[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical test sets")
	}
}

func TestHoldoutFoldClamps(t *testing.T) {
	// Extreme fractions still leave both sides non-empty for n >= 2.
	for _, frac := range []float64{-1, 0, 0.001, 0.999, 1, 2} {
		f := HoldoutFold(10, frac, 1)
		if len(f.Test) < 1 || len(f.Train) < 1 || len(f.Test)+len(f.Train) != 10 {
			t.Fatalf("frac=%g: split %d/%d", frac, len(f.Test), len(f.Train))
		}
	}
	if f := HoldoutFold(1, 0.5, 1); len(f.Test) != 0 || len(f.Train) != 1 {
		t.Fatalf("n=1 split %d/%d, want 0/1", len(f.Test), len(f.Train))
	}
	if f := HoldoutFold(0, 0.5, 1); len(f.Test) != 0 || len(f.Train) != 0 {
		t.Fatal("n=0 split not empty")
	}
}

func TestHoldoutMRE(t *testing.T) {
	// y = 2*x0 exactly; the fitted slope model holds out near-perfectly
	// and the call must be deterministic.
	d := &Dataset{}
	for i := 0; i < 60; i++ {
		x := float64(i%20) + 1
		d.X = append(d.X, []float64{x, float64(i % 3)})
		d.Y = append(d.Y, 2*x)
	}
	tr := slopeTrainer{}
	m1, err := HoldoutMRE(tr, d, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := HoldoutMRE(tr, d, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("holdout MRE not deterministic: %g vs %g", m1, m2)
	}
	if m1 < 0 || m1 > 1 {
		t.Fatalf("holdout MRE %g out of plausible range", m1)
	}

	tiny := &Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	if _, err := HoldoutMRE(tr, tiny, 0.5, 1); err == nil {
		t.Fatal("single-row dataset accepted")
	}
}
