package ml_test

import (
	"fmt"

	"napel/internal/ml"
	"napel/internal/ml/rf"
)

// Example_leaveOneGroupOut shows the paper's evaluation protocol: when
// predicting an application, none of its rows are in the training set.
func Example_leaveOneGroupOut() {
	d := &ml.Dataset{
		X:      [][]float64{{1}, {2}, {3}, {4}, {5}, {6}},
		Y:      []float64{1, 2, 3, 4, 5, 6},
		Groups: []string{"atax", "atax", "bfs", "bfs", "kme", "kme"},
	}
	folds := ml.LeaveOneGroupOut(d)
	fold := folds["bfs"]
	fmt.Println("test rows:", len(fold.Test), "train rows:", len(fold.Train))
	for _, i := range fold.Train {
		if d.Groups[i] == "bfs" {
			fmt.Println("leak!")
		}
	}
	fmt.Println("no leakage")
	// Output:
	// test rows: 2 train rows: 4
	// no leakage
}

// Example_logTrainer shows the log-target wrapper NAPEL trains its
// forests through.
func Example_logTrainer() {
	d := &ml.Dataset{}
	for i := 1; i <= 64; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, float64(i*i)) // spans 1..4096
	}
	trainer := ml.LogTrainer{Inner: rf.Trainer{Params: rf.Params{Trees: 20}}}
	m, err := trainer.Train(d, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("trainer:", trainer.Name())
	fmt.Println("prediction positive and finite:", m.Predict([]float64{10}) > 0)
	// Output:
	// trainer: log-rf(trees=20,depth=0,minleaf=0,mtry=0)
	// prediction positive and finite: true
}
