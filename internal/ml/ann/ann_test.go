package ann

import (
	"math"
	"testing"

	"napel/internal/ml"
	"napel/internal/xrand"
)

func synth(n int, f func([]float64) float64, seed uint64) *ml.Dataset {
	rng := xrand.New(seed)
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d.X[i] = x
		d.Y[i] = f(x)
	}
	return d
}

func TestLearnsLinearFunction(t *testing.T) {
	d := synth(300, func(x []float64) float64 { return 2*x[0] - x[1] + 5 }, 1)
	net, err := Train(d, Params{Hidden: 8, Epochs: 150, LR: 0.01}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i, x := range d.X {
		mae += math.Abs(net.Predict(x) - d.Y[i])
	}
	mae /= float64(len(d.X))
	if mae > 0.3 {
		t.Fatalf("training MAE %v, want < 0.3", mae)
	}
}

func TestLearnsMildNonlinearity(t *testing.T) {
	d := synth(400, func(x []float64) float64 { return x[0] * x[1] }, 3)
	net, err := Train(d, Params{Hidden: 16, Epochs: 300, LR: 0.005}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Should beat the constant-mean predictor decisively.
	mean := 0.0
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(len(d.Y))
	var netErr, meanErr float64
	for i, x := range d.X {
		netErr += math.Abs(net.Predict(x) - d.Y[i])
		meanErr += math.Abs(mean - d.Y[i])
	}
	if netErr >= meanErr*0.7 {
		t.Fatalf("net err %v vs mean err %v", netErr, meanErr)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	d := synth(100, func(x []float64) float64 { return x[0] }, 5)
	n1, _ := Train(d, Params{Epochs: 10}, 7)
	n2, _ := Train(d, Params{Epochs: 10}, 7)
	probe := []float64{0.5, -0.5}
	if n1.Predict(probe) != n2.Predict(probe) {
		t.Fatal("same seed produced different nets")
	}
}

func TestConstantTarget(t *testing.T) {
	d := synth(50, func([]float64) float64 { return 42 }, 8)
	net, err := Train(d, Params{Epochs: 30}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Predict([]float64{0, 0}); math.Abs(got-42) > 1 {
		t.Fatalf("constant prediction %v", got)
	}
}

func TestRejectsInvalidDataset(t *testing.T) {
	if _, err := Train(&ml.Dataset{}, Params{}, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestTrainerInterface(t *testing.T) {
	tr := Trainer{Params: Params{Epochs: 5}}
	if tr.Name() == "" {
		t.Fatal("empty name")
	}
	d := synth(20, func(x []float64) float64 { return x[0] }, 10)
	if _, err := tr.Train(d, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPredictFinite(t *testing.T) {
	d := synth(100, func(x []float64) float64 { return 100 * x[0] }, 11)
	net, err := Train(d, Params{Epochs: 50}, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(13)
	for i := 0; i < 100; i++ {
		p := net.Predict([]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("non-finite prediction")
		}
	}
}

func TestDivergenceGuard(t *testing.T) {
	// An absurd learning rate explodes the weights; Train must report it
	// rather than return a NaN-spewing model.
	d := synth(100, func(x []float64) float64 { return 1000 * x[0] }, 20)
	if _, err := Train(d, Params{LR: 1e12, Epochs: 30}, 21); err == nil {
		t.Fatal("diverged net accepted")
	}
}
