package ann_test

import (
	"fmt"

	"napel/internal/ml"
	"napel/internal/ml/ann"
)

// Example_mlp trains the Ipek-style baseline on a smooth function and
// checks it interpolates sensibly.
func Example_mlp() {
	d := &ml.Dataset{}
	for i := 0; i < 100; i++ {
		x := float64(i) / 10
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 5+2*x)
	}
	net, err := ann.Train(d, ann.Params{Hidden: 8, Epochs: 200, LR: 0.01}, 1)
	if err != nil {
		panic(err)
	}
	p := net.Predict([]float64{5})
	fmt.Println("prediction near 15:", p > 14 && p < 16)
	// Output:
	// prediction near 15: true
}
