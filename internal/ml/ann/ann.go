// Package ann implements the artificial-neural-network baseline the
// paper compares against (Ipek et al., ASPLOS 2006): a fully-connected
// multilayer perceptron with one hidden layer, trained by mini-batch
// stochastic gradient descent with momentum on standardized inputs and
// targets. Figure 5 of the paper shows this model is less accurate than
// NAPEL's random forest on the small DoE training sets, and Section 3.3
// notes it needs up to 5× more training time — both behaviours this
// implementation reproduces.
package ann

import (
	"errors"
	"fmt"
	"math"

	"napel/internal/ml"
	"napel/internal/xrand"
)

// Params are the MLP hyper-parameters.
type Params struct {
	Hidden   int     // hidden units (default 16)
	Epochs   int     // training epochs (default 200)
	LR       float64 // learning rate (default 0.01)
	Momentum float64 // momentum coefficient (default 0.9)
	L2       float64 // weight decay (default 1e-4)
	Batch    int     // mini-batch size (default 8)
}

func (p Params) withDefaults() Params {
	if p.Hidden <= 0 {
		p.Hidden = 32
	}
	if p.Epochs <= 0 {
		p.Epochs = 100
	}
	if p.LR <= 0 {
		p.LR = 0.005
	}
	if p.Momentum < 0 || p.Momentum >= 1 {
		p.Momentum = 0.9
	}
	if p.L2 < 0 {
		p.L2 = 1e-4
	}
	if p.Batch <= 0 {
		p.Batch = 16
	}
	return p
}

// String names the configuration.
func (p Params) String() string {
	return fmt.Sprintf("ann(h=%d,epochs=%d,lr=%g)", p.Hidden, p.Epochs, p.LR)
}

// Net is a trained one-hidden-layer MLP.
type Net struct {
	p     Params
	w1    [][]float64 // [hidden][in+1], last column is the bias
	w2    []float64   // [hidden+1], last entry is the bias
	xstd  *ml.Standardizer
	yMean float64
	yStd  float64
}

// Predict implements ml.Model.
func (n *Net) Predict(x []float64) float64 {
	xs := n.xstd.Apply(x)
	return n.forward(xs)*n.yStd + n.yMean
}

func (n *Net) forward(xs []float64) float64 {
	out := n.w2[len(n.w2)-1]
	for h, wrow := range n.w1 {
		a := wrow[len(wrow)-1]
		for j, v := range xs {
			a += wrow[j] * v
		}
		out += n.w2[h] * math.Tanh(a)
	}
	return out
}

// Train fits the MLP on d.
func Train(d *ml.Dataset, p Params, seed uint64) (*Net, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	rng := xrand.New(seed)
	numF := d.NumFeatures()

	xstd := ml.FitStandardizer(d.X)
	X := xstd.ApplyAll(d.X)
	yMean, yStd := meanStd(d.Y)
	if yStd == 0 {
		yStd = 1
	}
	Y := make([]float64, len(d.Y))
	for i, y := range d.Y {
		Y[i] = (y - yMean) / yStd
	}

	n := &Net{p: p, xstd: xstd, yMean: yMean, yStd: yStd}
	// Xavier-style initialization.
	scale1 := math.Sqrt(2.0 / float64(numF+1))
	n.w1 = make([][]float64, p.Hidden)
	for h := range n.w1 {
		row := make([]float64, numF+1)
		for j := range row {
			row[j] = rng.NormFloat64() * scale1
		}
		n.w1[h] = row
	}
	n.w2 = make([]float64, p.Hidden+1)
	scale2 := math.Sqrt(2.0 / float64(p.Hidden+1))
	for j := range n.w2 {
		n.w2[j] = rng.NormFloat64() * scale2
	}

	// Momentum buffers.
	v1 := make([][]float64, p.Hidden)
	for h := range v1 {
		v1[h] = make([]float64, numF+1)
	}
	v2 := make([]float64, p.Hidden+1)
	hidden := make([]float64, p.Hidden)

	rows := len(X)
	for epoch := 0; epoch < p.Epochs; epoch++ {
		perm := rng.Perm(rows)
		for start := 0; start < rows; start += p.Batch {
			end := start + p.Batch
			if end > rows {
				end = rows
			}
			batch := perm[start:end]
			lr := p.LR / float64(len(batch))
			for _, r := range batch {
				x := X[r]
				// Forward with cached activations.
				out := n.w2[p.Hidden]
				for h, wrow := range n.w1 {
					a := wrow[numF]
					for j, v := range x {
						a += wrow[j] * v
					}
					hidden[h] = math.Tanh(a)
					out += n.w2[h] * hidden[h]
				}
				errv := out - Y[r]
				// Backward.
				for h := 0; h < p.Hidden; h++ {
					gradW2 := errv*hidden[h] + p.L2*n.w2[h]
					v2[h] = p.Momentum*v2[h] - lr*gradW2
					deltaH := errv * n.w2[h] * (1 - hidden[h]*hidden[h])
					wrow := n.w1[h]
					vrow := v1[h]
					for j, xv := range x {
						g := deltaH*xv + p.L2*wrow[j]
						vrow[j] = p.Momentum*vrow[j] - lr*g
						wrow[j] += vrow[j]
					}
					vrow[numF] = p.Momentum*vrow[numF] - lr*deltaH
					wrow[numF] += vrow[numF]
					n.w2[h] += v2[h]
				}
				v2[p.Hidden] = p.Momentum*v2[p.Hidden] - lr*errv
				n.w2[p.Hidden] += v2[p.Hidden]
			}
		}
	}
	// Guard against divergence: a net with non-finite weights predicts
	// the training mean.
	if !n.finite() {
		return nil, errors.New("ann: training diverged to non-finite weights")
	}
	return n, nil
}

func (n *Net) finite() bool {
	for _, row := range n.w1 {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	for _, v := range n.w2 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func meanStd(y []float64) (mean, std float64) {
	n := float64(len(y))
	if n == 0 {
		return 0, 0
	}
	for _, v := range y {
		mean += v
	}
	mean /= n
	for _, v := range y {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / n)
}

// Trainer adapts Params to ml.Trainer.
type Trainer struct {
	Params Params
}

// Train implements ml.Trainer.
func (t Trainer) Train(d *ml.Dataset, seed uint64) (ml.Model, error) {
	return Train(d, t.Params, seed)
}

// Name implements ml.Trainer.
func (t Trainer) Name() string { return t.Params.String() }
