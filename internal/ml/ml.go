// Package ml provides the machine-learning substrate NAPEL trains its
// predictors on: datasets with group labels (one group per application,
// enabling the paper's leave-one-application-out evaluation), feature
// standardization, k-fold and leave-one-group-out cross-validation,
// grid-based hyper-parameter tuning and the mean-relative-error metric
// (Equation 1). The concrete learners live in the subpackages rf
// (random forest — NAPEL itself), ann (the Ipek et al. baseline), mtree
// (the Guo et al. model-tree baseline) and linreg (ridge regression).
package ml

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"napel/internal/stats"
)

// Dataset is a supervised regression dataset. Groups carries the
// application name of each row, used for leave-one-application-out
// cross-validation; it may be nil when group structure is irrelevant.
type Dataset struct {
	X      [][]float64
	Y      []float64
	Names  []string // feature names, optional
	Groups []string // per-row group label, optional
}

// NumRows returns the number of examples.
func (d *Dataset) NumRows() int { return len(d.X) }

// NumFeatures returns the feature dimensionality (0 if empty).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return errors.New("ml: empty dataset")
	}
	p := len(d.X[0])
	for i, row := range d.X {
		if len(row) != p {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), p)
		}
	}
	if d.Groups != nil && len(d.Groups) != len(d.X) {
		return fmt.Errorf("ml: %d group labels for %d rows", len(d.Groups), len(d.X))
	}
	for i, row := range d.X {
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: non-finite feature at row %d col %d", i, j)
			}
		}
		if math.IsNaN(d.Y[i]) || math.IsInf(d.Y[i], 0) {
			return fmt.Errorf("ml: non-finite label at row %d", i)
		}
	}
	return nil
}

// Subset returns the dataset restricted to the given row indices
// (sharing row storage).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		X:     make([][]float64, len(idx)),
		Y:     make([]float64, len(idx)),
		Names: d.Names,
	}
	if d.Groups != nil {
		sub.Groups = make([]string, len(idx))
	}
	for i, r := range idx {
		sub.X[i] = d.X[r]
		sub.Y[i] = d.Y[r]
		if d.Groups != nil {
			sub.Groups[i] = d.Groups[r]
		}
	}
	return sub
}

// GroupNames returns the distinct group labels in first-appearance order.
func (d *Dataset) GroupNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range d.Groups {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// Model predicts a scalar target from a feature vector.
type Model interface {
	Predict(x []float64) float64
}

// Trainer builds a model from a dataset; seed makes training
// deterministic.
type Trainer interface {
	Train(d *Dataset, seed uint64) (Model, error)
	Name() string
}

// PredictAll applies m to every row of X.
func PredictAll(m Model, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// MRE evaluates model m on d with the paper's mean-relative-error metric.
func MRE(m Model, d *Dataset) float64 {
	return stats.MRE(PredictAll(m, d.X), d.Y)
}

// Standardizer maps features to zero mean and unit variance; constant
// features map to zero.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer learns per-feature statistics from X.
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	p := len(X[0])
	s := &Standardizer{Mean: make([]float64, p), Std: make([]float64, p)}
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
	}
	return s
}

// Apply returns the standardized copy of x.
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		if j < len(s.Std) && s.Std[j] > 0 {
			out[j] = (v - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// ApplyAll standardizes every row of X.
func (s *Standardizer) ApplyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Apply(row)
	}
	return out
}

// Fold is one cross-validation split (row indices).
type Fold struct {
	Train, Test []int
}

// KFold builds k deterministic folds with a seed-driven shuffle.
func KFold(n, k int, seed uint64) []Fold {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := permute(n, seed)
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-len(test))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		sort.Ints(test)
		sort.Ints(train)
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds
}

// LeaveOneGroupOut builds one fold per distinct group label: the fold's
// test set is that group's rows, the train set everything else. This is
// the paper's evaluation protocol (Section 3.3): when predicting an
// application, no data from that application is in the training set.
func LeaveOneGroupOut(d *Dataset) map[string]Fold {
	folds := map[string]Fold{}
	for i, g := range d.Groups {
		f := folds[g]
		f.Test = append(f.Test, i)
		folds[g] = f
	}
	for g, f := range folds {
		train := make([]int, 0, len(d.Groups)-len(f.Test))
		for i, gi := range d.Groups {
			if gi != g {
				train = append(train, i)
			}
		}
		f.Train = train
		folds[g] = f
	}
	return folds
}

// permute returns a deterministic permutation of [0, n) derived from
// seed via a splitmix-style hash sort (avoids importing xrand here).
func permute(n int, seed uint64) []int {
	type hi struct {
		h uint64
		i int
	}
	hs := make([]hi, n)
	for i := range hs {
		x := uint64(i) ^ (seed * 0x9e3779b97f4a7c15)
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		hs[i] = hi{h: x ^ (x >> 31), i: i}
	}
	sort.Slice(hs, func(a, b int) bool {
		if hs[a].h != hs[b].h {
			return hs[a].h < hs[b].h
		}
		return hs[a].i < hs[b].i
	})
	out := make([]int, n)
	for i, h := range hs {
		out[i] = h.i
	}
	return out
}
