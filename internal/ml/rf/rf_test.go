package rf

import (
	"math"
	"testing"
	"testing/quick"

	"napel/internal/ml"
	"napel/internal/xrand"
)

func synth(n int, f func([]float64) float64, seed uint64) *ml.Dataset {
	rng := xrand.New(seed)
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		d.X[i] = row
		d.Y[i] = f(row)
	}
	return d
}

func TestConstantTarget(t *testing.T) {
	d := synth(50, func([]float64) float64 { return 7 }, 1)
	f, err := Train(d, Params{Trees: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{1, 2, 3}); got != 7 {
		t.Fatalf("constant prediction = %v", got)
	}
}

func TestLearnsStepFunction(t *testing.T) {
	// A step function is trees' home turf.
	f := func(x []float64) float64 {
		if x[0] > 5 {
			return 10
		}
		return 1
	}
	d := synth(400, f, 2)
	forest, err := Train(d, Params{Trees: 30, MTry: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := forest.Predict([]float64{9, 0, 0}); math.Abs(got-10) > 1 {
		t.Errorf("high side = %v, want ~10", got)
	}
	if got := forest.Predict([]float64{1, 0, 0}); math.Abs(got-1) > 1 {
		t.Errorf("low side = %v, want ~1", got)
	}
}

func TestBeatsMeanOnNonlinear(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[1] + 3 }
	train := synth(500, f, 4)
	test := synth(100, f, 5)
	forest, err := Train(train, Params{Trees: 50}, 6)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, y := range train.Y {
		mean += y
	}
	mean /= float64(len(train.Y))
	var rfErr, meanErr float64
	for i, x := range test.X {
		rfErr += math.Abs(forest.Predict(x) - test.Y[i])
		meanErr += math.Abs(mean - test.Y[i])
	}
	if rfErr >= meanErr/2 {
		t.Fatalf("forest abs err %v not clearly better than mean %v", rfErr, meanErr)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	d := synth(100, func(x []float64) float64 { return x[0] + x[1] }, 7)
	f1, _ := Train(d, Params{Trees: 10}, 42)
	f2, _ := Train(d, Params{Trees: 10}, 42)
	f3, _ := Train(d, Params{Trees: 10}, 43)
	probe := []float64{3, 4, 5}
	if f1.Predict(probe) != f2.Predict(probe) {
		t.Fatal("same seed, different forest")
	}
	if f1.Predict(probe) == f3.Predict(probe) {
		t.Log("different seeds produced identical predictions (possible but unlikely)")
	}
}

func TestPredictionWithinLabelHull(t *testing.T) {
	// Tree means can never leave the label range.
	if err := quick.Check(func(seed uint64) bool {
		d := synth(80, func(x []float64) float64 { return x[0] * x[2] }, seed)
		lo, hi := d.Y[0], d.Y[0]
		for _, y := range d.Y {
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		f, err := Train(d, Params{Trees: 5}, seed)
		if err != nil {
			return false
		}
		rng := xrand.New(seed ^ 1)
		for i := 0; i < 20; i++ {
			p := f.Predict([]float64{rng.Float64() * 20, rng.Float64() * 20, rng.Float64() * 20})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestImportanceIdentifiesSignal(t *testing.T) {
	// Only feature 1 carries signal.
	d := synth(300, func(x []float64) float64 { return 5 * x[1] }, 9)
	f, err := Train(d, Params{Trees: 30, MTry: 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importance sums to %v", total)
	}
	if imp[1] < 0.8 {
		t.Fatalf("signal feature importance %v, want dominant: %v", imp[1], imp)
	}
}

func TestMinLeaf(t *testing.T) {
	d := synth(50, func(x []float64) float64 { return x[0] }, 11)
	// With MinLeaf = n the tree cannot split: predictions are the mean.
	f, err := Train(d, Params{Trees: 3, MinLeaf: 50}, 12)
	if err != nil {
		t.Fatal(err)
	}
	p1 := f.Predict([]float64{0, 0, 0})
	p2 := f.Predict([]float64{10, 10, 10})
	if p1 != p2 {
		t.Fatal("MinLeaf = n still split")
	}
}

func TestMaxDepthLimitsTree(t *testing.T) {
	d := synth(200, func(x []float64) float64 { return x[0] }, 13)
	shallow, _ := Train(d, Params{Trees: 10, MaxDepth: 1}, 14)
	deep, _ := Train(d, Params{Trees: 10}, 14)
	var errS, errD float64
	test := synth(50, func(x []float64) float64 { return x[0] }, 15)
	for i, x := range test.X {
		errS += math.Abs(shallow.Predict(x) - test.Y[i])
		errD += math.Abs(deep.Predict(x) - test.Y[i])
	}
	if errD >= errS {
		t.Fatalf("deeper forest not better: %v vs %v", errD, errS)
	}
}

func TestTrainRejectsInvalidDataset(t *testing.T) {
	if _, err := Train(&ml.Dataset{}, Params{}, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestTrainerInterface(t *testing.T) {
	d := synth(30, func(x []float64) float64 { return 1 }, 16)
	tr := Trainer{Params: Params{Trees: 2}}
	if tr.Name() == "" {
		t.Fatal("empty trainer name")
	}
	m, err := tr.Train(d, 1)
	if err != nil || m == nil {
		t.Fatalf("Trainer.Train: %v", err)
	}
	if _, err := tr.Train(nil, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestSingleRowDataset(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1, 2}}, Y: []float64{5}}
	f, err := Train(d, Params{Trees: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Predict([]float64{9, 9}) != 5 {
		t.Fatal("single-row forest broken")
	}
}

func TestPredictWithSpread(t *testing.T) {
	d := synth(200, func(x []float64) float64 { return x[0] }, 30)
	f, err := Train(d, Params{Trees: 20}, 31)
	if err != nil {
		t.Fatal(err)
	}
	// In-domain: mean matches Predict, spread modest.
	in := []float64{5, 5, 5}
	mean, std := f.PredictWithSpread(in)
	if mean != f.Predict(in) {
		t.Fatal("spread mean differs from Predict")
	}
	if std < 0 {
		t.Fatal("negative spread")
	}
	// Far out of domain the trees saturate at different leaves near the
	// data boundary; spread stays finite and non-negative.
	_, stdOut := f.PredictWithSpread([]float64{1e9, -1e9, 0})
	if stdOut < 0 {
		t.Fatal("negative out-of-domain spread")
	}
}

func TestOOBMRE(t *testing.T) {
	d := synth(300, func(x []float64) float64 { return 10 + x[0]*x[1] }, 40)
	f, err := Train(d, Params{Trees: 40}, 41)
	if err != nil {
		t.Fatal(err)
	}
	oob := f.OOBMRE()
	if oob <= 0 || oob > 1 {
		t.Fatalf("implausible OOB MRE %v", oob)
	}
	// OOB must be worse than resubstitution error (the forest has seen
	// the training rows) but in the same ballpark.
	var resub float64
	for i, x := range d.X {
		resub += math.Abs(f.Predict(x)-d.Y[i]) / math.Abs(d.Y[i])
	}
	resub /= float64(len(d.X))
	if oob <= resub {
		t.Fatalf("OOB %v not above resubstitution %v", oob, resub)
	}
}

func TestPermutationImportance(t *testing.T) {
	// Feature 0 carries all the signal; permuting it must hurt, while
	// permuting the noise features must not.
	d := synth(300, func(x []float64) float64 { return 10 + 5*x[0] }, 50)
	f, err := Train(d, Params{Trees: 30, MTry: 3}, 51)
	if err != nil {
		t.Fatal(err)
	}
	imp := f.PermutationImportance(d.X, d.Y)
	if len(imp) != 3 {
		t.Fatalf("%d importances", len(imp))
	}
	if imp[0] <= 5*imp[1] || imp[0] <= 5*imp[2] {
		t.Fatalf("signal feature not dominant: %v", imp)
	}
	if f.PermutationImportance(nil, nil) != nil {
		t.Fatal("empty input should yield nil")
	}
}
