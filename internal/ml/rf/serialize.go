package rf

import (
	"encoding/json"
	"fmt"
)

// forestJSON is the stable on-disk representation of a Forest. Node
// arrays are stored flat per tree, exactly mirroring the in-memory
// layout, so round-trips are lossless and predictions bit-identical.
type forestJSON struct {
	Params     Params     `json:"params"`
	Importance []float64  `json:"importance"`
	Trees      []treeJSON `json:"trees"`
}

type treeJSON struct {
	Feature []int     `json:"feature"`
	Thresh  []float64 `json:"thresh"`
	Left    []int32   `json:"left"`
	Right   []int32   `json:"right"`
	Value   []float64 `json:"value"`
}

// MarshalJSON implements json.Marshaler.
func (f *Forest) MarshalJSON() ([]byte, error) {
	out := forestJSON{
		Params:     f.params,
		Importance: f.importance,
		Trees:      make([]treeJSON, len(f.trees)),
	}
	for ti := range f.trees {
		nodes := f.trees[ti].nodes
		tj := treeJSON{
			Feature: make([]int, len(nodes)),
			Thresh:  make([]float64, len(nodes)),
			Left:    make([]int32, len(nodes)),
			Right:   make([]int32, len(nodes)),
			Value:   make([]float64, len(nodes)),
		}
		for ni, n := range nodes {
			tj.Feature[ni] = n.feature
			tj.Thresh[ni] = n.thresh
			tj.Left[ni] = n.left
			tj.Right[ni] = n.right
			tj.Value[ni] = n.value
		}
		out.Trees[ti] = tj
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Forest) UnmarshalJSON(data []byte) error {
	var in forestJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Trees) == 0 {
		return fmt.Errorf("rf: serialized forest has no trees")
	}
	f.params = in.Params
	f.importance = in.Importance
	f.trees = make([]tree, len(in.Trees))
	for ti, tj := range in.Trees {
		n := len(tj.Feature)
		if len(tj.Thresh) != n || len(tj.Left) != n || len(tj.Right) != n || len(tj.Value) != n {
			return fmt.Errorf("rf: tree %d has inconsistent node arrays", ti)
		}
		if n == 0 {
			return fmt.Errorf("rf: tree %d is empty", ti)
		}
		nodes := make([]node, n)
		for ni := range nodes {
			l, r := tj.Left[ni], tj.Right[ni]
			if tj.Feature[ni] >= 0 && (l < 0 || int(l) >= n || r < 0 || int(r) >= n) {
				return fmt.Errorf("rf: tree %d node %d has out-of-range children", ti, ni)
			}
			nodes[ni] = node{
				feature: tj.Feature[ni],
				thresh:  tj.Thresh[ni],
				left:    l,
				right:   r,
				value:   tj.Value[ni],
			}
		}
		f.trees[ti].nodes = nodes
	}
	return nil
}
