package rf

import (
	"encoding/json"
	"math"
	"testing"

	"napel/internal/ml"
	"napel/internal/xrand"
)

// fixtureForest builds a two-tree forest by hand through the JSON
// representation: both trees split feature 0 at 0.5, so every
// prediction is exactly computable on paper.
//
//	tree 0: x0 <= 0.5 -> 2, else 6
//	tree 1: x0 <= 0.5 -> 4, else 10
func fixtureForest(t *testing.T) *Forest {
	t.Helper()
	raw := `{
		"params": {},
		"importance": [0],
		"trees": [
			{"feature": [0, -1, -1], "thresh": [0.5, 0, 0], "left": [1, 0, 0], "right": [2, 0, 0], "value": [0, 2, 6]},
			{"feature": [0, -1, -1], "thresh": [0.5, 0, 0], "left": [1, 0, 0], "right": [2, 0, 0], "value": [0, 4, 10]}
		]
	}`
	var f Forest
	if err := json.Unmarshal([]byte(raw), &f); err != nil {
		t.Fatalf("unmarshal fixture forest: %v", err)
	}
	return &f
}

func TestPredictWithVarianceFixture(t *testing.T) {
	f := fixtureForest(t)

	// x0 = 0: trees predict 2 and 4 -> mean 3, variance ((2-3)²+(4-3)²)/2 = 1.
	mean, variance := f.PredictWithVariance([]float64{0})
	if mean != 3 || variance != 1 {
		t.Fatalf("left leaves: mean=%g variance=%g, want 3, 1", mean, variance)
	}

	// x0 = 1: trees predict 6 and 10 -> mean 8, variance 4.
	mean, variance = f.PredictWithVariance([]float64{1})
	if mean != 8 || variance != 4 {
		t.Fatalf("right leaves: mean=%g variance=%g, want 8, 4", mean, variance)
	}

	// The mean must agree with Predict, and the spread with the
	// variance's square root, on both branches.
	for _, x := range [][]float64{{0}, {1}} {
		m1, v := f.PredictWithVariance(x)
		if got := f.Predict(x); got != m1 {
			t.Fatalf("Predict(%v)=%g disagrees with PredictWithVariance mean %g", x, got, m1)
		}
		m2, std := f.PredictWithSpread(x)
		if m2 != m1 || std != math.Sqrt(v) {
			t.Fatalf("PredictWithSpread(%v)=(%g,%g), want (%g,%g)", x, m2, std, m1, math.Sqrt(v))
		}
	}
}

func TestPredictWithVarianceAgreement(t *testing.T) {
	// On a trained forest the single-walk variance must equal the
	// two-pass definition over the individual tree predictions.
	rng := xrand.New(7)
	d := &ml.Dataset{Names: []string{"a", "b"}}
	for i := 0; i < 120; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d.X = append(d.X, x)
		d.Y = append(d.Y, 3*x[0]+x[1]*x[1]+0.1*rng.NormFloat64())
	}
	f, err := Train(d, Params{Trees: 16, MinLeaf: 2}, 11)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	x := []float64{0.3, 0.7}
	mean, variance := f.PredictWithVariance(x)
	var sum float64
	preds := make([]float64, len(f.trees))
	for i := range f.trees {
		preds[i] = f.trees[i].predict(x)
		sum += preds[i]
	}
	wantMean := sum / float64(len(preds))
	var wantVar float64
	for _, p := range preds {
		dv := p - wantMean
		wantVar += dv * dv
	}
	wantVar /= float64(len(preds))
	if math.Abs(mean-wantMean) > 1e-12 || math.Abs(variance-wantVar) > 1e-12 {
		t.Fatalf("got (%g, %g), want (%g, %g)", mean, variance, wantMean, wantVar)
	}
}

func TestPredictWithVarianceNoAllocs(t *testing.T) {
	f := fixtureForest(t)
	x := []float64{0.25}
	allocs := testing.AllocsPerRun(100, func() {
		f.PredictWithVariance(x)
	})
	if allocs != 0 {
		t.Fatalf("PredictWithVariance allocates %v times per call, want 0", allocs)
	}
}
