// Package rf implements random forest regression (Breiman, 2001) — the
// ensemble learner at the heart of NAPEL. Each tree is a CART regression
// tree grown on a bootstrap sample, considering a random subset of
// features at every split (mtry); the forest prediction is the mean of
// the tree predictions. The implementation is deterministic given the
// training seed and depends only on the standard library.
package rf

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"napel/internal/ml"
	"napel/internal/xrand"
)

// Params are the forest hyper-parameters NAPEL tunes (Section 2.5).
type Params struct {
	Trees      int     // number of trees (default 100)
	MaxDepth   int     // maximum tree depth (0 = unlimited)
	MinLeaf    int     // minimum samples per leaf (default 1)
	MTry       int     // features considered per split (0 = p/3, the regression default)
	SampleFrac float64 // bootstrap sample fraction (default 1.0, with replacement)
}

// withDefaults fills zero fields.
func (p Params) withDefaults(numFeatures int) Params {
	if p.Trees <= 0 {
		p.Trees = 100
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 1
	}
	if p.MTry <= 0 {
		p.MTry = numFeatures / 3
	}
	if p.MTry < 1 {
		p.MTry = 1
	}
	if p.MTry > numFeatures {
		p.MTry = numFeatures
	}
	if p.SampleFrac <= 0 || p.SampleFrac > 1 {
		p.SampleFrac = 1
	}
	return p
}

// String names the configuration (used in tuning reports).
func (p Params) String() string {
	return fmt.Sprintf("rf(trees=%d,depth=%d,minleaf=%d,mtry=%d)", p.Trees, p.MaxDepth, p.MinLeaf, p.MTry)
}

// node is one tree node in a flat arena.
type node struct {
	feature int     // split feature, -1 for leaves
	thresh  float64 // split threshold (go left if x <= thresh)
	left    int32
	right   int32
	value   float64 // leaf prediction
}

type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Forest is a trained random forest regression model.
type Forest struct {
	trees      []tree
	params     Params
	importance []float64 // SSE reduction attributed to each feature
	oobMRE     float64   // out-of-bag mean relative error (-1 if unavailable)
}

// OOBMRE returns the out-of-bag mean relative error estimated during
// training: each training row is predicted by only the trees whose
// bootstrap sample excluded it, giving an unbiased validation signal
// without a held-out set. Returns -1 when no row was out of bag (e.g.
// SampleFrac so small every tree saw every row, or a deserialized
// forest).
func (f *Forest) OOBMRE() float64 { return f.oobMRE }

// Predict implements ml.Model: the mean of the tree predictions.
func (f *Forest) Predict(x []float64) float64 {
	s := 0.0
	for i := range f.trees {
		s += f.trees[i].predict(x)
	}
	return s / float64(len(f.trees))
}

// Importance returns per-feature importance: total SSE reduction across
// all splits on that feature, normalized to sum to 1 (all zeros if the
// forest is a single leaf).
func (f *Forest) Importance() []float64 {
	out := make([]float64, len(f.importance))
	total := 0.0
	for _, v := range f.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range f.importance {
		out[i] = v / total
	}
	return out
}

// Train grows a forest on d with the given hyper-parameters. Trees are
// independent, so they are built in parallel across the available CPUs;
// each tree's generator is derived up front from the seed, which keeps
// the result bit-identical regardless of scheduling.
func Train(d *ml.Dataset, p Params, seed uint64) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	numF := d.NumFeatures()
	p = p.withDefaults(numF)
	f := &Forest{
		trees:      make([]tree, p.Trees),
		params:     p,
		importance: make([]float64, numF),
	}
	rng := xrand.New(seed)
	treeRngs := make([]*xrand.Rand, p.Trees)
	for i := range treeRngs {
		treeRngs[i] = rng.Split()
	}
	n := d.NumRows()
	sampleN := int(float64(n) * p.SampleFrac)
	if sampleN < 1 {
		sampleN = 1
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > p.Trees {
		workers = p.Trees
	}
	perTreeImp := make([][]float64, p.Trees)
	inBag := make([][]bool, p.Trees)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := &builder{d: d, p: p}
			for {
				ti := int(next.Add(1)) - 1
				if ti >= p.Trees {
					return
				}
				treeRng := treeRngs[ti]
				idx := make([]int, sampleN)
				bag := make([]bool, n)
				for i := range idx {
					r := treeRng.Intn(n) // bootstrap with replacement
					idx[i] = r
					bag[r] = true
				}
				b.rng = treeRng
				b.nodes = b.nodes[:0]
				b.imp = make([]float64, numF)
				b.build(idx, 0)
				f.trees[ti].nodes = append([]node(nil), b.nodes...)
				perTreeImp[ti] = b.imp
				inBag[ti] = bag
			}
		}()
	}
	wg.Wait()
	for _, imp := range perTreeImp {
		for j, v := range imp {
			f.importance[j] += v
		}
	}
	f.oobMRE = oobError(d, f, inBag)
	return f, nil
}

// oobError computes the out-of-bag mean relative error: each row is
// predicted by the trees that never sampled it.
func oobError(d *ml.Dataset, f *Forest, inBag [][]bool) float64 {
	var sum float64
	var count int
	for r := 0; r < d.NumRows(); r++ {
		var pred float64
		var trees int
		for ti := range f.trees {
			if !inBag[ti][r] {
				pred += f.trees[ti].predict(d.X[r])
				trees++
			}
		}
		if trees == 0 {
			continue
		}
		pred /= float64(trees)
		y := d.Y[r]
		if y == 0 {
			continue
		}
		sum += abs(pred-y) / abs(y)
		count++
	}
	if count == 0 {
		return -1
	}
	return sum / float64(count)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// builder grows one tree at a time, reusing scratch buffers.
type builder struct {
	d     *ml.Dataset
	p     Params
	rng   *xrand.Rand
	nodes []node
	imp   []float64
	feats []int // feature sampling scratch
	order []srt // split-scan scratch
}

type srt struct {
	v, y float64
}

// build grows the subtree over rows idx at the given depth and returns
// its node index.
func (b *builder) build(idx []int, depth int) int32 {
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{feature: -1})

	mean, sse := meanSSE(b.d, idx)
	b.nodes[me].value = mean
	if len(idx) < 2*b.p.MinLeaf || sse <= 1e-12 ||
		(b.p.MaxDepth > 0 && depth >= b.p.MaxDepth) {
		return me
	}

	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	numF := b.d.NumFeatures()
	b.sampleFeatures(numF)
	for _, feat := range b.feats {
		thresh, gain, ok := b.bestSplit(idx, feat, sse)
		if ok && gain > bestGain {
			bestFeat, bestThresh, bestGain = feat, thresh, gain
		}
	}
	if bestFeat < 0 {
		return me
	}

	left := make([]int, 0, len(idx))
	right := make([]int, 0, len(idx))
	for _, r := range idx {
		if b.d.X[r][bestFeat] <= bestThresh {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.p.MinLeaf || len(right) < b.p.MinLeaf {
		return me
	}
	b.imp[bestFeat] += bestGain
	b.nodes[me].feature = bestFeat
	b.nodes[me].thresh = bestThresh
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.nodes[me].left = l
	b.nodes[me].right = r
	return me
}

// sampleFeatures fills b.feats with MTry distinct feature indices.
func (b *builder) sampleFeatures(numF int) {
	if cap(b.feats) < numF {
		b.feats = make([]int, numF)
	}
	b.feats = b.feats[:numF]
	for i := range b.feats {
		b.feats[i] = i
	}
	// Partial Fisher–Yates: the first MTry entries are the sample.
	for i := 0; i < b.p.MTry; i++ {
		j := i + b.rng.Intn(numF-i)
		b.feats[i], b.feats[j] = b.feats[j], b.feats[i]
	}
	b.feats = b.feats[:b.p.MTry]
}

// bestSplit scans feature feat over rows idx for the threshold that
// maximizes SSE reduction. parentSSE is the node's total SSE.
func (b *builder) bestSplit(idx []int, feat int, parentSSE float64) (thresh, gain float64, ok bool) {
	if cap(b.order) < len(idx) {
		b.order = make([]srt, len(idx))
	}
	b.order = b.order[:len(idx)]
	for i, r := range idx {
		b.order[i] = srt{v: b.d.X[r][feat], y: b.d.Y[r]}
	}
	sort.Slice(b.order, func(i, j int) bool { return b.order[i].v < b.order[j].v })
	n := len(b.order)
	if b.order[0].v == b.order[n-1].v {
		return 0, 0, false // constant feature on this node
	}

	var sumL, sqL float64
	var sumR, sqR float64
	for _, o := range b.order {
		sumR += o.y
		sqR += o.y * o.y
	}
	nl := 0
	best := -1.0
	for i := 0; i < n-1; i++ {
		y := b.order[i].y
		sumL += y
		sqL += y * y
		sumR -= y
		sqR -= y * y
		nl++
		if b.order[i].v == b.order[i+1].v {
			continue // can't split between equal values
		}
		nr := n - nl
		if nl < b.p.MinLeaf || nr < b.p.MinLeaf {
			continue
		}
		sseL := sqL - sumL*sumL/float64(nl)
		sseR := sqR - sumR*sumR/float64(nr)
		g := parentSSE - (sseL + sseR)
		if g > best {
			best = g
			thresh = (b.order[i].v + b.order[i+1].v) / 2
		}
	}
	if best <= 0 {
		return 0, 0, false
	}
	return thresh, best, true
}

// meanSSE returns the mean and sum of squared errors of Y over idx.
func meanSSE(d *ml.Dataset, idx []int) (mean, sse float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	for _, r := range idx {
		mean += d.Y[r]
	}
	mean /= float64(len(idx))
	for _, r := range idx {
		dv := d.Y[r] - mean
		sse += dv * dv
	}
	return mean, sse
}

// Trainer adapts Params to the ml.Trainer interface.
type Trainer struct {
	Params Params
}

// Train implements ml.Trainer.
func (t Trainer) Train(d *ml.Dataset, seed uint64) (ml.Model, error) {
	if d == nil {
		return nil, errors.New("rf: nil dataset")
	}
	return Train(d, t.Params, seed)
}

// Name implements ml.Trainer.
func (t Trainer) Name() string { return t.Params.String() }

// PredictWithVariance returns the forest mean together with the
// population variance of the individual tree predictions, computed in a
// single walk over the trees with no allocations. Per-tree variance is
// the ensemble-disagreement signal the active-learning scheduler ranks
// candidate configurations by (high variance = the trees were grown on
// bootstrap samples that disagree here; the point is informative).
func (f *Forest) PredictWithVariance(x []float64) (mean, variance float64) {
	n := float64(len(f.trees))
	var sum, sq float64
	for i := range f.trees {
		v := f.trees[i].predict(x)
		sum += v
		sq += v * v
	}
	mean = sum / n
	variance = sq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard the two-accumulator form against rounding
	}
	return mean, variance
}

// PredictWithSpread returns the forest mean together with the standard
// deviation of the individual tree predictions — a cheap uncertainty
// estimate for design-space exploration (wide spread = the model is
// extrapolating; trust the point less).
func (f *Forest) PredictWithSpread(x []float64) (mean, std float64) {
	mean, variance := f.PredictWithVariance(x)
	return mean, math.Sqrt(variance)
}

// PermutationImportance measures each feature's contribution by the
// accuracy it costs to destroy it: the feature's column is cyclically
// shifted across the evaluation rows and the increase in mean relative
// error is recorded. Unlike the split-gain Importance it reflects what
// the trained model actually *uses* on the given data, making it robust
// to correlated features. Rows with zero targets are skipped.
func (f *Forest) PermutationImportance(X [][]float64, y []float64) []float64 {
	if len(X) == 0 || len(X) != len(y) {
		return nil
	}
	numF := len(X[0])
	base := f.mre(X, y, -1)
	out := make([]float64, numF)
	for feat := 0; feat < numF; feat++ {
		out[feat] = f.mre(X, y, feat) - base
		if out[feat] < 0 {
			out[feat] = 0
		}
	}
	return out
}

// mre evaluates mean relative error with feature perm (if >= 0)
// cyclically shifted by one row — a deterministic permutation that
// breaks the feature-target association without changing the feature's
// marginal distribution.
func (f *Forest) mre(X [][]float64, y []float64, perm int) float64 {
	n := len(X)
	var sum float64
	var count int
	row := make([]float64, len(X[0]))
	for i := 0; i < n; i++ {
		if y[i] == 0 {
			continue
		}
		x := X[i]
		if perm >= 0 {
			copy(row, x)
			row[perm] = X[(i+1)%n][perm]
			x = row
		}
		d := f.Predict(x) - y[i]
		if d < 0 {
			d = -d
		}
		ay := y[i]
		if ay < 0 {
			ay = -ay
		}
		sum += d / ay
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
