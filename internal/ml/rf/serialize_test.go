package rf

import (
	"encoding/json"
	"testing"

	"napel/internal/xrand"
)

func TestForestJSONRoundTrip(t *testing.T) {
	d := synth(150, func(x []float64) float64 { return x[0]*x[1] + x[2] }, 21)
	f, err := Train(d, Params{Trees: 12}, 22)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var g Forest
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(23)
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		if f.Predict(x) != g.Predict(x) {
			t.Fatalf("round trip changed prediction at %v", x)
		}
	}
	gi, fi := g.Importance(), f.Importance()
	for i := range fi {
		if fi[i] != gi[i] {
			t.Fatal("importance lost in round trip")
		}
	}
}

func TestForestUnmarshalRejectsMalformed(t *testing.T) {
	cases := []string{
		`{}`, // no trees
		`{"trees":[{"feature":[0],"thresh":[1],"left":[5],"right":[0],"value":[0]}]}`,          // child out of range
		`{"trees":[{"feature":[0,-1],"thresh":[1],"left":[1,0],"right":[1,0],"value":[0,1]}]}`, // ragged arrays
		`{"trees":[{"feature":[],"thresh":[],"left":[],"right":[],"value":[]}]}`,               // empty tree
	}
	for i, c := range cases {
		var f Forest
		if err := json.Unmarshal([]byte(c), &f); err == nil {
			t.Errorf("malformed case %d accepted", i)
		}
	}
}
