package rf_test

import (
	"fmt"

	"napel/internal/ml"
	"napel/internal/ml/rf"
)

// Example_train fits a small forest on a step function and reads the
// out-of-bag error — the forest's built-in validation signal.
func Example_train() {
	d := &ml.Dataset{}
	for i := 0; i < 200; i++ {
		x := float64(i % 20)
		y := 1.0
		if x >= 10 {
			y = 100.0
		}
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, y)
	}
	f, err := rf.Train(d, rf.Params{Trees: 25}, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("low side:  %.0f\n", f.Predict([]float64{3}))
	fmt.Printf("high side: %.0f\n", f.Predict([]float64{17}))
	fmt.Println("OOB error sane:", f.OOBMRE() >= 0 && f.OOBMRE() < 0.2)
	// Output:
	// low side:  1
	// high side: 100
	// OOB error sane: true
}
