// Package mtree implements an M5-style linear model tree — the "linear
// decision tree" baseline of Guo et al. that the paper compares against
// in Figure 5. A regression tree is grown by variance reduction; each
// leaf fits a ridge linear model over the features most correlated with
// the target among the leaf's rows. The paper observes this model is
// "very inaccurate" for NMC responses because the leaf models are
// linear; this package reproduces that qualitative behaviour while still
// being a faithful, reasonable implementation of the technique.
package mtree

import (
	"fmt"
	"math"
	"sort"

	"napel/internal/mat"
	"napel/internal/ml"
)

// Params are the model-tree hyper-parameters.
type Params struct {
	MaxDepth   int     // maximum tree depth (default 4)
	MinLeaf    int     // minimum rows per leaf (default 8)
	LeafFeats  int     // features per leaf linear model (default 8)
	Lambda     float64 // ridge penalty of leaf models (default 1.0)
	SmoothClip bool    // clip predictions to the leaf's training range (default true via withDefaults)
}

func (p Params) withDefaults() Params {
	if p.MaxDepth <= 0 {
		p.MaxDepth = 4
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 8
	}
	if p.LeafFeats <= 0 {
		p.LeafFeats = 8
	}
	if p.Lambda <= 0 {
		p.Lambda = 1.0
	}
	return p
}

// String names the configuration.
func (p Params) String() string {
	return fmt.Sprintf("mtree(depth=%d,minleaf=%d,leaffeats=%d)", p.MaxDepth, p.MinLeaf, p.LeafFeats)
}

type node struct {
	feature int // -1 for leaf
	thresh  float64
	left    int32
	right   int32
	leaf    *leafModel
}

type leafModel struct {
	feats    []int
	w        []float64
	bias     float64
	yLo, yHi float64
	clip     bool
}

func (l *leafModel) predict(x []float64) float64 {
	out := l.bias
	for i, f := range l.feats {
		out += l.w[i] * x[f]
	}
	if l.clip {
		if out < l.yLo {
			out = l.yLo
		}
		if out > l.yHi {
			out = l.yHi
		}
	}
	return out
}

// Tree is a trained linear model tree.
type Tree struct {
	nodes []node
}

// Predict implements ml.Model.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.leaf.predict(x)
		}
		if x[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Train grows a model tree on d.
func Train(d *ml.Dataset, p Params, _ uint64) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	p.SmoothClip = true
	t := &Tree{}
	idx := make([]int, d.NumRows())
	for i := range idx {
		idx[i] = i
	}
	b := &builder{d: d, p: p, t: t}
	b.build(idx, 0)
	return t, nil
}

type builder struct {
	d *ml.Dataset
	p Params
	t *Tree
}

func (b *builder) build(idx []int, depth int) int32 {
	me := int32(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, node{feature: -1})

	mean, sse := meanSSE(b.d, idx)
	if len(idx) >= 2*b.p.MinLeaf && sse > 1e-12 && depth < b.p.MaxDepth {
		if feat, thresh, ok := b.bestSplit(idx, sse); ok {
			var left, right []int
			for _, r := range idx {
				if b.d.X[r][feat] <= thresh {
					left = append(left, r)
				} else {
					right = append(right, r)
				}
			}
			if len(left) >= b.p.MinLeaf && len(right) >= b.p.MinLeaf {
				b.t.nodes[me].feature = feat
				b.t.nodes[me].thresh = thresh
				l := b.build(left, depth+1)
				r := b.build(right, depth+1)
				b.t.nodes[me].left = l
				b.t.nodes[me].right = r
				return me
			}
		}
	}
	b.t.nodes[me].leaf = b.fitLeaf(idx, mean)
	return me
}

// bestSplit scans every feature for the best variance-reducing split.
func (b *builder) bestSplit(idx []int, parentSSE float64) (feat int, thresh float64, ok bool) {
	bestGain := 0.0
	order := make([]struct{ v, y float64 }, len(idx))
	for f := 0; f < b.d.NumFeatures(); f++ {
		for i, r := range idx {
			order[i].v = b.d.X[r][f]
			order[i].y = b.d.Y[r]
		}
		sort.Slice(order, func(i, j int) bool { return order[i].v < order[j].v })
		n := len(order)
		if order[0].v == order[n-1].v {
			continue
		}
		var sumL, sqL, sumR, sqR float64
		for _, o := range order {
			sumR += o.y
			sqR += o.y * o.y
		}
		for i := 0; i < n-1; i++ {
			y := order[i].y
			sumL += y
			sqL += y * y
			sumR -= y
			sqR -= y * y
			nl, nr := i+1, n-i-1
			if order[i].v == order[i+1].v || nl < b.p.MinLeaf || nr < b.p.MinLeaf {
				continue
			}
			g := parentSSE - (sqL - sumL*sumL/float64(nl)) - (sqR - sumR*sumR/float64(nr))
			if g > bestGain {
				bestGain = g
				feat = f
				thresh = (order[i].v + order[i+1].v) / 2
			}
		}
	}
	return feat, thresh, bestGain > 0
}

// fitLeaf fits a ridge linear model over the LeafFeats features most
// correlated with the target among the leaf's rows; it falls back to a
// constant model when the fit is degenerate.
func (b *builder) fitLeaf(idx []int, mean float64) *leafModel {
	lm := &leafModel{bias: mean, clip: b.p.SmoothClip, yLo: math.Inf(1), yHi: math.Inf(-1)}
	for _, r := range idx {
		y := b.d.Y[r]
		if y < lm.yLo {
			lm.yLo = y
		}
		if y > lm.yHi {
			lm.yHi = y
		}
	}
	feats := b.topCorrelated(idx)
	if len(feats) == 0 || len(idx) < len(feats)+2 {
		return lm
	}
	// Design matrix with an intercept column.
	rows := make([][]float64, len(idx))
	y := make([]float64, len(idx))
	for i, r := range idx {
		row := make([]float64, len(feats)+1)
		for j, f := range feats {
			row[j] = b.d.X[r][f]
		}
		row[len(feats)] = 1
		rows[i] = row
		y[i] = b.d.Y[r]
	}
	w, err := mat.RidgeLS(mat.FromRows(rows), y, b.p.Lambda)
	if err != nil {
		return lm
	}
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return lm
		}
	}
	lm.feats = feats
	lm.w = w[:len(feats)]
	lm.bias = w[len(feats)]
	return lm
}

// topCorrelated ranks features by |corr(feature, y)| over idx.
func (b *builder) topCorrelated(idx []int) []int {
	numF := b.d.NumFeatures()
	type fc struct {
		f int
		c float64
	}
	n := float64(len(idx))
	if n < 3 {
		return nil
	}
	var my float64
	for _, r := range idx {
		my += b.d.Y[r]
	}
	my /= n
	var vy float64
	for _, r := range idx {
		d := b.d.Y[r] - my
		vy += d * d
	}
	if vy == 0 {
		return nil
	}
	cors := make([]fc, 0, numF)
	for f := 0; f < numF; f++ {
		var mx float64
		for _, r := range idx {
			mx += b.d.X[r][f]
		}
		mx /= n
		var vx, cov float64
		for _, r := range idx {
			dx := b.d.X[r][f] - mx
			dy := b.d.Y[r] - my
			vx += dx * dx
			cov += dx * dy
		}
		if vx == 0 {
			continue
		}
		cors = append(cors, fc{f: f, c: math.Abs(cov) / math.Sqrt(vx*vy)})
	}
	sort.Slice(cors, func(i, j int) bool {
		if cors[i].c != cors[j].c {
			return cors[i].c > cors[j].c
		}
		return cors[i].f < cors[j].f
	})
	k := b.p.LeafFeats
	if k > len(cors) {
		k = len(cors)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cors[i].f
	}
	sort.Ints(out)
	return out
}

func meanSSE(d *ml.Dataset, idx []int) (mean, sse float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	for _, r := range idx {
		mean += d.Y[r]
	}
	mean /= float64(len(idx))
	for _, r := range idx {
		dv := d.Y[r] - mean
		sse += dv * dv
	}
	return mean, sse
}

// Trainer adapts Params to ml.Trainer.
type Trainer struct {
	Params Params
}

// Train implements ml.Trainer.
func (t Trainer) Train(d *ml.Dataset, seed uint64) (ml.Model, error) {
	return Train(d, t.Params, seed)
}

// Name implements ml.Trainer.
func (t Trainer) Name() string { return t.Params.String() }
