package mtree

import (
	"math"
	"testing"

	"napel/internal/ml"
	"napel/internal/xrand"
)

func synth(n int, f func([]float64) float64, seed uint64) *ml.Dataset {
	rng := xrand.New(seed)
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		d.X[i] = x
		d.Y[i] = f(x)
	}
	return d
}

func TestLearnsPiecewiseLinear(t *testing.T) {
	// Two linear regimes split on x0 — the model tree's ideal target.
	f := func(x []float64) float64 {
		if x[0] > 5 {
			return 3*x[1] + 100
		}
		return -2*x[1] + 10
	}
	d := synth(400, f, 1)
	tree, err := Train(d, Params{MaxDepth: 3, MinLeaf: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i, x := range d.X {
		mae += math.Abs(tree.Predict(x) - d.Y[i])
	}
	mae /= float64(len(d.X))
	if mae > 2 {
		t.Fatalf("training MAE %v on piecewise-linear target", mae)
	}
}

func TestLinearLeavesExtrapolateWithinClip(t *testing.T) {
	d := synth(100, func(x []float64) float64 { return x[0] }, 2)
	tree, err := Train(d, Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions are clipped to the per-leaf label range: far outside
	// the training domain they must stay within the global label hull.
	p := tree.Predict([]float64{1e6, 0})
	if p < -1 || p > 11 {
		t.Fatalf("clipped prediction escaped: %v", p)
	}
}

func TestConstantTarget(t *testing.T) {
	d := synth(60, func([]float64) float64 { return 5 }, 3)
	tree, err := Train(d, Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{3, 3}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("constant prediction %v", got)
	}
}

func TestTinyDatasetFallsBackToLeaf(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1, 1}, {2, 2}}, Y: []float64{1, 2}}
	tree, err := Train(d, Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := tree.Predict([]float64{1.5, 1.5})
	if p < 1 || p > 2 {
		t.Fatalf("tiny dataset prediction %v", p)
	}
}

func TestStrugglesWithMultiplicativeNonlinearity(t *testing.T) {
	// The paper's observation: linear leaves cannot capture strongly
	// nonlinear responses. Verify the tree is much worse on x0*x1 than
	// on a linear target of the same magnitude.
	fNl := func(x []float64) float64 { return x[0] * x[1] }
	fLin := func(x []float64) float64 { return 5*x[0] + 5*x[1] }
	mae := func(f func([]float64) float64, seed uint64) float64 {
		train := synth(300, f, seed)
		test := synth(100, f, seed+1)
		tree, err := Train(train, Params{MaxDepth: 2, MinLeaf: 20}, 0)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for i, x := range test.X {
			e += math.Abs(tree.Predict(x) - test.Y[i])
		}
		return e / float64(len(test.X))
	}
	if nl, lin := mae(fNl, 10), mae(fLin, 20); nl < 2*lin {
		t.Fatalf("model tree suspiciously good on nonlinear target: %v vs linear %v", nl, lin)
	}
}

func TestTrainerInterface(t *testing.T) {
	tr := Trainer{}
	if tr.Name() == "" {
		t.Fatal("empty name")
	}
	d := synth(30, func(x []float64) float64 { return x[0] }, 4)
	if _, err := tr.Train(d, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(&ml.Dataset{}, 0); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
