package mtree_test

import (
	"fmt"

	"napel/internal/ml"
	"napel/internal/ml/mtree"
)

// Example_piecewiseLinear fits the model tree on its ideal target — two
// linear regimes — and shows the linear leaves extrapolating within
// their clip range.
func Example_piecewiseLinear() {
	d := &ml.Dataset{}
	for i := 0; i < 200; i++ {
		x := float64(i % 20)
		y := 2 * x // low regime
		if x >= 10 {
			y = 100 + 3*x // high regime
		}
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, y)
	}
	tree, err := mtree.Train(d, mtree.Params{MaxDepth: 2, MinLeaf: 10}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("low regime:  %.0f (want 6)\n", tree.Predict([]float64{3}))
	fmt.Printf("high regime: %.0f (want 145)\n", tree.Predict([]float64{15}))
	// Output:
	// low regime:  6 (want 6)
	// high regime: 145 (want 145)
}
