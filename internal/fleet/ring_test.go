package fleet

import (
	"fmt"
	"testing"

	"napel/internal/cache"
)

// testKeys synthesizes a deterministic key set: splitmix64 over the
// index, so key bits are well spread without any randomness source.
func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		z := uint64(i+1) * 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		keys[i] = z ^ (z >> 31)
	}
	return keys
}

func replicaNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:9090", i)
	}
	return out
}

func TestRingShardStableAndOrderIndependent(t *testing.T) {
	reps := replicaNames(4)
	ring := NewRing(reps, 0)
	reversed := []string{reps[3], reps[2], reps[1], reps[0]}
	ring2 := NewRing(reversed, 0)
	for _, key := range testKeys(5000) {
		a := ring.Shard(key)
		if b := ring.Shard(key); b != a {
			t.Fatalf("Shard(%d) unstable: %d then %d", key, a, b)
		}
		// Same membership in a different order must route by the same
		// replica name: the ring is a function of the set, not the slice.
		if reps[a] != reversed[ring2.Shard(key)] {
			t.Fatalf("Shard(%d) depends on construction order", key)
		}
	}
}

func TestRingBalance(t *testing.T) {
	reps := replicaNames(3)
	ring := NewRing(reps, 0)
	var sum float64
	for i := range reps {
		sum += ring.Share(i)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %f, want ~1", sum)
	}
	// Count actual routing of a large key set and check both the
	// empirical split and the analytic Share agree within slack.
	counts := make([]int, len(reps))
	keys := testKeys(30000)
	for _, k := range keys {
		counts[ring.Shard(k)]++
	}
	for i := range reps {
		frac := float64(counts[i]) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("replica %d owns %.1f%% of keys; vnode balance off", i, frac*100)
		}
		if diff := frac - ring.Share(i); diff > 0.02 || diff < -0.02 {
			t.Errorf("replica %d: empirical %.3f vs analytic share %.3f", i, frac, ring.Share(i))
		}
	}
}

// TestRingRemovalMovesOnlyOrphans is the consistent-hash invariant:
// removing a replica relocates exactly the keys that replica owned
// (~1/N of the keyspace) and no others — every surviving replica keeps
// its entire shard.
func TestRingRemovalMovesOnlyOrphans(t *testing.T) {
	reps := replicaNames(4)
	before := NewRing(reps, 0)
	removed := 2
	var survivors []string
	for i, r := range reps {
		if i != removed {
			survivors = append(survivors, r)
		}
	}
	after := NewRing(survivors, 0)

	keys := testKeys(20000)
	moved, orphans := 0, 0
	for _, k := range keys {
		ownerBefore := reps[before.Shard(k)]
		ownerAfter := survivors[after.Shard(k)]
		if before.Shard(k) == removed {
			orphans++
			if ownerAfter == reps[removed] {
				t.Fatalf("key %d still routed to removed replica", k)
			}
			continue
		}
		if ownerBefore != ownerAfter {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving replicas moved; consistent hashing moves only the removed shard", moved)
	}
	frac := float64(orphans) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("removed replica owned %.1f%% of keys, want ~1/4", frac*100)
	}
}

func TestRingSuccessorsDistinctAndConsistent(t *testing.T) {
	reps := replicaNames(5)
	ring := NewRing(reps, 0)
	for _, k := range testKeys(2000) {
		succ := ring.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("want 3 successors, got %d", len(succ))
		}
		if succ[0] != ring.Shard(k) {
			t.Fatalf("first successor %d is not the owner %d", succ[0], ring.Shard(k))
		}
		seen := map[int]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate successor %d for key %d", s, k)
			}
			seen[s] = true
		}
		// The first fallback must be where a ring without the owner
		// would route the key — failover agrees with real removal.
		var without []string
		for i, r := range reps {
			if i != succ[0] {
				without = append(without, r)
			}
		}
		if reps[succ[1]] != without[NewRing(without, 0).Shard(k)] {
			t.Fatalf("successor order disagrees with owner removal for key %d", k)
		}
	}
	if got := ring.Successors(testKeys(1)[0], 10); len(got) != len(reps) {
		t.Fatalf("successors capped at %d, want %d", len(got), len(reps))
	}
}

func TestKeyMixesVersionAndFeatureHash(t *testing.T) {
	if Key("aaaa", 1) == Key("bbbb", 1) {
		t.Fatal("version ignored by Key")
	}
	if Key("aaaa", 1) == Key("aaaa", 2) {
		t.Fatal("feature hash ignored by Key")
	}
}

// TestLRUKeyspacePartitioning drives per-replica cache.LRU instances
// through the ring and asserts the disjoint-keyspace property the gate
// is built on: every repeat of a key hits the same replica's cache, no
// key is resident in two caches, and after a replica removal only the
// orphaned shard re-misses — surviving caches keep their hit streaks.
func TestLRUKeyspacePartitioning(t *testing.T) {
	const version = "0123456789abcdef"
	reps := replicaNames(4)
	ring := NewRing(reps, 0)
	caches := make([]*cache.LRU[uint64, int], len(reps))
	for i := range caches {
		caches[i] = cache.NewLRU[uint64, int](1 << 16)
	}

	feats := testKeys(4000)
	lookup := func(r *Ring, cs []*cache.LRU[uint64, int], feat uint64) (int, bool) {
		shard := r.Shard(Key(version, feat))
		_, hit := cs[shard].Get(feat)
		if !hit {
			cs[shard].Put(feat, shard)
		}
		return shard, hit
	}

	owner := make(map[uint64]int, len(feats))
	for round := 0; round < 3; round++ {
		for _, f := range feats {
			shard, hit := lookup(ring, caches, f)
			if prev, ok := owner[f]; ok {
				if prev != shard {
					t.Fatalf("feature %d routed to replica %d then %d", f, prev, shard)
				}
				if !hit {
					t.Fatalf("feature %d missed on repeat at its own replica", f)
				}
			} else {
				if hit {
					t.Fatalf("feature %d hit before ever being cached", f)
				}
				owner[f] = shard
			}
		}
	}
	// Disjointness: summed residency equals the distinct feature count.
	resident := 0
	for _, c := range caches {
		resident += c.Len()
	}
	if resident != len(feats) {
		t.Fatalf("%d entries resident across caches for %d distinct features; shards overlap", resident, len(feats))
	}

	// Remove replica 1: only its orphaned keys may miss afterwards.
	var survivors []string
	survivorCaches := []*cache.LRU[uint64, int]{}
	for i, r := range reps {
		if i == 1 {
			continue
		}
		survivors = append(survivors, r)
		survivorCaches = append(survivorCaches, caches[i])
	}
	after := NewRing(survivors, 0)
	misses := 0
	for _, f := range feats {
		_, hit := lookup(after, survivorCaches, f)
		if owner[f] != 1 && !hit {
			t.Fatalf("feature %d owned by surviving replica %d missed after unrelated removal", f, owner[f])
		}
		if !hit {
			misses++
		}
	}
	frac := float64(misses) / float64(len(feats))
	if frac > 0.45 {
		t.Fatalf("removal re-missed %.1f%% of keys, want ~1/4", frac*100)
	}
}
