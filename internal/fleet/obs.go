package fleet

import (
	"time"

	"napel/internal/obs"
)

// statusClasses indexes status/100: index 0 aggregates anything exotic.
var statusClasses = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

// fleetObs is the gate's observability surface on a shared internal/obs
// registry. Per-endpoint and per-replica series are pre-resolved at
// construction so the routing hot path touches only lock-free handles.
type fleetObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	start  time.Time

	gateRequests map[string]*[6]*obs.Counter
	gateDuration map[string]*obs.Histogram

	// Per-replica upstream handles live on the replica structs; the vecs
	// are kept to resolve them at construction.
	upstream *obs.CounterVec
	share    *obs.GaugeVec

	hedges      *obs.Counter
	hedgeWins   *obs.Counter
	failovers   *obs.Counter
	fanout      *obs.Histogram
	ready       *obs.Gauge
	rollouts    *obs.Counter
	batchSplit  *obs.Counter
	ringChanges *obs.CounterVec
}

func newFleetObs(tracer *obs.Tracer, endpoints ...string) *fleetObs {
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "napel-gate")
	o := &fleetObs{
		reg:          reg,
		tracer:       tracer,
		start:        time.Now(),
		gateRequests: make(map[string]*[6]*obs.Counter, len(endpoints)),
		gateDuration: make(map[string]*obs.Histogram, len(endpoints)),
	}
	req := reg.CounterVec("napel_fleet_gate_requests_total",
		"Requests completed at the gate by endpoint and status class.", "endpoint", "class")
	dur := reg.HistogramVec("napel_fleet_gate_request_duration_seconds",
		"Gate request latency by endpoint, fanout and reassembly included.", nil, "endpoint")
	for _, ep := range endpoints {
		var handles [6]*obs.Counter
		for ci, class := range statusClasses {
			handles[ci] = req.With(ep, class)
		}
		o.gateRequests[ep] = &handles
		o.gateDuration[ep] = dur.With(ep)
	}
	o.upstream = reg.CounterVec("napel_fleet_requests_total",
		"Upstream attempts by replica and outcome (ok, client_error, error, canceled).",
		"replica", "outcome")
	o.share = reg.GaugeVec("napel_fleet_shard_share",
		"Fraction of the ring keyspace each ready replica owns (0 while unready).",
		"replica")
	o.hedges = reg.Counter("napel_fleet_hedges_total",
		"Hedge requests launched against a slow primary.")
	o.hedgeWins = reg.Counter("napel_fleet_hedge_wins_total",
		"Hedged requests answered by a non-primary replica first.")
	o.failovers = reg.Counter("napel_fleet_failovers_total",
		"Attempts re-routed to a ring successor after an upstream failure.")
	o.fanout = reg.Histogram("napel_fleet_fanout_width",
		"Distinct replicas one batched request was split across.",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16})
	o.ready = reg.Gauge("napel_fleet_replicas_ready",
		"Replicas currently passing their /readyz probe.")
	o.rollouts = reg.Counter("napel_fleet_rolling_reloads_total",
		"Completed fleet-wide rolling reloads.")
	o.batchSplit = reg.Counter("napel_fleet_batches_split_total",
		"Batched predict requests split across shards.")
	o.ringChanges = reg.CounterVec("napel_fleet_ring_changes_total",
		"Ring membership changes by kind (join, evict, readmit, expire, leave).",
		"change")
	return o
}

// observe records one completed gate request.
func (o *fleetObs) observe(endpoint string, status int, d time.Duration) {
	em, ok := o.gateRequests[endpoint]
	if !ok {
		endpoint = "other"
		em = o.gateRequests[endpoint]
	}
	class := status / 100
	if class < 0 || class >= len(em) {
		class = 0
	}
	em[class].Inc()
	o.gateDuration[endpoint].Observe(d.Seconds())
}
