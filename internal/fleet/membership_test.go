package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a minimal replica for membership tests: a real
// listener with a toggleable /readyz and a canned /v1/predict, cheap
// enough to start, kill, and rebind on the same port.
type fakeReplica struct {
	ready    atomic.Bool
	predicts atomic.Int64

	addr string
	url  string
	srv  *http.Server
	ln   net.Listener
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.ready.Store(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.addr = ln.Addr().String()
	f.url = "http://" + f.addr
	f.start(t, ln)
	t.Cleanup(func() { f.stop() })
	return f
}

func (f *fakeReplica) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !f.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"ready":false,"model_version":"v1"}`)
			return
		}
		fmt.Fprintf(w, `{"ready":true,"model_version":"v1"}`)
	})
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		f.predicts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ipc":0.5,"replica":%q}`, f.url)
	})
	return mux
}

func (f *fakeReplica) start(t *testing.T, ln net.Listener) {
	t.Helper()
	f.ln = ln
	f.srv = &http.Server{Handler: f.handler()}
	go f.srv.Serve(ln)
}

func (f *fakeReplica) stop() {
	if f.srv != nil {
		f.srv.Close()
		f.srv = nil
	}
}

// restart rebinds the same address a stopped replica used — the
// "process came back" half of the churn story. The freed port can be
// raced by the OS, so bind with retries.
func (f *fakeReplica) restart(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", f.addr)
		if err == nil {
			f.start(t, ln)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", f.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// joinReplica POSTs one /v1/fleet/join and decodes the response.
func joinReplica(t *testing.T, gateURL, replicaURL string) map[string]any {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"url": replicaURL})
	resp, out := postRaw(t, gateURL+"/v1/fleet/join", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join %s: HTTP %d: %s", replicaURL, resp.StatusCode, out)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	return decoded
}

// TestGateDynamicMembership walks the full self-healing loop on a gate
// started with an empty seed list: three replicas join at runtime, one
// is killed and evicted at the probe-failure threshold, traffic keeps
// flowing with zero hard errors, and the restarted replica is
// readmitted at a higher epoch.
func TestGateDynamicMembership(t *testing.T) {
	g, err := New(Config{EvictThreshold: 2, HedgeAfter: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	g.CheckReplicas(context.Background())
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	if code := getCode(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("empty gate readyz: HTTP %d, want 503", code)
	}

	reps := make([]*fakeReplica, 3)
	for i := range reps {
		reps[i] = newFakeReplica(t)
		res := joinReplica(t, ts.URL, reps[i].url)
		if res["membership"] != "alive" || res["new"] != true {
			t.Fatalf("join %d: %+v, want new alive member", i, res)
		}
	}
	if ep := g.Epoch(); ep != 3 {
		t.Fatalf("epoch after 3 joins = %d, want 3", ep)
	}
	if code := getCode(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz with 3 joined replicas: HTTP %d", code)
	}

	// Snapshot routing, then kill one replica. Until the threshold is
	// reached the ring is unchanged (suspect members still serve).
	before := g.routing.Load()
	if before.ring.Len() != 3 {
		t.Fatalf("ring has %d replicas, want 3", before.ring.Len())
	}
	victim := reps[0]
	victim.stop()
	g.CheckReplicas(context.Background())
	if g.routing.Load().epoch != before.epoch {
		t.Fatal("one failed probe must not change the ring (threshold is 2)")
	}
	g.CheckReplicas(context.Background())
	after := g.routing.Load()
	if after.ring.Len() != 2 || after.epoch <= before.epoch {
		t.Fatalf("eviction: ring=%d epoch %d->%d, want 2 replicas at a higher epoch",
			after.ring.Len(), before.epoch, after.epoch)
	}

	// The epoch-churn property: keys not owned by the evicted replica
	// keep their owner across the epoch.
	moved := 0
	for k := uint64(0); k < 4096; k++ {
		key := mix64(k)
		ownerBefore := before.reps[before.ring.Shard(key)].url
		ownerAfter := after.reps[after.ring.Shard(key)].url
		if ownerBefore == victim.url {
			if ownerAfter == victim.url {
				t.Fatalf("key %d still routed to the evicted replica", key)
			}
			continue
		}
		if ownerAfter != ownerBefore {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving replicas moved across the epoch", moved)
	}

	// Zero hard errors through the gate while a third of the fleet is
	// gone.
	for i := 0; i < 20; i++ {
		resp, body := postRaw(t, ts.URL+"/v1/predict",
			[]byte(fmt.Sprintf(`{"threads":%d}`, i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d during outage: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	if victim.predicts.Load() != 0 {
		t.Fatal("evicted replica received traffic")
	}

	// Recovery: the replica rebinds its port and the next probe pass
	// readmits it at yet another epoch.
	victim.restart(t)
	g.CheckReplicas(context.Background())
	final := g.routing.Load()
	if final.ring.Len() != 3 || final.epoch <= after.epoch {
		t.Fatalf("readmission: ring=%d epoch %d->%d, want 3 replicas at a higher epoch",
			final.ring.Len(), after.epoch, final.epoch)
	}

	var buf bytes.Buffer
	g.Obs().WriteText(&buf)
	for _, want := range []string{
		`napel_fleet_ring_changes_total{change="join"} 3`,
		`napel_fleet_ring_changes_total{change="evict"} 1`,
		`napel_fleet_ring_changes_total{change="readmit"} 1`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want,
				grepMetric(buf.String(), "napel_fleet_ring_changes_total"))
		}
	}
}

// TestGateJoinValidationAndIdempotence: malformed join bodies and URLs
// are refused, a duplicate join is a no-op refresh, and an unready
// replica is registered but held out of the ring until it passes a
// probe.
func TestGateJoinValidationAndIdempotence(t *testing.T) {
	g, err := New(Config{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	for _, bad := range []string{`{}`, `{"url":""}`, `{"url":"not-a-url"}`, `{"url":"ftp://x"}`, `garbage`} {
		resp, _ := postRaw(t, ts.URL+"/v1/fleet/join", []byte(bad))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("join %q: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}

	rep := newFakeReplica(t)
	first := joinReplica(t, ts.URL, rep.url)
	if first["new"] != true || first["membership"] != "alive" {
		t.Fatalf("first join: %+v", first)
	}
	epoch := g.Epoch()
	again := joinReplica(t, ts.URL, rep.url+"/") // trailing slash normalizes away
	if again["new"] != false {
		t.Fatalf("re-join created a new member: %+v", again)
	}
	if g.Epoch() != epoch {
		t.Fatalf("re-join of an alive replica moved the epoch %d -> %d", epoch, g.Epoch())
	}

	// An unready replica joins the roster but not the ring.
	lazy := newFakeReplica(t)
	lazy.ready.Store(false)
	res := joinReplica(t, ts.URL, lazy.url)
	if res["membership"] != "down" {
		t.Fatalf("unready join: %+v, want membership down", res)
	}
	if rt := g.routing.Load(); rt.ring.Len() != 1 {
		t.Fatalf("ring has %d replicas, want 1 (unready member excluded)", rt.ring.Len())
	}
	lazy.ready.Store(true)
	g.CheckReplicas(context.Background())
	if rt := g.routing.Load(); rt.ring.Len() != 2 {
		t.Fatalf("ring has %d replicas after recovery probe, want 2", rt.ring.Len())
	}
}

// TestGateUnreadyEvictsImmediately: a replica that answers its probe
// with ready:false (draining, model gone) leaves the ring on the next
// pass — no threshold, the replica itself said so.
func TestGateUnreadyEvictsImmediately(t *testing.T) {
	rep := newFakeReplica(t)
	g, err := New(Config{Replicas: []string{rep.url}, EvictThreshold: 5, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	g.CheckReplicas(context.Background())
	if rt := g.routing.Load(); rt.ring.Len() != 1 {
		t.Fatal("seed replica not admitted")
	}
	epoch := g.Epoch()

	rep.ready.Store(false)
	g.CheckReplicas(context.Background())
	rt := g.routing.Load()
	if rt.ring.Len() != 0 || rt.epoch <= epoch {
		t.Fatalf("self-reported unready replica still in ring (len=%d epoch %d->%d)",
			rt.ring.Len(), epoch, rt.epoch)
	}
}
