package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"napel/internal/obs"
	"napel/internal/serve"
)

func spanAttr(s obs.SpanRecord, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestGateTracePropagationWithHedge drives one stamped predict through
// gate→2 replicas with the primary stalled so the hedge wins, then
// asserts the full cross-process shape: every span — the gate root, both
// attempts, and the winning replica's server span — carries the client's
// trace id; the gate root is parented under the client's span; the
// winner's server span is parented under the gate attempt that carried
// it; and the canceled attempt is annotated hedge_loser.
func TestGateTracePropagationWithHedge(t *testing.T) {
	f := fixture(t)
	tf := newTestFleet(t, 2, func(c *Config) {
		c.HedgeAfter = 15 * time.Millisecond
	})

	// Find a request owned by replica 0 and stall its owner, as in
	// TestGateHedging, so the hedged attempt always wins the race.
	var req serve.PredictRequest
	rt := tf.gate.routing.Load()
	found := false
	for _, cand := range requests(f, 200) {
		raw, _ := json.Marshal(cand)
		if rt.reps[rt.ring.Shard(tf.gate.routeKey(&cand, raw))] == rt.reps[0] {
			req, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no request routed to replica 0 in 200 candidates")
	}
	slow := tf.replicas[0]
	if slow.ts.URL != rt.reps[0].url {
		for _, r := range tf.replicas {
			if r.ts.URL == rt.reps[0].url {
				slow = r
			}
		}
	}
	slow.delay.Store(int64(400 * time.Millisecond))

	// The client leg: a deterministic traceparent, as napel-loadgen
	// stamps one.
	const clientTrace, clientSpan = uint64(0x10adc11e47), uint64(0x5eed)
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, tf.ts.URL+"/v1/predict", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceParentHeader, obs.FormatTraceParent(clientTrace, clientSpan))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged predict: HTTP %d: %s", resp.StatusCode, body)
	}

	wantTrace := fmt.Sprintf("%016x", clientTrace)

	// The losing attempt's span ends when its cancellation propagates,
	// shortly after the response — poll for the full gate-side shape.
	var root obs.SpanRecord
	var attempts []obs.SpanRecord
	deadline := time.Now().Add(3 * time.Second)
	for {
		root, attempts = obs.SpanRecord{}, nil
		for _, s := range tf.gate.Tracer().Snapshot() {
			if s.TraceID != wantTrace {
				continue
			}
			switch s.Name {
			case "gate.predict":
				root = s
			case "gate.attempt":
				attempts = append(attempts, s)
			}
		}
		if root.SpanID != "" && len(attempts) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never recorded root+2 attempts for trace %s: root=%+v attempts=%d",
				wantTrace, root, len(attempts))
		}
		time.Sleep(10 * time.Millisecond)
	}

	if want := fmt.Sprintf("%016x", clientSpan); root.ParentID != want {
		t.Fatalf("gate root parented under %q, want client span %q", root.ParentID, want)
	}
	var winner, loser obs.SpanRecord
	for _, a := range attempts {
		if a.ParentID != root.SpanID {
			t.Fatalf("attempt parented under %q, want gate root %q", a.ParentID, root.SpanID)
		}
		if spanAttr(a, "hedge_loser") == "true" {
			loser = a
		} else {
			winner = a
		}
	}
	if loser.SpanID == "" {
		t.Fatal("no attempt annotated hedge_loser")
	}
	if winner.SpanID == "" {
		t.Fatal("both attempts annotated hedge_loser")
	}
	if spanAttr(winner, "hedge") != "true" {
		t.Fatalf("winning attempt %+v is not the hedge — the stalled primary should have lost", winner)
	}

	// The winning replica's server span joined the same trace over the
	// wire and parents under exactly the attempt that carried it.
	var fast *testReplica
	for _, r := range tf.replicas {
		if r.ts.URL == spanAttr(winner, "replica") {
			fast = r
		}
	}
	if fast == nil {
		t.Fatalf("winning attempt names unknown replica %q", spanAttr(winner, "replica"))
	}
	var server obs.SpanRecord
	deadline = time.Now().Add(3 * time.Second)
	for server.SpanID == "" {
		for _, s := range fast.srv.Tracer().Snapshot() {
			if s.TraceID == wantTrace && s.Name == "http.predict" {
				server = s
			}
		}
		if server.SpanID == "" {
			if time.Now().After(deadline) {
				t.Fatalf("winning replica never recorded an http.predict span for trace %s", wantTrace)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if server.ParentID != winner.SpanID {
		t.Fatalf("server span parented under %q, want winning attempt %q", server.ParentID, winner.SpanID)
	}
}
