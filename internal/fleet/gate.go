package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"napel/internal/member"
	"napel/internal/obs"
	"napel/internal/resilience"
	"napel/internal/resilience/faultpoint"
	"napel/internal/serve"
)

// fpForward fails a forwarded upstream attempt, exercising failover and
// breaker behavior without touching the replicas.
const fpForward = "fleet.forward"

// Config tunes the gate. Zero fields take the documented defaults.
type Config struct {
	// Replicas are the napel-serve base URLs the gate shards across
	// (e.g. http://127.0.0.1:9191) — the static seed of the membership
	// set. An empty list is legal: replicas announce themselves via
	// POST /v1/fleet/join instead. Order is cosmetic — the ring
	// position of each replica depends only on its URL.
	Replicas []string
	// EvictThreshold is how many consecutive failed /readyz probes
	// evict a replica from the ring (default 3). A replica whose probe
	// answers but reports ready:false is removed immediately —
	// self-reported unreadiness needs no hysteresis.
	EvictThreshold int
	// Logf, when set, receives one line per membership transition
	// (join, evict, readmit).
	Logf func(format string, args ...any)
	// VNodes is the per-replica virtual-node count on the ring (default
	// DefaultVNodes).
	VNodes int
	// HedgeAfter is how long a single predict waits on its primary
	// before launching a hedge to the next ring successor; first
	// response wins and the loser is cancelled (default 30ms; negative
	// disables hedging).
	HedgeAfter time.Duration
	// HealthInterval is the /readyz probe period per replica (default
	// 500ms). Membership changes rebuild the ring.
	HealthInterval time.Duration
	// Budget, when positive, caps the wall-clock spent on one routed
	// request; the remaining budget is split across failover attempts.
	Budget time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds items in one batched predict (default 256).
	MaxBatch int
	// BreakerThreshold is how many consecutive upstream failures trip a
	// replica's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped replica is bypassed before a
	// probe request is allowed through (default 2s).
	BreakerCooldown time.Duration
	// DrainTimeout is how long Run waits for in-flight requests after
	// shutdown is requested (default 10s).
	DrainTimeout time.Duration
	// Client overrides the upstream HTTP client (default: 30s timeout,
	// generous keep-alive pool sized for the fleet).
	Client *http.Client
	// TraceRing bounds the in-memory span ring at /debug/traces.
	TraceRing int
	// TraceSink, when non-nil, receives every completed span as JSONL.
	TraceSink io.Writer
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 30 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.EvictThreshold <= 0 {
		c.EvictThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
			},
		}
	}
	return c
}

// replicaStatus is what the health probe learned from one replica's
// /readyz body.
type replicaStatus struct {
	Ready         bool              `json:"ready"`
	Draining      bool              `json:"draining"`
	Degraded      bool              `json:"degraded"`
	ModelVersion  string            `json:"model_version,omitempty"`
	ModelVersions map[string]string `json:"model_versions,omitempty"`
	Error         string            `json:"error,omitempty"`
}

// replica is one upstream napel-serve process with its routing state.
type replica struct {
	url     string
	breaker *resilience.Breaker

	// Pre-resolved outcome counters for the hot path.
	okC, clientC, errC, canceledC *obs.Counter
	shareG                        *obs.Gauge

	ready atomic.Bool

	mu     sync.Mutex
	status replicaStatus
}

func (r *replica) setStatus(st replicaStatus) {
	r.mu.Lock()
	r.status = st
	r.mu.Unlock()
	r.ready.Store(st.Ready)
}

func (r *replica) getStatus() replicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// routing is one immutable routing generation: the ring plus the
// replica structs aligned with its indices, stamped with the
// membership epoch it was built from. Swapped atomically when
// membership changes.
type routing struct {
	ring  *Ring
	reps  []*replica
	epoch uint64
}

// Gate is the fleet front tier. Create with New, mount via Handler or
// run with Run (which also starts the health loop).
type Gate struct {
	cfg    Config
	o      *fleetObs
	client *http.Client

	// members is probe-driven liveness: EvictThreshold consecutive
	// failures take a replica out of the ring, one success readmits it.
	// Its epoch is what /readyz and /v1/fleet report.
	members *member.Set

	// repMu guards the replica collection, which only ever grows —
	// an evicted replica keeps its struct (and breaker history) so a
	// readmission resumes where it left off.
	repMu sync.Mutex
	all   []*replica
	byURL map[string]*replica

	routing   atomic.Pointer[routing]
	rebuildMu sync.Mutex
	draining  atomic.Bool

	// rollMu serializes rolling reloads; concurrent rollouts would
	// interleave per-replica installs and defeat the version check.
	rollMu sync.Mutex
}

// New validates the seed replica set and builds the gate. The first
// health pass has not run yet: call CheckReplicas (Run does) before
// routing. A gate built with no replicas serves 503 until the first
// /v1/fleet/join.
func New(cfg Config) (*Gate, error) {
	cfg = cfg.withDefaults()
	g := &Gate{
		cfg: cfg,
		o: newFleetObs(obs.NewTracer(cfg.TraceRing, cfg.TraceSink),
			"predict", "suitability", "fleet", "join", "reload", "healthz", "readyz", "metrics", "other"),
		client: cfg.Client,
		byURL:  map[string]*replica{},
	}
	// Seed replicas and joiners alike are held Down until their first
	// passing probe: the ring only ever contains verified members.
	g.members = member.NewSet(member.Config{
		FailThreshold: cfg.EvictThreshold,
		OnChange: func(ev member.Event) {
			g.o.ringChanges.With(ev.Change).Inc()
			if cfg.Logf != nil {
				cfg.Logf("fleet: membership %s %s (epoch %d)", ev.Change, ev.Name, ev.Epoch)
			}
		},
	})
	for _, raw := range cfg.Replicas {
		rep, created, err := g.addReplica(raw)
		if err != nil {
			return nil, err
		}
		if !created {
			return nil, fmt.Errorf("fleet: duplicate replica %q", raw)
		}
		g.members.Join(rep.url, nil)
	}
	m := g.o.reg
	m.GaugeFunc("napel_fleet_uptime_seconds",
		"Seconds since the gate started.", func() float64 { return time.Since(g.o.start).Seconds() })
	m.GaugeFunc("napel_fleet_ring_epoch",
		"Monotonic membership epoch; advances on every ring change.",
		func() float64 { return float64(g.members.Epoch()) })
	m.CounterFunc("napel_chaos_injected_total",
		"Faults fired by the installed chaos plan (0 when chaos is off).",
		func() float64 { return float64(faultpoint.TotalInjected()) })
	obs.RegisterRuntimeMetrics(m)
	return g, nil
}

// addReplica validates url and returns its replica struct, creating it
// on first sight. Replica structs are never removed: an evicted URL
// that rejoins keeps its breaker and upstream counters.
func (g *Gate) addReplica(raw string) (rep *replica, created bool, err error) {
	u := strings.TrimSuffix(strings.TrimSpace(raw), "/")
	if u == "" {
		return nil, false, fmt.Errorf("fleet: empty replica URL")
	}
	parsed, err := url.Parse(u)
	if err != nil || (parsed.Scheme != "http" && parsed.Scheme != "https") || parsed.Host == "" {
		return nil, false, fmt.Errorf("fleet: replica URL %q must be absolute http(s)", raw)
	}
	g.repMu.Lock()
	defer g.repMu.Unlock()
	if rep, ok := g.byURL[u]; ok {
		return rep, false, nil
	}
	rep = &replica{
		url: u,
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Name:             "fleet." + u,
			FailureThreshold: g.cfg.BreakerThreshold,
			OpenTimeout:      g.cfg.BreakerCooldown,
		}),
		okC:       g.o.upstream.With(u, "ok"),
		clientC:   g.o.upstream.With(u, "client_error"),
		errC:      g.o.upstream.With(u, "error"),
		canceledC: g.o.upstream.With(u, "canceled"),
		shareG:    g.o.share.With(u),
	}
	rep.breaker.Register(g.o.reg)
	g.byURL[u] = rep
	g.all = append(g.all, rep)
	return rep, true, nil
}

// replicaList copies the replica collection for iteration outside the
// lock (join order, grow-only).
func (g *Gate) replicaList() []*replica {
	g.repMu.Lock()
	defer g.repMu.Unlock()
	return append([]*replica(nil), g.all...)
}

// Obs exposes the gate's metrics registry (scraping it is equivalent to
// GET /metrics).
func (g *Gate) Obs() *obs.Registry { return g.o.reg }

// Tracer exposes the gate's span tracer, for attaching a push exporter.
func (g *Gate) Tracer() *obs.Tracer { return g.o.tracer }

// Ready reports whether the gate would answer /readyz with 200: not
// draining and at least one replica passing its probe.
func (g *Gate) Ready() bool {
	rt := g.routing.Load()
	return !g.draining.Load() && rt != nil && rt.ring.Len() > 0
}

// CheckReplicas probes every replica's /readyz once, concurrently, and
// rebuilds the ring if membership changed. Run calls it on a timer;
// tests and RollingReload call it directly.
func (g *Gate) CheckReplicas(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range g.replicaList() {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			g.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
	g.rebuild()
}

// probe runs one /readyz pass against rep and reports the outcome to
// the membership set: a transport or protocol failure counts toward
// the eviction threshold, a decoded ready:false evicts immediately
// (the replica itself says it cannot serve), a decoded ready:true
// clears failures and (re)admits.
func (g *Gate) probe(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		rep.setStatus(replicaStatus{Error: err.Error()})
		g.members.ReportFailure(rep.url)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		rep.setStatus(replicaStatus{Error: err.Error()})
		g.members.ReportFailure(rep.url)
		return
	}
	defer resp.Body.Close()
	var st replicaStatus
	// /readyz answers 503 with the same body shape while unready, so
	// decode regardless of status and trust the body's ready flag.
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		rep.setStatus(replicaStatus{Error: fmt.Sprintf("decoding readyz: %v", err)})
		g.members.ReportFailure(rep.url)
		return
	}
	st.Error = ""
	rep.setStatus(st)
	if st.Ready {
		g.members.ReportSuccess(rep.url)
	} else {
		g.members.MarkDown(rep.url)
	}
}

// rebuild swaps in a new routing generation when the membership epoch
// moved past the installed one, and refreshes the shard-share and
// readiness gauges. Epochs make staleness detection exact: equal
// epochs imply an identical alive set.
func (g *Gate) rebuild() {
	g.rebuildMu.Lock()
	defer g.rebuildMu.Unlock()
	alive, epoch := g.members.AliveEpoch()
	g.o.ready.Set(float64(len(alive)))

	cur := g.routing.Load()
	if cur != nil && cur.epoch == epoch {
		return
	}
	g.repMu.Lock()
	reps := make([]*replica, len(alive))
	for i, u := range alive {
		reps[i] = g.byURL[u]
	}
	g.repMu.Unlock()
	next := &routing{ring: NewRing(alive, g.cfg.VNodes), reps: reps, epoch: epoch}
	g.routing.Store(next)
	for _, rep := range g.replicaList() {
		rep.shareG.Set(0)
	}
	for i, rep := range reps {
		rep.shareG.Set(next.ring.Share(i))
	}
}

// Epoch returns the current membership epoch.
func (g *Gate) Epoch() uint64 { return g.members.Epoch() }

// fleetVersion returns the consensus serving version for a model name:
// the version most replicas report, ties broken lexicographically so
// routing is deterministic mid-rollout. Empty when nothing is known.
func (g *Gate) fleetVersion(model string) string {
	counts := map[string]int{}
	for _, rep := range g.replicaList() {
		if !rep.ready.Load() {
			continue
		}
		st := rep.getStatus()
		v := st.ModelVersion
		if model != "" {
			v = st.ModelVersions[model]
		}
		if v != "" {
			counts[v]++
		}
	}
	best, bestN := "", 0
	for v, n := range counts {
		if n > bestN || (n == bestN && v > best) {
			best, bestN = v, n
		}
	}
	return best
}

// upstream is one attempt's result (or a gate-synthesized refusal).
type upstream struct {
	rep        *replica
	status     int
	header     http.Header
	body       []byte
	err        error
	canceled   bool
	hedged     bool
	synth      string // non-empty: gate-synthesized error body
	retryAfter int    // seconds, for synthesized 503s
}

// good reports whether the attempt should count as replica success:
// any response below 500 (4xx blames the request, not the replica).
func (u upstream) good() bool { return u.err == nil && u.status < 500 }

const maxRespBytes = 64 << 20

func synth(status int, msg string, retryAfter int) upstream {
	return upstream{status: status, synth: msg, retryAfter: retryAfter}
}

// send posts body to one replica and reads the full response.
func (g *Gate) send(ctx context.Context, rep *replica, path string, body []byte) upstream {
	if err := faultpoint.Inject(ctx, fpForward); err != nil {
		return upstream{rep: rep, err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+path, bytes.NewReader(body))
	if err != nil {
		return upstream{rep: rep, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectHTTP(ctx, req)
	resp, err := g.client.Do(req)
	if err != nil {
		return upstream{rep: rep, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	if err != nil {
		return upstream{rep: rep, err: err}
	}
	return upstream{rep: rep, status: resp.StatusCode, header: resp.Header, body: data}
}

// attempt launches one asynchronous upstream try. The goroutine itself
// records the breaker and metric outcome — even when the main loop has
// already returned with another replica's answer — so accounting never
// depends on who is still listening. A loser cancelled by
// first-response-wins records no failure: being slower is not being
// broken.
func (g *Gate) attempt(ctx context.Context, rep *replica, path string, body []byte, budget time.Duration, hedged bool, resCh chan<- upstream) context.CancelFunc {
	actx, cancel := context.WithCancelCause(ctx)
	go func() {
		// The attempt span parents under the gate's request span and is
		// what the replica's server span parents under in turn (send
		// injects this span's identity), so a fleet trace shows exactly
		// which attempt — primary or hedge — each replica answer belongs
		// to.
		sctx, span := obs.StartSpan(actx, "gate.attempt")
		span.SetAttr("replica", rep.url)
		if hedged {
			span.SetAttr("hedge", "true")
		}
		bctx, bcancel := resilience.WithBudget(sctx, budget)
		u := g.send(bctx, rep, path, body)
		bcancel()
		u.hedged = hedged
		switch {
		case u.err != nil && errors.Is(context.Cause(actx), errLostRace):
			u.canceled = true
			// Cancellation only happens via first-response-wins: another
			// attempt's answer was already accepted, making this one the
			// losing half of the race.
			span.SetAttr("hedge_loser", "true")
			rep.canceledC.Inc()
			// Release a half-open probe slot without claiming evidence:
			// the attempt was cancelled because another replica answered
			// first, not because this one failed.
			if rep.breaker.State() == resilience.BreakerHalfOpen {
				rep.breaker.RecordSuccess()
			}
		case u.good():
			span.SetAttrInt("status", int64(u.status))
			rep.breaker.RecordSuccess()
			if u.status >= 400 {
				rep.clientC.Inc()
			} else {
				rep.okC.Inc()
			}
		default:
			span.SetAttrInt("status", int64(u.status))
			span.SetError(u.err)
			rep.breaker.RecordFailure()
			rep.errC.Inc()
		}
		span.End()
		resCh <- u
	}()
	return func() { cancel(errLostRace) }
}

// errLostRace is the cancellation cause forward stamps on attempts it
// no longer needs because another replica's answer was accepted. The
// explicit cause — rather than comparing actx/parent Err() — keeps the
// loser classification exact even when the request context is torn down
// (handler returned, client gone) before the loser's goroutine wakes.
var errLostRace = errors.New("fleet: attempt lost the first-response race")

// forward routes one request body to the replica owning key, with
// breaker-aware failover along the ring successor order and (for single
// predicts) a hedge to the next successor when the primary is slow.
// First response wins; losers are cancelled.
func (g *Gate) forward(ctx context.Context, key uint64, path string, body []byte, hedge bool) upstream {
	rt := g.routing.Load()
	if rt == nil || rt.ring.Len() == 0 {
		return synth(http.StatusServiceUnavailable, "fleet: no ready replicas", 1)
	}
	order := rt.ring.Successors(key, rt.ring.Len())
	candidates := make([]*replica, len(order))
	for i, idx := range order {
		candidates[i] = rt.reps[idx]
	}

	// The failover chain is sequential, so the request budget is split
	// across the attempts we expect to make (primary + one more).
	per := resilience.SplitBudget(ctx, 2, 25*time.Millisecond)

	resCh := make(chan upstream, len(candidates))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	launchIdx, launched := 0, 0
	launch := func(hedged bool) bool {
		for launchIdx < len(candidates) {
			rep := candidates[launchIdx]
			launchIdx++
			if rep.breaker.Allow() != nil {
				continue // short-circuit counted by the breaker's own metric
			}
			cancels = append(cancels, g.attempt(ctx, rep, path, body, per, hedged, resCh))
			launched++
			return true
		}
		return false
	}
	if !launch(false) {
		return synth(http.StatusServiceUnavailable, "fleet: every replica breaker is open",
			g.minRetryIn(candidates))
	}

	var hedgeC <-chan time.Time
	if hedge && g.cfg.HedgeAfter > 0 && len(candidates) > 1 {
		timer := time.NewTimer(g.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}

	var last upstream
	for received := 0; received < launched; {
		select {
		case u := <-resCh:
			received++
			if u.canceled {
				continue
			}
			if u.good() {
				if u.hedged {
					g.o.hedgeWins.Inc()
				}
				return u
			}
			last = u
			if launch(false) {
				g.o.failovers.Inc()
			}
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				g.o.hedges.Inc()
			}
		case <-ctx.Done():
			return synth(http.StatusGatewayTimeout, "fleet: request budget exhausted", 1)
		}
	}
	if last.rep == nil && last.synth == "" {
		return synth(http.StatusServiceUnavailable, "fleet: all attempts cancelled", 1)
	}
	return last
}

func (g *Gate) minRetryIn(candidates []*replica) int {
	min := 1
	for i, rep := range candidates {
		secs := int(rep.breaker.RetryIn()/time.Second) + 1
		if i == 0 || secs < min {
			min = secs
		}
	}
	return min
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// routeKey computes the ring key for one predict request: the fleet's
// consensus model version plus the same feature-vector hash replicas
// key their response caches on. Unassemblable requests route on the raw
// body, so the owning replica produces the error verbatim.
func (g *Gate) routeKey(req *serve.PredictRequest, raw []byte) uint64 {
	version := g.fleetVersion(req.Model)
	featHash, err := req.RouteHash()
	if err != nil {
		return Key(version, hashBytes(raw))
	}
	return Key(version, featHash)
}

func (g *Gate) writeUpstream(w http.ResponseWriter, u upstream) {
	if u.synth != "" {
		if u.retryAfter > 0 && u.status != http.StatusGatewayTimeout {
			w.Header().Set("Retry-After", strconv.Itoa(u.retryAfter))
		}
		writeError(w, u.status, u.synth)
		return
	}
	if u.err != nil {
		writeError(w, http.StatusBadGateway, "fleet: upstream: "+u.err.Error())
		return
	}
	ct := u.header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	if ra := u.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(u.status)
	w.Write(u.body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (g *Gate) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if first := firstByte(body); first == '[' {
		g.predictBatch(w, r.Context(), body)
		return
	}
	var req serve.PredictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		// Forward anyway: the owning-by-raw-hash replica produces the
		// same 400 a direct hit would.
		u := g.forward(r.Context(), Key(g.fleetVersion(""), hashBytes(body)), "/v1/predict", body, false)
		g.writeUpstream(w, u)
		return
	}
	u := g.forward(r.Context(), g.routeKey(&req, body), "/v1/predict", body, true)
	g.writeUpstream(w, u)
}

// predictBatch splits a batched body per shard, fans the sub-batches
// out concurrently, and reassembles the responses in request order.
// Item bodies are forwarded as the raw JSON the client sent (no
// re-marshalling), so replicas see byte-identical items.
func (g *Gate) predictBatch(w http.ResponseWriter, ctx context.Context, body []byte) {
	var raws []json.RawMessage
	var reqs []serve.PredictRequest
	if err := json.Unmarshal(body, &raws); err != nil || len(raws) == 0 {
		// Malformed or empty array: one replica answers exactly as a
		// direct hit would (400).
		u := g.forward(ctx, Key(g.fleetVersion(""), hashBytes(body)), "/v1/predict", body, false)
		g.writeUpstream(w, u)
		return
	}
	if err := json.Unmarshal(body, &reqs); err != nil {
		u := g.forward(ctx, Key(g.fleetVersion(""), hashBytes(body)), "/v1/predict", body, false)
		g.writeUpstream(w, u)
		return
	}
	if len(reqs) > g.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), g.cfg.MaxBatch))
		return
	}

	rt := g.routing.Load()
	if rt == nil || rt.ring.Len() == 0 {
		g.writeUpstream(w, synth(http.StatusServiceUnavailable, "fleet: no ready replicas", 1))
		return
	}
	keys := make([]uint64, len(reqs))
	groups := map[int][]int{}
	for i := range reqs {
		keys[i] = g.routeKey(&reqs[i], raws[i])
		shard := rt.ring.Shard(keys[i])
		groups[shard] = append(groups[shard], i)
	}
	g.o.fanout.Observe(float64(len(groups)))
	if len(groups) > 1 {
		g.o.batchSplit.Inc()
	}

	results := make([]serve.PredictResponse, len(reqs))
	var wg sync.WaitGroup
	for _, idxs := range groups {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			sub := joinRaw(raws, idxs)
			u := g.forward(ctx, keys[idxs[0]], "/v1/predict", sub, false)
			fillGroup(results, idxs, u)
		}(idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, results)
}

// joinRaw builds a JSON array from the selected raw elements.
func joinRaw(raws []json.RawMessage, idxs []int) []byte {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, idx := range idxs {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(raws[idx])
	}
	buf.WriteByte(']')
	return buf.Bytes()
}

// fillGroup scatters one shard's response back into request order. A
// failed shard degrades to inline per-item errors — the same contract
// replicas use for bad items, so one dead shard cannot fail the batch.
func fillGroup(results []serve.PredictResponse, idxs []int, u upstream) {
	fail := func(msg string) {
		for _, idx := range idxs {
			results[idx] = serve.PredictResponse{Error: msg}
		}
	}
	switch {
	case u.synth != "":
		fail(u.synth)
		return
	case u.err != nil:
		fail("fleet: upstream: " + u.err.Error())
		return
	case u.status != http.StatusOK:
		fail(fmt.Sprintf("fleet: shard answered HTTP %d: %s", u.status, truncate(u.body, 200)))
		return
	}
	var resps []serve.PredictResponse
	if err := json.Unmarshal(u.body, &resps); err != nil {
		fail("fleet: decoding shard response: " + err.Error())
		return
	}
	if len(resps) != len(idxs) {
		fail(fmt.Sprintf("fleet: shard returned %d items for %d requests", len(resps), len(idxs)))
		return
	}
	for j, idx := range idxs {
		results[idx] = resps[j]
	}
}

func (g *Gate) handleSuitability(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req serve.SuitabilityRequest
	key := Key(g.fleetVersion(""), hashBytes(body))
	if err := json.Unmarshal(body, &req); err == nil {
		key = g.routeKey(&req.PredictRequest, body)
	}
	u := g.forward(r.Context(), key, "/v1/suitability", body, true)
	g.writeUpstream(w, u)
}

// replicaView is the per-replica block of the /v1/fleet status body.
type replicaView struct {
	URL string `json:"url"`
	replicaStatus
	// Membership is the member-set state (alive, suspect, down) with
	// the consecutive probe-failure count behind it.
	Membership string  `json:"membership"`
	Fails      int     `json:"fails,omitempty"`
	Breaker    string  `json:"breaker"`
	Share      float64 `json:"share"`
}

func (g *Gate) fleetStatus() map[string]any {
	rt := g.routing.Load()
	shares := map[string]float64{}
	readyN := 0
	if rt != nil {
		for i, rep := range rt.reps {
			shares[rep.url] = rt.ring.Share(i)
		}
		readyN = rt.ring.Len()
	}
	reps := g.replicaList()
	views := make([]replicaView, 0, len(reps))
	for _, rep := range reps {
		info, _ := g.members.Get(rep.url)
		views = append(views, replicaView{
			URL:           rep.url,
			replicaStatus: rep.getStatus(),
			Membership:    info.State.String(),
			Fails:         info.Fails,
			Breaker:       rep.breaker.State().String(),
			Share:         shares[rep.url],
		})
	}
	return map[string]any{
		"ready":          g.Ready(),
		"epoch":          g.members.Epoch(),
		"replicas":       views,
		"replicas_ready": readyN,
		"model_version":  g.fleetVersion(""),
	}
}

func (g *Gate) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.fleetStatus())
}

// handleJoin admits a replica announced at runtime: the URL is
// validated, probed synchronously, and — if its /readyz passes — in
// the ring before the call returns. Joining is idempotent; a known URL
// just refreshes its membership record.
func (g *Gate) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		writeError(w, http.StatusBadRequest, `fleet: join body must be {"url": "http://host:port"}`)
		return
	}
	rep, created, err := g.addReplica(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	g.members.Join(rep.url, nil)
	g.probe(r.Context(), rep)
	g.rebuild()
	info, _ := g.members.Get(rep.url)
	writeJSON(w, http.StatusOK, map[string]any{
		"url":        rep.url,
		"new":        created,
		"membership": info.State.String(),
		"epoch":      g.members.Epoch(),
	})
}

func (g *Gate) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := g.fleetStatus()
	if g.Ready() {
		writeJSON(w, http.StatusOK, st)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, st)
}

func (g *Gate) handleHealthz(w http.ResponseWriter, r *http.Request) {
	alive, epoch := g.members.AliveEpoch()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"replicas":       len(g.replicaList()),
		"replicas_ready": len(alive),
		"epoch":          epoch,
		"uptime_seconds": time.Since(g.o.start).Seconds(),
	})
}

func (g *Gate) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	g.o.reg.WriteText(w)
}

func (g *Gate) handleReload(w http.ResponseWriter, r *http.Request) {
	results, err := g.RollingReload(r.Context())
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":    err.Error(),
			"replicas": results,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"reloaded": true, "replicas": results})
}

// Handler returns the routed gate handler.
func (g *Gate) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/healthz", g.instrument("healthz", http.MethodGet, g.handleHealthz))
	mux.Handle("/readyz", g.instrument("readyz", http.MethodGet, g.handleReadyz))
	mux.Handle("/metrics", g.instrument("metrics", http.MethodGet, g.handleMetrics))
	mux.Handle("/v1/predict", g.instrument("predict", http.MethodPost, g.handlePredict))
	mux.Handle("/v1/suitability", g.instrument("suitability", http.MethodPost, g.handleSuitability))
	mux.Handle("/v1/fleet", g.instrument("fleet", http.MethodGet, g.handleFleet))
	mux.Handle("/v1/fleet/join", g.instrument("join", http.MethodPost, g.handleJoin))
	mux.Handle("/v1/fleet/reload", g.instrument("reload", http.MethodPost, g.handleReload))
	mux.Handle("/", g.instrument("other", "", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no route %s", r.URL.Path))
	}))
	obs.MountDebug(mux, g.o.tracer)
	return mux
}

// instrument wraps a handler with method check, drain refusal, body
// limits, the optional request budget, a root span and per-endpoint
// metrics. Probes bypass the drain refusal.
func (g *Gate) instrument(endpoint, method string, h http.HandlerFunc) http.Handler {
	probe := endpoint == "healthz" || endpoint == "readyz"
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		ctx, span := obs.StartSpan(obs.ExtractHTTP(obs.WithTracer(r.Context(), g.o.tracer), r), "gate."+endpoint)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)

		switch {
		case method != "" && r.Method != method:
			writeError(rec, http.StatusMethodNotAllowed, fmt.Sprintf("%s requires %s", r.URL.Path, method))
		case !probe && g.draining.Load():
			rec.Header().Set("Retry-After", "1")
			writeError(rec, http.StatusServiceUnavailable, "gate is draining")
		default:
			r = r.WithContext(ctx)
			r.Body = http.MaxBytesReader(rec, r.Body, g.cfg.MaxBodyBytes)
			if g.cfg.Budget > 0 && (endpoint == "predict" || endpoint == "suitability") {
				bctx, cancel := resilience.WithBudget(ctx, g.cfg.Budget)
				h(rec, r.WithContext(bctx))
				cancel()
			} else {
				h(rec, r)
			}
		}

		dur := time.Since(start)
		span.SetAttrInt("status", int64(rec.status))
		span.End()
		g.o.observe(endpoint, rec.status, dur)
	})
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// Run serves on addr until ctx is cancelled, probing replicas at
// HealthInterval, then drains in-flight requests for up to DrainTimeout.
func (g *Gate) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return g.serve(ctx, ln)
}

func (g *Gate) serve(ctx context.Context, ln net.Listener) error {
	g.CheckReplicas(ctx)
	srv := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	healthCtx, stopHealth := context.WithCancel(ctx)
	defer stopHealth()
	go func() {
		ticker := time.NewTicker(g.cfg.HealthInterval)
		defer ticker.Stop()
		for {
			select {
			case <-healthCtx.Done():
				return
			case <-ticker.C:
				g.CheckReplicas(healthCtx)
			}
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	g.draining.Store(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), g.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("fleet: drain incomplete after %s: %w", g.cfg.DrainTimeout, err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// firstByte returns the first non-whitespace byte of b, or 0.
func firstByte(b []byte) byte {
	trimmed := bytes.TrimLeft(b, " \t\r\n")
	if len(trimmed) == 0 {
		return 0
	}
	return trimmed[0]
}

func truncate(b []byte, n int) string {
	s := string(bytes.TrimSpace(b))
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}
