package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"napel/internal/napel"
	"napel/internal/pisa"
	"napel/internal/serve"
	"napel/internal/workload"
)

// The fixture trains two small predictors once (DoE collection
// dominates test time) — the same shape serve's own fixture uses, but
// fleet tests live in another package and need their own copy.
type fixtureData struct {
	dir     string
	modelA  string
	modelB  string
	prof    *pisa.Profile
	threads int
	err     error
}

var (
	fixtureOnce sync.Once
	fixtureVal  fixtureData
)

func fixture(t *testing.T) *fixtureData {
	t.Helper()
	fixtureOnce.Do(func() { fixtureVal = buildFixture() })
	if fixtureVal.err != nil {
		t.Fatalf("building fixture: %v", fixtureVal.err)
	}
	return &fixtureVal
}

func buildFixture() fixtureData {
	var f fixtureData
	opts := napel.DefaultOptions()
	opts.ScaleFactor = 32
	opts.MaxIters = 1
	opts.TestScaleFactor = 16
	opts.TestMaxIters = 1
	opts.ProfileBudget = 30_000
	opts.SimBudget = 30_000
	opts.TrainArchs = opts.TrainArchs[:2]

	k, err := workload.ByName("atax")
	if err != nil {
		f.err = err
		return f
	}
	td, err := napel.Collect([]workload.Kernel{k}, opts)
	if err != nil {
		f.err = err
		return f
	}
	predA, err := napel.Train(td, 42)
	if err != nil {
		f.err = err
		return f
	}
	predB, err := napel.Train(td, 7)
	if err != nil {
		f.err = err
		return f
	}
	f.dir, err = os.MkdirTemp("", "napel-fleet-test")
	if err != nil {
		f.err = err
		return f
	}
	f.modelA = filepath.Join(f.dir, "model-a.json")
	f.modelB = filepath.Join(f.dir, "model-b.json")
	if f.err = saveModel(predA, f.modelA); f.err != nil {
		return f
	}
	if f.err = saveModel(predB, f.modelB); f.err != nil {
		return f
	}
	in := workload.Scale(k, workload.TestInput(k), opts.TestScaleFactor, opts.TestMaxIters)
	prof, err := napel.ProfileKernel(k, in, opts.ProfileBudget)
	if err != nil {
		f.err = err
		return f
	}
	f.prof = prof
	f.threads = in.Threads()
	return f
}

func saveModel(p *napel.Predictor, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := p.Save(out); err != nil {
		return err
	}
	return out.Close()
}

// testReplica is one live napel-serve instance behind a toggleable
// fault/delay middleware, so tests can make a single replica slow or
// flaky without process-global fault points.
type testReplica struct {
	srv       *serve.Server
	ts        *httptest.Server
	modelPath string

	predicts  atomic.Int64
	delay     atomic.Int64 // ns added to /v1/predict
	failEvery atomic.Int64 // >0: every Nth predict answers 500
	failSeq   atomic.Int64
}

func (r *testReplica) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/v1/predict" {
			r.predicts.Add(1)
			if d := r.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if n := r.failEvery.Load(); n > 0 && r.failSeq.Add(1)%n == 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				w.Write([]byte(`{"error":"injected replica fault"}`))
				return
			}
		}
		next.ServeHTTP(w, req)
	})
}

// testFleet is a gate over n real replicas, each serving its own copy
// of model A.
type testFleet struct {
	gate     *Gate
	ts       *httptest.Server
	replicas []*testReplica
}

func newTestFleet(t *testing.T, n int, mod func(*Config)) *testFleet {
	t.Helper()
	f := fixture(t)
	modelA, err := os.ReadFile(f.modelA)
	if err != nil {
		t.Fatal(err)
	}

	tf := &testFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		rep := &testReplica{
			modelPath: filepath.Join(t.TempDir(), fmt.Sprintf("model-%d.json", i)),
		}
		if err := os.WriteFile(rep.modelPath, modelA, 0o644); err != nil {
			t.Fatal(err)
		}
		rep.srv, err = serve.New(serve.Config{
			ModelPaths:   map[string]string{serve.DefaultModelName: rep.modelPath},
			CacheEntries: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.ts = httptest.NewServer(rep.middleware(rep.srv.Handler()))
		t.Cleanup(rep.ts.Close)
		tf.replicas = append(tf.replicas, rep)
		urls[i] = rep.ts.URL
	}

	cfg := Config{
		Replicas:   urls,
		HedgeAfter: -1, // tests opt in explicitly
	}
	if mod != nil {
		mod(&cfg)
	}
	tf.gate, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tf.gate.CheckReplicas(context.Background())
	tf.ts = httptest.NewServer(tf.gate.Handler())
	t.Cleanup(tf.ts.Close)
	if !tf.gate.Ready() {
		t.Fatal("gate not ready after health pass")
	}
	return tf
}

func makeRequest(f *fixtureData, arch serve.WireArch, threads int) serve.PredictRequest {
	return serve.PredictRequest{Profile: serve.NewWireProfile(f.prof), Arch: arch, Threads: threads}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, url, data)
}

func postRaw(t *testing.T, url string, data []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// requests generates n distinct predict requests by varying the arch.
func requests(f *fixtureData, n int) []serve.PredictRequest {
	out := make([]serve.PredictRequest, n)
	for i := range out {
		out[i] = makeRequest(f, serve.WireArch{PEs: 1 + i%32, FreqGHz: 1.25 + 0.25*float64(i/32)}, f.threads)
	}
	return out
}

// TestGateIdentityAndStableRouting: gate answers must be byte-identical
// to direct replica hits, and repeat requests must land on the replica
// that cached them.
func TestGateIdentityAndStableRouting(t *testing.T) {
	f := fixture(t)
	tf := newTestFleet(t, 3, nil)

	reqs := requests(f, 60)
	for i, req := range reqs {
		resp, body := postJSON(t, tf.ts.URL+"/v1/predict", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("req %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var pr serve.PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Cached {
			t.Fatalf("req %d: fresh request reported cached", i)
		}
	}

	// Round 2: every repeat must hit the owning replica's cache — the
	// N-disjoint-LRUs property the ring exists for.
	for i, req := range reqs {
		gateResp, gateBody := postJSON(t, tf.ts.URL+"/v1/predict", req)
		if gateResp.StatusCode != http.StatusOK {
			t.Fatalf("repeat %d: HTTP %d", i, gateResp.StatusCode)
		}
		var pr serve.PredictResponse
		if err := json.Unmarshal(gateBody, &pr); err != nil {
			t.Fatal(err)
		}
		if !pr.Cached {
			t.Fatalf("repeat %d missed the fleet cache: routing is not stable", i)
		}

		// Bit-identical to a direct hit on the owning replica.
		raw, _ := json.Marshal(req)
		key := tf.gate.routeKey(&reqs[i], raw)
		rt := tf.gate.routing.Load()
		owner := rt.reps[rt.ring.Shard(key)]
		_, directBody := postRaw(t, owner.url+"/v1/predict", raw)
		if !bytes.Equal(gateBody, directBody) {
			t.Fatalf("repeat %d: gate body differs from direct replica hit:\n gate: %s\ndirect: %s",
				i, gateBody, directBody)
		}
	}

	// The keyspace actually spread: every replica served something.
	for i, rep := range tf.replicas {
		if rep.predicts.Load() == 0 {
			t.Errorf("replica %d never saw a predict across 60 keys", i)
		}
	}
}

// TestGateBatchSplitReassembly: a batched body is split per shard,
// fanned out, and reassembled in request order with per-item answers
// identical to single predicts.
func TestGateBatchSplitReassembly(t *testing.T) {
	f := fixture(t)
	tf := newTestFleet(t, 3, nil)

	reqs := requests(f, 24)
	resp, body := postJSON(t, tf.ts.URL+"/v1/predict", reqs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d: %s", resp.StatusCode, body)
	}
	var got []serve.PredictResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("batch returned %d items for %d requests", len(got), len(reqs))
	}

	// Order check: item i's answer must equal a direct single predict
	// of request i (any replica computes the same model).
	direct := tf.replicas[0].ts.URL
	for i, req := range reqs {
		if got[i].Error != "" {
			t.Fatalf("item %d errored: %s", i, got[i].Error)
		}
		_, single := postJSON(t, direct+"/v1/predict", req)
		var want serve.PredictResponse
		if err := json.Unmarshal(single, &want); err != nil {
			t.Fatal(err)
		}
		if got[i].IPC != want.IPC || got[i].EDP != want.EDP || got[i].TimeSec != want.TimeSec {
			t.Fatalf("item %d out of order: got %+v want %+v", i, got[i], want)
		}
	}

	// The batch genuinely fanned out.
	served := 0
	for _, rep := range tf.replicas {
		if rep.predicts.Load() > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("batch of 24 touched %d replicas, want >= 2", served)
	}
	var buf bytes.Buffer
	tf.gate.Obs().WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("napel_fleet_batches_split_total 1")) {
		t.Fatalf("batches_split_total not incremented:\n%s",
			grepMetric(buf.String(), "napel_fleet_batches_split_total"))
	}
}

// TestGateBatchMalformedPassthrough: bodies the gate cannot split are
// forwarded whole so the replica's own 400 reaches the client.
func TestGateBatchMalformedPassthrough(t *testing.T) {
	tf := newTestFleet(t, 2, nil)
	resp, body := postRaw(t, tf.ts.URL+"/v1/predict", []byte(`[{"threads": "not-a-number"}]`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, _ = postRaw(t, tf.ts.URL+"/v1/predict", []byte(`{not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed single: HTTP %d", resp.StatusCode)
	}
}

// TestGateHedging: when the owning replica stalls, the gate hedges to
// the next ring successor and the fast answer wins.
func TestGateHedging(t *testing.T) {
	f := fixture(t)
	tf := newTestFleet(t, 3, func(c *Config) {
		c.HedgeAfter = 15 * time.Millisecond
	})

	// Find a request owned by replica 0.
	var req serve.PredictRequest
	rt := tf.gate.routing.Load()
	found := false
	for _, cand := range requests(f, 200) {
		raw, _ := json.Marshal(cand)
		if rt.reps[rt.ring.Shard(tf.gate.routeKey(&cand, raw))] == rt.reps[0] {
			req, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no request routed to replica 0 in 200 candidates")
	}
	slow := tf.replicas[0]
	if slow.ts.URL != rt.reps[0].url {
		// routing snapshot order matches construction order of ready reps
		for _, r := range tf.replicas {
			if r.ts.URL == rt.reps[0].url {
				slow = r
			}
		}
	}
	slow.delay.Store(int64(400 * time.Millisecond))

	start := time.Now()
	resp, body := postJSON(t, tf.ts.URL+"/v1/predict", req)
	dur := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged predict: HTTP %d: %s", resp.StatusCode, body)
	}
	if dur >= 400*time.Millisecond {
		t.Fatalf("answer took %s: hedge never raced the stalled primary", dur)
	}
	var buf bytes.Buffer
	tf.gate.Obs().WriteText(&buf)
	for _, want := range []string{"napel_fleet_hedges_total 1", "napel_fleet_hedge_wins_total 1"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, grepMetric(buf.String(), "napel_fleet_hedge"))
		}
	}
}

// TestGateFailoverAndBreaker: a hard-failing replica's keys fail over
// to ring successors with zero client-visible errors, and its breaker
// opens so later requests skip it entirely.
func TestGateFailoverAndBreaker(t *testing.T) {
	f := fixture(t)
	tf := newTestFleet(t, 3, func(c *Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = time.Minute
	})
	dead := tf.replicas[2]
	dead.failEvery.Store(1) // every predict answers 500

	for i, req := range requests(f, 40) {
		resp, body := postJSON(t, tf.ts.URL+"/v1/predict", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("req %d during replica outage: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}

	var deadRep *replica
	for _, rep := range tf.gate.all {
		if rep.url == dead.ts.URL {
			deadRep = rep
		}
	}
	if got := deadRep.breaker.State().String(); got != "open" {
		t.Fatalf("failing replica breaker state = %s, want open", got)
	}
	var buf bytes.Buffer
	tf.gate.Obs().WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("napel_fleet_failovers_total")) {
		t.Fatal("failovers_total missing from metrics")
	}

	// With the breaker open the dead replica is skipped pre-flight:
	// its predict count stops growing.
	before := dead.predicts.Load()
	for _, req := range requests(f, 20) {
		resp, _ := postJSON(t, tf.ts.URL+"/v1/predict", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("req with open breaker: HTTP %d", resp.StatusCode)
		}
	}
	if after := dead.predicts.Load(); after != before {
		t.Fatalf("open breaker still let %d requests through", after-before)
	}
}

// TestGateFlakyReplicaChaos: one replica failing 20% of predicts must
// not surface a single hard error through the gate — the acceptance
// criterion's chaos leg, replica-scoped instead of process-global.
func TestGateFlakyReplicaChaos(t *testing.T) {
	f := fixture(t)
	tf := newTestFleet(t, 3, func(c *Config) {
		c.BreakerThreshold = 5
		c.BreakerCooldown = 100 * time.Millisecond
	})
	tf.replicas[1].failEvery.Store(5) // 20% of predicts answer 500

	rng := rand.New(rand.NewSource(11))
	reqs := requests(f, 64)
	hard := 0
	for i := 0; i < 200; i++ {
		req := reqs[rng.Intn(len(reqs))]
		resp, _ := postJSON(t, tf.ts.URL+"/v1/predict", req)
		if resp.StatusCode >= 500 {
			hard++
		}
	}
	if hard != 0 {
		t.Fatalf("%d hard errors leaked through the gate under 20%% replica faults", hard)
	}
}

// TestGateRollingReload upgrades every replica's model file and rolls
// the fleet while clients hammer the gate: zero failed requests, and
// every replica ends on the new version.
func TestGateRollingReload(t *testing.T) {
	f := fixture(t)
	tf := newTestFleet(t, 3, nil)

	oldVersion := tf.gate.fleetVersion("")
	modelB, err := os.ReadFile(f.modelB)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range tf.replicas {
		if err := os.WriteFile(rep.modelPath, modelB, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent load during the roll: every request must succeed.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Int64
	reqs := requests(f, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, _ := postJSON(t, tf.ts.URL+"/v1/predict", reqs[(w+i)%len(reqs)])
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}(w)
	}

	resp, body := postRaw(t, tf.ts.URL+"/v1/fleet/reload", nil)
	close(stop)
	wg.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rolling reload: HTTP %d: %s", resp.StatusCode, body)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed during the rolling reload", n)
	}

	var rollResp struct {
		Reloaded bool                  `json:"reloaded"`
		Replicas []ReplicaReloadResult `json:"replicas"`
	}
	if err := json.Unmarshal(body, &rollResp); err != nil {
		t.Fatal(err)
	}
	if len(rollResp.Replicas) != 3 {
		t.Fatalf("roll covered %d replicas, want 3", len(rollResp.Replicas))
	}
	newVersion := rollResp.Replicas[0].ModelVersion
	if newVersion == "" || newVersion == oldVersion {
		t.Fatalf("roll did not change the version: old=%s new=%s", oldVersion, newVersion)
	}
	for _, r := range rollResp.Replicas {
		if !r.OK || r.ModelVersion != newVersion {
			t.Fatalf("replica %s: %+v, want ok on %s", r.URL, r, newVersion)
		}
	}
	if v := tf.gate.fleetVersion(""); v != newVersion {
		t.Fatalf("fleet version %s after roll, want %s", v, newVersion)
	}
	var buf bytes.Buffer
	tf.gate.Obs().WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("napel_fleet_rolling_reloads_total 1")) {
		t.Fatal("rolling_reloads_total not incremented")
	}
}

// TestGateReadyzTracksReplicas: the gate is unready when every replica
// is gone and recovers when they return.
func TestGateReadyzTracksReplicas(t *testing.T) {
	tf := newTestFleet(t, 2, nil)

	code := getCode(t, tf.ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz with healthy fleet: HTTP %d", code)
	}

	for _, rep := range tf.replicas {
		rep.ts.Close()
	}
	// Transport failures evict only at the threshold (default 3): one
	// failed probe leaves a replica suspect and still serving.
	for i := 0; i < 3; i++ {
		tf.gate.CheckReplicas(context.Background())
	}
	if code := getCode(t, tf.ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet: HTTP %d, want 503", code)
	}
	resp, body := postJSON(t, tf.ts.URL+"/v1/predict",
		makeRequest(fixture(t), serve.WireArch{}, fixtureVal.threads))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict with dead fleet: HTTP %d: %s", resp.StatusCode, body)
	}
}

// TestGateSuitabilityPassthrough: the composite endpoint routes on the
// embedded predict request and forwards the body verbatim.
func TestGateSuitabilityPassthrough(t *testing.T) {
	f := fixture(t)
	tf := newTestFleet(t, 3, nil)
	req := serve.SuitabilityRequest{
		PredictRequest: makeRequest(f, serve.WireArch{}, f.threads),
		Host:           serve.WireHost{TimeSec: 0.5, EnergyJ: 30},
	}
	resp, gateBody := postJSON(t, tf.ts.URL+"/v1/suitability", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suitability: HTTP %d: %s", resp.StatusCode, gateBody)
	}
	_, directBody := postJSON(t, tf.replicas[0].ts.URL+"/v1/suitability", req)
	var got, want serve.SuitabilityResponse
	if err := json.Unmarshal(gateBody, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(directBody, &want); err != nil {
		t.Fatal(err)
	}
	if got.NMC.EDP != want.NMC.EDP || got.Verdict != want.Verdict {
		t.Fatalf("suitability differs: gate %+v direct %+v", got, want)
	}
}

func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func grepMetric(metrics, prefix string) string {
	var out bytes.Buffer
	for _, line := range bytes.Split([]byte(metrics), []byte("\n")) {
		if bytes.Contains(line, []byte(prefix)) {
			out.Write(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}
