// Package fleet is the front tier that turns N napel-serve replicas
// into one logical service: a consistent-hash ring keyed on (model
// version, feature-vector hash) shards requests so each replica's LRU
// cache sees a disjoint keyspace — N caches become one cache N× the
// size — while per-replica circuit breakers, hedged single predicts and
// budget-split batch fan-out keep one slow or failing replica from
// dragging the fleet down. cmd/napel-gate is the binary front end;
// RollingReload drives fleet-wide hot-installs gated per replica by
// /readyz.
package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// DefaultVNodes is the per-replica virtual-node count. 128 tokens per
// replica keeps the largest/smallest shard share within ~2× of each
// other for small fleets, which is what bounds worst-case cache skew.
const DefaultVNodes = 128

// point is one virtual node: a position on the 64-bit ring owned by a
// replica.
type point struct {
	hash    uint64
	replica int32
}

// Ring is an immutable consistent-hash ring over replica names.
// Immutability is the concurrency story: the gate swaps whole rings
// atomically when membership changes, so a router never observes a
// half-updated ring.
type Ring struct {
	replicas []string
	points   []point
	share    []float64
}

// NewRing hashes vnodes tokens per replica onto the 64-bit ring.
// vnodes <= 0 takes DefaultVNodes. An empty replica list yields an
// empty ring whose Shard returns -1.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		replicas: append([]string(nil), replicas...),
		points:   make([]point, 0, len(replicas)*vnodes),
		share:    make([]float64, len(replicas)),
	}
	var buf [8]byte
	for i, rep := range r.replicas {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			h.Write([]byte(rep))
			h.Write([]byte{0})
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
			r.points = append(r.points, point{hash: mix64(h.Sum64()), replica: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Colliding tokens tie-break on owner so the ring is a pure
		// function of its membership, not of input order.
		return r.points[a].replica < r.points[b].replica
	})
	// Each point owns the arc from its predecessor (exclusive) to itself
	// (inclusive); summing arcs per replica gives the exact fraction of
	// the keyspace each replica serves — the shard-balance gauge.
	if len(r.points) > 0 {
		prev := r.points[len(r.points)-1].hash
		for _, p := range r.points {
			arc := p.hash - prev // wraps correctly in uint64 arithmetic
			r.share[p.replica] += float64(arc) / math.MaxUint64
			prev = p.hash
		}
	}
	return r
}

// Key folds a model version and a feature-vector hash into a ring key.
// Both halves matter: a promotion changes every key (deliberately — new
// weights mean a cold cache either way, and rehashing spreads the
// refill across the fleet), while distinct feature vectors land on
// distinct replicas.
func Key(modelVersion string, featHash uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(modelVersion))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], featHash)
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV alone clusters nearby inputs
// (replica names differing in one digit, small vnode indices) into
// nearby ring positions, which skews shard shares badly; the finalizer
// restores avalanche so token positions are uniform.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the replica count.
func (r *Ring) Len() int { return len(r.replicas) }

// Replicas returns the replica names in construction order.
func (r *Ring) Replicas() []string { return r.replicas }

// Share returns the fraction of the keyspace replica i owns.
func (r *Ring) Share(i int) float64 { return r.share[i] }

// Shard returns the index of the replica owning key: the owner of the
// first ring point at or clockwise of key. -1 on an empty ring.
func (r *Ring) Shard(key uint64) int {
	i := r.search(key)
	if i < 0 {
		return -1
	}
	return int(r.points[i].replica)
}

func (r *Ring) search(key uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Successors returns up to n distinct replica indices starting with
// key's owner and continuing clockwise — the failover and hedging
// order. Walking the ring (rather than, say, owner+1 mod N) keeps the
// fallback assignment consistent too: every key that fails over from a
// dead replica lands on the same successor a ring without that replica
// would have chosen.
func (r *Ring) Successors(key uint64, n int) []int {
	i := r.search(key)
	if i < 0 || n <= 0 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	out := make([]int, 0, n)
	seen := make([]bool, len(r.replicas))
	for walked := 0; walked < len(r.points) && len(out) < n; walked++ {
		p := r.points[(i+walked)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, int(p.replica))
		}
	}
	return out
}

// String summarizes the ring for logs and the /v1/fleet status body.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{replicas=%d points=%d}", len(r.replicas), len(r.points))
}
