package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"napel/internal/obs"
)

// ReplicaReloadResult is one replica's leg of a rolling reload.
type ReplicaReloadResult struct {
	URL          string `json:"url"`
	OK           bool   `json:"ok"`
	ModelVersion string `json:"model_version,omitempty"`
	Error        string `json:"error,omitempty"`
}

// RollingReload hot-installs the currently promoted model across the
// fleet one replica at a time: POST /v1/models/reload, then confirm the
// replica is back on /readyz with the expected version before touching
// the next one. The first replica's post-reload version becomes the
// rollout target; any divergence aborts the roll so a half-published
// lineage cannot split the fleet. Because at most one replica is
// reloading at any instant, the remaining N-1 keep answering and the
// gate's failover path covers the one in flight — zero downtime from
// the client's point of view.
func (g *Gate) RollingReload(ctx context.Context) ([]ReplicaReloadResult, error) {
	g.rollMu.Lock()
	defer g.rollMu.Unlock()

	reps := g.replicaList()
	results := make([]ReplicaReloadResult, 0, len(reps))
	target := ""
	for _, rep := range reps {
		res := ReplicaReloadResult{URL: rep.url}
		version, err := g.reloadReplica(ctx, rep)
		if err != nil {
			res.Error = err.Error()
			results = append(results, res)
			return results, fmt.Errorf("fleet: rolling reload aborted at %s: %w", rep.url, err)
		}
		res.OK, res.ModelVersion = true, version
		results = append(results, res)
		if target == "" {
			target = version
		} else if version != target {
			res.OK = false
			results[len(results)-1] = res
			return results, fmt.Errorf(
				"fleet: rolling reload aborted: %s installed %s, fleet target is %s",
				rep.url, version, target)
		}
	}
	g.CheckReplicas(ctx)
	g.o.rollouts.Inc()
	return results, nil
}

// reloadReplica reloads one replica and waits for its /readyz to
// confirm the install, returning the served default-model version.
func (g *Gate) reloadReplica(ctx context.Context, rep *replica) (string, error) {
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		rep.url+"/v1/models/reload", bytes.NewReader([]byte("{}")))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectHTTP(rctx, req)
	resp, err := g.client.Do(req)
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("reload: HTTP %d: %s", resp.StatusCode, truncate(body, 200))
	}

	// The reload endpoint is synchronous, so one confirming probe is
	// usually enough; poll briefly to absorb scheduling noise.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := g.readyzOnce(rctx, rep)
		if err == nil && st.Ready {
			rep.setStatus(st)
			return st.ModelVersion, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return "", fmt.Errorf("replica not ready after reload: %w", err)
			}
			return "", fmt.Errorf("replica not ready after reload (draining=%v degraded=%v)",
				st.Draining, st.Degraded)
		}
		select {
		case <-rctx.Done():
			return "", rctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (g *Gate) readyzOnce(ctx context.Context, rep *replica) (replicaStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		return replicaStatus{}, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return replicaStatus{}, err
	}
	defer resp.Body.Close()
	var st replicaStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return replicaStatus{}, fmt.Errorf("decoding readyz: %w", err)
	}
	return st, nil
}
