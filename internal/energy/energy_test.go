package energy

import (
	"testing"

	"napel/internal/trace"
)

func TestDefaultNMCParamsComplete(t *testing.T) {
	p := DefaultNMCParams()
	for op := trace.Op(0); op < trace.NumOps; op++ {
		if p.PEInstPJ[op] <= 0 {
			t.Errorf("op %s has no per-instruction energy", op)
		}
	}
	if p.ActPJ <= 0 || p.ReadPJ <= 0 || p.WritePJ <= 0 || p.RefreshPJ <= 0 {
		t.Error("DRAM energies must be positive")
	}
	if p.PEStaticW <= 0 || p.DRAMStaticW <= 0 || p.LinkStaticW <= 0 {
		t.Error("static powers must be positive")
	}
}

func TestNMCEnergyOrdering(t *testing.T) {
	p := DefaultNMCParams()
	// A DRAM access must dwarf an ALU op; divides cost more than adds.
	if p.ReadPJ < 100*p.PEInstPJ[trace.OpIntALU] {
		t.Error("DRAM read suspiciously cheap relative to ALU")
	}
	if p.PEInstPJ[trace.OpFPDiv] <= p.PEInstPJ[trace.OpFPALU] {
		t.Error("FP divide not more expensive than FP add")
	}
}

func TestHostEnergyOrdering(t *testing.T) {
	h := DefaultHostParams()
	if !(h.L1PJ < h.L2PJ && h.L2PJ < h.L3PJ) {
		t.Error("cache energies not increasing outward")
	}
	if h.DRAMPJPerByte <= 0 || h.InstPJ <= 0 {
		t.Error("host energies must be positive")
	}
	// The host's big OoO core spends more per instruction than the NMC
	// PE — the fundamental energy asymmetry behind Figure 7.
	n := DefaultNMCParams()
	if h.InstPJ <= n.PEInstPJ[trace.OpIntALU] {
		t.Error("host per-instruction energy should exceed the simple PE's")
	}
}
