// Package energy holds the energy/power parameter tables used to convert
// event counts from the NMC and host simulators into Joules.
//
// The paper measures host energy with on-board POWER9 sensors (AMESTER)
// and NMC energy with the simulator's integrated model. Neither source is
// available here, so this package substitutes per-event energies and
// static powers drawn from published characterizations of HMC-class
// stacked memories, simple in-order cores and server-class OoO cores.
// Absolute Joules are therefore approximate; the NMC-vs-host *ratios*
// that decide the paper's EDP conclusions are governed by the same
// first-order effects (off-chip DDR traffic vs. in-stack access, big-core
// vs. little-core per-instruction cost) that the constants encode.
package energy

import "napel/internal/trace"

// NMCParams parameterizes the NMC subsystem energy model. Energies are in
// picojoules per event, powers in watts.
type NMCParams struct {
	// Per-instruction PE energies by op class (execute + fetch/decode).
	PEInstPJ [trace.NumOps]float64
	// L1AccessPJ is the energy of one access to the tiny PE-private L1.
	L1AccessPJ float64
	// DRAM per-command energies.
	ActPJ     float64 // one activation (256 B row in the stack)
	ReadPJ    float64 // one 64 B read burst, including TSV transfer
	WritePJ   float64 // one 64 B write burst
	RefreshPJ float64 // one per-vault refresh cycle
	// Static power.
	PEStaticW    float64 // leakage + clock per PE
	DRAMStaticW  float64 // cube background power
	LinkStaticW  float64 // SerDes idle power (it stays up during offload)
	LinkPJPerBit float64 // off-chip transfer energy (offload/result copy)
}

// DefaultNMCParams returns the default NMC energy table.
func DefaultNMCParams() NMCParams {
	p := NMCParams{
		L1AccessPJ:   1.0,
		ActPJ:        900,
		ReadPJ:       1900, // ≈3.7 pJ/bit × 512 bit, HMC-class
		WritePJ:      2000,
		RefreshPJ:    5000,
		PEStaticW:    0.020,
		DRAMStaticW:  1.2,
		LinkStaticW:  0.5,
		LinkPJPerBit: 2.0,
	}
	p.PEInstPJ[trace.OpIntALU] = 4
	p.PEInstPJ[trace.OpIntMul] = 7
	p.PEInstPJ[trace.OpIntDiv] = 18
	p.PEInstPJ[trace.OpFPALU] = 8
	p.PEInstPJ[trace.OpFPMul] = 10
	p.PEInstPJ[trace.OpFPDiv] = 25
	p.PEInstPJ[trace.OpLoad] = 5
	p.PEInstPJ[trace.OpStore] = 5
	p.PEInstPJ[trace.OpBranch] = 3
	p.PEInstPJ[trace.OpCall] = 4
	p.PEInstPJ[trace.OpMove] = 2
	return p
}

// HostParams parameterizes the host (POWER9-class) energy model.
type HostParams struct {
	InstPJ        float64 // average per-instruction core energy (OoO overheads)
	L1PJ          float64 // per L1 access
	L2PJ          float64 // per L2 access
	L3PJ          float64 // per L3 access
	DRAMPJPerByte float64 // DDR4 channel energy per byte transferred
	CoreStaticW   float64 // per active core
	UncoreStaticW float64 // chip uncore + DIMM background
}

// DefaultHostParams returns the default host energy table.
func DefaultHostParams() HostParams {
	return HostParams{
		InstPJ:        60,
		L1PJ:          15,
		L2PJ:          40,
		L3PJ:          180,
		DRAMPJPerByte: 160, // ≈20 pJ/bit DDR4 incl. I/O and termination
		CoreStaticW:   3.5,
		UncoreStaticW: 40,
	}
}
