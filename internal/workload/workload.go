// Package workload re-implements the twelve PolyBench and Rodinia
// kernels the paper evaluates (Table 2), each as a deterministic Go
// program that executes the real algorithm over synthetic data while
// streaming its dynamic instruction trace (internal/trace). This replaces
// the paper's Pin-based trace collection: the traced loop nests, access
// patterns and data-dependent control flow are those of the original
// kernels, so instruction mix, reuse distances and footprints follow the
// same parameter dependence.
//
// Every kernel declares its design-of-experiments parameters with the
// five CCD levels and the held-out test input exactly as listed in
// Table 2 of the paper.
package workload

import (
	"fmt"
	"sort"

	"napel/internal/trace"
)

// ParamKind classifies how a DoE parameter shapes the execution, which
// the pipeline uses to derive scaled-down proxy inputs (see Scale).
type ParamKind uint8

const (
	// KindDim is a matrix/vector dimension (work grows superlinearly).
	KindDim ParamKind = iota
	// KindSize is a linear dataset size (nodes, points, layer units).
	KindSize
	// KindThreads is the hardware-thread count.
	KindThreads
	// KindIters is an outer repetition count.
	KindIters
	// KindOther is a shape parameter left untouched by scaling (seeds,
	// cluster counts, weight ranges).
	KindOther
)

// Param is one DoE parameter of a kernel with its five CCD levels
// (minimum, low, central, high, maximum) and the test-input value, as in
// Table 2.
type Param struct {
	Name   string
	Kind   ParamKind
	Levels [5]int // min, low, central, high, max
	Test   int
}

// Level indices into Param.Levels.
const (
	LevelMin = iota
	LevelLow
	LevelCentral
	LevelHigh
	LevelMax
)

// Input is a concrete assignment of values to a kernel's parameters.
type Input map[string]int

// Clone returns a copy of the input.
func (in Input) Clone() Input {
	out := make(Input, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// String renders the input deterministically (sorted by name).
func (in Input) String() string {
	keys := make([]string, 0, len(in))
	for k := range in {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, in[k])
	}
	return s
}

// Threads returns the thread-count parameter of the input (1 if absent).
func (in Input) Threads() int {
	if t, ok := in["threads"]; ok && t > 0 {
		return t
	}
	return 1
}

// Kernel is one benchmark kernel: its Table 2 metadata plus a trace
// generator. Trace must emit the dynamic instruction stream of hardware
// thread shard out of nshards (work split as in the parallelized
// original), honor t.Stop() in outer loops and record coverage via
// t.SetCoverage when cut short.
type Kernel interface {
	Name() string
	Description() string
	Params() []Param
	Trace(in Input, shard, nshards int, t *trace.Tracer)
}

// TestInput returns the held-out test configuration of k (Table 2,
// rightmost column).
func TestInput(k Kernel) Input {
	in := Input{}
	for _, p := range k.Params() {
		in[p.Name] = p.Test
	}
	return in
}

// CentralInput returns the CCD central configuration of k.
func CentralInput(k Kernel) Input {
	in := Input{}
	for _, p := range k.Params() {
		in[p.Name] = p.Levels[LevelCentral]
	}
	return in
}

// Scale derives a reduced proxy of in for kernel k: dimension-like
// parameters are divided by factor, size-like parameters by
// factor*factor (so that quadratic and linear kernels shrink comparably),
// and iteration counts are capped at maxIters. Thread counts and shape
// parameters are preserved. factor <= 1 returns a clone with only the
// iteration cap applied; maxIters <= 0 leaves iterations untouched.
//
// This is the documented substitution for the paper's hours-long
// simulations: IPC is a steady-state rate and the PISA features are
// distributions, both of which converge far below full problem sizes.
func Scale(k Kernel, in Input, factor int, maxIters int) Input {
	out := in.Clone()
	for _, p := range k.Params() {
		v, ok := out[p.Name]
		if !ok {
			continue
		}
		switch p.Kind {
		case KindDim:
			if factor > 1 {
				v /= factor
				if v < 16 {
					v = 16
				}
			}
		case KindSize:
			if factor > 1 {
				v /= factor * factor
				if v < 256 {
					v = 256
				}
			}
		case KindIters:
			if maxIters > 0 && v > maxIters {
				v = maxIters
			}
		}
		out[p.Name] = v
	}
	return out
}

// Validate checks that in assigns a positive value to every parameter of
// k and nothing else.
func Validate(k Kernel, in Input) error {
	params := k.Params()
	seen := map[string]bool{}
	for _, p := range params {
		v, ok := in[p.Name]
		if !ok {
			return fmt.Errorf("workload: %s: missing parameter %q", k.Name(), p.Name)
		}
		if v <= 0 {
			return fmt.Errorf("workload: %s: parameter %q must be positive, got %d", k.Name(), p.Name, v)
		}
		seen[p.Name] = true
	}
	for name := range in {
		if !seen[name] {
			return fmt.Errorf("workload: %s: unknown parameter %q", k.Name(), name)
		}
	}
	return nil
}

// All returns the twelve evaluated kernels in Table 2 order.
func All() []Kernel {
	return []Kernel{
		NewAtax(),
		NewBFS(),
		NewBackprop(),
		NewCholesky(),
		NewGemver(),
		NewGesummv(),
		NewGramSchmidt(),
		NewKMeans(),
		NewLU(),
		NewMVT(),
		NewSyrk(),
		NewTrmm(),
	}
}

// ByName returns the kernel with the given short name — searching the
// Table 2 suite and the extension kernels — or an error listing the
// available names.
func ByName(name string) (Kernel, error) {
	for _, k := range AllExtended() {
		if k.Name() == name {
			return k, nil
		}
	}
	names := make([]string, 0, 16)
	for _, k := range AllExtended() {
		names = append(names, k.Name())
	}
	return nil, fmt.Errorf("workload: unknown kernel %q (available: %v)", name, names)
}

// arena hands out disjoint, page-aligned address regions for a kernel's
// arrays so that traces from different arrays never alias.
type arena struct {
	next uint64
}

// newArena starts the data segment at a fixed base so traces are
// reproducible run to run.
func newArena() *arena { return &arena{next: 1 << 24} }

// alloc reserves n bytes and returns the region base, 4 KiB aligned.
func (a *arena) alloc(n uint64) uint64 {
	base := a.next
	a.next += (n + 4095) &^ 4095
	return base
}

// Virtual register conventions shared by the kernels: a handful of
// integer registers for indices and addresses and floating-point
// registers for values. Loop-carried accumulators deliberately reuse one
// register so dataflow ILP reflects the real dependence structure.
const (
	rI = int16(iota) // loop indices
	rJ
	rK
	rAddr
	rTmp
	rF0 // fp scratch
	rF1
	rF2
	rF3
	rAcc // fp accumulator (loop-carried)
	rPtr
	rVal
)
