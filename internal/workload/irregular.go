package workload

import "napel/internal/trace"

// This file implements the three Rodinia kernels of Table 2 — bfs,
// backprop and kmeans. Their defining property relative to the PolyBench
// kernels is data-dependent, irregular memory behaviour: bfs chases
// graph edges, kmeans gathers feature vectors and scatters cluster
// updates. Graph topology and cluster assignment are derived from a
// deterministic hash so traces are reproducible without storing data
// values; the structures that must persist across the traversal (CSR
// offsets, the visited set, the frontier) are modeled faithfully.

// mix64 is a splitmix64 finalizer used to derive deterministic
// pseudo-random structure (edge targets, degrees, assignments).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ----------------------------------------------------------------- bfs

// BFS is Rodinia bfs: level-synchronous breadth-first search over a
// synthetic graph in CSR form.
type BFS struct{}

// NewBFS returns the bfs kernel.
func NewBFS() *BFS { return &BFS{} }

// Name implements Kernel.
func (*BFS) Name() string { return "bfs" }

// Description implements Kernel.
func (*BFS) Description() string { return "Breadth-first Search" }

// Params implements Kernel (Table 2). "weights" bounds the per-node edge
// weight range, which in the Rodinia generator also sets the expected
// out-degree of the synthetic graph.
func (*BFS) Params() []Param {
	return []Param{
		{Name: "nodes", Kind: KindSize, Levels: [5]int{400_000, 800_000, 900_000, 1_200_000, 1_400_000}, Test: 1_000_000},
		{Name: "weights", Kind: KindOther, Levels: [5]int{1, 2, 4, 25, 49}, Test: 4},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{1, 9, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{30, 40, 65, 70, 80}, Test: 95},
	}
}

// degree returns the synthetic out-degree of node u: uniform in
// [1, 2·w+1] so the mean tracks the weights parameter.
func bfsDegree(u int, w int, seed uint64) int {
	return 1 + int(mix64(uint64(u)^seed)%uint64(2*w+1))
}

// Trace implements Kernel.
func (*BFS) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, w, iters := in["nodes"], in["weights"], in["iters"]
	ar := newArena()
	// CSR arrays: offsets (u32), edge targets (u32), edge weights (u32),
	// visited bytes, frontier queue (u32), cost (u32).
	offBase := ar.alloc(uint64(n+1) * 4)
	// Total edge count from the deterministic degree function.
	const seed = 0x5eed_bf5
	m := 0
	offsets := make([]int, n+1)
	for u := 0; u < n; u++ {
		offsets[u] = m
		m += bfsDegree(u, w, seed)
	}
	offsets[n] = m
	edgeBase := ar.alloc(uint64(m) * 4)
	weightBase := ar.alloc(uint64(m) * 4)
	visBase := ar.alloc(uint64(n))
	queueBase := ar.alloc(uint64(n) * 4)
	costBase := ar.alloc(uint64(n) * 4)

	visited := make([]bool, n)
	frontier := make([]int32, 0, 1024)
	next := make([]int32, 0, 1024)

	// Progress is tracked per owned frontier node (a BFS sweep visits
	// nearly every reachable node once), so coverage stays accurate when
	// the op budget cuts the trace inside a single sweep.
	p := newProgress(t, iters*shardRows(n, shard, nshards))
	defer p.finish()

	for it := 0; it < iters; it++ {
		for i := range visited {
			visited[i] = false
		}
		src := int(mix64(uint64(it)) % uint64(n))
		visited[src] = true
		frontier = append(frontier[:0], int32(src))
		qHead := 0

		for len(frontier) > 0 {
			next = next[:0]
			qTail := qHead + len(frontier)
			// The traversal is maintained globally (all shards'
			// discoveries update visited and the next frontier), but the
			// trace covers only this shard's expansion work — the level-
			// synchronous OpenMP partitioning of the Rodinia original.
			for fi := 0; fi < len(frontier); fi++ {
				u := int(frontier[fi])
				mine := fi%nshards == shard
				if mine {
					if p.step() {
						return
					}
					// Dequeue: load node id and its CSR offsets.
					t.Load(0, queueBase+uint64(qHead+fi)*4, 4, rI, rAddr)
					t.Load(1, offBase+uint64(u)*4, 4, rJ, rI)
					t.Load(2, offBase+uint64(u+1)*4, 4, rK, rI)
					t.Int(3, rTmp, rJ, rK)
				}
				start, end := offsets[u], offsets[u+1]
				for e := start; e < end; e++ {
					v := int(mix64(uint64(e)^seed) % uint64(n))
					already := visited[v]
					if mine {
						t.Load(4, edgeBase+uint64(e)*4, 4, rPtr, rJ)
						t.Load(5, weightBase+uint64(e)*4, 4, rVal, rJ)
						t.Load(6, visBase+uint64(v), 1, rTmp, rPtr)
						t.Branch(7, already, rTmp)
						if !already {
							t.Store(8, visBase+uint64(v), 1, rTmp)
							t.Load(9, costBase+uint64(u)*4, 4, rF0, rI)
							t.Int(10, rF0, rF0, rVal)
							t.Store(11, costBase+uint64(v)*4, 4, rF0)
							t.Store(12, queueBase+uint64(qTail+len(next))*4, 4, rPtr)
						}
						t.Int(13, rJ, rJ, rJ)
						t.Branch(14, e+1 < end, rJ)
					}
					if !already {
						visited[v] = true
						next = append(next, int32(v))
					}
				}
			}
			frontier, next = next, frontier
			qHead = qTail
		}
	}
}

// ------------------------------------------------------------ backprop

// Backprop is Rodinia backprop: one hidden-layer neural network trained
// with back-propagation; the layer-size parameter is the input-layer
// width.
type Backprop struct{}

// NewBackprop returns the bp kernel.
func NewBackprop() *Backprop { return &Backprop{} }

// Name implements Kernel.
func (*Backprop) Name() string { return "bp" }

// Description implements Kernel.
func (*Backprop) Description() string { return "Back-propagation" }

// Params implements Kernel (Table 2).
func (*Backprop) Params() []Param {
	return []Param{
		{Name: "layer", Kind: KindSize, Levels: [5]int{800_000, 1_000_000, 2_000_000, 3_500_000, 4_000_000}, Test: 1_100_000},
		{Name: "seed", Kind: KindOther, Levels: [5]int{2, 4, 5, 10, 12}, Test: 5},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{1, 3, 9, 16, 25}, Test: 9},
	}
}

// hiddenUnits is the hidden-layer width of the Rodinia network.
const hiddenUnits = 16

// Trace implements Kernel.
func (*Backprop) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, iters := in["layer"], in["iters"]
	ar := newArena()
	input := ar.alloc(uint64(n) * 8)
	w1 := ar.alloc(uint64(n) * hiddenUnits * 8) // input→hidden weights
	hidden := ar.alloc(hiddenUnits * 8)
	w2 := ar.alloc(hiddenUnits * 8) // hidden→output weights
	deltaH := ar.alloc(hiddenUnits * 8)

	shardLo, shardHi := shardRange(n, shard, nshards)
	rows := shardRows(n, shard, nshards)
	p := newProgress(t, iters*2*rows)
	defer p.finish()

	for it := 0; it < iters; it++ {
		// Forward: hidden[j] += w1[i][j]·input[i], sharded over i.
		for i := shardLo; i < shardHi; i++ {
			t.Load(0, input+uint64(i)*8, 8, rF3, rAddr)
			row := w1 + uint64(i)*hiddenUnits*8
			for j := 0; j < hiddenUnits; j++ {
				t.Load(1, row+uint64(j)*8, 8, rF0, rAddr)
				t.FPMul(2, rF1, rF0, rF3)
				t.Load(3, hidden+uint64(j)*8, 8, rF2, rAddr)
				t.FP(4, rF2, rF2, rF1)
				t.Store(5, hidden+uint64(j)*8, 8, rF2)
				t.Branch(6, j+1 < hiddenUnits, rJ)
			}
			if p.step() {
				return
			}
		}
		// Output pass + hidden deltas (small, traced once per iteration
		// by shard 0 as in the OpenMP original's serial section).
		if shard == 0 {
			for j := 0; j < hiddenUnits; j++ {
				t.Load(7, hidden+uint64(j)*8, 8, rF0, rAddr)
				t.Load(8, w2+uint64(j)*8, 8, rF1, rAddr)
				t.FPMul(9, rF2, rF0, rF1)
				t.FP(10, rAcc, rAcc, rF2)
				t.FPDiv(11, rF0, rF0, rF0) // squash derivative
				t.Store(12, deltaH+uint64(j)*8, 8, rF0)
			}
		}
		// Backward: w1[i][j] += η·deltaH[j]·input[i], sharded over i.
		for i := shardLo; i < shardHi; i++ {
			t.Load(13, input+uint64(i)*8, 8, rF3, rAddr)
			row := w1 + uint64(i)*hiddenUnits*8
			for j := 0; j < hiddenUnits; j++ {
				t.Load(14, deltaH+uint64(j)*8, 8, rF0, rAddr)
				t.FPMul(15, rF1, rF0, rF3)
				t.Load(16, row+uint64(j)*8, 8, rF2, rAddr)
				t.FP(17, rF2, rF2, rF1)
				t.Store(18, row+uint64(j)*8, 8, rF2)
				t.Branch(19, j+1 < hiddenUnits, rJ)
			}
			if p.step() {
				return
			}
		}
	}
}

// -------------------------------------------------------------- kmeans

// KMeans is Rodinia kmeans: Lloyd iterations over synthetic points.
type KMeans struct{}

// NewKMeans returns the kme kernel.
func NewKMeans() *KMeans { return &KMeans{} }

// Name implements Kernel.
func (*KMeans) Name() string { return "kme" }

// Description implements Kernel.
func (*KMeans) Description() string { return "K-Means Clustering" }

// Params implements Kernel (Table 2; the threads column is printed
// corrupted in the PDF — encoded as (1,9,16,32,64) by analogy with bfs).
func (*KMeans) Params() []Param {
	return []Param{
		{Name: "points", Kind: KindSize, Levels: [5]int{100_000, 300_000, 700_000, 900_000, 1_200_000}, Test: 819_000},
		{Name: "clusters", Kind: KindOther, Levels: [5]int{3, 5, 6, 7, 8}, Test: 5},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{1, 9, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{10, 20, 30, 40, 50}, Test: 30},
	}
}

// kmeansFeatures is the per-point feature dimensionality, matching the
// 34-feature kdd_cup data of the Rodinia original (rounded to a line
// multiple).
const kmeansFeatures = 32

// Trace implements Kernel.
func (*KMeans) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, k, iters := in["points"], in["clusters"], in["iters"]
	ar := newArena()
	pts := ar.alloc(uint64(n) * kmeansFeatures * 8)
	centroids := ar.alloc(uint64(k) * kmeansFeatures * 8)
	membership := ar.alloc(uint64(n) * 4)
	newCent := ar.alloc(uint64(k) * kmeansFeatures * 8)
	counts := ar.alloc(uint64(k) * 4)

	shardLo, shardHi := shardRange(n, shard, nshards)
	rows := shardRows(n, shard, nshards)
	p := newProgress(t, iters*rows)
	defer p.finish()

	for it := 0; it < iters; it++ {
		for i := shardLo; i < shardHi; i++ {
			ptBase := pts + uint64(i)*kmeansFeatures*8
			// Distance to every centroid.
			for c := 0; c < k; c++ {
				t.Move(0, rAcc, rF3)
				cBase := centroids + uint64(c)*kmeansFeatures*8
				for f := 0; f < kmeansFeatures; f++ {
					t.Load(1, ptBase+uint64(f)*8, 8, rF0, rAddr)
					t.Load(2, cBase+uint64(f)*8, 8, rF1, rAddr)
					t.FP(3, rF2, rF0, rF1)    // diff
					t.FPMul(4, rF2, rF2, rF2) // square
					t.FP(5, rAcc, rAcc, rF2)  // accumulate
					t.Branch(6, f+1 < kmeansFeatures, rK)
				}
				t.FP(7, rVal, rAcc, rVal) // compare with best
				t.Branch(8, c&1 == 0, rVal)
			}
			// Deterministic surrogate assignment (values are synthetic;
			// the trace shape does not depend on which cluster wins).
			best := int(mix64(uint64(i)*31+uint64(it)) % uint64(k))
			t.Store(9, membership+uint64(i)*4, 4, rVal)
			// Scatter into the winning cluster's accumulators.
			ncBase := newCent + uint64(best)*kmeansFeatures*8
			for f := 0; f < kmeansFeatures; f++ {
				t.Load(10, ptBase+uint64(f)*8, 8, rF0, rAddr)
				t.Load(11, ncBase+uint64(f)*8, 8, rF1, rAddr)
				t.FP(12, rF1, rF1, rF0)
				t.Store(13, ncBase+uint64(f)*8, 8, rF1)
				t.Branch(14, f+1 < kmeansFeatures, rK)
			}
			t.Load(15, counts+uint64(best)*4, 4, rTmp, rAddr)
			t.Int(16, rTmp, rTmp, rTmp)
			t.Store(17, counts+uint64(best)*4, 4, rTmp)
			if p.step() {
				return
			}
		}
		// Centroid recomputation (small; shard 0 traces it, as in the
		// serial reduction of the Rodinia original).
		if shard == 0 {
			for c := 0; c < k; c++ {
				t.Load(18, counts+uint64(c)*4, 4, rTmp, rAddr)
				for f := 0; f < kmeansFeatures; f++ {
					t.Load(19, newCent+(uint64(c)*kmeansFeatures+uint64(f))*8, 8, rF0, rAddr)
					t.FPDiv(20, rF0, rF0, rF1)
					t.Store(21, centroids+(uint64(c)*kmeansFeatures+uint64(f))*8, 8, rF0)
				}
			}
		}
	}
}
