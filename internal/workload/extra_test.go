package workload

import (
	"testing"

	"napel/internal/trace"
)

func TestExtensionsRegistered(t *testing.T) {
	exts := Extensions()
	if len(exts) != 3 {
		t.Fatalf("%d extension kernels, want 3", len(exts))
	}
	if len(AllExtended()) != 15 {
		t.Fatalf("AllExtended = %d kernels, want 15", len(AllExtended()))
	}
	// Table 2 suite must stay untouched.
	if len(All()) != 12 {
		t.Fatal("All() grew beyond Table 2")
	}
	names := map[string]bool{}
	for _, k := range AllExtended() {
		if names[k.Name()] {
			t.Fatalf("duplicate kernel %s", k.Name())
		}
		names[k.Name()] = true
	}
}

func TestExtensionKernelsEmit(t *testing.T) {
	for _, k := range Extensions() {
		in := tinyInput(k)
		var c trace.Counter
		tr := trace.NewTracer(80_000, &c)
		k.Trace(in, 0, 1, tr)
		if c.Total == 0 || c.Mem() == 0 {
			t.Errorf("%s emitted nothing useful: %+v", k.Name(), c)
		}
		if cov := tr.Coverage(); cov <= 0 || cov > 1 {
			t.Errorf("%s coverage %v", k.Name(), cov)
		}
		// Validate Table-2-style metadata.
		if err := Validate(k, TestInput(k)); err != nil {
			t.Errorf("%s test input invalid: %v", k.Name(), err)
		}
		for _, p := range k.Params() {
			for i := 1; i < 5; i++ {
				if p.Levels[i] < p.Levels[i-1] {
					t.Errorf("%s.%s levels not sorted", k.Name(), p.Name)
				}
			}
		}
	}
}

func TestExtensionDeterminismAndSharding(t *testing.T) {
	for _, k := range Extensions() {
		in := tinyInput(k)
		hash := func(shard, nshards int) uint64 {
			var h uint64 = 14695981039346656037
			tr := trace.NewTracer(30_000, trace.ConsumerFunc(func(i trace.Inst) {
				h ^= i.Addr ^ uint64(i.PC)
				h *= 1099511628211
			}))
			k.Trace(in, shard, nshards, tr)
			return h
		}
		if hash(0, 1) != hash(0, 1) {
			t.Errorf("%s not deterministic", k.Name())
		}
		if hash(0, 4) == hash(1, 4) {
			t.Errorf("%s shards not disjoint", k.Name())
		}
	}
}

func TestNWAntiDiagonalCoverage(t *testing.T) {
	// Every interior DP cell must be written exactly once.
	k := NewNW()
	n := 24
	writes := map[uint64]int{}
	tr := trace.NewTracer(0, trace.ConsumerFunc(func(i trace.Inst) {
		if i.Op == trace.OpStore {
			writes[i.Addr]++
		}
	}))
	k.Trace(Input{"dim": n, "threads": 1}, 0, 1, tr)
	if len(writes) != n*n {
		t.Fatalf("NW wrote %d distinct cells, want %d", len(writes), n*n)
	}
	for addr, c := range writes {
		if c != 1 {
			t.Fatalf("cell %#x written %d times", addr, c)
		}
	}
}

func TestSpMVGatherIsIrregular(t *testing.T) {
	// The x-gather addresses must span a wide range (power-law columns),
	// unlike a streaming kernel.
	k := NewSpMV()
	in := Input{"rows": 4096, "nnz_per_row": 8, "threads": 1, "iters": 1}
	distinct := map[uint64]struct{}{}
	tr := trace.NewTracer(100_000, trace.ConsumerFunc(func(i trace.Inst) {
		if i.Op == trace.OpLoad && i.Size == 8 {
			distinct[i.Addr>>6] = struct{}{}
		}
	}))
	k.Trace(in, 0, 1, tr)
	if len(distinct) < 1000 {
		t.Fatalf("spmv touched only %d distinct lines", len(distinct))
	}
}

func TestExtensionPredictable(t *testing.T) {
	// Extensions must flow through the profiler-facing interface like
	// any Table 2 kernel (smoke via the registry contract).
	for _, k := range Extensions() {
		in := Scale(k, TestInput(k), 16, 1)
		if err := Validate(k, in); err != nil {
			t.Errorf("%s: scaled test input invalid: %v", k.Name(), err)
		}
	}
}
