package workload

import "napel/internal/trace"

// This file implements the nine PolyBench kernels of Table 2. Each
// kernel executes the original loop nest while emitting its dynamic
// instruction trace; matrices are row-major arrays of float64 laid out in
// a deterministic arena. Work is sharded across hardware threads by
// cyclic distribution of the outermost parallel loop, matching how the
// OpenMP versions of these kernels partition rows.
//
// Two Table 2 columns (chol and gram dimension levels) are printed out of
// order in the paper PDF; they are encoded here sorted ascending, which
// is the only ordering consistent with CCD level semantics
// (min<low<central<high<max).

// progress tracks loop completion so a budget-cut trace records the
// fraction of work it covered. Units may carry weights so that
// triangular loop nests (whose iterations grow with the index) still
// extrapolate correctly.
type progress struct {
	t           *trace.Tracer
	done, total int
}

func newProgress(t *trace.Tracer, total int) *progress {
	return &progress{t: t, total: total}
}

// step records one completed unit of weight 1 and reports whether the
// kernel should stop early.
func (p *progress) step() bool { return p.stepN(1) }

// stepN records a completed unit of weight w.
func (p *progress) stepN(w int) bool {
	p.done += w
	return p.t.Stop()
}

// finish records the final coverage.
func (p *progress) finish() { p.t.SetCoverage(p.done, p.total) }

// shardRows counts the rows in [0, n) assigned to shard under the
// blocked distribution of shardRange.
func shardRows(n, shard, nshards int) int {
	lo, hi := shardRange(n, shard, nshards)
	return hi - lo
}

// shardRange returns the contiguous index range [lo, hi) that shard owns
// under OpenMP-style static scheduling. Blocked (rather than cyclic)
// distribution matters for fidelity: it avoids false sharing of output
// vectors between adjacent threads, exactly as the parallelized
// originals do.
func shardRange(n, shard, nshards int) (lo, hi int) {
	lo = shard * n / nshards
	hi = (shard + 1) * n / nshards
	return lo, hi
}

// dotRowLoop emits acc += M[row][j] * v[j] for j in [0, n): the
// fundamental matrix-vector inner loop. site uses 6 consecutive ids.
func dotRowLoop(t *trace.Tracer, site int, rowBase, vBase uint64, n int) {
	for j := 0; j < n; j++ {
		t.Load(site+0, rowBase+uint64(j)*8, 8, rF0, rAddr)
		t.Load(site+1, vBase+uint64(j)*8, 8, rF1, rAddr)
		t.FPMul(site+2, rF2, rF0, rF1)
		t.FP(site+3, rAcc, rAcc, rF2)
		t.Int(site+4, rJ, rJ, rJ)
		t.Branch(site+5, j+1 < n, rJ)
	}
}

// axpyRowLoop emits y[j] += M[row][j] * s for j in [0, n): the rank-1
// update inner loop. site uses 7 consecutive ids.
func axpyRowLoop(t *trace.Tracer, site int, rowBase, yBase uint64, n int) {
	for j := 0; j < n; j++ {
		t.Load(site+0, rowBase+uint64(j)*8, 8, rF0, rAddr)
		t.Load(site+1, yBase+uint64(j)*8, 8, rF1, rAddr)
		t.FPMul(site+2, rF2, rF0, rF3)
		t.FP(site+3, rF1, rF1, rF2)
		t.Store(site+4, yBase+uint64(j)*8, 8, rF1)
		t.Int(site+5, rJ, rJ, rJ)
		t.Branch(site+6, j+1 < n, rJ)
	}
}

// ---------------------------------------------------------------- atax

// Atax is PolyBench atax: y = Aᵀ·(A·x) — matrix transpose and vector
// multiplication.
type Atax struct{}

// NewAtax returns the atax kernel.
func NewAtax() *Atax { return &Atax{} }

// Name implements Kernel.
func (*Atax) Name() string { return "atax" }

// Description implements Kernel.
func (*Atax) Description() string { return "Matrix Transpose and Vector Mult." }

// Params implements Kernel (Table 2).
func (*Atax) Params() []Param {
	return []Param{
		{Name: "dim", Kind: KindDim, Levels: [5]int{500, 1250, 1500, 2000, 2300}, Test: 8000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
	}
}

// Trace implements Kernel.
func (*Atax) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n := in["dim"]
	ar := newArena()
	a := ar.alloc(uint64(n) * uint64(n) * 8)
	x := ar.alloc(uint64(n) * 8)
	tmp := ar.alloc(uint64(n) * 8)
	y := ar.alloc(uint64(n) * 8)

	shardLo, shardHi := shardRange(n, shard, nshards)
	p := newProgress(t, 2*shardRows(n, shard, nshards))
	defer p.finish()

	// tmp[i] = Σ_j A[i][j]·x[j]
	for i := shardLo; i < shardHi; i++ {
		t.Move(0, rAcc, rF3) // tmp = 0
		dotRowLoop(t, 1, a+uint64(i)*uint64(n)*8, x, n)
		t.Store(7, tmp+uint64(i)*8, 8, rAcc)
		if p.step() {
			return
		}
	}
	// y[j] += A[i][j]·tmp[i]  (the Aᵀ pass: rows of A update all of y)
	for i := shardLo; i < shardHi; i++ {
		t.Load(8, tmp+uint64(i)*8, 8, rF3, rAddr)
		axpyRowLoop(t, 9, a+uint64(i)*uint64(n)*8, y, n)
		if p.step() {
			return
		}
	}
}

// -------------------------------------------------------------- gemver

// Gemver is PolyBench gemver: vector multiplication and matrix addition
// (A += u1·v1ᵀ + u2·v2ᵀ; x = βAᵀy + z; w = αAx).
type Gemver struct{}

// NewGemver returns the gemver kernel (short name "gemv" in Table 2).
func NewGemver() *Gemver { return &Gemver{} }

// Name implements Kernel.
func (*Gemver) Name() string { return "gemv" }

// Description implements Kernel.
func (*Gemver) Description() string { return "Vector Multiply and Matrix Addition" }

// Params implements Kernel (Table 2).
func (*Gemver) Params() []Param {
	return []Param{
		{Name: "dim", Kind: KindDim, Levels: [5]int{500, 750, 1250, 2000, 2250}, Test: 8000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{50, 60, 80, 100, 150}, Test: 60},
	}
}

// Trace implements Kernel.
func (*Gemver) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, iters := in["dim"], in["iters"]
	ar := newArena()
	a := ar.alloc(uint64(n) * uint64(n) * 8)
	u1 := ar.alloc(uint64(n) * 8)
	v1 := ar.alloc(uint64(n) * 8)
	u2 := ar.alloc(uint64(n) * 8)
	v2 := ar.alloc(uint64(n) * 8)
	xv := ar.alloc(uint64(n) * 8)
	yv := ar.alloc(uint64(n) * 8)
	zv := ar.alloc(uint64(n) * 8)
	wv := ar.alloc(uint64(n) * 8)

	shardLo, shardHi := shardRange(n, shard, nshards)
	rows := shardRows(n, shard, nshards)
	p := newProgress(t, iters*3*rows)
	defer p.finish()

	for it := 0; it < iters; it++ {
		// A[i][j] += u1[i]·v1[j] + u2[i]·v2[j]
		for i := shardLo; i < shardHi; i++ {
			t.Load(0, u1+uint64(i)*8, 8, rF0, rAddr)
			t.Load(1, u2+uint64(i)*8, 8, rF1, rAddr)
			row := a + uint64(i)*uint64(n)*8
			for j := 0; j < n; j++ {
				t.Load(2, row+uint64(j)*8, 8, rF2, rAddr)
				t.Load(3, v1+uint64(j)*8, 8, rF3, rAddr)
				t.FPMul(4, rVal, rF0, rF3)
				t.FP(5, rF2, rF2, rVal)
				t.Load(6, v2+uint64(j)*8, 8, rF3, rAddr)
				t.FPMul(7, rVal, rF1, rF3)
				t.FP(8, rF2, rF2, rVal)
				t.Store(9, row+uint64(j)*8, 8, rF2)
				t.Branch(10, j+1 < n, rJ)
			}
			if p.step() {
				return
			}
		}
		// x += β·Aᵀ·y + z, in the j-outer row-streaming form the
		// optimizing compiler produces for the transpose product: each
		// thread accumulates x over its block of rows of A.
		for j := shardLo; j < shardHi; j++ {
			t.Load(11, yv+uint64(j)*8, 8, rF3, rAddr)
			t.FPMul(12, rF3, rF3, rF3) // β·y[j]
			row := a + uint64(j)*uint64(n)*8
			for i := 0; i < n; i++ {
				t.Load(13, row+uint64(i)*8, 8, rF0, rAddr)
				t.FPMul(14, rF1, rF0, rF3)
				t.Load(15, xv+uint64(i)*8, 8, rF2, rAddr)
				t.FP(16, rF2, rF2, rF1)
				t.Store(17, xv+uint64(i)*8, 8, rF2)
				t.Branch(18, i+1 < n, rI)
			}
			t.Load(19, zv+uint64(j)*8, 8, rF1, rAddr)
			if p.step() {
				return
			}
		}
		// w = α·A·x
		for i := shardLo; i < shardHi; i++ {
			t.Move(20, rAcc, rF3)
			dotRowLoop(t, 21, a+uint64(i)*uint64(n)*8, xv, n)
			t.FPMul(27, rAcc, rAcc, rF3)
			t.Store(28, wv+uint64(i)*8, 8, rAcc)
			if p.step() {
				return
			}
		}
	}
}

// ------------------------------------------------------------- gesummv

// Gesummv is PolyBench gesummv: y = α·A·x + β·B·x — scalar, vector and
// matrix multiplication.
type Gesummv struct{}

// NewGesummv returns the gesummv kernel (short name "gesu" in Table 2).
func NewGesummv() *Gesummv { return &Gesummv{} }

// Name implements Kernel.
func (*Gesummv) Name() string { return "gesu" }

// Description implements Kernel.
func (*Gesummv) Description() string { return "Scalar, Vector, and Matrix Mult." }

// Params implements Kernel (Table 2).
func (*Gesummv) Params() []Param {
	return []Param{
		{Name: "dim", Kind: KindDim, Levels: [5]int{500, 750, 1250, 2000, 2250}, Test: 8000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{10, 20, 40, 50, 60}, Test: 50},
	}
}

// Trace implements Kernel.
func (*Gesummv) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, iters := in["dim"], in["iters"]
	ar := newArena()
	a := ar.alloc(uint64(n) * uint64(n) * 8)
	b := ar.alloc(uint64(n) * uint64(n) * 8)
	x := ar.alloc(uint64(n) * 8)
	y := ar.alloc(uint64(n) * 8)

	shardLo, shardHi := shardRange(n, shard, nshards)
	rows := shardRows(n, shard, nshards)
	p := newProgress(t, iters*rows)
	defer p.finish()

	for it := 0; it < iters; it++ {
		for i := shardLo; i < shardHi; i++ {
			t.Move(0, rAcc, rF3) // tmp = 0 (A part)
			dotRowLoop(t, 1, a+uint64(i)*uint64(n)*8, x, n)
			t.Move(7, rVal, rAcc)
			t.Move(8, rAcc, rF3) // y part (B)
			dotRowLoop(t, 9, b+uint64(i)*uint64(n)*8, x, n)
			t.FPMul(15, rVal, rVal, rF3) // α·tmp
			t.FPMul(16, rAcc, rAcc, rF3) // β·y
			t.FP(17, rAcc, rAcc, rVal)
			t.Store(18, y+uint64(i)*8, 8, rAcc)
			if p.step() {
				return
			}
		}
	}
}

// ----------------------------------------------------------------- mvt

// MVT is PolyBench mvt: x1 += A·y1; x2 += Aᵀ·y2 — matrix-vector product
// and transpose.
type MVT struct{}

// NewMVT returns the mvt kernel.
func NewMVT() *MVT { return &MVT{} }

// Name implements Kernel.
func (*MVT) Name() string { return "mvt" }

// Description implements Kernel.
func (*MVT) Description() string { return "Matrix Vector Product" }

// Params implements Kernel (Table 2).
func (*MVT) Params() []Param {
	return []Param{
		{Name: "dim", Kind: KindDim, Levels: [5]int{500, 750, 1250, 2000, 2250}, Test: 2000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{10, 20, 30, 50, 60}, Test: 40},
	}
}

// Trace implements Kernel.
func (*MVT) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, iters := in["dim"], in["iters"]
	ar := newArena()
	a := ar.alloc(uint64(n) * uint64(n) * 8)
	x1 := ar.alloc(uint64(n) * 8)
	y1 := ar.alloc(uint64(n) * 8)
	x2 := ar.alloc(uint64(n) * 8)
	y2 := ar.alloc(uint64(n) * 8)

	shardLo, shardHi := shardRange(n, shard, nshards)
	rows := shardRows(n, shard, nshards)
	p := newProgress(t, iters*2*rows)
	defer p.finish()

	for it := 0; it < iters; it++ {
		for i := shardLo; i < shardHi; i++ {
			t.Load(0, x1+uint64(i)*8, 8, rAcc, rAddr)
			dotRowLoop(t, 1, a+uint64(i)*uint64(n)*8, y1, n)
			t.Store(7, x1+uint64(i)*8, 8, rAcc)
			if p.step() {
				return
			}
		}
		// x2 += Aᵀ·y2 in the j-outer row-streaming form (each thread
		// owns a block of rows of A and accumulates into all of x2 —
		// the compiler-optimized layout of the transpose product).
		for j := shardLo; j < shardHi; j++ {
			t.Load(8, y2+uint64(j)*8, 8, rF3, rAddr)
			row := a + uint64(j)*uint64(n)*8
			for i := 0; i < n; i++ {
				t.Load(9, row+uint64(i)*8, 8, rF0, rAddr)
				t.FPMul(10, rF1, rF0, rF3)
				t.Load(11, x2+uint64(i)*8, 8, rF2, rAddr)
				t.FP(12, rF2, rF2, rF1)
				t.Store(13, x2+uint64(i)*8, 8, rF2)
				t.Branch(14, i+1 < n, rI)
			}
			if p.step() {
				return
			}
		}
	}
}

// ---------------------------------------------------------------- syrk

// Syrk is PolyBench syrk: C = α·A·Aᵀ + β·C — symmetric rank-k update.
type Syrk struct{}

// NewSyrk returns the syrk kernel.
func NewSyrk() *Syrk { return &Syrk{} }

// Name implements Kernel.
func (*Syrk) Name() string { return "syrk" }

// Description implements Kernel.
func (*Syrk) Description() string { return "Symmetric Rank-k Operations" }

// Params implements Kernel (Table 2).
func (*Syrk) Params() []Param {
	return []Param{
		{Name: "dim_i", Kind: KindDim, Levels: [5]int{64, 128, 320, 512, 640}, Test: 2000},
		{Name: "dim_j", Kind: KindDim, Levels: [5]int{64, 128, 320, 512, 640}, Test: 2000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
	}
}

// Trace implements Kernel.
func (*Syrk) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, m := in["dim_i"], in["dim_j"]
	ar := newArena()
	a := ar.alloc(uint64(n) * uint64(m) * 8)
	c := ar.alloc(uint64(n) * uint64(n) * 8)

	shardLo, shardHi := shardRange(n, shard, nshards)
	// Progress counts (i, j) pairs so the budget check runs inside the
	// triangular loop, not once per multi-million-op row.
	total := 0
	for i := shardLo; i < shardHi; i++ {
		total += i + 1
	}
	p := newProgress(t, total)
	defer p.finish()

	for i := shardLo; i < shardHi; i++ {
		for j := 0; j <= i; j++ {
			if p.step() {
				return
			}
			cAddr := c + (uint64(i)*uint64(n)+uint64(j))*8
			t.Load(0, cAddr, 8, rAcc, rAddr)
			t.FPMul(1, rAcc, rAcc, rF3) // β·C[i][j]
			for k := 0; k < m; k++ {
				t.Load(2, a+(uint64(i)*uint64(m)+uint64(k))*8, 8, rF0, rAddr)
				t.Load(3, a+(uint64(j)*uint64(m)+uint64(k))*8, 8, rF1, rAddr)
				t.FPMul(4, rF2, rF0, rF1)
				t.FP(5, rAcc, rAcc, rF2)
				t.Branch(6, k+1 < m, rK)
			}
			t.Store(7, cAddr, 8, rAcc)
		}
	}
}

// ---------------------------------------------------------------- trmm

// Trmm is PolyBench trmm: B = α·A·B with lower-triangular A.
type Trmm struct{}

// NewTrmm returns the trmm kernel.
func NewTrmm() *Trmm { return &Trmm{} }

// Name implements Kernel.
func (*Trmm) Name() string { return "trmm" }

// Description implements Kernel.
func (*Trmm) Description() string { return "Triangular Matrix Multiply" }

// Params implements Kernel (Table 2).
func (*Trmm) Params() []Param {
	return []Param{
		{Name: "dim_i", Kind: KindDim, Levels: [5]int{196, 256, 320, 420, 512}, Test: 2000},
		{Name: "dim_j", Kind: KindDim, Levels: [5]int{196, 256, 320, 420, 512}, Test: 2000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
	}
}

// Trace implements Kernel.
func (*Trmm) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, m := in["dim_i"], in["dim_j"]
	ar := newArena()
	a := ar.alloc(uint64(n) * uint64(n) * 8)
	b := ar.alloc(uint64(n) * uint64(m) * 8)

	// Rows of the output are independent; shard over rows of B. The
	// (i, k, j) loop order streams both B[k][*] and B[i][*] row-wise —
	// the layout an optimizing compiler produces for this kernel — and
	// progress counts (i, k) pairs so the budget check runs inside the
	// triangular loop.
	shardLo, shardHi := shardRange(n, shard, nshards)
	total := 0
	for i := shardLo; i < shardHi; i++ {
		total += n - i // (n-i-1) updates plus the α-scale step
	}
	p := newProgress(t, total)
	defer p.finish()

	for i := shardLo; i < shardHi; i++ {
		rowI := b + uint64(i)*uint64(m)*8
		for k := i + 1; k < n; k++ {
			if p.step() {
				return
			}
			// Scalar A[k][i] multiplies row k of B into row i of B.
			t.Load(0, a+(uint64(k)*uint64(n)+uint64(i))*8, 8, rF3, rAddr)
			rowK := b + uint64(k)*uint64(m)*8
			for j := 0; j < m; j++ {
				t.Load(1, rowK+uint64(j)*8, 8, rF0, rAddr)
				t.FPMul(2, rF1, rF0, rF3)
				t.Load(3, rowI+uint64(j)*8, 8, rF2, rAddr)
				t.FP(4, rF2, rF2, rF1)
				t.Store(5, rowI+uint64(j)*8, 8, rF2)
				t.Branch(6, j+1 < m, rJ)
			}
		}
		// α scale of the finished row.
		if p.step() {
			return
		}
		for j := 0; j < m; j++ {
			t.Load(7, rowI+uint64(j)*8, 8, rF0, rAddr)
			t.FPMul(8, rF0, rF0, rF3)
			t.Store(9, rowI+uint64(j)*8, 8, rF0)
			t.Branch(10, j+1 < m, rJ)
		}
	}
}

// ------------------------------------------------------------------ lu

// LU is PolyBench lu: in-place LU decomposition.
type LU struct{}

// NewLU returns the lu kernel.
func NewLU() *LU { return &LU{} }

// Name implements Kernel.
func (*LU) Name() string { return "lu" }

// Description implements Kernel.
func (*LU) Description() string { return "LU Decomposition" }

// Params implements Kernel (Table 2).
func (*LU) Params() []Param {
	return []Param{
		{Name: "dim", Kind: KindDim, Levels: [5]int{196, 256, 320, 420, 512}, Test: 2000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{98, 128, 256, 420, 512}, Test: 2000},
	}
}

// Trace implements Kernel.
func (*LU) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, iters := in["dim"], in["iters"]
	ar := newArena()
	a := ar.alloc(uint64(n) * uint64(n) * 8)

	// Progress counts (k, i) row updates so the budget check runs inside
	// the elimination loop.
	// Progress weights each row update by its length (n-k) so the
	// coverage extrapolation stays unbiased over the elimination nest.
	total := 0
	for k := 0; k < n-1; k++ {
		total += shardRows(n-k-1, shard, nshards) * (n - k)
	}
	p := newProgress(t, iters*total)
	defer p.finish()

	for it := 0; it < iters; it++ {
		for k := 0; k < n-1; k++ {
			t.Load(0, a+(uint64(k)*uint64(n)+uint64(k))*8, 8, rF3, rAddr) // pivot
			// Rows below the pivot are sharded across threads (blocked).
			lo, hi := shardRange(n-k-1, shard, nshards)
			for i := k + 1 + lo; i < k+1+hi; i++ {
				if p.stepN(n - k) {
					return
				}
				lAddr := a + (uint64(i)*uint64(n)+uint64(k))*8
				t.Load(1, lAddr, 8, rF0, rAddr)
				t.FPDiv(2, rF0, rF0, rF3)
				t.Store(3, lAddr, 8, rF0)
				for j := k + 1; j < n; j++ {
					t.Load(4, a+(uint64(k)*uint64(n)+uint64(j))*8, 8, rF1, rAddr)
					t.Load(5, a+(uint64(i)*uint64(n)+uint64(j))*8, 8, rF2, rAddr)
					t.FPMul(6, rVal, rF0, rF1)
					t.FP(7, rF2, rF2, rVal)
					t.Store(8, a+(uint64(i)*uint64(n)+uint64(j))*8, 8, rF2)
					t.Branch(9, j+1 < n, rJ)
				}
			}
		}
	}
}

// ---------------------------------------------------------------- chol

// Cholesky is PolyBench cholesky: A = L·Lᵀ in place.
type Cholesky struct{}

// NewCholesky returns the cholesky kernel.
func NewCholesky() *Cholesky { return &Cholesky{} }

// Name implements Kernel.
func (*Cholesky) Name() string { return "chol" }

// Description implements Kernel.
func (*Cholesky) Description() string { return "Cholesky Decomposition" }

// Params implements Kernel (Table 2; dimension levels sorted — see file
// comment).
func (*Cholesky) Params() []Param {
	return []Param{
		{Name: "dim", Kind: KindDim, Levels: [5]int{64, 128, 320, 384, 512}, Test: 2000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{10, 20, 30, 50, 80}, Test: 60},
	}
}

// Trace implements Kernel.
func (*Cholesky) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, iters := in["dim"], in["iters"]
	ar := newArena()
	a := ar.alloc(uint64(n) * uint64(n) * 8)

	// Progress weights each unit by its inner-loop length (j) so the
	// coverage extrapolation stays unbiased over the triangular nest.
	total := 0
	for j := 0; j < n; j++ {
		total += (1 + shardRows(n-j-1, shard, nshards)) * (j + 1)
	}
	p := newProgress(t, iters*total)
	defer p.finish()

	for it := 0; it < iters; it++ {
		for j := 0; j < n; j++ {
			if p.stepN(j + 1) {
				return
			}
			// Diagonal: A[j][j] = sqrt(A[j][j] − Σ_k A[j][k]²)
			dAddr := a + (uint64(j)*uint64(n)+uint64(j))*8
			t.Load(0, dAddr, 8, rAcc, rAddr)
			for k := 0; k < j; k++ {
				t.Load(1, a+(uint64(j)*uint64(n)+uint64(k))*8, 8, rF0, rAddr)
				t.FPMul(2, rF1, rF0, rF0)
				t.FP(3, rAcc, rAcc, rF1)
				t.Branch(4, k+1 < j, rK)
			}
			t.FPDiv(5, rAcc, rAcc, rAcc) // sqrt
			t.Store(6, dAddr, 8, rAcc)
			// Column below the diagonal, sharded across threads (blocked).
			lo, hi := shardRange(n-j-1, shard, nshards)
			for i := j + 1 + lo; i < j+1+hi; i++ {
				if p.stepN(j + 1) {
					return
				}
				t.Move(7, rVal, rF3)
				for k := 0; k < j; k++ {
					t.Load(8, a+(uint64(i)*uint64(n)+uint64(k))*8, 8, rF0, rAddr)
					t.Load(9, a+(uint64(j)*uint64(n)+uint64(k))*8, 8, rF1, rAddr)
					t.FPMul(10, rF2, rF0, rF1)
					t.FP(11, rVal, rVal, rF2)
					t.Branch(12, k+1 < j, rK)
				}
				eAddr := a + (uint64(i)*uint64(n)+uint64(j))*8
				t.Load(13, eAddr, 8, rF0, rAddr)
				t.FP(14, rF0, rF0, rVal)
				t.FPDiv(15, rF0, rF0, rAcc)
				t.Store(16, eAddr, 8, rF0)
			}
		}
	}
}

// ---------------------------------------------------------------- gram

// GramSchmidt is PolyBench gramschmidt: QR decomposition by the modified
// Gram-Schmidt process.
type GramSchmidt struct{}

// NewGramSchmidt returns the gramschmidt kernel.
func NewGramSchmidt() *GramSchmidt { return &GramSchmidt{} }

// Name implements Kernel.
func (*GramSchmidt) Name() string { return "gram" }

// Description implements Kernel.
func (*GramSchmidt) Description() string { return "Gram-Schmidt Process" }

// Params implements Kernel (Table 2; dimension levels sorted — see file
// comment).
func (*GramSchmidt) Params() []Param {
	return []Param{
		{Name: "dim_i", Kind: KindDim, Levels: [5]int{64, 128, 320, 384, 512}, Test: 2000},
		{Name: "dim_j", Kind: KindDim, Levels: [5]int{64, 128, 320, 384, 512}, Test: 2000},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
	}
}

// Trace implements Kernel.
func (*GramSchmidt) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	ni, nj := in["dim_i"], in["dim_j"]
	ar := newArena()
	a := ar.alloc(uint64(ni) * uint64(nj) * 8)
	q := ar.alloc(uint64(ni) * uint64(nj) * 8)
	r := ar.alloc(uint64(nj) * uint64(nj) * 8)

	// Progress counts normalization steps plus owned trailing columns so
	// the budget check runs inside the update loop.
	total := 0
	for k := 0; k < nj; k++ {
		total += 1 + shardRows(nj-k-1, shard, nshards)
	}
	p := newProgress(t, total)
	defer p.finish()

	for k := 0; k < nj; k++ {
		if p.step() {
			return
		}
		// R[k][k] = ‖A[:,k]‖ — strided column walk.
		t.Move(0, rAcc, rF3)
		for i := 0; i < ni; i++ {
			t.Load(1, a+(uint64(i)*uint64(nj)+uint64(k))*8, 8, rF0, rAddr)
			t.FPMul(2, rF1, rF0, rF0)
			t.FP(3, rAcc, rAcc, rF1)
			t.Branch(4, i+1 < ni, rI)
		}
		t.FPDiv(5, rAcc, rAcc, rAcc) // sqrt
		t.Store(6, r+(uint64(k)*uint64(nj)+uint64(k))*8, 8, rAcc)
		// Q[:,k] = A[:,k]/R[k][k]
		for i := 0; i < ni; i++ {
			t.Load(7, a+(uint64(i)*uint64(nj)+uint64(k))*8, 8, rF0, rAddr)
			t.FPDiv(8, rF0, rF0, rAcc)
			t.Store(9, q+(uint64(i)*uint64(nj)+uint64(k))*8, 8, rF0)
			t.Branch(10, i+1 < ni, rI)
		}
		// Remaining columns, sharded across threads (blocked).
		lo, hi := shardRange(nj-k-1, shard, nshards)
		for j := k + 1 + lo; j < k+1+hi; j++ {
			if p.step() {
				return
			}
			t.Move(11, rVal, rF3)
			for i := 0; i < ni; i++ {
				t.Load(12, q+(uint64(i)*uint64(nj)+uint64(k))*8, 8, rF0, rAddr)
				t.Load(13, a+(uint64(i)*uint64(nj)+uint64(j))*8, 8, rF1, rAddr)
				t.FPMul(14, rF2, rF0, rF1)
				t.FP(15, rVal, rVal, rF2)
				t.Branch(16, i+1 < ni, rI)
			}
			t.Store(17, r+(uint64(k)*uint64(nj)+uint64(j))*8, 8, rVal)
			for i := 0; i < ni; i++ {
				aAddr := a + (uint64(i)*uint64(nj)+uint64(j))*8
				t.Load(18, aAddr, 8, rF1, rAddr)
				t.Load(19, q+(uint64(i)*uint64(nj)+uint64(k))*8, 8, rF0, rAddr)
				t.FPMul(20, rF2, rF0, rVal)
				t.FP(21, rF1, rF1, rF2)
				t.Store(22, aAddr, 8, rF1)
				t.Branch(23, i+1 < ni, rI)
			}
		}
	}
}
