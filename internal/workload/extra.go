package workload

import "napel/internal/trace"

// This file adds three extension kernels beyond the paper's Table 2
// suite, covering the application domains the paper's introduction
// motivates but its evaluation does not include: bioinformatics
// (Needleman-Wunsch sequence alignment), physical simulation (the
// Rodinia HotSpot thermal stencil) and sparse linear algebra (SpMV, the
// backbone of graph analytics). They are registered separately — All()
// remains exactly the Table 2 suite so every paper experiment is
// unchanged — and serve as ready-made "previously-unseen applications"
// for prediction demos and tests.

// Extensions returns the kernels that go beyond the paper's Table 2.
func Extensions() []Kernel {
	return []Kernel{NewNW(), NewHotspot(), NewSpMV()}
}

// AllExtended returns the Table 2 suite plus the extension kernels.
func AllExtended() []Kernel {
	return append(All(), Extensions()...)
}

// ------------------------------------------------------------------ nw

// NW is Needleman-Wunsch sequence alignment: a 2D dynamic program over
// the score matrix with a 3-point dependency stencil — the GRIM-Filter
// class of bioinformatics workloads cited in the paper's introduction.
type NW struct{}

// NewNW returns the nw kernel.
func NewNW() *NW { return &NW{} }

// Name implements Kernel.
func (*NW) Name() string { return "nw" }

// Description implements Kernel.
func (*NW) Description() string { return "Needleman-Wunsch Alignment" }

// Params implements Kernel.
func (*NW) Params() []Param {
	return []Param{
		{Name: "dim", Kind: KindDim, Levels: [5]int{256, 512, 1024, 2048, 3072}, Test: 4096},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
	}
}

// Trace implements Kernel. The DP fills anti-diagonals; cells on one
// anti-diagonal are independent and sharded across threads, which is the
// standard parallelization (and gives the kernel its block-synchronous
// irregular write pattern).
func (*NW) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n := in["dim"]
	ar := newArena()
	score := ar.alloc(uint64(n+1) * uint64(n+1) * 4) // int32 scores
	ref := ar.alloc(uint64(n))                       // sequence bytes
	query := ar.alloc(uint64(n))

	cell := func(i, j int) uint64 { return score + (uint64(i)*uint64(n+1)+uint64(j))*4 }

	// Total owned cells across all anti-diagonals.
	total := 0
	for d := 2; d <= 2*n; d++ {
		lo := d - n
		if lo < 1 {
			lo = 1
		}
		hi := d - 1
		if hi > n {
			hi = n
		}
		if hi >= lo {
			total += shardRows(hi-lo+1, shard, nshards)
		}
	}
	p := newProgress(t, total)
	defer p.finish()

	for d := 2; d <= 2*n; d++ {
		lo := d - n
		if lo < 1 {
			lo = 1
		}
		hi := d - 1
		if hi > n {
			hi = n
		}
		if hi < lo {
			continue
		}
		slo, shi := shardRange(hi-lo+1, shard, nshards)
		for idx := slo; idx < shi; idx++ {
			if p.step() {
				return
			}
			i := lo + idx
			j := d - i
			// score[i][j] = max(diag+sub, up+gap, left+gap)
			t.Load(0, ref+uint64(i-1), 1, rF0, rAddr)
			t.Load(1, query+uint64(j-1), 1, rF1, rAddr)
			t.Int(2, rTmp, rF0, rF1) // substitution score
			t.Load(3, cell(i-1, j-1), 4, rVal, rAddr)
			t.Int(4, rVal, rVal, rTmp)
			t.Load(5, cell(i-1, j), 4, rF2, rAddr)
			t.Int(6, rF2, rF2, rK)
			t.Branch(7, (i+j)&1 == 0, rF2) // max select
			t.Load(8, cell(i, j-1), 4, rF3, rAddr)
			t.Int(9, rF3, rF3, rK)
			t.Branch(10, (i*7+j)&1 == 0, rF3)
			t.Store(11, cell(i, j), 4, rVal)
		}
	}
}

// ------------------------------------------------------------- hotspot

// Hotspot is the Rodinia HotSpot thermal simulation: an iterated
// 5-point stencil over temperature and power grids.
type Hotspot struct{}

// NewHotspot returns the hotspot kernel.
func NewHotspot() *Hotspot { return &Hotspot{} }

// Name implements Kernel.
func (*Hotspot) Name() string { return "hotspot" }

// Description implements Kernel.
func (*Hotspot) Description() string { return "HotSpot Thermal Simulation" }

// Params implements Kernel.
func (*Hotspot) Params() []Param {
	return []Param{
		{Name: "dim", Kind: KindDim, Levels: [5]int{128, 256, 512, 1024, 1536}, Test: 2048},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{2, 4, 8, 16, 32}, Test: 16},
	}
}

// Trace implements Kernel: rows are sharded blockwise; each cell reads
// its four neighbours, the centre and the power map.
func (*Hotspot) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, iters := in["dim"], in["iters"]
	ar := newArena()
	temp := ar.alloc(uint64(n) * uint64(n) * 8)
	power := ar.alloc(uint64(n) * uint64(n) * 8)
	out := ar.alloc(uint64(n) * uint64(n) * 8)

	idx := func(i, j int) uint64 { return (uint64(i)*uint64(n) + uint64(j)) * 8 }
	lo, hi := shardRange(n-2, shard, nshards)
	p := newProgress(t, iters*(hi-lo))
	defer p.finish()

	for it := 0; it < iters; it++ {
		for i := 1 + lo; i < 1+hi; i++ {
			if p.step() {
				return
			}
			for j := 1; j < n-1; j++ {
				t.Load(0, temp+idx(i, j), 8, rF0, rAddr)
				t.Load(1, temp+idx(i-1, j), 8, rF1, rAddr)
				t.Load(2, temp+idx(i+1, j), 8, rF2, rAddr)
				t.Load(3, temp+idx(i, j-1), 8, rF3, rAddr)
				t.Load(4, temp+idx(i, j+1), 8, rVal, rAddr)
				t.FP(5, rAcc, rF1, rF2)
				t.FP(6, rAcc, rAcc, rF3)
				t.FP(7, rAcc, rAcc, rVal)
				t.FPMul(8, rAcc, rAcc, rF0)
				t.Load(9, power+idx(i, j), 8, rF1, rAddr)
				t.FP(10, rAcc, rAcc, rF1)
				t.Store(11, out+idx(i, j), 8, rAcc)
				t.Branch(12, j+2 < n, rJ)
			}
		}
		temp, out = out, temp // ping-pong buffers
	}
}

// ---------------------------------------------------------------- spmv

// SpMV is sparse matrix-vector multiplication in CSR form over a
// synthetic power-law matrix — the irregular-gather workload underlying
// graph analytics.
type SpMV struct{}

// NewSpMV returns the spmv kernel.
func NewSpMV() *SpMV { return &SpMV{} }

// Name implements Kernel.
func (*SpMV) Name() string { return "spmv" }

// Description implements Kernel.
func (*SpMV) Description() string { return "Sparse Matrix-Vector Multiply" }

// Params implements Kernel.
func (*SpMV) Params() []Param {
	return []Param{
		{Name: "rows", Kind: KindSize, Levels: [5]int{100_000, 300_000, 500_000, 800_000, 1_000_000}, Test: 700_000},
		{Name: "nnz_per_row", Kind: KindOther, Levels: [5]int{4, 8, 12, 20, 32}, Test: 12},
		{Name: "threads", Kind: KindThreads, Levels: [5]int{4, 8, 16, 32, 64}, Test: 32},
		{Name: "iters", Kind: KindIters, Levels: [5]int{2, 4, 8, 12, 16}, Test: 8},
	}
}

// Trace implements Kernel: rows are sharded blockwise; column indices
// come from a deterministic hash, giving the gather of x its random
// pattern.
func (*SpMV) Trace(in Input, shard, nshards int, t *trace.Tracer) {
	n, nnz, iters := in["rows"], in["nnz_per_row"], in["iters"]
	ar := newArena()
	rowPtr := ar.alloc(uint64(n+1) * 4)
	colIdx := ar.alloc(uint64(n) * uint64(nnz) * 4)
	vals := ar.alloc(uint64(n) * uint64(nnz) * 8)
	x := ar.alloc(uint64(n) * 8)
	y := ar.alloc(uint64(n) * 8)

	lo, hi := shardRange(n, shard, nshards)
	p := newProgress(t, iters*(hi-lo))
	defer p.finish()

	const seed = 0x59a12
	for it := 0; it < iters; it++ {
		for i := lo; i < hi; i++ {
			if p.step() {
				return
			}
			t.Load(0, rowPtr+uint64(i)*4, 4, rI, rAddr)
			t.Load(1, rowPtr+uint64(i+1)*4, 4, rJ, rAddr)
			t.Move(2, rAcc, rF3)
			base := uint64(i) * uint64(nnz)
			for e := 0; e < nnz; e++ {
				col := mix64(uint64(i)*31+uint64(e)^seed) % uint64(n)
				t.Load(3, colIdx+(base+uint64(e))*4, 4, rK, rI)
				t.Load(4, vals+(base+uint64(e))*8, 8, rF0, rI)
				t.Load(5, x+col*8, 8, rF1, rK) // the irregular gather
				t.FPMul(6, rF2, rF0, rF1)
				t.FP(7, rAcc, rAcc, rF2)
				t.Branch(8, e+1 < nnz, rK)
			}
			t.Store(9, y+uint64(i)*8, 8, rAcc)
		}
	}
}
