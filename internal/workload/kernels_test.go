package workload

import (
	"testing"

	"napel/internal/trace"
)

// traceStats summarizes a kernel run for structural assertions.
type traceStats struct {
	counter trace.Counter
	lines   map[uint64]struct{}
	minAddr uint64
	maxAddr uint64
}

func collectStats(k Kernel, in Input, budget uint64) *traceStats {
	s := &traceStats{lines: map[uint64]struct{}{}, minAddr: ^uint64(0)}
	tr := trace.NewTracer(budget, trace.ConsumerFunc(func(i trace.Inst) {
		s.counter.OnInst(i)
		if i.Op.IsMem() {
			s.lines[i.Addr>>6] = struct{}{}
			if i.Addr < s.minAddr {
				s.minAddr = i.Addr
			}
			if i.Addr > s.maxAddr {
				s.maxAddr = i.Addr
			}
		}
	}))
	k.Trace(in, 0, 1, tr)
	return s
}

// TestKernelInstructionMixes checks each kernel's structural signature:
// the numeric kernels are FP-heavy, the graph kernel is not.
func TestKernelInstructionMixes(t *testing.T) {
	fpKernels := []string{"atax", "gemv", "gesu", "mvt", "syrk", "trmm", "lu", "chol", "gram", "bp", "kme"}
	for _, name := range fpKernels {
		k, _ := ByName(name)
		s := collectStats(k, tinyInput(k), 50000)
		fp := s.counter.ByOp[trace.OpFPALU] + s.counter.ByOp[trace.OpFPMul] + s.counter.ByOp[trace.OpFPDiv]
		if fp == 0 {
			t.Errorf("%s emitted no floating-point work", name)
		}
	}
	bfs, _ := ByName("bfs")
	s := collectStats(bfs, tinyInput(bfs), 50000)
	fp := s.counter.ByOp[trace.OpFPALU] + s.counter.ByOp[trace.OpFPMul] + s.counter.ByOp[trace.OpFPDiv]
	if fp != 0 {
		t.Errorf("bfs emitted %d floating-point ops; graph traversal should be integer-only", fp)
	}
	if s.counter.ByOp[trace.OpBranch] == 0 {
		t.Error("bfs emitted no branches")
	}
}

// TestFootprintGrowsWithInput verifies the defining property behind the
// DoE: bigger inputs touch more memory.
func TestFootprintGrowsWithInput(t *testing.T) {
	for _, k := range All() {
		small := tinyInput(k)
		big := small.Clone()
		for _, p := range k.Params() {
			if p.Kind == KindDim || p.Kind == KindSize {
				big[p.Name] *= 2
			}
		}
		fpSmall := len(collectStats(k, small, 400_000).lines)
		fpBig := len(collectStats(k, big, 400_000).lines)
		if fpBig <= fpSmall {
			t.Errorf("%s: footprint did not grow with input (%d -> %d lines)", k.Name(), fpSmall, fpBig)
		}
	}
}

// TestMemFractionRanges sanity-checks each kernel's memory intensity:
// every kernel sits between pure-compute and pure-memory extremes.
func TestMemFractionRanges(t *testing.T) {
	for _, k := range All() {
		s := collectStats(k, tinyInput(k), 100_000)
		frac := float64(s.counter.Mem()) / float64(s.counter.Total)
		if frac < 0.15 || frac > 0.85 {
			t.Errorf("%s: memory fraction %.2f outside plausible [0.15, 0.85]", k.Name(), frac)
		}
	}
}

// TestThreadsParameterDoesNotChangeSequentialTrace checks that the
// thread-count DoE parameter only matters for sharded execution: the
// sequential (1-of-1) trace is identical across thread settings, which
// is what lets one profile serve all thread counts.
func TestThreadsParameterDoesNotChangeSequentialTrace(t *testing.T) {
	for _, k := range All() {
		a := tinyInput(k)
		b := a.Clone()
		b["threads"] = a["threads"] * 2
		ca := collectStats(k, a, 20000)
		cb := collectStats(k, b, 20000)
		if ca.counter.Total != cb.counter.Total {
			t.Errorf("%s: sequential trace depends on the threads parameter (%d vs %d ops)",
				k.Name(), ca.counter.Total, cb.counter.Total)
		}
	}
}

// TestShardTracesAreDisjointWork verifies sharding actually partitions
// the bulk work: two different shards must not emit identical traces (on
// kernels with more work than serial sections).
func TestShardTracesAreDisjointWork(t *testing.T) {
	for _, k := range All() {
		in := tinyInput(k)
		hash := func(shard int) uint64 {
			var h uint64 = 14695981039346656037
			tr := trace.NewTracer(20000, trace.ConsumerFunc(func(i trace.Inst) {
				h ^= i.Addr
				h *= 1099511628211
			}))
			k.Trace(in, shard, 4, tr)
			return h
		}
		if hash(0) == hash(1) {
			t.Errorf("%s: shards 0 and 1 of 4 emitted identical address streams", k.Name())
		}
	}
}

// TestBFSVisitsMostNodes checks the synthetic graph is connected enough
// for a BFS sweep to be a meaningful workload.
func TestBFSVisitsMostNodes(t *testing.T) {
	k, _ := ByName("bfs")
	in := Input{"nodes": 2000, "weights": 4, "threads": 1, "iters": 1}
	visited := map[uint64]struct{}{}
	visBase := uint64(0)
	tr := trace.NewTracer(0, trace.ConsumerFunc(func(i trace.Inst) {
		if i.Op == trace.OpStore && i.Size == 1 {
			if visBase == 0 || i.Addr < visBase {
				visBase = i.Addr
			}
			visited[i.Addr] = struct{}{}
		}
	}))
	k.Trace(in, 0, 1, tr)
	// Mean degree 2*4+1... expected giant component covers most nodes.
	if len(visited) < 1000 {
		t.Fatalf("BFS discovered only %d of 2000 nodes", len(visited))
	}
}

// TestHostAccessSignatures pins each kernel's qualitative memory
// signature as the host model sees it: the streaming PolyBench kernels
// must be dominated by prefetchable misses, while the irregular Rodinia
// kernels (and spmv) must show a large irregular share — the distinction
// that drives the Figure 7 suitability split.
func TestHostAccessSignatures(t *testing.T) {
	classify := func(k Kernel, in Input) (stream, irreg int) {
		siteLast := map[uint32]uint64{}
		tr := trace.NewTracer(60_000, trace.ConsumerFunc(func(i trace.Inst) {
			if !i.Op.IsMem() {
				return
			}
			if last, ok := siteLast[i.PC]; ok {
				delta := i.Addr - last
				if last > i.Addr {
					delta = last - i.Addr
				}
				if delta <= 256 {
					stream++
				} else {
					irreg++
				}
			}
			siteLast[i.PC] = i.Addr
		}))
		k.Trace(in, 0, 1, tr)
		return stream, irreg
	}
	streaming := []string{"gesu", "mvt", "gemv", "syrk", "trmm"}
	for _, name := range streaming {
		k, _ := ByName(name)
		s, i := classify(k, tinyInput(k))
		if s <= 3*i {
			t.Errorf("%s: expected streaming signature, got %d stream / %d irregular", name, s, i)
		}
	}
	// Irregular kernels need footprints large enough that their gathers
	// actually spread (tiny proxies collapse into a few lines).
	irregular := map[string]Input{
		"bfs":  {"nodes": 20000, "weights": 4, "threads": 1, "iters": 1},
		"spmv": {"rows": 20000, "nnz_per_row": 8, "threads": 1, "iters": 1},
	}
	for name, in := range irregular {
		k, _ := ByName(name)
		s, i := classify(k, in)
		if i <= s/3 {
			t.Errorf("%s: expected irregular signature, got %d stream / %d irregular", name, s, i)
		}
	}
}
