package workload

import (
	"testing"
	"testing/quick"

	"napel/internal/trace"
)

// tinyInput returns a small, fast input for kernel k.
func tinyInput(k Kernel) Input {
	in := Input{}
	for _, p := range k.Params() {
		in[p.Name] = p.Levels[LevelMin]
	}
	return Scale(k, in, 64, 1)
}

func TestAllKernelsRegistered(t *testing.T) {
	ks := All()
	if len(ks) != 12 {
		t.Fatalf("%d kernels, want 12 (Table 2)", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		if names[k.Name()] {
			t.Fatalf("duplicate kernel name %q", k.Name())
		}
		names[k.Name()] = true
		if k.Description() == "" {
			t.Errorf("%s has no description", k.Name())
		}
	}
	for _, want := range []string{"atax", "bfs", "bp", "chol", "gemv", "gesu", "gram", "kme", "lu", "mvt", "syrk", "trmm"} {
		if !names[want] {
			t.Errorf("missing Table 2 kernel %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("atax")
	if err != nil || k.Name() != "atax" {
		t.Fatalf("ByName(atax) = %v, %v", k, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestParamLevelsMonotone(t *testing.T) {
	for _, k := range All() {
		for _, p := range k.Params() {
			for i := 1; i < 5; i++ {
				if p.Levels[i] < p.Levels[i-1] {
					t.Errorf("%s.%s levels not non-decreasing: %v", k.Name(), p.Name, p.Levels)
				}
			}
			if p.Test <= 0 {
				t.Errorf("%s.%s test value %d", k.Name(), p.Name, p.Test)
			}
		}
	}
}

func TestTable2CCDCounts(t *testing.T) {
	// Table 4 column "#DoE conf." depends on the parameter counts here.
	want := map[string]int{
		"atax": 2, "bfs": 4, "bp": 4, "chol": 3, "gemv": 3, "gesu": 3,
		"gram": 3, "kme": 4, "lu": 3, "mvt": 3, "syrk": 3, "trmm": 3,
	}
	for _, k := range All() {
		if got := len(k.Params()); got != want[k.Name()] {
			t.Errorf("%s has %d DoE parameters, want %d", k.Name(), got, want[k.Name()])
		}
	}
}

func TestValidate(t *testing.T) {
	k, _ := ByName("atax")
	good := Input{"dim": 100, "threads": 4}
	if err := Validate(k, good); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if err := Validate(k, Input{"dim": 100}); err == nil {
		t.Error("missing parameter accepted")
	}
	if err := Validate(k, Input{"dim": 0, "threads": 4}); err == nil {
		t.Error("non-positive parameter accepted")
	}
	if err := Validate(k, Input{"dim": 1, "threads": 4, "bogus": 1}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestScale(t *testing.T) {
	k, _ := ByName("gemv")
	in := TestInput(k) // dim=8000, threads=32, iters=60
	out := Scale(k, in, 8, 2)
	if out["dim"] != 1000 {
		t.Errorf("scaled dim = %d, want 1000", out["dim"])
	}
	if out["threads"] != 32 {
		t.Errorf("threads changed: %d", out["threads"])
	}
	if out["iters"] != 2 {
		t.Errorf("iters = %d, want 2", out["iters"])
	}
	// Scaling floors.
	tiny := Scale(k, Input{"dim": 100, "threads": 4, "iters": 1}, 1000, 0)
	if tiny["dim"] < 16 {
		t.Errorf("dim under floor: %d", tiny["dim"])
	}
	// factor 1 leaves sizes alone.
	same := Scale(k, in, 1, 0)
	if same["dim"] != in["dim"] || same["iters"] != in["iters"] {
		t.Error("scale factor 1 changed values")
	}
}

func TestInputCloneAndString(t *testing.T) {
	in := Input{"b": 2, "a": 1}
	if in.String() != "a=1 b=2" {
		t.Errorf("String = %q", in.String())
	}
	c := in.Clone()
	c["a"] = 9
	if in["a"] != 1 {
		t.Error("Clone aliases the original")
	}
	if in.Threads() != 1 {
		t.Error("missing threads should default to 1")
	}
	if (Input{"threads": 8}).Threads() != 8 {
		t.Error("Threads() wrong")
	}
}

func TestShardRange(t *testing.T) {
	// The blocked ranges partition [0, n) exactly.
	if err := quick.Check(func(nn, ss uint8) bool {
		n := int(nn)%100 + 1
		nsh := int(ss)%8 + 1
		covered := 0
		prev := 0
		for s := 0; s < nsh; s++ {
			lo, hi := shardRange(n, s, nsh)
			if lo != prev || hi < lo || hi > n {
				return false
			}
			covered += hi - lo
			prev = hi
		}
		return covered == n && prev == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDeterminism(t *testing.T) {
	for _, k := range All() {
		in := tinyInput(k)
		hash := func() uint64 {
			var h uint64 = 14695981039346656037
			tr := trace.NewTracer(20000, trace.ConsumerFunc(func(i trace.Inst) {
				h ^= i.Addr ^ uint64(i.PC)<<32 ^ uint64(i.Op)
				h *= 1099511628211
			}))
			k.Trace(in, 0, 1, tr)
			return h
		}
		if hash() != hash() {
			t.Errorf("%s trace not deterministic", k.Name())
		}
	}
}

func TestAllKernelsEmitSomething(t *testing.T) {
	for _, k := range All() {
		in := tinyInput(k)
		var c trace.Counter
		tr := trace.NewTracer(100000, &c)
		k.Trace(in, 0, 1, tr)
		if c.Total == 0 {
			t.Errorf("%s emitted no instructions for %s", k.Name(), in)
		}
		if c.Mem() == 0 {
			t.Errorf("%s emitted no memory instructions", k.Name())
		}
		if cov := tr.Coverage(); cov <= 0 || cov > 1 {
			t.Errorf("%s coverage %v", k.Name(), cov)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	// Kernels may overshoot the budget by at most one middle-loop
	// iteration; require they stop within 4x of it.
	const budget = 5000
	for _, k := range All() {
		in := tinyInput(k)
		var c trace.Counter
		tr := trace.NewTracer(budget, &c)
		k.Trace(in, 0, 1, tr)
		if c.Total > budget*4 {
			t.Errorf("%s emitted %d instructions against a budget of %d", k.Name(), c.Total, budget)
		}
	}
}

func TestCoverageReflectsBudgetCut(t *testing.T) {
	for _, k := range All() {
		in := tinyInput(k)
		// Count the full trace first.
		var full trace.Counter
		k.Trace(in, 0, 1, trace.NewTracer(0, &full))
		if full.Total < 4000 {
			continue // too small to cut meaningfully
		}
		var cut trace.Counter
		tr := trace.NewTracer(full.Total/4, &cut)
		k.Trace(in, 0, 1, tr)
		cov := tr.Coverage()
		if cov >= 1 {
			t.Errorf("%s: budget-cut run reports full coverage", k.Name())
			continue
		}
		// Extrapolation should land within 2x of the true total.
		est := float64(cut.Total) / cov
		ratio := est / float64(full.Total)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: extrapolated %0.f vs true %d (ratio %.2f)", k.Name(), est, full.Total, ratio)
		}
	}
}

func TestShardsPartitionWork(t *testing.T) {
	// The union of all shards' traces should roughly equal the
	// sequential trace in total instruction count (within the tolerance
	// set by replicated serial sections).
	for _, k := range All() {
		in := tinyInput(k)
		var seq trace.Counter
		k.Trace(in, 0, 1, trace.NewTracer(0, &seq))

		const nsh = 4
		var total uint64
		for s := 0; s < nsh; s++ {
			var c trace.Counter
			k.Trace(in, s, nsh, trace.NewTracer(0, &c))
			total += c.Total
		}
		ratio := float64(total) / float64(seq.Total)
		// gram/chol/lu replicate pivot/normalization work per shard, so
		// allow up to 4x; below 0.9 means work was lost.
		if ratio < 0.9 || ratio > 4.5 {
			t.Errorf("%s: sharded total %d vs sequential %d (ratio %.2f)", k.Name(), total, seq.Total, ratio)
		}
	}
}

func TestMemoryAccessesAligned(t *testing.T) {
	for _, k := range All() {
		in := tinyInput(k)
		bad := 0
		tr := trace.NewTracer(50000, trace.ConsumerFunc(func(i trace.Inst) {
			if i.Op.IsMem() {
				if i.Size == 0 {
					bad++
				}
				if i.Addr == 0 {
					bad++
				}
			}
		}))
		k.Trace(in, 0, 1, tr)
		if bad > 0 {
			t.Errorf("%s emitted %d malformed memory accesses", k.Name(), bad)
		}
	}
}

func TestTestInputAndCentralInput(t *testing.T) {
	for _, k := range All() {
		if err := Validate(k, TestInput(k)); err != nil {
			t.Errorf("TestInput(%s): %v", k.Name(), err)
		}
		if err := Validate(k, CentralInput(k)); err != nil {
			t.Errorf("CentralInput(%s): %v", k.Name(), err)
		}
	}
}
