package workload_test

import (
	"fmt"

	"napel/internal/trace"
	"napel/internal/workload"
)

// ExampleByName looks up a Table 2 kernel and prints its DoE metadata.
func ExampleByName() {
	k, err := workload.ByName("bfs")
	if err != nil {
		panic(err)
	}
	fmt.Println(k.Description())
	for _, p := range k.Params() {
		fmt.Printf("%-8s levels %v test %d\n", p.Name, p.Levels, p.Test)
	}
	// Output:
	// Breadth-first Search
	// nodes    levels [400000 800000 900000 1200000 1400000] test 1000000
	// weights  levels [1 2 4 25 49] test 4
	// threads  levels [1 9 16 32 64] test 32
	// iters    levels [30 40 65 70 80] test 95
}

// ExampleKernel_trace streams a tiny kernel trace into a counter — the
// pattern every consumer in the pipeline uses.
func ExampleKernel_trace() {
	k, _ := workload.ByName("atax")
	in := workload.Input{"dim": 8, "threads": 2}
	var c trace.Counter
	k.Trace(in, 0, 1, trace.NewTracer(0, &c))
	fmt.Println("total instructions:", c.Total)
	fmt.Println("memory accesses:   ", c.Mem())
	// Output:
	// total instructions: 856
	// memory accesses:    336
}

// ExampleScale derives a reduced proxy input for fast experimentation.
func ExampleScale() {
	k, _ := workload.ByName("gemv")
	full := workload.TestInput(k)
	small := workload.Scale(k, full, 8, 2)
	fmt.Println("full: ", full)
	fmt.Println("small:", small)
	// Output:
	// full:  dim=8000 iters=60 threads=32
	// small: dim=1000 iters=2 threads=32
}
