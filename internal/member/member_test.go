package member

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// testClock is an injectable, advanceable clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestJoinAliveAndEpoch(t *testing.T) {
	s := NewSet(Config{JoinAlive: true})
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh set epoch = %d, want 0", got)
	}
	ep, changed := s.Join("w1", []string{"riscv"})
	if !changed || ep != 1 {
		t.Fatalf("Join(w1) = (%d, %v), want (1, true)", ep, changed)
	}
	// Re-joining an alive member is a heartbeat, not a change.
	ep, changed = s.Join("w1", []string{"riscv", "x86"})
	if changed || ep != 1 {
		t.Fatalf("re-Join(w1) = (%d, %v), want (1, false)", ep, changed)
	}
	info, ok := s.Get("w1")
	if !ok || !reflect.DeepEqual(info.Tags, []string{"riscv", "x86"}) {
		t.Fatalf("tags not refreshed on re-join: %+v ok=%v", info, ok)
	}
	if got := s.Alive(); !reflect.DeepEqual(got, []string{"w1"}) {
		t.Fatalf("Alive() = %v, want [w1]", got)
	}
}

func TestJoinHeldDownUntilFirstSuccess(t *testing.T) {
	s := NewSet(Config{}) // JoinAlive=false: prober must verify first
	ep, changed := s.Join("r1", nil)
	if changed || ep != 0 {
		t.Fatalf("Join = (%d, %v), want (0, false): unverified member must not enter alive set", ep, changed)
	}
	if got := s.Alive(); len(got) != 0 {
		t.Fatalf("Alive() = %v, want empty before first success", got)
	}
	if !s.ReportSuccess("r1") {
		t.Fatal("first ReportSuccess should admit the member")
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1 after admission", got)
	}
}

func TestEvictAtThresholdAndReadmit(t *testing.T) {
	var events []Event
	s := NewSet(Config{FailThreshold: 3, JoinAlive: true, OnChange: func(ev Event) {
		events = append(events, ev)
	}})
	s.Join("r1", nil)
	ep0 := s.Epoch()

	// Two failures: suspect, still alive, no epoch change.
	for i := 0; i < 2; i++ {
		if s.ReportFailure("r1") {
			t.Fatalf("failure %d should not evict (threshold 3)", i+1)
		}
	}
	if info, _ := s.Get("r1"); info.State != Suspect || info.Fails != 2 {
		t.Fatalf("after 2 failures: %+v, want Suspect/2", info)
	}
	if got := s.Alive(); len(got) != 1 {
		t.Fatalf("suspect member must stay in alive set, got %v", got)
	}
	if s.Epoch() != ep0 {
		t.Fatal("suspect transitions must not bump the epoch")
	}

	// A success mid-streak resets the count.
	s.ReportSuccess("r1")
	if info, _ := s.Get("r1"); info.State != Alive || info.Fails != 0 {
		t.Fatalf("success should reset streak: %+v", info)
	}

	// Third consecutive failure evicts.
	s.ReportFailure("r1")
	s.ReportFailure("r1")
	if !s.ReportFailure("r1") {
		t.Fatal("3rd consecutive failure should evict")
	}
	if got := s.Alive(); len(got) != 0 {
		t.Fatalf("evicted member still in alive set: %v", got)
	}
	epEvict := s.Epoch()
	if epEvict != ep0+1 {
		t.Fatalf("eviction epoch = %d, want %d", epEvict, ep0+1)
	}
	// Further failures on a down member are no-ops.
	if s.ReportFailure("r1") || s.Epoch() != epEvict {
		t.Fatal("failures on a down member must not change anything")
	}

	// Recovery readmits at a new epoch.
	if !s.ReportSuccess("r1") {
		t.Fatal("success should readmit a down member")
	}
	if s.Epoch() != epEvict+1 {
		t.Fatalf("readmission epoch = %d, want %d", s.Epoch(), epEvict+1)
	}

	wantChanges := []string{"join", "evict", "readmit"}
	var gotChanges []string
	for _, ev := range events {
		gotChanges = append(gotChanges, ev.Change)
	}
	if !reflect.DeepEqual(gotChanges, wantChanges) {
		t.Fatalf("event changes = %v, want %v", gotChanges, wantChanges)
	}
}

func TestMarkDownImmediate(t *testing.T) {
	s := NewSet(Config{FailThreshold: 5, JoinAlive: true})
	s.Join("r1", nil)
	if !s.MarkDown("r1") {
		t.Fatal("MarkDown on an alive member should change the set")
	}
	if got := s.Alive(); len(got) != 0 {
		t.Fatalf("MarkDown must bypass the failure threshold, alive=%v", got)
	}
	if s.MarkDown("r1") {
		t.Fatal("MarkDown on a down member is a no-op")
	}
}

func TestLeave(t *testing.T) {
	s := NewSet(Config{JoinAlive: true})
	s.Join("r1", nil)
	if !s.Leave("r1") {
		t.Fatal("Leave of an alive member should change the set")
	}
	if s.Len() != 0 {
		t.Fatal("Leave should remove the record entirely")
	}
	if s.Leave("r1") {
		t.Fatal("Leave of an unknown member is a no-op")
	}
}

func TestExpireStale(t *testing.T) {
	clock := newTestClock()
	s := NewSet(Config{JoinAlive: true, ExpireAfter: 10 * time.Second, Now: clock.now})
	s.Join("w1", []string{"a"})
	s.Join("w2", nil)
	clock.advance(6 * time.Second)
	s.Touch("w2") // heartbeat keeps w2 fresh
	clock.advance(6 * time.Second)
	ep0 := s.Epoch()
	expired := s.ExpireStale()
	if !reflect.DeepEqual(expired, []string{"w1"}) {
		t.Fatalf("ExpireStale = %v, want [w1]", expired)
	}
	if got := s.Alive(); !reflect.DeepEqual(got, []string{"w2"}) {
		t.Fatalf("Alive = %v, want [w2]", got)
	}
	if s.Epoch() != ep0+1 {
		t.Fatalf("expiry of an alive member must bump the epoch: %d -> %d", ep0, s.Epoch())
	}
	if s.Len() != 1 {
		t.Fatalf("expired member should be removed, Len=%d", s.Len())
	}
	// Expiry disabled: no-op.
	s2 := NewSet(Config{JoinAlive: true})
	s2.Join("w1", nil)
	if got := s2.ExpireStale(); got != nil {
		t.Fatalf("ExpireStale with expiry disabled = %v, want nil", got)
	}
}

func TestSnapshotSortedAndCopied(t *testing.T) {
	s := NewSet(Config{JoinAlive: true})
	s.Join("b", []string{"t1"})
	s.Join("a", nil)
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	snap[1].Tags[0] = "mutated"
	if info, _ := s.Get("b"); info.Tags[0] != "t1" {
		t.Fatal("Snapshot must return copies, not aliases")
	}
}

func TestHasAll(t *testing.T) {
	cases := []struct {
		have, want []string
		ok         bool
	}{
		{nil, nil, true},
		{nil, []string{"x"}, false},
		{[]string{"x"}, nil, true},
		{[]string{"x", "y"}, []string{"y"}, true},
		{[]string{"x", "y"}, []string{"y", "z"}, false},
		{[]string{"x", "y", "z"}, []string{"z", "x"}, true},
	}
	for _, c := range cases {
		if got := HasAll(c.have, c.want); got != c.ok {
			t.Errorf("HasAll(%v, %v) = %v, want %v", c.have, c.want, got, c.ok)
		}
	}
}

func TestConcurrentReports(t *testing.T) {
	s := NewSet(Config{FailThreshold: 2, JoinAlive: true})
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		s.Join(n, nil)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				n := names[(i+j)%len(names)]
				if j%3 == 0 {
					s.ReportFailure(n)
				} else {
					s.ReportSuccess(n)
				}
				s.Alive()
				s.Epoch()
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(names))
	}
}
