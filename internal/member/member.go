// Package member is the membership plane shared by the serving and
// collection tiers: a mutex-guarded set of named members with
// probe-driven liveness (K consecutive failures evict, one success
// readmits), capability tags, optional last-seen expiry, and a
// monotonic epoch that advances exactly when the alive set changes.
//
// The package is deliberately dumb about transport: callers (the gate's
// /readyz prober, collectd's lease handler) decide what counts as a
// probe, a success, or a heartbeat and report it here. In exchange the
// set gives them one consistent answer to "who is in the ring / who can
// take work right now", a stable epoch to stamp on routing tables, and
// deterministic, sorted snapshots for tests and status endpoints.
package member

import (
	"sort"
	"sync"
	"time"
)

// State is a member's liveness as judged by reported probe outcomes.
type State uint8

const (
	// Down members are out of the alive set: evicted after
	// FailThreshold consecutive failures, self-reported unready, or
	// newly joined and not yet verified (when Config.JoinAlive is
	// false).
	Down State = iota
	// Suspect members are alive but have a non-zero consecutive
	// failure count below the eviction threshold.
	Suspect
	// Alive members are in the alive set with no outstanding failures.
	Alive
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	default:
		return "down"
	}
}

// Info is a point-in-time copy of one member's record.
type Info struct {
	Name     string
	Tags     []string
	State    State
	Fails    int // consecutive failures since the last success
	Joined   time.Time
	LastSeen time.Time
}

// Event describes one alive-set change, delivered to Config.OnChange
// after the set's lock is released.
type Event struct {
	Epoch  uint64 // epoch the change produced
	Name   string
	Change string // "join", "evict", "readmit", "expire", "leave"
}

// Config parameterizes a Set. The zero value is usable.
type Config struct {
	// FailThreshold is the number of consecutive ReportFailure calls
	// that evict an alive member. Default 3.
	FailThreshold int
	// ExpireAfter drops members not seen (joined, touched, or
	// successfully probed) for this long from the set entirely.
	// 0 disables expiry. Expiry is checked by ExpireStale.
	ExpireAfter time.Duration
	// JoinAlive controls the state of a newly joined member: true
	// admits it to the alive set immediately (collectd workers — the
	// join itself proves reachability), false holds it Down until the
	// first ReportSuccess (gate replicas — the prober verifies before
	// the ring sees it).
	JoinAlive bool
	// Now is the clock; defaults to time.Now. Injectable for tests.
	Now func() time.Time
	// OnChange, if set, is called after every alive-set change, outside
	// the set's lock, in the goroutine that caused the change.
	OnChange func(Event)
}

type record struct {
	tags     []string
	state    State
	fails    int
	admitted bool // ever been in the alive set
	joined   time.Time
	lastSeen time.Time
}

// Set is a concurrency-safe membership set. The zero value is not
// usable; construct with NewSet.
type Set struct {
	cfg   Config
	mu    sync.Mutex
	m     map[string]*record
	epoch uint64
}

// NewSet builds a Set from cfg, applying defaults.
func NewSet(cfg Config) *Set {
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Set{cfg: cfg, m: make(map[string]*record)}
}

// bumpLocked advances the epoch for one alive-set change and returns
// the event to fire once the lock is released.
func (s *Set) bumpLocked(name, change string) Event {
	s.epoch++
	return Event{Epoch: s.epoch, Name: name, Change: change}
}

func (s *Set) fire(evs []Event) {
	if s.cfg.OnChange == nil {
		return
	}
	for _, ev := range evs {
		s.cfg.OnChange(ev)
	}
}

// Join adds name to the set (state per Config.JoinAlive) or, if it is
// already present, refreshes its last-seen time and tags. It returns
// the current epoch and whether the alive set changed.
func (s *Set) Join(name string, tags []string) (uint64, bool) {
	var evs []Event
	s.mu.Lock()
	now := s.cfg.Now()
	r, ok := s.m[name]
	changed := false
	if !ok {
		r = &record{joined: now, state: Down}
		if s.cfg.JoinAlive {
			r.state = Alive
			r.admitted = true
			evs = append(evs, s.bumpLocked(name, "join"))
			changed = true
		}
		s.m[name] = r
	}
	r.lastSeen = now
	if tags != nil {
		r.tags = append([]string(nil), tags...)
	}
	epoch := s.epoch
	s.mu.Unlock()
	s.fire(evs)
	return epoch, changed
}

// Touch refreshes name's last-seen time (heartbeat) without changing
// its state. Unknown names are ignored.
func (s *Set) Touch(name string) {
	s.mu.Lock()
	if r, ok := s.m[name]; ok {
		r.lastSeen = s.cfg.Now()
	}
	s.mu.Unlock()
}

// ReportSuccess records a successful probe of name: failure count
// resets, a Down member is readmitted to the alive set. It returns
// whether the alive set changed. Unknown names are ignored.
func (s *Set) ReportSuccess(name string) bool {
	var evs []Event
	s.mu.Lock()
	changed := false
	if r, ok := s.m[name]; ok {
		r.lastSeen = s.cfg.Now()
		r.fails = 0
		switch r.state {
		case Down:
			r.state = Alive
			change := "readmit"
			if !r.admitted {
				change = "join"
			}
			r.admitted = true
			evs = append(evs, s.bumpLocked(name, change))
			changed = true
		case Suspect:
			r.state = Alive
		}
	}
	s.mu.Unlock()
	s.fire(evs)
	return changed
}

// ReportFailure records a failed probe of name: the consecutive
// failure count rises and, at FailThreshold, an alive/suspect member
// is evicted from the alive set. It returns whether the alive set
// changed. Unknown names are ignored.
func (s *Set) ReportFailure(name string) bool {
	var evs []Event
	s.mu.Lock()
	changed := false
	if r, ok := s.m[name]; ok && r.state != Down {
		r.fails++
		if r.fails >= s.cfg.FailThreshold {
			r.state = Down
			evs = append(evs, s.bumpLocked(name, "evict"))
			changed = true
		} else {
			r.state = Suspect
		}
	}
	s.mu.Unlock()
	s.fire(evs)
	return changed
}

// MarkDown evicts name immediately, bypassing the failure threshold —
// for self-reported conditions (a replica answering "not ready", a
// draining worker) where hysteresis would only delay the truth. It
// returns whether the alive set changed.
func (s *Set) MarkDown(name string) bool {
	var evs []Event
	s.mu.Lock()
	changed := false
	if r, ok := s.m[name]; ok && r.state != Down {
		r.state = Down
		r.fails = 0
		evs = append(evs, s.bumpLocked(name, "evict"))
		changed = true
	}
	s.mu.Unlock()
	s.fire(evs)
	return changed
}

// Leave removes name from the set entirely. It returns whether the
// alive set changed (i.e. the member was alive or suspect).
func (s *Set) Leave(name string) bool {
	var evs []Event
	s.mu.Lock()
	changed := false
	if r, ok := s.m[name]; ok {
		if r.state != Down {
			evs = append(evs, s.bumpLocked(name, "leave"))
			changed = true
		}
		delete(s.m, name)
	}
	s.mu.Unlock()
	s.fire(evs)
	return changed
}

// ExpireStale removes members not seen within Config.ExpireAfter and
// returns their names (sorted). A no-op when expiry is disabled.
func (s *Set) ExpireStale() []string {
	if s.cfg.ExpireAfter <= 0 {
		return nil
	}
	var evs []Event
	var expired []string
	s.mu.Lock()
	cutoff := s.cfg.Now().Add(-s.cfg.ExpireAfter)
	for name, r := range s.m {
		if r.lastSeen.Before(cutoff) {
			if r.state != Down {
				evs = append(evs, s.bumpLocked(name, "expire"))
			}
			delete(s.m, name)
			expired = append(expired, name)
		}
	}
	s.mu.Unlock()
	sort.Strings(expired)
	s.fire(evs)
	return expired
}

// Epoch returns the current membership epoch. It advances by one for
// every alive-set change, so two equal epochs imply an identical alive
// set (the converse does not hold: an evict+readmit pair restores the
// set at a higher epoch).
func (s *Set) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Alive returns the sorted names of the current alive set (Alive and
// Suspect members — suspects still take traffic until evicted).
func (s *Set) Alive() []string {
	names, _ := s.AliveEpoch()
	return names
}

// AliveEpoch returns the sorted alive set together with the epoch it
// belongs to, read under one lock — the pair a caller needs to build a
// routing table it can later compare by epoch alone.
func (s *Set) AliveEpoch() ([]string, uint64) {
	s.mu.Lock()
	names := make([]string, 0, len(s.m))
	for name, r := range s.m {
		if r.state != Down {
			names = append(names, name)
		}
	}
	epoch := s.epoch
	s.mu.Unlock()
	sort.Strings(names)
	return names, epoch
}

// Get returns a copy of name's record.
func (s *Set) Get(name string) (Info, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[name]
	if !ok {
		return Info{}, false
	}
	return infoOf(name, r), true
}

// Snapshot returns copies of every member record, sorted by name.
func (s *Set) Snapshot() []Info {
	s.mu.Lock()
	out := make([]Info, 0, len(s.m))
	for name, r := range s.m {
		out = append(out, infoOf(name, r))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the total number of members, alive or not.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func infoOf(name string, r *record) Info {
	return Info{
		Name:     name,
		Tags:     append([]string(nil), r.tags...),
		State:    r.state,
		Fails:    r.fails,
		Joined:   r.joined,
		LastSeen: r.lastSeen,
	}
}

// HasAll reports whether have contains every tag in want. An empty
// want matches anything (an untagged unit runs on any worker); an
// empty have matches only an empty want.
func HasAll(have, want []string) bool {
	if len(want) == 0 {
		return true
	}
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
