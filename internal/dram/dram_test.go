package dram

import (
	"testing"
	"testing/quick"

	"napel/internal/xrand"
)

func mustNew(t *testing.T, cfg Config) *Memory {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Timing.TREFI = 0 // disable refresh for deterministic latency tests
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Vaults = 0 },
		func(c *Config) { c.Vaults = 3 },
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.BanksPerLayer = 0 },
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.RowBytes = 100 },
		func(c *Config) { c.SizeBytes = 0 },
		func(c *Config) { c.Timing.TRCD = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDecodeInterleaving(t *testing.T) {
	m := mustNew(t, smallConfig())
	cfg := m.Config()
	// Consecutive row-buffer blocks land in consecutive vaults.
	for i := 0; i < cfg.Vaults; i++ {
		loc := m.Decode(uint64(i * cfg.RowBytes))
		if loc.Vault != i {
			t.Fatalf("block %d -> vault %d, want %d", i, loc.Vault, i)
		}
	}
	// After a full vault sweep, the bank advances.
	loc := m.Decode(uint64(cfg.Vaults * cfg.RowBytes))
	if loc.Vault != 0 || loc.Bank != 1 {
		t.Fatalf("wrap block -> %+v, want vault 0 bank 1", loc)
	}
	// Addresses beyond capacity wrap rather than panic.
	_ = m.Decode(cfg.SizeBytes + 12345)
}

func TestDecodeSpreadsVaults(t *testing.T) {
	m := mustNew(t, smallConfig())
	rng := xrand.New(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		seen[m.Decode(rng.Uint64()%m.Config().SizeBytes).Vault] = true
	}
	if len(seen) != m.Config().Vaults {
		t.Fatalf("random addresses hit %d vaults, want %d", len(seen), m.Config().Vaults)
	}
}

func TestUnloadedReadLatency(t *testing.T) {
	m := mustNew(t, smallConfig())
	done := m.Access(0, false, 64, 1000)
	want := 1000 + m.UnloadedReadLatencyPs()
	if done != want {
		t.Fatalf("unloaded read done at %d, want %d", done, want)
	}
}

func TestCompletionNeverBeforeArrival(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		m, _ := New(smallConfig())
		rng := xrand.New(seed)
		now := uint64(0)
		for i := 0; i < 200; i++ {
			now += uint64(rng.Intn(5000))
			done := m.Access(rng.Uint64()%m.Config().SizeBytes, rng.Intn(3) == 0, 64, now)
			if done < now+m.ps.cl {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBankSerialization(t *testing.T) {
	m := mustNew(t, smallConfig())
	cfg := m.Config()
	// Two far-apart rows in the same bank, same arrival: the second must
	// wait for the first's full ACT..PRE cycle.
	rowStride := uint64(cfg.RowBytes * cfg.Vaults * cfg.BanksPerVault())
	d1 := m.Access(0, false, 64, 0)
	d2 := m.Access(16*rowStride, false, 64, 0)
	if d2 <= d1 {
		t.Fatalf("same-bank conflicting accesses not serialized: %d then %d", d1, d2)
	}
}

func TestDifferentVaultsParallel(t *testing.T) {
	m := mustNew(t, smallConfig())
	cfg := m.Config()
	d1 := m.Access(0, false, 64, 0)
	d2 := m.Access(uint64(cfg.RowBytes), false, 64, 0) // next vault
	if d2 != d1 {
		t.Fatalf("independent vaults should complete identically: %d vs %d", d1, d2)
	}
}

func TestClosedRowCoalescing(t *testing.T) {
	m := mustNew(t, smallConfig())
	// Same row back-to-back: second is a coalesced CAS (row hit), faster
	// than a full activate.
	d1 := m.Access(0, false, 64, 0)
	d2 := m.Access(64, false, 64, d1)
	if m.Stats.RowHits != 1 {
		t.Fatalf("coalesced access not counted as row hit: %+v", m.Stats)
	}
	if m.Stats.Activations != 1 {
		t.Fatalf("coalesced access re-activated: %+v", m.Stats)
	}
	lat2 := d2 - d1
	if lat2 >= m.UnloadedReadLatencyPs() {
		t.Fatalf("coalesced latency %d not faster than full %d", lat2, m.UnloadedReadLatencyPs())
	}
}

func TestClosedRowWindowExpires(t *testing.T) {
	m := mustNew(t, smallConfig())
	m.Access(0, false, 64, 0)
	// Long after the window, the same row needs a new activation.
	m.Access(64, false, 64, 1_000_000)
	if m.Stats.Activations != 2 {
		t.Fatalf("expired window still coalesced: %+v", m.Stats)
	}
}

func TestOpenRowPolicy(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = OpenRow
	m := mustNew(t, cfg)
	d1 := m.Access(0, false, 64, 0)
	d2 := m.Access(64, false, 64, d1+100_000) // same row much later: still open
	if m.Stats.RowHits != 1 {
		t.Fatalf("open row not hit: %+v", m.Stats)
	}
	if d2-(d1+100_000) >= m.UnloadedReadLatencyPs() {
		t.Fatal("open-row hit not faster than activate")
	}
	// Conflict: same bank different row.
	rowStride := uint64(cfg.RowBytes * cfg.Vaults * cfg.BanksPerVault())
	m.Access(16*rowStride, false, 64, d2+1_000_000)
	if m.Stats.RowConfs != 1 {
		t.Fatalf("row conflict not counted: %+v", m.Stats)
	}
}

func TestRefreshDelaysAccesses(t *testing.T) {
	cfg := DefaultConfig() // refresh enabled
	m := mustNew(t, cfg)
	// Sweep arrivals across a refresh period; at least one access must be
	// pushed out by a refresh window.
	refi := uint64(cfg.Timing.TREFI * 1000)
	hitRefresh := false
	for off := uint64(0); off < refi; off += refi / 64 {
		mm := mustNew(t, cfg)
		done := mm.Access(0, false, 64, off)
		if done > off+mm.UnloadedReadLatencyPs() {
			hitRefresh = true
			break
		}
	}
	if !hitRefresh {
		t.Fatal("no access was ever delayed by refresh")
	}
	_ = m
}

func TestStatsAccounting(t *testing.T) {
	m := mustNew(t, smallConfig())
	m.Access(0, false, 64, 0)
	m.Access(1<<20, true, 64, 0)
	if m.Stats.Reads != 1 || m.Stats.Writes != 1 {
		t.Fatalf("op counts: %+v", m.Stats)
	}
	if m.Stats.BytesRead != 64 || m.Stats.BytesWrite != 64 {
		t.Fatalf("byte counts: %+v", m.Stats)
	}
	if m.Stats.BusyPs == 0 {
		t.Fatal("no busy time accumulated")
	}
}

func TestRowPolicyString(t *testing.T) {
	if ClosedRow.String() != "closed-row" || OpenRow.String() != "open-row" {
		t.Fatal("policy names wrong")
	}
}

func TestWriteLatencyUsesWL(t *testing.T) {
	m := mustNew(t, smallConfig())
	dr := m.Access(0, false, 64, 0)
	m2 := mustNew(t, smallConfig())
	dw := m2.Access(0, true, 64, 0)
	// Write column latency (TWL=10ns) < read (TCL=13.75ns).
	if dw >= dr {
		t.Fatalf("write data time %d not before read %d", dw, dr)
	}
}

func TestOpenRowBeatsClosedOnStreaming(t *testing.T) {
	// Sequential walk within rows: the open-row policy serves the
	// repeats as row hits and must finish no later than closed-row.
	run := func(policy RowPolicy) uint64 {
		cfg := smallConfig()
		cfg.Policy = policy
		m := mustNew(t, cfg)
		now := uint64(0)
		var last uint64
		for i := 0; i < 2000; i++ {
			// Four 64B accesses per 256B row, same vault (stride by the
			// full vault sweep so the bank repeats).
			base := uint64(i/4) * uint64(cfg.RowBytes*cfg.Vaults*cfg.BanksPerVault())
			addr := base + uint64(i%4)*64
			last = m.Access(addr, false, 64, now)
			now = last
		}
		return last
	}
	open := run(OpenRow)
	closed := run(ClosedRow)
	if open > closed {
		t.Fatalf("open-row (%d ps) slower than closed-row (%d ps) on streaming", open, closed)
	}
}

func TestBankLevelParallelismHelps(t *testing.T) {
	// Requests spread across banks must finish sooner than the same
	// number of requests hammering one bank.
	cfg := smallConfig()
	spread := mustNew(t, cfg)
	hammer := mustNew(t, cfg)
	rowStride := uint64(cfg.RowBytes * cfg.Vaults * cfg.BanksPerVault())
	bankStride := uint64(cfg.RowBytes * cfg.Vaults)
	var doneSpread, doneHammer uint64
	for i := 0; i < 16; i++ {
		doneSpread = max64(doneSpread, spread.Access(uint64(i)*bankStride, false, 64, 0))
		doneHammer = max64(doneHammer, hammer.Access(uint64(16+i*16)*rowStride, false, 64, 0))
	}
	if doneSpread >= doneHammer {
		t.Fatalf("bank-spread %d ps not faster than single-bank %d ps", doneSpread, doneHammer)
	}
}
