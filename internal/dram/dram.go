// Package dram models the 3D-stacked DRAM of the NMC subsystem: an
// HMC-like memory cube divided into vertical vaults, each with its own
// controller in the logic layer, several stacked DRAM layers contributing
// banks, a small row buffer and a closed-row default policy (Table 3 of
// the paper: 32 vaults, 8 layers, 256 B row buffer, 4 GB, closed-row).
//
// The model is request-level and event-driven: each access is resolved to
// (vault, bank, row) and assigned a completion time from the JEDEC-style
// bank timing state machine (tRCD/tCL/tWL/tRP/tRAS/tWR plus burst
// occupancy on the vault data bus and periodic refresh blackouts). Times
// are tracked in integer picoseconds, which keeps the simulation
// deterministic across platforms.
package dram

import "fmt"

// Timing holds DRAM timing parameters in nanoseconds. Defaults follow
// published HMC/3D-stacked characterizations used by ramulator-pim.
type Timing struct {
	TRCD   float64 // activate to column command
	TCL    float64 // read column command to first data
	TWL    float64 // write column command to first data
	TRP    float64 // precharge
	TRAS   float64 // activate to precharge minimum
	TWR    float64 // write recovery
	TBurst float64 // data burst occupancy per column access
	TREFI  float64 // refresh interval (0 disables refresh)
	TRFC   float64 // refresh cycle time
}

// DefaultTiming returns HMC-like timing (tCK ~0.8 ns class device).
func DefaultTiming() Timing {
	return Timing{
		TRCD:   13.75,
		TCL:    13.75,
		TWL:    10.0,
		TRP:    13.75,
		TRAS:   27.5,
		TWR:    15.0,
		TBurst: 3.2,
		TREFI:  3900,
		TRFC:   260,
	}
}

// RowPolicy selects the row-buffer management policy.
type RowPolicy uint8

const (
	// ClosedRow precharges immediately after each access (Table 3).
	ClosedRow RowPolicy = iota
	// OpenRow leaves the row open, paying precharge only on conflicts.
	OpenRow
)

func (p RowPolicy) String() string {
	if p == OpenRow {
		return "open-row"
	}
	return "closed-row"
}

// Config describes the stacked-memory organization.
type Config struct {
	Vaults        int    // vertical partitions, each with own controller
	Layers        int    // stacked DRAM layers
	BanksPerLayer int    // banks contributed by each layer to a vault
	RowBytes      int    // row buffer size in bytes
	SizeBytes     uint64 // total capacity
	Policy        RowPolicy
	Timing        Timing
}

// DefaultConfig returns the Table 3 NMC DRAM: 32 vaults, 8 layers, 256 B
// row buffer, 4 GB, closed-row.
func DefaultConfig() Config {
	return Config{
		Vaults:        32,
		Layers:        8,
		BanksPerLayer: 2,
		RowBytes:      256,
		SizeBytes:     4 << 30,
		Policy:        ClosedRow,
		Timing:        DefaultTiming(),
	}
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.Vaults <= 0 || c.Vaults&(c.Vaults-1) != 0 {
		return fmt.Errorf("dram: vault count %d must be a positive power of two", c.Vaults)
	}
	if c.Layers <= 0 {
		return fmt.Errorf("dram: layer count %d must be positive", c.Layers)
	}
	if c.BanksPerLayer <= 0 {
		return fmt.Errorf("dram: banks per layer %d must be positive", c.BanksPerLayer)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row buffer %d bytes must be a positive power of two", c.RowBytes)
	}
	if c.SizeBytes == 0 {
		return fmt.Errorf("dram: size must be positive")
	}
	t := c.Timing
	if t.TRCD <= 0 || t.TCL <= 0 || t.TRP <= 0 || t.TBurst <= 0 {
		return fmt.Errorf("dram: core timing parameters must be positive")
	}
	return nil
}

// BanksPerVault returns the number of banks each vault controller owns.
func (c Config) BanksPerVault() int { return c.Layers * c.BanksPerLayer }

// Stats counts DRAM command activity, the raw material of the energy
// model.
type Stats struct {
	Activations uint64
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	RowConfs    uint64 // row conflicts (open-row policy only)
	Refreshes   uint64
	BytesRead   uint64
	BytesWrite  uint64
	BusyPs      uint64 // total bank busy time, picoseconds
}

type bank struct {
	readyPs uint64 // earliest time a new activate may start
	openRow int64  // open-row policy: currently open row, -1 none
	// Closed-row burst coalescing: real controllers batch queued
	// requests to the same row before the auto-precharge, so
	// back-to-back accesses to a hot row (e.g. every PE reading the same
	// shared line) pay one activation, not one each.
	lastRow      int64
	lastBurstEnd uint64 // completion of the last burst to lastRow
}

type vault struct {
	banks     []bank
	busFreePs uint64 // vault data bus availability
}

// Memory is one stacked-memory cube. Not safe for concurrent use.
type Memory struct {
	cfg    Config
	vaults []vault
	ps     timingPs
	Stats  Stats
}

// timingPs is Timing converted to integer picoseconds.
type timingPs struct {
	rcd, cl, wl, rp, ras, wr, burst, refi, rfc uint64
	coalesce                                   uint64 // same-row batching window after a burst
}

func toPs(ns float64) uint64 { return uint64(ns * 1000) }

// New builds a memory cube; the config must be valid.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Memory{
		cfg: cfg,
		ps: timingPs{
			rcd:      toPs(cfg.Timing.TRCD),
			cl:       toPs(cfg.Timing.TCL),
			wl:       toPs(cfg.Timing.TWL),
			rp:       toPs(cfg.Timing.TRP),
			ras:      toPs(cfg.Timing.TRAS),
			wr:       toPs(cfg.Timing.TWR),
			burst:    toPs(cfg.Timing.TBurst),
			refi:     toPs(cfg.Timing.TREFI),
			rfc:      toPs(cfg.Timing.TRFC),
			coalesce: toPs(cfg.Timing.TRAS),
		},
		vaults: make([]vault, cfg.Vaults),
	}
	for i := range m.vaults {
		banks := make([]bank, cfg.BanksPerVault())
		for b := range banks {
			banks[b].openRow = -1
		}
		m.vaults[i].banks = banks
	}
	return m, nil
}

// Config returns the memory organization.
func (m *Memory) Config() Config { return m.cfg }

// Location is the decoded target of an address.
type Location struct {
	Vault, Bank int
	Row         int64
}

// Decode maps a byte address to its vault, bank and row. Row-buffer-sized
// blocks interleave across vaults first (maximizing vault-level
// parallelism for streaming, as in HMC), then across banks.
func (m *Memory) Decode(addr uint64) Location {
	addr %= m.cfg.SizeBytes
	block := addr / uint64(m.cfg.RowBytes)
	v := int(block % uint64(m.cfg.Vaults))
	block /= uint64(m.cfg.Vaults)
	nb := uint64(m.cfg.BanksPerVault())
	b := int(block % nb)
	return Location{Vault: v, Bank: b, Row: int64(block / nb)}
}

// Access services a read or write of bytes (<= RowBytes) at addr arriving
// at time nowPs, returning the time at which the data transfer completes.
// Timing honors bank availability, the vault data bus, refresh blackouts
// and the configured row policy. Under the closed-row policy,
// back-to-back requests to the same row are coalesced into the open
// activation window (CAS-only service), modeling the request batching
// every real controller performs before the auto-precharge; without it,
// a line shared by many PEs would pay one full ACT-PRE cycle per reader.
func (m *Memory) Access(addr uint64, write bool, bytes int, nowPs uint64) (donePs uint64) {
	loc := m.Decode(addr)
	v := &m.vaults[loc.Vault]
	bk := &v.banks[loc.Bank]

	arrival := m.afterRefresh(loc.Vault, nowPs)

	var dataAt, busyUntil uint64
	switch m.cfg.Policy {
	case OpenRow:
		start := max64(arrival, bk.readyPs)
		switch {
		case bk.openRow == loc.Row:
			m.Stats.RowHits++
			dataAt = start + m.colLatency(write)
		case bk.openRow >= 0:
			m.Stats.RowConfs++
			m.Stats.Activations++
			dataAt = start + m.ps.rp + m.ps.rcd + m.colLatency(write)
		default:
			m.Stats.Activations++
			dataAt = start + m.ps.rcd + m.colLatency(write)
		}
		bk.openRow = loc.Row
		busyUntil = dataAt + m.ps.burst
		if write {
			busyUntil += m.ps.wr
		}
		m.Stats.BusyPs += busyUntil - start
	default: // ClosedRow
		if bk.lastRow == loc.Row && bk.lastBurstEnd > 0 && arrival <= bk.lastBurstEnd+m.ps.coalesce {
			// Coalesce into the open activation window: CAS only, queued
			// behind the window's previous burst.
			m.Stats.RowHits++
			start := max64(arrival, bk.lastBurstEnd)
			dataAt = start + m.colLatency(write)
			burstEnd := dataAt + m.ps.burst
			if write {
				burstEnd += m.ps.wr
			}
			bk.lastBurstEnd = burstEnd
			bk.readyPs = max64(bk.readyPs, burstEnd+m.ps.rp)
			m.Stats.BusyPs += burstEnd - start
		} else {
			start := max64(arrival, bk.readyPs)
			m.Stats.Activations++
			dataAt = start + m.ps.rcd + m.colLatency(write)
			// The bank must satisfy tRAS before the auto-precharge and
			// then pay tRP before the next activate.
			actDone := dataAt + m.ps.burst
			if write {
				actDone += m.ps.wr
			}
			bk.lastRow = loc.Row
			bk.lastBurstEnd = actDone
			bk.readyPs = max64(start+m.ps.ras, actDone) + m.ps.rp
			m.Stats.BusyPs += bk.readyPs - start
		}
	}

	// Serialize the data burst on the vault's data bus.
	xfer := max64(dataAt, v.busFreePs)
	done := xfer + m.ps.burst
	v.busFreePs = done
	if m.cfg.Policy == OpenRow {
		if busyUntil < done {
			busyUntil = done
		}
		bk.readyPs = max64(bk.readyPs, busyUntil)
	}

	if write {
		m.Stats.Writes++
		m.Stats.BytesWrite += uint64(bytes)
	} else {
		m.Stats.Reads++
		m.Stats.BytesRead += uint64(bytes)
	}
	return done
}

// colLatency is the column command-to-data latency.
func (m *Memory) colLatency(write bool) uint64 {
	if write {
		return m.ps.wl
	}
	return m.ps.cl
}

// afterRefresh pushes start out of any refresh blackout window. Vaults
// refresh on a staggered schedule so the whole cube never blacks out at
// once.
func (m *Memory) afterRefresh(vaultID int, start uint64) uint64 {
	if m.ps.refi == 0 {
		return start
	}
	offset := uint64(vaultID) * (m.ps.refi / uint64(m.cfg.Vaults))
	phase := (start + m.ps.refi - offset%m.ps.refi) % m.ps.refi
	if phase < m.ps.rfc {
		m.Stats.Refreshes++
		return start + (m.ps.rfc - phase)
	}
	return start
}

// UnloadedReadLatencyPs returns the no-contention read latency, used by
// the energy/latency reports and in tests as a lower bound.
func (m *Memory) UnloadedReadLatencyPs() uint64 {
	return m.ps.rcd + m.ps.cl + m.ps.burst
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
