package dram_test

import (
	"fmt"

	"napel/internal/dram"
)

// Example_vaultParallelism shows the defining property of the stacked
// memory: requests to different vaults proceed in parallel, requests to
// the same bank serialize.
func Example_vaultParallelism() {
	cfg := dram.DefaultConfig()
	cfg.Timing.TREFI = 0 // no refresh, deterministic latencies
	m, err := dram.New(cfg)
	if err != nil {
		panic(err)
	}
	sameVault := uint64(cfg.RowBytes * cfg.Vaults * cfg.BanksPerVault() * 16)
	d1 := m.Access(0, false, 64, 0)                    // vault 0, bank 0
	d2 := m.Access(uint64(cfg.RowBytes), false, 64, 0) // vault 1: parallel
	d3 := m.Access(sameVault, false, 64, 0)            // vault 0, bank 0 again: waits
	fmt.Println("other vault finishes with the first:", d2 == d1)
	fmt.Println("same bank must wait:", d3 > d1)
	// Output:
	// other vault finishes with the first: true
	// same bank must wait: true
}
