package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"napel/internal/obs"
)

// ErrBreakerOpen is returned by Allow/Do while the breaker refuses
// traffic. Match with errors.Is; the wrapped form carries the breaker
// name and the time until the next probe.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the classic three-state machine.
type BreakerState int

const (
	// BreakerClosed passes everything through, counting consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every call until OpenTimeout elapses.
	BreakerOpen
	// BreakerHalfOpen admits a limited number of probes; enough
	// successes close the breaker, any failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. Zero fields take the documented
// defaults.
type BreakerConfig struct {
	// Name identifies the breaker in errors and metrics.
	Name string
	// FailureThreshold is how many consecutive failures open the
	// breaker (default 5).
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before admitting
	// half-open probes (default 30s).
	OpenTimeout time.Duration
	// HalfOpenProbes is how many successive probe successes close the
	// breaker again (default 1).
	HalfOpenProbes int
	// Now is the clock, injectable for deterministic tests (default
	// time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Name == "" {
		c.Name = "breaker"
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a three-state circuit breaker: it trips after a run of
// consecutive failures, refuses traffic for a cool-down, then probes
// its way back to closed. It guards napel-serve's model reloads and
// napel-traind's canary promotion against failure storms — a failing
// dependency is given time to recover instead of being hammered (and,
// for promotion, the serving symlink is not flapped by a stream of bad
// candidates).
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	inFlight  int       // admitted probes while half-open
	openedAt  time.Time // when the breaker last opened

	// metrics handles; nil until Register.
	stateGauge    *obs.Gauge
	opens         *obs.Counter
	shortCircuits *obs.Counter
	failuresTotal *obs.Counter
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Register publishes the breaker's state and counters on reg:
// napel_resilience_breaker_state{name} (0 closed, 1 open, 2 half-open),
// plus opens, short-circuits and recorded failures.
func (b *Breaker) Register(reg *obs.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stateGauge = reg.GaugeVec("napel_resilience_breaker_state",
		"Circuit breaker state: 0 closed, 1 open, 2 half-open.", "name").With(b.cfg.Name)
	b.opens = reg.CounterVec("napel_resilience_breaker_opens_total",
		"Times the breaker tripped open.", "name").With(b.cfg.Name)
	b.shortCircuits = reg.CounterVec("napel_resilience_breaker_short_circuits_total",
		"Calls refused while the breaker was open.", "name").With(b.cfg.Name)
	b.failuresTotal = reg.CounterVec("napel_resilience_breaker_failures_total",
		"Failures recorded against the breaker.", "name").With(b.cfg.Name)
	b.stateGauge.Set(float64(b.state))
}

// State returns the current state, applying the open→half-open
// transition if the cool-down has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		b.setStateLocked(BreakerHalfOpen)
		b.successes = 0
		b.inFlight = 0
	}
}

func (b *Breaker) setStateLocked(s BreakerState) {
	b.state = s
	if b.stateGauge != nil {
		b.stateGauge.Set(float64(s))
	}
}

// Allow asks to start one guarded call. It returns nil (call Record*
// with the outcome afterwards) or ErrBreakerOpen. While half-open only
// HalfOpenProbes calls are admitted at once.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerHalfOpen:
		if b.inFlight < b.cfg.HalfOpenProbes {
			b.inFlight++
			return nil
		}
	}
	if b.shortCircuits != nil {
		b.shortCircuits.Inc()
	}
	return fmt.Errorf("%w: %s retries in %s", ErrBreakerOpen, b.cfg.Name, b.retryInLocked().Round(time.Millisecond))
}

// RetryIn reports how long until the breaker next admits a call: 0
// when closed or half-open with probe capacity, otherwise the remaining
// cool-down.
func (b *Breaker) RetryIn() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retryInLocked()
}

func (b *Breaker) retryInLocked() time.Duration {
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.OpenTimeout - b.cfg.Now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// RecordSuccess reports a guarded call that succeeded.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.setStateLocked(BreakerClosed)
			b.failures = 0
		}
	}
}

// RecordFailure reports a guarded call that failed; enough consecutive
// failures (or any half-open probe failure) open the breaker.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failuresTotal != nil {
		b.failuresTotal.Inc()
	}
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.openLocked()
	}
}

func (b *Breaker) openLocked() {
	b.setStateLocked(BreakerOpen)
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.successes = 0
	b.inFlight = 0
	if b.opens != nil {
		b.opens.Inc()
	}
}

// Do runs fn under the breaker: Allow, then Record the outcome. The
// returned error is ErrBreakerOpen (short-circuit) or fn's error.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		b.RecordFailure()
		return err
	}
	b.RecordSuccess()
	return nil
}
