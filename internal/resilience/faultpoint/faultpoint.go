// Package faultpoint provides named, deterministic fault-injection
// hooks for chaos testing the NAPEL serving and training stack.
//
// Production code declares a point by calling Inject (or WrapWriter for
// partial-write faults) with a stable dotted name — "atomicfile.rename",
// "serve.predict", "engine.unit" — at the place where an I/O or compute
// step can fail. With no plan installed the call is a single atomic
// pointer load returning nil, so instrumented paths cost nothing in
// normal operation.
//
// A plan is installed globally from a seed and a spec string (the
// -chaos-seed / -chaos-spec flags on every binary, or Enable in tests):
//
//	point:prob            inject ErrInjected with probability prob
//	point:prob:latency=D  inject a ctx-aware sleep of D instead
//	point:prob:partial    (writer points) write a prefix, then fail
//
// Clauses are comma-separated; a point pattern is an exact name or a
// prefix ending in '*' ("atomicfile.*:0.2"). All randomness flows from
// one seeded xrand stream, so a fixed (seed, spec, workload) triple
// replays the same fault sequence — the property the chaos smoke stage
// in scripts/verify.sh and the byte-identity tests rely on.
package faultpoint

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"napel/internal/xrand"
)

// ErrInjected is the root of every injected error. Match with errors.Is
// to distinguish chaos from organic failures in tests and logs.
var ErrInjected = errors.New("faultpoint: injected fault")

// Mode is what firing a rule does.
type Mode int

const (
	// ModeError returns ErrInjected from Inject.
	ModeError Mode = iota
	// ModeLatency sleeps for the rule's duration (honoring ctx), then
	// lets the operation proceed.
	ModeLatency
	// ModePartial makes WrapWriter write roughly half of the next write
	// and then fail — the torn-write case for atomic publication code.
	ModePartial
)

type rule struct {
	pattern string // exact point name, or prefix before a trailing '*'
	prefix  bool
	prob    float64
	mode    Mode
	latency time.Duration
}

func (r *rule) matches(name string) bool {
	if r.prefix {
		return strings.HasPrefix(name, r.pattern)
	}
	return r.pattern == name
}

// Plan is a parsed fault-injection plan plus its seeded random stream
// and per-point fire counts.
type Plan struct {
	rules []rule

	mu  sync.Mutex
	rng *xrand.Rand

	injected atomic.Uint64 // total fires, all points and modes
	counts   sync.Map      // point name -> *atomic.Uint64
}

// active is the globally installed plan; nil means disabled. The
// pointer is the entire fast-path state.
var active atomic.Pointer[Plan]

// ParsePlan builds a plan from a seed and a spec string (see the
// package comment for the syntax). An empty spec yields a plan that
// never fires — useful for "chaos infrastructure on, no faults yet".
func ParsePlan(seed uint64, spec string) (*Plan, error) {
	p := &Plan{rng: xrand.New(seed)}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("faultpoint: clause %q: want point:prob[:latency=D|partial]", clause)
		}
		r := rule{pattern: parts[0]}
		if r.pattern == "" {
			return nil, fmt.Errorf("faultpoint: clause %q names no point", clause)
		}
		if strings.HasSuffix(r.pattern, "*") {
			r.prefix = true
			r.pattern = strings.TrimSuffix(r.pattern, "*")
		}
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("faultpoint: clause %q: probability must be in [0, 1]", clause)
		}
		r.prob = prob
		if len(parts) == 3 {
			switch {
			case parts[2] == "partial":
				r.mode = ModePartial
			case strings.HasPrefix(parts[2], "latency="):
				d, err := time.ParseDuration(strings.TrimPrefix(parts[2], "latency="))
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faultpoint: clause %q: bad latency", clause)
				}
				r.mode = ModeLatency
				r.latency = d
			default:
				return nil, fmt.Errorf("faultpoint: clause %q: unknown mode %q", clause, parts[2])
			}
		}
		p.rules = append(p.rules, r)
	}
	return p, nil
}

// Enable parses the spec and installs the plan globally, replacing any
// previous one.
func Enable(seed uint64, spec string) error {
	p, err := ParsePlan(seed, spec)
	if err != nil {
		return err
	}
	active.Store(p)
	return nil
}

// Disable removes the installed plan; every point reverts to a no-op.
func Disable() { active.Store(nil) }

// Active reports whether a plan is installed (even an empty one).
func Active() bool { return active.Load() != nil }

// TotalInjected returns how many faults the installed plan has fired;
// 0 with no plan. Exposed as napel_chaos_injected_total on the daemons.
func TotalInjected() uint64 {
	if p := active.Load(); p != nil {
		return p.injected.Load()
	}
	return 0
}

// Count returns how many times the named point has fired under the
// installed plan.
func Count(name string) uint64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	if c, ok := p.counts.Load(name); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}

// decide draws the fate of one arrival at name: the first matching rule
// whose probability roll fires wins. The draw itself is deterministic
// in arrival order (one shared seeded stream).
func (p *Plan) decide(name string) (rule, bool) {
	for _, r := range p.rules {
		if !r.matches(name) || r.prob == 0 {
			continue
		}
		p.mu.Lock()
		hit := r.prob >= 1 || p.rng.Float64() < r.prob
		p.mu.Unlock()
		if hit {
			p.record(name)
			return r, true
		}
	}
	return rule{}, false
}

func (p *Plan) record(name string) {
	p.injected.Add(1)
	c, ok := p.counts.Load(name)
	if !ok {
		c, _ = p.counts.LoadOrStore(name, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(1)
}

// Inject is the standard fault hook: it returns ErrInjected (wrapped
// with the point name) when an error rule fires, sleeps when a latency
// rule fires (returning early with ctx.Err() if the context ends first),
// and returns nil otherwise. A nil ctx is treated as background.
func Inject(ctx context.Context, name string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r, fired := p.decide(name)
	if !fired {
		return nil
	}
	switch r.mode {
	case ModeLatency:
		if ctx == nil {
			time.Sleep(r.latency)
			return nil
		}
		t := time.NewTimer(r.latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case ModePartial:
		// A partial rule reached through Inject (no writer to tear)
		// degrades to a plain error: the operation still fails.
		return fmt.Errorf("%w at %s", ErrInjected, name)
	default:
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
}

// WrapWriter arms a writer point: when a ModePartial rule fires, the
// returned writer passes roughly half of the next Write through to w
// and then fails every call — modeling a torn write or a disk filling
// mid-publication. When an error rule fires the first Write fails
// without writing. Otherwise w is returned unchanged.
func WrapWriter(name string, w io.Writer) io.Writer {
	p := active.Load()
	if p == nil {
		return w
	}
	r, fired := p.decide(name)
	if !fired || r.mode == ModeLatency {
		return w
	}
	return &tornWriter{w: w, name: name, partial: r.mode == ModePartial}
}

// tornWriter fails its stream, optionally after leaking a prefix.
type tornWriter struct {
	w       io.Writer
	name    string
	partial bool
	broken  bool
}

func (t *tornWriter) Write(b []byte) (int, error) {
	if t.broken {
		return 0, fmt.Errorf("%w at %s", ErrInjected, t.name)
	}
	t.broken = true
	if !t.partial {
		return 0, fmt.Errorf("%w at %s", ErrInjected, t.name)
	}
	n, err := t.w.Write(b[:len(b)/2])
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("%w at %s", ErrInjected, t.name)
}
