package faultpoint

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"noprob",
		"p:1.5",
		"p:-0.1",
		"p:abc",
		":0.5",
		"p:0.5:bogus",
		"p:0.5:latency=xyz",
		"p:0.5:latency=1ms:extra",
	}
	for _, spec := range bad {
		if _, err := ParsePlan(1, spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
	good := []string{
		"", "p:0.5", "p:1", "p:0", "a.b:0.2,c.*:1:latency=5ms", "w:1:partial", " p:0.5 , q:1 ",
	}
	for _, spec := range good {
		if _, err := ParsePlan(1, spec); err != nil {
			t.Errorf("ParsePlan(%q): %v", spec, err)
		}
	}
}

func TestNoPlanIsNoOp(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active with no plan")
	}
	if err := Inject(context.Background(), "any.point"); err != nil {
		t.Fatalf("Inject with no plan: %v", err)
	}
	var buf bytes.Buffer
	if w := WrapWriter("any.point", &buf); w != &buf {
		t.Fatal("WrapWriter with no plan did not return the writer unchanged")
	}
	if TotalInjected() != 0 || Count("any.point") != 0 {
		t.Fatal("counters nonzero with no plan")
	}
}

func TestInjectErrorAndCounts(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable(42, "io.write:1"); err != nil {
		t.Fatal(err)
	}
	err := Inject(context.Background(), "io.write")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "io.write") {
		t.Fatalf("error %q does not name the point", err)
	}
	if err := Inject(context.Background(), "io.read"); err != nil {
		t.Fatalf("unmatched point fired: %v", err)
	}
	if TotalInjected() != 1 || Count("io.write") != 1 || Count("io.read") != 0 {
		t.Fatalf("counts: total=%d write=%d read=%d", TotalInjected(), Count("io.write"), Count("io.read"))
	}
}

func TestPrefixMatchAndDeterminism(t *testing.T) {
	t.Cleanup(Disable)
	run := func(seed uint64) []bool {
		if err := Enable(seed, "atomicfile.*:0.3"); err != nil {
			t.Fatal(err)
		}
		fired := make([]bool, 40)
		for i := range fired {
			fired[i] = Inject(nil, "atomicfile.rename") != nil
		}
		return fired
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
	}
	hits := 0
	for _, f := range a {
		if f {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.3 over %d arrivals fired %d times", len(a), hits)
	}
	// The prefix pattern must not match unrelated points.
	if err := Inject(nil, "serve.predict"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestLatencyMode(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable(1, "slow.op:1:latency=30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject(context.Background(), "slow.op"); err != nil {
		t.Fatalf("latency mode returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency injection slept only %s", d)
	}
	// A done context aborts the sleep with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Inject(ctx, "slow.op"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled latency injection: %v", err)
	}
}

func TestWrapWriterTearsWrites(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable(3, "blob.write:1:partial"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := WrapWriter("blob.write", &buf)
	payload := []byte("0123456789abcdef")
	n, err := w.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != len(payload)/2 || buf.Len() != len(payload)/2 {
		t.Fatalf("torn write leaked %d bytes (reported %d), want %d", buf.Len(), n, len(payload)/2)
	}
	// The stream stays broken: later writes leak nothing.
	if n, err := w.Write(payload); err == nil || n != 0 {
		t.Fatalf("second write on torn stream: n=%d err=%v", n, err)
	}
	if buf.Len() != len(payload)/2 {
		t.Fatal("broken stream leaked more bytes")
	}

	// Error mode fails the first write without leaking anything.
	if err := Enable(3, "blob.write:1"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	w = WrapWriter("blob.write", &buf)
	if n, err := w.Write(payload); err == nil || n != 0 || buf.Len() != 0 {
		t.Fatalf("error-mode write: n=%d len=%d err=%v", n, buf.Len(), err)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable(5, "a.b:1:latency=0s,a.*:1"); err != nil {
		t.Fatal(err)
	}
	// The exact rule (latency, 0s) matches first, so no error.
	if err := Inject(context.Background(), "a.b"); err != nil {
		t.Fatalf("first rule not preferred: %v", err)
	}
	// A sibling point falls through to the prefix error rule.
	if err := Inject(context.Background(), "a.c"); !errors.Is(err, ErrInjected) {
		t.Fatalf("prefix rule not applied: %v", err)
	}
}
