package resilience

import (
	"context"
	"time"
)

// Deadline propagation helpers: per-endpoint budgets attach to the
// request context at the HTTP handler, flow through batch fan-out, and
// are checked before each expensive stage, so one slow item cannot
// stall a whole batch past its budget.

// WithBudget derives a context whose deadline is at most d from now.
// An existing earlier deadline is kept (budgets only tighten). A
// non-positive d returns ctx unchanged with a no-op cancel.
func WithBudget(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d <= 0 {
		return ctx, func() {}
	}
	if cur, ok := ctx.Deadline(); ok && time.Until(cur) <= d {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// Budget returns the time remaining until ctx's deadline, or def when
// ctx carries none. A context already past its deadline yields 0.
func Budget(ctx context.Context, def time.Duration) time.Duration {
	if ctx == nil {
		return def
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return def
	}
	rem := time.Until(dl)
	if rem < 0 {
		return 0
	}
	return rem
}

// SplitBudget divides ctx's remaining budget evenly across n items,
// flooring the per-item slice at floor so stragglers still get a usable
// window. With no deadline on ctx it returns 0, meaning "no per-item
// budget".
func SplitBudget(ctx context.Context, n int, floor time.Duration) time.Duration {
	rem := Budget(ctx, 0)
	if rem <= 0 || n <= 0 {
		return 0
	}
	per := rem / time.Duration(n)
	if per < floor {
		per = floor
	}
	return per
}

// Expired reports whether ctx is already done — the cheap pre-stage
// check the serving fan-out uses to fail remaining items fast once a
// batch has blown its budget.
func Expired(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
