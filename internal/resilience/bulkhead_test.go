package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBulkheadImmediateRejectWhenFull(t *testing.T) {
	b := NewBulkhead(2, 0)
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire: %v, want ErrSaturated", err)
	}
	if b.InUse() != 2 || b.Capacity() != 2 {
		t.Fatalf("InUse/Capacity = %d/%d, want 2/2", b.InUse(), b.Capacity())
	}
	b.Release()
	if err := b.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestBulkheadQueuedAcquire(t *testing.T) {
	b := NewBulkhead(1, time.Second)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Acquire(context.Background()) }()
	// Give the second caller time to enter the queue, then free a slot.
	for b.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	b.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never completed")
	}
}

func TestBulkheadQueueTimeout(t *testing.T) {
	b := NewBulkhead(1, 10*time.Millisecond)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("queued acquire past timeout: %v, want ErrSaturated", err)
	}
}

func TestBulkheadContextCancel(t *testing.T) {
	b := NewBulkhead(1, time.Minute)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Acquire(ctx) }()
	for b.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: %v, want context.Canceled", err)
	}
}

func TestWithBudgetTightensOnly(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("no deadline attached")
	}
	// A looser budget must not extend the existing deadline.
	ctx2, cancel2 := WithBudget(ctx, time.Hour)
	defer cancel2()
	d1, _ := ctx.Deadline()
	d2, _ := ctx2.Deadline()
	if !d2.Equal(d1) {
		t.Fatalf("budget loosened deadline: %s -> %s", d1, d2)
	}
	// Non-positive budget is a no-op.
	ctx3, cancel3 := WithBudget(ctx, 0)
	defer cancel3()
	if ctx3 != ctx {
		t.Fatal("zero budget returned a new context")
	}
}

func TestBudgetAndSplit(t *testing.T) {
	if got := Budget(context.Background(), 42*time.Second); got != 42*time.Second {
		t.Fatalf("default budget = %s", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if got := Budget(ctx, 0); got <= 0 || got > time.Second {
		t.Fatalf("budget = %s, want (0, 1s]", got)
	}
	per := SplitBudget(ctx, 4, 0)
	if per <= 0 || per > 250*time.Millisecond {
		t.Fatalf("per-item = %s, want (0, 250ms]", per)
	}
	if got := SplitBudget(ctx, 1000, 100*time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("floored per-item = %s, want 100ms", got)
	}
	if got := SplitBudget(context.Background(), 4, time.Second); got != 0 {
		t.Fatalf("no-deadline split = %s, want 0", got)
	}
}

func TestExpired(t *testing.T) {
	if Expired(context.Background()) {
		t.Fatal("fresh context reported expired")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !Expired(ctx) {
		t.Fatal("canceled context not reported expired")
	}
}
