package resilience

import (
	"errors"
	"strings"
	"testing"
	"time"

	"napel/internal/obs"
)

func containsLine(out, line string) bool {
	for _, l := range strings.Split(out, "\n") {
		if l == line {
			return true
		}
	}
	return false
}

// testClock is an advanceable clock for deterministic breaker tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold, probes int, timeout time.Duration) (*Breaker, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		Name: "test", FailureThreshold: threshold,
		OpenTimeout: timeout, HalfOpenProbes: probes, Now: clk.now,
	})
	return b, clk
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, 1, time.Minute)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("call %d: %v", i, err)
		}
		if b.State() != BreakerClosed {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
	}
	// A success resets the consecutive count.
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b.Do(func() error { return boom })
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after threshold failures, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open: %v, want ErrBreakerOpen", err)
	}
	if err := b.Do(func() error { t.Fatal("fn ran while open"); return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Do while open: %v", err)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := newTestBreaker(1, 2, time.Minute)
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatal("not open after threshold-1 failure")
	}
	if got := b.RetryIn(); got != time.Minute {
		t.Fatalf("RetryIn = %s, want 1m", got)
	}

	clk.advance(time.Minute)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s after cool-down, want half-open", b.State())
	}
	// Probe capacity is bounded: with 2 probes allowed, the third
	// concurrent Allow is refused.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("third half-open probe admitted: %v", err)
	}
	b.RecordSuccess()
	if b.State() != BreakerHalfOpen {
		t.Fatal("closed after 1 of 2 required probe successes")
	}
	b.RecordSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after probe successes, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, 1, time.Minute)
	b.RecordFailure()
	clk.advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after probe failure, want open", b.State())
	}
	// The cool-down restarts from the reopen.
	clk.advance(30 * time.Second)
	if b.State() != BreakerOpen {
		t.Fatal("half-opened before the restarted cool-down elapsed")
	}
}

func TestBreakerMetrics(t *testing.T) {
	b, clk := newTestBreaker(1, 1, time.Minute)
	reg := obs.NewRegistry()
	b.Register(reg)
	b.RecordFailure()
	b.Allow() // short-circuit
	clk.advance(time.Minute)
	b.State()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`napel_resilience_breaker_state{name="test"} 2`,
		`napel_resilience_breaker_opens_total{name="test"} 1`,
		`napel_resilience_breaker_short_circuits_total{name="test"} 1`,
		`napel_resilience_breaker_failures_total{name="test"} 1`,
	} {
		if !containsLine(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
