package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var calls int
	errBoom := errors.New("boom")
	var retried []int
	err := Do(context.Background(), Policy{
		MaxAttempts: 5,
		OnRetry:     func(attempt int, err error, d time.Duration) { retried = append(retried, attempt) },
	}, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(retried) != 2 || retried[0] != 1 || retried[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", retried)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var calls int
	errBoom := errors.New("boom")
	err := Do(context.Background(), Policy{MaxAttempts: 3}, func(ctx context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	var calls int
	errBad := errors.New("bad input")
	err := Do(context.Background(), Policy{MaxAttempts: 5}, func(ctx context.Context) error {
		calls++
		return Permanent(errBad)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, errBad) || !IsPermanent(err) {
		t.Fatalf("err = %v, want permanent bad-input", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	errBoom := errors.New("boom")
	err := Do(ctx, Policy{MaxAttempts: 100, BaseDelay: time.Hour}, func(ctx context.Context) error {
		calls++
		cancel() // cancel mid-flight: the backoff sleep must abort
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the last attempt error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancellation)", calls)
	}
}

func TestPolicyDelayGrowsAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if d := p.Delay(i + 1); d != w {
			t.Fatalf("Delay(%d) = %s, want %s", i+1, d, w)
		}
	}
	if d := (Policy{}).Delay(3); d != 0 {
		t.Fatalf("zero-policy delay = %s, want 0", d)
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var delays []time.Duration
		p := Policy{
			MaxAttempts: 4, BaseDelay: time.Microsecond, Jitter: 0.5, Seed: seed,
			OnRetry: func(_ int, _ error, d time.Duration) { delays = append(delays, d) },
		}
		Do(context.Background(), p, func(ctx context.Context) error { return errors.New("x") })
		return delays
	}
	a, b := schedule(7), schedule(7)
	if len(a) != 3 {
		t.Fatalf("got %d delays, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical jitter schedule")
	}
}
