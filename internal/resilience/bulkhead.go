package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned by Bulkhead.Acquire when no slot frees up
// within the queue timeout (or immediately, with a zero timeout).
var ErrSaturated = errors.New("resilience: bulkhead saturated")

// Bulkhead isolates a resource behind a fixed number of slots, with an
// optional bounded wait — callers beyond capacity queue for at most
// QueueWait before being shed. It is the concurrency limiter behind
// napel-serve's request path: the semaphore keeps a predictor stampede
// from taking the whole process down, and the shed path feeds the 429
// backpressure answer.
type Bulkhead struct {
	sem       chan struct{}
	queueWait time.Duration
	waiting   atomic.Int64
}

// NewBulkhead builds a bulkhead with capacity slots. queueWait bounds
// how long Acquire blocks for a slot; 0 rejects immediately when full.
func NewBulkhead(capacity int, queueWait time.Duration) *Bulkhead {
	if capacity <= 0 {
		capacity = 1
	}
	return &Bulkhead{sem: make(chan struct{}, capacity), queueWait: queueWait}
}

// Acquire takes a slot, waiting up to the queue timeout. It returns
// ErrSaturated on timeout and ctx.Err() if the context ends first.
// Every successful Acquire must be paired with Release.
func (b *Bulkhead) Acquire(ctx context.Context) error {
	select {
	case b.sem <- struct{}{}:
		return nil
	default:
	}
	if b.queueWait <= 0 {
		return fmt.Errorf("%w: %d slots in use", ErrSaturated, cap(b.sem))
	}
	b.waiting.Add(1)
	defer b.waiting.Add(-1)
	t := time.NewTimer(b.queueWait)
	defer t.Stop()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case b.sem <- struct{}{}:
		return nil
	case <-t.C:
		return fmt.Errorf("%w: no slot freed within %s", ErrSaturated, b.queueWait)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by Acquire.
func (b *Bulkhead) Release() { <-b.sem }

// InUse reports slots currently held.
func (b *Bulkhead) InUse() int { return len(b.sem) }

// Capacity reports the total slot count.
func (b *Bulkhead) Capacity() int { return cap(b.sem) }

// Waiting reports callers currently queued for a slot.
func (b *Bulkhead) Waiting() int { return int(b.waiting.Load()) }
