// Package resilience is the repository's stdlib-only fault-tolerance
// substrate: policy-driven retries with jittered exponential backoff,
// a three-state circuit breaker, semaphore bulkheads with queue
// timeouts, and deadline-budget helpers — the reflexes that let
// napel-serve keep answering and napel-traind keep converging when a
// disk stalls, a model blob corrupts, or a collection unit wedges.
// Its companion subpackage faultpoint injects the faults these
// primitives are tested against.
//
// All randomness (retry jitter) flows from internal/xrand streams, so
// backoff schedules are reproducible in tests; all waiting is
// context-aware, so cancellation and deadline propagation cut through
// every primitive.
package resilience

import (
	"context"
	"errors"
	"time"

	"napel/internal/xrand"
)

// Policy shapes one retry loop. The zero value retries nothing (a
// single attempt); fill in MaxAttempts to enable retries.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 1 mean exactly one attempt.
	MaxAttempts int
	// BaseDelay is the wait after the first failure; attempt n waits
	// BaseDelay × Multiplier^(n-1), capped at MaxDelay. 0 retries
	// immediately.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay; 0 means no cap.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter]
	// of its nominal value, decorrelating competing retriers. Must be
	// in [0, 1); 0 disables jitter.
	Jitter float64
	// Seed seeds the jitter stream, making the full backoff schedule
	// deterministic. 0 uses a fixed default seed.
	Seed uint64
	// OnRetry, when non-nil, observes every scheduled retry: the
	// 1-based attempt that just failed, its error, and the delay before
	// the next attempt.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// permanentError marks an error retrying cannot fix.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops immediately instead of retrying.
// errors.Is/As still see the underlying error. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (anywhere in its chain) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Delay returns the nominal (pre-jitter) backoff before attempt
// attempt+1, given attempt failures so far (attempt >= 1).
func (p Policy) Delay(attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// Do runs fn until it succeeds, returns a Permanent error, exhausts
// MaxAttempts, or ctx ends. Between attempts it sleeps the policy's
// jittered backoff, aborting early (and returning the last error) when
// ctx is done. The returned error is fn's last error — callers can
// inspect ctx.Err() to distinguish cancellation from exhaustion.
func Do(ctx context.Context, p Policy, fn func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	seed := p.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	var rng *xrand.Rand // lazily created: most calls never retry
	for attempt := 1; ; attempt++ {
		err := fn(ctx)
		if err == nil {
			return nil
		}
		if IsPermanent(err) || attempt >= attempts || ctx.Err() != nil {
			return err
		}
		delay := p.Delay(attempt)
		if delay > 0 && p.Jitter > 0 {
			if rng == nil {
				rng = xrand.New(seed)
			}
			f := 1 + p.Jitter*(2*rng.Float64()-1)
			delay = time.Duration(float64(delay) * f)
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return err
			}
			t.Stop()
		}
	}
}
