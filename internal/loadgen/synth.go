package loadgen

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"napel/internal/pisa"
	"napel/internal/serve"
	"napel/internal/xrand"
)

// SynthConfig controls request synthesis. The zero value (plus a seed)
// is a working configuration.
type SynthConfig struct {
	// Seed drives every stochastic choice; identical seeds produce
	// byte-identical bodies and op schedules.
	Seed uint64
	// Keyspace is how many distinct request variants exist per class
	// (default 32). Smaller keyspaces raise the server's cache hit
	// ratio; larger ones approach a cold-cache workload.
	Keyspace int
	// BatchSize is the item count of each batched predict body
	// (default 16).
	BatchSize int
	// Model names the registry entry requests ask for; empty selects
	// the server's default model.
	Model string
	// Base, when non-nil, supplies the kernel profile: variants reuse
	// its profile and vary only the architecture point and thread
	// count (the realistic shape — one profiled kernel, many design
	// points). When nil, profiles are fully synthetic: valid wire
	// profiles with seeded feature values, which exercise the identical
	// server path since the predictor is distribution-agnostic at the
	// wire level.
	Base *serve.PredictRequest
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Keyspace <= 0 {
		c.Keyspace = 32
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	return c
}

// Generator owns the pregenerated request variants and the deterministic
// op schedule. All methods are safe for concurrent use after
// construction: scheduling is a pure function of (seed, index) and the
// pregenerated state is read-only.
type Generator struct {
	cfg  SynthConfig
	mix  Mix
	cum  [numKinds]float64
	reqs []serve.PredictRequest
	// Pregenerated bodies per class, indexed by variant. Marshaling
	// happens once at construction: the hot path only picks slices, so
	// generator overhead cannot distort latency measurements, and body
	// bytes are trivially identical across same-seed runs.
	single [][]byte
	batch  [][]byte
	suit   [][]byte
	// batchIdx records which variant each batch item came from, so the
	// prober can match served batch items back to their requests.
	batchIdx [][]int
}

// mix64 is splitmix64's finalizer: a bijective scramble turning an op
// index into a decorrelated seed offset.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream tags for deriving independent xrand streams from one seed.
const (
	streamSchedule = 0x5ca1ab1e
	streamVariant  = 0xbeefcafe
	streamBatch    = 0x0ddba11
	streamArrival  = 0xf1ee7d0e
	streamTrace    = 0x7ace1de7
)

// NewGenerator pregenerates the variant bodies for every class in the
// mix.
func NewGenerator(cfg SynthConfig, mix Mix) (*Generator, error) {
	cfg = cfg.withDefaults()
	cum, err := mix.weights()
	if err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, mix: mix, cum: cum}

	g.reqs = make([]serve.PredictRequest, cfg.Keyspace)
	g.single = make([][]byte, cfg.Keyspace)
	g.suit = make([][]byte, cfg.Keyspace)
	for v := 0; v < cfg.Keyspace; v++ {
		r := xrand.New(cfg.Seed ^ mix64(uint64(v)*2+streamVariant))
		g.reqs[v] = synthRequest(r, cfg)
		if g.single[v], err = json.Marshal(&g.reqs[v]); err != nil {
			return nil, fmt.Errorf("loadgen: marshaling variant %d: %w", v, err)
		}
		sreq := serve.SuitabilityRequest{
			PredictRequest: g.reqs[v],
			// A seeded positive host EDP; the absolute value only
			// steers the verdict, which the prober recomputes anyway.
			Host: serve.WireHost{EDP: 1e-3 * (1 + r.Float64())},
		}
		if g.suit[v], err = json.Marshal(&sreq); err != nil {
			return nil, fmt.Errorf("loadgen: marshaling suitability %d: %w", v, err)
		}
	}

	g.batch = make([][]byte, cfg.Keyspace)
	g.batchIdx = make([][]int, cfg.Keyspace)
	for b := 0; b < cfg.Keyspace; b++ {
		r := xrand.New(cfg.Seed ^ mix64(uint64(b)*2+streamBatch))
		items := make([]serve.PredictRequest, cfg.BatchSize)
		g.batchIdx[b] = make([]int, cfg.BatchSize)
		for i := range items {
			v := r.Intn(cfg.Keyspace)
			g.batchIdx[b][i] = v
			items[i] = g.reqs[v]
		}
		if g.batch[b], err = json.Marshal(items); err != nil {
			return nil, fmt.Errorf("loadgen: marshaling batch %d: %w", b, err)
		}
	}
	return g, nil
}

// synthRequest builds variant bodies. With a base request, only the
// architecture point and thread count vary; otherwise the profile is
// synthesized too.
func synthRequest(r *xrand.Rand, cfg SynthConfig) serve.PredictRequest {
	req := serve.PredictRequest{Model: cfg.Model}
	if cfg.Base != nil {
		req.Profile = cfg.Base.Profile
		if cfg.Model == "" {
			req.Model = cfg.Base.Model
		}
	} else {
		req.Profile = synthProfile(r)
	}
	// Architecture points from small validated menus around the Table 3
	// baseline (zero keeps the baseline value, mirroring the wire
	// contract).
	pes := []int{0, 2, 4, 8, 16}[r.Intn(5)]
	req.Arch = serve.WireArch{
		PEs:     pes,
		FreqGHz: []float64{0, 1.25, 1.5, 2}[r.Intn(4)],
		L1Lines: []int{0, 256, 512, 1024}[r.Intn(4)],
	}
	if r.Float64() < 0.25 {
		req.Arch.Core = "ooo"
	}
	// Threads: default (one per PE) most of the time, sometimes pinned.
	if r.Float64() < 0.3 {
		t := pes
		if t == 0 {
			t = 4
		}
		req.Threads = t
	}
	return req
}

// synthProfile fabricates a wire-valid kernel profile: every pisa
// feature present and finite, a monotone hit-fraction curve, and a
// plausible instruction total. The values need no physical meaning —
// the server assembles and predicts over them exactly as it would over
// a real profile, which is the property load generation measures.
func synthProfile(r *xrand.Rand) serve.WireProfile {
	names := pisa.FeatureNames()
	feats := make(map[string]float64, len(names))
	for _, n := range names {
		feats[n] = r.Float64()
	}
	curve := make([]float64, 24)
	hit := r.Float64() * 0.2
	for i := range curve {
		hit += (1 - hit) * r.Float64() * 0.3
		if hit > 1 {
			hit = 1
		}
		curve[i] = hit
	}
	total := 1e6 * (1 + 9*r.Float64())
	return serve.WireProfile{
		SimInstrs:      uint64(total / 10),
		Coverage:       0.1,
		TotalInstrs:    total,
		FootprintBytes: 1 << 20,
		Features:       feats,
		HitCurve:       curve,
	}
}

// Op returns the i-th scheduled request. The schedule is a pure
// function of (seed, mix, keyspace, i): any worker may claim any index
// at any time and the overall sequence is still byte-identical across
// runs.
func (g *Generator) Op(i uint64) Op {
	r := xrand.New(g.cfg.Seed ^ mix64(i*2+streamSchedule))
	u := r.Float64()
	k := KindPredict
	for ; k < KindSuitability; k++ {
		if u < g.cum[k] {
			break
		}
	}
	return Op{Kind: k, Variant: r.Intn(g.cfg.Keyspace)}
}

// Body returns the pregenerated bytes for op. Callers must not mutate
// the returned slice.
func (g *Generator) Body(op Op) []byte {
	switch op.Kind {
	case KindBatch:
		return g.batch[op.Variant]
	case KindSuitability:
		return g.suit[op.Variant]
	default:
		return g.single[op.Variant]
	}
}

// Request returns the variant's request object (the batch class shares
// these items). The pointer aliases generator state; treat as
// read-only.
func (g *Generator) Request(variant int) *serve.PredictRequest { return &g.reqs[variant] }

// BatchItems reports how many predictions one batch body carries.
func (g *Generator) BatchItems() int { return g.cfg.BatchSize }

// BatchVariants returns the variant index behind each item of the given
// batch body, aligning served batch items with their source requests.
func (g *Generator) BatchVariants(batch int) []int { return g.batchIdx[batch] }

// Interarrival returns the i-th open-loop gap for a target rate:
// exponential with mean 1/rps, deterministic per (seed, i).
func (g *Generator) Interarrival(i uint64, rps float64) time.Duration {
	r := xrand.New(g.cfg.Seed ^ mix64(i*2+streamArrival))
	return time.Duration(r.ExpFloat64() / rps * float64(time.Second))
}

// ScheduleDigest hashes the first n ops — the replayability attestation
// embedded in BENCH reports: equal seeds and mixes yield equal digests.
func (g *Generator) ScheduleDigest(n uint64) string {
	h := fnv.New64a()
	var buf [16]byte
	for i := uint64(0); i < n; i++ {
		op := g.Op(i)
		putUint64(buf[:8], uint64(op.Kind))
		putUint64(buf[8:], uint64(op.Variant))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// BodyDigest hashes every pregenerated body, attesting that two runs
// sent byte-identical payloads.
func (g *Generator) BodyDigest() string {
	h := fnv.New64a()
	for _, set := range [][][]byte{g.single, g.batch, g.suit} {
		for _, b := range set {
			h.Write(b)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
