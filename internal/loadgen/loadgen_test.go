package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		in   string
		want Mix
		ok   bool
	}{
		{"", DefaultMix(), true},
		{"predict=60,batch=20,suitability=20", Mix{60, 20, 20}, true},
		{"predict=1", Mix{Predict: 1}, true},
		{" batch=3 , suitability=7 ", Mix{Batch: 3, Suitability: 7}, true},
		{"predict=0,batch=0,suitability=0", Mix{}, false},
		{"predict=-1", Mix{}, false},
		{"bogus=1", Mix{}, false},
		{"predict", Mix{}, false},
	}
	for _, c := range cases {
		got, err := ParseMix(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseMix(%q) error = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseMix(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	// String renders in ParseMix's own grammar.
	m, err := ParseMix(DefaultMix().String())
	if err != nil || m != DefaultMix() {
		t.Fatalf("round trip: %+v, %v", m, err)
	}
}

// TestSeedReplay is the replayability contract: the same seed yields a
// byte-identical schedule and bodies, and a different seed does not.
func TestSeedReplay(t *testing.T) {
	cfg := SynthConfig{Seed: 42, Keyspace: 8, BatchSize: 4}
	a, err := NewGenerator(cfg, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(cfg, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if a.Op(i) != b.Op(i) {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a.Op(i), b.Op(i))
		}
		if a.Interarrival(i, 100) != b.Interarrival(i, 100) {
			t.Fatalf("interarrival %d diverged", i)
		}
	}
	for i := uint64(0); i < 100; i++ {
		op := a.Op(i)
		if !bytes.Equal(a.Body(op), b.Body(op)) {
			t.Fatalf("body for op %d diverged", i)
		}
	}
	if a.ScheduleDigest(500) != b.ScheduleDigest(500) {
		t.Fatal("schedule digests diverged for equal seeds")
	}
	if a.BodyDigest() != b.BodyDigest() {
		t.Fatal("body digests diverged for equal seeds")
	}

	c, err := NewGenerator(SynthConfig{Seed: 43, Keyspace: 8, BatchSize: 4}, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	if a.ScheduleDigest(500) == c.ScheduleDigest(500) {
		t.Fatal("different seeds produced the same schedule digest")
	}
	if a.BodyDigest() == c.BodyDigest() {
		t.Fatal("different seeds produced the same body digest")
	}
}

// TestMixCoverage checks the schedule actually exercises every class in
// the mix, and only those.
func TestMixCoverage(t *testing.T) {
	g, err := NewGenerator(SynthConfig{Seed: 7}, Mix{Predict: 1, Suitability: 1})
	if err != nil {
		t.Fatal(err)
	}
	var seen [numKinds]int
	for i := uint64(0); i < 2000; i++ {
		seen[g.Op(i).Kind]++
	}
	if seen[KindPredict] == 0 || seen[KindSuitability] == 0 {
		t.Fatalf("mixed classes missing from schedule: %v", seen)
	}
	if seen[KindBatch] != 0 {
		t.Fatalf("zero-weight class scheduled %d times", seen[KindBatch])
	}
}

// fakeServe answers like napel-serve's happy path: per-item responses
// for batch arrays, a suitability envelope on /v1/suitability.
func fakeServe(t *testing.T, delay time.Duration) *httptest.Server {
	t.Helper()
	h := http.NewServeMux()
	respond := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			t.Errorf("encoding fake response: %v", err)
		}
	}
	h.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			time.Sleep(delay)
		}
		body, _ := io.ReadAll(r.Body)
		if bytes.HasPrefix(bytes.TrimSpace(body), []byte("[")) {
			var items []json.RawMessage
			if err := json.Unmarshal(body, &items); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resps := make([]map[string]any, len(items))
			for i := range resps {
				resps[i] = map[string]any{"ipc": 1.0, "edp": 2.0}
			}
			respond(w, resps)
			return
		}
		respond(w, map[string]any{"ipc": 1.0, "edp": 2.0, "cached": true})
	})
	h.HandleFunc("/v1/suitability", func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			time.Sleep(delay)
		}
		respond(w, map[string]any{
			"nmc":     map[string]any{"ipc": 1.0, "edp": 2.0, "degraded": true},
			"verdict": "offload",
		})
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// TestBackpressureIsNotAnError pins the satellite contract: a draining
// or breaker-open server answering 429/503-with-Retry-After produces
// backpressure tallies and paced (honored, capped) retries — not hard
// errors, and not SLO failures under a strict error-rate gate.
func TestBackpressureIsNotAnError(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
	}{
		{"429", http.StatusTooManyRequests},
		{"503-draining", http.StatusServiceUnavailable},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Uint64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(tc.status)
			}))
			defer srv.Close()

			const n = 6
			start := time.Now()
			rep, err := Run(context.Background(), Config{
				Target:        srv.URL,
				Workers:       2,
				Requests:      n,
				Synth:         SynthConfig{Seed: 1, Keyspace: 4, BatchSize: 2},
				MaxRetryAfter: 30 * time.Millisecond,
				SLO:           SLOLimits{MaxErrorRate: 0},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Backpressure != n || rep.Errors != 0 || rep.OK != 0 {
				t.Fatalf("backpressure=%d errors=%d ok=%d, want %d/0/0",
					rep.Backpressure, rep.Errors, rep.OK, n)
			}
			if !rep.SLOPass {
				t.Fatalf("strict error-rate SLO failed on pure backpressure: %+v", rep.SLO)
			}
			// Each worker handled 3 ops and slept the capped Retry-After
			// after each: the run must show the pacing was honored.
			if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
				t.Fatalf("run finished in %v; Retry-After pacing not honored", elapsed)
			}
			if hits.Load() != n {
				t.Fatalf("server saw %d requests, want %d", hits.Load(), n)
			}
		})
	}
}

// TestMultiTargetRoundRobin: a Targets list spreads the schedule
// evenly and deterministically across replicas, and the report records
// the full target list.
func TestMultiTargetRoundRobin(t *testing.T) {
	var hits [2]atomic.Uint64
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"ipc":1.0,"edp":2.0}`))
		}))
	}
	a, b := mk(0), mk(1)
	defer a.Close()
	defer b.Close()

	const n = 20
	rep, err := Run(context.Background(), Config{
		Targets:  []string{a.URL, b.URL},
		Workers:  2,
		Requests: n,
		Mix:      Mix{Predict: 1},
		Synth:    SynthConfig{Seed: 3, Keyspace: 4, BatchSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != n {
		t.Fatalf("ok=%d, want %d", rep.OK, n)
	}
	if got := len(rep.Targets); got != 2 {
		t.Fatalf("report lists %d targets, want 2", got)
	}
	// Round-robin on the schedule index: an even split regardless of
	// which worker drew which op.
	if hits[0].Load() != n/2 || hits[1].Load() != n/2 {
		t.Fatalf("split %d/%d, want %d/%d", hits[0].Load(), hits[1].Load(), n/2, n/2)
	}
}

// TestHardErrorsAreCounted: a 503 without Retry-After is a hard error,
// and it fails a strict error-rate SLO.
func TestHardErrorsAreCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Target:   srv.URL,
		Workers:  2,
		Requests: 4,
		Synth:    SynthConfig{Seed: 1, Keyspace: 4, BatchSize: 2},
		SLO:      SLOLimits{MaxErrorRate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 4 || rep.Backpressure != 0 {
		t.Fatalf("errors=%d backpressure=%d, want 4/0", rep.Errors, rep.Backpressure)
	}
	if rep.SLOPass {
		t.Fatal("strict error-rate SLO passed despite hard errors")
	}
	if rep.ErrorRate != 1 {
		t.Fatalf("error rate %v, want 1", rep.ErrorRate)
	}
}

// zeroWallClock clears every field that legitimately varies between two
// same-seed runs, leaving only replay-deterministic content.
func zeroWallClock(rep *Report) {
	rep.DurationSeconds = 0
	rep.RequestsPerSec = 0
	rep.Overall = Quantiles{}
	rep.StartedAt = ""
	for i := range rep.Endpoints {
		rep.Endpoints[i].RequestsPerSec = 0
		rep.Endpoints[i].Latency = Quantiles{}
		rep.Endpoints[i].Histogram = nil
	}
}

// TestReportReplayDeterminism: two runs with the same seed against the
// same server produce identical reports modulo wall-clock fields.
func TestReportReplayDeterminism(t *testing.T) {
	srv := fakeServe(t, 0)
	run := func() *Report {
		rep, err := Run(context.Background(), Config{
			Target:   srv.URL,
			Workers:  4,
			Requests: 120,
			Synth:    SynthConfig{Seed: 99, Keyspace: 8, BatchSize: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.ScheduleDigest != b.ScheduleDigest || a.BodyDigest != b.BodyDigest {
		t.Fatalf("digests diverged: %s/%s vs %s/%s",
			a.ScheduleDigest, a.BodyDigest, b.ScheduleDigest, b.BodyDigest)
	}
	zeroWallClock(a)
	zeroWallClock(b)
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("reports diverged:\n%s\n%s", aj, bj)
	}
	// Sanity on content: everything succeeded, cache/degraded splits
	// populated from the fake responses.
	if a.OK != 120 || a.Errors != 0 {
		t.Fatalf("ok=%d errors=%d, want 120/0", a.OK, a.Errors)
	}
	if a.Degraded == 0 {
		t.Fatal("degraded suitability answers not split out")
	}
}

// TestInterruptWritesPartialReport: cancelling the context mid-run still
// yields a coherent report, marked interrupted, with partial counts.
func TestInterruptWritesPartialReport(t *testing.T) {
	srv := fakeServe(t, 10*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	rep, err := Run(ctx, Config{
		Target:   srv.URL,
		Workers:  2,
		Requests: 100000,
		Synth:    SynthConfig{Seed: 5, Keyspace: 4, BatchSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Fatal("report not marked interrupted")
	}
	if rep.Issued == 0 || rep.Issued >= 100000 {
		t.Fatalf("issued = %d, want a partial count", rep.Issued)
	}
	// Cancelled in-flight requests must not pollute the error tally.
	if rep.Errors != 0 {
		t.Fatalf("errors = %d after clean interrupt, want 0", rep.Errors)
	}
}

// TestOpenLoopShedsOverWindow: with one outstanding slot and a slow
// server, the open loop sheds arrivals instead of queueing, and counts
// them.
func TestOpenLoopShedsOverWindow(t *testing.T) {
	srv := fakeServe(t, 30*time.Millisecond)
	rep, err := Run(context.Background(), Config{
		Target:         srv.URL,
		Mode:           ModeOpen,
		RPS:            400,
		MaxOutstanding: 1,
		Requests:       40,
		Synth:          SynthConfig{Seed: 11, Keyspace: 4, BatchSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpenLoopDropped == 0 {
		t.Fatal("slow server at 400 rps with window 1 shed nothing")
	}
	if rep.Issued+rep.OpenLoopDropped != 40 {
		t.Fatalf("issued %d + dropped %d != 40 scheduled", rep.Issued, rep.OpenLoopDropped)
	}
	if rep.Mode != ModeOpen || rep.TargetRPS != 400 {
		t.Fatalf("open-loop parameters not recorded: %+v", rep)
	}
}

// TestScrapeDeltas: metrics snapshots around the run land in the report
// as deltas.
func TestScrapeDeltas(t *testing.T) {
	var scrapes atomic.Uint64
	h := http.NewServeMux()
	h.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ipc":1}`)
	})
	h.HandleFunc("/v1/suitability", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"nmc":{"ipc":1}}`)
	})
	h.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		n := scrapes.Add(1)
		fmt.Fprintf(w, "napel_serve_requests_total{endpoint=\"predict\"} %d\n", n*100)
		fmt.Fprintf(w, "napel_serve_cache_hits_total %d\n", n*30)
		fmt.Fprintf(w, "napel_serve_cache_misses_total %d\n", n*10)
		fmt.Fprintf(w, "napel_process_alloc_bytes_total %d\n", n*1000)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Target:        srv.URL,
		Workers:       1,
		Requests:      5,
		Synth:         SynthConfig{Seed: 3, Keyspace: 2, BatchSize: 2},
		ScrapeMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server == nil {
		t.Fatalf("no server stats (scrape error %q)", rep.ScrapeError)
	}
	if rep.Server.RequestsTotal != 100 || rep.Server.AllocBytes != 1000 {
		t.Fatalf("deltas wrong: %+v", rep.Server)
	}
	if rep.Server.CacheHitRatio != 0.75 {
		t.Fatalf("cache hit ratio %v, want 0.75", rep.Server.CacheHitRatio)
	}
	if rep.Server.AllocBytesPerRequest != 10 {
		t.Fatalf("alloc/request %v, want 10", rep.Server.AllocBytesPerRequest)
	}
}

// TestSLOVerdicts exercises each gate's pass and fail side directly.
func TestSLOVerdicts(t *testing.T) {
	rep := &Report{
		Overall:        Quantiles{P99Ms: 50},
		RequestsPerSec: 200,
		ErrorRate:      0.005,
		slo:            SLOLimits{P99: 100 * time.Millisecond, MinRPS: 100, MaxErrorRate: 0.01},
	}
	rep.Evaluate()
	if !rep.SLOPass || len(rep.SLO) != 3 {
		t.Fatalf("expected 3 passing gates: %+v", rep.SLO)
	}

	rep.slo = SLOLimits{P99: 10 * time.Millisecond, MinRPS: 1000, MaxErrorRate: 0.001}
	rep.Evaluate()
	if rep.SLOPass {
		t.Fatal("tightened gates still pass")
	}
	for _, v := range rep.SLO {
		if v.Pass {
			t.Fatalf("gate %s should fail: %+v", v.Name, v)
		}
	}

	// MaxErrorRate<0 disables that gate; probing adds a gate.
	rep.slo = SLOLimits{MaxErrorRate: -1}
	rep.probeActive = true
	rep.Probe.Mismatches = 1
	rep.Evaluate()
	if len(rep.SLO) != 1 || rep.SLO[0].Name != "probe_mismatches" || rep.SLOPass {
		t.Fatalf("probe gate wrong: %+v", rep.SLO)
	}
}
