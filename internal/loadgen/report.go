package loadgen

import (
	"fmt"
	"runtime"
	"time"

	"napel/internal/obs"
	"napel/internal/stats"
)

// ReportSchema versions the BENCH_*.json wire format so trajectory
// tooling can refuse files it does not understand.
const ReportSchema = "napel-bench/v1"

// Quantiles summarizes one latency histogram in milliseconds.
type Quantiles struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func quantilesOf(h *stats.LogHist) Quantiles {
	const ms = 1e3
	return Quantiles{
		P50Ms:  h.Quantile(0.50) * ms,
		P90Ms:  h.Quantile(0.90) * ms,
		P99Ms:  h.Quantile(0.99) * ms,
		P999Ms: h.Quantile(0.999) * ms,
		MeanMs: h.Mean() * ms,
		MinMs:  h.Min() * ms,
		MaxMs:  h.Max() * ms,
	}
}

// EndpointReport is one traffic class's results.
type EndpointReport struct {
	Endpoint string `json:"endpoint"`
	Path     string `json:"path"`
	Issued   uint64 `json:"issued"`
	// OK counts 2xx requests (degraded and cached answers included —
	// they are split out below, not subtracted here).
	OK           uint64 `json:"ok"`
	Errors       uint64 `json:"errors"`
	Backpressure uint64 `json:"backpressure"`
	// Degraded counts degraded:true answers (per item for batches).
	Degraded uint64 `json:"degraded"`
	Cached   uint64 `json:"cached"`
	// ItemErrors counts per-item errors inside otherwise-200 batch
	// responses.
	ItemErrors     uint64    `json:"item_errors,omitempty"`
	Probed         uint64    `json:"probed"`
	Mismatches     uint64    `json:"mismatches"`
	RequestsPerSec float64   `json:"requests_per_sec"`
	Latency        Quantiles `json:"latency"`
	// Histogram is the full latency sketch (seconds), mergeable across
	// runs for trajectory analysis.
	Histogram    *stats.LogHist `json:"histogram,omitempty"`
	ErrorExample string         `json:"error_example,omitempty"`
}

// ServerStats are /metrics deltas scraped around the run, attributing
// server-side work to the generated load.
type ServerStats struct {
	RequestsTotal    float64 `json:"requests_total"`
	PredictionsTotal float64 `json:"predictions_total"`
	CacheHits        float64 `json:"cache_hits"`
	CacheMisses      float64 `json:"cache_misses"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	DegradedTotal    float64 `json:"degraded_total"`
	RejectedTotal    float64 `json:"rejected_total"`
	ChaosInjected    float64 `json:"chaos_injected,omitempty"`
	// Runtime attribution from the napel_process_* series.
	AllocBytes           float64 `json:"alloc_bytes"`
	Mallocs              float64 `json:"mallocs"`
	GCCycles             float64 `json:"gc_cycles"`
	GCPauseSeconds       float64 `json:"gc_pause_seconds"`
	AllocBytesPerRequest float64 `json:"alloc_bytes_per_request"`
	MallocsPerRequest    float64 `json:"mallocs_per_request"`
}

// SLOLimits configures the pass/fail gates. Zero values disable a gate,
// except MaxErrorRate where a negative value disables (0 is a real,
// strict limit).
type SLOLimits struct {
	// P99 bounds overall p99 latency.
	P99 time.Duration
	// MinRPS bounds overall achieved throughput (OK requests per
	// second) from below.
	MinRPS float64
	// MaxErrorRate bounds hard errors / issued (backpressure excluded);
	// negative disables.
	MaxErrorRate float64
	// ExpectDegraded requires at least one degraded answer — the
	// chaos-under-load gate proving degraded-mode serving actually
	// engaged (a chaos run where nothing degrades proves nothing).
	ExpectDegraded bool
}

// Verdict is one evaluated SLO gate.
type Verdict struct {
	Name   string  `json:"name"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

func (v Verdict) String() string {
	state := "PASS"
	if !v.Pass {
		state = "FAIL"
	}
	return fmt.Sprintf("%s %s: actual %.4g vs limit %.4g", state, v.Name, v.Actual, v.Limit)
}

// ProbeReport summarizes the correctness probing.
type ProbeReport struct {
	Enabled      bool   `json:"enabled"`
	ModelVersion string `json:"model_version,omitempty"`
	Checked      uint64 `json:"checked"`
	Mismatches   uint64 `json:"mismatches"`
	Example      string `json:"example,omitempty"`
}

// Report is the machine-readable BENCH_*.json payload: enough context
// to replay the run (seed, mix, mode, shape) plus the measured results
// and SLO verdicts.
type Report struct {
	Schema    string `json:"schema"`
	PR        int    `json:"pr,omitempty"`
	GitRev    string `json:"git_rev,omitempty"`
	StartedAt string `json:"started_at,omitempty"`

	Target string `json:"target"`
	// Targets lists every base URL the schedule round-robined across
	// (omitted for classic single-target runs); Topology is a free-form
	// stamp of the serving shape behind them, e.g. "gate+3x serve".
	Targets    []string `json:"targets,omitempty"`
	Topology   string   `json:"topology,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	Mode       Mode     `json:"mode"`
	Seed           uint64  `json:"seed"`
	Mix            string  `json:"mix"`
	Keyspace       int     `json:"keyspace"`
	BatchSize      int     `json:"batch_size"`
	Workers        int     `json:"workers,omitempty"`
	ThinkMS        float64 `json:"think_ms,omitempty"`
	TargetRPS      float64 `json:"target_rps,omitempty"`
	Requested      uint64  `json:"requested,omitempty"`
	ScheduleDigest string  `json:"schedule_digest"`
	BodyDigest     string  `json:"body_digest"`

	DurationSeconds float64 `json:"duration_seconds"`
	Interrupted     bool    `json:"interrupted,omitempty"`

	Issued          uint64  `json:"issued"`
	OK              uint64  `json:"ok"`
	Errors          uint64  `json:"errors"`
	Backpressure    uint64  `json:"backpressure"`
	Degraded        uint64  `json:"degraded"`
	OpenLoopDropped uint64  `json:"open_loop_dropped,omitempty"`
	ErrorRate       float64 `json:"error_rate"`
	RequestsPerSec  float64 `json:"requests_per_sec"`

	Overall   Quantiles        `json:"overall_latency"`
	Endpoints []EndpointReport `json:"endpoints"`

	Probe ProbeReport `json:"probe"`

	Server      *ServerStats `json:"server,omitempty"`
	ScrapeError string       `json:"scrape_error,omitempty"`

	SLO     []Verdict `json:"slo,omitempty"`
	SLOPass bool      `json:"slo_pass"`

	// slo keeps the configured limits for Evaluate; not serialized.
	slo         SLOLimits `json:"-"`
	probeActive bool      `json:"-"`
}

// buildReport folds the merged tallies into the wire report. Evaluate
// must be called afterwards to fill the SLO verdicts.
func buildReport(cfg Config, gen *Generator, t *tally, elapsed time.Duration, interrupted bool) *Report {
	rep := &Report{
		Schema:          ReportSchema,
		Target:          cfg.Target,
		Mode:            cfg.Mode,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Seed:            cfg.Synth.Seed,
		Mix:             cfg.Mix.String(),
		Keyspace:        gen.cfg.Keyspace,
		BatchSize:       gen.cfg.BatchSize,
		Requested:       cfg.Requests,
		DurationSeconds: elapsed.Seconds(),
		Interrupted:     interrupted,
		OpenLoopDropped: t.dropped,
		BodyDigest:      gen.BodyDigest(),
		slo:             cfg.SLO,
		probeActive:     cfg.Prober != nil,
	}
	if len(cfg.Targets) > 1 {
		rep.Targets = cfg.Targets
	}
	switch cfg.Mode {
	case ModeOpen:
		rep.TargetRPS = cfg.RPS
	default:
		rep.Workers = cfg.Workers
		rep.ThinkMS = float64(cfg.Think) / float64(time.Millisecond)
	}

	overall := stats.NewLatencyHist()
	for k := Kind(0); k < numKinds; k++ {
		kt := &t.kinds[k]
		ep := EndpointReport{
			Endpoint:     k.String(),
			Path:         k.Path(),
			Issued:       kt.issued,
			OK:           kt.ok,
			Errors:       kt.errors,
			Backpressure: kt.backpressure,
			Degraded:     kt.degraded,
			Cached:       kt.cached,
			ItemErrors:   kt.itemErrors,
			Probed:       kt.probed,
			Mismatches:   kt.mismatches,
			Latency:      quantilesOf(kt.hist),
			Histogram:    kt.hist,
			ErrorExample: kt.errExample,
		}
		if elapsed > 0 {
			ep.RequestsPerSec = float64(kt.ok) / elapsed.Seconds()
		}
		rep.Endpoints = append(rep.Endpoints, ep)
		rep.Issued += kt.issued
		rep.OK += kt.ok
		rep.Errors += kt.errors
		rep.Backpressure += kt.backpressure
		rep.Degraded += kt.degraded
		rep.Probe.Checked += kt.probed
		rep.Probe.Mismatches += kt.mismatches
		if rep.Probe.Example == "" {
			rep.Probe.Example = kt.mismatch
		}
		// Merge can only fail on layout mismatch; all hists share
		// NewLatencyHist's layout.
		_ = overall.Merge(kt.hist)
	}
	rep.Overall = quantilesOf(overall)
	if rep.Issued > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Issued)
	}
	if elapsed > 0 {
		rep.RequestsPerSec = float64(rep.OK) / elapsed.Seconds()
	}
	rep.Probe.Enabled = cfg.Prober != nil
	if mp, ok := cfg.Prober.(*ModelProber); ok && mp != nil {
		rep.Probe.ModelVersion = mp.Version()
	}
	// The schedule digest attests the planned schedule: the full
	// request count when bounded, else exactly what was issued.
	n := cfg.Requests
	if n == 0 {
		n = rep.Issued
	}
	rep.ScheduleDigest = gen.ScheduleDigest(n)
	return rep
}

// Evaluate fills the SLO verdicts from the configured limits. A probe
// gate (zero mismatches) is always active when probing ran. The report
// passes only if every active gate passes; with no active gates it
// passes vacuously.
func (r *Report) Evaluate() {
	r.SLO = r.SLO[:0]
	add := func(name string, limit, actual float64, pass bool) {
		r.SLO = append(r.SLO, Verdict{Name: name, Limit: limit, Actual: actual, Pass: pass})
	}
	if r.slo.P99 > 0 {
		limit := float64(r.slo.P99) / float64(time.Millisecond)
		add("p99_ms", limit, r.Overall.P99Ms, r.Overall.P99Ms <= limit)
	}
	if r.slo.MinRPS > 0 {
		add("min_rps", r.slo.MinRPS, r.RequestsPerSec, r.RequestsPerSec >= r.slo.MinRPS)
	}
	if r.slo.MaxErrorRate >= 0 {
		add("max_error_rate", r.slo.MaxErrorRate, r.ErrorRate, r.ErrorRate <= r.slo.MaxErrorRate)
	}
	if r.probeActive {
		add("probe_mismatches", 0, float64(r.Probe.Mismatches), r.Probe.Mismatches == 0)
	}
	if r.slo.ExpectDegraded {
		add("expect_degraded", 1, float64(r.Degraded), r.Degraded > 0)
	}
	r.SLOPass = true
	for _, v := range r.SLO {
		if !v.Pass {
			r.SLOPass = false
		}
	}
}

// serverStats folds before/after /metrics snapshot pairs into
// attribution deltas, summed across all scraped targets so a fleet's
// caches and allocations report as one aggregate.
func serverStats(before, after []obs.Snapshot) *ServerStats {
	d := func(name string) float64 {
		var sum float64
		for i := range after {
			if i < len(before) {
				sum += after[i].DeltaFamily(before[i], name)
			}
		}
		return sum
	}
	ss := &ServerStats{
		RequestsTotal:    d("napel_serve_requests_total"),
		PredictionsTotal: d("napel_serve_predictions_total"),
		CacheHits:        d("napel_serve_cache_hits_total"),
		CacheMisses:      d("napel_serve_cache_misses_total"),
		DegradedTotal:    d("napel_serve_degraded_total"),
		RejectedTotal:    d("napel_serve_rejected_total"),
		ChaosInjected:    d("napel_chaos_injected_total"),
		AllocBytes:       d("napel_process_alloc_bytes_total"),
		Mallocs:          d("napel_process_mallocs_total"),
		GCCycles:         d("napel_process_gc_cycles_total"),
		GCPauseSeconds:   d("napel_process_gc_pause_seconds_total"),
	}
	if hm := ss.CacheHits + ss.CacheMisses; hm > 0 {
		ss.CacheHitRatio = ss.CacheHits / hm
	}
	if ss.RequestsTotal > 0 {
		ss.AllocBytesPerRequest = ss.AllocBytes / ss.RequestsTotal
		ss.MallocsPerRequest = ss.Mallocs / ss.RequestsTotal
	}
	return ss
}
