package loadgen

import (
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"napel/internal/napel"
	"napel/internal/serve"
)

// Prober verifies served responses against locally computed
// expectations, turning the load generator into a correctness probe:
// a server that is fast but wrong fails the run. Check reports whether
// the sample was actually verified (degraded answers and foreign model
// generations are skipped) and a non-nil error on divergence.
type Prober interface {
	Check(req *serve.PredictRequest, resp *serve.PredictResponse) (checked bool, err error)
}

// ModelProber checks responses against a local copy of the served model
// file: it assembles each request exactly as the server does and
// demands bit-identical predictions. Expectations are memoized per
// request variant, so steady-state probing costs one map hit, not a
// forest evaluation.
type ModelProber struct {
	pred    *napel.Predictor
	version string

	mu   sync.Mutex
	memo map[*serve.PredictRequest]napel.Prediction
}

// NewModelProber loads the model file and records its content version
// (the same FNV-64a hash the serve registry stamps into responses), so
// probes only judge responses computed under this exact generation.
func NewModelProber(path string) (*ModelProber, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pred, err := napel.LoadPredictorFile(path)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(data)
	return &ModelProber{
		pred:    pred,
		version: fmt.Sprintf("%016x", h.Sum64()),
		memo:    map[*serve.PredictRequest]napel.Prediction{},
	}, nil
}

// Version returns the content hash of the probed model file.
func (p *ModelProber) Version() string { return p.version }

// Check implements Prober. Skips (checked=false) degraded answers —
// they may legitimately come from an older generation — and responses
// from a model version other than the probed file (mid-run hot
// reload).
func (p *ModelProber) Check(req *serve.PredictRequest, resp *serve.PredictResponse) (bool, error) {
	if resp.Degraded || resp.Error != "" || resp.ModelVersion != p.version {
		return false, nil
	}
	p.mu.Lock()
	want, ok := p.memo[req]
	p.mu.Unlock()
	if !ok {
		var err error
		want, err = serve.Expected(p.pred, req)
		if err != nil {
			return false, fmt.Errorf("loadgen: assembling expectation: %w", err)
		}
		p.mu.Lock()
		p.memo[req] = want
		p.mu.Unlock()
	}
	if resp.IPC != want.IPC || resp.EPI != want.EPI || resp.TimeSec != want.TimeSec ||
		resp.EnergyJ != want.EnergyJ || resp.EDP != want.EDP {
		return true, fmt.Errorf("loadgen: served prediction diverges from local model: got ipc=%v epi=%v edp=%v, want ipc=%v epi=%v edp=%v",
			resp.IPC, resp.EPI, resp.EDP, want.IPC, want.EPI, want.EDP)
	}
	return true, nil
}
