// Package loadgen is napel-loadgen's engine: a replayable load
// generator for a live napel-serve instance that doubles as a
// correctness prober and emits the machine-readable BENCH_*.json
// perf-trajectory reports every subsequent performance PR is measured
// against.
//
// The generator drives mixed traffic — single POST /v1/predict, batched
// predict arrays, and POST /v1/suitability — in two modes:
//
//   - closed-loop: N workers issue requests back to back (optionally
//     separated by think time), honoring Retry-After on 429/503 so a
//     backpressuring server is paced, not hammered;
//   - open-loop: a target arrival rate with a seeded exponential
//     schedule, shedding (and counting) arrivals beyond a bounded
//     outstanding window instead of queueing unboundedly.
//
// Request bodies are synthesized from an explicit xrand seed: the same
// seed produces a byte-identical request schedule (op sequence and
// bodies), attested by digests in the report. Latency is sketched with
// log-bucketed stats.LogHist histograms (p50/p90/p99/p99.9 within 2%
// relative error), backpressure and degraded answers are tallied apart
// from successes and hard errors, the server's /metrics is scraped
// before and after to attribute allocs/GC/cache behavior, and the
// result is gated by configurable SLOs.
package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind is one traffic class in the mix.
type Kind int

const (
	KindPredict Kind = iota // single-object POST /v1/predict
	KindBatch               // JSON-array POST /v1/predict
	KindSuitability
	numKinds
)

// String returns the report/flag name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPredict:
		return "predict"
	case KindBatch:
		return "batch"
	case KindSuitability:
		return "suitability"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Path is the endpoint the kind posts to.
func (k Kind) Path() string {
	if k == KindSuitability {
		return "/v1/suitability"
	}
	return "/v1/predict"
}

// Mix weighs the traffic classes. Weights are relative, not
// percentages; a zero weight removes the class entirely.
type Mix struct {
	Predict     int
	Batch       int
	Suitability int
}

// DefaultMix is the standard serving blend: mostly single predictions,
// with batched and suitability traffic keeping the other handlers hot.
func DefaultMix() Mix { return Mix{Predict: 60, Batch: 20, Suitability: 20} }

// ParseMix reads "predict=60,batch=20,suitability=20". Omitted classes
// get weight 0; an empty string is the default mix.
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix term %q wants name=weight", part)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return m, fmt.Errorf("loadgen: mix weight %q must be a non-negative integer", w)
		}
		switch name {
		case "predict":
			m.Predict = n
		case "batch":
			m.Batch = n
		case "suitability":
			m.Suitability = n
		default:
			return m, fmt.Errorf("loadgen: unknown mix class %q (want predict, batch or suitability)", name)
		}
	}
	if m.Predict+m.Batch+m.Suitability == 0 {
		return m, fmt.Errorf("loadgen: mix has no positive weight")
	}
	return m, nil
}

// String renders the mix in ParseMix's grammar, deterministically.
func (m Mix) String() string {
	parts := make([]string, 0, 3)
	for _, c := range []struct {
		name string
		w    int
	}{{"predict", m.Predict}, {"batch", m.Batch}, {"suitability", m.Suitability}} {
		if c.w > 0 {
			parts = append(parts, c.name+"="+strconv.Itoa(c.w))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// weights returns the cumulative kind-selection thresholds in [0, 1].
func (m Mix) weights() ([numKinds]float64, error) {
	total := m.Predict + m.Batch + m.Suitability
	var cum [numKinds]float64
	if total <= 0 {
		return cum, fmt.Errorf("loadgen: mix has no positive weight")
	}
	cum[KindPredict] = float64(m.Predict) / float64(total)
	cum[KindBatch] = cum[KindPredict] + float64(m.Batch)/float64(total)
	cum[KindSuitability] = 1
	return cum, nil
}

// Op is one scheduled request: a traffic class and the pregenerated
// body variant it sends.
type Op struct {
	Kind    Kind
	Variant int
}

// sleepFor blocks for d or until done closes; it reports whether the
// full wait elapsed.
func sleepFor(done <-chan struct{}, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
