package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"napel/internal/obs"
	"napel/internal/serve"
	"napel/internal/stats"
)

// Mode selects the load shape.
type Mode string

const (
	// ModeClosed runs N workers back to back: offered load adapts to
	// the server (the classic closed system), and Retry-After answers
	// pace the workers.
	ModeClosed Mode = "closed"
	// ModeOpen fires requests on a seeded exponential arrival schedule
	// at a target rate, independent of server speed, shedding arrivals
	// beyond MaxOutstanding.
	ModeOpen Mode = "open"
)

// Config tunes one load-generation run. Target plus one of Requests or
// Duration is the minimum viable configuration.
type Config struct {
	// Target is the server's base URL, e.g. http://127.0.0.1:9090.
	// Shorthand for a one-element Targets.
	Target string
	// Targets, when set, spreads the schedule round-robin across
	// several base URLs — replicas of one fleet, or a gate plus its
	// replicas for comparison runs. The request schedule itself is
	// target-independent: op i always carries the same body, it just
	// lands on Targets[i % len(Targets)].
	Targets []string
	// ScrapeTargets overrides which /metrics endpoints bracket the run
	// (default Targets). Deltas are summed across all of them, so a
	// fleet's aggregate cache behavior lands in one ServerStats.
	ScrapeTargets []string
	// Mode defaults to ModeClosed.
	Mode Mode
	// Workers is the closed-loop concurrency (default 8).
	Workers int
	// Think pauses each closed-loop worker between ops (default 0).
	Think time.Duration
	// RPS is the open-loop target arrival rate (required for ModeOpen).
	RPS float64
	// MaxOutstanding bounds open-loop in-flight requests; arrivals
	// beyond it are shed and counted, not queued (default 256).
	MaxOutstanding int
	// Requests stops the run after this many scheduled ops (0 = run
	// until Duration).
	Requests uint64
	// Duration stops the run after this much wall time (0 = run until
	// Requests). At least one bound is required.
	Duration time.Duration
	// Synth seeds and shapes request synthesis.
	Synth SynthConfig
	// Mix weighs the traffic classes (zero value = DefaultMix).
	Mix Mix
	// Prober, when non-nil, verifies sampled responses against local
	// expectations; mismatches fail the SLO gate.
	Prober Prober
	// ProbeEvery samples every Nth successful request per worker for
	// probing (default 8; 1 probes everything).
	ProbeEvery int
	// MaxRetryAfter caps how long a closed-loop worker honors a
	// Retry-After hint (default 2s) so one 3600s answer cannot stall
	// the run.
	MaxRetryAfter time.Duration
	// SLO configures the pass/fail gates evaluated into the report.
	SLO SLOLimits
	// ScrapeMetrics scrapes Target/metrics before and after the run
	// and attributes the deltas in the report.
	ScrapeMetrics bool
	// Trace, when non-nil, records one client span per op into this
	// tracer. Every op is stamped with a seed-derived traceparent header
	// regardless (replaying a schedule replays its trace ids); the
	// tracer only controls whether loadgen keeps its own copy of the
	// client leg, e.g. for push-export to napel-obsd.
	Trace *obs.Tracer
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.Target != "" {
		c.Targets = append([]string{c.Target}, c.Targets...)
	}
	if len(c.Targets) == 0 {
		return c, fmt.Errorf("loadgen: Target is required")
	}
	c.Target = c.Targets[0]
	if len(c.ScrapeTargets) == 0 {
		c.ScrapeTargets = c.Targets
	}
	if c.Requests == 0 && c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: one of Requests or Duration must bound the run")
	}
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Mode != ModeClosed && c.Mode != ModeOpen {
		return c, fmt.Errorf("loadgen: unknown mode %q", c.Mode)
	}
	if c.Mode == ModeOpen && c.RPS <= 0 {
		return c, fmt.Errorf("loadgen: open-loop mode requires a positive RPS")
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 256
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 8
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 2 * time.Second
	}
	if (c.Mix == Mix{}) {
		c.Mix = DefaultMix()
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c, nil
}

// kindTally accumulates one traffic class's counters. Closed-loop
// workers each own one (lock-free hot path); open-loop ops share one
// under a mutex.
type kindTally struct {
	issued, ok, errors, backpressure uint64
	degraded, cached, itemErrors     uint64
	probed, mismatches               uint64
	hist                             *stats.LogHist
	mismatch                         string // first divergence, for the report
	errExample                       string // first hard error, for the report
}

type tally struct {
	kinds   [numKinds]kindTally
	dropped uint64 // open-loop arrivals shed over MaxOutstanding
}

func newTally() *tally {
	t := &tally{}
	for k := range t.kinds {
		t.kinds[k].hist = stats.NewLatencyHist()
	}
	return t
}

func (t *tally) merge(o *tally) error {
	for k := range t.kinds {
		a, b := &t.kinds[k], &o.kinds[k]
		a.issued += b.issued
		a.ok += b.ok
		a.errors += b.errors
		a.backpressure += b.backpressure
		a.degraded += b.degraded
		a.cached += b.cached
		a.itemErrors += b.itemErrors
		a.probed += b.probed
		a.mismatches += b.mismatches
		if a.mismatch == "" {
			a.mismatch = b.mismatch
		}
		if a.errExample == "" {
			a.errExample = b.errExample
		}
		if err := a.hist.Merge(b.hist); err != nil {
			return err
		}
	}
	t.dropped += o.dropped
	return nil
}

// outcome is one op's classified result.
type outcome struct {
	traceID    uint64
	status     int
	latency    time.Duration
	retryAfter time.Duration // backpressure pacing hint (0 = none)
	degraded   uint64
	cached     uint64
	itemErrors uint64
	canceled   bool
	err        error
	// probes pairs sampled responses with the requests that produced
	// them, for the correctness prober.
	probes []probePair
}

type probePair struct {
	req  *serve.PredictRequest
	resp *serve.PredictResponse
}

const maxRespBytes = 16 << 20

type runner struct {
	cfg  Config
	gen  *Generator
	next atomic.Uint64
	stop chan struct{}
	ctx  context.Context
}

// Run executes one load-generation run and always returns a report —
// partial when interrupted — unless configuration or synthesis itself
// fails. Cancelling ctx (SIGINT) stops the run early; the report is
// then marked Interrupted.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	gen, err := NewGenerator(cfg.Synth, cfg.Mix)
	if err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, gen: gen, stop: make(chan struct{}), ctx: ctx}

	var before []obs.Snapshot
	var scrapeErr error
	if cfg.ScrapeMetrics {
		before, scrapeErr = r.scrape()
	}

	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(r.stop) }) }
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, closeStop)
		defer timer.Stop()
	}
	watchdone := make(chan struct{})
	defer close(watchdone)
	go func() {
		select {
		case <-ctx.Done():
			closeStop()
		case <-r.stop:
		case <-watchdone:
		}
	}()

	start := time.Now()
	total := newTally()
	switch cfg.Mode {
	case ModeOpen:
		err = r.openLoop(total)
	default:
		err = r.closedLoop(total)
	}
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}

	var after []obs.Snapshot
	if cfg.ScrapeMetrics && scrapeErr == nil {
		after, scrapeErr = r.scrape()
	}

	rep := buildReport(cfg, gen, total, elapsed, ctx.Err() != nil)
	if cfg.ScrapeMetrics {
		if scrapeErr != nil {
			rep.ScrapeError = scrapeErr.Error()
		} else {
			rep.Server = serverStats(before, after)
		}
	}
	rep.Evaluate()
	return rep, nil
}

func (r *runner) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

func (r *runner) closedLoop(total *tally) error {
	tallies := make([]*tally, r.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		tallies[w] = newTally()
		wg.Add(1)
		go func(t *tally) {
			defer wg.Done()
			for !r.stopped() {
				i := r.next.Add(1) - 1
				if r.cfg.Requests > 0 && i >= r.cfg.Requests {
					return
				}
				op := r.gen.Op(i)
				o := r.doOp(i, op)
				r.record(t, op, o)
				if o.retryAfter > 0 {
					wait := o.retryAfter
					if wait > r.cfg.MaxRetryAfter {
						wait = r.cfg.MaxRetryAfter
					}
					if !sleepFor(r.stop, wait) {
						return
					}
				}
				if r.cfg.Think > 0 && !sleepFor(r.stop, r.cfg.Think) {
					return
				}
			}
		}(tallies[w])
	}
	wg.Wait()
	for _, t := range tallies {
		if err := total.merge(t); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) openLoop(total *tally) error {
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.cfg.MaxOutstanding)
	start := time.Now()
	var due time.Duration
	for i := uint64(0); ; i++ {
		if r.cfg.Requests > 0 && i >= r.cfg.Requests {
			break
		}
		due += r.gen.Interarrival(i, r.cfg.RPS)
		if !sleepFor(r.stop, due-time.Since(start)) {
			break
		}
		select {
		case sem <- struct{}{}:
			op := r.gen.Op(i)
			wg.Add(1)
			go func(i uint64) {
				defer wg.Done()
				defer func() { <-sem }()
				o := r.doOp(i, op)
				mu.Lock()
				r.record(total, op, o)
				mu.Unlock()
			}(i)
		default:
			// The outstanding window is full: an open-loop generator
			// sheds rather than queues, so the arrival schedule stays
			// honest and overload shows up as a counted drop.
			mu.Lock()
			total.dropped++
			mu.Unlock()
		}
	}
	wg.Wait()
	return nil
}

// doOp posts one scheduled request and classifies the result. The
// request rides the run context, so SIGINT cancels in-flight calls;
// those are marked canceled and excluded from every tally. With
// multiple targets, op i goes to Targets[i % len] — deterministic, so
// a replayed schedule hits the same replica sequence.
func (r *runner) doOp(i uint64, op Op) outcome {
	target := r.cfg.Targets[i%uint64(len(r.cfg.Targets))]
	body := r.gen.Body(op)
	req, err := http.NewRequestWithContext(r.ctx, http.MethodPost,
		target+op.Kind.Path(), bytes.NewReader(body))
	if err != nil {
		return outcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	// Every op carries a seed-derived trace identity: replaying a
	// schedule replays its trace ids, so a mismatch report from run N
	// names a trace that run N+1 regenerates byte-identically. mix64 is
	// bijective, so at most one (seed, i) pair per stream yields zero —
	// bumped to 1 to keep the header W3C-valid.
	traceID, spanID := r.traceIdentity(i)
	req.Header.Set(obs.TraceParentHeader, obs.FormatTraceParent(traceID, spanID))
	t0 := time.Now()
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		if r.ctx.Err() != nil {
			return outcome{canceled: true}
		}
		return outcome{traceID: traceID, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	lat := time.Since(t0)
	r.recordClientSpan(op, target, traceID, spanID, t0, lat, resp.StatusCode)
	if err != nil {
		if r.ctx.Err() != nil {
			return outcome{canceled: true}
		}
		return outcome{traceID: traceID, latency: lat, err: err}
	}

	o := outcome{traceID: traceID, status: resp.StatusCode, latency: lat}
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	switch {
	case resp.StatusCode == http.StatusOK:
		r.classify(op, data, &o)
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable && retryAfter > 0:
		// Backpressure: the server asked for pacing (saturated,
		// draining or breaker-open). Closed-loop honors the hint; the
		// tally keeps it apart from hard errors.
		if retryAfter <= 0 {
			retryAfter = time.Second
		}
		o.retryAfter = retryAfter
	default:
		o.err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, truncate(data, 200))
	}
	return o
}

// traceIdentity derives op i's deterministic (trace id, span id) pair
// from the synthesis seed.
func (r *runner) traceIdentity(i uint64) (traceID, spanID uint64) {
	traceID = mix64(r.cfg.Synth.Seed ^ mix64(i*2+streamTrace))
	spanID = mix64(traceID + streamTrace)
	if traceID == 0 {
		traceID = 1
	}
	if spanID == 0 {
		spanID = 1
	}
	return traceID, spanID
}

// recordClientSpan keeps loadgen's own copy of the client leg — the
// span whose identity was stamped on the wire — when a tracer is
// configured. Server-side spans parent under this one, so /debug/fleet
// shows the full loadgen→gate→replica chain.
func (r *runner) recordClientSpan(op Op, target string, traceID, spanID uint64, t0 time.Time, lat time.Duration, status int) {
	if r.cfg.Trace == nil {
		return
	}
	r.cfg.Trace.Record(obs.SpanRecord{
		TraceID:         fmt.Sprintf("%016x", traceID),
		SpanID:          fmt.Sprintf("%016x", spanID),
		Name:            "loadgen.request",
		Start:           t0,
		DurationSeconds: lat.Seconds(),
		Attrs: []obs.Attr{
			{Key: "target", Value: target},
			{Key: "kind", Value: op.Kind.String()},
			{Key: "status", Value: fmt.Sprintf("%d", status)},
		},
	})
}

// classify parses a 200 body per traffic class, splitting degraded
// answers and cache hits out and collecting probe samples.
func (o *outcome) addResp(req *serve.PredictRequest, resp *serve.PredictResponse) {
	if resp.Error != "" {
		o.itemErrors++
		return
	}
	if resp.Degraded {
		o.degraded++
	}
	if resp.Cached {
		o.cached++
	}
	o.probes = append(o.probes, probePair{req: req, resp: resp})
}

func (r *runner) classify(op Op, data []byte, o *outcome) {
	switch op.Kind {
	case KindBatch:
		var resps []serve.PredictResponse
		if err := json.Unmarshal(data, &resps); err != nil {
			o.err = fmt.Errorf("decoding batch response: %w", err)
			return
		}
		items := r.gen.BatchVariants(op.Variant)
		for i := range resps {
			var req *serve.PredictRequest
			if i < len(items) {
				req = r.gen.Request(items[i])
			}
			o.addResp(req, &resps[i])
		}
	case KindSuitability:
		var sr serve.SuitabilityResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			o.err = fmt.Errorf("decoding suitability response: %w", err)
			return
		}
		o.addResp(r.gen.Request(op.Variant), &sr.NMC)
	default:
		var pr serve.PredictResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			o.err = fmt.Errorf("decoding predict response: %w", err)
			return
		}
		o.addResp(r.gen.Request(op.Variant), &pr)
	}
}

func (r *runner) record(t *tally, op Op, o outcome) {
	if o.canceled {
		return
	}
	kt := &t.kinds[op.Kind]
	kt.issued++
	switch {
	case o.err != nil:
		kt.errors++
		if kt.errExample == "" {
			kt.errExample = o.err.Error()
		}
	case o.retryAfter > 0:
		kt.backpressure++
	default:
		kt.ok++
		kt.hist.Add(o.latency.Seconds())
		kt.degraded += o.degraded
		kt.cached += o.cached
		kt.itemErrors += o.itemErrors
		if r.cfg.Prober != nil && kt.ok%uint64(r.cfg.ProbeEvery) == 0 {
			for _, p := range o.probes {
				if p.req == nil {
					continue
				}
				checked, err := r.cfg.Prober.Check(p.req, p.resp)
				if !checked {
					continue
				}
				kt.probed++
				if err != nil {
					kt.mismatches++
					if kt.mismatch == "" {
						// The trace id keys the mismatch to its fleet
						// trace (and, seeds being deterministic, to the
						// same op in a replay).
						kt.mismatch = fmt.Sprintf("trace %016x: %v", o.traceID, err)
					}
				}
			}
		}
	}
}

func (r *runner) scrape() ([]obs.Snapshot, error) {
	snaps := make([]obs.Snapshot, 0, len(r.cfg.ScrapeTargets))
	for _, target := range r.cfg.ScrapeTargets {
		snap, err := scrapeOne(r.cfg.Client, target)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", target, err)
		}
		snaps = append(snaps, snap)
	}
	return snaps, nil
}

func scrapeOne(client *http.Client, target string) (obs.Snapshot, error) {
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scraping /metrics: HTTP %d", resp.StatusCode)
	}
	return obs.ParseText(io.LimitReader(resp.Body, maxRespBytes))
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form the napel services emit); 0 means absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func truncate(b []byte, n int) string {
	s := string(bytes.TrimSpace(b))
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}
