package trace_test

import (
	"bytes"
	"fmt"

	"napel/internal/trace"
)

// Example_budgetAndCoverage shows the mechanism that makes the Table 2
// test inputs tractable: a generator is cut off by its op budget and
// records how much of its work the traced prefix covered, from which
// consumers extrapolate totals.
func Example_budgetAndCoverage() {
	var c trace.Counter
	tr := trace.NewTracer(250, &c)
	const totalWork = 1000
	done := 0
	for i := 0; i < totalWork && !tr.Stop(); i++ {
		tr.Int(0, 1, 2, 3)
		done++
	}
	tr.SetCoverage(done, totalWork)
	fmt.Println("traced:", c.Total)
	fmt.Printf("coverage: %.2f\n", tr.Coverage())
	fmt.Printf("extrapolated total: %.0f\n", float64(c.Total)/tr.Coverage())
	// Output:
	// traced: 250
	// coverage: 0.25
	// extrapolated total: 1000
}

// Example_traceFile captures a trace to the binary file format and
// replays it.
func Example_traceFile() {
	var buf bytes.Buffer
	count, _, err := trace.WriteTrace(&buf, 0, func(tr *trace.Tracer) {
		for i := 0; i < 3; i++ {
			tr.Load(0, uint64(i)*64, 8, 1, 2)
		}
	})
	if err != nil {
		panic(err)
	}
	fr, err := trace.OpenTrace(&buf)
	if err != nil {
		panic(err)
	}
	var replayed trace.Counter
	n, err := fr.Replay(&replayed)
	if err != nil {
		panic(err)
	}
	fmt.Println("captured:", count, "replayed:", n, "loads:", replayed.ByOp[trace.OpLoad])
	// Output:
	// captured: 3 replayed: 3 loads: 3
}
