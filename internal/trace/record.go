package trace

// InstSource is a pull-style reader over a dynamic instruction trace —
// the abstraction the multi-PE simulator consumes. Stream (a live
// generator in a goroutine) and Recording.Source (an in-memory replay)
// both satisfy it, which is what lets one recorded kernel execution feed
// many simulator runs.
type InstSource interface {
	// Next returns the next instruction in program order; ok is false
	// once the trace is exhausted.
	Next() (inst Inst, ok bool)
	// Count reports the number of instructions emitted by the underlying
	// generator so far; it equals the trace length once the source is
	// exhausted.
	Count() uint64
	// Coverage reports the generator's traced fraction, meaningful once
	// the source is exhausted.
	Coverage() float64
	// Close releases any resources when abandoning the source early; it
	// is safe to call multiple times and after exhaustion.
	Close()
}

// Recording is a materialized trace: the instructions one generator
// emitted under a budget, plus the coverage it reported. Kernels are
// deterministic, so a recording made once can replace any number of
// re-executions of the same (kernel, input, shard) — the single-pass
// optimization behind napel's data-collection engine. Instructions are
// 24 bytes each, so a budget-capped recording is small (a 1M-instruction
// budget is at most ~24 MB across all shards).
//
// A Recording is immutable after Record returns and safe for concurrent
// use; each Source call returns an independent iterator.
type Recording struct {
	insts    []Inst
	coverage float64
}

// Record runs generator to completion synchronously (no goroutine, no
// channel) with a budget-capped tracer and materializes the emitted
// trace. The generator must honor tracer.Stop, exactly as with NewStream;
// for the same budget the recorded instructions, count and coverage are
// bit-identical to what a Stream would deliver.
func Record(budget uint64, generator func(*Tracer)) *Recording {
	r := &Recording{}
	if budget > 0 && budget < 1<<20 {
		r.insts = make([]Inst, 0, budget)
	}
	t := NewTracer(budget, ConsumerFunc(func(i Inst) {
		r.insts = append(r.insts, i)
	}))
	generator(t)
	r.coverage = t.Coverage()
	return r
}

// Len returns the number of recorded instructions.
func (r *Recording) Len() int { return len(r.insts) }

// Coverage returns the traced fraction the generator reported.
func (r *Recording) Coverage() float64 { return r.coverage }

// Source returns a fresh pull iterator over the recording. Unlike a
// Stream it involves no goroutine, so replaying a recording to a
// simulator costs only the consumption, not the generation.
func (r *Recording) Source() InstSource { return &replaySource{rec: r} }

// Replay pushes the recorded trace through the given consumers once, in
// program order — the push-side counterpart of Source.
func (r *Recording) Replay(consumers ...Consumer) {
	for _, inst := range r.insts {
		for _, c := range consumers {
			c.OnInst(inst)
		}
	}
}

// replaySource iterates a Recording.
type replaySource struct {
	rec *Recording
	pos int
}

func (s *replaySource) Next() (Inst, bool) {
	if s.pos >= len(s.rec.insts) {
		return Inst{}, false
	}
	inst := s.rec.insts[s.pos]
	s.pos++
	return inst, true
}

func (s *replaySource) Count() uint64     { return uint64(s.pos) }
func (s *replaySource) Coverage() float64 { return s.rec.coverage }
func (s *replaySource) Close()            { s.pos = len(s.rec.insts) }

// Insts exposes the backing instruction slice for bulk consumers that
// track their own position (and so skip the per-instruction Next call);
// mixing Insts with Next on the same source is not supported. The slice
// is shared with the Recording and must not be mutated.
func (s *replaySource) Insts() []Inst { return s.rec.insts }

// Sink is one consumer's slot in a Fanout run: the consumer, its own
// instruction cap, and (after Fanout returns) how many instructions it
// received and its effective coverage.
type Sink struct {
	C      Consumer
	// Budget is the per-sink instruction cap; 0 means the whole run.
	// The sink(s) whose budget is the run's largest also receive the
	// whole run — including the soft-budget overshoot a kernel emits
	// before its next Stop check — so their view is bit-identical to a
	// dedicated execution at that budget. Smaller budgets are hard caps.
	Budget uint64

	// Count is the number of instructions delivered to C.
	Count uint64
	// Coverage is the sink's effective traced fraction: the run's
	// coverage, scaled down by the share of the run the sink saw when
	// its budget cut it off early. A sink that received the whole run
	// gets the run's coverage exactly.
	Coverage float64
}

// Fanout executes generator once and feeds every sink from that single
// pass, honoring each sink's own budget — the "one execution, N
// consumers" runner DESIGN.md promises. The run's overall budget is the
// largest sink budget (unlimited if any sink is unlimited), so the most
// demanding consumer sees as much of the trace as it would have in a
// dedicated run; cheaper consumers stop receiving at their own caps and
// get a proportionally scaled coverage estimate instead.
//
// It returns the total emitted instruction count and the run's coverage.
func Fanout(generator func(*Tracer), sinks ...*Sink) (total uint64, coverage float64) {
	budget := uint64(0)
	unlimited := false
	for _, s := range sinks {
		if s.Budget == 0 {
			unlimited = true
		}
		if s.Budget > budget {
			budget = s.Budget
		}
	}
	if unlimited {
		budget = 0
	}
	counts := make([]uint64, len(sinks))
	t := NewTracer(budget, ConsumerFunc(func(i Inst) {
		for j, s := range sinks {
			// Budget-defining sinks ride the whole run (overshoot
			// included) so they match a dedicated execution exactly.
			if s.Budget == 0 || (budget != 0 && s.Budget >= budget) || counts[j] < s.Budget {
				s.C.OnInst(i)
				counts[j]++
			}
		}
	}))
	generator(t)
	total, coverage = t.Count(), t.Coverage()
	for j, s := range sinks {
		s.Count = counts[j]
		s.Coverage = coverage
		if total > 0 && counts[j] < total {
			s.Coverage = coverage * float64(counts[j]) / float64(total)
		}
	}
	return total, coverage
}
