package trace

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	seen := map[string]bool{}
	for op := Op(0); op < NumOps; op++ {
		s := op.String()
		if s == "" || s == "unknown" {
			t.Errorf("op %d has bad name %q", op, s)
		}
		if seen[s] {
			t.Errorf("duplicate op name %q", s)
		}
		seen[s] = true
	}
}

func TestOpClassification(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpIntALU.IsMem() {
		t.Error("IsMem misclassifies")
	}
	if !OpFPMul.IsFP() || OpIntMul.IsFP() {
		t.Error("IsFP misclassifies")
	}
}

func TestTracerHelpersSetFields(t *testing.T) {
	var got []Inst
	tr := NewTracer(0, ConsumerFunc(func(i Inst) { got = append(got, i) }))
	tr.SetPCBase(100)
	tr.Load(1, 0xdead, 8, 5, 6)
	tr.Store(2, 0xbeef, 4, 7)
	tr.Int(3, 1, 2, 3)
	tr.FPMul(4, 8, 9, 10)
	tr.Branch(5, true, 2)
	tr.Move(6, 1, 2)

	if len(got) != 6 {
		t.Fatalf("emitted %d, want 6", len(got))
	}
	ld := got[0]
	if ld.Op != OpLoad || ld.Addr != 0xdead || ld.PC != 101 || ld.Size != 8 || ld.Dst != 5 || ld.Src1 != 6 || ld.Src2 != NoReg {
		t.Errorf("load fields wrong: %+v", ld)
	}
	st := got[1]
	if st.Op != OpStore || st.Dst != NoReg || st.Src1 != 7 {
		t.Errorf("store fields wrong: %+v", st)
	}
	if got[4].Op != OpBranch || !got[4].Taken {
		t.Errorf("branch fields wrong: %+v", got[4])
	}
	if tr.Count() != 6 {
		t.Errorf("Count = %d", tr.Count())
	}
}

func TestTracerBudgetStop(t *testing.T) {
	tr := NewTracer(10)
	for i := 0; i < 10; i++ {
		if tr.Stop() {
			t.Fatalf("Stop true after %d < budget ops", i)
		}
		tr.Int(0, 1, 2, 3)
	}
	if !tr.Stop() {
		t.Fatal("Stop false after budget exhausted")
	}
}

func TestTracerUnlimitedNeverStops(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < 1000; i++ {
		tr.Int(0, 1, 2, 3)
	}
	if tr.Stop() {
		t.Fatal("unlimited tracer stopped")
	}
}

func TestCoverage(t *testing.T) {
	tr := NewTracer(1)
	if tr.Coverage() != 1 {
		t.Fatal("default coverage != 1")
	}
	tr.SetCoverage(3, 10)
	if tr.Coverage() != 0.3 {
		t.Fatalf("coverage = %v", tr.Coverage())
	}
	tr.SetCoverage(10, 10)
	if tr.Coverage() != 1 {
		t.Fatal("complete run coverage != 1")
	}
	tr.SetCoverage(0, 10) // clamps to at least one unit
	if tr.Coverage() != 0.1 {
		t.Fatalf("zero-done coverage = %v", tr.Coverage())
	}
	tr.SetCoverage(5, 0)
	if tr.Coverage() != 1 {
		t.Fatal("non-positive total should mean full coverage")
	}
}

func TestTracerFanOut(t *testing.T) {
	var a, b Counter
	tr := NewTracer(0, &a, &b)
	tr.Load(0, 1, 8, 0, 1)
	tr.Int(1, 0, 1, 2)
	if a.Total != 2 || b.Total != 2 || a.ByOp[OpLoad] != 1 {
		t.Fatalf("fan-out broken: %+v %+v", a, b)
	}
	if a.Mem() != 1 {
		t.Fatalf("Mem() = %d", a.Mem())
	}
}

func TestStreamDeliversInOrder(t *testing.T) {
	const n = 10000
	s := NewStream(0, func(tr *Tracer) {
		for i := 0; i < n; i++ {
			tr.Emit(Inst{Op: OpIntALU, Addr: uint64(i)})
		}
	})
	for i := 0; i < n; i++ {
		inst, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if inst.Addr != uint64(i) {
			t.Fatalf("out of order at %d: got %d", i, inst.Addr)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
	if s.Count() != n {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestStreamMatchesDirectTrace(t *testing.T) {
	gen := func(tr *Tracer) {
		for i := 0; i < 5000; i++ {
			tr.Load(i%7, uint64(i*64), 8, int16(i%8), int16((i+1)%8))
			tr.FP(i%5, int16(i%4), 1, 2)
		}
	}
	var direct []Inst
	gen(NewTracer(0, ConsumerFunc(func(i Inst) { direct = append(direct, i) })))

	s := NewStream(0, gen)
	for i := 0; ; i++ {
		inst, ok := s.Next()
		if !ok {
			if i != len(direct) {
				t.Fatalf("stream delivered %d, direct %d", i, len(direct))
			}
			break
		}
		if inst != direct[i] {
			t.Fatalf("mismatch at %d: %+v vs %+v", i, inst, direct[i])
		}
	}
}

func TestStreamBudget(t *testing.T) {
	s := NewStream(100, func(tr *Tracer) {
		i := 0
		for !tr.Stop() {
			tr.Int(0, 1, 2, 3)
			i++
		}
		tr.SetCoverage(i, 100000)
	})
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("budgeted stream delivered %d, want 100", n)
	}
	if c := s.Coverage(); c <= 0 || c > 0.01 {
		t.Fatalf("coverage = %v", c)
	}
}

func TestStreamCloseEarly(t *testing.T) {
	// A generator that would emit forever must be reclaimed by Close.
	for trial := 0; trial < 10; trial++ {
		s := NewStream(0, func(tr *Tracer) {
			for {
				tr.Int(0, 1, 2, 3)
			}
		})
		for i := 0; i < 100; i++ {
			s.Next()
		}
		s.Close()
		s.Close() // idempotent
		if _, ok := s.Next(); ok {
			// Buffered leftovers may still drain after Close marks done;
			// the stream must at least terminate.
			for {
				if _, ok := s.Next(); !ok {
					break
				}
			}
		}
	}
}

func TestStreamEmptyGenerator(t *testing.T) {
	s := NewStream(0, func(*Tracer) {})
	if _, ok := s.Next(); ok {
		t.Fatal("empty generator yielded an instruction")
	}
	if s.Coverage() != 1 {
		t.Fatalf("empty coverage = %v", s.Coverage())
	}
}

func TestStreamPropagatesGeneratorPanic(t *testing.T) {
	defer func() {
		recover() // the panic surfaces on the generator goroutine; here we
		// only verify Next terminates (via closed channel) without hanging.
	}()
	// A panic in the generator must not deadlock the consumer. We cannot
	// recover a panic on another goroutine, so this test would crash the
	// process if the contract were violated; instead we verify normal
	// termination semantics with a clean generator.
	s := NewStream(0, func(tr *Tracer) { tr.Int(0, 1, 2, 3) })
	if _, ok := s.Next(); !ok {
		t.Fatal("expected one instruction")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("expected end of stream")
	}
}

func TestInstValueSemantics(t *testing.T) {
	if err := quick.Check(func(addr uint64, pc uint32, dst, s1, s2 int16, op uint8, size uint8, taken bool) bool {
		i := Inst{Addr: addr, PC: pc, Dst: dst, Src1: s1, Src2: s2, Op: Op(op % uint8(NumOps)), Size: size, Taken: taken}
		j := i
		return i == j
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPCBaseNamespacing(t *testing.T) {
	var pcs []uint32
	tr := NewTracer(0, ConsumerFunc(func(i Inst) { pcs = append(pcs, i.PC) }))
	tr.Int(3, 1, 2, 3)
	tr.SetPCBase(1000)
	tr.Int(3, 1, 2, 3)
	if pcs[0] != 3 || pcs[1] != 1003 {
		t.Fatalf("PC namespacing broken: %v", pcs)
	}
}

func TestStreamManySmallBatches(t *testing.T) {
	// Totals that do not divide the internal batch size must still be
	// delivered exactly.
	for _, n := range []int{1, 2, batchSize - 1, batchSize, batchSize + 1, 3*batchSize + 17} {
		s := NewStream(0, func(tr *Tracer) {
			for i := 0; i < n; i++ {
				tr.Int(0, 1, 2, 3)
			}
		})
		got := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			got++
		}
		if got != n {
			t.Fatalf("n=%d: delivered %d", n, got)
		}
	}
}

func TestTeeAndFilter(t *testing.T) {
	var all, mem Counter
	sink := Tee(&all, Filter(func(i Inst) bool { return i.Op.IsMem() }, &mem))
	tr := NewTracer(0, sink)
	tr.Load(0, 64, 8, 1, 2)
	tr.Int(1, 1, 2, 3)
	tr.Store(2, 128, 8, 1)
	tr.FP(3, 1, 2, 3)
	if all.Total != 4 {
		t.Fatalf("tee total %d", all.Total)
	}
	if mem.Total != 2 || mem.ByOp[OpLoad] != 1 || mem.ByOp[OpStore] != 1 {
		t.Fatalf("filter passed %d: %+v", mem.Total, mem)
	}
}
