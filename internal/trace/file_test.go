package trace

import (
	"bytes"
	"strings"
	"testing"
)

func genSample(n int) func(*Tracer) {
	return func(tr *Tracer) {
		for i := 0; i < n; i++ {
			switch i % 4 {
			case 0:
				tr.Load(i%11, uint64(i)*64, 8, int16(i%8), int16((i+3)%8))
			case 1:
				tr.Store(i%11, uint64(i)*32, 4, int16(i%8))
			case 2:
				tr.FPMul(i%11, int16(i%8), 1, 2)
			default:
				tr.Branch(i%11, i%3 == 0, 4)
			}
		}
		tr.SetCoverage(n, n*2) // pretend half the work was traced
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	const n = 5000
	var buf bytes.Buffer
	count, cov, err := WriteTrace(&buf, 0, genSample(n))
	if err != nil {
		t.Fatal(err)
	}
	if count != n || cov != 0.5 {
		t.Fatalf("wrote count=%d cov=%v", count, cov)
	}

	// Collect the original stream for comparison.
	var direct []Inst
	genSample(n)(NewTracer(0, ConsumerFunc(func(i Inst) { direct = append(direct, i) })))

	fr, err := OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Count != n || fr.Coverage != 0.5 {
		t.Fatalf("header count=%d cov=%v", fr.Count, fr.Coverage)
	}
	var replayed []Inst
	got, err := fr.Replay(ConsumerFunc(func(i Inst) { replayed = append(replayed, i) }))
	if err != nil {
		t.Fatal(err)
	}
	if got != n || len(replayed) != n {
		t.Fatalf("replayed %d", got)
	}
	for i := range direct {
		if direct[i] != replayed[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, direct[i], replayed[i])
		}
	}
	// Reading past the end is a clean stop, not an error.
	if _, ok, err := fr.Next(); ok || err != nil {
		t.Fatalf("read past end: ok=%v err=%v", ok, err)
	}
}

func TestTraceFileBudget(t *testing.T) {
	var buf bytes.Buffer
	count, _, err := WriteTrace(&buf, 100, func(tr *Tracer) {
		for i := 0; i < 10000 && !tr.Stop(); i++ {
			tr.Int(0, 1, 2, 3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("budgeted capture wrote %d", count)
	}
}

func TestOpenTraceRejectsGarbage(t *testing.T) {
	if _, err := OpenTrace(strings.NewReader("this is not a trace file at all....")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := OpenTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Valid header, truncated payload.
	var buf bytes.Buffer
	if _, _, err := WriteTrace(&buf, 0, genSample(10)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	fr, err := OpenTrace(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Replay(ConsumerFunc(func(Inst) {})); err == nil {
		t.Fatal("truncated payload replayed without error")
	}
}

func TestTraceFileNegativeRegisters(t *testing.T) {
	// NoReg (-1) must survive the uint16 round trip.
	var buf bytes.Buffer
	_, _, err := WriteTrace(&buf, 0, func(tr *Tracer) {
		tr.Emit(Inst{Op: OpLoad, Addr: 1, Dst: NoReg, Src1: NoReg, Src2: NoReg, Size: 8})
	})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	inst, ok, err := fr.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if inst.Dst != NoReg || inst.Src1 != NoReg || inst.Src2 != NoReg {
		t.Fatalf("NoReg corrupted: %+v", inst)
	}
}
