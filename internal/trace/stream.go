package trace

// Stream converts a push-style trace generator into a pull-style iterator
// so that the multi-PE simulator can interleave several hardware threads
// by simulated time. The generator runs in its own goroutine and hands
// over batches of instructions through a channel; batching keeps the
// synchronization overhead negligible relative to simulation work.
type Stream struct {
	ch      chan []Inst
	cur     []Inst
	pos     int
	done    bool
	stop    chan struct{}
	stopped bool
	tracer  *Tracer
}

// batchSize is the number of instructions exchanged per channel transfer.
const batchSize = 4096

// NewStream starts generator in a goroutine with a tracer that feeds this
// stream. budget caps the emitted instructions (0 = unlimited). The
// generator receives the tracer and must return when tracer.Stop()
// becomes true. Call Close when abandoning the stream early.
func NewStream(budget uint64, generator func(*Tracer)) *Stream {
	s := &Stream{
		ch:   make(chan []Inst, 4),
		stop: make(chan struct{}),
	}
	buf := make([]Inst, 0, batchSize)
	sink := ConsumerFunc(func(i Inst) {
		buf = append(buf, i)
		if len(buf) == batchSize {
			select {
			case s.ch <- buf:
			case <-s.stop:
				panic(errStreamClosed)
			}
			buf = make([]Inst, 0, batchSize)
		}
	})
	t := NewTracer(budget, sink)
	s.tracer = t
	go func() {
		defer func() {
			if r := recover(); r != nil && r != errStreamClosed {
				panic(r)
			}
			if len(buf) > 0 {
				select {
				case s.ch <- buf:
				case <-s.stop:
				}
			}
			close(s.ch)
		}()
		generator(t)
	}()
	return s
}

// errStreamClosed aborts the generator goroutine when the stream's
// consumer walks away early; it never escapes NewStream's deferred
// recover.
var errStreamClosed = &streamClosed{}

type streamClosed struct{}

func (*streamClosed) Error() string { return "trace: stream closed" }

// Next returns the next instruction in program order. ok is false once
// the generator has finished and all buffered instructions are drained.
func (s *Stream) Next() (inst Inst, ok bool) {
	if s.pos < len(s.cur) {
		inst = s.cur[s.pos]
		s.pos++
		return inst, true
	}
	if s.done {
		return Inst{}, false
	}
	batch, open := <-s.ch
	if !open {
		s.done = true
		return Inst{}, false
	}
	s.cur = batch
	s.pos = 1
	return batch[0], true
}

// Coverage reports the generator's traced fraction; meaningful once the
// stream is exhausted.
func (s *Stream) Coverage() float64 { return s.tracer.Coverage() }

// Count reports how many instructions the generator emitted so far.
func (s *Stream) Count() uint64 { return s.tracer.Count() }

// Close releases the generator goroutine if the stream is abandoned
// before being fully drained. It is safe to call multiple times and
// after exhaustion.
func (s *Stream) Close() {
	if s.stopped {
		return
	}
	s.stopped = true
	close(s.stop)
	// Drain so a generator blocked on send observes the stop channel.
	for range s.ch {
	}
	s.done = true
}
