// Package trace defines the dynamic instruction trace model that connects
// the workload kernels to every consumer in the pipeline: the PISA-style
// microarchitecture-independent profiler (internal/pisa), the NMC system
// simulator (internal/nmcsim) and the host model (internal/hostsim).
//
// The paper collects dynamic execution traces of instrumented kernels
// with a Pin tool and feeds them to Ramulator. Here the kernels are
// re-implemented in Go and *stream* their trace through a Tracer; traces
// are never materialized, so arbitrarily long executions run in O(1)
// memory. A trace can be replayed as many times as needed (kernels are
// deterministic), or fanned out to several consumers in a single pass.
package trace

// Op classifies a dynamic instruction. The set mirrors the instruction
// mix categories PISA reports (integer/floating point arithmetic,
// multiplies and divides, memory reads and writes, branches and other
// control).
type Op uint8

const (
	// OpIntALU is simple integer arithmetic/logic (add, sub, shift, cmp).
	OpIntALU Op = iota
	// OpIntMul is integer multiplication.
	OpIntMul
	// OpIntDiv is integer division/modulo.
	OpIntDiv
	// OpFPALU is floating-point add/sub/compare.
	OpFPALU
	// OpFPMul is floating-point multiplication.
	OpFPMul
	// OpFPDiv is floating-point division or square root.
	OpFPDiv
	// OpLoad reads Size bytes from Addr.
	OpLoad
	// OpStore writes Size bytes to Addr.
	OpStore
	// OpBranch is a conditional branch; Taken records its direction.
	OpBranch
	// OpCall is a call/return or unconditional control transfer.
	OpCall
	// OpMove is a register move or other cheap bookkeeping instruction.
	OpMove
	// NumOps is the number of distinct Op values.
	NumOps
)

// String returns the mnemonic for the op class.
func (o Op) String() string {
	switch o {
	case OpIntALU:
		return "int_alu"
	case OpIntMul:
		return "int_mul"
	case OpIntDiv:
		return "int_div"
	case OpFPALU:
		return "fp_alu"
	case OpFPMul:
		return "fp_mul"
	case OpFPDiv:
		return "fp_div"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpCall:
		return "call"
	case OpMove:
		return "move"
	default:
		return "unknown"
	}
}

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsFP reports whether the op uses the floating-point pipeline.
func (o Op) IsFP() bool { return o == OpFPALU || o == OpFPMul || o == OpFPDiv }

// NoReg marks an unused register operand slot.
const NoReg int16 = -1

// Inst is one dynamic instruction. PC identifies the static instruction
// (synthesized from the kernel's site numbering), which drives the
// instruction-reuse-distance and per-site stride statistics. Dst/Src1/
// Src2 are virtual register numbers used for dataflow (ILP) analysis;
// NoReg marks unused slots.
type Inst struct {
	Addr  uint64 // byte address for loads/stores, 0 otherwise
	PC    uint32 // static instruction id
	Dst   int16  // destination register or NoReg
	Src1  int16  // first source register or NoReg
	Src2  int16  // second source register or NoReg
	Op    Op
	Size  uint8 // access size in bytes for loads/stores
	Taken bool  // branch direction for OpBranch
}

// Consumer receives a trace instruction stream. OnInst is called once per
// dynamic instruction in program order.
type Consumer interface {
	OnInst(Inst)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(Inst)

// OnInst implements Consumer.
func (f ConsumerFunc) OnInst(i Inst) { f(i) }

// Tracer is the emission side handed to kernels. It forwards every
// instruction to its consumers, enforces an optional op budget and tracks
// coverage so that consumers can extrapolate totals when a kernel was cut
// short (see Budget and Coverage).
//
// Kernels are expected to check Stop() in their outer loops and, when it
// returns true, record how much of the total work they completed via
// SetCoverage before returning.
type Tracer struct {
	consumers []Consumer
	count     uint64
	budget    uint64  // 0 = unlimited
	coverage  float64 // fraction of the full execution that was traced
	pcBase    uint32
}

// NewTracer returns a tracer feeding the given consumers. budget caps the
// number of emitted instructions (0 means unlimited).
func NewTracer(budget uint64, consumers ...Consumer) *Tracer {
	return &Tracer{consumers: consumers, budget: budget, coverage: 1}
}

// SetPCBase offsets all site ids emitted through the helper methods,
// letting several kernels or kernel phases share one PC namespace.
func (t *Tracer) SetPCBase(base uint32) { t.pcBase = base }

// Count returns the number of instructions emitted so far.
func (t *Tracer) Count() uint64 { return t.count }

// Stop reports whether the op budget is exhausted; kernels should bail
// out of their outer loops when it returns true.
func (t *Tracer) Stop() bool { return t.budget != 0 && t.count >= t.budget }

// SetCoverage records the fraction (0, 1] of the full execution that was
// actually traced, used by consumers to extrapolate instruction totals.
func (t *Tracer) SetCoverage(done, total int) {
	if total <= 0 || done >= total {
		t.coverage = 1
		return
	}
	if done <= 0 {
		done = 1
	}
	t.coverage = float64(done) / float64(total)
}

// Coverage returns the recorded traced fraction (1 if the kernel ran to
// completion).
func (t *Tracer) Coverage() float64 { return t.coverage }

// Emit forwards one instruction to all consumers.
func (t *Tracer) Emit(i Inst) {
	t.count++
	for _, c := range t.consumers {
		c.OnInst(i)
	}
}

// The helper methods below keep kernel code terse. site is a small
// integer unique to the static instruction within the kernel.

// Load emits a load of size bytes at addr into register dst.
func (t *Tracer) Load(site int, addr uint64, size uint8, dst, src int16) {
	t.Emit(Inst{Op: OpLoad, PC: t.pcBase + uint32(site), Addr: addr, Size: size, Dst: dst, Src1: src, Src2: NoReg})
}

// Store emits a store of size bytes at addr from register src.
func (t *Tracer) Store(site int, addr uint64, size uint8, src int16) {
	t.Emit(Inst{Op: OpStore, PC: t.pcBase + uint32(site), Addr: addr, Size: size, Dst: NoReg, Src1: src, Src2: NoReg})
}

// Int emits a simple integer ALU op dst <- src1 op src2.
func (t *Tracer) Int(site int, dst, src1, src2 int16) {
	t.Emit(Inst{Op: OpIntALU, PC: t.pcBase + uint32(site), Dst: dst, Src1: src1, Src2: src2})
}

// IntMul emits an integer multiply.
func (t *Tracer) IntMul(site int, dst, src1, src2 int16) {
	t.Emit(Inst{Op: OpIntMul, PC: t.pcBase + uint32(site), Dst: dst, Src1: src1, Src2: src2})
}

// FP emits a floating-point add/sub/compare.
func (t *Tracer) FP(site int, dst, src1, src2 int16) {
	t.Emit(Inst{Op: OpFPALU, PC: t.pcBase + uint32(site), Dst: dst, Src1: src1, Src2: src2})
}

// FPMul emits a floating-point multiply.
func (t *Tracer) FPMul(site int, dst, src1, src2 int16) {
	t.Emit(Inst{Op: OpFPMul, PC: t.pcBase + uint32(site), Dst: dst, Src1: src1, Src2: src2})
}

// FPDiv emits a floating-point divide/sqrt.
func (t *Tracer) FPDiv(site int, dst, src1, src2 int16) {
	t.Emit(Inst{Op: OpFPDiv, PC: t.pcBase + uint32(site), Dst: dst, Src1: src1, Src2: src2})
}

// Branch emits a conditional branch reading register src.
func (t *Tracer) Branch(site int, taken bool, src int16) {
	t.Emit(Inst{Op: OpBranch, PC: t.pcBase + uint32(site), Taken: taken, Dst: NoReg, Src1: src, Src2: NoReg})
}

// Move emits a register move dst <- src.
func (t *Tracer) Move(site int, dst, src int16) {
	t.Emit(Inst{Op: OpMove, PC: t.pcBase + uint32(site), Dst: dst, Src1: src, Src2: NoReg})
}

// Counter is a trivial consumer that counts instructions by op class;
// several tests and the simulators embed it.
type Counter struct {
	ByOp  [NumOps]uint64
	Total uint64
}

// OnInst implements Consumer.
func (c *Counter) OnInst(i Inst) {
	c.ByOp[i.Op]++
	c.Total++
}

// Mem returns the number of memory instructions counted.
func (c *Counter) Mem() uint64 { return c.ByOp[OpLoad] + c.ByOp[OpStore] }

// Tee returns a consumer that forwards every instruction to all of the
// given consumers — the fan-out combinator for running, say, a profiler
// and a counter over one kernel execution.
func Tee(consumers ...Consumer) Consumer {
	cs := append([]Consumer(nil), consumers...)
	return ConsumerFunc(func(i Inst) {
		for _, c := range cs {
			c.OnInst(i)
		}
	})
}

// Filter returns a consumer that forwards only the instructions for
// which keep returns true (e.g. memory accesses only).
func Filter(keep func(Inst) bool, next Consumer) Consumer {
	return ConsumerFunc(func(i Inst) {
		if keep(i) {
			next.OnInst(i)
		}
	})
}
