package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Trace files give the pipeline the same artifact boundary the paper's
// toolchain has between Pin and Ramulator: a kernel's dynamic trace can
// be captured once (napel trace), then replayed through the profiler or
// a simulator later, or inspected offline. The format is a 32-byte
// little-endian header followed by one fixed 24-byte record per
// instruction; files are self-describing (magic + version) and carry
// the generator's coverage so replays extrapolate identically.

// fileMagic identifies NAPEL trace files ("NAPLTRC1").
const fileMagic = 0x4e41504c54524331

// fileVersion is bumped on incompatible record-format changes.
const fileVersion = 1

// fileHeader is the fixed preamble of a trace file.
type fileHeader struct {
	Magic    uint64
	Version  uint32
	_        uint32 // reserved
	Count    uint64
	Coverage float64
}

// recordSize is the on-disk size of one instruction.
const recordSize = 24

// encodeRecord packs one instruction into rec.
func encodeRecord(rec *[recordSize]byte, i Inst) {
	binary.LittleEndian.PutUint64(rec[0:], i.Addr)
	binary.LittleEndian.PutUint32(rec[8:], i.PC)
	binary.LittleEndian.PutUint16(rec[12:], uint16(i.Dst))
	binary.LittleEndian.PutUint16(rec[14:], uint16(i.Src1))
	binary.LittleEndian.PutUint16(rec[16:], uint16(i.Src2))
	rec[18] = uint8(i.Op)
	rec[19] = i.Size
	rec[20] = 0
	if i.Taken {
		rec[20] = 1
	}
	rec[21], rec[22], rec[23] = 0, 0, 0
}

// WriteTrace runs generator under the given op budget and writes the
// complete trace file (header + records) to w. Budget-capped trace
// prefixes are tens of megabytes at most, so the payload is buffered in
// memory, which keeps the format seek-free.
func WriteTrace(w io.Writer, budget uint64, generator func(*Tracer)) (count uint64, coverage float64, err error) {
	var payload []byte
	sink := ConsumerFunc(func(i Inst) {
		var rec [recordSize]byte
		encodeRecord(&rec, i)
		payload = append(payload, rec[:]...)
	})
	tr := NewTracer(budget, sink)
	generator(tr)

	hdr := fileHeader{
		Magic:    fileMagic,
		Version:  fileVersion,
		Count:    tr.Count(),
		Coverage: tr.Coverage(),
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return 0, 0, err
	}
	if _, err := bw.Write(payload); err != nil {
		return 0, 0, err
	}
	return tr.Count(), tr.Coverage(), bw.Flush()
}

// FileReader replays a trace file.
type FileReader struct {
	r      *bufio.Reader
	remain uint64
	// Coverage is the traced fraction recorded by the generator.
	Coverage float64
	// Count is the total number of records in the file.
	Count uint64
}

// OpenTrace validates the header and returns a reader positioned at the
// first record.
func OpenTrace(r io.Reader) (*FileReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr fileHeader
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr.Magic != fileMagic {
		return nil, fmt.Errorf("trace: not a NAPEL trace file (magic %#x)", hdr.Magic)
	}
	if hdr.Version != fileVersion {
		return nil, fmt.Errorf("trace: file version %d, want %d", hdr.Version, fileVersion)
	}
	if hdr.Coverage <= 0 || hdr.Coverage > 1 || math.IsNaN(hdr.Coverage) {
		return nil, fmt.Errorf("trace: corrupt coverage %v", hdr.Coverage)
	}
	return &FileReader{r: br, remain: hdr.Count, Coverage: hdr.Coverage, Count: hdr.Count}, nil
}

// Next returns the next instruction; ok is false at end of trace.
func (fr *FileReader) Next() (inst Inst, ok bool, err error) {
	if fr.remain == 0 {
		return Inst{}, false, nil
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(fr.r, rec[:]); err != nil {
		return Inst{}, false, fmt.Errorf("trace: truncated file: %w", err)
	}
	fr.remain--
	op := Op(rec[18])
	if op >= NumOps {
		return Inst{}, false, fmt.Errorf("trace: corrupt op %d", rec[18])
	}
	return Inst{
		Addr:  binary.LittleEndian.Uint64(rec[0:]),
		PC:    binary.LittleEndian.Uint32(rec[8:]),
		Dst:   int16(binary.LittleEndian.Uint16(rec[12:])),
		Src1:  int16(binary.LittleEndian.Uint16(rec[14:])),
		Src2:  int16(binary.LittleEndian.Uint16(rec[16:])),
		Op:    op,
		Size:  rec[19],
		Taken: rec[20] == 1,
	}, true, nil
}

// Replay streams the whole file into consumer, returning the number of
// instructions delivered.
func (fr *FileReader) Replay(consumer Consumer) (uint64, error) {
	var n uint64
	for {
		inst, ok, err := fr.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		consumer.OnInst(inst)
		n++
	}
}
