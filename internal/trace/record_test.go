package trace

import "testing"

// genN emits n deterministic instructions through the tracer, honoring
// the budget the way kernels do: it checks Stop at "outer loop"
// boundaries of 10 instructions and records its coverage.
func genN(n int) func(*Tracer) {
	return func(t *Tracer) {
		for i := 0; i < n; i += 10 {
			if t.Stop() {
				t.SetCoverage(i, n)
				return
			}
			for j := 0; j < 10; j++ {
				t.Load(j, uint64(i+j)*8, 8, 1, 2)
			}
		}
	}
}

func TestRecordMatchesStream(t *testing.T) {
	for _, budget := range []uint64{0, 35, 1000} {
		rec := Record(budget, genN(100))
		s := NewStream(budget, genN(100))

		src := rec.Source()
		n := 0
		for {
			want, okW := s.Next()
			got, okG := src.Next()
			if okW != okG {
				t.Fatalf("budget %d: length mismatch at %d (stream %v, recording %v)", budget, n, okW, okG)
			}
			if !okW {
				break
			}
			if got != want {
				t.Fatalf("budget %d: instruction %d = %+v, want %+v", budget, n, got, want)
			}
			n++
		}
		if src.Count() != s.Count() {
			t.Errorf("budget %d: count %d, want %d", budget, src.Count(), s.Count())
		}
		if src.Coverage() != s.Coverage() {
			t.Errorf("budget %d: coverage %v, want %v", budget, src.Coverage(), s.Coverage())
		}
	}
}

func TestRecordingReplayAndReuse(t *testing.T) {
	rec := Record(0, genN(50))
	if rec.Len() != 50 {
		t.Fatalf("recorded %d instructions, want 50", rec.Len())
	}
	var a, b Counter
	rec.Replay(&a, &b)
	if a.Total != 50 || b.Total != 50 {
		t.Fatalf("replay delivered %d/%d instructions, want 50/50", a.Total, b.Total)
	}
	// Independent sources over the same recording.
	s1, s2 := rec.Source(), rec.Source()
	s1.Next()
	s1.Next()
	if s1.Count() != 2 || s2.Count() != 0 {
		t.Fatal("sources are not independent")
	}
	s1.Close()
	if _, ok := s1.Next(); ok {
		t.Fatal("closed source still yields instructions")
	}
	if _, ok := s2.Next(); !ok {
		t.Fatal("second source affected by first Close")
	}
}

func TestFanoutBudgetsAndCoverage(t *testing.T) {
	var small, large Counter
	sSmall := &Sink{C: &small, Budget: 20}
	sLarge := &Sink{C: &large, Budget: 60}
	total, cov := Fanout(genN(100), sSmall, sLarge)

	if total < 60 || total >= 100 {
		t.Fatalf("total emitted %d, want in [60, 100)", total)
	}
	if large.Total != total || sLarge.Count != total {
		t.Fatalf("large sink saw %d of %d", large.Total, total)
	}
	if small.Total != 20 || sSmall.Count != 20 {
		t.Fatalf("small sink saw %d, want its 20-instruction budget", small.Total)
	}
	// The run was cut short at 60 of 100 → coverage < 1; the capped sink
	// gets a proportional share of it.
	if cov >= 1 || cov <= 0 {
		t.Fatalf("run coverage %v, want in (0, 1)", cov)
	}
	if sLarge.Coverage != cov {
		t.Errorf("large sink coverage %v, want run coverage %v", sLarge.Coverage, cov)
	}
	want := cov * float64(20) / float64(total)
	if sSmall.Coverage != want {
		t.Errorf("small sink coverage %v, want %v", sSmall.Coverage, want)
	}
}

// TestFanoutMaxSinkSeesOvershoot: kernels honor the budget softly — they
// emit until the next Stop check — and a dedicated run's consumer sees
// that overshoot. The budget-defining sink of a fan-out must too.
func TestFanoutMaxSinkSeesOvershoot(t *testing.T) {
	var ded Counter
	tr := NewTracer(64, &ded)
	genN(100)(tr) // chunks of 10 → emits 70 for budget 64

	var max, small Counter
	sMax := &Sink{C: &max, Budget: 64}
	sSmall := &Sink{C: &small, Budget: 15}
	total, _ := Fanout(genN(100), sMax, sSmall)
	if total != tr.Count() {
		t.Fatalf("fan-out emitted %d, dedicated run emitted %d", total, tr.Count())
	}
	if max.Total != ded.Total {
		t.Errorf("max-budget sink saw %d, dedicated consumer saw %d", max.Total, ded.Total)
	}
	if small.Total != 15 {
		t.Errorf("small sink saw %d, want its hard cap of 15", small.Total)
	}
}

func TestFanoutUnlimitedSink(t *testing.T) {
	var all, capped Counter
	sAll := &Sink{C: &all}
	sCap := &Sink{C: &capped, Budget: 10}
	total, cov := Fanout(genN(50), sAll, sCap)
	if total != 50 || all.Total != 50 {
		t.Fatalf("unlimited sink saw %d of %d, want the full 50", all.Total, total)
	}
	if cov != 1 || sAll.Coverage != 1 {
		t.Fatalf("full run coverage %v/%v, want 1", cov, sAll.Coverage)
	}
	if capped.Total != 10 {
		t.Fatalf("capped sink saw %d, want 10", capped.Total)
	}
	if want := float64(10) / 50; sCap.Coverage != want {
		t.Errorf("capped sink coverage %v, want %v", sCap.Coverage, want)
	}
}
