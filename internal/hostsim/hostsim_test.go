package hostsim

import (
	"math"
	"testing"

	"napel/internal/trace"
)

// seqGen walks memory sequentially with a private region per shard.
func seqGen(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		base := uint64(1<<28) + uint64(shard)<<24
		for i := 0; i < n; i++ {
			t.Load(0, base+uint64(i)*8, 8, 1, 2)
			t.FP(1, 2, 1, 3)
		}
	}
}

// randGen issues loads over a large region (irregular pattern).
func randGen(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		x := uint64(shard)*0x9e3779b9 + 7
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			t.Load(0, (x>>16)%(1<<30), 8, 1, 2)
			t.Int(1, 2, 1, 3)
		}
	}
}

// sharedWriterGen has every shard write the same small region (true
// sharing) while reading a private stream.
func sharedWriterGen(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		priv := uint64(1<<28) + uint64(shard)<<24
		for i := 0; i < n; i++ {
			t.Load(0, priv+uint64(i)*8, 8, 1, 2)
			t.Store(1, uint64(i%64)*8, 8, 1) // shared 512-byte region
		}
	}
}

// privateWriterGen writes only shard-private regions.
func privateWriterGen(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		priv := uint64(1<<28) + uint64(shard)<<24
		for i := 0; i < n; i++ {
			t.Load(0, priv+uint64(i)*8, 8, 1, 2)
			t.Store(1, priv+uint64(i)*8+8<<20, 8, 1)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.MLP = 0.5 },
		func(c *Config) { c.MLPIrregular = 0 },
		func(c *Config) { c.MemBWGBs = 0 },
		func(c *Config) { c.PrefetchEff = 2 },
		func(c *Config) { c.L1.LineSize = 3 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := Run(DefaultConfig(), seqGen(10), 0, 0); err == nil {
		t.Error("threads=0 accepted")
	}
}

func TestCacheHierarchyFiltersTraffic(t *testing.T) {
	res, err := Run(DefaultConfig(), seqGen(100000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential 8B loads: 7/8 hit L1.
	if res.L1.HitRate() < 0.8 {
		t.Errorf("L1 hit rate %v", res.L1.HitRate())
	}
	// L2 sees only L1 misses.
	if res.L2.Accesses() >= res.L1.Accesses() {
		t.Error("L2 saw more traffic than L1")
	}
	if res.DRAMBytes <= 0 {
		t.Error("no DRAM traffic for a streaming kernel")
	}
}

func TestStreamingVsIrregularClassification(t *testing.T) {
	stream, err := Run(DefaultConfig(), seqGen(100000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stream.IrregMisses > stream.StreamMisses/10 {
		t.Errorf("streaming kernel classified irregular: %d stream, %d irreg",
			stream.StreamMisses, stream.IrregMisses)
	}
	random, err := Run(DefaultConfig(), randGen(100000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if random.StreamMisses > random.IrregMisses/10 {
		t.Errorf("random kernel classified streaming: %d stream, %d irreg",
			random.StreamMisses, random.IrregMisses)
	}
}

func TestIrregularSlowerThanStreaming(t *testing.T) {
	stream, _ := Run(DefaultConfig(), seqGen(100000), 1, 0)
	random, _ := Run(DefaultConfig(), randGen(100000), 1, 0)
	// Same instruction count; the prefetcher hides the stream's misses.
	if random.TimeSec <= 2*stream.TimeSec {
		t.Fatalf("irregular %v not clearly slower than streaming %v", random.TimeSec, stream.TimeSec)
	}
}

func TestThreadSpeedup(t *testing.T) {
	if got := threadSpeedup(1, 16, 4, 0.35); got != 1 {
		t.Errorf("1 thread speedup %v", got)
	}
	if got := threadSpeedup(16, 16, 4, 0.35); got != 16 {
		t.Errorf("16 threads speedup %v", got)
	}
	if got := threadSpeedup(32, 16, 4, 0.35); math.Abs(got-(16+16*0.35)) > 1e-9 {
		t.Errorf("32 threads speedup %v", got)
	}
	// Beyond total SMT capacity the speedup saturates.
	if threadSpeedup(1000, 16, 4, 0.35) != threadSpeedup(64, 16, 4, 0.35) {
		t.Error("speedup did not saturate")
	}
}

func TestMoreThreadsFaster(t *testing.T) {
	r1, _ := Run(DefaultConfig(), seqGen(100000), 1, 0)
	r16, _ := Run(DefaultConfig(), seqGen(100000), 16, 0)
	if r16.TimeSec >= r1.TimeSec {
		t.Fatalf("16 threads (%v) not faster than 1 (%v)", r16.TimeSec, r1.TimeSec)
	}
}

func TestCoherenceDetection(t *testing.T) {
	shared, err := Run(DefaultConfig(), sharedWriterGen(50000), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	private, err := Run(DefaultConfig(), privateWriterGen(50000), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shared.SharedWriteFrac < 0.3 {
		t.Errorf("shared-writer kernel probed at %v shared", shared.SharedWriteFrac)
	}
	if private.SharedWriteFrac > 0.05 {
		t.Errorf("private-writer kernel probed at %v shared", private.SharedWriteFrac)
	}
	if shared.Speedup >= private.Speedup {
		t.Errorf("contention did not reduce speedup: %v vs %v", shared.Speedup, private.Speedup)
	}
}

func TestCoherenceIgnoredSingleThread(t *testing.T) {
	res, err := Run(DefaultConfig(), sharedWriterGen(20000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedWriteFrac != 0 {
		t.Errorf("single-thread run probed sharing: %v", res.SharedWriteFrac)
	}
}

func TestBudgetAndCoverage(t *testing.T) {
	gen := func(shard, nshards int, tr *trace.Tracer) {
		const total = 50000
		done := 0
		for i := 0; i < total; i++ {
			if tr.Stop() {
				break
			}
			tr.Load(0, uint64(i)*64, 8, 1, 2)
			done++
		}
		tr.SetCoverage(done, total)
	}
	res, err := Run(DefaultConfig(), gen, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage >= 1 {
		t.Fatal("cut run reports full coverage")
	}
	if math.Abs(res.TotalInstrs-50000) > 2000 {
		t.Fatalf("extrapolated %v, want ~50000", res.TotalInstrs)
	}
}

func TestEnergyPositiveAndScales(t *testing.T) {
	small, _ := Run(DefaultConfig(), seqGen(10000), 4, 0)
	big, _ := Run(DefaultConfig(), seqGen(100000), 4, 0)
	if small.EnergyJ <= 0 || big.EnergyJ <= small.EnergyJ {
		t.Fatalf("energy not scaling: %v -> %v", small.EnergyJ, big.EnergyJ)
	}
	if small.EDP <= 0 {
		t.Fatal("non-positive EDP")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(DefaultConfig(), randGen(30000), 8, 0)
	b, _ := Run(DefaultConfig(), randGen(30000), 8, 0)
	if a.TimeSec != b.TimeSec || a.EnergyJ != b.EnergyJ {
		t.Fatal("host model not deterministic")
	}
}

func TestBandwidthCeiling(t *testing.T) {
	// A kernel that misses every access at high thread count should be
	// bandwidth-limited: time >= bytes/BW.
	res, err := Run(DefaultConfig(), randGen(200000), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	bwTime := res.DRAMBytes / (DefaultConfig().MemBWGBs * 1e9)
	if res.TimeSec < bwTime-1e-12 {
		t.Fatalf("time %v below bandwidth floor %v", res.TimeSec, bwTime)
	}
}

func TestWriteBackPropagation(t *testing.T) {
	// Dirty L1 evictions must travel outward: a write-heavy streaming
	// kernel generates write-backs at every level and off-chip write
	// traffic.
	gen := func(shard, nshards int, tr *trace.Tracer) {
		// One store per line over ~14 MiB: overflows even the 10 MiB L3
		// so dirty lines must spill off-chip.
		for i := 0; i < 220000; i++ {
			tr.Store(0, uint64(1<<28)+uint64(i)*64, 8, 1)
		}
	}
	res, err := Run(DefaultConfig(), gen, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.L1.WriteBacks == 0 || res.L2.WriteBacks == 0 || res.L3.WriteBacks == 0 {
		t.Fatalf("write-backs did not propagate: L1=%d L2=%d L3=%d",
			res.L1.WriteBacks, res.L2.WriteBacks, res.L3.WriteBacks)
	}
	if res.DRAMBytes == 0 {
		t.Fatal("no off-chip write traffic")
	}
}

func TestUnlimitedBudgetFullCoverage(t *testing.T) {
	res, err := Run(DefaultConfig(), seqGen(5000), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 {
		t.Fatalf("unlimited run coverage %v", res.Coverage)
	}
	if res.TotalInstrs != float64(res.SimInstrs) {
		t.Fatal("extrapolation changed an unbudgeted run")
	}
}

func TestTLBWalks(t *testing.T) {
	// A gather spanning far more pages than the TLB covers must walk;
	// a small-footprint stream must not.
	big, err := Run(DefaultConfig(), randGen(100000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if big.TLBWalks == 0 {
		t.Fatal("huge random gather produced no page walks")
	}
	small, err := Run(DefaultConfig(), func(shard, nshards int, tr *trace.Tracer) {
		for i := 0; i < 100000; i++ {
			tr.Load(0, uint64(1<<28)+uint64(i%512)*8, 8, 1, 2) // one page
		}
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.TLBWalks > 2 {
		t.Fatalf("single-page stream walked %d times", small.TLBWalks)
	}
	// Walks must cost time.
	cfg := DefaultConfig()
	cfg.TLBEntries = 0
	cfg.TLB2Entries = 0
	noTLB, err := Run(cfg, randGen(100000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if big.TimeSec <= noTLB.TimeSec {
		t.Fatalf("page walks free: with TLB model %v, without %v", big.TimeSec, noTLB.TimeSec)
	}
}

func TestHostEnergyBreakdownSums(t *testing.T) {
	res, err := Run(DefaultConfig(), randGen(50000), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Energy.CoreJ + res.Energy.CacheJ + res.Energy.DRAMJ + res.Energy.StaticJ
	if math.Abs(sum-res.EnergyJ)/res.EnergyJ > 1e-12 {
		t.Fatalf("breakdown %v != total %v", sum, res.EnergyJ)
	}
	if res.Energy.DRAMJ <= 0 || res.Energy.CoreJ <= 0 || res.Energy.StaticJ <= 0 {
		t.Fatalf("missing components: %+v", res.Energy)
	}
}
