// Package hostsim models the host CPU of the paper's evaluation — an IBM
// POWER9 AC922 (Table 3: 16 cores, 4-way SMT, 2.3 GHz, 32 KiB L1,
// 256 KiB L2, 10 MiB L3, DDR4-2666) — to produce the host execution time
// and energy of Figure 6 and the denominator of the EDP-reduction
// analysis of Figure 7.
//
// The paper measures a real machine with on-board power sensors; this
// package substitutes a trace-driven model: the kernel's dynamic
// instruction trace streams through an exact L1/L2/L3 cache hierarchy,
// and a first-order out-of-order core model converts the per-level
// access counts into cycles (issue-width-limited compute plus
// MLP-discounted miss stalls). Thread-level parallelism is applied as a
// speedup bounded by core count, SMT efficiency and DRAM bandwidth.
// What Figures 6 and 7 need from this model is the *contrast* between
// cache-resident and memory-bound workloads, which the exact hierarchy
// provides.
package hostsim

import (
	"fmt"

	"napel/internal/cache"
	"napel/internal/energy"
	"napel/internal/trace"
)

// Config describes the host system.
type Config struct {
	Cores      int     // physical cores
	SMT        int     // hardware threads per core
	FreqGHz    float64 // core frequency
	IssueWidth float64 // sustained issue width of the OoO core
	L1         cache.Config
	L2         cache.Config
	L3         cache.Config
	L2Cycles   float64 // L1-miss/L2-hit penalty, cycles
	L3Cycles   float64 // L2-miss/L3-hit penalty, cycles
	MemNs      float64 // L3-miss latency, ns
	MLP        float64 // overlapped misses for cache-level and streaming penalties
	// MLPIrregular is the (much lower) overlap achieved on irregular,
	// dependent miss chains — pointer chasing exposes nearly the full
	// memory latency on real machines.
	MLPIrregular float64
	MemBWGBs     float64 // aggregate DRAM bandwidth ceiling, GB/s
	SMTEff       float64 // marginal throughput of each extra SMT thread
	// PrefetchEff is the fraction of the miss penalty hidden for
	// streaming (unit/short-stride) accesses by the hardware prefetchers.
	// Server-class cores hide most of a regular stream's latency, which
	// is precisely why the paper finds the cache-friendly PolyBench
	// kernels unsuitable for NMC while irregular kernels benefit.
	PrefetchEff float64
	// PrefetchStride is the largest per-site stride (bytes) treated as
	// prefetchable.
	PrefetchStride uint64
	// TLB models the two-level data TLB: entries at each level (4 KiB
	// pages) and the page-walk latency charged to L2-TLB misses.
	TLBEntries  int
	TLB2Entries int
	PageWalkNs  float64
	// CoherenceNs is the cost of one coherence transaction (remote snoop
	// + invalidation) charged to stores that hit thread-shared lines.
	// Shared-write kernels (graph frontiers, shared accumulators) scale
	// poorly on real multiprocessors; this term reproduces that.
	CoherenceNs float64
	// ContentionPerThread degrades the thread speedup in proportion to
	// the shared-write fraction (serialization at the directory).
	ContentionPerThread float64
	Energy              energy.HostParams
}

// DefaultConfig returns the Table 3 POWER9 host.
func DefaultConfig() Config {
	return Config{
		Cores:               16,
		SMT:                 4,
		FreqGHz:             2.3,
		IssueWidth:          4,
		L1:                  cache.Config{LineSize: 64, Lines: 512, Assoc: 8},     // 32 KiB
		L2:                  cache.Config{LineSize: 64, Lines: 4096, Assoc: 8},    // 256 KiB
		L3:                  cache.Config{LineSize: 64, Lines: 163840, Assoc: 20}, // 10 MiB
		L2Cycles:            12,
		L3Cycles:            40,
		MemNs:               110,
		MLP:                 4,
		MLPIrregular:        1.5,
		MemBWGBs:            120,
		SMTEff:              0.35,
		PrefetchEff:         0.75,
		PrefetchStride:      256,
		TLBEntries:          64,
		TLB2Entries:         1024,
		PageWalkNs:          30,
		CoherenceNs:         60,
		ContentionPerThread: 0.04,
		Energy:              energy.DefaultHostParams(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.SMT <= 0 {
		return fmt.Errorf("hostsim: cores and SMT must be positive")
	}
	if c.FreqGHz <= 0 || c.IssueWidth <= 0 {
		return fmt.Errorf("hostsim: frequency and issue width must be positive")
	}
	if c.MLP < 1 || c.MLPIrregular < 1 {
		return fmt.Errorf("hostsim: MLP factors must be >= 1")
	}
	if c.MemBWGBs <= 0 {
		return fmt.Errorf("hostsim: memory bandwidth must be positive")
	}
	if c.PrefetchEff < 0 || c.PrefetchEff > 1 {
		return fmt.Errorf("hostsim: prefetch efficiency must be in [0,1]")
	}
	if c.TLBEntries < 0 || c.TLB2Entries < 0 || c.PageWalkNs < 0 {
		return fmt.Errorf("hostsim: TLB parameters must be non-negative")
	}
	for _, cc := range []cache.Config{c.L1, c.L2, c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the host execution estimate.
type Result struct {
	SimInstrs   uint64
	Coverage    float64
	TotalInstrs float64
	CyclesOne   float64 // single-thread cycles (extrapolated)
	TimeSec     float64 // parallel execution time
	EnergyJ     float64
	EDP         float64
	L1, L2, L3  cache.Stats
	DRAMBytes   float64 // extrapolated off-chip traffic
	Speedup     float64 // applied thread speedup
	// StreamMisses/IrregMisses classify L3 misses by the regularity of
	// the missing site's stride (streaming misses are largely hidden by
	// the prefetchers).
	StreamMisses uint64
	IrregMisses  uint64
	// SharedWriteFrac is the probed fraction of stores that touch lines
	// accessed by other threads (coherence traffic).
	SharedWriteFrac float64
	// TLBWalks counts L2-TLB misses (page walks).
	TLBWalks uint64
	// Energy is the per-component breakdown; the fields sum to EnergyJ.
	Energy EnergyBreakdown
}

// EnergyBreakdown attributes host energy to its components.
type EnergyBreakdown struct {
	CoreJ   float64 // per-instruction dynamic energy
	CacheJ  float64 // L1+L2+L3 access energy
	DRAMJ   float64 // off-chip transfer energy
	StaticJ float64 // active cores + uncore over the runtime
}

// Generator produces the dynamic trace of one hardware thread (shard) of
// the kernel; the host model uses the sequential trace (shard 0 of 1)
// for its cache/cycle accounting and two single-shard traces to probe
// cross-thread write sharing.
type Generator func(shard, nshards int, t *trace.Tracer)

// Run estimates host time and energy for the kernel traced by gen,
// executed with the given thread count. budget caps the simulated
// instructions (0 = unlimited).
//
// Run is a convenience wrapper around the streaming pieces: ProbeSharing
// for the cross-thread write-sharing set, a Collector consuming the
// sequential (shard 0 of 1) trace, and Collector.Finish for the cycle and
// energy model. Callers that already have a sequential trace pass in
// flight (e.g. one shared with the PISA profiler via trace.Fanout) can
// use those pieces directly and skip the extra kernel execution.
func Run(cfg Config, gen Generator, threads int, budget uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("hostsim: thread count %d must be positive", threads)
	}
	// Probe cross-thread write sharing before the main pass so shared
	// stores can be classified on the fly.
	col := NewCollector(cfg, ProbeSharing(gen, threads, budget))
	tr := trace.NewTracer(budget, col)
	gen(0, 1, tr)
	return col.Finish(tr.Coverage(), threads), nil
}

// Collector is the host model's streaming trace consumer: the exact
// L1/L2/L3 walk, TLB, per-site stride classification and shared-store
// counting over one sequential pass. It implements trace.Consumer, so it
// can share a single kernel execution with other consumers through
// trace.Fanout. cfg must already be validated; shared is the write-shared
// line set from ProbeSharing (nil for single-threaded runs).
type Collector struct {
	cfg        Config
	l1, l2, l3 *cache.Cache
	tlb1, tlb2 *cache.Cache
	tlbWalks   uint64
	counter    trace.Counter
	dramBytes  uint64
	streamMiss uint64
	irregMiss  uint64
	siteLast   map[uint32]uint64
	lineBytes  uint64

	shared       map[uint64]struct{}
	sharedStores uint64
	totalStores  uint64
}

// NewCollector returns a collector ready to consume a sequential
// (shard 0 of 1) trace of the kernel.
func NewCollector(cfg Config, shared map[uint64]struct{}) *Collector {
	c := &Collector{
		cfg:       cfg,
		l1:        cache.New(cfg.L1),
		l2:        cache.New(cfg.L2),
		l3:        cache.New(cfg.L3),
		siteLast:  make(map[uint32]uint64),
		lineBytes: uint64(cfg.L3.LineSize),
		shared:    shared,
	}
	// Two-level data TLB over 4 KiB pages (disabled when entries are 0).
	if cfg.TLBEntries > 0 {
		c.tlb1 = cache.New(cache.Config{LineSize: 4096, Lines: cfg.TLBEntries, Assoc: 4})
	}
	if cfg.TLB2Entries > 0 {
		c.tlb2 = cache.New(cache.Config{LineSize: 4096, Lines: cfg.TLB2Entries, Assoc: 8})
	}
	// Write-backs ripple outward level by level.
	c.l1.WriteBack = func(addr uint64) { c.l2.Access(addr, true) }
	c.l2.WriteBack = func(addr uint64) { c.l3.Access(addr, true) }
	c.l3.WriteBack = func(addr uint64) { c.dramBytes += c.lineBytes }
	return c
}

// OnInst implements trace.Consumer.
func (c *Collector) OnInst(i trace.Inst) {
	c.counter.OnInst(i)
	if i.Op == trace.OpStore {
		c.totalStores++
		if c.shared != nil {
			if _, ok := c.shared[i.Addr>>6]; ok {
				c.sharedStores++
			}
		}
	}
	if !i.Op.IsMem() {
		return
	}
	// Per-site stride classification for the prefetcher model.
	streaming := false
	if last, ok := c.siteLast[i.PC]; ok {
		delta := i.Addr - last
		if last > i.Addr {
			delta = last - i.Addr
		}
		streaming = delta <= c.cfg.PrefetchStride
	}
	c.siteLast[i.PC] = i.Addr
	// Address translation precedes the cache lookup.
	if c.tlb1 != nil && !c.tlb1.Access(i.Addr, false).Hit {
		if c.tlb2 == nil || !c.tlb2.Access(i.Addr, false).Hit {
			c.tlbWalks++
		}
	}
	write := i.Op == trace.OpStore
	if c.l1.Access(i.Addr, write).Hit {
		return
	}
	if c.l2.Access(i.Addr, false).Hit {
		return
	}
	if c.l3.Access(i.Addr, false).Hit {
		return
	}
	c.dramBytes += c.lineBytes
	if streaming {
		c.streamMiss++
	} else {
		c.irregMiss++
	}
}

// Finish converts the accumulated counts into the host estimate:
// coverage is the traced fraction of the sequential pass (used to
// extrapolate totals) and threads is the run's hardware thread count.
// The collector must not receive further instructions afterward.
func (c *Collector) Finish(coverage float64, threads int) *Result {
	cfg := c.cfg
	res := &Result{
		SimInstrs: c.counter.Total,
		Coverage:  coverage,
		L1:        c.l1.Stats,
		L2:        c.l2.Stats,
		L3:        c.l3.Stats,
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		res.Coverage = 1
	}
	res.TotalInstrs = float64(c.counter.Total) / res.Coverage
	res.DRAMBytes = float64(c.dramBytes) / res.Coverage
	res.StreamMisses = c.streamMiss
	res.IrregMisses = c.irregMiss
	res.TLBWalks = c.tlbWalks

	// Single-thread cycle model: issue-width-bound compute plus
	// MLP-discounted miss penalties at each level.
	l2acc := float64(c.l1.Stats.Misses())
	l3acc := float64(c.l2.Stats.ReadMisses)
	memCycles := cfg.MemNs * cfg.FreqGHz
	// Streaming misses are mostly covered by the prefetchers and overlap
	// well (MLP); irregular misses form dependent chains with little
	// overlap (MLPIrregular).
	memStall := float64(c.irregMiss)*memCycles/cfg.MLPIrregular +
		float64(c.streamMiss)*(1-cfg.PrefetchEff)*memCycles/cfg.MLP
	// Coherence: each shared store costs a snoop/invalidate round when
	// other threads exist.
	if c.totalStores > 0 {
		res.SharedWriteFrac = float64(c.sharedStores) / float64(c.totalStores)
	}
	cohCycles := 0.0
	if threads > 1 {
		cohCycles = float64(c.sharedStores) * cfg.CoherenceNs * cfg.FreqGHz / cfg.MLP
	}
	// Page walks overlap like other memory-level parallelism.
	walkCycles := float64(c.tlbWalks) * cfg.PageWalkNs * cfg.FreqGHz / cfg.MLP
	cycles := float64(c.counter.Total)/cfg.IssueWidth +
		(l2acc*cfg.L2Cycles+l3acc*cfg.L3Cycles)/cfg.MLP + memStall + cohCycles + walkCycles
	res.CyclesOne = cycles / res.Coverage

	// Thread speedup: full cores first, then diminishing SMT returns,
	// degraded by directory serialization on shared writes.
	res.Speedup = threadSpeedup(threads, cfg.Cores, cfg.SMT, cfg.SMTEff)
	if threads > 1 && res.SharedWriteFrac > 0 {
		res.Speedup /= 1 + res.SharedWriteFrac*float64(threads-1)*cfg.ContentionPerThread
		if res.Speedup < 1 {
			res.Speedup = 1
		}
	}
	timeCompute := res.CyclesOne / (cfg.FreqGHz * 1e9) / res.Speedup
	timeBW := res.DRAMBytes / (cfg.MemBWGBs * 1e9)
	res.TimeSec = timeCompute
	if timeBW > res.TimeSec {
		res.TimeSec = timeBW
	}

	res.EnergyJ = hostEnergy(cfg, res, threads)
	res.EDP = res.EnergyJ * res.TimeSec
	return res
}

// ProbeSharing traces two shards of a threads-way execution and returns
// the set of cache lines written by one shard and touched by the other
// (nil when the run is single-threaded). The probe is capped well below
// the main budget; sharing patterns show up immediately.
func ProbeSharing(gen Generator, threads int, budget uint64) map[uint64]struct{} {
	if threads < 2 {
		return nil
	}
	probeBudget := budget / 4
	if probeBudget == 0 || probeBudget > 400_000 {
		probeBudget = 400_000
	}
	const lineShift = 6
	collect := func(shard int) (writes, touches map[uint64]struct{}) {
		writes = make(map[uint64]struct{})
		touches = make(map[uint64]struct{})
		tr := trace.NewTracer(probeBudget, trace.ConsumerFunc(func(i trace.Inst) {
			if !i.Op.IsMem() {
				return
			}
			line := i.Addr >> lineShift
			touches[line] = struct{}{}
			if i.Op == trace.OpStore {
				writes[line] = struct{}{}
			}
		}))
		gen(shard, threads, tr)
		return writes, touches
	}
	w0, t0 := collect(0)
	w1, t1 := collect(1)
	shared := make(map[uint64]struct{})
	for l := range w0 {
		if _, ok := t1[l]; ok {
			shared[l] = struct{}{}
		}
	}
	for l := range w1 {
		if _, ok := t0[l]; ok {
			shared[l] = struct{}{}
		}
	}
	if len(shared) == 0 {
		return nil
	}
	return shared
}

// threadSpeedup models thread scaling: linear across physical cores,
// then smtEff marginal gain per extra SMT thread.
func threadSpeedup(threads, cores, smt int, smtEff float64) float64 {
	if threads <= cores {
		return float64(threads)
	}
	extra := threads - cores
	maxExtra := cores * (smt - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	return float64(cores) + float64(extra)*smtEff
}

// hostEnergy converts counts into Joules (extrapolated by coverage) and
// records the component breakdown.
func hostEnergy(cfg Config, r *Result, threads int) float64 {
	e := cfg.Energy
	inv := 1e-12 / r.Coverage
	r.Energy.CoreJ = e.InstPJ * float64(r.SimInstrs) * inv
	r.Energy.CacheJ = (e.L1PJ*float64(r.L1.Accesses()) +
		e.L2PJ*float64(r.L2.Accesses()) +
		e.L3PJ*float64(r.L3.Accesses())) * inv
	r.Energy.DRAMJ = e.DRAMPJPerByte * r.DRAMBytes * 1e-12

	active := threads
	if active > cfg.Cores {
		active = cfg.Cores
	}
	staticW := float64(active)*e.CoreStaticW + e.UncoreStaticW
	r.Energy.StaticJ = staticW * r.TimeSec
	return r.Energy.CoreJ + r.Energy.CacheJ + r.Energy.DRAMJ + r.Energy.StaticJ
}
