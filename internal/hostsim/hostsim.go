// Package hostsim models the host CPU of the paper's evaluation — an IBM
// POWER9 AC922 (Table 3: 16 cores, 4-way SMT, 2.3 GHz, 32 KiB L1,
// 256 KiB L2, 10 MiB L3, DDR4-2666) — to produce the host execution time
// and energy of Figure 6 and the denominator of the EDP-reduction
// analysis of Figure 7.
//
// The paper measures a real machine with on-board power sensors; this
// package substitutes a trace-driven model: the kernel's dynamic
// instruction trace streams through an exact L1/L2/L3 cache hierarchy,
// and a first-order out-of-order core model converts the per-level
// access counts into cycles (issue-width-limited compute plus
// MLP-discounted miss stalls). Thread-level parallelism is applied as a
// speedup bounded by core count, SMT efficiency and DRAM bandwidth.
// What Figures 6 and 7 need from this model is the *contrast* between
// cache-resident and memory-bound workloads, which the exact hierarchy
// provides.
package hostsim

import (
	"fmt"

	"napel/internal/cache"
	"napel/internal/energy"
	"napel/internal/trace"
)

// Config describes the host system.
type Config struct {
	Cores      int     // physical cores
	SMT        int     // hardware threads per core
	FreqGHz    float64 // core frequency
	IssueWidth float64 // sustained issue width of the OoO core
	L1         cache.Config
	L2         cache.Config
	L3         cache.Config
	L2Cycles   float64 // L1-miss/L2-hit penalty, cycles
	L3Cycles   float64 // L2-miss/L3-hit penalty, cycles
	MemNs      float64 // L3-miss latency, ns
	MLP        float64 // overlapped misses for cache-level and streaming penalties
	// MLPIrregular is the (much lower) overlap achieved on irregular,
	// dependent miss chains — pointer chasing exposes nearly the full
	// memory latency on real machines.
	MLPIrregular float64
	MemBWGBs     float64 // aggregate DRAM bandwidth ceiling, GB/s
	SMTEff       float64 // marginal throughput of each extra SMT thread
	// PrefetchEff is the fraction of the miss penalty hidden for
	// streaming (unit/short-stride) accesses by the hardware prefetchers.
	// Server-class cores hide most of a regular stream's latency, which
	// is precisely why the paper finds the cache-friendly PolyBench
	// kernels unsuitable for NMC while irregular kernels benefit.
	PrefetchEff float64
	// PrefetchStride is the largest per-site stride (bytes) treated as
	// prefetchable.
	PrefetchStride uint64
	// TLB models the two-level data TLB: entries at each level (4 KiB
	// pages) and the page-walk latency charged to L2-TLB misses.
	TLBEntries  int
	TLB2Entries int
	PageWalkNs  float64
	// CoherenceNs is the cost of one coherence transaction (remote snoop
	// + invalidation) charged to stores that hit thread-shared lines.
	// Shared-write kernels (graph frontiers, shared accumulators) scale
	// poorly on real multiprocessors; this term reproduces that.
	CoherenceNs float64
	// ContentionPerThread degrades the thread speedup in proportion to
	// the shared-write fraction (serialization at the directory).
	ContentionPerThread float64
	Energy              energy.HostParams
}

// DefaultConfig returns the Table 3 POWER9 host.
func DefaultConfig() Config {
	return Config{
		Cores:               16,
		SMT:                 4,
		FreqGHz:             2.3,
		IssueWidth:          4,
		L1:                  cache.Config{LineSize: 64, Lines: 512, Assoc: 8},     // 32 KiB
		L2:                  cache.Config{LineSize: 64, Lines: 4096, Assoc: 8},    // 256 KiB
		L3:                  cache.Config{LineSize: 64, Lines: 163840, Assoc: 20}, // 10 MiB
		L2Cycles:            12,
		L3Cycles:            40,
		MemNs:               110,
		MLP:                 4,
		MLPIrregular:        1.5,
		MemBWGBs:            120,
		SMTEff:              0.35,
		PrefetchEff:         0.75,
		PrefetchStride:      256,
		TLBEntries:          64,
		TLB2Entries:         1024,
		PageWalkNs:          30,
		CoherenceNs:         60,
		ContentionPerThread: 0.04,
		Energy:              energy.DefaultHostParams(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.SMT <= 0 {
		return fmt.Errorf("hostsim: cores and SMT must be positive")
	}
	if c.FreqGHz <= 0 || c.IssueWidth <= 0 {
		return fmt.Errorf("hostsim: frequency and issue width must be positive")
	}
	if c.MLP < 1 || c.MLPIrregular < 1 {
		return fmt.Errorf("hostsim: MLP factors must be >= 1")
	}
	if c.MemBWGBs <= 0 {
		return fmt.Errorf("hostsim: memory bandwidth must be positive")
	}
	if c.PrefetchEff < 0 || c.PrefetchEff > 1 {
		return fmt.Errorf("hostsim: prefetch efficiency must be in [0,1]")
	}
	if c.TLBEntries < 0 || c.TLB2Entries < 0 || c.PageWalkNs < 0 {
		return fmt.Errorf("hostsim: TLB parameters must be non-negative")
	}
	for _, cc := range []cache.Config{c.L1, c.L2, c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the host execution estimate.
type Result struct {
	SimInstrs   uint64
	Coverage    float64
	TotalInstrs float64
	CyclesOne   float64 // single-thread cycles (extrapolated)
	TimeSec     float64 // parallel execution time
	EnergyJ     float64
	EDP         float64
	L1, L2, L3  cache.Stats
	DRAMBytes   float64 // extrapolated off-chip traffic
	Speedup     float64 // applied thread speedup
	// StreamMisses/IrregMisses classify L3 misses by the regularity of
	// the missing site's stride (streaming misses are largely hidden by
	// the prefetchers).
	StreamMisses uint64
	IrregMisses  uint64
	// SharedWriteFrac is the probed fraction of stores that touch lines
	// accessed by other threads (coherence traffic).
	SharedWriteFrac float64
	// TLBWalks counts L2-TLB misses (page walks).
	TLBWalks uint64
	// Energy is the per-component breakdown; the fields sum to EnergyJ.
	Energy EnergyBreakdown
}

// EnergyBreakdown attributes host energy to its components.
type EnergyBreakdown struct {
	CoreJ   float64 // per-instruction dynamic energy
	CacheJ  float64 // L1+L2+L3 access energy
	DRAMJ   float64 // off-chip transfer energy
	StaticJ float64 // active cores + uncore over the runtime
}

// Generator produces the dynamic trace of one hardware thread (shard) of
// the kernel; the host model uses the sequential trace (shard 0 of 1)
// for its cache/cycle accounting and two single-shard traces to probe
// cross-thread write sharing.
type Generator func(shard, nshards int, t *trace.Tracer)

// Run estimates host time and energy for the kernel traced by gen,
// executed with the given thread count. budget caps the simulated
// instructions (0 = unlimited).
func Run(cfg Config, gen Generator, threads int, budget uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("hostsim: thread count %d must be positive", threads)
	}

	l1 := cache.New(cfg.L1)
	l2 := cache.New(cfg.L2)
	l3 := cache.New(cfg.L3)
	// Two-level data TLB over 4 KiB pages (disabled when entries are 0).
	var tlb1, tlb2 *cache.Cache
	if cfg.TLBEntries > 0 {
		tlb1 = cache.New(cache.Config{LineSize: 4096, Lines: cfg.TLBEntries, Assoc: 4})
	}
	if cfg.TLB2Entries > 0 {
		tlb2 = cache.New(cache.Config{LineSize: 4096, Lines: cfg.TLB2Entries, Assoc: 8})
	}
	var tlbWalks uint64
	var counter trace.Counter
	var dramBytes uint64
	var streamMiss, irregMiss uint64
	siteLast := make(map[uint32]uint64)
	lineBytes := uint64(cfg.L3.LineSize)

	// Write-backs ripple outward level by level.
	l1.WriteBack = func(addr uint64) { l2.Access(addr, true) }
	l2.WriteBack = func(addr uint64) { l3.Access(addr, true) }
	l3.WriteBack = func(addr uint64) { dramBytes += lineBytes }

	consumer := trace.ConsumerFunc(func(i trace.Inst) {
		counter.OnInst(i)
		if !i.Op.IsMem() {
			return
		}
		// Per-site stride classification for the prefetcher model.
		streaming := false
		if last, ok := siteLast[i.PC]; ok {
			delta := i.Addr - last
			if last > i.Addr {
				delta = last - i.Addr
			}
			streaming = delta <= cfg.PrefetchStride
		}
		siteLast[i.PC] = i.Addr
		// Address translation precedes the cache lookup.
		if tlb1 != nil && !tlb1.Access(i.Addr, false).Hit {
			if tlb2 == nil || !tlb2.Access(i.Addr, false).Hit {
				tlbWalks++
			}
		}
		write := i.Op == trace.OpStore
		if l1.Access(i.Addr, write).Hit {
			return
		}
		if l2.Access(i.Addr, false).Hit {
			return
		}
		if l3.Access(i.Addr, false).Hit {
			return
		}
		dramBytes += lineBytes
		if streaming {
			streamMiss++
		} else {
			irregMiss++
		}
	})

	// Probe cross-thread write sharing before the main pass so shared
	// stores can be classified on the fly.
	shared := probeSharing(gen, threads, budget)
	var sharedStores, totalStores uint64

	mainConsumer := trace.ConsumerFunc(func(i trace.Inst) {
		consumer(i)
		if i.Op == trace.OpStore {
			totalStores++
			if shared != nil {
				if _, ok := shared[i.Addr>>6]; ok {
					sharedStores++
				}
			}
		}
	})
	tr := trace.NewTracer(budget, mainConsumer)
	gen(0, 1, tr)

	res := &Result{
		SimInstrs: counter.Total,
		Coverage:  tr.Coverage(),
		L1:        l1.Stats,
		L2:        l2.Stats,
		L3:        l3.Stats,
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		res.Coverage = 1
	}
	res.TotalInstrs = float64(counter.Total) / res.Coverage
	res.DRAMBytes = float64(dramBytes) / res.Coverage
	res.StreamMisses = streamMiss
	res.IrregMisses = irregMiss
	res.TLBWalks = tlbWalks

	// Single-thread cycle model: issue-width-bound compute plus
	// MLP-discounted miss penalties at each level.
	l2acc := float64(l1.Stats.Misses())
	l3acc := float64(l2.Stats.ReadMisses)
	memCycles := cfg.MemNs * cfg.FreqGHz
	// Streaming misses are mostly covered by the prefetchers and overlap
	// well (MLP); irregular misses form dependent chains with little
	// overlap (MLPIrregular).
	memStall := float64(irregMiss)*memCycles/cfg.MLPIrregular +
		float64(streamMiss)*(1-cfg.PrefetchEff)*memCycles/cfg.MLP
	// Coherence: each shared store costs a snoop/invalidate round when
	// other threads exist.
	if totalStores > 0 {
		res.SharedWriteFrac = float64(sharedStores) / float64(totalStores)
	}
	cohCycles := 0.0
	if threads > 1 {
		cohCycles = float64(sharedStores) * cfg.CoherenceNs * cfg.FreqGHz / cfg.MLP
	}
	// Page walks overlap like other memory-level parallelism.
	walkCycles := float64(tlbWalks) * cfg.PageWalkNs * cfg.FreqGHz / cfg.MLP
	cycles := float64(counter.Total)/cfg.IssueWidth +
		(l2acc*cfg.L2Cycles+l3acc*cfg.L3Cycles)/cfg.MLP + memStall + cohCycles + walkCycles
	res.CyclesOne = cycles / res.Coverage

	// Thread speedup: full cores first, then diminishing SMT returns,
	// degraded by directory serialization on shared writes.
	res.Speedup = threadSpeedup(threads, cfg.Cores, cfg.SMT, cfg.SMTEff)
	if threads > 1 && res.SharedWriteFrac > 0 {
		res.Speedup /= 1 + res.SharedWriteFrac*float64(threads-1)*cfg.ContentionPerThread
		if res.Speedup < 1 {
			res.Speedup = 1
		}
	}
	timeCompute := res.CyclesOne / (cfg.FreqGHz * 1e9) / res.Speedup
	timeBW := res.DRAMBytes / (cfg.MemBWGBs * 1e9)
	res.TimeSec = timeCompute
	if timeBW > res.TimeSec {
		res.TimeSec = timeBW
	}

	res.EnergyJ = hostEnergy(cfg, res, threads)
	res.EDP = res.EnergyJ * res.TimeSec
	return res, nil
}

// probeSharing traces two shards of a threads-way execution and returns
// the set of cache lines written by one shard and touched by the other
// (nil when the run is single-threaded). The probe is capped well below
// the main budget; sharing patterns show up immediately.
func probeSharing(gen Generator, threads int, budget uint64) map[uint64]struct{} {
	if threads < 2 {
		return nil
	}
	probeBudget := budget / 4
	if probeBudget == 0 || probeBudget > 400_000 {
		probeBudget = 400_000
	}
	const lineShift = 6
	collect := func(shard int) (writes, touches map[uint64]struct{}) {
		writes = make(map[uint64]struct{})
		touches = make(map[uint64]struct{})
		tr := trace.NewTracer(probeBudget, trace.ConsumerFunc(func(i trace.Inst) {
			if !i.Op.IsMem() {
				return
			}
			line := i.Addr >> lineShift
			touches[line] = struct{}{}
			if i.Op == trace.OpStore {
				writes[line] = struct{}{}
			}
		}))
		gen(shard, threads, tr)
		return writes, touches
	}
	w0, t0 := collect(0)
	w1, t1 := collect(1)
	shared := make(map[uint64]struct{})
	for l := range w0 {
		if _, ok := t1[l]; ok {
			shared[l] = struct{}{}
		}
	}
	for l := range w1 {
		if _, ok := t0[l]; ok {
			shared[l] = struct{}{}
		}
	}
	if len(shared) == 0 {
		return nil
	}
	return shared
}

// threadSpeedup models thread scaling: linear across physical cores,
// then smtEff marginal gain per extra SMT thread.
func threadSpeedup(threads, cores, smt int, smtEff float64) float64 {
	if threads <= cores {
		return float64(threads)
	}
	extra := threads - cores
	maxExtra := cores * (smt - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	return float64(cores) + float64(extra)*smtEff
}

// hostEnergy converts counts into Joules (extrapolated by coverage) and
// records the component breakdown.
func hostEnergy(cfg Config, r *Result, threads int) float64 {
	e := cfg.Energy
	inv := 1e-12 / r.Coverage
	r.Energy.CoreJ = e.InstPJ * float64(r.SimInstrs) * inv
	r.Energy.CacheJ = (e.L1PJ*float64(r.L1.Accesses()) +
		e.L2PJ*float64(r.L2.Accesses()) +
		e.L3PJ*float64(r.L3.Accesses())) * inv
	r.Energy.DRAMJ = e.DRAMPJPerByte * r.DRAMBytes * 1e-12

	active := threads
	if active > cfg.Cores {
		active = cfg.Cores
	}
	staticW := float64(active)*e.CoreStaticW + e.UncoreStaticW
	r.Energy.StaticJ = staticW * r.TimeSec
	return r.Energy.CoreJ + r.Energy.CacheJ + r.Energy.DRAMJ + r.Energy.StaticJ
}
