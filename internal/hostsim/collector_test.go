package hostsim

import (
	"reflect"
	"testing"

	"napel/internal/trace"
)

// budgetGen honors the tracer budget like real workloads: Stop checked at
// outer-loop boundaries, coverage reported on early exit. Shards share a
// small write region so the sharing probe has something to find.
func budgetGen(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		priv := uint64(1<<28) + uint64(shard)<<24
		for i := 0; i < n; i += 4 {
			if t.Stop() {
				t.SetCoverage(i, n)
				return
			}
			for j := 0; j < 4; j++ {
				t.Load(0, priv+uint64(i+j)*8, 8, 1, 2)
				t.Store(1, uint64((i+j)%64)*8, 8, 1)
			}
		}
	}
}

// TestCollectorFanoutMatchesRun drives the Collector through trace.Fanout
// alongside a second consumer (as the napel suitability path does, where
// the host model and the PISA profiler share one kernel execution) and
// checks the result is bit-identical to a dedicated Run — provided the
// collector's sink budget is the fan-out's largest, so it sees exactly
// the trace a dedicated run would.
func TestCollectorFanoutMatchesRun(t *testing.T) {
	cfg := DefaultConfig()
	gen := budgetGen(2000)
	for _, threads := range []int{1, 4} {
		for _, budget := range []uint64{0, 500, 100000} {
			want, err := Run(cfg, gen, threads, budget)
			if err != nil {
				t.Fatalf("Run(threads %d, budget %d): %v", threads, budget, err)
			}

			col := NewCollector(cfg, ProbeSharing(gen, threads, budget))
			var other trace.Counter
			hostSink := &trace.Sink{C: col, Budget: budget}
			otherBudget := budget / 2
			if budget == 0 {
				otherBudget = 100
			}
			otherSink := &trace.Sink{C: &other, Budget: otherBudget}
			trace.Fanout(func(tr *trace.Tracer) { gen(0, 1, tr) }, hostSink, otherSink)
			got := col.Finish(hostSink.Coverage, threads)

			if !reflect.DeepEqual(got, want) {
				t.Errorf("threads %d budget %d: fan-out result differs from Run\n got %+v\nwant %+v",
					threads, budget, got, want)
			}
			if other.Total == 0 {
				t.Errorf("threads %d budget %d: co-consumer saw no instructions", threads, budget)
			}
		}
	}
}
