package hostsim_test

import (
	"fmt"

	"napel/internal/hostsim"
	"napel/internal/trace"
)

// Example_streamingVsIrregular contrasts the two memory behaviours that
// decide the paper's Figure 7: prefetch-friendly streaming runs much
// faster on the host than pointer-chasing over the same instruction
// count.
func Example_streamingVsIrregular() {
	run := func(gen hostsim.Generator) *hostsim.Result {
		res, err := hostsim.Run(hostsim.DefaultConfig(), gen, 1, 0)
		if err != nil {
			panic(err)
		}
		return res
	}
	stream := run(func(shard, nshards int, t *trace.Tracer) {
		for i := 0; i < 100000; i++ {
			t.Load(0, uint64(1<<28)+uint64(i)*8, 8, 1, 2)
		}
	})
	irregular := run(func(shard, nshards int, t *trace.Tracer) {
		x := uint64(7)
		for i := 0; i < 100000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			t.Load(0, (x>>16)%(1<<30), 8, 1, 2)
		}
	})
	fmt.Println("same instruction count:", stream.SimInstrs == irregular.SimInstrs)
	fmt.Println("irregular at least 5x slower:", irregular.TimeSec > 5*stream.TimeSec)
	// Output:
	// same instruction count: true
	// irregular at least 5x slower: true
}
