// Package obs is the repository's shared observability core: a
// Prometheus-text metrics registry, context-propagated request/job
// tracing, a trace-correlating slog handler, and runtime introspection
// endpoints — all stdlib-only, like the rest of the repository.
//
// The package replaces the hand-rolled exposition writers that
// napel-serve and napel-traind each grew independently, and gives the
// parallel collection engine its first instrumentation. One registry
// design serves all three layers:
//
//   - Metrics: get-or-create counters, gauges and fixed-bucket
//     histograms, optionally labeled. Registration takes a lock once;
//     the handles it returns are lock-free on the hot path (atomic adds,
//     zero allocations) and safe to observe concurrently with scrapes.
//     WriteText renders the whole registry in deterministic (sorted)
//     order with correct HELP/TYPE lines and label-value escaping.
//
//   - Tracing: StartSpan(ctx, name) opens a span under whatever tracer
//     and parent the context carries; End() exports a completed record
//     to an in-memory ring (served at /debug/traces as filterable JSON)
//     and, optionally, a JSONL sink. With no tracer on the context the
//     span is nil and every method is a no-op, so instrumented code
//     costs nothing when tracing is off.
//
//   - Logging: NewLogHandler wraps any slog.Handler and stamps
//     trace_id/span_id from the record's context, so logs and traces
//     correlate without the call sites knowing about tracing.
//
//   - Introspection: MountDebug attaches /debug/traces, /debug/pprof/*
//     and a /debug/runtime goroutine/GC/heap snapshot to an admin mux.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates the families a registry can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing metric. The zero value is
// unusable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is
// lock-free and allocation-free; the +Inf bucket is implicit.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	buckets []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets is a general-purpose latency grid in seconds, dense at the
// sub-millisecond end where predictions live.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// family is one registered metric name: its metadata plus either a set
// of labeled series or a value function.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histograms only

	// series maps the joined label-value key to its metric (a *Counter,
	// *Gauge or *Histogram). Lookups are lock-free via copy-on-write;
	// seriesMu serializes writers. Unlabeled families use the "" key.
	series   atomic.Pointer[map[string]any]
	seriesMu sync.Mutex

	// fn backs CounterFunc/GaugeFunc families. Guarded by seriesMu;
	// re-registration replaces it (latest closure wins), which lets
	// successive engine runs rebind gauges over fresh state.
	fn func() float64
}

func (f *family) load() map[string]any {
	if m := f.series.Load(); m != nil {
		return *m
	}
	return nil
}

// get returns the series for key, creating it with mk on first use.
func (f *family) get(key string, mk func() any) any {
	if m := f.load(); m != nil {
		if s, ok := m[key]; ok {
			return s
		}
	}
	f.seriesMu.Lock()
	defer f.seriesMu.Unlock()
	old := f.load()
	if s, ok := old[key]; ok {
		return s
	}
	next := make(map[string]any, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	s := mk()
	next[key] = s
	f.series.Store(&next)
	return s
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is unusable; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns the named family, creating it on first registration.
// A name re-registered with a different kind, label set or bucket
// layout panics: that is a programming error, not runtime input.
func (r *Registry) family(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic("obs: metric " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, bounds: bounds}
	r.families[name] = f
	return f
}

// Counter returns the unlabeled counter name, registering it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil)
	return f.get("", func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the unlabeled gauge name, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil)
	return f.get("", func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the unlabeled histogram name with the given bucket
// upper bounds (nil means DefBuckets), registering it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.family(name, help, kindHistogram, nil, bounds)
	return f.get("", func() any { return newHistogram(bounds) }).(*Histogram)
}

// CounterFunc registers a counter whose value is computed at scrape
// time — for counts owned by another component (cache hit totals, model
// reload counts). Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindCounterFunc, nil, nil)
	f.seriesMu.Lock()
	f.fn = fn
	f.seriesMu.Unlock()
}

// GaugeFunc registers a gauge computed at scrape time. Re-registering
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGaugeFunc, nil, nil)
	f.seriesMu.Lock()
	f.fn = fn
	f.seriesMu.Unlock()
}

// CounterVec is a counter family with labels. Resolve series with With
// once and keep the handle: With takes the registry's copy-on-write
// read path, but the returned Counter is lock-free.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (positional,
// matching the registered label names).
func (v *CounterVec) With(values ...string) *Counter {
	key := seriesKey(v.f.labels, values)
	return v.f.get(key, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := seriesKey(v.f.labels, values)
	return v.f.get(key, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family name (nil bounds
// means DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{r.family(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := seriesKey(v.f.labels, values)
	return v.f.get(key, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// seriesKey joins label values into the series map key. Values embed
// unescaped; the unit separator cannot collide with rendered output
// because rendering re-derives the values by splitting on it.
func seriesKey(labels, values []string) string {
	if len(values) != len(labels) {
		panic("obs: label value count mismatch")
	}
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, "\x1f")
}

func splitSeriesKey(key string, n int) []string {
	if n == 1 {
		return []string{key}
	}
	return strings.SplitN(key, "\x1f", n)
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
