package obs

import (
	"context"
	"net/http"
)

// Cross-process span propagation in the W3C Trace Context wire format:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// The tracer's ids are 64-bit, so the injected trace id is the local id
// left-padded to 128 bits; extraction keeps the low 64 bits (falling
// back to the high half when an upstream sent a zero low half, which is
// legal W3C as long as the full id is nonzero). Sampling flags are
// carried but not interpreted — every process records into its own
// bounded ring regardless, so there is nothing to decide per-request.

// TraceParentHeader is the canonical (lowercase) propagation header.
const TraceParentHeader = "traceparent"

// SpanContext is the cross-process identity a traceparent header
// carries: which trace the caller is in, and which of its spans is the
// parent of whatever the callee does next.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether both ids are nonzero, the W3C invariant.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// FormatTraceParent renders a version-00 traceparent value with the
// sampled flag set. Zero ids produce a header remote ends will reject,
// so callers should pass real span identities.
func FormatTraceParent(traceID, spanID uint64) string {
	return "00-0000000000000000" + formatID(traceID) + "-" + formatID(spanID) + "-01"
}

// ParseTraceParent decodes a traceparent header value. It is strict
// about shape — exact field widths, lowercase hex, known-invalid
// version ff and all-zero ids rejected — because a malformed header
// from an arbitrary client must degrade to "no trace context", never
// to a garbage trace id that aliases real traces.
func ParseTraceParent(h string) (SpanContext, bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	if _, ok := parseHex(h[:2]); !ok || h[:2] == "ff" {
		return SpanContext{}, false
	}
	hi, ok1 := parseHex(h[3:19])
	lo, ok2 := parseHex(h[19:35])
	sid, ok3 := parseHex(h[36:52])
	if _, ok := parseHex(h[53:55]); !ok || !ok1 || !ok2 || !ok3 {
		return SpanContext{}, false
	}
	tid := lo
	if tid == 0 {
		tid = hi
	}
	sc := SpanContext{TraceID: tid, SpanID: sid}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// parseHex decodes a lowercase hex string of at most 16 digits.
func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// remoteKey carries a SpanContext extracted from an incoming request.
type remoteKey struct{}

// ContextWithRemote returns a context under which StartSpan joins the
// given remote trace: the next span started without a local parent
// adopts sc.TraceID and parents under sc.SpanID.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, sc)
}

// RemoteFromContext returns the extracted remote span context, if any.
func RemoteFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteKey{}).(SpanContext)
	return sc, ok
}

// InjectHTTP stamps req with the context's trace identity: the active
// span if one is open, else a remote context being passed through
// verbatim (a proxy hop that doesn't span itself). With neither, the
// request is left untouched — no header, no allocation.
func InjectHTTP(ctx context.Context, req *http.Request) {
	if s := SpanFromContext(ctx); s != nil {
		req.Header.Set(TraceParentHeader, FormatTraceParent(s.traceID, s.spanID))
		return
	}
	if sc, ok := RemoteFromContext(ctx); ok && sc.Valid() {
		req.Header.Set(TraceParentHeader, FormatTraceParent(sc.TraceID, sc.SpanID))
	}
}

// ExtractHTTP returns ctx extended with the request's traceparent, so a
// subsequent StartSpan joins the caller's trace. A missing or malformed
// header returns ctx unchanged.
func ExtractHTTP(ctx context.Context, r *http.Request) context.Context {
	if sc, ok := ParseTraceParent(r.Header.Get(TraceParentHeader)); ok {
		return ContextWithRemote(ctx, sc)
	}
	return ctx
}

// SpanFromHeader is server middleware for muxes without bespoke
// instrumentation: each request's context gains the caller's span
// context before h runs, so handlers that StartSpan land in the
// caller's trace automatically.
func SpanFromHeader(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r.WithContext(ExtractHTTP(r.Context(), r)))
	})
}
