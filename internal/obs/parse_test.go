package obs

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// The parser must read back exactly what WriteText writes: every kind of
// family, labeled and bare, histogram components included.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "").Add(7)
	r.Gauge("t_inflight", "").Set(3.5)
	cv := r.CounterVec("t_by_endpoint_total", "", "endpoint", "class")
	cv.With("predict", "2xx").Add(11)
	cv.With("predict", "5xx").Add(2)
	cv.With("with space", `qu"ote`).Add(1)
	h := r.Histogram("t_latency_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterFunc("t_func_total", "", func() float64 { return 42 })

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, buf.String())
	}

	cases := map[string]float64{
		"t_requests_total": 7,
		"t_inflight":       3.5,
		`t_by_endpoint_total{endpoint="predict",class="2xx"}`: 11,
		`t_by_endpoint_total{endpoint="predict",class="5xx"}`: 2,
		"t_func_total":                        42,
		`t_latency_seconds_bucket{le="0.1"}`:  1,
		`t_latency_seconds_bucket{le="1"}`:    2,
		`t_latency_seconds_bucket{le="+Inf"}`: 3,
		"t_latency_seconds_count":             3,
	}
	for series, want := range cases {
		if got := snap.Value(series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	if !snap.Has("t_requests_total") || snap.Has("t_missing") {
		t.Error("Has misreports series presence")
	}
	if got := snap.SumFamily("t_by_endpoint_total"); got != 14 {
		t.Errorf("SumFamily = %g, want 14 (labeled series incl. escaped labels)", got)
	}
	// _bucket series are their own family, not folded into the base name.
	if got := snap.SumFamily("t_latency_seconds"); got != 0 {
		t.Errorf("SumFamily(histogram base) = %g, want 0", got)
	}
}

func TestParseTextDeltas(t *testing.T) {
	before, err := ParseText(strings.NewReader("a_total 10\nb_total{x=\"1\"} 5\nb_total{x=\"2\"} 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := ParseText(strings.NewReader("a_total 25\nb_total{x=\"1\"} 9\nb_total{x=\"2\"} 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d := after.Delta(before, "a_total"); d != 15 {
		t.Errorf("Delta = %g, want 15", d)
	}
	if d := after.DeltaFamily(before, "b_total"); d != 6 {
		t.Errorf("DeltaFamily = %g, want 6", d)
	}
	// A series absent from the earlier scrape deltas from zero.
	if d := after.Delta(Snapshot{}, "a_total"); d != 25 {
		t.Errorf("Delta vs empty = %g, want 25", d)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"no_value_here\n", "name notanumber\n"} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
	// Blank lines and comments alone are a valid (empty) scrape.
	snap, err := ParseText(strings.NewReader("\n# HELP x y\n# TYPE x counter\n"))
	if err != nil || len(snap) != 0 {
		t.Errorf("comment-only scrape: snap=%v err=%v", snap, err)
	}
}

// The hardened grammar: escaped label values, ±Inf samples, trailing
// timestamps, tabs, trailing label commas, and HELP/TYPE blocks in any
// order relative to the samples.
func TestParseTextHardened(t *testing.T) {
	in := strings.Join([]string{
		`weird_total{path="a\\b",msg="line\nbreak",q="qu\"ote"} 3`,
		`lat_bucket{le="+Inf"} 12`,
		`neg_gauge -Inf`,
		`stamped_total{x="1"} 5 1712345678901`,
		"tabbed_total\t7",
		`trailing_total{x="1",} 2`,
		`# HELP weird_total appears after its samples`,
		`# TYPE weird_total counter`,
	}, "\n")
	snap, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]float64{
		`weird_total{path="a\\b",msg="line\nbreak",q="qu\"ote"}`: 3,
		`lat_bucket{le="+Inf"}`: 12,
		`stamped_total{x="1"}`:  5,
		"tabbed_total":          7,
		`trailing_total{x="1"}`: 2,
	}
	for series, want := range cases {
		if got := snap.Value(series); got != want {
			t.Errorf("%s = %g, want %g\nsnapshot: %v", series, got, want, snap)
		}
	}
	if got := snap.Value("neg_gauge"); !math.IsInf(got, -1) {
		t.Errorf("neg_gauge = %g, want -Inf", got)
	}
}

func TestParseExpositionMeta(t *testing.T) {
	in := "# TYPE a_total counter\na_total 1\n# HELP a_total with \\\\ and \\n escapes\n# HELP b helponly\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Types["a_total"] != "counter" {
		t.Errorf("Types = %v", exp.Types)
	}
	if want := "with \\ and \n escapes"; exp.Help["a_total"] != want {
		t.Errorf("Help[a_total] = %q, want %q", exp.Help["a_total"], want)
	}
	if len(exp.Samples) != 1 || exp.Samples[0].Key() != "a_total" {
		t.Errorf("samples = %+v", exp.Samples)
	}
}

// Exposition → parse → exposition on the real registries: rendering the
// parsed samples back to text and re-parsing must reproduce the same
// snapshot, proving keys and values survive a full round trip even with
// hostile label values.
func TestExpositionParseRenderRoundTrip(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterBuildInfo(r, "obs-test")
	cv := r.CounterVec("rt_hostile_total", "label torture", "v")
	cv.With(`back\slash`).Add(1)
	cv.With("new\nline").Add(2)
	cv.With(`qu"ote and space`).Add(3)
	h := r.Histogram("rt_latency_seconds", "", nil)
	h.Observe(0.003)
	h.Observe(9)

	var first bytes.Buffer
	if err := r.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("parse pass 1: %v\n%s", err, first.String())
	}
	var second bytes.Buffer
	for _, s := range exp.Samples {
		fmt.Fprintf(&second, "%s %s\n", s.Key(), strconv.FormatFloat(s.Value, 'g', -1, 64))
	}
	snapA, err := ParseText(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := ParseText(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatalf("parse pass 2: %v\n%s", err, second.String())
	}
	if len(snapA) != len(snapB) {
		t.Fatalf("round trip changed series count: %d -> %d", len(snapA), len(snapB))
	}
	for series, v := range snapA {
		if got := snapB[series]; got != v {
			t.Errorf("%s: %g -> %g across round trip", series, v, got)
		}
	}
	if !snapB.Has(`rt_hostile_total{v="qu\"ote and space"}`) {
		t.Error("hostile label key not canonical after round trip")
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"napel_process_alloc_bytes_total",
		"napel_process_mallocs_total",
		"napel_process_gc_cycles_total",
		"napel_process_gc_pause_seconds_total",
		"napel_process_heap_alloc_bytes",
		"napel_process_goroutines",
	} {
		if !snap.Has(series) {
			t.Errorf("missing %s in exposition:\n%s", series, buf.String())
		}
	}
	if snap.Value("napel_process_alloc_bytes_total") <= 0 {
		t.Error("a running test process must have allocated something")
	}
	if snap.Value("napel_process_goroutines") < 1 {
		t.Error("goroutine gauge must be at least 1")
	}
}
