package obs

import (
	"bytes"
	"strings"
	"testing"
)

// The parser must read back exactly what WriteText writes: every kind of
// family, labeled and bare, histogram components included.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "").Add(7)
	r.Gauge("t_inflight", "").Set(3.5)
	cv := r.CounterVec("t_by_endpoint_total", "", "endpoint", "class")
	cv.With("predict", "2xx").Add(11)
	cv.With("predict", "5xx").Add(2)
	cv.With("with space", `qu"ote`).Add(1)
	h := r.Histogram("t_latency_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterFunc("t_func_total", "", func() float64 { return 42 })

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, buf.String())
	}

	cases := map[string]float64{
		"t_requests_total": 7,
		"t_inflight":       3.5,
		`t_by_endpoint_total{endpoint="predict",class="2xx"}`: 11,
		`t_by_endpoint_total{endpoint="predict",class="5xx"}`: 2,
		"t_func_total":                        42,
		`t_latency_seconds_bucket{le="0.1"}`:  1,
		`t_latency_seconds_bucket{le="1"}`:    2,
		`t_latency_seconds_bucket{le="+Inf"}`: 3,
		"t_latency_seconds_count":             3,
	}
	for series, want := range cases {
		if got := snap.Value(series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	if !snap.Has("t_requests_total") || snap.Has("t_missing") {
		t.Error("Has misreports series presence")
	}
	if got := snap.SumFamily("t_by_endpoint_total"); got != 14 {
		t.Errorf("SumFamily = %g, want 14 (labeled series incl. escaped labels)", got)
	}
	// _bucket series are their own family, not folded into the base name.
	if got := snap.SumFamily("t_latency_seconds"); got != 0 {
		t.Errorf("SumFamily(histogram base) = %g, want 0", got)
	}
}

func TestParseTextDeltas(t *testing.T) {
	before, err := ParseText(strings.NewReader("a_total 10\nb_total{x=\"1\"} 5\nb_total{x=\"2\"} 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := ParseText(strings.NewReader("a_total 25\nb_total{x=\"1\"} 9\nb_total{x=\"2\"} 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d := after.Delta(before, "a_total"); d != 15 {
		t.Errorf("Delta = %g, want 15", d)
	}
	if d := after.DeltaFamily(before, "b_total"); d != 6 {
		t.Errorf("DeltaFamily = %g, want 6", d)
	}
	// A series absent from the earlier scrape deltas from zero.
	if d := after.Delta(Snapshot{}, "a_total"); d != 25 {
		t.Errorf("Delta vs empty = %g, want 25", d)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"no_value_here\n", "name notanumber\n"} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
	// Blank lines and comments alone are a valid (empty) scrape.
	snap, err := ParseText(strings.NewReader("\n# HELP x y\n# TYPE x counter\n"))
	if err != nil || len(snap) != 0 {
		t.Errorf("comment-only scrape: snap=%v err=%v", snap, err)
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"napel_process_alloc_bytes_total",
		"napel_process_mallocs_total",
		"napel_process_gc_cycles_total",
		"napel_process_gc_pause_seconds_total",
		"napel_process_heap_alloc_bytes",
		"napel_process_goroutines",
	} {
		if !snap.Has(series) {
			t.Errorf("missing %s in exposition:\n%s", series, buf.String())
		}
	}
	if snap.Value("napel_process_alloc_bytes_total") <= 0 {
		t.Error("a running test process must have allocated something")
	}
	if snap.Value("napel_process_goroutines") < 1 {
		t.Error("goroutine gauge must be at least 1")
	}
}
