package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is the exported form of a completed span — what the ring
// buffer retains and the JSONL sink writes, one object per line.
type SpanRecord struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	// DurationSeconds is End-Start in seconds.
	DurationSeconds float64 `json:"duration_seconds"`
	Attrs           []Attr  `json:"attrs,omitempty"`
}

// Tracer collects completed spans into a bounded in-memory ring (the
// backing store of /debug/traces) and, optionally, a JSONL sink.
// Methods are safe for concurrent use.
type Tracer struct {
	mu   sync.Mutex
	ring []SpanRecord // circular; len==cap once full
	next int          // ring insertion point
	size int

	sinkMu sync.Mutex
	sink   io.Writer

	// push, when set, receives every exported span for delivery to an
	// obsd aggregator. An atomic pointer so the unset (common) case
	// costs one load on the export path and nothing on the span path.
	push atomic.Pointer[Pusher]

	seed  uint64
	idctr atomic.Uint64
}

// DefaultRingSize is the span retention of a tracer built with ring
// size <= 0.
const DefaultRingSize = 512

// NewTracer returns a tracer retaining the last ringSize completed
// spans (<= 0 means DefaultRingSize). A non-nil sink additionally
// receives every completed span as one JSON line.
func NewTracer(ringSize int, sink io.Writer) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	var seed [8]byte
	rand.Read(seed[:])
	return &Tracer{
		size: ringSize,
		ring: make([]SpanRecord, 0, ringSize),
		sink: sink,
		seed: binary.LittleEndian.Uint64(seed[:]),
	}
}

// newID derives a unique 64-bit id: a process-random seed mixed with a
// counter through splitmix64, so ids never collide within a tracer and
// are unpredictable across processes.
func (t *Tracer) newID() uint64 {
	x := t.seed + t.idctr.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// SetPusher attaches (or, with nil, detaches) a span push exporter:
// every subsequently exported span is also enqueued for delivery to the
// aggregation plane. The caller owns the pusher's lifecycle (Close).
func (t *Tracer) SetPusher(p *Pusher) {
	t.push.Store(p)
}

// Record exports a complete span record directly — for callers that
// synthesize spans with externally determined identities, like
// napel-loadgen's deterministic seed-derived client spans.
func (t *Tracer) Record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.export(rec)
}

func (t *Tracer) export(rec SpanRecord) {
	t.mu.Lock()
	if len(t.ring) < t.size {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % t.size
	t.mu.Unlock()

	if p := t.push.Load(); p != nil {
		p.Enqueue(rec)
	}

	if t.sink != nil {
		line, err := json.Marshal(rec)
		if err != nil {
			return
		}
		line = append(line, '\n')
		t.sinkMu.Lock()
		t.sink.Write(line)
		t.sinkMu.Unlock()
	}
}

// Snapshot returns the retained span records, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) == t.size {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Span is one timed operation within a trace. A nil *Span is valid and
// inert: every method is a no-op, which is what StartSpan returns when
// the context carries no tracer. A span's attributes belong to the
// goroutine that started it; End must be called exactly once.
type Span struct {
	tracer   *Tracer
	name     string
	traceID  uint64
	spanID   uint64
	parentID uint64
	start    time.Time
	attrs    []Attr
	ended    atomic.Bool
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context whose StartSpan calls record into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFromContext returns the context's tracer, or nil.
func TracerFromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name under the context's active span
// (same trace), under a remote span context extracted from an incoming
// request (joining the caller's trace), or as a new trace root, using
// the context's tracer. With no tracer on the context it returns
// (ctx, nil) — the nil span's methods all no-op, so call sites need no
// conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	var tracer *Tracer
	if parent != nil {
		tracer = parent.tracer
	} else {
		tracer = TracerFromContext(ctx)
	}
	if tracer == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: tracer,
		name:   name,
		spanID: tracer.newID(),
		start:  time.Now(),
	}
	switch {
	case parent != nil:
		s.traceID = parent.traceID
		s.parentID = parent.spanID
	default:
		if rc, ok := RemoteFromContext(ctx); ok && rc.Valid() {
			s.traceID = rc.TraceID
			s.parentID = rc.SpanID
		} else {
			s.traceID = tracer.newID()
		}
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value; no-op on nil.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// SetError records err on the span; no-op on nil or nil error.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: "error", Value: err.Error()})
}

// TraceID returns the span's 16-hex-digit trace id, or "" on nil.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return formatID(s.traceID)
}

// SpanID returns the span's 16-hex-digit id, or "" on nil.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return formatID(s.spanID)
}

// Discard completes the span without exporting it — for optimistic
// spans whose operation turned out to be a no-op, like a worker's idle
// lease poll. Safe on nil; a span already ended stays exported.
func (s *Span) Discard() {
	if s == nil {
		return
	}
	s.ended.CompareAndSwap(false, true)
}

// End completes the span and exports it. Safe on nil; second and later
// calls are ignored.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	rec := SpanRecord{
		TraceID:         formatID(s.traceID),
		SpanID:          formatID(s.spanID),
		Name:            s.name,
		Start:           s.start,
		DurationSeconds: time.Since(s.start).Seconds(),
		Attrs:           s.attrs,
	}
	if s.parentID != 0 {
		rec.ParentID = formatID(s.parentID)
	}
	s.tracer.export(rec)
}

func formatID(id uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[id&0xf]
		id >>= 4
	}
	return string(b[:])
}
