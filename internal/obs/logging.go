package obs

import (
	"context"
	"log/slog"
)

// logHandler decorates records with the active span's identifiers so
// log lines and /debug/traces entries correlate on trace_id.
type logHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner so every record logged with a context that
// carries an active span gains trace_id and span_id attributes.
func NewLogHandler(inner slog.Handler) slog.Handler {
	return &logHandler{inner: inner}
}

func (h *logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if span := SpanFromContext(ctx); span != nil {
		rec.AddAttrs(
			slog.String("trace_id", span.TraceID()),
			slog.String("span_id", span.SpanID()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	return &logHandler{inner: h.inner.WithGroup(name)}
}
