package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// SpanBatch is the wire format of POST /v1/spans: one process's
// completed spans, stamped with the process name so the aggregation
// plane can tell whose ring each span came from.
type SpanBatch struct {
	Process string       `json:"process"`
	Spans   []SpanRecord `json:"spans"`
}

// PushConfig configures a span push exporter.
type PushConfig struct {
	// URL is the aggregator base URL (e.g. http://obsd:9200); the
	// exporter POSTs to URL + "/v1/spans".
	URL string
	// Process names this process in every batch (e.g. "napel-serve").
	Process string
	// Client defaults to a dedicated client with a 5s timeout.
	Client *http.Client
	// Buffer bounds the spans queued for export (default 1024). When
	// full, new spans are counted and dropped — the serving path never
	// blocks on the aggregator.
	Buffer int
	// BatchSize flushes a batch once it holds this many spans
	// (default 64).
	BatchSize int
	// FlushInterval flushes a partial batch at least this often
	// (default 1s).
	FlushInterval time.Duration
}

// Pusher exports completed spans to an obsd aggregator in bounded,
// batched POSTs. Enqueue never blocks: a full buffer drops the span and
// counts the drop, so tracing overhead stays flat no matter how slow or
// absent the aggregator is. Attach to a tracer with Tracer.SetPusher;
// when no pusher is set, the tracer's export path does a single atomic
// load and nothing else.
type Pusher struct {
	url     string
	process string
	client  *http.Client

	ch   chan SpanRecord
	stop chan struct{}
	done chan struct{}
	once sync.Once

	batch    int
	interval time.Duration

	sent    atomic.Uint64
	batches atomic.Uint64
	dropped atomic.Uint64
	errs    atomic.Uint64
}

// NewPusher starts a background exporter posting to cfg.URL/v1/spans.
// Call Close to flush and stop it.
func NewPusher(cfg PushConfig) *Pusher {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Process == "" {
		cfg.Process = "unknown"
	}
	url := cfg.URL
	for len(url) > 0 && url[len(url)-1] == '/' {
		url = url[:len(url)-1]
	}
	p := &Pusher{
		url:      url + "/v1/spans",
		process:  cfg.Process,
		client:   cfg.Client,
		ch:       make(chan SpanRecord, cfg.Buffer),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		batch:    cfg.BatchSize,
		interval: cfg.FlushInterval,
	}
	go p.run()
	return p
}

// Enqueue queues rec for export, dropping (and counting) when the
// buffer is full. Never blocks.
func (p *Pusher) Enqueue(rec SpanRecord) {
	select {
	case p.ch <- rec:
	default:
		p.dropped.Add(1)
	}
}

// Dropped returns the spans discarded because the buffer was full.
func (p *Pusher) Dropped() uint64 { return p.dropped.Load() }

// Sent returns the spans successfully delivered to the aggregator.
func (p *Pusher) Sent() uint64 { return p.sent.Load() }

// Close drains the buffer, flushes the final batch, and stops the
// exporter. Safe to call more than once.
func (p *Pusher) Close() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
}

// Register exposes the exporter's own health on reg, so a scrape of the
// pushing process shows whether its spans are actually arriving.
func (p *Pusher) Register(reg *Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("napel_trace_push_spans_total",
		"Spans delivered to the trace aggregator.",
		func() float64 { return float64(p.sent.Load()) })
	reg.CounterFunc("napel_trace_push_dropped_total",
		"Spans dropped because the export buffer was full.",
		func() float64 { return float64(p.dropped.Load()) })
	reg.CounterFunc("napel_trace_push_errors_total",
		"Export batches that failed to deliver.",
		func() float64 { return float64(p.errs.Load()) })
}

func (p *Pusher) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	buf := make([]SpanRecord, 0, p.batch)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		p.post(buf)
		buf = buf[:0]
	}
	for {
		select {
		case rec := <-p.ch:
			buf = append(buf, rec)
			if len(buf) >= p.batch {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-p.stop:
			for {
				select {
				case rec := <-p.ch:
					buf = append(buf, rec)
					if len(buf) >= p.batch {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

func (p *Pusher) post(spans []SpanRecord) {
	body, err := json.Marshal(SpanBatch{Process: p.process, Spans: spans})
	if err != nil {
		p.errs.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url, bytes.NewReader(body))
	if err != nil {
		p.errs.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		p.errs.Add(1)
		return
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		p.errs.Add(1)
		return
	}
	p.sent.Add(uint64(len(spans)))
	p.batches.Add(1)
}
