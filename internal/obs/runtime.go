package obs

import (
	"runtime"
	"sync"
	"time"
)

// memReader caches one runtime.MemStats read per scrape burst: the
// registry evaluates each registered func independently, and
// ReadMemStats briefly stops the world, so the process metrics below
// share a snapshot no older than memStatsTTL instead of paying four
// stop-the-world reads per scrape.
type memReader struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

const memStatsTTL = 50 * time.Millisecond

func (m *memReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > memStatsTTL {
		runtime.ReadMemStats(&m.ms)
		m.at = time.Now()
	}
	return m.ms
}

// RegisterRuntimeMetrics exposes the Go runtime's allocation, GC and
// scheduler numbers as napel_process_* series on r. These are the
// denominators of performance attribution: napel-loadgen scrapes them
// before and after a run and divides the deltas by the requests it
// issued, turning "the server allocates too much" into a per-request
// number a BENCH report can gate on.
func RegisterRuntimeMetrics(r *Registry) {
	mr := &memReader{}
	r.CounterFunc("napel_process_alloc_bytes_total",
		"Cumulative bytes allocated on the heap (runtime.MemStats.TotalAlloc).",
		func() float64 { return float64(mr.read().TotalAlloc) })
	r.CounterFunc("napel_process_mallocs_total",
		"Cumulative heap objects allocated (runtime.MemStats.Mallocs).",
		func() float64 { return float64(mr.read().Mallocs) })
	r.CounterFunc("napel_process_gc_cycles_total",
		"Completed garbage-collection cycles (runtime.MemStats.NumGC).",
		func() float64 { return float64(mr.read().NumGC) })
	r.CounterFunc("napel_process_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(mr.read().PauseTotalNs) / 1e9 })
	r.GaugeFunc("napel_process_heap_alloc_bytes",
		"Bytes of live heap (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(mr.read().HeapAlloc) })
	r.GaugeFunc("napel_process_goroutines",
		"Goroutines currently live.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
