package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is one parsed scrape of a Prometheus text exposition: every
// sample line keyed by its full series identity (name plus the label
// block exactly as written). It is the read side of WriteText, used by
// napel-loadgen to scrape a server's /metrics before and after a run and
// attribute allocations, GC work and cache behavior to the load between
// the two scrapes.
type Snapshot map[string]float64

// ParseText parses text exposition format 0.0.4 as produced by
// Registry.WriteText: comment/HELP/TYPE lines are skipped, each sample
// line becomes one Snapshot entry. Unparseable sample lines are an
// error — a scrape either parses completely or not at all.
func ParseText(r io.Reader) (Snapshot, error) {
	snap := Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// The value is the last space-separated field; the series (name
		// plus optional label block, which may itself contain spaces
		// inside quoted values) is everything before it.
		cut := strings.LastIndexByte(text, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("obs: exposition line %d has no value: %q", line, text)
		}
		series := strings.TrimSpace(text[:cut])
		v, err := strconv.ParseFloat(text[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d value: %w", line, err)
		}
		snap[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// Value returns the sample for the exact series identity (including any
// label block), or 0 when absent.
func (s Snapshot) Value(series string) float64 { return s[series] }

// Has reports whether the exact series identity was scraped.
func (s Snapshot) Has(series string) bool {
	_, ok := s[series]
	return ok
}

// SumFamily sums every series of the named family: the bare name and
// any labeled variants name{...}. Histogram component series (_bucket,
// _sum, _count) are distinct families and are not folded in.
func (s Snapshot) SumFamily(name string) float64 {
	total := 0.0
	prefix := name + "{"
	for series, v := range s {
		if series == name || strings.HasPrefix(series, prefix) {
			total += v
		}
	}
	return total
}

// Delta returns the per-series change from before to s for the exact
// series identity — the standard before/after attribution for counters.
func (s Snapshot) Delta(before Snapshot, series string) float64 {
	return s[series] - before[series]
}

// DeltaFamily returns the change in SumFamily from before to s.
func (s Snapshot) DeltaFamily(before Snapshot, name string) float64 {
	return s.SumFamily(name) - before.SumFamily(name)
}
