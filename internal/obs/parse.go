package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is one parsed scrape of a Prometheus text exposition: every
// sample line keyed by its full series identity (name plus the label
// block in canonical escaped form — identical to how WriteText renders
// it). It is the read side of WriteText, used by napel-loadgen to
// scrape a server's /metrics before and after a run and attribute
// allocations, GC work and cache behavior to the load between the two
// scrapes, and by napel-obsd to merge fleet scrapes.
type Snapshot map[string]float64

// Label is one parsed name="value" pair, value unescaped.
type Label struct {
	Name  string
	Value string
}

// Sample is one parsed sample line: the member name as written
// (including _bucket/_sum/_count suffixes), its labels in written
// order, and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Key renders the sample's canonical series identity: the name, plus —
// when labeled — the label block with values re-escaped exactly as
// WriteText escapes them, so keys survive a parse→render round trip.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Exposition is a fully parsed text scrape: samples in written order
// plus the HELP/TYPE metadata, which the format allows in any order
// relative to the samples (and which some exporters interleave).
type Exposition struct {
	Samples []Sample
	Types   map[string]string // family name -> counter|gauge|histogram|...
	Help    map[string]string // family name -> help text, unescaped
}

// ParseExposition parses text exposition format 0.0.4 structurally:
// label blocks are decoded (escaped quotes, backslashes and newlines in
// values), sample values accept the full float grammar including +Inf
// and NaN, optional trailing timestamps are tolerated, and HELP/TYPE
// blocks are collected wherever they appear. Unparseable sample lines
// are an error — a scrape either parses completely or not at all.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Types: make(map[string]string),
		Help:  make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '#' {
			parseComment(exp, text)
			continue
		}
		sample, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w (%q)", line, err, text)
		}
		exp.Samples = append(exp.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// ParseText parses a scrape into the flat Snapshot form. It shares
// ParseExposition's grammar, so escaped label values, ±Inf samples and
// out-of-order metadata all round-trip.
func ParseText(r io.Reader) (Snapshot, error) {
	exp, err := ParseExposition(r)
	if err != nil {
		return nil, err
	}
	snap := make(Snapshot, len(exp.Samples))
	for _, s := range exp.Samples {
		snap[s.Key()] = s.Value
	}
	return snap, nil
}

func parseComment(exp *Exposition, text string) {
	rest := strings.TrimSpace(text[1:])
	kw, arg, ok := strings.Cut(rest, " ")
	if !ok {
		return
	}
	switch kw {
	case "HELP":
		name, help, _ := strings.Cut(arg, " ")
		exp.Help[name] = unescapeHelp(help)
	case "TYPE":
		name, typ, ok := strings.Cut(arg, " ")
		if ok {
			exp.Types[name] = typ
		}
	}
}

// unescapeHelp reverses escapeHelp: \\ and \n sequences.
func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func parseSample(text string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(text) && isNameChar(text[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("missing metric name")
	}
	s.Name = text[:i]
	i = skipSpace(text, i)

	if i < len(text) && text[i] == '{' {
		i++
		for {
			i = skipSpace(text, i)
			if i >= len(text) {
				return s, fmt.Errorf("unterminated label block")
			}
			if text[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(text) && isNameChar(text[j], j == i) {
				j++
			}
			if j == i {
				return s, fmt.Errorf("missing label name")
			}
			lname := text[i:j]
			j = skipSpace(text, j)
			if j >= len(text) || text[j] != '=' {
				return s, fmt.Errorf("label %q missing '='", lname)
			}
			j = skipSpace(text, j+1)
			if j >= len(text) || text[j] != '"' {
				return s, fmt.Errorf("label %q value not quoted", lname)
			}
			value, next, err := parseQuoted(text, j)
			if err != nil {
				return s, fmt.Errorf("label %q: %w", lname, err)
			}
			s.Labels = append(s.Labels, Label{Name: lname, Value: value})
			i = skipSpace(text, next)
			if i < len(text) && text[i] == ',' {
				i++
			}
		}
		i = skipSpace(text, i)
	}

	if i >= len(text) {
		return s, fmt.Errorf("no value")
	}
	j := i
	for j < len(text) && text[j] != ' ' && text[j] != '\t' {
		j++
	}
	v, err := strconv.ParseFloat(text[i:j], 64)
	if err != nil {
		return s, fmt.Errorf("value: %w", err)
	}
	s.Value = v

	// Optional millisecond timestamp; anything else trailing is junk.
	rest := strings.TrimSpace(text[j:])
	if rest != "" {
		if _, err := strconv.ParseInt(rest, 10, 64); err != nil {
			return s, fmt.Errorf("trailing garbage %q", rest)
		}
	}
	return s, nil
}

// parseQuoted decodes a double-quoted label value starting at the
// opening quote text[i]; returns the unescaped value and the index just
// past the closing quote. Escapes: \\ \" \n; a lone backslash before
// any other byte passes through untouched (lenient, like Prometheus).
func parseQuoted(text string, i int) (string, int, error) {
	var b strings.Builder
	for i++; i < len(text); i++ {
		switch text[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(text) {
				return "", 0, fmt.Errorf("unterminated escape")
			}
			i++
			switch text[i] {
			case '\\', '"':
				b.WriteByte(text[i])
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte('\\')
				b.WriteByte(text[i])
			}
		default:
			b.WriteByte(text[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value")
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func skipSpace(text string, i int) int {
	for i < len(text) && (text[i] == ' ' || text[i] == '\t') {
		i++
	}
	return i
}

// Value returns the sample for the exact series identity (including any
// label block), or 0 when absent.
func (s Snapshot) Value(series string) float64 { return s[series] }

// Has reports whether the exact series identity was scraped.
func (s Snapshot) Has(series string) bool {
	_, ok := s[series]
	return ok
}

// SumFamily sums every series of the named family: the bare name and
// any labeled variants name{...}. Histogram component series (_bucket,
// _sum, _count) are distinct families and are not folded in.
func (s Snapshot) SumFamily(name string) float64 {
	total := 0.0
	prefix := name + "{"
	for series, v := range s {
		if series == name || strings.HasPrefix(series, prefix) {
			total += v
		}
	}
	return total
}

// Delta returns the per-series change from before to s for the exact
// series identity — the standard before/after attribution for counters.
func (s Snapshot) Delta(before Snapshot, series string) float64 {
	return s[series] - before[series]
}

// DeltaFamily returns the change in SumFamily from before to s.
func (s Snapshot) DeltaFamily(before Snapshot, name string) float64 {
	return s.SumFamily(name) - before.SumFamily(name)
}
