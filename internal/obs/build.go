package obs

import (
	"runtime"
	"runtime/debug"
)

// Revision best-efforts the binary's VCS identity: the (abbreviated)
// git revision with a -dirty suffix, the module version, or "devel" in
// tests and unstamped builds.
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev, dirty string
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}

// VersionLine is the one-line identity a binary prints for -version.
func VersionLine(binary string) string {
	return binary + " " + Revision() + " (" + runtime.Version() + ")"
}

// RegisterBuildInfo exposes the binary's identity as the constant-1
// gauge napel_build_info{binary,go_version,revision} on r.
func RegisterBuildInfo(r *Registry, binary string) {
	r.GaugeVec("napel_build_info",
		"Build identity of this binary; constant 1.",
		"binary", "go_version", "revision").
		With(binary, runtime.Version(), Revision()).Set(1)
}
