package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestStartSpanWithoutTracerIsInert(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "nothing")
	if span != nil {
		t.Fatal("want nil span without a tracer")
	}
	// Every method must be a no-op on nil.
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 1)
	span.SetError(fmt.Errorf("boom"))
	span.End()
	if span.TraceID() != "" || span.SpanID() != "" {
		t.Fatal("nil span has ids")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("inert StartSpan attached a span to the context")
	}
}

func TestSpanNestingAndExport(t *testing.T) {
	tr := NewTracer(16, nil)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "request")
	root.SetAttr("endpoint", "predict")
	cctx, child := StartSpan(ctx, "cache")
	child.End()
	_, child2 := StartSpan(ctx, "predict")
	child2.SetAttrInt("items", 3)
	child2.End()
	root.End()
	_ = cctx

	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	rootRec := byName["request"]
	if rootRec.ParentID != "" {
		t.Fatalf("root has parent %q", rootRec.ParentID)
	}
	for _, name := range []string{"cache", "predict"} {
		r := byName[name]
		if r.TraceID != rootRec.TraceID {
			t.Fatalf("%s trace id %q != root %q", name, r.TraceID, rootRec.TraceID)
		}
		if r.ParentID != rootRec.SpanID {
			t.Fatalf("%s parent %q != root span %q", name, r.ParentID, rootRec.SpanID)
		}
	}
	if got := byName["predict"].Attrs; len(got) != 1 || got[0].Value != "3" {
		t.Fatalf("predict attrs = %+v", got)
	}
	// Double End is idempotent.
	root.End()
	if n := len(tr.Snapshot()); n != 3 {
		t.Fatalf("double End re-exported: %d records", n)
	}
}

func TestTracerRingRetention(t *testing.T) {
	tr := NewTracer(4, nil)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, s := StartSpan(ctx, fmt.Sprintf("s%d", i))
		s.End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("s%d", 6+i); r.Name != want {
			t.Fatalf("ring[%d] = %s, want %s (oldest-first order)", i, r.Name, want)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4, &buf)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx, "inner")
	inner.End()
	root.End()

	sc := bufio.NewScanner(&buf)
	var lines []SpanRecord
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("sink line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("sink has %d lines, want 2", len(lines))
	}
	// Spans export at End, so inner lands first.
	if lines[0].Name != "inner" || lines[1].Name != "outer" {
		t.Fatalf("sink order: %s, %s", lines[0].Name, lines[1].Name)
	}
	if lines[0].TraceID != lines[1].TraceID {
		t.Fatal("sink spans have different trace ids")
	}
}

func TestTracesHandlerFilters(t *testing.T) {
	tr := NewTracer(32, nil)
	ctx := WithTracer(context.Background(), tr)

	sctx, slow := StartSpan(ctx, "slow-op")
	_, sub := StartSpan(sctx, "substep")
	sub.End()
	time.Sleep(30 * time.Millisecond)
	slow.End()
	_, fast := StartSpan(ctx, "fast-op")
	fast.End()

	get := func(query string) map[string]any {
		t.Helper()
		rr := httptest.NewRecorder()
		tr.TracesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces"+query, nil))
		if rr.Code != 200 {
			t.Fatalf("GET /debug/traces%s -> %d: %s", query, rr.Code, rr.Body)
		}
		var out map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if out := get(""); out["count"].(float64) != 2 {
		t.Fatalf("unfiltered count = %v", out["count"])
	}
	out := get("?name=substep")
	if out["count"].(float64) != 1 {
		t.Fatalf("name filter count = %v", out["count"])
	}
	traces := out["traces"].([]any)
	group := traces[0].(map[string]any)
	if group["name"] != "slow-op" {
		t.Fatalf("filtered trace root = %v", group["name"])
	}
	if spans := group["spans"].([]any); len(spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(spans))
	}
	if out := get("?min_duration=20ms"); out["count"].(float64) != 1 {
		t.Fatalf("min_duration filter count = %v", out["count"])
	}
	if out := get("?min_duration=10h"); out["count"].(float64) != 0 {
		t.Fatalf("10h min_duration count = %v", out["count"])
	}
	rr := httptest.NewRecorder()
	tr.TracesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?min_duration=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bogus min_duration -> %d, want 400", rr.Code)
	}
}

// A trace whose root span lives in another process (remote parent) must
// still surface in /debug/traces, rooted at its earliest
// remote-parented span — not vanish because no local span is parentless.
func TestTracesHandlerSurfacesOrphans(t *testing.T) {
	tr := NewTracer(32, nil)
	ctx := ContextWithRemote(WithTracer(context.Background(), tr), SpanContext{TraceID: 0xcafe, SpanID: 0xd00d})
	sctx, joined := StartSpan(ctx, "remote-child")
	_, sub := StartSpan(sctx, "substep")
	sub.End()
	time.Sleep(25 * time.Millisecond)
	joined.End()

	rr := httptest.NewRecorder()
	tr.TracesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?min_duration=10ms", nil))
	if rr.Code != 200 {
		t.Fatalf("GET -> %d: %s", rr.Code, rr.Body)
	}
	var out map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["count"].(float64) != 1 {
		t.Fatalf("orphan trace dropped: %s", rr.Body)
	}
	group := out["traces"].([]any)[0].(map[string]any)
	if group["name"] != "remote-child" {
		t.Fatalf("orphan root name = %v, want remote-child", group["name"])
	}
	if group["orphan"] != true {
		t.Fatalf("orphan trace not marked: %v", group)
	}
	if group["trace_id"] != formatID(0xcafe) {
		t.Fatalf("trace id = %v, want %s", group["trace_id"], formatID(0xcafe))
	}
	if group["duration_seconds"].(float64) < 0.01 {
		t.Fatalf("orphan root duration = %v, want the joined span's", group["duration_seconds"])
	}
}

func TestLogHandlerStampsTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewTextHandler(&buf, nil)))
	tr := NewTracer(4, nil)
	ctx := WithTracer(context.Background(), tr)
	ctx, span := StartSpan(ctx, "op")
	logger.InfoContext(ctx, "inside span")
	logger.InfoContext(context.Background(), "outside span")
	span.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines", len(lines))
	}
	if !strings.Contains(lines[0], "trace_id="+span.TraceID()) ||
		!strings.Contains(lines[0], "span_id="+span.SpanID()) {
		t.Fatalf("in-span log line missing ids: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace_id=") {
		t.Fatalf("out-of-span log line has a trace id: %s", lines[1])
	}
}

func TestRuntimeHandler(t *testing.T) {
	rr := httptest.NewRecorder()
	RuntimeHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/runtime", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var snap map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap["goroutines"].(float64) < 1 || snap["heap_alloc_bytes"].(float64) <= 0 {
		t.Fatalf("implausible snapshot: %v", snap)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "napel-test")
	var b strings.Builder
	r.WriteText(&b)
	text := b.String()
	if !strings.Contains(text, `napel_build_info{binary="napel-test",go_version="go`) ||
		!strings.Contains(text, "} 1\n") {
		t.Fatalf("build info gauge malformed:\n%s", text)
	}
}
