package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// ContentType is the Prometheus text exposition format media type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in the Prometheus text
// exposition format: families sorted by name, series sorted by label
// values, one HELP/TYPE pair per family, label values escaped per the
// format's rules. Scrapes are safe concurrently with observations —
// values are read atomically, so a scrape sees some consistent-enough
// interleaving, never a torn value.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		writeHeader(bw, f)
		switch f.kind {
		case kindCounterFunc, kindGaugeFunc:
			f.seriesMu.Lock()
			fn := f.fn
			f.seriesMu.Unlock()
			v := 0.0
			if fn != nil {
				v = fn()
			}
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(v))
			bw.WriteByte('\n')
			continue
		}
		series := f.load()
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			var values []string
			if len(f.labels) > 0 {
				values = splitSeriesKey(key, len(f.labels))
			}
			switch m := series[key].(type) {
			case *Counter:
				writeSample(bw, f.name, "", f.labels, values, "", strconv.FormatUint(m.Value(), 10))
			case *Gauge:
				writeSample(bw, f.name, "", f.labels, values, "", formatFloat(m.Value()))
			case *Histogram:
				cum := uint64(0)
				for i, bound := range m.bounds {
					cum += m.buckets[i].Load()
					writeSample(bw, f.name, "_bucket", f.labels, values,
						formatFloat(bound), strconv.FormatUint(cum, 10))
				}
				cum += m.buckets[len(m.bounds)].Load()
				writeSample(bw, f.name, "_bucket", f.labels, values, "+Inf", strconv.FormatUint(cum, 10))
				writeSample(bw, f.name, "_sum", f.labels, values, "", formatFloat(m.Sum()))
				writeSample(bw, f.name, "_count", f.labels, values, "", strconv.FormatUint(m.Count(), 10))
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving WriteText with the canonical
// exposition Content-Type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}

func writeHeader(w *bufio.Writer, f *family) {
	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')
}

// writeSample emits one line: name+suffix{labels...,le="..."} value.
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, le, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabelValue(values[i]))
			w.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// escapeLabelValue applies the exposition format's label-value escapes:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	if !needsEscape(s, true) {
		return s
	}
	out := make([]byte, 0, len(s)+8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// escapeHelp escapes HELP text: backslash and newline only (quotes are
// legal there).
func escapeHelp(s string) string {
	if !needsEscape(s, false) {
		return s
	}
	out := make([]byte, 0, len(s)+8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func needsEscape(s string, quote bool) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\', '\n':
			return true
		case '"':
			if quote {
				return true
			}
		}
	}
	return false
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
