package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// traceGroup is one trace in a /debug/traces response: its spans,
// oldest first, with the root (parentless) span determining the
// trace-level name and duration used by the filters.
type traceGroup struct {
	TraceID         string       `json:"trace_id"`
	Name            string       `json:"name,omitempty"`
	Start           time.Time    `json:"start"`
	DurationSeconds float64      `json:"duration_seconds"`
	// Orphan marks a trace with no local root: every span has a parent,
	// but the parent span never arrived in this process's ring — the
	// normal shape for a trace that began in another process (a remote
	// caller propagated its context here) or whose root was evicted.
	Orphan bool         `json:"orphan,omitempty"`
	Spans  []SpanRecord `json:"spans"`
}

// TracesHandler serves the tracer's retained spans as JSON, grouped
// into traces, newest first. Query parameters:
//
//	name=S            only traces containing a span named S
//	min_duration=D    only traces whose root span lasted >= D
//	                  (a Go duration: 50ms, 1.5s, ...)
//	limit=N           at most N traces (default 50)
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var minDur time.Duration
		if v := q.Get("min_duration"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min_duration: "+err.Error(), http.StatusBadRequest)
				return
			}
			minDur = d
		}
		limit := 50
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		nameFilter := q.Get("name")

		byTrace := map[string]*traceGroup{}
		var order []string
		for _, rec := range t.Snapshot() {
			g, ok := byTrace[rec.TraceID]
			if !ok {
				g = &traceGroup{TraceID: rec.TraceID}
				byTrace[rec.TraceID] = g
				order = append(order, rec.TraceID)
			}
			g.Spans = append(g.Spans, rec)
		}
		groups := make([]*traceGroup, 0, len(order))
		for _, id := range order {
			g := byTrace[id]
			sort.SliceStable(g.Spans, func(i, j int) bool {
				return g.Spans[i].Start.Before(g.Spans[j].Start)
			})
			root := -1
			for i, s := range g.Spans {
				if s.ParentID == "" {
					root = i
					break
				}
			}
			if root < 0 {
				// No local root: the parent lives in another process (or
				// was evicted). Surface the trace anyway, rooted at the
				// earliest span whose parent is not in this group, so
				// remote-parented traces pass the min_duration filter
				// instead of silently vanishing.
				g.Orphan = true
				local := make(map[string]bool, len(g.Spans))
				for _, s := range g.Spans {
					local[s.SpanID] = true
				}
				for i, s := range g.Spans {
					if !local[s.ParentID] {
						root = i
						break
					}
				}
				if root < 0 {
					root = 0
				}
			}
			g.Name = g.Spans[root].Name
			g.Start = g.Spans[root].Start
			g.DurationSeconds = g.Spans[root].DurationSeconds
			if nameFilter != "" && !containsSpan(g.Spans, nameFilter) {
				continue
			}
			if minDur > 0 && g.DurationSeconds < minDur.Seconds() {
				continue
			}
			groups = append(groups, g)
		}
		sort.SliceStable(groups, func(i, j int) bool { return groups[i].Start.After(groups[j].Start) })
		if len(groups) > limit {
			groups = groups[:limit]
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"count":  len(groups),
			"traces": groups,
		})
	})
}

func containsSpan(spans []SpanRecord, name string) bool {
	for _, s := range spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

// RuntimeHandler serves a point-in-time goroutine/GC/heap snapshot as
// JSON — the quick "is this process healthy" view; /debug/pprof has the
// deep profiles.
func RuntimeHandler() http.Handler {
	start := time.Now()
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"goroutines":           runtime.NumGoroutine(),
			"gomaxprocs":           runtime.GOMAXPROCS(0),
			"num_cpu":              runtime.NumCPU(),
			"go_version":           runtime.Version(),
			"uptime_seconds":       time.Since(start).Seconds(),
			"heap_alloc_bytes":     ms.HeapAlloc,
			"heap_sys_bytes":       ms.HeapSys,
			"heap_objects":         ms.HeapObjects,
			"stack_inuse_bytes":    ms.StackInuse,
			"gc_cycles":            ms.NumGC,
			"gc_pause_total_ns":    ms.PauseTotalNs,
			"gc_cpu_fraction":      ms.GCCPUFraction,
			"last_gc":              time.Unix(0, int64(ms.LastGC)),
			"next_gc_target_bytes": ms.NextGC,
		})
	})
}

// MountDebug attaches the runtime-introspection surface to an admin
// mux: /debug/traces (the tracer's ring as filterable JSON, when t is
// non-nil), /debug/pprof/* and /debug/runtime.
func MountDebug(mux *http.ServeMux, t *Tracer) {
	if t != nil {
		mux.Handle("/debug/traces", t.TracesHandler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/runtime", RuntimeHandler())
}
