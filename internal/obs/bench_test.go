package obs

import (
	"context"
	"io"
	"strings"
	"testing"
)

// The fast paths must stay allocation-free: these benchmarks are run
// with -benchmem and their numbers recorded in EXPERIMENTS.md;
// TestHotPathAllocationFree enforces the 0 allocs/op bound in the
// regular test suite.

func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkObsGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkObsHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

func BenchmarkObsVecWithHit(b *testing.B) {
	v := NewRegistry().CounterVec("bench_vec_total", "", "op")
	v.With("hot").Inc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("hot").Inc()
	}
}

func BenchmarkObsWriteText(b *testing.B) {
	r := NewRegistry()
	for _, ep := range []string{"predict", "suitability", "models", "healthz"} {
		r.CounterVec("bench_requests_total", "", "endpoint", "class").With(ep, "2xx").Add(100)
		r.HistogramVec("bench_duration_seconds", "", nil, "endpoint").With(ep).Observe(0.001)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.WriteText(io.Discard)
	}
}

func BenchmarkObsSpanStartEnd(b *testing.B) {
	tr := NewTracer(256, nil)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkObsSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkObsEscapeClean(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if escapeLabelValue("predict") != "predict" {
			b.Fatal("escape changed a clean value")
		}
	}
}

func BenchmarkObsEscapeHostile(b *testing.B) {
	s := strings.Repeat(`a"b\c`+"\n", 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		escapeLabelValue(s)
	}
}
