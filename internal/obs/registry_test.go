package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "help")
	if c1 != c2 {
		t.Fatal("Counter not get-or-create")
	}
	v := r.CounterVec("y_total", "help", "op")
	if v.With("a") != v.With("a") {
		t.Fatal("Vec.With not stable")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("distinct label values share a series")
	}
	h1 := r.Histogram("z_seconds", "help", nil)
	h2 := r.Histogram("z_seconds", "help", nil)
	if h1 != h2 {
		t.Fatal("Histogram not get-or-create")
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestWriteTextDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	// Register out of order; exposition must sort families and series.
	r.Counter("b_total", "b").Add(2)
	r.Gauge("a_gauge", "a").Set(1)
	v := r.CounterVec("c_total", "c", "k")
	v.With("z").Inc()
	v.With("m").Inc()
	v.With("a").Inc()

	first := render(t, r)
	for i := 0; i < 5; i++ {
		if got := render(t, r); got != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	ia := strings.Index(first, "a_gauge ")
	ib := strings.Index(first, "b_total ")
	ic := strings.Index(first, `c_total{k="a"}`)
	iz := strings.Index(first, `c_total{k="z"}`)
	if !(ia < ib && ib < ic && ic < iz) {
		t.Fatalf("families/series not sorted:\n%s", first)
	}
}

func TestWriteTextHelpAndType(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "Requests served.").Inc()
	r.Gauge("depth", "Queue depth.").Set(3)
	r.Histogram("lat_seconds", "Latency.", []float64{1}).Observe(0.5)
	r.GaugeFunc("up_seconds", "Uptime.", func() float64 { return 7 })
	r.CounterFunc("hits_total", "Cache hits.", func() float64 { return 9 })
	text := render(t, r)
	for _, want := range []string{
		"# HELP req_total Requests served.\n# TYPE req_total counter\nreq_total 1\n",
		"# HELP depth Queue depth.\n# TYPE depth gauge\ndepth 3\n",
		"# TYPE lat_seconds histogram\n",
		"# HELP up_seconds Uptime.\n# TYPE up_seconds gauge\nup_seconds 7\n",
		"# HELP hits_total Cache hits.\n# TYPE hits_total counter\nhits_total 9\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "", func() float64 { return 1 })
	r.GaugeFunc("g", "", func() float64 { return 2 })
	if text := render(t, r); !strings.Contains(text, "g 2\n") {
		t.Fatalf("re-registered GaugeFunc did not replace the function:\n%s", text)
	}
}

// unescapeLabelValue reverses the exposition escaping — the round-trip
// half of the conformance test.
func unescapeLabelValue(t *testing.T, s string) string {
	t.Helper()
	var out []byte
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			out = append(out, s[i])
			continue
		}
		i++
		if i >= len(s) {
			t.Fatalf("dangling backslash in %q", s)
		}
		switch s[i] {
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		case 'n':
			out = append(out, '\n')
		default:
			t.Fatalf("invalid escape \\%c in %q", s[i], s)
		}
	}
	return string(out)
}

func TestExpositionLabelEscapingRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`has "quotes"`,
		`back\slash`,
		"new\nline",
		`all "of\them` + "\ntogether\\",
	}
	r := NewRegistry()
	v := r.CounterVec("esc_total", "Escaping.", "val")
	for _, s := range hostile {
		v.With(s).Inc()
	}
	text := render(t, r)

	var got []string
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `esc_total{val="`) {
			continue
		}
		// Lines end `"} 1`; everything between the quotes is the
		// escaped value. The value itself cannot contain a raw quote
		// after escaping, so the bounds are unambiguous.
		inner := strings.TrimPrefix(line, `esc_total{val="`)
		end := strings.LastIndex(inner, `"} `)
		if end < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if strings.ContainsAny(inner[:end], "\n") {
			t.Fatalf("raw newline leaked into exposition line %q", line)
		}
		got = append(got, unescapeLabelValue(t, inner[:end]))
	}
	if len(got) != len(hostile) {
		t.Fatalf("got %d series, want %d:\n%s", len(got), len(hostile), text)
	}
	want := map[string]bool{}
	for _, s := range hostile {
		want[s] = true
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("round-tripped value %q not among the originals", s)
		}
	}
}

func TestHistogramInvariants(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	r := NewRegistry()
	h := r.Histogram("inv_seconds", "Invariants.", bounds)
	samples := []float64{0.05, 0.1, 0.5, 2, 50, 100}
	sum := 0.0
	for _, v := range samples {
		h.Observe(v)
		sum += v
	}
	text := render(t, r)

	// Parse the buckets back out.
	var cum []uint64
	var infCount uint64
	var gotSum float64
	var gotCount uint64
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, `inv_seconds_bucket{le="+Inf"}`):
			infCount = parseUint(t, line)
		case strings.HasPrefix(line, `inv_seconds_bucket{`):
			cum = append(cum, parseUint(t, line))
		case strings.HasPrefix(line, "inv_seconds_sum "):
			f, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil {
				t.Fatal(err)
			}
			gotSum = f
		case strings.HasPrefix(line, "inv_seconds_count "):
			gotCount = parseUint(t, line)
		}
	}
	if len(cum) != len(bounds) {
		t.Fatalf("got %d finite buckets, want %d:\n%s", len(cum), len(bounds), text)
	}
	// Buckets are cumulative and monotone.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not monotone: %v", cum)
		}
	}
	// +Inf bucket equals _count; boundary samples land in their bucket
	// (le is inclusive); sum matches.
	if infCount != uint64(len(samples)) || gotCount != uint64(len(samples)) {
		t.Fatalf("+Inf=%d count=%d, want both %d", infCount, gotCount, len(samples))
	}
	if cum[0] != 2 { // 0.05 and the inclusive 0.1
		t.Fatalf("le=0.1 bucket = %d, want 2", cum[0])
	}
	if math.Abs(gotSum-sum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", gotSum, sum)
	}
}

func parseUint(t *testing.T, line string) uint64 {
	t.Helper()
	fields := strings.Fields(line)
	v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", line, err)
	}
	return v
}

// TestConcurrentObserveScrape exercises every metric kind from many
// goroutines while scraping — the observe-vs-scrape race test run under
// -race by scripts/verify.sh.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "")
	g := r.Gauge("race_gauge", "")
	h := r.Histogram("race_seconds", "", nil)
	v := r.CounterVec("race_vec_total", "", "worker")

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := v.With(strconv.Itoa(w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / iters)
				mine.Inc()
				// New series appear while scrapes iterate the map.
				v.With(strconv.Itoa(w) + "-" + strconv.Itoa(i%5)).Inc()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Errorf("scrape: %v", err)
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Fatalf("gauge = %g, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", nil)
	vec := r.CounterVec("alloc_vec_total", "", "op")
	pre := vec.With("hot")

	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Set(1.5) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { pre.Add(1) }); n != 0 {
		t.Fatalf("pre-resolved vec counter allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { vec.With("hot").Inc() }); n != 0 {
		t.Fatalf("single-label With on an existing series allocates %.1f/op", n)
	}
}
