package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func scrapeRegistry(t *testing.T, reg *Registry) Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestTraceParentRoundTrip(t *testing.T) {
	h := FormatTraceParent(0xabc123, 0xdef456)
	if len(h) != 55 {
		t.Fatalf("header %q is %d bytes, want 55", h, len(h))
	}
	sc, ok := ParseTraceParent(h)
	if !ok {
		t.Fatalf("ParseTraceParent(%q) rejected own output", h)
	}
	if sc.TraceID != 0xabc123 || sc.SpanID != 0xdef456 {
		t.Fatalf("round trip = %+v, want {abc123 def456}", sc)
	}
}

func TestParseTraceParentHighHalfFallback(t *testing.T) {
	// A 128-bit upstream id whose low 64 bits are zero is still a legal
	// nonzero trace id; keep the high half rather than rejecting.
	h := "00-00000000000000ff0000000000000000-00000000000000aa-01"
	sc, ok := ParseTraceParent(h)
	if !ok || sc.TraceID != 0xff || sc.SpanID != 0xaa {
		t.Fatalf("high-half fallback: ok=%v sc=%+v", ok, sc)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-0000000000000000000000000000000a-000000000000000b", // too short
		"00-0000000000000000000000000000000a-000000000000000b-01-extra",
		"ff-0000000000000000000000000000000a-000000000000000b-01", // invalid version
		"00-0000000000000000000000000000000A-000000000000000b-01", // uppercase hex
		"00-00000000000000000000000000000000-000000000000000b-01", // zero trace
		"00-0000000000000000000000000000000a-0000000000000000-01", // zero span
		"00-000000000000000000000000000000zz-000000000000000b-01", // non-hex
		"0g-0000000000000000000000000000000a-000000000000000b-01", // non-hex version
		"00-0000000000000000000000000000000a-000000000000000b-0x", // non-hex flags
	} {
		if sc, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted garbage: %+v", bad, sc)
		}
	}
}

// A client span injected into a request must become the server span's
// parent, same trace, across a real HTTP hop.
func TestInjectExtractHTTPJoinsTrace(t *testing.T) {
	serverTracer := NewTracer(8, nil)
	var mu sync.Mutex
	var serverTrace, serverParent string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := ExtractHTTP(WithTracer(r.Context(), serverTracer), r)
		_, span := StartSpan(ctx, "server.op")
		mu.Lock()
		serverTrace, serverParent = span.TraceID(), span.SpanID()
		_ = serverParent
		mu.Unlock()
		span.End()
	}))
	defer srv.Close()

	clientTracer := NewTracer(8, nil)
	ctx, clientSpan := StartSpan(WithTracer(context.Background(), clientTracer), "client.op")
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	InjectHTTP(ctx, req)
	if req.Header.Get(TraceParentHeader) == "" {
		t.Fatal("InjectHTTP set no header despite an active span")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	clientSpan.End()

	mu.Lock()
	defer mu.Unlock()
	if serverTrace != clientSpan.TraceID() {
		t.Fatalf("server trace %s, client trace %s — hop broke the trace", serverTrace, clientSpan.TraceID())
	}
	recs := serverTracer.Snapshot()
	if len(recs) != 1 || recs[0].ParentID != clientSpan.SpanID() {
		t.Fatalf("server span %+v not parented under client span %s", recs, clientSpan.SpanID())
	}
}

func TestInjectHTTPWithoutContextIsInert(t *testing.T) {
	req, _ := http.NewRequest(http.MethodGet, "http://example/", nil)
	InjectHTTP(context.Background(), req)
	if h := req.Header.Get(TraceParentHeader); h != "" {
		t.Fatalf("InjectHTTP on a bare context set %q", h)
	}
}

// A hop that extracts but never spans itself still forwards the
// caller's identity verbatim.
func TestInjectHTTPPassesRemoteThrough(t *testing.T) {
	in, _ := http.NewRequest(http.MethodGet, "http://example/", nil)
	in.Header.Set(TraceParentHeader, FormatTraceParent(0x1111, 0x2222))
	ctx := ExtractHTTP(context.Background(), in)
	out, _ := http.NewRequest(http.MethodGet, "http://example/next", nil)
	InjectHTTP(ctx, out)
	sc, ok := ParseTraceParent(out.Header.Get(TraceParentHeader))
	if !ok || sc.TraceID != 0x1111 || sc.SpanID != 0x2222 {
		t.Fatalf("pass-through = %+v ok=%v", sc, ok)
	}
}

func TestSpanFromHeaderMiddleware(t *testing.T) {
	tr := NewTracer(8, nil)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, span := StartSpan(WithTracer(r.Context(), tr), "handler.op")
		span.End()
	})
	srv := httptest.NewServer(SpanFromHeader(inner))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(TraceParentHeader, FormatTraceParent(0xfeed, 0xbeef))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d spans, want 1", len(recs))
	}
	if recs[0].TraceID != formatID(0xfeed) || recs[0].ParentID != formatID(0xbeef) {
		t.Fatalf("middleware did not join the remote trace: %+v", recs[0])
	}
}

func TestStartSpanRemoteParent(t *testing.T) {
	tr := NewTracer(8, nil)
	ctx := ContextWithRemote(WithTracer(context.Background(), tr), SpanContext{TraceID: 7, SpanID: 9})
	ctx, span := StartSpan(ctx, "joined")
	if span.TraceID() != formatID(7) {
		t.Fatalf("TraceID = %s, want %s", span.TraceID(), formatID(7))
	}
	// Children of the joined span stay local: same trace, local parent.
	_, child := StartSpan(ctx, "child")
	if child.TraceID() != formatID(7) {
		t.Fatalf("child trace = %s, want %s", child.TraceID(), formatID(7))
	}
	child.End()
	span.End()
	recs := tr.Snapshot()
	if recs[1].ParentID != formatID(9) {
		t.Fatalf("joined span parent = %q, want %s", recs[1].ParentID, formatID(9))
	}
	if recs[0].ParentID != span.SpanID() {
		t.Fatalf("child parent = %q, want local %s", recs[0].ParentID, span.SpanID())
	}
}

func TestPusherDeliversBatchesAndFlushesOnClose(t *testing.T) {
	var mu sync.Mutex
	var got []SpanBatch
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b SpanBatch
		if err := decodeJSONBody(r, &b); err != nil {
			t.Errorf("bad batch: %v", err)
		}
		mu.Lock()
		got = append(got, b)
		mu.Unlock()
	}))
	defer srv.Close()

	tr := NewTracer(64, nil)
	p := NewPusher(PushConfig{URL: srv.URL, Process: "test-proc", BatchSize: 4, FlushInterval: time.Hour})
	tr.SetPusher(p)
	for i := 0; i < 10; i++ {
		_, span := StartSpan(WithTracer(context.Background(), tr), "op")
		span.End()
	}
	p.Close()

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, b := range got {
		if b.Process != "test-proc" {
			t.Errorf("batch process = %q", b.Process)
		}
		total += len(b.Spans)
	}
	if total != 10 {
		t.Fatalf("delivered %d spans across %d batches, want 10", total, len(got))
	}
	if p.Sent() != 10 || p.Dropped() != 0 {
		t.Fatalf("sent=%d dropped=%d, want 10/0", p.Sent(), p.Dropped())
	}
}

func TestPusherDropsWhenSaturated(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
	}))
	defer srv.Close()
	defer close(release)

	p := NewPusher(PushConfig{URL: srv.URL, Process: "p", Buffer: 1, BatchSize: 1, FlushInterval: time.Hour})
	p.Enqueue(SpanRecord{Name: "a"})
	<-inHandler // exporter is now blocked mid-POST
	p.Enqueue(SpanRecord{Name: "b"}) // fills the buffer
	p.Enqueue(SpanRecord{Name: "c"}) // must drop, not block
	if d := p.Dropped(); d != 1 {
		t.Fatalf("Dropped = %d, want 1", d)
	}
}

func TestPusherRegisterExposesCounters(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	p := NewPusher(PushConfig{URL: srv.URL, Process: "p"})
	defer p.Close()
	reg := NewRegistry()
	p.Register(reg)
	snap := scrapeRegistry(t, reg)
	for _, series := range []string{
		"napel_trace_push_spans_total",
		"napel_trace_push_dropped_total",
		"napel_trace_push_errors_total",
	} {
		if !snap.Has(series) {
			t.Errorf("missing %s", series)
		}
	}
}
