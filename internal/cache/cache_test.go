package cache

import (
	"testing"
	"testing/quick"

	"napel/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	good := Config{LineSize: 64, Lines: 8, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{LineSize: 0, Lines: 8, Assoc: 2},
		{LineSize: 48, Lines: 8, Assoc: 2}, // not power of two
		{LineSize: 64, Lines: 0, Assoc: 1},
		{LineSize: 64, Lines: 8, Assoc: 0},
		{LineSize: 64, Lines: 8, Assoc: 16}, // assoc > lines
		{LineSize: 64, Lines: 9, Assoc: 3},  // 3 sets: not power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if good.SizeBytes() != 512 {
		t.Errorf("SizeBytes = %d", good.SizeBytes())
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(Config{LineSize: 64, Lines: 4, Assoc: 4})
	if r := c.Access(0, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(63, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(64, false); r.Hit {
		t.Fatal("next-line access hit")
	}
	if c.Stats.ReadHits != 1 || c.Stats.ReadMisses != 2 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Fully associative, 2 lines: A, B, touch A, insert C -> B evicted.
	c := New(Config{LineSize: 64, Lines: 2, Assoc: 2})
	c.Access(0x000, false)      // A
	c.Access(0x100, false)      // B
	c.Access(0x000, false)      // touch A
	r := c.Access(0x200, false) // C evicts B
	if !r.Evicted || r.VictimAddr != 0x100 {
		t.Fatalf("victim = %#x, evicted=%v, want 0x100", r.VictimAddr, r.Evicted)
	}
	if !c.Contains(0x000) || c.Contains(0x100) || !c.Contains(0x200) {
		t.Fatal("contents wrong after eviction")
	}
}

func TestWriteBackOnlyDirty(t *testing.T) {
	var wbs []uint64
	c := New(Config{LineSize: 64, Lines: 1, Assoc: 1})
	c.WriteBack = func(a uint64) { wbs = append(wbs, a) }
	c.Access(0x000, false) // clean
	c.Access(0x100, false) // evicts clean: no write-back
	if len(wbs) != 0 {
		t.Fatal("clean eviction wrote back")
	}
	c.Access(0x200, true)  // dirty
	c.Access(0x300, false) // evicts dirty
	if len(wbs) != 1 || wbs[0] != 0x200 {
		t.Fatalf("write-backs = %v, want [0x200]", wbs)
	}
	if c.Stats.WriteBacks != 1 {
		t.Fatalf("stats.WriteBacks = %d", c.Stats.WriteBacks)
	}
}

func TestSetIndexing(t *testing.T) {
	// 2 sets, direct mapped: lines 0 and 2 map to set 0, line 1 to set 1.
	c := New(Config{LineSize: 64, Lines: 2, Assoc: 1})
	c.Access(0*64, false)
	c.Access(1*64, false)
	if !c.Contains(0) || !c.Contains(64) {
		t.Fatal("two sets should hold both lines")
	}
	c.Access(2*64, false) // conflicts with line 0
	if c.Contains(0) {
		t.Fatal("conflict did not evict")
	}
	if !c.Contains(64) {
		t.Fatal("other set was disturbed")
	}
}

func TestFlush(t *testing.T) {
	var wbs []uint64
	c := New(Config{LineSize: 64, Lines: 4, Assoc: 2})
	c.WriteBack = func(a uint64) { wbs = append(wbs, a) }
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)
	if n := c.Flush(); n != 2 {
		t.Fatalf("Flush wrote back %d, want 2", n)
	}
	if len(wbs) != 2 {
		t.Fatalf("write-back callbacks: %v", wbs)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Fatal("flush did not invalidate")
	}
}

// referenceCache is a straightforward fully-keyed model: per set, a slice
// ordered by recency.
type referenceCache struct {
	cfg  Config
	sets map[uint64][]refLine
}

type refLine struct {
	tag   uint64
	dirty bool
}

func newReference(cfg Config) *referenceCache {
	return &referenceCache{cfg: cfg, sets: map[uint64][]refLine{}}
}

// access returns hit.
func (r *referenceCache) access(addr uint64, write bool) bool {
	line := addr / uint64(r.cfg.LineSize)
	nsets := uint64(r.cfg.Lines / r.cfg.Assoc)
	set := line % nsets
	tag := line / nsets
	s := r.sets[set]
	for i, l := range s {
		if l.tag == tag {
			// Move to front (MRU).
			l.dirty = l.dirty || write
			s = append(s[:i], s[i+1:]...)
			r.sets[set] = append([]refLine{l}, s...)
			return true
		}
	}
	s = append([]refLine{{tag: tag, dirty: write}}, s...)
	if len(s) > r.cfg.Assoc {
		s = s[:r.cfg.Assoc]
	}
	r.sets[set] = s
	return false
}

// TestAgainstReferenceModel drives random access streams through the
// real cache and the reference model and requires identical hit/miss
// sequences.
func TestAgainstReferenceModel(t *testing.T) {
	cfgs := []Config{
		{LineSize: 64, Lines: 2, Assoc: 2}, // the NMC L1
		{LineSize: 64, Lines: 8, Assoc: 2},
		{LineSize: 32, Lines: 16, Assoc: 4},
		{LineSize: 64, Lines: 16, Assoc: 1},  // direct mapped
		{LineSize: 64, Lines: 16, Assoc: 16}, // fully associative
	}
	rng := xrand.New(2024)
	for _, cfg := range cfgs {
		c := New(cfg)
		ref := newReference(cfg)
		for i := 0; i < 20000; i++ {
			addr := uint64(rng.Intn(cfg.SizeBytes() * 4))
			write := rng.Intn(4) == 0
			got := c.Access(addr, write).Hit
			want := ref.access(addr, write)
			if got != want {
				t.Fatalf("cfg %+v access %d (addr %#x write %v): hit=%v want %v", cfg, i, addr, write, got, want)
			}
		}
	}
}

func TestHitRateProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		c := New(Config{LineSize: 64, Lines: 8, Assoc: 2})
		for i := 0; i < 500; i++ {
			c.Access(uint64(rng.Intn(4096)), rng.Intn(2) == 0)
		}
		hr := c.Stats.HitRate()
		return hr >= 0 && hr <= 1 && c.Stats.Accesses() == 500
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedAccessAlwaysHits(t *testing.T) {
	c := New(Config{LineSize: 64, Lines: 2, Assoc: 2})
	c.Access(0, false)
	for i := 0; i < 100; i++ {
		if !c.Access(0, false).Hit {
			t.Fatal("resident line missed")
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{LineSize: 3, Lines: 1, Assoc: 1})
}
