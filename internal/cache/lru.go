package cache

import "sync"

// LRUStats are cumulative counters of an LRU map. Snapshot values; the
// underlying counters keep advancing after Stats returns.
type LRUStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Puts      uint64
}

// HitRate returns hits/(hits+misses), or 0 before the first lookup.
func (s LRUStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// LRU is a fixed-capacity map with least-recently-used eviction, the
// software sibling of the hardware cache model above: where Cache tracks
// tags of a simulated memory hierarchy, LRU memoizes actual computed
// values (e.g. napel-serve's prediction responses). It is safe for
// concurrent use by multiple goroutines.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*lruEntry[K, V]
	// Intrusive doubly-linked list in recency order; head is the most
	// recently used entry, tail the eviction candidate.
	head, tail *lruEntry[K, V]
	stats      LRUStats
}

type lruEntry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *lruEntry[K, V]
}

// NewLRU returns an empty LRU holding at most capacity entries;
// capacity must be positive.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		panic("cache: LRU capacity must be positive")
	}
	return &LRU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*lruEntry[K, V], capacity),
	}
}

// Get returns the value stored under key and marks it most recently
// used.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[key]
	if !ok {
		l.stats.Misses++
		var zero V
		return zero, false
	}
	l.stats.Hits++
	l.moveToFront(e)
	return e.value, true
}

// Put stores value under key, updating an existing entry in place and
// evicting the least recently used entry when the cache is full.
func (l *LRU[K, V]) Put(key K, value V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Puts++
	if e, ok := l.entries[key]; ok {
		e.value = value
		l.moveToFront(e)
		return
	}
	if len(l.entries) >= l.capacity {
		victim := l.tail
		l.unlink(victim)
		delete(l.entries, victim.key)
		l.stats.Evictions++
	}
	e := &lruEntry[K, V]{key: key, value: value}
	l.entries[key] = e
	l.pushFront(e)
}

// Len returns the number of resident entries.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Stats returns a snapshot of the cumulative counters.
func (l *LRU[K, V]) Stats() LRUStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

func (l *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *LRU[K, V]) moveToFront(e *lruEntry[K, V]) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}
