package cache_test

import (
	"fmt"

	"napel/internal/cache"
)

// Example_nmcL1 exercises the Table 3 NMC L1 — two 64-byte lines,
// 2-way — on a short access pattern, showing why three interleaved
// streams thrash it.
func Example_nmcL1() {
	c := cache.New(cache.Config{LineSize: 64, Lines: 2, Assoc: 2})
	addrs := []uint64{0, 4096, 0, 4096, 8192, 0}
	for _, a := range addrs {
		r := c.Access(a, false)
		fmt.Printf("addr %5d hit=%v\n", a, r.Hit)
	}
	fmt.Printf("hit rate %.2f\n", c.Stats.HitRate())
	// Output:
	// addr     0 hit=false
	// addr  4096 hit=false
	// addr     0 hit=true
	// addr  4096 hit=true
	// addr  8192 hit=false
	// addr     0 hit=false
	// hit rate 0.33
}
