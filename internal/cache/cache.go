// Package cache implements a set-associative, write-back/write-allocate
// cache model with true-LRU replacement. It is used both for the tiny
// private L1 of the NMC processing elements (Table 3: 2-way, 2 cache
// lines of 64 B) and for the three-level hierarchy of the host CPU model.
//
// The model is functional + counting: it tracks tag state exactly and
// reports hits, misses, evictions and write-backs, which downstream
// models convert into latency and energy.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	LineSize int // bytes per line, power of two
	Lines    int // total number of lines
	Assoc    int // ways per set; Lines/Assoc sets, power of two
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineSize)
	}
	if c.Lines <= 0 {
		return fmt.Errorf("cache: line count %d must be positive", c.Lines)
	}
	if c.Assoc <= 0 || c.Assoc > c.Lines {
		return fmt.Errorf("cache: associativity %d must be in [1, %d]", c.Assoc, c.Lines)
	}
	if c.Lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", c.Lines, c.Assoc)
	}
	sets := c.Lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// SizeBytes returns the cache capacity in bytes.
func (c Config) SizeBytes() int { return c.LineSize * c.Lines }

// Stats accumulates access counters.
type Stats struct {
	ReadHits    uint64
	ReadMisses  uint64
	WriteHits   uint64
	WriteMisses uint64
	Evictions   uint64
	WriteBacks  uint64
}

// Accesses returns the total number of accesses.
func (s Stats) Accesses() uint64 {
	return s.ReadHits + s.ReadMisses + s.WriteHits + s.WriteMisses
}

// Misses returns the total number of misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// HitRate returns hits/accesses, or 0 when the cache was never accessed.
func (s Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(a-s.Misses()) / float64(a)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Cache is a single cache level. Not safe for concurrent use.
type Cache struct {
	cfg       Config
	sets      [][]way
	setMask   uint64
	setShift  uint
	lineShift uint
	stamp     uint64
	Stats     Stats
	// WriteBack, when non-nil, is invoked with the line-aligned address
	// of every dirty eviction (used to propagate write-backs to the next
	// level in a hierarchy).
	WriteBack func(lineAddr uint64)
}

// New builds a cache from cfg; it panics if cfg is invalid (configuration
// errors are programmer errors at this layer — user-facing validation
// happens in the simulator front-ends).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Lines / cfg.Assoc
	sets := make([][]way, nsets)
	backing := make([]way, cfg.Lines)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	setShift := uint(0)
	for 1<<setShift < nsets {
		setShift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(nsets - 1),
		setShift:  setShift,
		lineShift: shift,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineSize) - 1) }

// Result describes the outcome of one access.
type Result struct {
	Hit        bool
	Evicted    bool   // a valid line was displaced
	WroteBack  bool   // the displaced line was dirty
	VictimAddr uint64 // line address of the displaced line, if Evicted
}

// Access performs a read (write=false) or write (write=true) of the line
// containing addr, allocating on miss and updating LRU state.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.stamp++
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	tag := line >> c.setShift
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.lru = c.stamp
			if write {
				w.dirty = true
				c.Stats.WriteHits++
			} else {
				c.Stats.ReadHits++
			}
			return Result{Hit: true}
		}
	}
	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	// Miss: pick invalid way, else LRU victim.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
fill:
	res := Result{}
	w := &set[victim]
	if w.valid {
		res.Evicted = true
		res.VictimAddr = ((w.tag << c.setShift) | (line & c.setMask)) << c.lineShift
		if w.dirty {
			res.WroteBack = true
			c.Stats.WriteBacks++
			if c.WriteBack != nil {
				c.WriteBack(res.VictimAddr)
			}
		}
		c.Stats.Evictions++
	}
	w.valid = true
	w.dirty = write
	w.tag = tag
	w.lru = c.stamp
	return res
}

// Contains reports whether the line holding addr is resident (no LRU
// update; used by tests).
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	tag := line >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines, reporting how many dirty lines would have
// been written back (and invoking WriteBack for each).
func (c *Cache) Flush() (writeBacks int) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			w := &c.sets[si][wi]
			if w.valid && w.dirty {
				writeBacks++
				c.Stats.WriteBacks++
				if c.WriteBack != nil {
					addr := ((w.tag << c.setShift) | uint64(si)) << c.lineShift
					c.WriteBack(addr)
				}
			}
			*w = way{}
		}
	}
	return writeBacks
}
