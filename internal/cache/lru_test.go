package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	l := NewLRU[string, int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("hit in empty cache")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a lost: %d, %v", v, ok)
	}
	if v, ok := l.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %v", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	s := l.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("a", 10) // update, no eviction
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	if v, _ := l.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
	// The update refreshed "a", so "b" is the victim.
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Fatal("b survived eviction after a's refresh")
	}
}

func TestLRUCapacityOne(t *testing.T) {
	l := NewLRU[int, int](1)
	for i := 0; i < 10; i++ {
		l.Put(i, i)
		if v, ok := l.Get(i); !ok || v != i {
			t.Fatalf("resident entry %d missing", i)
		}
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1", l.Len())
	}
}

func TestLRUBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewLRU[int, int](0)
}

// TestLRUConcurrentMixed mirrors napel-serve's access pattern — many
// goroutines issuing Get-then-Put on a shared working set — under the
// race detector, and asserts the hit counters add up and the steady-state
// hit ratio is high once the working set fits.
func TestLRUConcurrentMixed(t *testing.T) {
	const (
		goroutines = 16
		iters      = 2000
		keys       = 64 // working set, fits the capacity below
	)
	l := NewLRU[string, int](128)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("req-%d", (g*31+i)%keys)
				if v, ok := l.Get(key); ok {
					if v != len(key) {
						t.Errorf("key %s = %d, want %d", key, v, len(key))
						return
					}
					continue
				}
				l.Put(key, len(key))
			}
		}(g)
	}
	wg.Wait()

	s := l.Stats()
	if got := s.Hits + s.Misses; got != goroutines*iters {
		t.Fatalf("hits+misses = %d, want %d", got, goroutines*iters)
	}
	// With 64 hot keys in a 128-entry cache, everything past the first
	// touch of each key should hit; demand far more than half.
	if s.HitRate() < 0.9 {
		t.Fatalf("hit rate %.3f, want >= 0.9 (stats %+v)", s.HitRate(), s)
	}
	if l.Len() > 128 {
		t.Fatalf("len %d exceeds capacity", l.Len())
	}
}

// TestLRUConcurrentEviction hammers a cache far smaller than the key
// space so eviction and insertion race constantly.
func TestLRUConcurrentEviction(t *testing.T) {
	l := NewLRU[int, int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				k := (g*7 + i) % 512
				if v, ok := l.Get(k); ok && v != k*2 {
					t.Errorf("key %d = %d, want %d", k, v, k*2)
					return
				}
				l.Put(k, k*2)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > 8 {
		t.Fatalf("len %d exceeds capacity 8", l.Len())
	}
}
