package nmcsim

import (
	"reflect"
	"testing"

	"napel/internal/trace"
)

// budgetKernel emits shard-distinct loads and honors the tracer budget
// the way real workloads do (Stop checked at outer-loop boundaries,
// coverage reported on early exit).
func budgetKernel(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		base := uint64(1<<24) + uint64(shard)<<20
		for i := 0; i < n; i += 8 {
			if t.Stop() {
				t.SetCoverage(i, n)
				return
			}
			for j := 0; j < 8; j++ {
				t.Load(j, base+uint64(i+j)*8, 8, 1, 2)
				t.Int(8, 1, 2, trace.NoReg)
			}
		}
	}
}

// TestRunSourcesReplayMatchesRun is the single-pass engine's contract:
// shard traces depend only on (kernel, shard, nshards, perThreadBudget),
// not on the architecture, so recording each shard once and replaying the
// recordings into RunSources must reproduce the streamed Run bit for bit
// on every architecture config.
func TestRunSourcesReplayMatchesRun(t *testing.T) {
	gen := budgetKernel(600)
	small := DefaultConfig()
	small.PEs = 2
	big := DefaultConfig()
	big.PEs = 8
	big.OoOWidth = 4
	configs := []Config{small, big, DefaultConfig()}

	for _, threads := range []int{1, 3} {
		for _, budget := range []uint64{0, 100, 5000} {
			per := PerThreadBudget(budget, threads)
			recs := make([]*trace.Recording, threads)
			for shard := range recs {
				shard := shard
				recs[shard] = trace.Record(per, func(tr *trace.Tracer) {
					gen(shard, threads, tr)
				})
			}
			for ci, cfg := range configs {
				want, err := Run(cfg, gen, threads, budget)
				if err != nil {
					t.Fatalf("Run(cfg %d, threads %d, budget %d): %v", ci, threads, budget, err)
				}
				got, err := RunSources(cfg, threads, budget, func(shard int, _ uint64) trace.InstSource {
					return recs[shard].Source()
				})
				if err != nil {
					t.Fatalf("RunSources(cfg %d, threads %d, budget %d): %v", ci, threads, budget, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("cfg %d threads %d budget %d: replayed result differs from streamed\n got %+v\nwant %+v",
						ci, threads, budget, got, want)
				}
			}
		}
	}
}

func TestPerThreadBudget(t *testing.T) {
	cases := []struct {
		budget  uint64
		threads int
		want    uint64
	}{
		{0, 4, 0},
		{100, 0, 0},
		{100, 4, 25},
		{3, 8, 1},
		{7, 2, 3},
	}
	for _, c := range cases {
		if got := PerThreadBudget(c.budget, c.threads); got != c.want {
			t.Errorf("PerThreadBudget(%d, %d) = %d, want %d", c.budget, c.threads, got, c.want)
		}
	}
}
