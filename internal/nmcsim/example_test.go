package nmcsim_test

import (
	"fmt"

	"napel/internal/nmcsim"
	"napel/internal/trace"
)

// Example_run simulates a tiny synthetic kernel on the Table 3 NMC
// system: a compute phase at IPC 1 followed by a memory-bound phase.
func Example_run() {
	gen := func(shard, nshards int, t *trace.Tracer) {
		for i := 0; i < 1000; i++ {
			t.Int(0, int16(i%32), trace.NoReg, trace.NoReg)
		}
	}
	res, err := nmcsim.Run(nmcsim.DefaultConfig(), gen, 1, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("instructions:", res.SimInstrs)
	fmt.Printf("IPC: %.2f\n", res.IPC)
	// Output:
	// instructions: 1000
	// IPC: 1.00
}

// ExampleConfig_WithScratchpad shows the Section 3.4 enhancement: adding
// a per-PE second-level cache to the reference system.
func ExampleConfig_WithScratchpad() {
	cfg := nmcsim.DefaultConfig().WithScratchpad(64 << 10)
	fmt.Println("has L2:", cfg.HasL2())
	fmt.Println("capacity:", cfg.L2.SizeBytes(), "bytes")
	// Output:
	// has L2: true
	// capacity: 65536 bytes
}
