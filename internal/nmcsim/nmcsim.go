// Package nmcsim simulates the NMC system of the paper: processing
// elements (in-order, single-issue cores with a tiny private L1)
// embedded in the logic layer of a 3D-stacked memory, one DRAM
// controller per vault (internal/dram), and an off-chip SerDes link to
// the host used only for offload control traffic.
//
// It plays the role of Ramulator extended with the ramulator-pim
// 3D-stacked model (references [20] and [32] of the paper): it consumes
// dynamic instruction traces from the workload kernels and produces the
// IPC and energy labels that train NAPEL, as well as the "Actual" results
// of Figure 7.
//
// The core model is a scoreboarded in-order pipeline: one instruction
// issues per cycle, stalling on register read-after-write hazards and on
// memory misses (a single outstanding miss, i.e. a blocking cache, which
// matches the simple PEs the paper assumes). Multiple hardware threads
// beyond the PE count execute as sequential rounds on their PE. All PEs
// share the stacked DRAM; request arrival order across PEs is preserved
// exactly by an event queue ordered on arrival time.
package nmcsim

import (
	"container/heap"
	"fmt"

	"napel/internal/cache"
	"napel/internal/dram"
	"napel/internal/energy"
	"napel/internal/trace"
)

// CoreType selects the PE microarchitecture. The paper models in-order
// single-issue PEs (Table 3) and notes NAPEL "can be extended to support
// other types of general-purpose cores ... by selecting the appropriate
// architectural features"; OutOfOrder implements that extension: a
// width-limited, non-blocking core with a bounded number of outstanding
// misses.
type CoreType uint8

const (
	// InOrder is the Table 3 PE: single-issue, blocking cache.
	InOrder CoreType = iota
	// OutOfOrder issues OoOWidth instructions per cycle and overlaps up
	// to MSHRs cache misses.
	OutOfOrder
)

// String returns the core-type name (the Table 1 "core type" feature).
func (c CoreType) String() string {
	if c == OutOfOrder {
		return "out-of-order"
	}
	return "in-order"
}

// Config describes one NMC architecture configuration — the architectural
// half of NAPEL's feature space (Table 1, bottom).
type Config struct {
	PEs      int     // number of near-memory processing elements
	FreqGHz  float64 // PE core frequency
	Core     CoreType
	OoOWidth int // issue width when Core == OutOfOrder (default 2)
	MSHRs    int // outstanding misses when Core == OutOfOrder (default 8)
	L1       cache.Config
	// L2 optionally adds a per-PE second-level cache/scratchpad — the
	// enhancement Section 3.4 of the paper proposes for atax-like
	// workloads ("the introduction of a small cache or scratchpad memory
	// in the NMC compute units can be beneficial"). Zero value disables
	// it (the Table 3 baseline).
	L2         cache.Config
	L2Cycles   int // L1-miss/L2-hit latency in core cycles (default 4)
	DRAM       dram.Config
	XbarCycles int     // logic-layer crossbar latency, each way, in core cycles
	LinkGbps   float64 // off-chip SerDes link (offload control traffic)
	// Prefetch enables a next-line prefetcher on L1 misses: the
	// following line is fetched alongside the demand line (posted — the
	// PE does not wait for it). Streaming kernels gain; with the tiny
	// Table 3 L1 the extra allocation can also thrash, which is exactly
	// the trade-off a design-space exploration should expose.
	Prefetch bool
	Energy   energy.NMCParams
}

// OoOConfig returns an out-of-order variant of the reference system —
// the "other core type" extension hook.
func OoOConfig() Config {
	cfg := DefaultConfig()
	cfg.Core = OutOfOrder
	cfg.OoOWidth = 2
	cfg.MSHRs = 8
	return cfg
}

// DefaultConfig returns the Table 3 NMC system: 32 in-order PEs at
// 1.25 GHz, 2-way L1 with 2 lines of 64 B, and the default 4 GB cube.
func DefaultConfig() Config {
	return Config{
		PEs:        32,
		FreqGHz:    1.25,
		L1:         cache.Config{LineSize: 64, Lines: 2, Assoc: 2},
		DRAM:       dram.DefaultConfig(),
		XbarCycles: 4,
		LinkGbps:   15 * 16, // 16-bit full-duplex SerDes at 15 Gbps
		Energy:     energy.DefaultNMCParams(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PEs <= 0 {
		return fmt.Errorf("nmcsim: PE count %d must be positive", c.PEs)
	}
	if c.FreqGHz <= 0 {
		return fmt.Errorf("nmcsim: frequency %.3f GHz must be positive", c.FreqGHz)
	}
	if c.XbarCycles < 0 {
		return fmt.Errorf("nmcsim: crossbar latency must be non-negative")
	}
	if c.Core == OutOfOrder {
		if c.OoOWidth < 1 {
			return fmt.Errorf("nmcsim: out-of-order width %d must be >= 1", c.OoOWidth)
		}
		if c.MSHRs < 1 {
			return fmt.Errorf("nmcsim: MSHR count %d must be >= 1", c.MSHRs)
		}
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if c.HasL2() {
		if err := c.L2.Validate(); err != nil {
			return err
		}
		if c.L2Cycles < 1 {
			return fmt.Errorf("nmcsim: L2 latency must be >= 1 cycle")
		}
	}
	return c.DRAM.Validate()
}

// HasL2 reports whether the optional per-PE second-level cache is
// configured.
func (c Config) HasL2() bool { return c.L2.Lines > 0 }

// WithScratchpad returns a copy of c with a per-PE second-level cache of
// the given capacity in bytes (64 B lines, 8-way) — the Section 3.4
// enhancement in one call.
func (c Config) WithScratchpad(bytes int) Config {
	lines := bytes / 64
	if lines < 8 {
		lines = 8
	}
	// Round down to a power-of-two set count with 8 ways.
	assoc := 8
	if lines < assoc {
		assoc = lines
	}
	sets := 1
	for sets*2*assoc <= lines {
		sets *= 2
	}
	c.L2 = cache.Config{LineSize: 64, Lines: sets * assoc, Assoc: assoc}
	if c.L2Cycles == 0 {
		c.L2Cycles = 4
	}
	return c
}

// opLatency returns the execution latency of op in core cycles for the
// in-order PE pipeline.
func opLatency(op trace.Op) uint64 {
	switch op {
	case trace.OpIntMul:
		return 3
	case trace.OpIntDiv:
		return 12
	case trace.OpFPALU:
		return 3
	case trace.OpFPMul:
		return 4
	case trace.OpFPDiv:
		return 16
	default:
		return 1
	}
}

// Result is the simulator's architectural response for one run — the
// training label source for NAPEL.
type Result struct {
	// Simulated quantities (over the traced, possibly sampled, stream).
	SimInstrs uint64  // instructions actually simulated
	SimCycles uint64  // makespan in core cycles
	Coverage  float64 // fraction of the full execution that was traced
	// Extrapolated quantities for the full execution.
	TotalInstrs float64 // I_offload
	IPC         float64 // aggregate instructions per cycle (all PEs)
	TimeSec     float64 // Π_NMC = I_offload / (IPC · f_core)
	EnergyJ     float64 // total NMC energy for the full execution
	EPI         float64 // energy per instruction, J
	EDP         float64 // energy-delay product, J·s
	// Component stats.
	L1         cache.Stats
	L2         cache.Stats // zero when no L2 is configured
	L2Hits     uint64
	Prefetches uint64 // next-line prefetches issued (Prefetch option)
	DRAM       dram.Stats
	ByOp       [trace.NumOps]uint64
	Stall      struct {
		MemPs uint64 // PE-time spent blocked on memory
	}
	// Energy breakdown (Joules, extrapolated to the full execution).
	Energy EnergyBreakdown
}

// EnergyBreakdown attributes the NMC energy to its components; the
// fields sum to Result.EnergyJ.
type EnergyBreakdown struct {
	PEJ     float64 // processing-element dynamic energy
	CacheJ  float64 // L1 access energy
	DRAMJ   float64 // activations, bursts and refresh in the stack
	LinkJ   float64 // off-chip offload control traffic
	StaticJ float64 // leakage and background power over the runtime
}

// Generator produces the dynamic trace of one hardware thread (shard) of
// the kernel. Implementations must honor tracer.Stop.
type Generator func(shard, nshards int, t *trace.Tracer)

const psPerSec = 1e12

// PerThreadBudget splits a total instruction budget evenly across the
// hardware threads of a run, exactly as Run does internally (0 stays
// unlimited; a positive budget never rounds below 1 per thread). Shard
// trace content depends only on the kernel, input, shard assignment and
// this per-thread budget — notably *not* on the architecture — which is
// what makes recorded shard traces replayable across configurations.
func PerThreadBudget(budget uint64, threads int) uint64 {
	if budget == 0 || threads <= 0 {
		return 0
	}
	b := budget / uint64(threads)
	if b == 0 {
		b = 1
	}
	return b
}

// OpenSource supplies the dynamic trace of one hardware thread (shard)
// as a pull-style source. The simulator calls it once per shard, passing
// the per-thread instruction budget the source must honor.
type OpenSource func(shard int, perThreadBudget uint64) trace.InstSource

// Run simulates gen with threads hardware threads on the architecture
// cfg. budget caps the total number of simulated instructions across all
// threads (0 = unlimited); when a kernel is cut short the totals are
// extrapolated by the recorded coverage.
func Run(cfg Config, gen Generator, threads int, budget uint64) (*Result, error) {
	return RunSources(cfg, threads, budget, func(shard int, perThreadBudget uint64) trace.InstSource {
		return trace.NewStream(perThreadBudget, func(t *trace.Tracer) {
			gen(shard, threads, t)
		})
	})
}

// RunSources is Run with the trace generation factored out: open is
// called once per shard and returns the shard's instruction source. Use
// it to replay pre-recorded shard traces (trace.Recording) so that one
// kernel execution can feed simulations of many architecture
// configurations; with stream-backed sources it is exactly Run.
func RunSources(cfg Config, threads int, budget uint64, open OpenSource) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("nmcsim: thread count %d must be positive", threads)
	}
	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}

	psPerCycle := uint64(1000 / cfg.FreqGHz)
	if psPerCycle == 0 {
		psPerCycle = 1
	}
	perThreadBudget := PerThreadBudget(budget, threads)

	res := &Result{}
	npes := cfg.PEs
	if threads < npes {
		npes = threads
	}
	pes := make([]*pe, npes)
	for i := range pes {
		p := &pe{
			id:         i,
			cfg:        &cfg,
			mem:        mem,
			res:        res,
			l1:         cache.New(cfg.L1),
			psPerCycle: psPerCycle,
			xbarPs:     uint64(cfg.XbarCycles) * psPerCycle,
		}
		if cfg.HasL2() {
			p.l2 = cache.New(cfg.L2)
		}
		pes[i] = p
	}
	// Round-robin thread (shard) assignment; each PE runs its shards as
	// sequential rounds.
	for t := 0; t < threads; t++ {
		p := pes[t%npes]
		p.shards = append(p.shards, t)
	}

	// Event loop ordered on DRAM-request arrival time: each PE runs ahead
	// privately (cache hits, ALU) until it must touch DRAM; the queue
	// services requests in global arrival order.
	eq := &eventQueue{}
	for _, p := range pes {
		if p.runUntilPending(open, perThreadBudget) {
			heap.Push(eq, p)
		}
	}
	for eq.Len() > 0 {
		p := heap.Pop(eq).(*pe)
		p.service()
		if p.runUntilPending(open, perThreadBudget) {
			heap.Push(eq, p)
		}
	}

	makespan := uint64(0)
	for _, p := range pes {
		if p.nowPs > makespan {
			makespan = p.nowPs
		}
		res.L1.ReadHits += p.l1.Stats.ReadHits
		res.L1.ReadMisses += p.l1.Stats.ReadMisses
		res.L1.WriteHits += p.l1.Stats.WriteHits
		res.L1.WriteMisses += p.l1.Stats.WriteMisses
		res.L1.Evictions += p.l1.Stats.Evictions
		res.L1.WriteBacks += p.l1.Stats.WriteBacks
		if p.l2 != nil {
			res.L2.ReadHits += p.l2.Stats.ReadHits
			res.L2.ReadMisses += p.l2.Stats.ReadMisses
			res.L2.WriteHits += p.l2.Stats.WriteHits
			res.L2.WriteMisses += p.l2.Stats.WriteMisses
			res.L2.Evictions += p.l2.Stats.Evictions
			res.L2.WriteBacks += p.l2.Stats.WriteBacks
		}
	}
	res.DRAM = mem.Stats
	// Extrapolate the full-execution instruction count shard by shard:
	// shards can differ wildly in both size and traced fraction (e.g.
	// blocked triangular loop nests), so the correct total is
	// Σ count_s / coverage_s, not count / mean(coverage).
	var extrap float64
	for _, p := range pes {
		extrap += p.extrapInstrs
	}
	if extrap < float64(res.SimInstrs) {
		extrap = float64(res.SimInstrs)
	}
	res.TotalInstrs = extrap
	res.Coverage = float64(res.SimInstrs) / extrap
	res.SimCycles = makespan / psPerCycle
	if res.SimCycles == 0 {
		res.SimCycles = 1
	}
	res.IPC = float64(res.SimInstrs) / float64(res.SimCycles)
	if res.IPC > 0 {
		res.TimeSec = res.TotalInstrs / (res.IPC * cfg.FreqGHz * 1e9)
	}
	res.EnergyJ = totalEnergy(cfg, res)
	if res.TotalInstrs > 0 {
		res.EPI = res.EnergyJ / res.TotalInstrs
	}
	res.EDP = res.EnergyJ * res.TimeSec
	return res, nil
}

// totalEnergy converts event counts into Joules, extrapolates to the
// full execution and records the per-component breakdown.
func totalEnergy(cfg Config, r *Result) float64 {
	e := cfg.Energy
	inv := 1e-12 / r.Coverage
	var peJ float64
	for op, n := range r.ByOp {
		peJ += e.PEInstPJ[op] * float64(n)
	}
	r.Energy.PEJ = peJ * inv
	r.Energy.CacheJ = e.L1AccessPJ * float64(r.L1.Accesses()) * inv
	r.Energy.DRAMJ = (e.ActPJ*float64(r.DRAM.Activations) +
		e.ReadPJ*float64(r.DRAM.Reads) +
		e.WritePJ*float64(r.DRAM.Writes) +
		e.RefreshPJ*float64(r.DRAM.Refreshes)) * inv
	// Offload control traffic across the SerDes link: launch command and
	// completion signal, a few cache lines each (not scaled by coverage —
	// it happens once per offload).
	const offloadBits = 2 * 64 * 8
	r.Energy.LinkJ = e.LinkPJPerBit * offloadBits * 1e-12

	staticW := float64(cfg.PEs)*e.PEStaticW + e.DRAMStaticW + e.LinkStaticW
	r.Energy.StaticJ = staticW * r.TimeSec
	return r.Energy.PEJ + r.Energy.CacheJ + r.Energy.DRAMJ + r.Energy.LinkJ + r.Energy.StaticJ
}

// pe is one processing element's simulation state.
type pe struct {
	id         int
	cfg        *Config
	mem        *dram.Memory
	res        *Result
	l1         *cache.Cache
	l2         *cache.Cache // optional (nil when not configured)
	psPerCycle uint64
	xbarPs     uint64

	shards       []int // hardware threads assigned to this PE
	shardIdx     int
	stream       trace.InstSource
	insts        []trace.Inst // bulk fast path when the source exposes its slice
	pos          int
	extrapInstrs float64 // Σ per-shard count/coverage

	nowPs    uint64 // issue-pointer time
	regReady [256]uint64
	// Out-of-order state: sub-cycle issue slot counter and outstanding
	// miss completion times (MSHR occupancy).
	issueSlot   int
	outstanding []uint64

	// Pending DRAM request (set by advance, consumed by service).
	pending struct {
		addr    uint64
		write   bool
		size    int
		arrival uint64
		loadDst int16
		wbAddr  uint64 // dirty victim to write back, 0 if none
		issuePs uint64
	}
	lastPrefetch uint64 // last line injected by the prefetcher
}

// runUntilPending drives the PE forward — opening shard sources as needed
// — until it has a DRAM request pending (true) or all its shards are
// exhausted (false).
func (p *pe) runUntilPending(open OpenSource, budget uint64) bool {
	for {
		if p.stream == nil && !p.startNext(open, budget) {
			return false
		}
		if p.advance() {
			return true
		}
		// Current shard finished; record its coverage and move on.
		if !p.startNext(open, budget) {
			return false
		}
	}
}

// bulkSource is the optional fast path a slice-backed InstSource (a
// trace.Recording replay) can offer: direct access to the whole trace,
// letting the PE iterate without a per-instruction interface call.
type bulkSource interface{ Insts() []trace.Inst }

// startNext opens the next assigned shard's trace source; it returns
// false when the PE has no shards left.
func (p *pe) startNext(open OpenSource, budget uint64) bool {
	if p.stream != nil {
		cov := p.stream.Coverage()
		if cov <= 0 || cov > 1 {
			cov = 1
		}
		count := p.stream.Count()
		if p.insts != nil {
			count = uint64(p.pos)
		}
		p.extrapInstrs += float64(count) / cov
		p.stream = nil
		p.insts = nil
	}
	if p.shardIdx >= len(p.shards) {
		return false
	}
	shard := p.shards[p.shardIdx]
	p.shardIdx++
	p.stream = open(shard, budget)
	p.pos = 0
	if bs, ok := p.stream.(bulkSource); ok {
		p.insts = bs.Insts()
	}
	return true
}

// advance executes instructions until the PE needs DRAM; it returns true
// if a request is pending and false when the current shard's stream is
// exhausted.
func (p *pe) advance() bool {
	for {
		var inst trace.Inst
		if p.insts != nil {
			if p.pos >= len(p.insts) {
				return false
			}
			inst = p.insts[p.pos]
			p.pos++
		} else {
			var ok bool
			inst, ok = p.stream.Next()
			if !ok {
				return false
			}
		}
		p.res.SimInstrs++
		p.res.ByOp[inst.Op]++

		issue := p.nowPs
		if inst.Src1 >= 0 && p.regReady[inst.Src1] > issue {
			issue = p.regReady[inst.Src1]
		}
		if inst.Src2 >= 0 && p.regReady[inst.Src2] > issue {
			issue = p.regReady[inst.Src2]
		}

		if !inst.Op.IsMem() {
			lat := opLatency(inst.Op) * p.psPerCycle
			if inst.Dst >= 0 {
				p.regReady[inst.Dst] = issue + lat
			}
			p.advanceIssue(issue)
			continue
		}

		write := inst.Op == trace.OpStore
		r := p.l1.Access(inst.Addr, write)
		if r.Hit {
			if inst.Dst >= 0 {
				p.regReady[inst.Dst] = issue + p.psPerCycle
			}
			p.advanceIssue(issue)
			continue
		}
		if p.l2 != nil {
			// Dirty L1 victims land in the L2.
			if r.WroteBack {
				p.l2.Access(r.VictimAddr, true)
				r.WroteBack = false
			}
			if p.l2.Access(inst.Addr, false).Hit {
				lat := issue + uint64(p.cfg.L2Cycles)*p.psPerCycle
				if inst.Dst >= 0 {
					p.regReady[inst.Dst] = lat
				}
				p.res.L2Hits++
				p.advanceIssue(issue)
				continue
			}
		}
		if p.cfg.Core == OutOfOrder {
			// A full MSHR file stalls the issue of this miss until the
			// oldest outstanding miss returns.
			issue = p.mshrAdmit(issue)
		}
		// Miss: block the PE on a DRAM line fetch (write-allocate).
		p.pending.addr = p.l1.LineAddr(inst.Addr)
		p.pending.write = write
		p.pending.size = p.l1.Config().LineSize
		p.pending.arrival = issue + p.psPerCycle + p.xbarPs
		p.pending.loadDst = inst.Dst
		p.pending.issuePs = issue
		p.pending.wbAddr = 0
		if r.WroteBack {
			p.pending.wbAddr = r.VictimAddr
		}
		return true
	}
}

// service resolves the pending DRAM request and unblocks the PE. The
// in-order core blocks until the line returns; the out-of-order core
// records the completion in an MSHR and keeps issuing.
func (p *pe) service() {
	pd := &p.pending
	// Dirty victim write-back is posted: it occupies DRAM but the PE does
	// not wait for it.
	if pd.wbAddr != 0 {
		p.mem.Access(pd.wbAddr, true, pd.size, pd.arrival)
	}
	// The line fetch itself is a DRAM read regardless of whether the
	// missing access was a load or a store (write-allocate).
	done := p.mem.Access(pd.addr, false, pd.size, pd.arrival)
	if p.cfg.Prefetch {
		next := pd.addr + uint64(p.cfg.L1.LineSize)
		if next != p.lastPrefetch {
			// Posted next-line fetch: occupies a bank and lands in the
			// cache, but the PE does not wait for it.
			p.mem.Access(next, false, pd.size, pd.arrival)
			p.l1.Access(next, false)
			p.res.Prefetches++
			p.lastPrefetch = next
		}
	}
	ready := done + p.xbarPs
	if pd.loadDst >= 0 {
		p.regReady[pd.loadDst] = ready
	}
	if p.cfg.Core == OutOfOrder {
		p.outstanding = append(p.outstanding, ready)
		if ready > pd.issuePs {
			p.res.Stall.MemPs += (ready - pd.issuePs) / uint64(p.cfg.MSHRs)
		}
		p.advanceIssue(pd.issuePs)
		return
	}
	p.res.Stall.MemPs += ready - pd.issuePs
	p.nowPs = ready
}

// advanceIssue moves the issue pointer past one issued instruction:
// one full cycle on the in-order core, a width-wide slot on the OoO
// core.
func (p *pe) advanceIssue(issue uint64) {
	if p.cfg.Core != OutOfOrder {
		p.nowPs = issue + p.psPerCycle
		return
	}
	if issue > p.nowPs {
		p.nowPs = issue
		p.issueSlot = 0
	}
	p.issueSlot++
	if p.issueSlot >= p.cfg.OoOWidth {
		p.issueSlot = 0
		p.nowPs += p.psPerCycle
	}
}

// mshrAdmit returns the earliest time a new miss may issue given the
// MSHR occupancy at the tentative issue time.
func (p *pe) mshrAdmit(issue uint64) uint64 {
	// Drop completed misses.
	live := p.outstanding[:0]
	var earliest uint64
	for _, done := range p.outstanding {
		if done > issue {
			live = append(live, done)
			if earliest == 0 || done < earliest {
				earliest = done
			}
		}
	}
	p.outstanding = live
	if len(live) >= p.cfg.MSHRs {
		return earliest
	}
	return issue
}

// eventQueue orders PEs by pending-request arrival time.
type eventQueue []*pe

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	return q[i].pending.arrival < q[j].pending.arrival
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*pe)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
