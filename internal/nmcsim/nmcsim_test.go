package nmcsim

import (
	"math"
	"testing"

	"napel/internal/trace"
)

// aluKernel emits n independent integer ops per shard.
func aluKernel(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		for i := 0; i < n; i++ {
			t.Int(0, int16(i%64), trace.NoReg, trace.NoReg)
		}
	}
}

// chainKernel emits n dependent 3-cycle FP ops (serial chain).
func chainKernel(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		for i := 0; i < n; i++ {
			t.FP(0, 1, 1, trace.NoReg)
		}
	}
}

// streamKernel walks memory sequentially (one load per 64B line region,
// 8 loads per line).
func streamKernel(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		base := uint64(1<<24) + uint64(shard)<<20
		for i := 0; i < n; i++ {
			t.Load(0, base+uint64(i)*8, 8, 1, 2)
		}
	}
}

// randomKernel issues loads that miss the tiny L1 almost always.
func randomKernel(n int) Generator {
	return func(shard, nshards int, t *trace.Tracer) {
		x := uint64(shard)*0x9e3779b9 + 12345
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			t.Load(0, (x>>16)%(1<<28), 8, 1, 2)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.PEs = 0
	if bad.Validate() == nil {
		t.Error("PEs=0 accepted")
	}
	bad = DefaultConfig()
	bad.FreqGHz = 0
	if bad.Validate() == nil {
		t.Error("freq=0 accepted")
	}
	if _, err := Run(DefaultConfig(), aluKernel(10), 0, 0); err == nil {
		t.Error("threads=0 accepted")
	}
}

func TestSingleIssueALUBound(t *testing.T) {
	// One thread of independent ALU ops: IPC approaches 1 (single issue).
	res, err := Run(DefaultConfig(), aluKernel(100000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.IPC-1) > 0.01 {
		t.Fatalf("ALU-bound single-thread IPC = %v, want ~1", res.IPC)
	}
	if res.SimInstrs != 100000 {
		t.Fatalf("SimInstrs = %d", res.SimInstrs)
	}
	if res.Coverage != 1 {
		t.Fatalf("full run coverage = %v", res.Coverage)
	}
}

func TestDependencyChainSlowsPipeline(t *testing.T) {
	// 3-cycle FP latency on a serial chain: IPC ~ 1/3.
	res, err := Run(DefaultConfig(), chainKernel(100000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.IPC-1.0/3) > 0.02 {
		t.Fatalf("serial FP chain IPC = %v, want ~0.33", res.IPC)
	}
}

func TestMultiThreadScalesThroughput(t *testing.T) {
	r1, err := Run(DefaultConfig(), aluKernel(50000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(DefaultConfig(), aluKernel(50000), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r8.IPC < 7.5*r1.IPC {
		t.Fatalf("8 threads IPC %v vs 1 thread %v: no scaling", r8.IPC, r1.IPC)
	}
}

func TestThreadsBeyondPEsRoundRobin(t *testing.T) {
	// 64 threads on 32 PEs: each PE runs two shards sequentially;
	// aggregate IPC still tops out near the PE count.
	res, err := Run(DefaultConfig(), aluKernel(5000), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC > float64(DefaultConfig().PEs)+1 {
		t.Fatalf("IPC %v exceeds PE count", res.IPC)
	}
	if res.SimInstrs != 64*5000 {
		t.Fatalf("not all shards executed: %d", res.SimInstrs)
	}
}

func TestMemoryBoundIsSlow(t *testing.T) {
	cfg := DefaultConfig()
	stream, err := Run(cfg, streamKernel(50000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(cfg, randomKernel(50000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Streaming hits 7 of 8 accesses in L1; random misses nearly always.
	if stream.L1.HitRate() < 0.8 {
		t.Errorf("streaming hit rate %v", stream.L1.HitRate())
	}
	if random.L1.HitRate() > 0.1 {
		t.Errorf("random hit rate %v", random.L1.HitRate())
	}
	if random.IPC >= stream.IPC {
		t.Errorf("random IPC %v >= streaming %v", random.IPC, stream.IPC)
	}
	if random.Stall.MemPs == 0 {
		t.Error("no memory stall recorded for random kernel")
	}
}

func TestBudgetCoverageExtrapolation(t *testing.T) {
	gen := func(shard, nshards int, tr *trace.Tracer) {
		const total = 100000
		done := 0
		for i := 0; i < total; i++ {
			if tr.Stop() {
				break
			}
			tr.Int(0, 1, 2, 3)
			done++
		}
		tr.SetCoverage(done, total)
	}
	res, err := Run(DefaultConfig(), gen, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimInstrs > 11000 {
		t.Fatalf("budget ignored: %d", res.SimInstrs)
	}
	if math.Abs(res.TotalInstrs-100000) > 2000 {
		t.Fatalf("extrapolated total %v, want ~100000", res.TotalInstrs)
	}
	if res.Coverage >= 1 {
		t.Fatal("cut run reports full coverage")
	}
}

func TestPerShardExtrapolation(t *testing.T) {
	// Shards of very different sizes: total must be the sum of per-shard
	// extrapolations, not count/mean(coverage).
	gen := func(shard, nshards int, tr *trace.Tracer) {
		total := 1000
		if shard == 1 {
			total = 100000
		}
		done := 0
		for i := 0; i < total; i++ {
			if tr.Stop() {
				break
			}
			tr.Int(0, 1, 2, 3)
			done++
		}
		tr.SetCoverage(done, total)
	}
	res, err := Run(DefaultConfig(), gen, 2, 4000) // 2000 per shard
	if err != nil {
		t.Fatal(err)
	}
	// True total = 1000 + 100000.
	if math.Abs(res.TotalInstrs-101000) > 5000 {
		t.Fatalf("extrapolated %v, want ~101000", res.TotalInstrs)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		r, err := Run(DefaultConfig(), randomKernel(20000), 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.SimCycles != b.SimCycles || a.EnergyJ != b.EnergyJ || a.DRAM.Activations != b.DRAM.Activations {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestEnergyComponentsPositive(t *testing.T) {
	res, err := Run(DefaultConfig(), randomKernel(20000), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 || res.EPI <= 0 || res.EDP <= 0 {
		t.Fatalf("non-positive energy results: %+v", res)
	}
	if res.TimeSec <= 0 {
		t.Fatal("non-positive time")
	}
}

func TestFrequencyScalesComputeTime(t *testing.T) {
	slow := DefaultConfig()
	slow.FreqGHz = 0.625
	fast := DefaultConfig()
	fast.FreqGHz = 2.5
	rs, err := Run(slow, aluKernel(50000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rfst, err := Run(fast, aluKernel(50000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rs.TimeSec / rfst.TimeSec
	if math.Abs(ratio-4) > 0.2 {
		t.Fatalf("compute-bound time ratio %v, want ~4 (freq 4x)", ratio)
	}
}

func TestLargerCacheHelpsThrashingWorkload(t *testing.T) {
	// Three interleaved streams thrash a 2-line L1 but fit in 64 lines.
	gen := func(shard, nshards int, tr *trace.Tracer) {
		a, b, c := uint64(1<<24), uint64(2<<24), uint64(3<<24)
		for i := 0; i < 30000; i++ {
			off := uint64(i) * 8
			tr.Load(0, a+off, 8, 1, 0)
			tr.Load(1, b+off, 8, 2, 0)
			tr.Load(2, c+off, 8, 3, 0)
		}
	}
	small := DefaultConfig()
	big := DefaultConfig()
	big.L1.Lines = 64
	big.L1.Assoc = 4
	rs, err := Run(small, gen, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big, gen, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rb.L1.HitRate() <= rs.L1.HitRate()+0.2 {
		t.Fatalf("bigger L1 did not help: %v vs %v", rb.L1.HitRate(), rs.L1.HitRate())
	}
	if rb.IPC <= rs.IPC {
		t.Fatalf("bigger L1 IPC %v <= small %v", rb.IPC, rs.IPC)
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := Run(DefaultConfig(), func(int, int, *trace.Tracer) {}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimInstrs != 0 {
		t.Fatalf("phantom instructions: %d", res.SimInstrs)
	}
}

func TestOoOValidate(t *testing.T) {
	cfg := OoOConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("OoO config invalid: %v", err)
	}
	cfg.OoOWidth = 0
	if cfg.Validate() == nil {
		t.Error("zero width accepted")
	}
	cfg = OoOConfig()
	cfg.MSHRs = 0
	if cfg.Validate() == nil {
		t.Error("zero MSHRs accepted")
	}
	if InOrder.String() != "in-order" || OutOfOrder.String() != "out-of-order" {
		t.Error("core type names wrong")
	}
}

func TestOoOWidthRaisesALUIPC(t *testing.T) {
	cfg := OoOConfig()
	cfg.OoOWidth = 2
	res, err := Run(cfg, aluKernel(100000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC < 1.8 || res.IPC > 2.2 {
		t.Fatalf("width-2 OoO ALU IPC = %v, want ~2", res.IPC)
	}
}

func TestOoOOverlapsMisses(t *testing.T) {
	// Independent random loads: the in-order core serializes misses, the
	// OoO core overlaps up to MSHRs of them.
	inorder, err := Run(DefaultConfig(), randomKernel(50000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ooo, err := Run(OoOConfig(), randomKernel(50000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ooo.IPC < 2*inorder.IPC {
		t.Fatalf("OoO IPC %v not clearly above in-order %v on miss-bound code", ooo.IPC, inorder.IPC)
	}
}

func TestOoODependentChainStillSerial(t *testing.T) {
	// A serial FP chain cannot benefit from width: latency binds.
	res, err := Run(OoOConfig(), chainKernel(50000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC > 0.4 {
		t.Fatalf("serial chain IPC %v on OoO core, want ~1/3", res.IPC)
	}
}

func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	res, err := Run(DefaultConfig(), randomKernel(20000), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Energy.PEJ + res.Energy.CacheJ + res.Energy.DRAMJ + res.Energy.LinkJ + res.Energy.StaticJ
	if math.Abs(sum-res.EnergyJ)/res.EnergyJ > 1e-12 {
		t.Fatalf("breakdown sums to %v, total %v", sum, res.EnergyJ)
	}
	if res.Energy.DRAMJ <= 0 || res.Energy.PEJ <= 0 || res.Energy.StaticJ <= 0 {
		t.Fatalf("missing components: %+v", res.Energy)
	}
	// A miss-heavy kernel spends more in DRAM than in the tiny cache.
	if res.Energy.DRAMJ <= res.Energy.CacheJ {
		t.Fatalf("DRAM energy %v not above cache %v for random kernel", res.Energy.DRAMJ, res.Energy.CacheJ)
	}
}

func TestMorePEsHelpMemoryParallelWorkload(t *testing.T) {
	// A parallel random-access workload should gain from more PEs (more
	// misses in flight against the banked stack).
	small := DefaultConfig()
	small.PEs = 4
	big := DefaultConfig()
	big.PEs = 32
	rs, err := Run(small, randomKernel(4000), 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big, randomKernel(4000), 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rb.IPC <= 2*rs.IPC {
		t.Fatalf("8x PEs gave %.2f -> %.2f IPC (want > 2x)", rs.IPC, rb.IPC)
	}
}

func TestMoreLayersReduceBankConflicts(t *testing.T) {
	// Same-vault accesses with a bank-advancing stride: with one DRAM
	// layer every other access collides in the same bank; with eight
	// layers sixteen banks absorb the misses. A blocking in-order PE
	// cannot exploit bank parallelism, so the out-of-order core (which
	// keeps several misses in flight) is the right observer.
	conflictGen := func(shard, nshards int, tr *trace.Tracer) {
		cfg := DefaultConfig()
		stride := uint64(cfg.DRAM.RowBytes * cfg.DRAM.Vaults) // next bank, same vault
		for i := 0; i < 20000; i++ {
			tr.Load(0, uint64(i)*stride, 8, 1, 2)
		}
	}
	thin := OoOConfig()
	thin.DRAM.Layers = 1
	thick := OoOConfig()
	thick.DRAM.Layers = 8
	rthin, err := Run(thin, conflictGen, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rthick, err := Run(thick, conflictGen, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rthick.SimCycles >= rthin.SimCycles {
		t.Fatalf("more layers did not help: %d vs %d cycles", rthick.SimCycles, rthin.SimCycles)
	}
}

func TestScratchpadHelpsThrashingKernel(t *testing.T) {
	// Section 3.4's proposal: atax-like workloads thrash the 2-line L1
	// but fit a small scratchpad. Three interleaved streams reproduce
	// that pattern.
	gen := func(shard, nshards int, tr *trace.Tracer) {
		a, b, c := uint64(1<<24), uint64(2<<24), uint64(3<<24)
		for i := 0; i < 30000; i++ {
			off := uint64(i%2048) * 8 // 16 KiB working set per stream
			tr.Load(0, a+off, 8, 1, 0)
			tr.Load(1, b+off, 8, 2, 0)
			tr.Load(2, c+off, 8, 3, 0)
		}
	}
	base := DefaultConfig()
	padded := DefaultConfig().WithScratchpad(64 << 10)
	if err := padded.Validate(); err != nil {
		t.Fatal(err)
	}
	rb, err := Run(base, gen, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(padded, gen, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rp.L2Hits == 0 {
		t.Fatal("scratchpad never hit")
	}
	if rp.IPC <= rb.IPC {
		t.Fatalf("scratchpad did not help: IPC %v vs %v", rp.IPC, rb.IPC)
	}
	if rp.EDP >= rb.EDP {
		t.Fatalf("scratchpad did not improve EDP: %v vs %v", rp.EDP, rb.EDP)
	}
	// Baseline result must not report phantom L2 activity.
	if rb.L2.Accesses() != 0 || rb.L2Hits != 0 {
		t.Fatal("baseline has L2 stats")
	}
}

func TestWithScratchpadGeometry(t *testing.T) {
	for _, bytes := range []int{512, 4096, 64 << 10, 1 << 20} {
		cfg := DefaultConfig().WithScratchpad(bytes)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("scratchpad %dB invalid: %v", bytes, err)
		}
		if cfg.L2.SizeBytes() > bytes && bytes >= 512 {
			t.Fatalf("scratchpad exceeds requested %dB: %d", bytes, cfg.L2.SizeBytes())
		}
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	// Streaming through memory with a larger L1: the prefetcher should
	// raise the hit rate and IPC.
	cfg := DefaultConfig()
	cfg.L1.Lines = 16
	cfg.L1.Assoc = 4
	pf := cfg
	pf.Prefetch = true
	base, err := Run(cfg, streamKernel(60000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run(pf, streamKernel(60000), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if with.Prefetches == 0 {
		t.Fatal("prefetcher idle")
	}
	if base.Prefetches != 0 {
		t.Fatal("baseline issued prefetches")
	}
	if with.IPC <= base.IPC {
		t.Fatalf("prefetcher did not help streaming: %v vs %v", with.IPC, base.IPC)
	}
	if with.L1.HitRate() <= base.L1.HitRate() {
		t.Fatalf("prefetcher did not raise hit rate: %v vs %v", with.L1.HitRate(), base.L1.HitRate())
	}
}
