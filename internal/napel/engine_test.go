package napel

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"napel/internal/trace"
	"napel/internal/workload"
)

// TestCollectBitIdenticalAcrossWorkers is the engine's central contract:
// the serialized dataset is byte-for-byte identical no matter how many
// workers collected it.
func TestCollectBitIdenticalAcrossWorkers(t *testing.T) {
	kernels := quickKernels(t, "atax", "mvt")
	var bufs [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		opts := quickOptions()
		opts.Workers = workers
		td, err := Collect(kernels, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := SaveTrainingData(&bufs[i], td); err != nil {
			t.Fatalf("workers=%d: save: %v", workers, err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("serialized training data differs between workers=1 (%d bytes) and workers=8 (%d bytes)",
			bufs[0].Len(), bufs[1].Len())
	}
	if bufs[0].Len() == 0 {
		t.Fatal("serialized training data is empty")
	}
}

// TestCollectMatchesSerialReference pins the engine's output to the
// pre-engine algorithm: profile each distinct input, then stream a fresh
// simulation per (occurrence, architecture). Every deterministic sample
// field must match exactly.
func TestCollectMatchesSerialReference(t *testing.T) {
	opts := quickOptions()
	opts.Workers = 4
	kernels := quickKernels(t, "atax")
	td, err := Collect(kernels, opts)
	if err != nil {
		t.Fatal(err)
	}

	var want []Sample
	profiles := map[string]bool{}
	k := kernels[0]
	for _, rawIn := range CCDInputs(k) {
		in := workload.Scale(k, rawIn, opts.ScaleFactor, opts.MaxIters)
		key := inputKey(k.Name(), in)
		prof, err := ProfileKernel(k, in, opts.ProfileBudget)
		if err != nil {
			t.Fatal(err)
		}
		profiles[key] = true
		base := prof.Vector()
		for ai, arch := range opts.TrainArchs {
			res, err := SimulateKernel(k, in, arch, opts.SimBudget)
			if err != nil {
				t.Fatal(err)
			}
			feat := append(append([]float64(nil), base...), ArchVector(arch, prof, in.Threads())...)
			want = append(want, Sample{
				App: k.Name(), Input: in, ArchIdx: ai,
				ActivePEs: ActivePEs(in.Threads(), arch.PEs),
				Features:  feat, IPC: res.IPC, EPI: res.EPI,
			})
		}
	}

	if len(td.Samples) != len(want) {
		t.Fatalf("%d samples, want %d", len(td.Samples), len(want))
	}
	for i, s := range td.Samples {
		w := want[i]
		if s.App != w.App || s.Input.String() != w.Input.String() ||
			s.ArchIdx != w.ArchIdx || s.ActivePEs != w.ActivePEs ||
			s.IPC != w.IPC || s.EPI != w.EPI {
			t.Fatalf("sample %d = %+v, want %+v", i, s, w)
		}
		if len(s.Features) != len(w.Features) {
			t.Fatalf("sample %d feature width %d, want %d", i, len(s.Features), len(w.Features))
		}
		for f := range s.Features {
			if s.Features[f] != w.Features[f] {
				t.Fatalf("sample %d feature %d = %v, want %v", i, f, s.Features[f], w.Features[f])
			}
		}
	}
	if len(td.Profiles) != len(profiles) {
		t.Fatalf("%d profiles, want %d", len(td.Profiles), len(profiles))
	}
	for key := range profiles {
		if td.Profiles[key] == nil {
			t.Fatalf("missing profile for %s", key)
		}
	}
}

// countingKernel counts Trace invocations — the instrument behind the
// exactly-once guarantee.
type countingKernel struct {
	execs *atomic.Int64
}

func (countingKernel) Name() string        { return "counting" }
func (countingKernel) Description() string { return "test kernel counting trace executions" }

func (countingKernel) Params() []workload.Param {
	return []workload.Param{
		{Name: "size", Kind: workload.KindSize, Levels: [5]int{64, 128, 256, 512, 1024}, Test: 256},
		{Name: "threads", Kind: workload.KindThreads, Levels: [5]int{1, 2, 4, 8, 16}, Test: 4},
	}
}

func (c countingKernel) Trace(in workload.Input, shard, nshards int, t *trace.Tracer) {
	c.execs.Add(1)
	n := in["size"]
	base := uint64(1<<20) + uint64(shard)<<16
	for i := 0; i < n; i += 8 {
		if t.Stop() {
			t.SetCoverage(i, n)
			return
		}
		for j := 0; j < 8; j++ {
			t.Load(0, base+uint64(i+j)*8, 8, 1, 2)
			t.Int(1, 3, 1, 2)
		}
	}
}

// TestCollectTraceExactlyOnce asserts the single-pass saving: per
// distinct (kernel, input) unit the kernel's trace generator runs
// exactly 1+threads times (one profiling pass, one recording per shard)
// — independent of how many architectures are trained on.
func TestCollectTraceExactlyOnce(t *testing.T) {
	base := quickOptions()
	for _, archs := range []int{1, len(base.TrainArchs)} {
		var execs atomic.Int64
		k := countingKernel{execs: &execs}
		opts := base
		opts.TrainArchs = base.TrainArchs[:archs]
		opts.Workers = 4

		// The expected count is a property of the deduplicated unit set,
		// not of the architecture list.
		want := int64(0)
		seen := map[string]bool{}
		for _, rawIn := range CCDInputs(k) {
			in := workload.Scale(k, rawIn, opts.ScaleFactor, opts.MaxIters)
			key := inputKey(k.Name(), in)
			if seen[key] {
				continue
			}
			seen[key] = true
			want += int64(1 + in.Threads())
		}

		td, err := Collect([]workload.Kernel{k}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := execs.Load(); got != want {
			t.Fatalf("archs=%d: kernel traced %d times, want %d (1+threads per distinct unit)", archs, got, want)
		}
		if wantSamples := len(CCDInputs(k)) * archs; len(td.Samples) != wantSamples {
			t.Fatalf("archs=%d: %d samples, want %d", archs, len(td.Samples), wantSamples)
		}
	}
}

// TestCollectResumeSkipsRestoredUnits is the crash-recovery contract:
// seeding the engine with a partial checkpoint re-executes only the
// unfinished units, and the assembled dataset serializes byte-identically
// to an uninterrupted run.
func TestCollectResumeSkipsRestoredUnits(t *testing.T) {
	opts := quickOptions()
	opts.Workers = 2

	// Reference: an uninterrupted run, with the per-unit trace count.
	var fullExecs atomic.Int64
	full, err := Collect([]workload.Kernel{countingKernel{execs: &fullExecs}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var fullBytes bytes.Buffer
	if err := SaveTrainingData(&fullBytes, full); err != nil {
		t.Fatal(err)
	}

	// A "checkpoint": the full dataset truncated to its first two
	// distinct units, round-tripped through the on-disk format exactly
	// as a resume would see it.
	keys := map[string]bool{}
	var order []string
	for _, s := range full.Samples {
		key := inputKey(s.App, s.Input)
		if !keys[key] {
			keys[key] = true
			order = append(order, key)
		}
	}
	if len(order) < 3 {
		t.Fatalf("need >= 3 distinct units, have %d", len(order))
	}
	kept := map[string]bool{order[0]: true, order[1]: true}
	partial := &TrainingData{Names: full.Names, DoEConfigs: full.DoEConfigs}
	for _, s := range full.Samples {
		if kept[inputKey(s.App, s.Input)] {
			partial.Samples = append(partial.Samples, s)
		}
	}
	var ckBytes bytes.Buffer
	if err := SaveTrainingData(&ckBytes, partial); err != nil {
		t.Fatal(err)
	}
	prior, err := LoadTrainingData(&ckBytes)
	if err != nil {
		t.Fatal(err)
	}

	// Resume: only the remaining units execute, progress fires per unit,
	// and the final bytes match the uninterrupted run.
	var resumeExecs atomic.Int64
	var calls, lastDone, total int
	ck := &CollectCheckpoint{
		Prior: prior,
		OnUnit: func(done, tot int, snapshot func() *TrainingData) {
			calls++
			lastDone, total = done, tot
			if snap := snapshot(); len(snap.Samples) == 0 {
				t.Error("snapshot mid-run is empty")
			}
		},
	}
	resumed, err := CollectResumeContext(context.Background(), []workload.Kernel{countingKernel{execs: &resumeExecs}}, opts, ck)
	if err != nil {
		t.Fatal(err)
	}
	var resumedBytes bytes.Buffer
	if err := SaveTrainingData(&resumedBytes, resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullBytes.Bytes(), resumedBytes.Bytes()) {
		t.Fatalf("resumed dataset differs from uninterrupted run (%d vs %d bytes)",
			resumedBytes.Len(), fullBytes.Len())
	}

	// Per distinct unit the kernel traces 1+threads times; two units
	// were restored, so the resumed run must be short exactly their
	// share of the full run's executions.
	perUnit := fullExecs.Load() / int64(len(order))
	if fullExecs.Load()%int64(len(order)) != 0 {
		// Units may differ in thread count; fall back to the weaker
		// assertion that a strict subset re-executed.
		if resumeExecs.Load() >= fullExecs.Load() || resumeExecs.Load() == 0 {
			t.Fatalf("resume executed %d traces, full run %d", resumeExecs.Load(), fullExecs.Load())
		}
	} else if got, want := resumeExecs.Load(), fullExecs.Load()-2*perUnit; got != want {
		t.Fatalf("resume executed %d traces, want %d (full %d minus 2 restored units)", got, want, fullExecs.Load())
	}
	if calls != len(order)-2 {
		t.Fatalf("OnUnit fired %d times, want %d (one per executed unit)", calls, len(order)-2)
	}
	if lastDone != total || total != len(order) {
		t.Fatalf("final progress %d/%d, want %d/%d", lastDone, total, len(order), len(order))
	}
}

// TestCollectResumeRejectsForeignCheckpoint: a checkpoint with a
// different feature layout must fail loudly, not silently re-collect.
func TestCollectResumeRejectsForeignCheckpoint(t *testing.T) {
	opts := quickOptions()
	prior := &TrainingData{Names: []string{"bogus"}}
	_, err := CollectResumeContext(context.Background(), quickKernels(t, "atax"), opts, &CollectCheckpoint{Prior: prior})
	if err == nil {
		t.Fatal("incompatible checkpoint accepted")
	}
}

// TestCollectContextCancel: a cancelled context aborts collection but
// still returns the (possibly partial) dataset alongside ctx.Err().
func TestCollectContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	td, err := CollectContext(ctx, quickKernels(t, "atax"), quickOptions())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if td == nil {
		t.Fatal("cancelled collection returned no dataset")
	}
	if len(td.Samples) != 0 {
		t.Fatalf("pre-cancelled context still collected %d samples", len(td.Samples))
	}
	if td.DoEConfigs["atax"] != 11 {
		t.Fatalf("DoEConfigs = %v, want the planned CCD size", td.DoEConfigs)
	}
}

// TestTrainingDataRoundTrip: Save→Load→Save reproduces the bytes and a
// loaded dataset has usable (empty, non-nil) auxiliary maps.
func TestTrainingDataRoundTrip(t *testing.T) {
	opts := quickOptions()
	td, err := Collect(quickKernels(t, "atax"), opts)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := SaveTrainingData(&first, td); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrainingData(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := SaveTrainingData(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("round-tripped training data serializes differently")
	}
	if loaded.Profiles == nil || loaded.SimTime == nil || loaded.ProfileTime == nil {
		t.Fatal("loaded dataset has nil auxiliary maps")
	}
	if _, err := LoadTrainingData(bytes.NewReader([]byte(`{"version":99}`))); err == nil {
		t.Fatal("version 99 accepted")
	}
}

// TestEvaluateLOOCVContextMatchesSerial: the parallel fold runner returns
// the same applications, in the same order, with the same MREs as the
// serial path.
func TestEvaluateLOOCVContextMatchesSerial(t *testing.T) {
	opts := quickOptions()
	td, err := Collect(quickKernels(t, "atax", "mvt", "gesu"), opts)
	if err != nil {
		t.Fatal(err)
	}
	trainer := DefaultRFTrainer()
	serial, err := EvaluateLOOCVContext(context.Background(), td, TargetIPC, trainer, opts.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EvaluateLOOCVContext(context.Background(), td, TargetIPC, trainer, opts.Seed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 3 || len(parallel) != 3 {
		t.Fatalf("rows: serial %d, parallel %d, want 3", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].App != parallel[i].App || serial[i].MRE != parallel[i].MRE {
			t.Fatalf("row %d: serial %+v vs parallel %+v", i, serial[i], parallel[i])
		}
	}
	if _, err := EvaluateLOOCVContext(canceledCtx(), td, TargetIPC, trainer, opts.Seed, 2); err != context.Canceled {
		t.Fatalf("cancelled LOOCV err = %v, want context.Canceled", err)
	}
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestSimulateKernelArchsMatchesIndividual: the recorded fan-out wrapper
// returns bit-identical results to per-arch streamed simulations.
func TestSimulateKernelArchsMatchesIndividual(t *testing.T) {
	opts := quickOptions()
	k := quickKernels(t, "mvt")[0]
	in := workload.Scale(k, workload.CentralInput(k), opts.ScaleFactor, opts.MaxIters)
	got, err := SimulateKernelArchs(context.Background(), k, in, opts.TrainArchs, opts.SimBudget)
	if err != nil {
		t.Fatal(err)
	}
	for ai, arch := range opts.TrainArchs {
		want, err := SimulateKernel(k, in, arch, opts.SimBudget)
		if err != nil {
			t.Fatal(err)
		}
		if *got[ai] != *want {
			t.Fatalf("arch %d: %+v, want %+v", ai, *got[ai], *want)
		}
	}
	if _, err := SimulateKernelArchs(canceledCtx(), k, in, opts.TrainArchs, opts.SimBudget); err != context.Canceled {
		t.Fatalf("cancelled err = %v, want context.Canceled", err)
	}
}
