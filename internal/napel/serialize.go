package napel

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"napel/internal/atomicfile"
	"napel/internal/ml"
	"napel/internal/ml/rf"
	"napel/internal/pisa"
	"napel/internal/workload"
)

// savedPredictor is the on-disk form of a trained Predictor: the two
// random forests with their log-space clamp ranges, plus the feature
// names for sanity checking at load time. Only the shipped NAPEL
// configuration (log-target random forests) is serializable; the
// Figure 5 baselines are evaluation-only.
type savedPredictor struct {
	Version   int               `json:"version"`
	Names     []string          `json:"feature_names"`
	Chosen    map[string]string `json:"chosen,omitempty"`
	TrainTime time.Duration     `json:"train_time_ns"`
	IPC       savedModel        `json:"ipc"`
	EPI       savedModel        `json:"epi"`
}

type savedModel struct {
	Lo     float64    `json:"log_lo"`
	Hi     float64    `json:"log_hi"`
	Forest *rf.Forest `json:"forest"`
}

// savedVersion is bumped on incompatible format changes.
const savedVersion = 1

// ErrBadModelVersion reports a predictor file whose format version this
// build cannot read. It is a sentinel (match with errors.Is) so that
// callers can distinguish "valid file, wrong version" from plain
// corruption — napel-serve maps it to HTTP 422 instead of 500.
var ErrBadModelVersion = errors.New("napel: unsupported predictor format version")

// Save serializes the predictor as JSON. It fails if the models are not
// log-target random forests (the only configuration Train produces).
func (p *Predictor) Save(w io.Writer) error {
	ipc, err := saveModel(p.IPC)
	if err != nil {
		return fmt.Errorf("napel: saving IPC model: %w", err)
	}
	epi, err := saveModel(p.EPI)
	if err != nil {
		return fmt.Errorf("napel: saving energy model: %w", err)
	}
	chosen := map[string]string{}
	for t, name := range p.Chosen {
		chosen[t.String()] = name
	}
	enc := json.NewEncoder(w)
	return enc.Encode(savedPredictor{
		Version:   savedVersion,
		Names:     p.Names,
		Chosen:    chosen,
		TrainTime: p.TrainTime,
		IPC:       ipc,
		EPI:       epi,
	})
}

func saveModel(m ml.Model) (savedModel, error) {
	inner, lo, hi, ok := ml.UnwrapLogModel(m)
	if !ok {
		return savedModel{}, fmt.Errorf("model is not a log-target model")
	}
	forest, ok := inner.(*rf.Forest)
	if !ok {
		return savedModel{}, fmt.Errorf("inner model is %T, want *rf.Forest", inner)
	}
	return savedModel{Lo: lo, Hi: hi, Forest: forest}, nil
}

// LoadPredictor reads a predictor previously written by Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var in savedPredictor
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("napel: decoding predictor: %w", err)
	}
	if in.Version != savedVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadModelVersion, in.Version, savedVersion)
	}
	if in.IPC.Forest == nil || in.EPI.Forest == nil {
		return nil, fmt.Errorf("napel: predictor file is missing a model")
	}
	wantFeatures := 395 + NumArchFeatures
	if len(in.Names) != wantFeatures {
		return nil, fmt.Errorf("napel: predictor has %d feature names, want %d", len(in.Names), wantFeatures)
	}
	p := &Predictor{
		IPC:       ml.WrapLogModel(in.IPC.Forest, in.IPC.Lo, in.IPC.Hi),
		EPI:       ml.WrapLogModel(in.EPI.Forest, in.EPI.Lo, in.EPI.Hi),
		Names:     in.Names,
		TrainTime: in.TrainTime,
		Chosen:    map[Target]string{},
	}
	for _, t := range []Target{TargetIPC, TargetEPI} {
		if name, ok := in.Chosen[t.String()]; ok {
			p.Chosen[t] = name
		}
	}
	return p, nil
}

// savedTrainingData is the on-disk form of a collected dataset: the
// deterministic payload only. Wall-clock fields (per-sample SimTime, the
// SimTime/ProfileTime aggregates) and the raw profiles are deliberately
// excluded — everything written is a pure function of (kernels, inputs,
// options), which is what makes the serialized bytes identical across
// worker counts and runs.
type savedTrainingData struct {
	Version    int            `json:"version"`
	Names      []string       `json:"feature_names"`
	DoEConfigs map[string]int `json:"doe_configs"`
	Samples    []savedSample  `json:"samples"`
}

type savedSample struct {
	App       string         `json:"app"`
	Input     workload.Input `json:"input"`
	ArchIdx   int            `json:"arch_idx"`
	ActivePEs int            `json:"active_pes"`
	Features  []float64      `json:"features"`
	IPC       float64        `json:"ipc"`
	EPI       float64        `json:"epi"`
}

// SaveTrainingData serializes the dataset as JSON. The output is
// byte-for-byte deterministic: map keys are sorted by the encoder and no
// wall-clock measurement is included.
func SaveTrainingData(w io.Writer, td *TrainingData) error {
	out := savedTrainingData{
		Version:    savedVersion,
		Names:      td.Names,
		DoEConfigs: td.DoEConfigs,
		Samples:    make([]savedSample, len(td.Samples)),
	}
	for i, s := range td.Samples {
		out.Samples[i] = savedSample{
			App:       s.App,
			Input:     s.Input,
			ArchIdx:   s.ArchIdx,
			ActivePEs: s.ActivePEs,
			Features:  s.Features,
			IPC:       s.IPC,
			EPI:       s.EPI,
		}
	}
	return json.NewEncoder(w).Encode(out)
}

// WritePredictorFile atomically publishes the predictor at path
// (temp-file-then-rename, see internal/atomicfile): a reader — the
// napel-serve registry hot-reloading, the model store ingesting — sees
// the old complete file or the new one, never a torn JSON document.
func WritePredictorFile(path string, p *Predictor) error {
	return atomicfile.WriteFile(path, 0o644, p.Save)
}

// LoadPredictorFile reads a predictor file written by Save or
// WritePredictorFile.
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadPredictor(f)
}

// WriteTrainingDataFile atomically publishes the dataset at path — the
// checkpoint write of `napel train -resume` and the napel-traind job
// manager, where a crash mid-write must not corrupt the file a restart
// resumes from.
func WriteTrainingDataFile(path string, td *TrainingData) error {
	return atomicfile.WriteFile(path, 0o644, func(w io.Writer) error {
		return SaveTrainingData(w, td)
	})
}

// LoadTrainingDataFile reads a dataset file written by SaveTrainingData
// or WriteTrainingDataFile.
func LoadTrainingDataFile(path string) (*TrainingData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTrainingData(f)
}

// LoadTrainingData reads a dataset previously written by
// SaveTrainingData. Profiles and timing maps come back empty (they are
// not serialized); the result trains and evaluates exactly like the
// original.
func LoadTrainingData(r io.Reader) (*TrainingData, error) {
	var in savedTrainingData
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("napel: decoding training data: %w", err)
	}
	if in.Version != savedVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadModelVersion, in.Version, savedVersion)
	}
	td := &TrainingData{
		Names:       in.Names,
		Profiles:    map[string]*pisa.Profile{},
		DoEConfigs:  map[string]int{},
		SimTime:     map[string]time.Duration{},
		ProfileTime: map[string]time.Duration{},
	}
	for k, v := range in.DoEConfigs {
		td.DoEConfigs[k] = v
	}
	td.Samples = make([]Sample, len(in.Samples))
	for i, s := range in.Samples {
		td.Samples[i] = Sample{
			App:       s.App,
			Input:     s.Input,
			ArchIdx:   s.ArchIdx,
			ActivePEs: s.ActivePEs,
			Features:  s.Features,
			IPC:       s.IPC,
			EPI:       s.EPI,
		}
	}
	return td, nil
}
