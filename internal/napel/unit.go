package napel

import (
	"context"
	"fmt"
	"sync"
	"time"

	"napel/internal/nmcsim"
	"napel/internal/obs"
	"napel/internal/pisa"
	"napel/internal/workload"
)

// This file is the unit extraction/injection surface of the collection
// engine: the wire-level view of one (kernel, input) unit that lets a
// remote process (napel-worker via internal/collectd) execute units the
// planner selected, and lets the planner re-inject the returned payloads
// into the deterministic plan-order assembly. The invariant the types
// below protect: a unit's payload is a pure function of its spec, so
// assembly from payloads is byte-identical to single-machine collection
// no matter which process produced each payload, or when.

// UnitSpec is the self-contained description of one planned collection
// unit. Input is already scaled (workload.Scale was applied at
// planning), so executing a spec never re-scales. The spec round-trips
// through JSON exactly: Input is a map[string]int and nmcsim.Config
// holds only integers, strings and floats Go re-encodes minimally.
type UnitSpec struct {
	Kernel string         `json:"kernel"`
	Input  workload.Input `json:"input"`
	// Key is the unit's identity, inputKey(Kernel, Input); carried
	// explicitly so coordinator and worker can cross-check they agree on
	// which unit a payload belongs to.
	Key           string          `json:"key"`
	ProfileBudget uint64          `json:"profile_budget"`
	SimBudget     uint64          `json:"sim_budget"`
	TrainArchs    []nmcsim.Config `json:"train_archs"`
	// Tags are the capability tags a worker must advertise to be leased
	// this unit (Options.Tags, stamped at planning). Scheduling metadata
	// only: they never influence execution, so the payload stays a pure
	// function of the fields above and byte-identity is unaffected.
	Tags []string `json:"tags,omitempty"`
}

// Validate checks a spec received off the wire before executing it.
func (s UnitSpec) Validate() error {
	if s.Kernel == "" {
		return fmt.Errorf("napel: unit spec has no kernel")
	}
	if len(s.TrainArchs) == 0 {
		return fmt.Errorf("napel: unit spec for %s has no training architectures", s.Kernel)
	}
	for _, a := range s.TrainArchs {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	if want := inputKey(s.Kernel, s.Input); s.Key != "" && s.Key != want {
		return fmt.Errorf("napel: unit spec key %q does not match its kernel/input (%q)", s.Key, want)
	}
	return nil
}

// UnitPayload is everything one executed unit contributes to the
// dataset. Samples (one per training architecture, in architecture
// order) are the deterministic part: float64 features and labels
// round-trip JSON exactly, so a payload produced remotely assembles
// byte-identically to local execution. The wall-clock fields are
// observational only — SaveTrainingData never serializes timing, and
// per-sample SimTime is zeroed (the same contract checkpoint-restored
// units follow).
type UnitPayload struct {
	Key         string        `json:"key"`
	Samples     []Sample      `json:"samples"`
	ProfileTime time.Duration `json:"profile_time_ns"`
	SimTime     time.Duration `json:"sim_time_ns"`
}

// Check verifies a payload claims exactly the samples spec's executor
// should have produced: one per training architecture, on spec's
// kernel/input, with the full feature layout. It does not (cannot)
// verify label values — that is what deterministic re-execution and the
// collectd content hash are for.
func (p *UnitPayload) Check(spec UnitSpec) error {
	if p == nil {
		return fmt.Errorf("napel: nil unit payload")
	}
	key := spec.Key
	if key == "" {
		key = inputKey(spec.Kernel, spec.Input)
	}
	if p.Key != key {
		return fmt.Errorf("napel: unit payload key %q, want %q", p.Key, key)
	}
	if len(p.Samples) != len(spec.TrainArchs) {
		return fmt.Errorf("napel: unit %s payload has %d samples, want one per training arch (%d)",
			key, len(p.Samples), len(spec.TrainArchs))
	}
	wantFeat := len(pisa.FeatureNames()) + NumArchFeatures
	for i, s := range p.Samples {
		if s.ArchIdx != i {
			return fmt.Errorf("napel: unit %s payload sample %d has arch index %d", key, i, s.ArchIdx)
		}
		if s.App != spec.Kernel || inputKey(s.App, s.Input) != key {
			return fmt.Errorf("napel: unit %s payload sample %d belongs to %s", key, i, inputKey(s.App, s.Input))
		}
		if len(s.Features) != wantFeat {
			return fmt.Errorf("napel: unit %s payload sample %d has %d features, want %d", key, i, len(s.Features), wantFeat)
		}
	}
	return nil
}

// UnitExecutor runs one planned unit and returns its payload. The
// engine calls it instead of executing in-process when Options.Executor
// is set; internal/collectd's coordinator is one (it leases the spec to
// a remote worker), and any error it returns flows through the engine's
// existing per-unit retry and quarantine machinery.
type UnitExecutor func(ctx context.Context, spec UnitSpec) (*UnitPayload, error)

// UnitKey returns the canonical identity of a (kernel, scaled input)
// unit — the key UnitSpec.Key and UnitPayload.Key carry.
func UnitKey(app string, in workload.Input) string { return inputKey(app, in) }

// unitSpec projects a planned unit onto the wire type.
func unitSpec(u collectUnit, opts Options) UnitSpec {
	return UnitSpec{
		Kernel:        u.kernel.Name(),
		Input:         u.in,
		Key:           u.key,
		ProfileBudget: opts.ProfileBudget,
		SimBudget:     opts.SimBudget,
		TrainArchs:    opts.TrainArchs,
		Tags:          opts.Tags,
	}
}

// PlanUnits exposes the engine's planning pass: the distinct
// (kernel, scaled input) units collection would execute, in
// first-occurrence plan order, as self-contained specs. inputsFor nil
// means the standard CCD design. The active-learning scheduler plans
// its candidate pool with this.
func PlanUnits(kernels []workload.Kernel, opts Options, inputsFor func(workload.Kernel) []workload.Input) ([]UnitSpec, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if inputsFor == nil {
		inputsFor = CCDInputs
	}
	_, units := planCollect(kernels, opts, inputsFor)
	specs := make([]UnitSpec, len(units))
	for i, u := range units {
		specs[i] = unitSpec(u, opts)
	}
	return specs, nil
}

// ExecuteUnit executes one unit spec in-process: the profiling pass,
// per-shard trace recording, and a replayed simulation per training
// architecture, building the exact samples local assembly would build.
// It is what napel-worker runs for every lease, and the reference
// implementation any UnitExecutor must be payload-equivalent to. reg
// may be nil.
func ExecuteUnit(ctx context.Context, spec UnitSpec, reg *obs.Registry) (*UnitPayload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	k, err := workload.ByName(spec.Kernel)
	if err != nil {
		return nil, err
	}
	u := collectUnit{kernel: k, in: spec.Input, key: inputKey(spec.Kernel, spec.Input)}
	opts := Options{ProfileBudget: spec.ProfileBudget, SimBudget: spec.SimBudget, TrainArchs: spec.TrainArchs}
	r := runCollectUnit(ctx, u, opts, newEngineObs(reg))
	if r.err != nil {
		return nil, r.err
	}
	if !r.done {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("napel: unit %s did not complete", u.key)
	}
	simTime := r.recordTime
	for _, d := range r.simTimes {
		simTime += d
	}
	return &UnitPayload{
		Key:         u.key,
		Samples:     unitSamples(u, r.prof, r.sims, nil, spec.TrainArchs),
		ProfileTime: r.profileTime,
		SimTime:     simTime,
	}, nil
}

// CollectUnits executes exactly the given units (typically a subset of
// PlanUnits' pool selected by the active learner) through the engine's
// worker pool, honoring Options.Executor, UnitRetries and
// QuarantineFailures. It returns the payload per unit key; quarantined
// units are absent from the map and reported separately, deduplicated
// by key, in spec order.
func CollectUnits(ctx context.Context, specs []UnitSpec, opts Options) (map[string]*UnitPayload, []QuarantinedUnit, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Dedupe by key, as planning does: executing a spec twice could only
	// produce the identical payload again.
	var units []collectUnit
	seen := map[string]bool{}
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, nil, err
		}
		k, err := workload.ByName(spec.Kernel)
		if err != nil {
			return nil, nil, err
		}
		key := inputKey(spec.Kernel, spec.Input)
		if seen[key] {
			continue
		}
		seen[key] = true
		units = append(units, collectUnit{kernel: k, in: spec.Input, key: key})
	}

	results := make([]unitResult, len(units))
	var mu sync.Mutex
	workers := opts.workers()
	if workers > len(units) {
		workers = len(units)
	}
	eo := newEngineObs(opts.Metrics)
	eo.startRun(workers, len(units), 0)
	defer eo.endRun()
	ectx, espan := obs.StartSpan(ctx, "engine")
	espan.SetAttrInt("units", int64(len(units)))
	espan.SetAttrInt("workers", int64(workers))
	runPool(ctx, workers, len(units), func(idx int) {
		eo.unitStart()
		t0 := time.Now()
		r := collectOneUnit(ectx, units[idx], opts, eo)
		eo.unitEnd(time.Since(t0).Seconds(), r.done, r.err)
		mu.Lock()
		results[idx] = r
		mu.Unlock()
	})
	espan.End()

	for i := range results {
		err := results[i].err
		if err != nil && !results[i].quarantined && !isCanceled(err) {
			return nil, nil, fmt.Errorf("napel: collecting %s: %w", units[i].kernel.Name(), err)
		}
	}

	payloads := make(map[string]*UnitPayload, len(units))
	var quarantined []QuarantinedUnit
	for idx := range results {
		r := &results[idx]
		u := units[idx]
		switch {
		case r.quarantined:
			quarantined = append(quarantined, QuarantinedUnit{App: u.kernel.Name(), Input: u.in, Error: r.err.Error()})
		case !r.done:
			// Skipped by cancellation; surfaced via ctx.Err below.
		case r.samples != nil:
			payloads[u.key] = &UnitPayload{Key: u.key, Samples: r.samples}
		default:
			simTime := r.recordTime
			for _, d := range r.simTimes {
				simTime += d
			}
			payloads[u.key] = &UnitPayload{
				Key:         u.key,
				Samples:     unitSamples(u, r.prof, r.sims, nil, opts.TrainArchs),
				ProfileTime: r.profileTime,
				SimTime:     simTime,
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return payloads, quarantined, err
	}
	return payloads, quarantined, nil
}

// AssemblePayloads injects collected unit payloads back into the full
// plan for kernels and assembles them in deterministic plan order —
// the final step of an active-learning collection, and byte-identical
// (under SaveTrainingData) to a plain Collect when every planned unit's
// payload is present. Units without a payload are simply absent from
// Samples, exactly like units skipped by cancellation.
func AssemblePayloads(kernels []workload.Kernel, opts Options, payloads map[string]*UnitPayload) (*TrainingData, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	plans, units := planCollect(kernels, opts, CCDInputs)
	results := make([]unitResult, len(units))
	for idx, u := range units {
		p, ok := payloads[u.key]
		if !ok {
			continue
		}
		if err := p.Check(unitSpec(u, opts)); err != nil {
			return nil, err
		}
		results[idx] = unitResult{samples: p.Samples, done: true}
	}
	return assembleTrainingData(plans, units, results, opts), nil
}
