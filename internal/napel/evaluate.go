package napel

import (
	"fmt"
	"sort"
	"time"

	"napel/internal/ml"
	"napel/internal/stats"
	"napel/internal/workload"
)

// AccuracyRow is one application's leave-one-application-out accuracy
// (one bar of Figure 5).
type AccuracyRow struct {
	App       string
	MRE       float64
	TrainTime time.Duration
}

// EvaluateLOOCV reproduces the paper's accuracy protocol (Section 3.3):
// for every application, a model is trained on all *other* applications'
// samples and evaluated on the held-out application's samples with the
// mean relative error of Equation 1. trainer builds the model (NAPEL's
// random forest or one of the Figure 5 baselines).
func EvaluateLOOCV(td *TrainingData, target Target, trainer ml.Trainer, seed uint64) ([]AccuracyRow, error) {
	d := td.Dataset(target)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	folds := ml.LeaveOneGroupOut(d)
	apps := d.GroupNames()
	sort.Strings(apps)
	rows := make([]AccuracyRow, 0, len(apps))
	for _, app := range apps {
		fold := folds[app]
		if len(fold.Train) == 0 || len(fold.Test) == 0 {
			continue
		}
		t0 := time.Now()
		model, err := trainer.Train(d.Subset(fold.Train), seed)
		if err != nil {
			return nil, fmt.Errorf("napel: LOOCV training for %s: %w", app, err)
		}
		rows = append(rows, AccuracyRow{
			App:       app,
			MRE:       ml.MRE(model, d.Subset(fold.Test)),
			TrainTime: time.Since(t0),
		})
	}
	return rows, nil
}

// MeanMRE averages the per-application errors.
func MeanMRE(rows []AccuracyRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rows {
		s += r.MRE
	}
	return s / float64(len(rows))
}

// SuitabilityRow is one application of the Figure 7 use case: estimated
// EDP reduction of offloading to NMC versus host execution, from NAPEL's
// prediction and from the simulator ("Actual").
type SuitabilityRow struct {
	App          string
	HostTimeSec  float64
	HostEnergyJ  float64
	HostEDP      float64
	PredEDP      float64 // NAPEL-estimated NMC EDP
	ActualEDP    float64 // simulator NMC EDP
	PredReduct   float64 // HostEDP / PredEDP
	ActualReduct float64 // HostEDP / ActualEDP
	EDPError     float64 // |PredEDP − ActualEDP| / ActualEDP
}

// Suitable reports whether the simulator deems NMC offload beneficial
// (EDP reduction > 1), the paper's suitability criterion.
func (r SuitabilityRow) Suitable() bool { return r.ActualReduct > 1 }

// Agreement reports whether NAPEL's estimate reaches the same
// suitability verdict as the simulator (the paper's first observation on
// Figure 7).
func (r SuitabilityRow) Agreement() bool { return (r.PredReduct > 1) == (r.ActualReduct > 1) }

// SuitabilityAnalysis reproduces the Figure 7 use case for the given
// kernels at their Table 2 test inputs: the host EDP comes from the host
// model, the "Actual" NMC EDP from the simulator at the reference
// architecture, and the NAPEL estimate from a model trained on the
// *other* applications (leave-one-application-out, as in Section 3.3).
func SuitabilityAnalysis(kernels []workload.Kernel, td *TrainingData, opts Options, seed uint64) ([]SuitabilityRow, error) {
	ipcData := td.Dataset(TargetIPC)
	epiData := td.Dataset(TargetEPI)
	if err := ipcData.Validate(); err != nil {
		return nil, err
	}
	ipcFolds := ml.LeaveOneGroupOut(ipcData)
	trainer := DefaultRFTrainer()

	rows := make([]SuitabilityRow, 0, len(kernels))
	for _, k := range kernels {
		app := k.Name()
		testIn := workload.Scale(k, workload.TestInput(k), opts.TestScaleFactor, opts.TestMaxIters)

		host, err := HostRun(k, testIn, opts.Host, opts.HostBudget)
		if err != nil {
			return nil, fmt.Errorf("napel: host run for %s: %w", app, err)
		}
		actual, err := SimulateKernel(k, testIn, opts.RefArch, opts.SimBudget)
		if err != nil {
			return nil, fmt.Errorf("napel: NMC simulation for %s: %w", app, err)
		}

		fold, ok := ipcFolds[app]
		if !ok || len(fold.Train) == 0 {
			return nil, fmt.Errorf("napel: no training data excluding %s", app)
		}
		ipcModel, err := trainer.Train(ipcData.Subset(fold.Train), seed)
		if err != nil {
			return nil, err
		}
		epiModel, err := trainer.Train(epiData.Subset(fold.Train), seed)
		if err != nil {
			return nil, err
		}
		pred := Predictor{IPC: ipcModel, EPI: epiModel, Names: td.Names}

		prof, err := ProfileKernel(k, testIn, opts.ProfileBudget)
		if err != nil {
			return nil, err
		}
		est := pred.Predict(prof, opts.RefArch, testIn.Threads())

		row := SuitabilityRow{
			App:         app,
			HostTimeSec: host.TimeSec,
			HostEnergyJ: host.EnergyJ,
			HostEDP:     host.EDP,
			PredEDP:     est.EDP,
			ActualEDP:   actual.EDP,
		}
		if row.PredEDP > 0 {
			row.PredReduct = row.HostEDP / row.PredEDP
		}
		if row.ActualEDP > 0 {
			row.ActualReduct = row.HostEDP / row.ActualEDP
			row.EDPError = stats.RelErr(row.PredEDP, row.ActualEDP)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
