package napel

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"napel/internal/hostsim"
	"napel/internal/ml"
	"napel/internal/pisa"
	"napel/internal/stats"
	"napel/internal/trace"
	"napel/internal/workload"
)

// AccuracyRow is one application's leave-one-application-out accuracy
// (one bar of Figure 5).
type AccuracyRow struct {
	App       string
	MRE       float64
	TrainTime time.Duration
}

// EvaluateLOOCV reproduces the paper's accuracy protocol (Section 3.3):
// for every application, a model is trained on all *other* applications'
// samples and evaluated on the held-out application's samples with the
// mean relative error of Equation 1. trainer builds the model (NAPEL's
// random forest or one of the Figure 5 baselines).
func EvaluateLOOCV(td *TrainingData, target Target, trainer ml.Trainer, seed uint64) ([]AccuracyRow, error) {
	return EvaluateLOOCVContext(context.Background(), td, target, trainer, seed, 0)
}

// EvaluateLOOCVContext is EvaluateLOOCV with cancellation and a worker
// count: the per-application folds are independent (trainers are pure
// values), so they train concurrently across workers goroutines
// (0 = GOMAXPROCS). Rows come back in sorted application order
// regardless of completion order.
func EvaluateLOOCVContext(ctx context.Context, td *TrainingData, target Target, trainer ml.Trainer, seed uint64, workers int) ([]AccuracyRow, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	d := td.Dataset(target)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	folds := ml.LeaveOneGroupOut(d)
	apps := d.GroupNames()
	sort.Strings(apps)

	type foldOut struct {
		row  AccuracyRow
		err  error
		done bool
	}
	results := make([]foldOut, len(apps))
	runFold := func(i int) {
		app := apps[i]
		fold := folds[app]
		if len(fold.Train) == 0 || len(fold.Test) == 0 {
			return // skipped, matching the serial loop
		}
		if ctx.Err() != nil {
			return
		}
		t0 := time.Now()
		model, err := trainer.Train(d.Subset(fold.Train), seed)
		if err != nil {
			results[i].err = fmt.Errorf("napel: LOOCV training for %s: %w", app, err)
			return
		}
		results[i] = foldOut{
			row: AccuracyRow{
				App:       app,
				MRE:       ml.MRE(model, d.Subset(fold.Test)),
				TrainTime: time.Since(t0),
			},
			done: true,
		}
	}
	runPool(ctx, Options{Workers: workers}.workers(), len(apps), runFold)

	rows := make([]AccuracyRow, 0, len(apps))
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		if results[i].done {
			rows = append(rows, results[i].row)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// runPool runs f(0..n-1) across at most workers goroutines, stopping the
// feed (but not in-flight calls) when ctx is cancelled. Each index owns
// its own result slot, so f needs no locking.
func runPool(ctx context.Context, workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
}

// MeanMRE averages the per-application errors.
func MeanMRE(rows []AccuracyRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rows {
		s += r.MRE
	}
	return s / float64(len(rows))
}

// SuitabilityRow is one application of the Figure 7 use case: estimated
// EDP reduction of offloading to NMC versus host execution, from NAPEL's
// prediction and from the simulator ("Actual").
type SuitabilityRow struct {
	App          string
	HostTimeSec  float64
	HostEnergyJ  float64
	HostEDP      float64
	PredEDP      float64 // NAPEL-estimated NMC EDP
	ActualEDP    float64 // simulator NMC EDP
	PredReduct   float64 // HostEDP / PredEDP
	ActualReduct float64 // HostEDP / ActualEDP
	EDPError     float64 // |PredEDP − ActualEDP| / ActualEDP
}

// Suitable reports whether the simulator deems NMC offload beneficial
// (EDP reduction > 1), the paper's suitability criterion.
func (r SuitabilityRow) Suitable() bool { return r.ActualReduct > 1 }

// Agreement reports whether NAPEL's estimate reaches the same
// suitability verdict as the simulator (the paper's first observation on
// Figure 7).
func (r SuitabilityRow) Agreement() bool { return (r.PredReduct > 1) == (r.ActualReduct > 1) }

// SuitabilityAnalysis reproduces the Figure 7 use case for the given
// kernels at their Table 2 test inputs: the host EDP comes from the host
// model, the "Actual" NMC EDP from the simulator at the reference
// architecture, and the NAPEL estimate from a model trained on the
// *other* applications (leave-one-application-out, as in Section 3.3).
func SuitabilityAnalysis(kernels []workload.Kernel, td *TrainingData, opts Options, seed uint64) ([]SuitabilityRow, error) {
	return SuitabilityAnalysisContext(context.Background(), kernels, td, opts, seed)
}

// SuitabilityAnalysisContext is SuitabilityAnalysis with cancellation
// and the single-pass engine underneath: per kernel, the host model and
// the PISA profiler share ONE sequential trace execution via
// trace.Fanout (instead of a dedicated run each), and the per-kernel
// analyses — each also training two leave-one-out models — run across
// opts.Workers goroutines. Rows come back in kernel order.
func SuitabilityAnalysisContext(ctx context.Context, kernels []workload.Kernel, td *TrainingData, opts Options, seed uint64) ([]SuitabilityRow, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Host.Validate(); err != nil {
		return nil, err
	}
	ipcData := td.Dataset(TargetIPC)
	epiData := td.Dataset(TargetEPI)
	if err := ipcData.Validate(); err != nil {
		return nil, err
	}
	ipcFolds := ml.LeaveOneGroupOut(ipcData)
	trainer := DefaultRFTrainer()

	type suitOut struct {
		row  SuitabilityRow
		err  error
		done bool
	}
	results := make([]suitOut, len(kernels))
	runKernel := func(i int) {
		k := kernels[i]
		app := k.Name()
		if ctx.Err() != nil {
			return
		}
		testIn := workload.Scale(k, workload.TestInput(k), opts.TestScaleFactor, opts.TestMaxIters)
		if err := workload.Validate(k, testIn); err != nil {
			results[i].err = err
			return
		}

		host, prof, err := hostAndProfile(k, testIn, opts)
		if err != nil {
			results[i].err = fmt.Errorf("napel: host run for %s: %w", app, err)
			return
		}
		actual, err := SimulateKernel(k, testIn, opts.RefArch, opts.SimBudget)
		if err != nil {
			results[i].err = fmt.Errorf("napel: NMC simulation for %s: %w", app, err)
			return
		}

		fold, ok := ipcFolds[app]
		if !ok || len(fold.Train) == 0 {
			results[i].err = fmt.Errorf("napel: no training data excluding %s", app)
			return
		}
		ipcModel, err := trainer.Train(ipcData.Subset(fold.Train), seed)
		if err != nil {
			results[i].err = err
			return
		}
		epiModel, err := trainer.Train(epiData.Subset(fold.Train), seed)
		if err != nil {
			results[i].err = err
			return
		}
		pred := Predictor{IPC: ipcModel, EPI: epiModel, Names: td.Names}
		est := pred.Predict(prof, opts.RefArch, testIn.Threads())

		row := SuitabilityRow{
			App:         app,
			HostTimeSec: host.TimeSec,
			HostEnergyJ: host.EnergyJ,
			HostEDP:     host.EDP,
			PredEDP:     est.EDP,
			ActualEDP:   actual.EDP,
		}
		if row.PredEDP > 0 {
			row.PredReduct = row.HostEDP / row.PredEDP
		}
		if row.ActualEDP > 0 {
			row.ActualReduct = row.HostEDP / row.ActualEDP
			row.EDPError = stats.RelErr(row.PredEDP, row.ActualEDP)
		}
		results[i] = suitOut{row: row, done: true}
	}
	runPool(ctx, opts.workers(), len(kernels), runKernel)

	rows := make([]SuitabilityRow, 0, len(kernels))
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		if results[i].done {
			rows = append(rows, results[i].row)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// hostAndProfile runs the host model and the PISA profiler off a single
// sequential execution of k's trace. The host sink carries the larger
// budget in every shipped configuration, so its view — and the host
// Result — is bit-identical to a dedicated hostsim.Run; the profiler is
// capped at exactly ProfileBudget instructions from the same pass. The
// input must already be validated.
func hostAndProfile(k workload.Kernel, in workload.Input, opts Options) (*hostsim.Result, *pisa.Profile, error) {
	threads := in.Threads()
	if threads <= 0 {
		return nil, nil, fmt.Errorf("hostsim: thread count %d must be positive", threads)
	}
	gen := func(shard, nshards int, t *trace.Tracer) { k.Trace(in, shard, nshards, t) }
	col := hostsim.NewCollector(opts.Host, hostsim.ProbeSharing(gen, threads, opts.HostBudget))
	profiler := pisa.NewProfiler()
	hostSink := &trace.Sink{C: col, Budget: opts.HostBudget}
	profSink := &trace.Sink{C: profiler, Budget: opts.ProfileBudget}
	trace.Fanout(func(t *trace.Tracer) { gen(0, 1, t) }, hostSink, profSink)
	return col.Finish(hostSink.Coverage, threads), profiler.Finish(profSink.Coverage), nil
}
