package napel

import (
	"strings"
	"testing"

	"napel/internal/obs"
	"napel/internal/resilience/faultpoint"
)

// TestUnitRetryRecoversInjectedFaults: with per-unit retries configured,
// a fault plan that fails a fraction of unit attempts must not change
// the collected dataset — every unit eventually succeeds and the output
// stays bit-identical to a fault-free run.
func TestUnitRetryRecoversInjectedFaults(t *testing.T) {
	kernels := quickKernels(t, "atax")
	opts := quickOptions()
	opts.Workers = 2

	clean, err := Collect(kernels, opts)
	if err != nil {
		t.Fatal(err)
	}

	if err := faultpoint.Enable(3, "engine.unit:0.4"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disable()
	opts.UnitRetries = 8
	opts.Metrics = obs.NewRegistry()
	faulted, err := Collect(kernels, opts)
	injected := faultpoint.Count(fpUnit)
	faultpoint.Disable()
	if err != nil {
		t.Fatalf("collection under faults: %v", err)
	}
	if injected == 0 {
		t.Fatal("fault plan never fired; the test proved nothing")
	}
	if len(faulted.Samples) != len(clean.Samples) {
		t.Fatalf("%d samples under faults, want %d", len(faulted.Samples), len(clean.Samples))
	}
	if len(faulted.Quarantined) != 0 {
		t.Fatalf("units quarantined despite retries: %+v", faulted.Quarantined)
	}
	var sb strings.Builder
	if err := opts.Metrics.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "napel_engine_unit_retries_total") {
		t.Fatalf("retry counter missing from metrics:\n%s", sb.String())
	}
}

// TestQuarantineExcludesPoisonedUnits: a unit that fails every attempt
// is quarantined — reported in TrainingData.Quarantined with the rest of
// the dataset intact — instead of aborting the collection. Without
// QuarantineFailures the same plan aborts the run, preserving the
// abort-on-first-error default.
func TestQuarantineExcludesPoisonedUnits(t *testing.T) {
	kernels := quickKernels(t, "atax")
	opts := quickOptions()
	opts.Workers = 2

	clean, err := Collect(kernels, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Probability 1: every attempt at every unit fails, so each unit
	// exhausts its retries and lands in quarantine.
	if err := faultpoint.Enable(5, "engine.unit:1"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disable()

	aborted := opts
	if _, err := Collect(kernels, aborted); err == nil {
		t.Fatal("collection under a total fault plan succeeded without quarantine enabled")
	}

	q := opts
	q.UnitRetries = 1
	q.QuarantineFailures = true
	q.Metrics = obs.NewRegistry()
	td, err := Collect(kernels, q)
	faultpoint.Disable()
	if err != nil {
		t.Fatalf("quarantine-mode collection failed: %v", err)
	}
	if len(td.Samples) != 0 {
		t.Fatalf("poisoned units still produced %d samples", len(td.Samples))
	}
	wantUnits := len(clean.Profiles) // one profile per distinct unit
	if len(td.Quarantined) != wantUnits {
		t.Fatalf("%d quarantined units, want %d", len(td.Quarantined), wantUnits)
	}
	for _, qu := range td.Quarantined {
		if qu.App != "atax" || qu.Error == "" || qu.Input == nil {
			t.Fatalf("incomplete quarantine record: %+v", qu)
		}
	}
	var sb strings.Builder
	if err := q.Metrics.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "napel_engine_units_quarantined_total") {
		t.Fatalf("quarantine counter missing from metrics:\n%s", text)
	}
}
