package napel

import (
	"context"
	"errors"
	"fmt"
	"time"

	"napel/internal/nmcsim"
	"napel/internal/pisa"
	"napel/internal/trace"
	"napel/internal/workload"
)

// This file is the data-collection engine: Collect decomposed into
// independent (kernel, input) units executed by a worker pool, each unit
// tracing its kernel once per shard and replaying the recordings to
// every training architecture. Results are written into a preallocated
// slot per unit and assembled into TrainingData in plan order, so the
// output is bit-identical for any worker count.

// collectUnit is one distinct (kernel, scaled input) pair. CCD centre
// replicates collapse onto a single unit and are re-expanded at assembly.
type collectUnit struct {
	kernel workload.Kernel
	in     workload.Input
	key    string
}

// kernelPlan remembers how one kernel's input list maps onto units so
// assembly can reproduce the exact serial-collection sample order,
// replicates included.
type kernelPlan struct {
	k         workload.Kernel
	occ       []int // unit index per input occurrence, in selection order
	numInputs int
}

// unitResult is everything one unit produces. done distinguishes a
// finished unit from one skipped by cancellation; wall-clock durations
// are kept separate from the deterministic payload.
type unitResult struct {
	prof        *pisa.Profile
	profileTime time.Duration
	recordTime  time.Duration
	sims        []*nmcsim.Result
	simTimes    []time.Duration
	err         error
	done        bool
}

// CollectContext is Collect with cancellation: on ctx cancellation it
// stops scheduling units and returns the data assembled so far alongside
// ctx.Err(), so callers can still report partial timing.
func CollectContext(ctx context.Context, kernels []workload.Kernel, opts Options) (*TrainingData, error) {
	return CollectWithInputsContext(ctx, kernels, opts, CCDInputs)
}

// CollectWithInputsContext is the engine entry point backing every
// Collect variant.
func CollectWithInputsContext(ctx context.Context, kernels []workload.Kernel, opts Options, inputsFor func(workload.Kernel) []workload.Input) (*TrainingData, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Plan: dedupe the scaled inputs into units, remembering each
	// kernel's occurrence order for deterministic assembly.
	var units []collectUnit
	unitIdx := map[string]int{}
	plans := make([]kernelPlan, 0, len(kernels))
	for _, k := range kernels {
		inputs := inputsFor(k)
		plan := kernelPlan{k: k, numInputs: len(inputs)}
		for _, rawIn := range inputs {
			in := workload.Scale(k, rawIn, opts.ScaleFactor, opts.MaxIters)
			key := inputKey(k.Name(), in)
			idx, ok := unitIdx[key]
			if !ok {
				idx = len(units)
				unitIdx[key] = idx
				units = append(units, collectUnit{kernel: k, in: in, key: key})
			}
			plan.occ = append(plan.occ, idx)
		}
		plans = append(plans, plan)
	}

	// Execute: a worker pool over the unit list. Each unit owns its own
	// result slot, so no shared state is written concurrently.
	results := make([]unitResult, len(units))
	runPool(ctx, opts.workers(), len(units), func(idx int) {
		results[idx] = runCollectUnit(ctx, units[idx], opts)
	})

	// The first hard error in unit order wins, matching the serial
	// loop's abort-at-first-failure contract. Context aborts are not
	// hard errors — they surface via ctx.Err() below so partial data
	// survives a SIGINT.
	for i := range results {
		err := results[i].err
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("napel: collecting %s: %w", units[i].kernel.Name(), err)
		}
	}

	// Assemble single-threaded in plan order: the output is a pure
	// function of the unit results, independent of completion order.
	td := &TrainingData{
		Names:       append(append([]string(nil), pisa.FeatureNames()...), ArchFeatureNames()...),
		Profiles:    map[string]*pisa.Profile{},
		DoEConfigs:  map[string]int{},
		SimTime:     map[string]time.Duration{},
		ProfileTime: map[string]time.Duration{},
	}
	for _, plan := range plans {
		td.DoEConfigs[plan.k.Name()] = plan.numInputs
		for _, idx := range plan.occ {
			r := &results[idx]
			if !r.done {
				continue
			}
			u := units[idx]
			if _, ok := td.Profiles[u.key]; !ok {
				td.Profiles[u.key] = r.prof
				td.ProfileTime[u.kernel.Name()] += r.profileTime
				simDur := r.recordTime
				for _, d := range r.simTimes {
					simDur += d
				}
				td.SimTime[u.kernel.Name()] += simDur
			}
			base := r.prof.Vector()
			for ai, arch := range opts.TrainArchs {
				feat := make([]float64, 0, len(base)+NumArchFeatures)
				feat = append(feat, base...)
				feat = append(feat, ArchVector(arch, r.prof, u.in.Threads())...)
				td.Samples = append(td.Samples, Sample{
					App:       u.kernel.Name(),
					Input:     u.in,
					ArchIdx:   ai,
					ActivePEs: ActivePEs(u.in.Threads(), arch.PEs),
					Features:  feat,
					IPC:       r.sims[ai].IPC,
					EPI:       r.sims[ai].EPI,
					SimTime:   r.simTimes[ai],
				})
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return td, err
	}
	return td, nil
}

// runCollectUnit executes one unit: the profiling pass, one trace
// recording per shard, and a replayed simulation per training
// architecture. The kernel's trace generator runs exactly 1+threads
// times regardless of how many architectures are trained on — the
// single-pass saving over the per-arch re-execution it replaces.
func runCollectUnit(ctx context.Context, u collectUnit, opts Options) unitResult {
	var r unitResult
	if ctx.Err() != nil {
		return r
	}
	t0 := time.Now()
	prof, err := ProfileKernel(u.kernel, u.in, opts.ProfileBudget)
	if err != nil {
		r.err = err
		return r
	}
	r.profileTime = time.Since(t0)
	r.prof = prof

	threads := u.in.Threads()
	t0 = time.Now()
	recs, err := recordShards(u.kernel, u.in, threads, opts.SimBudget)
	if err != nil {
		r.err = err
		return r
	}
	r.recordTime = time.Since(t0)

	r.sims = make([]*nmcsim.Result, len(opts.TrainArchs))
	r.simTimes = make([]time.Duration, len(opts.TrainArchs))
	for ai, arch := range opts.TrainArchs {
		if err := ctx.Err(); err != nil {
			r.err = err
			return r
		}
		t0 = time.Now()
		res, err := nmcsim.RunSources(arch, threads, opts.SimBudget, func(shard int, _ uint64) trace.InstSource {
			return recs[shard].Source()
		})
		if err != nil {
			r.err = err
			return r
		}
		r.simTimes[ai] = time.Since(t0)
		r.sims[ai] = res
	}
	r.done = true
	return r
}

// recordShards materializes kernel k's trace once per shard at the
// per-thread budget nmcsim would apply. Shard traces are independent of
// the simulated architecture, so the recordings replay bit-identically
// to any number of configs.
func recordShards(k workload.Kernel, in workload.Input, threads int, budget uint64) ([]*trace.Recording, error) {
	if err := workload.Validate(k, in); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("napel: thread count %d must be positive", threads)
	}
	per := nmcsim.PerThreadBudget(budget, threads)
	recs := make([]*trace.Recording, threads)
	for shard := range recs {
		shard := shard
		recs[shard] = trace.Record(per, func(t *trace.Tracer) {
			k.Trace(in, shard, threads, t)
		})
	}
	return recs, nil
}

// SimulateKernelArchs simulates kernel k with input in on every config
// in archs from a single set of shard recordings — the single-pass
// replacement for calling SimulateKernel once per architecture. Results
// are bit-identical to the individual runs and positionally aligned
// with archs.
func SimulateKernelArchs(ctx context.Context, k workload.Kernel, in workload.Input, archs []nmcsim.Config, budget uint64) ([]*nmcsim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	threads := in.Threads()
	recs, err := recordShards(k, in, threads, budget)
	if err != nil {
		return nil, err
	}
	out := make([]*nmcsim.Result, len(archs))
	for i, cfg := range archs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i], err = nmcsim.RunSources(cfg, threads, budget, func(shard int, _ uint64) trace.InstSource {
			return recs[shard].Source()
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
