package napel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"napel/internal/nmcsim"
	"napel/internal/obs"
	"napel/internal/pisa"
	"napel/internal/resilience/faultpoint"
	"napel/internal/trace"
	"napel/internal/workload"
)

// fpUnit fails a collection unit's attempt at its start, active only
// under an installed faultpoint plan — the hook the chaos harness uses
// to exercise per-unit retry and quarantine.
const fpUnit = "engine.unit"

// This file is the data-collection engine: Collect decomposed into
// independent (kernel, input) units executed by a worker pool, each unit
// tracing its kernel once per shard and replaying the recordings to
// every training architecture. Results are written into a preallocated
// slot per unit and assembled into TrainingData in plan order, so the
// output is bit-identical for any worker count.

// collectUnit is one distinct (kernel, scaled input) pair. CCD centre
// replicates collapse onto a single unit and are re-expanded at assembly.
type collectUnit struct {
	kernel workload.Kernel
	in     workload.Input
	key    string
}

// kernelPlan remembers how one kernel's input list maps onto units so
// assembly can reproduce the exact serial-collection sample order,
// replicates included.
type kernelPlan struct {
	k         workload.Kernel
	occ       []int // unit index per input occurrence, in selection order
	numInputs int
}

// unitResult is everything one unit produces. done distinguishes a
// finished unit from one skipped by cancellation; wall-clock durations
// are kept separate from the deterministic payload. A unit restored
// from a resume checkpoint — or executed remotely through
// Options.Executor — carries its per-architecture samples instead of a
// profile and simulator results (checkpoints and unit payloads persist
// only the deterministic sample payload).
type unitResult struct {
	prof        *pisa.Profile
	profileTime time.Duration
	recordTime  time.Duration
	sims        []*nmcsim.Result
	simTimes    []time.Duration
	samples     []Sample // one sample per training arch, pre-built (checkpoint restore or executor payload)
	err         error
	done        bool
	// quarantined marks a unit whose error exhausted its retries under
	// Options.QuarantineFailures: it is excluded from the dataset
	// instead of failing the run.
	quarantined bool
}

// CollectCheckpoint wires crash-safe collection into the engine: Prior
// seeds the run with units completed by an earlier (interrupted)
// collection of the same kernels and options, and OnUnit lets the
// caller persist progress as units finish. Both fields are optional.
type CollectCheckpoint struct {
	// Prior is a dataset saved from a previous partial collection
	// (typically LoadTrainingData of a checkpoint file). Units whose
	// samples for every training architecture appear in Prior are not
	// re-executed; their samples are restored verbatim. Prior must have
	// the same feature layout the run would produce. Restored units
	// contribute no Profiles/SimTime/ProfileTime entries — checkpoints
	// never carry those — but the assembled Samples, and therefore any
	// predictor trained on them, are bit-identical to an uninterrupted
	// run (JSON float64 round-trips are exact).
	Prior *TrainingData
	// OnUnit, when non-nil, is invoked after every unit completes —
	// serially, under the engine's bookkeeping lock — with the number of
	// finished units (restored ones included), the total, and a snapshot
	// function assembling everything collected so far into a fresh
	// TrainingData. Assembly costs O(collected samples); callers that
	// checkpoint on an interval should only invoke snapshot when they
	// actually persist. snapshot must not be called after OnUnit returns.
	OnUnit func(done, total int, snapshot func() *TrainingData)
}

// CollectContext is Collect with cancellation: on ctx cancellation it
// stops scheduling units and returns the data assembled so far alongside
// ctx.Err(), so callers can still report partial timing.
func CollectContext(ctx context.Context, kernels []workload.Kernel, opts Options) (*TrainingData, error) {
	return CollectWithInputsContext(ctx, kernels, opts, CCDInputs)
}

// CollectResumeContext is CollectContext with checkpoint support: it
// restores completed units from ck.Prior and reports per-unit progress
// through ck.OnUnit. It is the entry point of `napel train -resume` and
// the napel-traind job manager.
func CollectResumeContext(ctx context.Context, kernels []workload.Kernel, opts Options, ck *CollectCheckpoint) (*TrainingData, error) {
	return collectEngine(ctx, kernels, opts, CCDInputs, ck)
}

// CollectWithInputsContext is Collect with a custom input-selection
// strategy and cancellation.
func CollectWithInputsContext(ctx context.Context, kernels []workload.Kernel, opts Options, inputsFor func(workload.Kernel) []workload.Input) (*TrainingData, error) {
	return collectEngine(ctx, kernels, opts, inputsFor, nil)
}

// collectEngine is the engine entry point backing every Collect variant.
func collectEngine(ctx context.Context, kernels []workload.Kernel, opts Options, inputsFor func(workload.Kernel) []workload.Input, ck *CollectCheckpoint) (*TrainingData, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	plans, units := planCollect(kernels, opts, inputsFor)

	// Restore units completed by a previous run before scheduling any
	// work: a restored slot is done from the start and the worker pool
	// skips it.
	results := make([]unitResult, len(units))
	done := 0
	if ck != nil && ck.Prior != nil {
		restored, err := restoreUnits(ck.Prior, units, opts)
		if err != nil {
			return nil, err
		}
		for idx, samples := range restored {
			results[idx] = unitResult{samples: samples, done: true}
			done++
		}
	}

	// Execute: a worker pool over the unit list. Each unit computes
	// outside the bookkeeping lock and only publishes its result slot —
	// and fires the checkpoint hook — under it, so OnUnit's snapshot can
	// safely assemble the results collected so far.
	var mu sync.Mutex
	total := len(units)
	workers := opts.workers()
	if workers > total {
		workers = total
	}
	eo := newEngineObs(opts.Metrics)
	eo.startRun(workers, total-done, done)
	defer eo.endRun()
	ectx, espan := obs.StartSpan(ctx, "engine")
	espan.SetAttrInt("units", int64(total))
	espan.SetAttrInt("restored", int64(done))
	espan.SetAttrInt("workers", int64(workers))
	runPool(ctx, workers, len(units), func(idx int) {
		if results[idx].done {
			return // restored from the checkpoint
		}
		eo.unitStart()
		t0 := time.Now()
		r := collectOneUnit(ectx, units[idx], opts, eo)
		eo.unitEnd(time.Since(t0).Seconds(), r.done, r.err)
		mu.Lock()
		defer mu.Unlock()
		results[idx] = r
		if r.done {
			done++
			if ck != nil && ck.OnUnit != nil {
				tck := time.Now()
				ck.OnUnit(done, total, func() *TrainingData {
					return assembleTrainingData(plans, units, results, opts)
				})
				eo.observeCheckpoint(time.Since(tck).Seconds())
			}
		}
	})
	espan.End()

	// The first hard error in unit order wins, matching the serial
	// loop's abort-at-first-failure contract. Context aborts are not
	// hard errors — they surface via ctx.Err() below so partial data
	// survives a SIGINT. Quarantined units are not hard errors either:
	// they surface through TrainingData.Quarantined instead.
	for i := range results {
		err := results[i].err
		if err != nil && !results[i].quarantined && !isCanceled(err) {
			return nil, fmt.Errorf("napel: collecting %s: %w", units[i].kernel.Name(), err)
		}
	}

	td := assembleTrainingData(plans, units, results, opts)
	if err := ctx.Err(); err != nil {
		return td, err
	}
	return td, nil
}

// planCollect runs the engine's planning pass: dedupe the scaled inputs
// into units, remembering each kernel's occurrence order for
// deterministic assembly. It is shared by every entry point that must
// agree on unit identity — collection, PlanUnits, and AssemblePayloads.
func planCollect(kernels []workload.Kernel, opts Options, inputsFor func(workload.Kernel) []workload.Input) ([]kernelPlan, []collectUnit) {
	var units []collectUnit
	unitIdx := map[string]int{}
	plans := make([]kernelPlan, 0, len(kernels))
	for _, k := range kernels {
		inputs := inputsFor(k)
		plan := kernelPlan{k: k, numInputs: len(inputs)}
		for _, rawIn := range inputs {
			in := workload.Scale(k, rawIn, opts.ScaleFactor, opts.MaxIters)
			key := inputKey(k.Name(), in)
			idx, ok := unitIdx[key]
			if !ok {
				idx = len(units)
				unitIdx[key] = idx
				units = append(units, collectUnit{kernel: k, in: in, key: key})
			}
			plan.occ = append(plan.occ, idx)
		}
		plans = append(plans, plan)
	}
	return plans, units
}

// isCanceled reports whether err is a context abort — never retried,
// never quarantined, and not a hard collection error (partial data
// survives a SIGINT).
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// collectOneUnit executes one unit with per-unit retry and quarantine
// classification — the shared body of every engine entry point. With
// Options.Executor set the unit is delegated (leased to a remote
// worker by internal/collectd); executor failures flow through exactly
// the same retry/quarantine path as local ones, so a lease that
// expires or returns a corrupt payload is just another retryable error.
func collectOneUnit(ctx context.Context, u collectUnit, opts Options, eo *engineObs) unitResult {
	uctx, uspan := obs.StartSpan(ctx, "engine.unit")
	uspan.SetAttr("kernel", u.kernel.Name())
	uspan.SetAttrInt("threads", int64(u.in.Threads()))
	// Per-unit retry: unit work is deterministic, so a failure is
	// environmental (or injected) and an immediate re-execution is
	// the right recovery. Cancellation is never retried.
	var r unitResult
	for attempt := 1; ; attempt++ {
		if err := faultpoint.Inject(uctx, fpUnit); err != nil {
			r = unitResult{err: err}
		} else if opts.Executor != nil {
			r = executorResult(uctx, u, opts)
		} else {
			r = runCollectUnit(uctx, u, opts, eo)
		}
		if r.err == nil || attempt > opts.UnitRetries || uctx.Err() != nil || isCanceled(r.err) {
			break
		}
		eo.unitRetry()
	}
	if r.err != nil && opts.QuarantineFailures && uctx.Err() == nil && !isCanceled(r.err) {
		r.quarantined = true
		eo.unitQuarantined()
	}
	uspan.SetError(r.err)
	uspan.End()
	return r
}

// executorResult delegates one unit to Options.Executor and validates
// the returned payload against the plan before accepting its samples.
func executorResult(ctx context.Context, u collectUnit, opts Options) unitResult {
	spec := unitSpec(u, opts)
	p, err := opts.Executor(ctx, spec)
	if err != nil {
		return unitResult{err: err}
	}
	if err := p.Check(spec); err != nil {
		return unitResult{err: err}
	}
	return unitResult{samples: p.Samples, done: true}
}

// unitSamples builds the per-architecture samples for one locally
// executed unit. It is the single sample-construction path: local
// assembly and remote execution (ExecuteUnit) both call it, so the
// feature layout is code-identical on both sides of the collectd wire.
// simTimes nil zeroes per-sample SimTime — the wire/checkpoint contract.
func unitSamples(u collectUnit, prof *pisa.Profile, sims []*nmcsim.Result, simTimes []time.Duration, archs []nmcsim.Config) []Sample {
	base := prof.Vector()
	threads := u.in.Threads()
	out := make([]Sample, 0, len(archs))
	for ai, arch := range archs {
		feat := make([]float64, 0, len(base)+NumArchFeatures)
		feat = append(feat, base...)
		feat = append(feat, ArchVector(arch, prof, threads)...)
		var st time.Duration
		if simTimes != nil {
			st = simTimes[ai]
		}
		out = append(out, Sample{
			App:       u.kernel.Name(),
			Input:     u.in,
			ArchIdx:   ai,
			ActivePEs: ActivePEs(threads, arch.PEs),
			Features:  feat,
			IPC:       sims[ai].IPC,
			EPI:       sims[ai].EPI,
			SimTime:   st,
		})
	}
	return out
}

// assembleTrainingData builds the dataset single-threaded in plan order:
// the output is a pure function of the unit results, independent of
// completion order, so it serves both the final return value and the
// mid-run checkpoint snapshots.
func assembleTrainingData(plans []kernelPlan, units []collectUnit, results []unitResult, opts Options) *TrainingData {
	td := &TrainingData{
		Names:       append(append([]string(nil), pisa.FeatureNames()...), ArchFeatureNames()...),
		Profiles:    map[string]*pisa.Profile{},
		DoEConfigs:  map[string]int{},
		SimTime:     map[string]time.Duration{},
		ProfileTime: map[string]time.Duration{},
	}
	// Units were created in first-occurrence plan order, so a single
	// sweep reports quarantined units deterministically. Dedupe by unit
	// key: a unit that failed, retried, and failed again is one poisoned
	// unit, not several, and duplicate keys can reach this sweep when a
	// kernel appears twice in the plan.
	seenQ := map[string]bool{}
	for idx := range results {
		if results[idx].quarantined && !seenQ[units[idx].key] {
			seenQ[units[idx].key] = true
			td.Quarantined = append(td.Quarantined, QuarantinedUnit{
				App:   units[idx].kernel.Name(),
				Input: units[idx].in,
				Error: results[idx].err.Error(),
			})
		}
	}
	for _, plan := range plans {
		td.DoEConfigs[plan.k.Name()] = plan.numInputs
		for _, idx := range plan.occ {
			r := &results[idx]
			if !r.done {
				continue
			}
			u := units[idx]
			if r.samples != nil {
				// A unit restored from a checkpoint — or executed through
				// Options.Executor — replays its pre-built samples per
				// occurrence; profiles and timing were never transported,
				// so those maps skip it.
				td.Samples = append(td.Samples, r.samples...)
				continue
			}
			if _, ok := td.Profiles[u.key]; !ok {
				td.Profiles[u.key] = r.prof
				td.ProfileTime[u.kernel.Name()] += r.profileTime
				simDur := r.recordTime
				for _, d := range r.simTimes {
					simDur += d
				}
				td.SimTime[u.kernel.Name()] += simDur
			}
			td.Samples = append(td.Samples, unitSamples(u, r.prof, r.sims, r.simTimes, opts.TrainArchs)...)
		}
	}
	return td
}

// restoreUnits maps a prior (partial) dataset back onto the planned unit
// list: a unit is restorable when the prior holds one sample for every
// training architecture of this run. Returns unit index → samples in
// architecture order.
func restoreUnits(prior *TrainingData, units []collectUnit, opts Options) (map[int][]Sample, error) {
	wantNames := append(append([]string(nil), pisa.FeatureNames()...), ArchFeatureNames()...)
	if len(prior.Names) != len(wantNames) {
		return nil, fmt.Errorf("napel: resume checkpoint has %d features, want %d", len(prior.Names), len(wantNames))
	}
	for i := range wantNames {
		if prior.Names[i] != wantNames[i] {
			return nil, fmt.Errorf("napel: resume checkpoint feature %d is %q, want %q", i, prior.Names[i], wantNames[i])
		}
	}
	narchs := len(opts.TrainArchs)
	// First sample per (unit key, arch index) wins; centre replicates of
	// the same unit are byte-identical so any occurrence is equivalent.
	byKey := map[string][]Sample{}
	for _, s := range prior.Samples {
		if s.ArchIdx < 0 || s.ArchIdx >= narchs {
			continue
		}
		key := inputKey(s.App, s.Input)
		arr, ok := byKey[key]
		if !ok {
			arr = make([]Sample, narchs)
			byKey[key] = arr
		}
		if arr[s.ArchIdx].Features == nil {
			s.SimTime = 0
			arr[s.ArchIdx] = s
		}
	}
	restored := map[int][]Sample{}
	for idx, u := range units {
		arr, ok := byKey[u.key]
		if !ok {
			continue
		}
		complete := true
		for _, s := range arr {
			if s.Features == nil {
				complete = false
				break
			}
		}
		if complete {
			restored[idx] = arr
		}
	}
	return restored, nil
}

// runCollectUnit executes one unit: the profiling pass, one trace
// recording per shard, and a replayed simulation per training
// architecture. The kernel's trace generator runs exactly 1+threads
// times regardless of how many architectures are trained on — the
// single-pass saving over the per-arch re-execution it replaces.
func runCollectUnit(ctx context.Context, u collectUnit, opts Options, eo *engineObs) unitResult {
	var r unitResult
	if ctx.Err() != nil {
		return r
	}
	t0 := time.Now()
	_, pspan := obs.StartSpan(ctx, "profile")
	prof, err := ProfileKernel(u.kernel, u.in, opts.ProfileBudget)
	pspan.SetError(err)
	pspan.End()
	if err != nil {
		r.err = err
		return r
	}
	r.profileTime = time.Since(t0)
	r.prof = prof
	eo.observeStage("profile", r.profileTime.Seconds())

	threads := u.in.Threads()
	t0 = time.Now()
	_, rspan := obs.StartSpan(ctx, "record")
	recs, err := recordShards(u.kernel, u.in, threads, opts.SimBudget)
	rspan.SetError(err)
	rspan.End()
	if err != nil {
		r.err = err
		return r
	}
	r.recordTime = time.Since(t0)
	eo.observeStage("record", r.recordTime.Seconds())

	simStart := time.Now()
	_, sspan := obs.StartSpan(ctx, "simulate")
	sspan.SetAttrInt("archs", int64(len(opts.TrainArchs)))
	defer func() {
		sspan.SetError(r.err)
		sspan.End()
		eo.observeStage("simulate", time.Since(simStart).Seconds())
	}()
	r.sims = make([]*nmcsim.Result, len(opts.TrainArchs))
	r.simTimes = make([]time.Duration, len(opts.TrainArchs))
	for ai, arch := range opts.TrainArchs {
		if err := ctx.Err(); err != nil {
			r.err = err
			return r
		}
		t0 = time.Now()
		res, err := nmcsim.RunSources(arch, threads, opts.SimBudget, func(shard int, _ uint64) trace.InstSource {
			return recs[shard].Source()
		})
		if err != nil {
			r.err = err
			return r
		}
		r.simTimes[ai] = time.Since(t0)
		r.sims[ai] = res
	}
	r.done = true
	return r
}

// recordShards materializes kernel k's trace once per shard at the
// per-thread budget nmcsim would apply. Shard traces are independent of
// the simulated architecture, so the recordings replay bit-identically
// to any number of configs.
func recordShards(k workload.Kernel, in workload.Input, threads int, budget uint64) ([]*trace.Recording, error) {
	if err := workload.Validate(k, in); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("napel: thread count %d must be positive", threads)
	}
	per := nmcsim.PerThreadBudget(budget, threads)
	recs := make([]*trace.Recording, threads)
	for shard := range recs {
		shard := shard
		recs[shard] = trace.Record(per, func(t *trace.Tracer) {
			k.Trace(in, shard, threads, t)
		})
	}
	return recs, nil
}

// SimulateKernelArchs simulates kernel k with input in on every config
// in archs from a single set of shard recordings — the single-pass
// replacement for calling SimulateKernel once per architecture. Results
// are bit-identical to the individual runs and positionally aligned
// with archs.
func SimulateKernelArchs(ctx context.Context, k workload.Kernel, in workload.Input, archs []nmcsim.Config, budget uint64) ([]*nmcsim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	threads := in.Threads()
	recs, err := recordShards(k, in, threads, budget)
	if err != nil {
		return nil, err
	}
	out := make([]*nmcsim.Result, len(archs))
	for i, cfg := range archs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i], err = nmcsim.RunSources(cfg, threads, budget, func(shard int, _ uint64) trace.InstSource {
			return recs[shard].Source()
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
