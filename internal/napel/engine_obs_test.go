package napel

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"napel/internal/obs"
)

// TestEngineObservability runs one instrumented collection and checks
// that the engine's metrics and spans describe it: one engine.unit span
// per executed unit (each with profile/record/simulate children), unit
// counters matching the dataset, and the worker-utilization gauge in
// the exposition (back at zero once the run is over).
func TestEngineObservability(t *testing.T) {
	opts := quickOptions()
	opts.Workers = 4
	opts.Metrics = obs.NewRegistry()
	kernels := quickKernels(t, "atax")

	tr := obs.NewTracer(0, nil)
	ctx := obs.WithTracer(context.Background(), tr)
	td, err := CollectResumeContext(ctx, kernels, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	units := len(td.Profiles)
	if units == 0 {
		t.Fatal("no units collected")
	}

	spans := map[string]int{}
	for _, rec := range tr.Snapshot() {
		spans[rec.Name]++
	}
	if spans["engine"] != 1 {
		t.Fatalf("want 1 engine span, got %d (all: %v)", spans["engine"], spans)
	}
	if spans["engine.unit"] != units {
		t.Fatalf("want %d engine.unit spans (one per unit), got %d", units, spans["engine.unit"])
	}
	for _, stage := range []string{"profile", "record", "simulate"} {
		if spans[stage] != units {
			t.Fatalf("want %d %q spans, got %d", units, stage, spans[stage])
		}
	}

	var b strings.Builder
	if err := opts.Metrics.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE napel_engine_worker_utilization gauge",
		"napel_engine_worker_utilization 0",
		"napel_engine_workers_busy 0",
		"napel_engine_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	doneLine := "napel_engine_units_done_total"
	var gotDone string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, doneLine+" ") {
			gotDone = line
		}
	}
	if want := doneLine + " " + strconv.Itoa(units); gotDone != want {
		t.Fatalf("units counter %q, want %q", gotDone, want)
	}
	for _, stage := range []string{"profile", "record", "simulate"} {
		line := `napel_engine_stage_seconds_count{stage="` + stage + `"} ` + strconv.Itoa(units)
		if !strings.Contains(text, line) {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

// TestEngineResumeRestoredMetrics: a resumed run counts restored units
// separately and re-executes nothing already checkpointed.
func TestEngineResumeRestoredMetrics(t *testing.T) {
	opts := quickOptions()
	opts.Workers = 2
	kernels := quickKernels(t, "atax")

	full, err := CollectResumeContext(context.Background(), kernels, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	opts.Metrics = obs.NewRegistry()
	td, err := CollectResumeContext(context.Background(), kernels, opts, &CollectCheckpoint{Prior: full})
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Samples) != len(full.Samples) {
		t.Fatalf("resumed run has %d samples, want %d", len(td.Samples), len(full.Samples))
	}

	var b strings.Builder
	opts.Metrics.WriteText(&b)
	text := b.String()
	if !strings.Contains(text, "napel_engine_units_done_total 0") {
		t.Fatalf("fully restored run executed units:\n%s", text)
	}
	if strings.Contains(text, "napel_engine_units_restored_total 0") {
		t.Fatalf("restored counter not incremented:\n%s", text)
	}
}
