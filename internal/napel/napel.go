// Package napel is the core of this repository: the NMC Application
// performance and energy Prediction framework using Ensemble machine
// Learning (NAPEL, Singh et al., DAC 2019).
//
// The pipeline mirrors Figure 1 of the paper:
//
//  1. Kernel analysis — internal/pisa extracts a 395-feature
//     microarchitecture-independent profile of each (kernel, input).
//  2. DoE simulations — internal/doe selects 11–31 input configurations
//     per application (central composite design); each is simulated on
//     internal/nmcsim across a small set of NMC architecture
//     configurations, producing IPC and energy labels.
//  3. Ensemble learning — a random forest (internal/ml/rf) is trained on
//     (profile ⊕ architecture) → IPC and → energy-per-instruction, with
//     grid hyper-parameter tuning under k-fold cross-validation.
//
// Once trained, Predictor.Predict estimates performance
// (Π = I_offload/(IPC·f)), energy and EDP of a previously-unseen
// application on a given NMC architecture without running a simulation.
package napel

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"napel/internal/doe"
	"napel/internal/hostsim"
	"napel/internal/nmcsim"
	"napel/internal/obs"
	"napel/internal/pisa"
	"napel/internal/stats"
	"napel/internal/trace"
	"napel/internal/workload"
	"napel/internal/xrand"
)

// Options configures the end-to-end pipeline. The zero value is not
// usable; start from DefaultOptions.
type Options struct {
	Seed uint64
	// ScaleFactor divides dimension-like DoE parameters (and its square
	// divides size-like ones) to derive tractable proxy inputs; see
	// workload.Scale.
	ScaleFactor int
	// MaxIters caps iteration-count DoE parameters.
	MaxIters int
	// TestScaleFactor/TestMaxIters scale the Table 2 *test* inputs used
	// by the Figure 6/7 use case. The test inputs must stay large enough
	// that memory-bound workloads overflow the host cache hierarchy —
	// that contrast is the point of the suitability analysis — so they
	// are scaled far more gently than the DoE training inputs (budget
	// caps plus coverage extrapolation keep the runs tractable).
	TestScaleFactor int
	TestMaxIters    int
	// ProfileBudget caps instructions per profiling pass. The paper's
	// LLVM-level analysis is far cheaper than cycle simulation; the
	// smaller profile budget models that asymmetry and features converge
	// well before the cap.
	ProfileBudget uint64
	// SimBudget caps instructions per NMC simulation.
	SimBudget uint64
	// HostBudget caps instructions per host-model run.
	HostBudget uint64
	// TrainArchs are the NMC architecture configurations used to gather
	// training labels. RefArch (Table 3) is always included.
	TrainArchs []nmcsim.Config
	// RefArch is the reference NMC system (Table 3), used for prediction
	// and the EDP use case.
	RefArch nmcsim.Config
	// Host is the host system (Table 3 POWER9) for the EDP comparison.
	Host hostsim.Config
	// Workers bounds the number of (kernel, input) units collected
	// concurrently; 0 means runtime.GOMAXPROCS(0). The assembled
	// TrainingData is bit-identical for any worker count.
	Workers int
	// UnitRetries re-executes a failed (kernel, input) unit up to this
	// many additional times before giving up (default 0 — a unit fails
	// on its first error). Retries are immediate: unit work is
	// deterministic and CPU-bound, so failures are environmental and a
	// backoff would only idle a worker.
	UnitRetries int
	// QuarantineFailures, when true, excludes units that exhaust their
	// retries from the dataset — recorded in TrainingData.Quarantined —
	// instead of failing the whole collection. The default false keeps
	// the serial loop's abort-on-first-error contract.
	QuarantineFailures bool
	// Executor, when non-nil, runs each planned unit instead of the
	// in-process profile/record/simulate path — the hook internal/collectd
	// uses to lease units to remote napel-worker processes. The executor
	// must be payload-equivalent to ExecuteUnit; the engine validates
	// every payload against its spec and assembles the returned samples
	// in plan order, so the output stays byte-identical to local
	// collection for any executor, worker count, or completion order.
	// Retries, quarantine, and checkpoints apply unchanged.
	Executor UnitExecutor
	// Tags, stamped onto every planned UnitSpec, restrict distributed
	// execution to workers advertising all of them (collectd capability
	// routing). Ignored — deliberately — by local execution: tags are
	// scheduling metadata and never change payload bytes.
	Tags []string
	// Metrics, when non-nil, receives the engine's napel_engine_* series
	// (worker utilization, queue depth, per-unit and per-stage latency).
	// nil leaves the engine uninstrumented at zero cost. Instrumentation
	// never affects the collected data.
	Metrics *obs.Registry
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultOptions returns the configuration used by the experiment
// drivers: Table 3 reference systems, a 4-point training architecture
// sweep around them, and budgets sized so the full 12-application
// pipeline runs in minutes on a laptop.
func DefaultOptions() Options {
	ref := nmcsim.DefaultConfig()
	return Options{
		Seed:            42,
		ScaleFactor:     8,
		MaxIters:        2,
		TestScaleFactor: 1,
		TestMaxIters:    1,
		ProfileBudget:   1_000_000,
		SimBudget:       1_000_000,
		HostBudget:      2_000_000,
		TrainArchs:      DefaultTrainArchs(),
		RefArch:         ref,
		Host:            hostsim.DefaultConfig(),
	}
}

// DefaultTrainArchs returns the architecture configurations the training
// data is gathered on: the Table 3 reference plus variations in PE
// count, frequency and L1 capacity — the architectural axes of Table 1.
func DefaultTrainArchs() []nmcsim.Config {
	ref := nmcsim.DefaultConfig()
	small := ref
	small.PEs = 16
	small.FreqGHz = 0.8
	big := ref
	big.PEs = 64
	big.FreqGHz = 2.0
	cachey := ref
	cachey.L1.Lines = 64
	cachey.L1.Assoc = 4
	lean := ref
	lean.L1.Lines = 2
	lean.L1.Assoc = 1
	lean.FreqGHz = 1.0
	return []nmcsim.Config{ref, small, big, cachey, lean}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.ScaleFactor < 1 {
		return fmt.Errorf("napel: scale factor %d must be >= 1", o.ScaleFactor)
	}
	if o.TestScaleFactor < 1 {
		return fmt.Errorf("napel: test scale factor %d must be >= 1", o.TestScaleFactor)
	}
	if len(o.TrainArchs) == 0 {
		return fmt.Errorf("napel: at least one training architecture is required")
	}
	if err := o.RefArch.Validate(); err != nil {
		return err
	}
	for _, a := range o.TrainArchs {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	return o.Host.Validate()
}

// NumArchFeatures is the number of architecture/run features appended to
// the 395-entry application profile: the nine NMC architectural features
// of Table 1 plus the run's hardware-thread count.
const NumArchFeatures = 10

// ArchFeatureNames returns the names of the appended features,
// index-aligned with ArchVector.
func ArchFeatureNames() []string {
	return []string{
		"arch_core_inorder",
		"arch_pes",
		"arch_freq_ghz",
		"arch_cache_line_bytes",
		"arch_cache_lines",
		"arch_dram_layers",
		"arch_dram_bytes_log2",
		"arch_cache_access_frac",
		"arch_dram_access_frac",
		"run_threads",
	}
}

// ArchVector derives the Table 1 architectural feature vector for cfg.
// The cache/DRAM access fractions are estimated from the profile's
// hardware-independent reuse-distance CDF evaluated at the cache
// capacity — no simulation involved.
func ArchVector(cfg nmcsim.Config, prof *pisa.Profile, threads int) []float64 {
	eqLines := cfg.L1.SizeBytes() / pisa.LineGranularity
	if eqLines < 1 {
		eqLines = 1
	}
	hit := prof.EstHitFraction(eqLines)
	coreInOrder := 1.0
	if cfg.Core == nmcsim.OutOfOrder {
		coreInOrder = 0
	}
	return []float64{
		coreInOrder, // Table 1 "core type"
		float64(cfg.PEs),
		cfg.FreqGHz,
		float64(cfg.L1.LineSize),
		float64(cfg.L1.Lines),
		float64(cfg.DRAM.Layers),
		log2(float64(cfg.DRAM.SizeBytes)),
		hit,
		1 - hit,
		float64(threads),
	}
}

// ArchVectorFromCurve is ArchVector for consumers that hold a profile's
// exported hit-fraction curve (pisa.Profile.HitFractionCurve) instead of
// the profile itself — e.g. napel-serve assembling feature vectors from
// wire-format requests. It produces bit-identical output to ArchVector
// on the profile the curve came from.
func ArchVectorFromCurve(cfg nmcsim.Config, hitCurve []float64, threads int) ([]float64, error) {
	eqLines := cfg.L1.SizeBytes() / pisa.LineGranularity
	if eqLines < 1 {
		eqLines = 1
	}
	if len(hitCurve) == 0 {
		return nil, fmt.Errorf("napel: empty hit-fraction curve")
	}
	idx := stats.Log2Bucket(uint64(eqLines))
	if idx >= len(hitCurve) {
		idx = len(hitCurve) - 1
	}
	hit := hitCurve[idx]
	if hit < 0 || hit > 1 {
		return nil, fmt.Errorf("napel: hit fraction %g out of [0, 1]", hit)
	}
	coreInOrder := 1.0
	if cfg.Core == nmcsim.OutOfOrder {
		coreInOrder = 0
	}
	return []float64{
		coreInOrder,
		float64(cfg.PEs),
		cfg.FreqGHz,
		float64(cfg.L1.LineSize),
		float64(cfg.L1.Lines),
		float64(cfg.DRAM.Layers),
		log2(float64(cfg.DRAM.SizeBytes)),
		hit,
		1 - hit,
		float64(threads),
	}, nil
}

func log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	return l + x - 1 // linear interpolation between powers keeps it monotone
}

// ProfileKernel runs the PISA characterization of kernel k processing
// input in (sequential trace, shard 0 of 1) under the op budget.
func ProfileKernel(k workload.Kernel, in workload.Input, budget uint64) (*pisa.Profile, error) {
	if err := workload.Validate(k, in); err != nil {
		return nil, err
	}
	p := pisa.NewProfiler()
	tr := trace.NewTracer(budget, p)
	k.Trace(in, 0, 1, tr)
	p.SetCoverage(tr.Coverage())
	return p.Profile(), nil
}

// SimulateKernel runs kernel k with input in on the NMC architecture cfg
// (threads taken from the input).
func SimulateKernel(k workload.Kernel, in workload.Input, cfg nmcsim.Config, budget uint64) (*nmcsim.Result, error) {
	if err := workload.Validate(k, in); err != nil {
		return nil, err
	}
	return nmcsim.Run(cfg, func(shard, nshards int, t *trace.Tracer) {
		k.Trace(in, shard, nshards, t)
	}, in.Threads(), budget)
}

// HostRun estimates host execution of kernel k with input in.
func HostRun(k workload.Kernel, in workload.Input, cfg hostsim.Config, budget uint64) (*hostsim.Result, error) {
	if err := workload.Validate(k, in); err != nil {
		return nil, err
	}
	return hostsim.Run(cfg, func(shard, nshards int, t *trace.Tracer) {
		k.Trace(in, shard, nshards, t)
	}, in.Threads(), budget)
}

// Sample is one training example: an application profile on one
// architecture with the simulator's responses as labels.
type Sample struct {
	App       string
	Input     workload.Input
	ArchIdx   int // index into the options' TrainArchs
	ActivePEs int // PEs that executed work (min of threads, PE count)
	Features  []float64
	IPC       float64 // label: aggregate instructions per cycle
	EPI       float64 // label: energy per instruction, J
	SimTime   time.Duration
}

// TrainingData is the assembled DoE dataset for a set of applications.
type TrainingData struct {
	Samples  []Sample
	Names    []string                 // feature names (395 + NumArchFeatures)
	Profiles map[string]*pisa.Profile // profile per app@input key
	// DoEConfigs counts CCD runs per application (Table 4 "#DoE conf.").
	DoEConfigs map[string]int
	// SimTime accumulates simulation time per application (Table 4
	// "DoE run").
	SimTime map[string]time.Duration
	// ProfileTime accumulates kernel-analysis time per application.
	ProfileTime map[string]time.Duration
	// Quarantined lists the (kernel, input) units that failed every
	// retry attempt and were excluded from Samples, in plan order. Only
	// populated under Options.QuarantineFailures; never persisted by
	// SaveTrainingData, so a resumed run re-executes quarantined units.
	Quarantined []QuarantinedUnit
}

// QuarantinedUnit records one poisoned collection unit: it failed its
// first execution and every configured retry, and contributed no
// samples.
type QuarantinedUnit struct {
	App   string
	Input workload.Input
	Error string
}

// inputKey identifies a (kernel, input) pair.
func inputKey(app string, in workload.Input) string { return app + "|" + in.String() }

// CCDInputs expands the central composite design of kernel k's DoE
// parameters into concrete inputs (with centre replicates included, as
// counted by Table 4).
func CCDInputs(k workload.Kernel) []workload.Input {
	params := k.Params()
	points := doe.CCD(len(params))
	inputs := make([]workload.Input, len(points))
	for i, pt := range points {
		in := workload.Input{}
		for f, p := range params {
			in[p.Name] = p.Levels[int(pt[f])]
		}
		inputs[i] = in
	}
	return inputs
}

// RandomInputs draws the same number of input configurations as the CCD
// would use, but uniformly at random from each parameter's five levels —
// the brute-force sampling baseline the paper's DoE replaces.
func RandomInputs(k workload.Kernel, seed uint64) []workload.Input {
	params := k.Params()
	n := doe.NumRuns(len(params))
	rng := xrand.New(seed ^ hashName(k.Name()))
	inputs := make([]workload.Input, n)
	for i := range inputs {
		in := workload.Input{}
		for _, p := range params {
			in[p.Name] = p.Levels[rng.Intn(doe.NumLevels)]
		}
		inputs[i] = in
	}
	return inputs
}

// hashName gives each kernel its own random stream.
func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Collect runs phases 1 and 2 of NAPEL training for the given kernels:
// CCD input selection, PISA profiling of each distinct input, and NMC
// simulation of every (input, architecture) pair. The returned dataset
// feeds Predictor training.
//
// Collection runs on the single-pass parallel engine (see engine.go):
// each distinct (kernel, input) unit executes its trace once per shard
// and the recordings replay to every training architecture, with units
// spread across Options.Workers goroutines. Use CollectContext when the
// run should be cancellable.
func Collect(kernels []workload.Kernel, opts Options) (*TrainingData, error) {
	return CollectWithInputs(kernels, opts, CCDInputs)
}

// CollectWithInputs is Collect with a custom input-selection strategy —
// the hook the DoE ablation uses to compare CCD against random sampling
// of the same budget.
func CollectWithInputs(kernels []workload.Kernel, opts Options, inputsFor func(workload.Kernel) []workload.Input) (*TrainingData, error) {
	return CollectWithInputsContext(context.Background(), kernels, opts, inputsFor)
}

// ArchCCDConfigs applies the paper's DoE machinery to the architecture
// axes themselves: a central composite design over PE count, core
// frequency and L1 capacity (five levels each, centred on the Table 3
// reference), yielding the 15 distinct design points of a three-factor
// CCD. Use it as Options.TrainArchs when the prediction target is a
// broad architecture sweep rather than the fixed reference system —
// richer architectural coverage for 3x the simulation budget of
// DefaultTrainArchs.
func ArchCCDConfigs() []nmcsim.Config {
	pes := [5]int{8, 16, 32, 48, 64}
	freqs := [5]float64{0.6, 1.0, 1.25, 1.6, 2.0}
	lines := [5]int{2, 4, 8, 32, 128}

	ref := nmcsim.DefaultConfig()
	points := doe.Distinct(doe.CCD(3))
	cfgs := make([]nmcsim.Config, 0, len(points))
	for _, pt := range points {
		cfg := ref
		cfg.PEs = pes[pt[0]]
		cfg.FreqGHz = freqs[pt[1]]
		cfg.L1.Lines = lines[pt[2]]
		if cfg.L1.Assoc > cfg.L1.Lines {
			cfg.L1.Assoc = cfg.L1.Lines
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// Merge combines two collections into one training set — the
// incremental-DoE workflow: collect the Table 2 suite once, later add
// more applications or architectures and retrain without repeating the
// original simulations. The feature layouts must match.
func Merge(a, b *TrainingData) (*TrainingData, error) {
	if len(a.Names) != len(b.Names) {
		return nil, fmt.Errorf("napel: merging incompatible feature layouts (%d vs %d)", len(a.Names), len(b.Names))
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			return nil, fmt.Errorf("napel: feature %d differs: %q vs %q", i, a.Names[i], b.Names[i])
		}
	}
	out := &TrainingData{
		Names:       a.Names,
		Samples:     append(append([]Sample(nil), a.Samples...), b.Samples...),
		Profiles:    map[string]*pisa.Profile{},
		DoEConfigs:  map[string]int{},
		SimTime:     map[string]time.Duration{},
		ProfileTime: map[string]time.Duration{},
	}
	for _, src := range []*TrainingData{a, b} {
		for k, v := range src.Profiles {
			out.Profiles[k] = v
		}
		for k, v := range src.DoEConfigs {
			out.DoEConfigs[k] += v
		}
		for k, v := range src.SimTime {
			out.SimTime[k] += v
		}
		for k, v := range src.ProfileTime {
			out.ProfileTime[k] += v
		}
	}
	return out, nil
}

// SummaryRow describes one application's slice of a training set.
type SummaryRow struct {
	App        string
	Rows       int
	DoEConfigs int
	MinIPC     float64
	MaxIPC     float64
	MinEPI     float64
	MaxEPI     float64
}

// Summary aggregates the collected data per application — the at-a-glance
// sanity check the train CLI prints before fitting.
func (td *TrainingData) Summary() []SummaryRow {
	byApp := map[string]*SummaryRow{}
	var order []string
	for _, s := range td.Samples {
		r, ok := byApp[s.App]
		if !ok {
			r = &SummaryRow{App: s.App, DoEConfigs: td.DoEConfigs[s.App], MinIPC: s.IPC, MinEPI: s.EPI}
			byApp[s.App] = r
			order = append(order, s.App)
		}
		r.Rows++
		if s.IPC < r.MinIPC {
			r.MinIPC = s.IPC
		}
		if s.IPC > r.MaxIPC {
			r.MaxIPC = s.IPC
		}
		if s.EPI < r.MinEPI {
			r.MinEPI = s.EPI
		}
		if s.EPI > r.MaxEPI {
			r.MaxEPI = s.EPI
		}
	}
	out := make([]SummaryRow, 0, len(order))
	for _, app := range order {
		out = append(out, *byApp[app])
	}
	return out
}
