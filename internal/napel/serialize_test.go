package napel

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"napel/internal/workload"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	opts := quickOptions()
	kernels := quickKernels(t, "atax", "mvt")
	td, err := Collect(kernels, opts)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Train(td, 42)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Predictions must be bit-identical after the round trip.
	k := kernels[0]
	in := workload.Scale(k, workload.TestInput(k), opts.TestScaleFactor, opts.TestMaxIters)
	prof, err := ProfileKernel(k, in, opts.ProfileBudget)
	if err != nil {
		t.Fatal(err)
	}
	a := pred.Predict(prof, opts.RefArch, in.Threads())
	b := loaded.Predict(prof, opts.RefArch, in.Threads())
	if a != b {
		t.Fatalf("round trip changed predictions:\n%+v\n%+v", a, b)
	}
	if loaded.Chosen[TargetIPC] != pred.Chosen[TargetIPC] {
		t.Fatal("chosen hyper-parameters lost")
	}
	if len(loaded.Names) != len(pred.Names) {
		t.Fatal("feature names lost")
	}
}

func TestLoadPredictorRejectsGarbage(t *testing.T) {
	if _, err := LoadPredictor(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":1,"feature_names":[]}`)); err == nil {
		t.Fatal("missing models accepted")
	}
}

// TestLoadPredictorVersionSentinel pins the error contract napel-serve
// relies on: a wrong format version matches ErrBadModelVersion, while
// other load failures (corruption, truncation) do not.
func TestLoadPredictorVersionSentinel(t *testing.T) {
	_, err := LoadPredictor(strings.NewReader(`{"version":99}`))
	if !errors.Is(err, ErrBadModelVersion) {
		t.Fatalf("version mismatch error %v does not match ErrBadModelVersion", err)
	}
	if !strings.Contains(err.Error(), "99") {
		t.Fatalf("error %q does not name the offending version", err)
	}
	_, err = LoadPredictor(strings.NewReader("not json"))
	if err == nil || errors.Is(err, ErrBadModelVersion) {
		t.Fatalf("garbage error %v must not match ErrBadModelVersion", err)
	}
	_, err = LoadPredictor(strings.NewReader(`{"version":1,"feature_names":[]}`))
	if err == nil || errors.Is(err, ErrBadModelVersion) {
		t.Fatalf("missing-model error %v must not match ErrBadModelVersion", err)
	}
}

// TestLoadTrainingDataVersionMismatch pins the version-gate contract of
// the checkpoint format: an unsupported version matches
// ErrBadModelVersion (so napel-traind can tell "old daemon wrote this"
// from corruption) and names both versions.
func TestLoadTrainingDataVersionMismatch(t *testing.T) {
	_, err := LoadTrainingData(strings.NewReader(`{"version":99,"feature_names":[],"samples":[]}`))
	if !errors.Is(err, ErrBadModelVersion) {
		t.Fatalf("version mismatch error %v does not match ErrBadModelVersion", err)
	}
	if !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), "1") {
		t.Fatalf("error %q does not name the versions", err)
	}
	_, err = LoadTrainingData(strings.NewReader(`{"version":0}`))
	if !errors.Is(err, ErrBadModelVersion) {
		t.Fatalf("missing-version error %v does not match ErrBadModelVersion", err)
	}
}

// TestLoadTrainingDataTruncated: every strict prefix class of a valid
// file — empty, cut mid-token, cut mid-stream — must error without
// matching the version sentinel, because a truncated checkpoint is
// corruption, not a format upgrade.
func TestLoadTrainingDataTruncated(t *testing.T) {
	opts := quickOptions()
	td, err := Collect(quickKernels(t, "atax"), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrainingData(&buf, td); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 2} {
		_, err := LoadTrainingData(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(full))
		}
		if errors.Is(err, ErrBadModelVersion) {
			t.Fatalf("truncation at %d reported as version mismatch: %v", cut, err)
		}
	}
	if _, err := LoadTrainingData(bytes.NewReader(full)); err != nil {
		t.Fatalf("untruncated bytes rejected: %v", err)
	}
}

// TestTrainingDataFileRoundTrip covers the atomic file helpers the
// lifecycle daemon checkpoints through.
func TestTrainingDataFileRoundTrip(t *testing.T) {
	opts := quickOptions()
	td, err := Collect(quickKernels(t, "atax"), opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := WriteTrainingDataFile(path, td); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrainingDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Samples) != len(td.Samples) {
		t.Fatalf("loaded %d samples, want %d", len(loaded.Samples), len(td.Samples))
	}
	if _, err := LoadTrainingDataFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}

	pred, err := Train(td, 42)
	if err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(t.TempDir(), "model.json")
	if err := WritePredictorFile(mpath, pred); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(mpath); err != nil {
		t.Fatal(err)
	}
}

func TestSaveRejectsForeignModels(t *testing.T) {
	p := &Predictor{IPC: nil, EPI: nil}
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		t.Fatal("nil models accepted")
	}
}
