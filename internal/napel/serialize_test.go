package napel

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"napel/internal/workload"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	opts := quickOptions()
	kernels := quickKernels(t, "atax", "mvt")
	td, err := Collect(kernels, opts)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Train(td, 42)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Predictions must be bit-identical after the round trip.
	k := kernels[0]
	in := workload.Scale(k, workload.TestInput(k), opts.TestScaleFactor, opts.TestMaxIters)
	prof, err := ProfileKernel(k, in, opts.ProfileBudget)
	if err != nil {
		t.Fatal(err)
	}
	a := pred.Predict(prof, opts.RefArch, in.Threads())
	b := loaded.Predict(prof, opts.RefArch, in.Threads())
	if a != b {
		t.Fatalf("round trip changed predictions:\n%+v\n%+v", a, b)
	}
	if loaded.Chosen[TargetIPC] != pred.Chosen[TargetIPC] {
		t.Fatal("chosen hyper-parameters lost")
	}
	if len(loaded.Names) != len(pred.Names) {
		t.Fatal("feature names lost")
	}
}

func TestLoadPredictorRejectsGarbage(t *testing.T) {
	if _, err := LoadPredictor(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":1,"feature_names":[]}`)); err == nil {
		t.Fatal("missing models accepted")
	}
}

// TestLoadPredictorVersionSentinel pins the error contract napel-serve
// relies on: a wrong format version matches ErrBadModelVersion, while
// other load failures (corruption, truncation) do not.
func TestLoadPredictorVersionSentinel(t *testing.T) {
	_, err := LoadPredictor(strings.NewReader(`{"version":99}`))
	if !errors.Is(err, ErrBadModelVersion) {
		t.Fatalf("version mismatch error %v does not match ErrBadModelVersion", err)
	}
	if !strings.Contains(err.Error(), "99") {
		t.Fatalf("error %q does not name the offending version", err)
	}
	_, err = LoadPredictor(strings.NewReader("not json"))
	if err == nil || errors.Is(err, ErrBadModelVersion) {
		t.Fatalf("garbage error %v must not match ErrBadModelVersion", err)
	}
	_, err = LoadPredictor(strings.NewReader(`{"version":1,"feature_names":[]}`))
	if err == nil || errors.Is(err, ErrBadModelVersion) {
		t.Fatalf("missing-model error %v must not match ErrBadModelVersion", err)
	}
}

func TestSaveRejectsForeignModels(t *testing.T) {
	p := &Predictor{IPC: nil, EPI: nil}
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		t.Fatal("nil models accepted")
	}
}
