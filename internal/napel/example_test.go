package napel_test

import (
	"fmt"

	"napel/internal/napel"
	"napel/internal/workload"
)

// ExampleCCDInputs shows the central composite design expanding atax's
// two Table 2 parameters into the 11 training configurations of Table 4.
func ExampleCCDInputs() {
	k, _ := workload.ByName("atax")
	inputs := napel.CCDInputs(k)
	fmt.Println("configurations:", len(inputs))
	fmt.Println("first corner:  ", inputs[0])
	fmt.Println("centre point:  ", inputs[len(inputs)-1])
	// Output:
	// configurations: 11
	// first corner:   dim=1250 threads=8
	// centre point:   dim=1500 threads=16
}

// ExampleProfileKernel runs the phase-1 characterization of a kernel and
// reads a few headline statistics from the 395-feature profile.
func ExampleProfileKernel() {
	k, _ := workload.ByName("mvt")
	in := workload.Input{"dim": 64, "threads": 4, "iters": 1}
	prof, err := napel.ProfileKernel(k, in, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("features:", len(prof.Vector()))
	fmt.Printf("memory fraction: %.2f\n", prof.MemFraction())
	fmt.Println("footprint bytes:", int(prof.FootprintBytes()))
	// Output:
	// features: 395
	// memory fraction: 0.42
	// footprint bytes: 34816
}

// ExampleActivePEs shows the thread-to-PE mapping used to normalize the
// IPC training target.
func ExampleActivePEs() {
	fmt.Println(napel.ActivePEs(8, 32), napel.ActivePEs(64, 32))
	// Output: 8 32
}
