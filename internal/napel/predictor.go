package napel

import (
	"errors"
	"fmt"
	"math"
	"time"

	"napel/internal/ml"
	"napel/internal/ml/ann"
	"napel/internal/ml/mtree"
	"napel/internal/ml/rf"
	"napel/internal/nmcsim"
	"napel/internal/pisa"
)

// Target selects which response a model predicts.
type Target int

const (
	// TargetIPC is aggregate instructions per cycle.
	TargetIPC Target = iota
	// TargetEPI is energy per instruction (Joules).
	TargetEPI
)

// String returns the target name.
func (t Target) String() string {
	if t == TargetEPI {
		return "energy"
	}
	return "performance"
}

// ActivePEs returns how many PEs actually execute work for a run with
// the given thread count: the aggregate-IPC target is normalized by this
// count so the models learn per-PE efficiency (a tight, comparable
// range) instead of a trivial multiplicative factor.
func ActivePEs(threads, pes int) int {
	if threads < pes {
		return threads
	}
	return pes
}

// Dataset assembles the ml view of the collected samples for one target.
// The IPC target is stored normalized per active PE (see ActivePEs);
// Predictor.Predict scales it back.
func (td *TrainingData) Dataset(target Target) *ml.Dataset {
	d := &ml.Dataset{
		X:      make([][]float64, len(td.Samples)),
		Y:      make([]float64, len(td.Samples)),
		Names:  td.Names,
		Groups: make([]string, len(td.Samples)),
	}
	for i, s := range td.Samples {
		d.X[i] = s.Features
		if target == TargetEPI {
			d.Y[i] = s.EPI
		} else {
			d.Y[i] = s.IPC / float64(s.ActivePEs)
		}
		d.Groups[i] = s.App
	}
	return d
}

// RFTuneGrid returns the hyper-parameter candidates searched during
// NAPEL training (Section 2.5's "as many iterations of the
// cross-validation process as hyper-parameter combinations"). All
// candidates learn in log-target space (see ml.LogTrainer).
func RFTuneGrid(numFeatures int) []ml.Trainer {
	mtrys := []int{numFeatures / 3, numFeatures / 10, 20}
	var grid []ml.Trainer
	for _, trees := range []int{60, 120} {
		for _, minLeaf := range []int{1, 3} {
			for _, mtry := range mtrys {
				grid = append(grid, ml.LogTrainer{Inner: rf.Trainer{Params: rf.Params{
					Trees: trees, MinLeaf: minLeaf, MTry: mtry,
				}}})
			}
		}
	}
	return grid
}

// DefaultRFTrainer is the untuned forest used where hyper-parameter
// search would dominate runtime (e.g. inside leave-one-application-out
// loops).
func DefaultRFTrainer() ml.Trainer {
	return ml.LogTrainer{Inner: rf.Trainer{Params: rf.Params{Trees: 80, MinLeaf: 2}}}
}

// DefaultANNTrainer is the Figure 5 artificial-neural-network baseline
// (Ipek et al.): a one-hidden-layer MLP.
func DefaultANNTrainer() ml.Trainer {
	return ml.LogTrainer{Inner: ann.Trainer{Params: ann.Params{}}}
}

// DefaultMTreeTrainer is the Figure 5 linear-model-tree baseline
// (Guo et al.).
func DefaultMTreeTrainer() ml.Trainer {
	return ml.LogTrainer{Inner: mtree.Trainer{Params: mtree.Params{}}}
}

// Predictor holds NAPEL's two trained models (performance and energy).
//
// Concurrency: a Predictor returned by Train/TrainTuned/LoadPredictor is
// immutable, and every prediction method (Predict, PredictAssembled,
// PredictVector, PredictVectorWithUncertainty, OOB) only reads it — the
// underlying forests walk fixed trees and allocate their own scratch.
// All of them are therefore safe for concurrent use from multiple
// goroutines without external locking, which is what lets napel-serve
// fan one loaded model out across a worker pool. Mutating exported
// fields after training/loading voids that guarantee.
type Predictor struct {
	IPC       ml.Model
	EPI       ml.Model
	Names     []string
	TrainTime time.Duration
	// Chosen reports the selected hyper-parameters per target when the
	// predictor was tuned.
	Chosen map[Target]string
	// TuneReport carries the per-candidate cross-validation scores.
	TuneReport map[Target][]ml.TuneResult
}

// Train fits NAPEL's models on the collected data without
// hyper-parameter search.
func Train(td *TrainingData, seed uint64) (*Predictor, error) {
	return train(td, seed, false)
}

// TrainTuned fits NAPEL's models with the grid hyper-parameter search of
// Section 2.5.
func TrainTuned(td *TrainingData, seed uint64) (*Predictor, error) {
	return train(td, seed, true)
}

func train(td *TrainingData, seed uint64, tune bool) (*Predictor, error) {
	if len(td.Samples) == 0 {
		return nil, errors.New("napel: no training samples")
	}
	p := &Predictor{
		Names:      td.Names,
		Chosen:     map[Target]string{},
		TuneReport: map[Target][]ml.TuneResult{},
	}
	t0 := time.Now()
	for _, target := range []Target{TargetIPC, TargetEPI} {
		d := td.Dataset(target)
		var model ml.Model
		var err error
		if tune {
			var chosen ml.Trainer
			var report []ml.TuneResult
			model, chosen, report, err = ml.Tune(RFTuneGrid(d.NumFeatures()), d, 3, seed)
			if err == nil {
				p.Chosen[target] = chosen.Name()
				p.TuneReport[target] = report
			}
		} else {
			tr := DefaultRFTrainer()
			model, err = tr.Train(d, seed)
			p.Chosen[target] = tr.Name()
		}
		if err != nil {
			return nil, fmt.Errorf("napel: training %s model: %w", target, err)
		}
		if target == TargetEPI {
			p.EPI = model
		} else {
			p.IPC = model
		}
	}
	p.TrainTime = time.Since(t0)
	return p, nil
}

// Prediction is NAPEL's estimate for one (application, architecture)
// point.
type Prediction struct {
	IPC         float64
	EPI         float64 // J per instruction
	TotalInstrs float64 // I_offload from the profile
	TimeSec     float64 // Π_NMC = I_offload / (IPC · f_core)
	EnergyJ     float64
	EDP         float64
}

// Predict estimates performance and energy of the profiled application
// on architecture cfg with the given thread count (Section 2.5's
// Π_NMC = I_offload/(IPC·f_core), energy = EPI·I_offload).
func (p *Predictor) Predict(prof *pisa.Profile, cfg nmcsim.Config, threads int) Prediction {
	feat := append(append([]float64(nil), prof.Vector()...), ArchVector(cfg, prof, threads)...)
	return p.PredictAssembled(feat, prof.TotalInstrs(), cfg, threads)
}

// PredictAssembled is Predict for callers that already hold the full
// feature vector (profile ⊕ ArchVector) and the profile's extrapolated
// total instruction count — napel-serve's path, where the profile
// arrives in wire form rather than as a *pisa.Profile. Given the same
// vector and totals it returns bit-identical results to Predict.
func (p *Predictor) PredictAssembled(feat []float64, totalInstrs float64, cfg nmcsim.Config, threads int) Prediction {
	pred := Prediction{
		IPC:         p.IPC.Predict(feat) * float64(ActivePEs(threads, cfg.PEs)),
		EPI:         p.EPI.Predict(feat),
		TotalInstrs: totalInstrs,
	}
	if pred.IPC > 0 {
		pred.TimeSec = pred.TotalInstrs / (pred.IPC * cfg.FreqGHz * 1e9)
	}
	if pred.EPI > 0 {
		pred.EnergyJ = pred.EPI * pred.TotalInstrs
	}
	pred.EDP = pred.EnergyJ * pred.TimeSec
	return pred
}

// PredictVector estimates both targets for a pre-assembled feature
// vector (profile ⊕ architecture), as used when sweeping many
// architecture points for one profile. activePEs is ActivePEs(threads,
// pes) for the swept point.
func (p *Predictor) PredictVector(feat []float64, activePEs int) (ipc, epi float64) {
	return p.IPC.Predict(feat) * float64(activePEs), p.EPI.Predict(feat)
}

// PredictVectorWithUncertainty is PredictVector plus a multiplicative
// uncertainty factor per target, derived from the spread of the
// individual trees in log space: the truth is likely within
// [value/factor, value*factor]. A factor near 1 means the forest is
// confident (interpolating); large factors flag extrapolation. Returns
// factors of 1 when the underlying models do not expose tree spread.
func (p *Predictor) PredictVectorWithUncertainty(feat []float64, activePEs int) (ipc, ipcFactor, epi, epiFactor float64) {
	ipc, ipcFactor = predictSpread(p.IPC, feat)
	epi, epiFactor = predictSpread(p.EPI, feat)
	ipc *= float64(activePEs)
	return ipc, ipcFactor, epi, epiFactor
}

// predictSpread evaluates a log-target forest with tree spread.
func predictSpread(m ml.Model, feat []float64) (value, factor float64) {
	inner, lo, hi, ok := ml.UnwrapLogModel(m)
	if !ok {
		return m.Predict(feat), 1
	}
	forest, ok := inner.(*rf.Forest)
	if !ok {
		return m.Predict(feat), 1
	}
	mean, std := forest.PredictWithSpread(feat)
	if mean < lo {
		mean = lo
	}
	if mean > hi {
		mean = hi
	}
	return math.Exp(mean), math.Exp(std)
}

// OOB returns the out-of-bag mean relative errors of the two underlying
// forests (in log-target space), the training-time validation signal a
// user checks before trusting a freshly trained model. Either value is
// -1 when unavailable (e.g. a loaded model trained elsewhere reports
// them normally, but non-forest models cannot).
func (p *Predictor) OOB() (ipc, epi float64) {
	return modelOOB(p.IPC), modelOOB(p.EPI)
}

func modelOOB(m ml.Model) float64 {
	inner, _, _, ok := ml.UnwrapLogModel(m)
	if !ok {
		return -1
	}
	forest, ok := inner.(*rf.Forest)
	if !ok {
		return -1
	}
	return forest.OOBMRE()
}
