package napel

import (
	"napel/internal/obs"
)

// engineBuckets grids unit and stage durations: proxy-scale units run
// for milliseconds to tens of seconds.
var engineBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// engineObs is the collection engine's observability surface on a
// caller-supplied registry (Options.Metrics). A nil engineObs — no
// registry configured — makes every method a no-op, so the engine pays
// nothing when uninstrumented. Gauges describe the in-flight run;
// successive Collect calls on the same registry rebind the utilization
// function to the newest run (Func re-registration replaces the
// closure).
type engineObs struct {
	workers  *obs.Gauge
	busy     *obs.Gauge
	queue    *obs.Gauge
	unitSec  *obs.Histogram
	stage    map[string]*obs.Histogram
	ckpSec   *obs.Histogram
	done        *obs.Counter
	restored    *obs.Counter
	failed      *obs.Counter
	retries     *obs.Counter
	quarantined *obs.Counter
}

// engineStages are the phases of one collection unit, matching the
// child spans runCollectUnit emits.
var engineStages = [...]string{"profile", "record", "simulate"}

func newEngineObs(reg *obs.Registry) *engineObs {
	if reg == nil {
		return nil
	}
	o := &engineObs{
		workers: reg.Gauge("napel_engine_workers",
			"Workers in the current collection pool."),
		busy: reg.Gauge("napel_engine_workers_busy",
			"Workers currently executing a unit."),
		queue: reg.Gauge("napel_engine_queue_depth",
			"Units planned but not yet started."),
		unitSec: reg.Histogram("napel_engine_unit_seconds",
			"Wall-clock time of one executed (kernel, input) unit.", engineBuckets),
		stage: make(map[string]*obs.Histogram, len(engineStages)),
		ckpSec: reg.Histogram("napel_engine_checkpoint_seconds",
			"Time spent inside the caller's per-unit checkpoint hook.", nil),
		done: reg.Counter("napel_engine_units_done_total",
			"Units executed to completion."),
		restored: reg.Counter("napel_engine_units_restored_total",
			"Units restored from a resume checkpoint instead of executed."),
		failed: reg.Counter("napel_engine_units_failed_total",
			"Units that returned a hard error."),
		retries: reg.Counter("napel_engine_unit_retries_total",
			"Unit re-executions after a failed attempt."),
		quarantined: reg.Counter("napel_engine_units_quarantined_total",
			"Units excluded from the dataset after exhausting their retries."),
	}
	sv := reg.HistogramVec("napel_engine_stage_seconds",
		"Per-stage unit latency: profiling, trace recording, simulation.",
		engineBuckets, "stage")
	for _, s := range engineStages {
		o.stage[s] = sv.With(s)
	}
	reg.GaugeFunc("napel_engine_worker_utilization",
		"Busy workers as a fraction of the pool; 0 when idle.",
		func() float64 {
			w := o.workers.Value()
			if w <= 0 {
				return 0
			}
			return o.busy.Value() / w
		})
	return o
}

func (o *engineObs) startRun(workers, queued, restored int) {
	if o == nil {
		return
	}
	o.workers.Set(float64(workers))
	o.busy.Set(0)
	o.queue.Set(float64(queued))
	o.restored.Add(uint64(restored))
}

func (o *engineObs) endRun() {
	if o == nil {
		return
	}
	o.workers.Set(0)
	o.busy.Set(0)
	o.queue.Set(0)
}

func (o *engineObs) unitStart() {
	if o == nil {
		return
	}
	o.queue.Dec()
	o.busy.Inc()
}

// unitEnd closes one executed unit. A unit that was cancelled mid-way
// counts neither as done nor failed.
func (o *engineObs) unitEnd(seconds float64, done bool, err error) {
	if o == nil {
		return
	}
	o.busy.Dec()
	o.unitSec.Observe(seconds)
	switch {
	case err != nil:
		o.failed.Inc()
	case done:
		o.done.Inc()
	}
}

func (o *engineObs) unitRetry() {
	if o == nil {
		return
	}
	o.retries.Inc()
}

func (o *engineObs) unitQuarantined() {
	if o == nil {
		return
	}
	o.quarantined.Inc()
}

func (o *engineObs) observeStage(name string, seconds float64) {
	if o == nil {
		return
	}
	if h, ok := o.stage[name]; ok {
		h.Observe(seconds)
	}
}

func (o *engineObs) observeCheckpoint(seconds float64) {
	if o == nil {
		return
	}
	o.ckpSec.Observe(seconds)
}
