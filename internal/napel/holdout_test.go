package napel

import "testing"

// TestEvaluateHoldout: deterministic, sane metrics, and a degraded
// trainer (a 1-tree forest) scores measurably worse than the default —
// the signal napel-traind's promotion gate keys on.
func TestEvaluateHoldout(t *testing.T) {
	opts := quickOptions()
	td, err := Collect(quickKernels(t, "atax", "mvt"), opts)
	if err != nil {
		t.Fatal(err)
	}

	good, err := EvaluateHoldout(td, DefaultRFTrainer(), 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EvaluateHoldout(td, DefaultRFTrainer(), 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	if good != again {
		t.Fatalf("holdout evaluation not deterministic: %+v vs %+v", good, again)
	}
	if good.IPCMRE <= 0 || good.EPIMRE <= 0 {
		t.Fatalf("degenerate zero error: %+v", good)
	}
	if good.TestRows == 0 || good.Rows != len(td.Samples) {
		t.Fatalf("fold bookkeeping wrong: %+v", good)
	}
	if c := good.Combined(); c != (good.IPCMRE+good.EPIMRE)/2 {
		t.Fatalf("Combined() = %g, want mean of %g and %g", c, good.IPCMRE, good.EPIMRE)
	}

	if _, err := EvaluateHoldout(&TrainingData{}, DefaultRFTrainer(), 0.25, 42); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

// TestEvaluatePredictorHoldout: a predictor trained on the full data
// scores on the same fold the trainer-based evaluation uses, and layout
// mismatches are rejected.
func TestEvaluatePredictorHoldout(t *testing.T) {
	opts := quickOptions()
	td, err := Collect(quickKernels(t, "atax"), opts)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Train(td, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := EvaluatePredictorHoldout(pred, td, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.TestRows == 0 {
		t.Fatalf("no test rows: %+v", m)
	}
	// Trained on everything (including the fold), the incumbent-style
	// score is finite and typically small; it just has to be a valid
	// number, not a particular value.
	if m.IPCMRE < 0 || m.EPIMRE < 0 {
		t.Fatalf("negative MRE: %+v", m)
	}

	bad := &Predictor{IPC: pred.IPC, EPI: pred.EPI, Names: []string{"wrong"}}
	if _, err := EvaluatePredictorHoldout(bad, td, 0.25, 42); err == nil {
		t.Fatal("layout mismatch accepted")
	}
}
