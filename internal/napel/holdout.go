package napel

import (
	"fmt"

	"napel/internal/ml"
)

// HoldoutMetrics are the validation errors of one model on one held-out
// fold of a training set — the numbers napel-traind's canary gate
// compares before a freshly trained model may replace the serving one.
// The fold is a pure function of (rows, Frac, Seed), so two models
// scored with the same parameters on the same dataset are measured on
// identical rows.
type HoldoutMetrics struct {
	Frac     float64 `json:"frac"`
	Seed     uint64  `json:"seed"`
	Rows     int     `json:"rows"`
	TestRows int     `json:"test_rows"`
	// IPCMRE and EPIMRE are Equation 1 mean relative errors (the
	// paper's MAPE) of the performance and energy targets on the
	// held-out rows.
	IPCMRE float64 `json:"ipc_mre"`
	EPIMRE float64 `json:"epi_mre"`
}

// Combined is the single number the promotion gate thresholds on: the
// mean of the two targets' errors.
func (m HoldoutMetrics) Combined() float64 { return (m.IPCMRE + m.EPIMRE) / 2 }

// EvaluateHoldout measures trainer on td with a deterministic holdout
// split: for each target it trains on the (1-frac) training side and
// reports the mean relative error on the held-out side. This is the
// honest generalization estimate recorded in a model's manifest — the
// final published model is still trained on all of td.
func EvaluateHoldout(td *TrainingData, trainer ml.Trainer, frac float64, seed uint64) (HoldoutMetrics, error) {
	m := HoldoutMetrics{Frac: frac, Seed: seed, Rows: len(td.Samples)}
	fold := ml.HoldoutFold(len(td.Samples), frac, seed)
	if len(fold.Test) == 0 || len(fold.Train) == 0 {
		return m, fmt.Errorf("napel: %d samples are too few for a holdout evaluation", len(td.Samples))
	}
	m.TestRows = len(fold.Test)
	for _, target := range []Target{TargetIPC, TargetEPI} {
		d := td.Dataset(target)
		if err := d.Validate(); err != nil {
			return m, err
		}
		model, err := trainer.Train(d.Subset(fold.Train), seed)
		if err != nil {
			return m, fmt.Errorf("napel: holdout training %s model: %w", target, err)
		}
		mre := ml.MRE(model, d.Subset(fold.Test))
		if target == TargetEPI {
			m.EPIMRE = mre
		} else {
			m.IPCMRE = mre
		}
	}
	return m, nil
}

// EvaluatePredictorHoldout scores an already-trained predictor on the
// held-out fold of td — the gate's fallback for an incumbent whose
// manifest recorded no metrics: both contenders are then measured on
// the candidate's held-out rows. The predictor's feature layout must
// match td's.
func EvaluatePredictorHoldout(p *Predictor, td *TrainingData, frac float64, seed uint64) (HoldoutMetrics, error) {
	m := HoldoutMetrics{Frac: frac, Seed: seed, Rows: len(td.Samples)}
	if len(p.Names) != len(td.Names) {
		return m, fmt.Errorf("napel: predictor has %d features, dataset %d", len(p.Names), len(td.Names))
	}
	for i := range p.Names {
		if p.Names[i] != td.Names[i] {
			return m, fmt.Errorf("napel: feature %d differs: predictor %q vs dataset %q", i, p.Names[i], td.Names[i])
		}
	}
	fold := ml.HoldoutFold(len(td.Samples), frac, seed)
	if len(fold.Test) == 0 {
		return m, fmt.Errorf("napel: %d samples are too few for a holdout evaluation", len(td.Samples))
	}
	m.TestRows = len(fold.Test)
	m.IPCMRE = ml.MRE(p.IPC, td.Dataset(TargetIPC).Subset(fold.Test))
	m.EPIMRE = ml.MRE(p.EPI, td.Dataset(TargetEPI).Subset(fold.Test))
	return m, nil
}
